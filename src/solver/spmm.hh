/**
 * @file
 * Host-side sparse matrix-matrix helpers for the applications the paper
 * motivates: Gustavson-style SpMM and the AᵀA normal-equations product
 * that dominates SLAM information-matrix updates (Sec. 2.1 — "the
 * simultaneous localization and mapping problem requires a new
 * information matrix at each step, and performing AᵀA on the new matrix
 * dominates the execution time").
 *
 * These are golden references / host utilities: the near-memory part of
 * that pipeline (the transposition feeding AᵀA) is what MeNDA offloads;
 * see examples/slam_information_matrix.cpp.
 */

#ifndef MENDA_SOLVER_SPMM_HH
#define MENDA_SOLVER_SPMM_HH

#include "menda/system.hh"
#include "sparse/format.hh"

namespace menda::solver
{

/** C = A * B by Gustavson's row-wise algorithm. */
sparse::CsrMatrix spmm(const sparse::CsrMatrix &a,
                       const sparse::CsrMatrix &b);

/**
 * C = A * B offloaded to the simulated MeNDA system: both operands are
 * sparse, so the product routes through the outer-product merge engine
 * (core::MendaSystem::spgemm, DESIGN.md Sec. 9) instead of the host
 * Gustavson kernel. @p stats, when given, receives the run's simulated
 * counters.
 */
sparse::CsrMatrix spmm(const sparse::CsrMatrix &a,
                       const sparse::CsrMatrix &b,
                       const core::SystemConfig &system,
                       core::RunResult *stats = nullptr);

/**
 * AᵀA given A in CSR and Aᵀ in CSR (e.g. straight out of MeNDA's
 * partitioned output). Symmetric positive semi-definite by construction.
 */
sparse::CsrMatrix normalEquations(const sparse::CsrMatrix &at,
                                  const sparse::CsrMatrix &a);

/** Work metric of the product (partial-product count). */
std::uint64_t spmmWork(const sparse::CsrMatrix &a,
                       const sparse::CsrMatrix &b);

} // namespace menda::solver

#endif // MENDA_SOLVER_SPMM_HH
