#include "solver/spmm.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"

namespace menda::solver
{

sparse::CsrMatrix
spmm(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    menda_assert(a.cols == b.rows, "spmm: inner dimensions must agree");
    sparse::CsrMatrix c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);

    // Gustavson: accumulate row i of C as a sparse combination of the
    // rows of B selected by row i of A, using a dense scratch row.
    std::vector<double> accumulator(b.cols, 0.0);
    std::vector<Index> touched;
    std::vector<char> seen(b.cols, 0);

    for (Index i = 0; i < a.rows; ++i) {
        touched.clear();
        for (std::uint32_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka) {
            const Index k = a.idx[ka];
            const double av = a.val[ka];
            for (std::uint32_t kb = b.ptr[k]; kb < b.ptr[k + 1]; ++kb) {
                const Index j = b.idx[kb];
                if (!seen[j]) {
                    seen[j] = 1;
                    touched.push_back(j);
                    accumulator[j] = 0.0;
                }
                accumulator[j] += av * double(b.val[kb]);
            }
        }
        std::sort(touched.begin(), touched.end());
        for (Index j : touched) {
            c.idx.push_back(j);
            c.val.push_back(static_cast<Value>(accumulator[j]));
            seen[j] = 0;
        }
        c.ptr[i + 1] = static_cast<std::uint32_t>(c.idx.size());
    }
    return c;
}

sparse::CsrMatrix
spmm(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
     const core::SystemConfig &system, core::RunResult *stats)
{
    core::MendaSystem menda(system);
    core::SpgemmResult result = menda.spgemm(a, b);
    if (stats)
        *stats = result;
    return std::move(result.c);
}

sparse::CsrMatrix
normalEquations(const sparse::CsrMatrix &at, const sparse::CsrMatrix &a)
{
    menda_assert(at.rows == a.cols && at.cols == a.rows,
                 "normalEquations: at must be the transpose shape of a");
    return spmm(at, a);
}

std::uint64_t
spmmWork(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    std::uint64_t work = 0;
    for (Index i = 0; i < a.rows; ++i)
        for (std::uint32_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka)
            work += b.ptr[a.idx[ka] + 1] - b.ptr[a.idx[ka]];
    return work;
}

} // namespace menda::solver
