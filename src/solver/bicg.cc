#include "solver/bicg.hh"

#include <cmath>

#include "common/log.hh"

namespace menda::solver
{

namespace
{

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
norm(const std::vector<double> &a)
{
    return std::sqrt(dot(a, a));
}

/** y += alpha * x */
void
axpy(double alpha, const std::vector<double> &x, std::vector<double> &y)
{
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += alpha * x[i];
}

/** p = r + beta * p */
void
update_direction(const std::vector<double> &r, double beta,
                 std::vector<double> &p)
{
    for (std::size_t i = 0; i < p.size(); ++i)
        p[i] = r[i] + beta * p[i];
}

std::vector<Value>
toValues(const std::vector<double> &x)
{
    return std::vector<Value>(x.begin(), x.end());
}

} // namespace

LinearOperator
referenceOperator(const sparse::CsrMatrix &a)
{
    menda_assert(a.rows == a.cols, "solvers need a square matrix");
    LinearOperator op;
    op.n = a.rows;
    op.apply = [&a](const std::vector<double> &x) {
        return sparse::spmvReference(a, toValues(x));
    };
    // Column-wise traversal of CSR = multiplying by the transpose.
    op.applyTranspose = [&a](const std::vector<double> &x) {
        std::vector<double> y(a.cols, 0.0);
        for (Index r = 0; r < a.rows; ++r)
            for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
                y[a.idx[k]] += double(a.val[k]) * x[r];
        return y;
    };
    return op;
}

MendaOperator::MendaOperator(const sparse::CsrMatrix &a,
                             const core::SystemConfig &config)
    : a_(a), config_(config)
{
    menda_assert(a.rows == a.cols, "solvers need a square matrix");
    // One near-memory transposition up front; BiCG/QMR then reuse Aᵀ
    // every iteration — the amortization story of Sec. 2.1.
    core::MendaSystem sys(config_);
    core::TransposeResult t = sys.transpose(a_);
    transposeSeconds_ = t.seconds;
    at_ = sparse::asCsrOfTranspose(t.csc);
}

LinearOperator
MendaOperator::op()
{
    LinearOperator op;
    op.n = a_.rows;
    op.apply = [this](const std::vector<double> &x) {
        core::MendaSystem sys(config_);
        core::SpmvResult r = sys.spmv(a_, toValues(x));
        spmvSeconds_ += r.seconds;
        return r.y;
    };
    op.applyTranspose = [this](const std::vector<double> &x) {
        core::MendaSystem sys(config_);
        core::SpmvResult r = sys.spmv(at_, toValues(x));
        spmvSeconds_ += r.seconds;
        return r.y;
    };
    return op;
}

SolveResult
bicg(const LinearOperator &op, const std::vector<double> &b,
     unsigned max_iterations, double tol)
{
    menda_assert(b.size() == op.n, "rhs length mismatch");
    SolveResult result;
    result.x.assign(op.n, 0.0);

    std::vector<double> r = b;           // r = b - A*0
    std::vector<double> rt = b;          // shadow residual
    std::vector<double> p = r, pt = rt;
    const double bnorm = norm(b);
    if (bnorm == 0.0) {
        result.converged = true;
        return result;
    }

    double rho = dot(rt, r);
    for (unsigned it = 0; it < max_iterations; ++it) {
        if (std::abs(rho) < 1e-300) {
            result.breakdown = true;
            break;
        }
        const std::vector<double> q = op.apply(p);
        const std::vector<double> qt = op.applyTranspose(pt);
        const double denom = dot(pt, q);
        if (std::abs(denom) < 1e-300) {
            result.breakdown = true;
            break;
        }
        const double alpha = rho / denom;
        axpy(alpha, p, result.x);
        axpy(-alpha, q, r);
        axpy(-alpha, qt, rt);
        ++result.iterations;

        result.residualNorm = norm(r) / bnorm;
        if (result.residualNorm < tol) {
            result.converged = true;
            break;
        }
        const double rho_next = dot(rt, r);
        const double beta = rho_next / rho;
        rho = rho_next;
        update_direction(r, beta, p);
        update_direction(rt, beta, pt);
    }
    if (!result.converged)
        result.residualNorm = norm(r) / bnorm;
    return result;
}

SolveResult
qmr(const LinearOperator &op, const std::vector<double> &b,
    unsigned max_iterations, double tol)
{
    // Quasi-minimal residual via Schönauer-Weiss minimal-residual
    // smoothing over the BiCG iterates: after every BiCG step, the
    // smoothed iterate x_s minimizes the residual on the line between
    // the previous smoothed iterate and the new BiCG iterate, giving
    // the monotone convergence QMR is used for. Same operator cost as
    // BiCG: one A and one Aᵀ product per iteration.
    menda_assert(b.size() == op.n, "rhs length mismatch");
    SolveResult result;
    result.x.assign(op.n, 0.0); // smoothed iterate x_s
    std::vector<double> x(op.n, 0.0);

    std::vector<double> r = b;
    std::vector<double> rt = b;
    std::vector<double> p = r, pt = rt;
    std::vector<double> r_s = b; // smoothed residual
    const double bnorm = norm(b);
    if (bnorm == 0.0) {
        result.converged = true;
        return result;
    }

    double rho = dot(rt, r);
    for (unsigned it = 0; it < max_iterations; ++it) {
        if (std::abs(rho) < 1e-300) {
            result.breakdown = true;
            break;
        }
        const std::vector<double> q = op.apply(p);
        const std::vector<double> qt = op.applyTranspose(pt);
        const double denom = dot(pt, q);
        if (std::abs(denom) < 1e-300) {
            result.breakdown = true;
            break;
        }
        const double alpha = rho / denom;
        axpy(alpha, p, x);
        axpy(-alpha, q, r);
        axpy(-alpha, qt, rt);
        ++result.iterations;

        // Minimal-residual smoothing: x_s += eta (x - x_s) with eta
        // minimizing || r_s + eta (r - r_s) ||.
        std::vector<double> diff(op.n);
        for (std::size_t i = 0; i < diff.size(); ++i)
            diff[i] = r[i] - r_s[i];
        const double dd = dot(diff, diff);
        const double eta = dd > 0.0 ? -dot(r_s, diff) / dd : 0.0;
        for (std::size_t i = 0; i < op.n; ++i) {
            result.x[i] += eta * (x[i] - result.x[i]);
            r_s[i] += eta * diff[i];
        }

        result.residualNorm = norm(r_s) / bnorm;
        if (result.residualNorm < tol) {
            result.converged = true;
            break;
        }
        const double rho_next = dot(rt, r);
        const double beta = rho_next / rho;
        rho = rho_next;
        update_direction(r, beta, p);
        update_direction(rt, beta, pt);
    }
    return result;
}

} // namespace menda::solver
