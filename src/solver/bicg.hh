/**
 * @file
 * Iterative linear solvers that need the transpose: the biconjugate
 * gradient method (BiCG, Fletcher 1976) and a standard quasi-minimal
 * residual variant (QMR, Freund & Nachtigal 1991) — the paper's
 * motivating "essential building block" applications (Sec. 2.1): both
 * multiply by A *and* Aᵀ every iteration, so a matrix stored in CSR
 * needs either an explicit transpose (what MeNDA provides near memory)
 * or a slow column-wise traversal.
 *
 * The solvers are substrate-agnostic: they call an abstract SpMV
 * operator, so the same code runs against the host reference or the
 * MeNDA simulator (menda::solver::MendaOperator), which is how the
 * linear_solver example measures the offload benefit end-to-end.
 */

#ifndef MENDA_SOLVER_BICG_HH
#define MENDA_SOLVER_BICG_HH

#include <functional>
#include <vector>

#include "menda/system.hh"
#include "sparse/format.hh"

namespace menda::solver
{

/** y = A x and y = Aᵀ x, supplied by the chosen substrate. */
struct LinearOperator
{
    std::function<std::vector<double>(const std::vector<double> &)> apply;
    std::function<std::vector<double>(const std::vector<double> &)>
        applyTranspose;
    Index n = 0;
};

/** Host-side reference operator over CSR (transpose done per call). */
LinearOperator referenceOperator(const sparse::CsrMatrix &a);

/**
 * MeNDA-backed operator: Aᵀ is produced once by simulated near-memory
 * transposition, then both products run as simulated near-memory SpMV.
 * Accumulates the simulated seconds of every offload it performs.
 */
class MendaOperator
{
  public:
    MendaOperator(const sparse::CsrMatrix &a,
                  const core::SystemConfig &config);

    LinearOperator op();

    /** Simulated seconds spent in the one-time transposition. */
    double transposeSeconds() const { return transposeSeconds_; }

    /** Simulated seconds across all SpMV offloads so far. */
    double spmvSeconds() const { return spmvSeconds_; }

  private:
    const sparse::CsrMatrix &a_;
    sparse::CsrMatrix at_; ///< Aᵀ in CSR (from the simulated transpose)
    core::SystemConfig config_;
    double transposeSeconds_ = 0.0;
    double spmvSeconds_ = 0.0;
};

struct SolveResult
{
    std::vector<double> x;
    unsigned iterations = 0;
    double residualNorm = 0.0;
    bool converged = false;
    bool breakdown = false; ///< Lanczos breakdown (rho ~ 0)
};

/**
 * Biconjugate gradient for square, possibly non-symmetric A.
 * @param op   the substrate operator (n x n)
 * @param b    right-hand side
 * @param tol  relative residual target ||r|| / ||b||
 */
SolveResult bicg(const LinearOperator &op, const std::vector<double> &b,
                 unsigned max_iterations = 1000, double tol = 1e-8);

/**
 * Simplified QMR (quasi-minimal residual smoothing over BiCG): same
 * operator requirements, smoother convergence on indefinite systems.
 */
SolveResult qmr(const LinearOperator &op, const std::vector<double> &b,
                unsigned max_iterations = 1000, double tol = 1e-8);

} // namespace menda::solver

#endif // MENDA_SOLVER_BICG_HH
