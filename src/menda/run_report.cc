#include "menda/run_report.hh"

#include <numeric>
#include <string>

namespace menda::core
{

obs::RunReport
makeRunReport(const std::string &name, const std::string &kernel,
              const SystemConfig &config, const RunResult &result,
              std::uint64_t nnz, double wall_seconds)
{
    obs::RunReport report(name);
    report.setMeta("kernel", kernel);
    report.setMeta("pus", std::to_string(config.totalPus()));
    report.setMeta("leaves", std::to_string(config.pu.leaves));
    report.setMeta("freqMhz", std::to_string(config.pu.freqMhz));

    // Fast-tier provenance (DESIGN.md Sec. 12), gated so Detailed
    // reports — including the conformance goldens — stay byte-stable.
    if (result.simMode != SimMode::Detailed) {
        report.setMeta("simMode", simModeName(result.simMode));
        report.setMetric("sampledWindows",
                         static_cast<double>(result.sampledWindows));
        report.setMetric("errorBoundPct", result.errorBoundPct);
        report.setMetric(
            "fastForwardedCycles",
            static_cast<double>(result.fastForwardedCycles));
    }

    report.setMetric("seconds", result.seconds);
    report.setMetric("puCycles", static_cast<double>(result.puCycles));
    report.setMetric("iterations", result.iterations);
    report.setMetric("readBlocks",
                     static_cast<double>(result.readBlocks));
    report.setMetric("writeBlocks",
                     static_cast<double>(result.writeBlocks));
    report.setMetric("totalBlocks",
                     static_cast<double>(result.totalBlocks()));
    report.setMetric("coalescedRequests",
                     static_cast<double>(result.coalescedRequests));
    report.setMetric("rowConflicts",
                     static_cast<double>(result.rowConflicts));
    report.setMetric("activates", static_cast<double>(result.activates));
    report.setMetric("busUtilization", result.busUtilization);
    report.setMetric("achievedBandwidth", result.achievedBandwidth());
    report.setMetric("treeOccupancyPacketCycles",
                     static_cast<double>(result.treeOccupancyPacketCycles));
    report.setMetric("leafPushStallCycles",
                     static_cast<double>(result.leafPushStallCycles));
    report.setMetric("outputStallCycles",
                     static_cast<double>(result.outputStallCycles));
    if (nnz != 0) {
        report.setMetric("nnz", static_cast<double>(nnz));
        report.setMetric("throughputNnzPerSec",
                         result.throughputNnzPerSec(nnz));
    }

    const std::uint64_t total_activates = std::accumulate(
        result.rankActivates.begin(), result.rankActivates.end(),
        std::uint64_t{0});
    const std::uint64_t total_bursts = std::accumulate(
        result.rankBursts.begin(), result.rankBursts.end(),
        std::uint64_t{0});
    report.setMetric("rankActivatesTotal",
                     static_cast<double>(total_activates));
    report.setMetric("rankBurstsTotal", static_cast<double>(total_bursts));

    // SpGEMM spill ledger (empty vectors — i.e. any other kernel —
    // emit nothing, keeping those reports byte-stable): totals plus
    // per-iteration ping-pong traffic, the numbers the scheduler bench
    // ratio and its CI gate consume.
    if (!result.spilledReadBlocks.empty() ||
        !result.spilledWriteBlocks.empty()) {
        const std::uint64_t spilled_reads = std::accumulate(
            result.spilledReadBlocks.begin(),
            result.spilledReadBlocks.end(), std::uint64_t{0});
        const std::uint64_t spilled_writes = std::accumulate(
            result.spilledWriteBlocks.begin(),
            result.spilledWriteBlocks.end(), std::uint64_t{0});
        report.setMetric("spilledReadBlocksTotal",
                         static_cast<double>(spilled_reads));
        report.setMetric("spilledWriteBlocksTotal",
                         static_cast<double>(spilled_writes));
        for (std::size_t t = 0; t < result.spilledReadBlocks.size(); ++t)
            report.setMetric("spill.iter" + std::to_string(t) +
                                 ".readBlocks",
                             static_cast<double>(
                                 result.spilledReadBlocks[t]));
        for (std::size_t t = 0; t < result.spilledWriteBlocks.size(); ++t)
            report.setMetric("spill.iter" + std::to_string(t) +
                                 ".writeBlocks",
                             static_cast<double>(
                                 result.spilledWriteBlocks[t]));
    }

    // Host-dependent rates: diff-ignored by name ("wall",
    // "CyclesPerSec" in DiffOptions::ignoreSubstrings). These are the
    // only metrics that vary across hosts or thread counts — everything
    // above is a deterministic simulation output, so two reports of the
    // same run built with wall_seconds <= 0 are byte-identical.
    if (wall_seconds > 0.0) {
        report.setMetric("wallSeconds", wall_seconds);
        report.setMetric("simCyclesPerSec",
                         static_cast<double>(result.puCycles) /
                             wall_seconds);
    }

    if (result.readLatency.count() != 0)
        report.addHistogram("readLatency", result.readLatency);
    if (result.leafStallRuns.count() != 0)
        report.addHistogram("leafStallRuns", result.leafStallRuns);
    if (result.treeOccupancy.enabled())
        report.addSeries("treeOccupancy", result.treeOccupancy);
    if (result.readQueueDepth.enabled())
        report.addSeries("readQueueDepth", result.readQueueDepth);
    return report;
}

} // namespace menda::core
