/**
 * @file
 * Resumable kernel execution: plans + jobs (DESIGN.md §13).
 *
 * MendaSystem's kernel entry points used to be run-to-completion: build
 * the per-rank slices, construct one (PU, controller) pair per rank,
 * tick everything to done(), collect. menda_serve needs the same kernels
 * as *jobs* that interleave on one simulated machine, so the pipeline is
 * split in two:
 *
 *  - a *plan* is the host-side allocation + layout work for one matrix:
 *    the NNZ- (or merge-work-) balanced partitioning, the extracted
 *    per-rank slice arrays, and the page-coloring placement. Plans are
 *    immutable and shareable — the serve residency cache keeps them
 *    alive across jobs so a repeated matrix skips re-layout entirely;
 *  - a *job* owns the simulated components (PUs, controllers, one
 *    private TickScheduler per rank shard) and advances in bounded
 *    cycle slices via step(), so a scheduler can interleave many jobs
 *    on one machine and a long SpGEMM cannot starve short SpMVs.
 *
 * runToCompletion() preserves the classic batch behavior (including the
 * host thread pool); outputs, counters, and reports are bit-identical
 * between stepped and batch execution because pausing runUntil() does
 * not change the tick sequence.
 */

#ifndef MENDA_MENDA_JOB_HH
#define MENDA_MENDA_JOB_HH

#include <chrono>
#include <memory>
#include <vector>

#include "menda/page_coloring.hh"
#include "menda/system.hh"
#include "sim/clock.hh"

namespace menda::core
{

/** Host-side layout for a transposition run of one matrix. */
struct TransposePlan
{
    Index rows = 0, cols = 0;
    std::uint64_t nnz = 0;
    std::vector<sparse::RowSlice> slices;  ///< balanced row ranges
    std::vector<sparse::CsrMatrix> csr;    ///< extracted per-rank slices
    PageTable pages;                       ///< page-colored placement

    /** Simulated bytes this layout keeps resident (cache accounting). */
    std::uint64_t residentBytes() const;
};

/** Host-side layout for SpMV: slices stored in partitioned CSC. */
struct SpmvPlan
{
    Index rows = 0, cols = 0;
    std::uint64_t nnz = 0;
    std::vector<sparse::RowSlice> slices;
    std::vector<sparse::CscMatrix> csc;    ///< per-rank CSC partitions
    PageTable pages;

    std::uint64_t residentBytes() const;
};

/** Host-side layout for SpGEMM C = A x B (B replicated per rank). */
struct SpgemmPlan
{
    Index rows = 0, cols = 0;              ///< dimensions of C
    std::uint64_t nnz = 0;                 ///< nnz(A) + nnz(B)
    std::vector<sparse::RowSlice> slices;  ///< A split by merge work
    std::vector<sparse::CsrMatrix> csr;    ///< extracted A slices
    sparse::CsrMatrix b;                   ///< replicated second operand
    std::uint64_t partialProducts = 0;

    std::uint64_t residentBytes() const;
};

/** Build the layouts MendaSystem's kernels consume (config: rank count
 *  and the rowPartitioning ablation knob). */
std::shared_ptr<const TransposePlan>
planTranspose(const sparse::CsrMatrix &a, const SystemConfig &config);
std::shared_ptr<const SpmvPlan> planSpmv(const sparse::CsrMatrix &a,
                                         const SystemConfig &config);
std::shared_ptr<const SpgemmPlan> planSpgemm(const sparse::CsrMatrix &a,
                                             const sparse::CsrMatrix &b,
                                             const SystemConfig &config);

/**
 * One offloaded kernel with resumable execution.
 *
 * Detailed tier: every rank owns a private shard (TickScheduler + PU +
 * controller); step(n) advances each unfinished shard by up to n PU
 * cycles. Fast tiers (Functional/Sampled) execute one rank's whole
 * kernel per step() call — the semantics run up front, the analytical
 * cycle estimate still reaches puCycles() for occupancy accounting.
 */
class KernelJob
{
  public:
    enum class Kind : std::uint8_t { Transpose, Spmv, Spgemm };

    KernelJob(const SystemConfig &config,
              std::shared_ptr<const TransposePlan> plan,
              obs::Tracer *tracer = nullptr);
    KernelJob(const SystemConfig &config,
              std::shared_ptr<const SpmvPlan> plan, std::vector<Value> x,
              obs::Tracer *tracer = nullptr);
    KernelJob(const SystemConfig &config,
              std::shared_ptr<const SpgemmPlan> plan,
              obs::Tracer *tracer = nullptr);
    ~KernelJob();

    KernelJob(const KernelJob &) = delete;
    KernelJob &operator=(const KernelJob &) = delete;

    Kind kind() const { return kind_; }
    const SystemConfig &config() const { return config_; }
    bool done() const;

    /**
     * Advance the job by one bounded slice: up to @p max_pu_cycles PU
     * cycles on every unfinished rank shard (Detailed), or one rank's
     * complete fast-tier kernel (Functional/Sampled). Returns true when
     * the job has just finished. A slice of 0 is a no-op.
     */
    bool step(Cycle max_pu_cycles);

    /** Classic batch execution: run every rank to completion, using the
     *  host thread pool when config.hostThreads != 1. */
    void runToCompletion();

    /** PU cycles of the slowest rank so far (exact once done). */
    Cycle puCycles() const;

    /** Input non-zeros (throughput metric basis). */
    std::uint64_t nnz() const;

    // --- results; valid once done() ---
    TransposeResult takeTranspose();
    SpmvResult takeSpmv();
    SpgemmResult takeSpgemm();

    /** Per-PU iteration stats (Fig. 12 analysis). Valid once done. */
    const std::vector<std::vector<IterationStats>> &iterationStats() const
    {
        return iterStats_;
    }

  private:
    /** One rank's private simulation: scheduler + clock domains. */
    struct Shard
    {
        TickScheduler sched;
        ClockDomain *puClk = nullptr;
        ClockDomain *memClk = nullptr;
        bool finished = false;
        double seconds = 0.0;
        Cycle nextMark = 0; ///< next --progress heartbeat boundary
    };

    void buildComponents(const SystemConfig &config, obs::Tracer *tracer);
    void runShardToCompletion(std::size_t i);
    void runFastRank(std::size_t i);
    double finishSeconds() const;
    void collect(RunResult &result);

    Kind kind_;
    SystemConfig config_;

    // Shared immutable inputs (exactly one of these is set).
    std::shared_ptr<const TransposePlan> transposePlan_;
    std::shared_ptr<const SpmvPlan> spmvPlan_;
    std::shared_ptr<const SpgemmPlan> spgemmPlan_;
    std::vector<Value> x_; ///< SpMV input vector (owned)

    std::vector<std::unique_ptr<dram::MemoryController>> mems_;
    std::vector<std::unique_ptr<Pu>> pus_;
    std::vector<std::unique_ptr<Shard>> shards_; ///< Detailed tier only
    std::vector<FastSimStats> fastStats_;        ///< fast tiers only
    std::size_t nextFastRank_ = 0;

    std::chrono::steady_clock::time_point wallStart_;
    std::vector<std::vector<IterationStats>> iterStats_;
    bool finishedCollect_ = false;
};

} // namespace menda::core

#endif // MENDA_MENDA_JOB_HH
