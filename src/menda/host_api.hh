/**
 * @file
 * The heterogeneous programming model (Sec. 4).
 *
 * The host allocates and initializes data for offloaded tasks; PUs are
 * controlled through memory-mapped registers. Mirroring Fig. 8(a):
 *
 *   nmp::Context ctx(system_config);
 *   auto g = ctx.allocSparseMatrix(a);      // balanced alloc + coloring
 *   ctx.transpose(g);                       // non-blocking start
 *   ctx.wait();                             // block until finish signals
 *   auto view = ctx.getAddr(g, rank);       // partitioned CSC access
 *
 * The allocation call performs the NNZ-based workload balancing and
 * page-coloring placement of Sec. 3.5 and hides the virtual-to-physical
 * mapping; the host keeps using standard compressed formats.
 */

#ifndef MENDA_MENDA_HOST_API_HH
#define MENDA_MENDA_HOST_API_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "menda/memory_map.hh"
#include "menda/page_coloring.hh"
#include "menda/system.hh"
#include "sparse/format.hh"

namespace menda::nmp
{

/**
 * First-fit span allocator over a simulated address space. Frees
 * coalesce with both neighbors and the top-of-heap bump pointer, so
 * alloc/free cycles of a long-lived Context reuse space instead of
 * growing without bound.
 */
class SpanAllocator
{
  public:
    /** Reserve @p size units; returns the span's base. */
    Addr alloc(Addr size);

    /** Return a span obtained from alloc(). */
    void free(Addr base, Addr size);

    /** One past the highest unit ever live (leak diagnostics). */
    Addr highWater() const { return highWater_; }

    /** Units currently allocated. */
    Addr liveUnits() const { return live_; }

  private:
    struct Span
    {
        Addr base = 0, end = 0;
    };
    std::vector<Span> free_; ///< sorted by base, coalesced
    Addr top_ = 0;       ///< bump pointer; shrinks when the top frees
    Addr highWater_ = 0; ///< max top_ ever reached
    Addr live_ = 0;
};

/** Per-PU memory-mapped control/status registers (Sec. 4). */
struct MmioRegisters
{
    bool start = false;
    bool finish = false;
    Addr rowPtrAddr = 0;
    Addr colIdxAddr = 0;
    Addr valueAddr = 0;
    Addr outPtrAddr = 0;
    Addr outIdxAddr = 0;
    Addr outValAddr = 0;
    Index rowBegin = 0;
    Index rowEnd = 0;
};

/** Host view of one rank's partition after transposition. */
struct PartitionView
{
    const sparse::CscMatrix *csc = nullptr; ///< partitioned CSC data
    Index rowBegin = 0;                     ///< global row range
    Index rowEnd = 0;
    Addr ptrAddr = 0, idxAddr = 0, valAddr = 0;
};

/** Handle returned by allocSparseMatrix. */
class MatrixHandle
{
  public:
    const sparse::CsrMatrix &csr() const { return *csr_; }
    const std::vector<sparse::RowSlice> &slices() const { return slices_; }
    const core::PageTable &pageTable() const { return pages_; }

    /** Rank-local physical layout of rank @p r's slice. */
    const core::PuMemoryMap &memoryMap(unsigned r) const
    {
        return maps_[r];
    }

    /** First virtual page of this allocation's colored span. */
    Addr pageBase() const { return pageBase_; }

    /** Still allocated (Context::free not called). */
    bool alive() const { return alive_; }

  private:
    friend class Context;
    const sparse::CsrMatrix *csr_ = nullptr;
    std::vector<sparse::RowSlice> slices_;
    core::PageTable pages_;
    std::vector<core::PuMemoryMap> maps_; ///< per-rank physical layout
    std::vector<Addr> rankBase_;          ///< per-rank span base
    std::vector<Addr> rankBytes_;         ///< per-rank span size
    Addr pageBase_ = 0;                   ///< colored virtual page span
    Addr pageSpan_ = 0;
    bool alive_ = false;
    bool transposed_ = false;
    sparse::CscMatrix result_;
    std::vector<sparse::CscMatrix> partitions_;
    core::RunResult runStats_;
};

class Context
{
  public:
    explicit Context(const core::SystemConfig &config);

    unsigned ranks() const { return config_.totalPus(); }

    /**
     * NMP-aware allocation: NNZ-balanced partitioning plus page-colored
     * placement of each slice (and its row-pointer pages) in its rank.
     */
    MatrixHandle allocSparseMatrix(const sparse::CsrMatrix &a);

    /**
     * Release @p handle's simulated allocation (rank-local spans and
     * colored virtual pages) back to the Context's allocators. The
     * handle's result views stay readable; re-allocating reuses the
     * freed space. Must not be called while the handle's offload is in
     * flight.
     */
    void free(MatrixHandle &handle);

    /** Launch transposition; returns immediately (sets start signals). */
    void transpose(MatrixHandle &handle);

    /** Launch SpMV on the transposed (partitioned CSC) matrix. */
    void spmv(MatrixHandle &handle, const std::vector<Value> &x);

    /**
     * Launch SpGEMM C = handle x @p b through the outer-product merge
     * dataflow (DESIGN.md Sec. 9). @p b must outlive the wait() call;
     * it is replicated into every rank at offload time.
     */
    void spgemm(MatrixHandle &handle, const sparse::CsrMatrix &b);

    /** Block until every PU has set its finish signal. */
    void wait();

    /** True once all finish signals are set (non-blocking poll). */
    bool finished() const { return !pending_; }

    /** Partitioned output access: the NMP::getAddr(i) of Fig. 8(a). */
    PartitionView getAddr(const MatrixHandle &handle, unsigned rank) const;

    /** Whole-matrix transposition result (host-side convenience). */
    const sparse::CscMatrix &result(const MatrixHandle &handle) const;

    /** SpMV result vector. */
    const std::vector<double> &vectorResult() const { return lastY_; }

    /** SpGEMM result matrix (CSR). */
    const sparse::CsrMatrix &productResult() const { return lastC_; }

    /** Simulated statistics of the last completed offload. */
    const core::RunResult &lastRun() const { return lastRun_; }

    /** MMIO register file of PU @p rank (testing/diagnostics). */
    const MmioRegisters &mmio(unsigned rank) const { return mmio_[rank]; }

    /** Bytes currently allocated in rank @p r (leak diagnostics). */
    Addr rankLiveBytes(unsigned r) const
    {
        return rankAlloc_[r].liveUnits();
    }

    /** High-water mark of rank @p r's simulated heap, bytes. */
    Addr rankHighWater(unsigned r) const
    {
        return rankAlloc_[r].highWater();
    }

  private:
    core::SystemConfig config_;
    core::MendaSystem system_;
    std::vector<MmioRegisters> mmio_;
    std::vector<SpanAllocator> rankAlloc_; ///< rank-local bytes, per rank
    SpanAllocator pageAlloc_;              ///< colored virtual pages

    // Simulation host: pending offload executed in wait().
    enum class Op { None, Transpose, Spmv, Spgemm };
    Op pendingOp_ = Op::None;
    bool pending_ = false;
    MatrixHandle *pendingHandle_ = nullptr;
    std::vector<Value> pendingX_;
    const sparse::CsrMatrix *pendingB_ = nullptr;

    core::RunResult lastRun_;
    std::vector<double> lastY_;
    sparse::CsrMatrix lastC_;
};

} // namespace menda::nmp

#endif // MENDA_MENDA_HOST_API_HH
