#include "menda/merge_tree.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace menda::core
{

MergeTree::MergeTree(const PuConfig &config, MergeKey key)
    : leaves_(config.leaves),
      key_(key),
      rootOut_(config.fifoEntries)
{
    if (leaves_ < 2 || (leaves_ & (leaves_ - 1)) != 0)
        menda_fatal("merge tree needs a power-of-two leaf count >= 2, got ",
                    leaves_);
    levels_ = static_cast<unsigned>(std::countr_zero(leaves_));
    pes_.reserve(peCount());
    for (unsigned p = 0; p < peCount(); ++p)
        pes_.emplace_back(config.fifoEntries);
    scheduledEpoch_.assign(peCount(), 0);
#ifdef MENDA_CHECKS
    lastPeKey_.assign(peCount(), 0);
    peHasLast_.assign(peCount(), false);
#endif
}

bool
MergeTree::canPush(unsigned slot) const
{
    menda_assert(slot < streamSlots(), "bad stream slot");
    const unsigned pe = leaves_ / 2 - 1 + slot / 2;
    return !pes_[pe].in[slot % 2].full();
}

void
MergeTree::push(unsigned slot, const Packet &packet)
{
    menda_assert(canPush(slot), "push to full stream slot");
    const unsigned pe = leaves_ / 2 - 1 + slot / 2;
    pes_[pe].in[slot % 2].push(packet);
    ++buffered_;
    schedule(pe);
}

Packet
MergeTree::pop()
{
    Packet packet = rootOut_.pop();
    --buffered_;
#ifdef MENDA_CHECKS
    if (packet.valid) {
        menda_assert(!rootHasLast_ ||
                         mergeKey(packet, key_) >= lastRootKey_,
                     "merge tree root emitted a decreasing key within "
                     "a round");
        rootHasLast_ = true;
        lastRootKey_ = mergeKey(packet, key_);
    }
    if (packet.eol)
        rootHasLast_ = false;
#endif
    if (packet.valid)
        ++rootPops_;
    if (packet.eol)
        ++roundsDone_;
    schedule(0);
    return packet;
}

Fifo<Packet> &
MergeTree::outputOf(unsigned pe, bool &is_root)
{
    if (pe == 0) {
        is_root = true;
        return rootOut_;
    }
    is_root = false;
    return pes_[(pe - 1) / 2].in[(pe - 1) % 2];
}

void
MergeTree::schedule(unsigned pe)
{
    if (scheduledEpoch_[pe] == epoch_ + 1)
        return;
    scheduledEpoch_[pe] = epoch_ + 1;
    next_.push_back(pe);
}

void
MergeTree::scheduleNeighbours(unsigned pe)
{
    schedule(pe);
    if (pe != 0)
        schedule((pe - 1) / 2);
    const unsigned left = 2 * pe + 1;
    if (left < peCount())
        schedule(left);
    const unsigned right = 2 * pe + 2;
    if (right < peCount())
        schedule(right);
}

bool
MergeTree::evaluate(unsigned pe)
{
    Pe &node = pes_[pe];
    bool changed = false;

    // Absorb empty-stream tokens: pure control, no data slot consumed.
    for (int side = 0; side < 2; ++side) {
        if (!node.terminated[side] && !node.in[side].empty() &&
            !node.in[side].front().valid) {
            menda_assert(node.in[side].front().eol,
                         "invalid packet without EOL");
            node.in[side].pop();
            --buffered_;
            node.terminated[side] = true;
            noteLeafPop(pe, side);
            changed = true;
        }
    }

    bool is_root = false;
    Fifo<Packet> &out = outputOf(pe, is_root);
    if (out.full())
        return changed;

    const bool have[2] = {
        !node.terminated[0] && !node.in[0].empty(),
        !node.terminated[1] && !node.in[1].empty(),
    };

    if (node.terminated[0] && node.terminated[1]) {
        // Both streams of this round were empty (or ended on absorbed
        // tokens): propagate a pure end-of-line and start the next round.
        out.push(Packet::endOfLine());
        ++buffered_;
        node.terminated[0] = node.terminated[1] = false;
#ifdef MENDA_CHECKS
        peHasLast_[pe] = false;
#endif
        return true;
    }

    // A PE only pops when each side has either supplied a packet or
    // finished its stream — otherwise a smaller index might still arrive.
    if ((!have[0] && !node.terminated[0]) ||
        (!have[1] && !node.terminated[1]))
        return changed;

    int side;
    if (have[0] && have[1]) {
        // Tie pops the LEFT child: stability keeps equal merge indices in
        // leaf order, i.e. ascending secondary index.
        side = mergeKey(node.in[0].front(), key_) <=
                       mergeKey(node.in[1].front(), key_)
                   ? 0
                   : 1;
    } else {
        side = have[0] ? 0 : 1;
    }

    Packet packet = node.in[side].pop();
    noteLeafPop(pe, side);
    if (packet.eol)
        node.terminated[side] = true;
    packet.eol = node.terminated[0] && node.terminated[1];
    if (packet.eol) {
        // Last element of the merged stream: round completes here.
        node.terminated[0] = node.terminated[1] = false;
    }
#ifdef MENDA_CHECKS
    if (packet.valid) {
        menda_assert(!peHasLast_[pe] ||
                         mergeKey(packet, key_) >= lastPeKey_[pe],
                     "merge PE forwarded a decreasing key within a round");
        peHasLast_[pe] = true;
        lastPeKey_[pe] = mergeKey(packet, key_);
    }
    if (packet.eol)
        peHasLast_[pe] = false;
#endif
    out.push(packet);
    ++peMoves_;
    return true;
}

void
MergeTree::noteLeafPop(unsigned pe, int side)
{
    const unsigned first_leaf = leaves_ / 2 - 1;
    if (pe >= first_leaf)
        freedSlots_.push_back((pe - first_leaf) * 2 +
                              static_cast<unsigned>(side));
}

void
MergeTree::tick()
{
    freedSlots_.clear();
    occupancyCycles_ += buffered_;
    if (rootOut_.empty())
        ++rootIdle_;
    ++epoch_;
    current_.swap(next_);
    next_.clear();
    // Parents before children: a packet advances one level per cycle.
    std::sort(current_.begin(), current_.end());
    for (unsigned pe : current_) {
        if (evaluate(pe))
            scheduleNeighbours(pe);
    }
    current_.clear();
}

bool
MergeTree::drained() const
{
    if (!rootOut_.empty())
        return false;
    for (const Pe &node : pes_) {
        if (!node.in[0].empty() || !node.in[1].empty())
            return false;
        if (node.terminated[0] || node.terminated[1])
            return false;
    }
    return true;
}

} // namespace menda::core
