/**
 * @file
 * Estimator math of the Sampled simulation tier (DESIGN.md §12).
 *
 * Kept as small pure functions so the extrapolation and its confidence
 * interval are unit-testable independently of the PU machinery. A
 * sampled run measures the merge retirement rate (root pops per PU
 * cycle) inside each detailed window; the cycles of the fast-forwarded
 * gaps are extrapolated from those rates, and the spread of the
 * per-window rates yields an error bound on the extrapolated total.
 */

#ifndef MENDA_MENDA_SAMPLED_STATS_HH
#define MENDA_MENDA_SAMPLED_STATS_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace menda::core::sampled
{

/**
 * Steady-state rate of one measurement window: pops/cycles over the
 * post-warmup span, falling back to the whole-window mean when the
 * steady span is degenerate. Returns 0 when the window made no
 * progress at all (caller must extend the window or reuse a prior
 * rate).
 */
inline double
windowRate(std::uint64_t pops_total, Cycle cycles_total,
           std::uint64_t pops_at_warmup, Cycle warmup_cycles)
{
    if (cycles_total > warmup_cycles && pops_total > pops_at_warmup)
        return static_cast<double>(pops_total - pops_at_warmup) /
               static_cast<double>(cycles_total - warmup_cycles);
    if (cycles_total > 0 && pops_total > 0)
        return static_cast<double>(pops_total) /
               static_cast<double>(cycles_total);
    return 0.0;
}

/**
 * Cycles to charge for @p elements retired off-window at @p rate
 * elements/cycle (rounded up; at least one cycle per element batch).
 */
inline Cycle
chargeForElements(std::uint64_t elements, double rate)
{
    if (elements == 0)
        return 0;
    if (rate <= 0.0)
        return elements; // degenerate: assume the 1-pop/cycle bound
    const double cycles = std::ceil(static_cast<double>(elements) / rate);
    return cycles < 1.0 ? 1 : static_cast<Cycle>(cycles);
}

/**
 * Variance-derived confidence interval (percent) on the rate
 * extrapolation: a ~95% normal interval on the mean window rate,
 * z * s / (mean * sqrt(k)), expressed in percent. With fewer than two
 * windows there is no variance estimate — report 100% (unknown).
 */
inline double
errorBoundPct(const std::vector<double> &rates)
{
    if (rates.size() < 2)
        return 100.0;
    double sum = 0.0;
    for (double r : rates)
        sum += r;
    const double mean = sum / static_cast<double>(rates.size());
    if (mean <= 0.0)
        return 100.0;
    double ss = 0.0;
    for (double r : rates)
        ss += (r - mean) * (r - mean);
    const double stddev =
        std::sqrt(ss / static_cast<double>(rates.size() - 1));
    constexpr double z = 1.96; // ~95% two-sided normal quantile
    const double bound =
        100.0 * z * stddev /
        (mean * std::sqrt(static_cast<double>(rates.size())));
    return bound;
}

} // namespace menda::core::sampled

#endif // MENDA_MENDA_SAMPLED_STATS_HH
