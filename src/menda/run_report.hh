/**
 * @file
 * Build an obs::RunReport from a kernel's RunResult.
 *
 * One place defines which metrics a MeNDA run exports, so the CLI
 * (`menda_sim --report`) and the bench harnesses emit reports with
 * identical metric names and tools/menda_report_diff can compare any
 * two of them. Deterministic simulation outputs (cycles, traffic,
 * stalls) become gated metrics; host-dependent rates (wall time,
 * sim-cycles/sec) use names the default DiffOptions ignore.
 */

#ifndef MENDA_MENDA_RUN_REPORT_HH
#define MENDA_MENDA_RUN_REPORT_HH

#include <cstdint>
#include <string>

#include "menda/system.hh"
#include "obs/report.hh"

namespace menda::core
{

/**
 * Flatten @p result into a report named @p name.
 *
 * @param kernel        "transpose" | "spmv" | "spgemm" (meta annotation)
 * @param nnz           input non-zeros (throughput metric); 0 to skip
 * @param wall_seconds  host wall time of the run; <= 0 to skip the
 *                      wall/sim-rate metrics (they are diff-ignored
 *                      either way)
 */
obs::RunReport makeRunReport(const std::string &name,
                             const std::string &kernel,
                             const SystemConfig &config,
                             const RunResult &result, std::uint64_t nnz,
                             double wall_seconds = 0.0);

} // namespace menda::core

#endif // MENDA_MENDA_RUN_REPORT_HH
