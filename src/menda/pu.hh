/**
 * @file
 * A MeNDA processing unit (Sec. 3.2).
 *
 * One PU lives in the buffer chip of a DIMM beside one DRAM rank and
 * transposes one horizontal slice of the sparse matrix (or, in SpMV mode,
 * merges one slice's column streams into a partition of the result
 * vector). It consists of:
 *
 *   - a hardware merge tree (merge_tree.hh),
 *   - one prefetch buffer per stream slot (prefetch_buffer.hh),
 *   - an output unit behind the root PE (output_unit.hh),
 *   - a controller FSM that walks pointer arrays, carves sorted streams,
 *     and assigns them to prefetch buffers round by round,
 *   - a memory interface unit: the read queue (with request coalescing)
 *     and write queue in front of a rank-private DDR4 controller.
 *
 * The PU ticks at the PU clock (800 MHz nominal); its DRAM controller
 * ticks at the memory clock. One load request and one store request can
 * be enqueued per PU cycle, and one memory response is consumed per PU
 * cycle and broadcast to the prefetch buffers (Sec. 3.2).
 */

#ifndef MENDA_MENDA_PU_HH
#define MENDA_MENDA_PU_HH

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "dram/controller.hh"
#include "menda/memory_map.hh"
#include "menda/merge_tree.hh"
#include "menda/output_unit.hh"
#include "menda/prefetch_buffer.hh"
#include "menda/pu_config.hh"
#include "menda/sim_mode.hh"
#include "menda/stream.hh"
#include "obs/trace.hh"
#include "sparse/format.hh"
#include "spgemm/partial_products.hh"
#include "spgemm/plan.hh"
#include "sim/clock.hh"

namespace menda::core
{

/** What dataflow the PU executes. */
enum class PuMode : std::uint8_t
{
    Transpose, ///< CSR slice -> CSC slice (Sec. 3.1-3.5)
    Spmv,      ///< CSC slice * x -> dense y partition (Sec. 3.6)
    Spgemm,    ///< A slice x B -> CSR slice of C (outer product)
};

/** Per-iteration measurements for the Fig. 12-style breakdowns. */
struct IterationStats
{
    Cycle cycles = 0;
    std::uint64_t readBlocks = 0;
    std::uint64_t writeBlocks = 0;
    std::uint64_t coalescedRequests = 0;
};

/** Per-PU results of a fast-tier run (DESIGN.md §12). */
struct FastSimStats
{
    unsigned sampledWindows = 0;   ///< detailed windows executed
    double errorBoundPct = 0.0;    ///< ~95% CI on the cycle extrapolation
    Cycle fastForwardedCycles = 0; ///< cycles charged outside windows
};

class Pu : public Ticked
{
  public:
    /**
     * Transposition PU.
     * @param slice      this PU's horizontal CSR partition
     * @param row_offset global index of the slice's first row
     * @param mem        rank-private memory controller (not owned)
     */
    Pu(std::string name, const PuConfig &config,
       const sparse::CsrMatrix *slice, Index row_offset,
       dram::MemoryController *mem);

    /**
     * SpMV PU: @p slice_csc is the horizontal partition stored in
     * partitioned CSC; @p x is the dense input vector (cols entries).
     */
    Pu(std::string name, const PuConfig &config,
       const sparse::CscMatrix *slice_csc, const std::vector<Value> *x,
       Index row_offset, dram::MemoryController *mem);

    /**
     * SpGEMM PU: computes the rows of C = A x B belonging to
     * @p a_slice. @p b is the second operand, replicated into this
     * PU's rank. Every non-zero of the slice becomes one scaled-B-row
     * partial-product stream; the tree merges them by (row, col) and
     * the root reduction accumulates duplicate keys (DESIGN.md Sec. 9).
     */
    Pu(std::string name, const PuConfig &config,
       const sparse::CsrMatrix *a_slice, const sparse::CsrMatrix *b,
       Index row_offset, dram::MemoryController *mem);

    /** Arm execution; the host writes the start MMIO register (Sec. 4). */
    void start();

    /** Fast-tier progress callback: (total PU cycles, fast-forwarded). */
    using ProgressHook = std::function<void(Cycle, Cycle)>;

    /**
     * Run the whole kernel in the Functional tier (DESIGN.md §12):
     * bitwise the same results as ticking to done(), with puCycles from
     * an analytical per-iteration model. Call INSTEAD of start()/tick();
     * done() holds on return.
     */
    FastSimStats runFunctional(const ProgressHook &progress = {});

    /**
     * Run the whole kernel in the Sampled tier (DESIGN.md §12):
     * functional fast-forward punctuated by cycle-accurate measurement
     * windows on throwaway PU/controller pairs; puCycles is
     * extrapolated from the per-window merge rates. Results are bitwise
     * the same as Detailed. Call INSTEAD of start()/tick().
     */
    FastSimStats runSampled(const SampledConfig &sampled,
                            const ProgressHook &progress = {});

    bool started() const { return phase_ != Phase::Idle; }
    bool done() const { return phase_ == Phase::Done; }

    void tick() override;

    /**
     * Idle-skip protocol: before start() and after completion tick() is
     * a pure no-op (the cycle counter does not advance either), so those
     * phases may be skipped indefinitely; a running or draining PU does
     * work every cycle and stays densely ticked. The default no-op
     * skipCycles() is exactly right for the skippable phases.
     */
    Cycle
    quiescentFor() const override
    {
        return phase_ == Phase::Idle || phase_ == Phase::Done ? ~Cycle(0)
                                                              : 0;
    }

    // --- results ---
    /** Transposed slice in CSC, row indices global. Valid once done. */
    const sparse::CscMatrix &resultCsc() const { return resultCsc_; }

    /** SpMV partition result y[row_offset ...]. Valid once done. */
    const std::vector<double> &resultVector() const { return resultVec_; }

    /** SpGEMM slice of C in CSR, rows LOCAL to the slice. Valid once
     *  done; the host stitches slices by row-range concatenation. */
    const sparse::CsrMatrix &resultCsr() const { return resultCsr_; }

    // --- observability ---
    Cycle cycles() const { return cycle_; }
    unsigned iterationsExecuted() const
    {
        return static_cast<unsigned>(iterStats_.size());
    }
    const std::vector<IterationStats> &iterationStats() const
    {
        return iterStats_;
    }

    /**
     * Per-iteration COO ping-pong spill traffic in 64 B blocks (SpGEMM
     * only; empty in other modes). Reads are analytic span counts of
     * the runs consumed by each iteration (3 arrays); writes are the
     * measured store blocks of each non-final iteration. Final
     * iterations read leaves/runs but spill nothing, so the last write
     * entry is always 0.
     */
    const std::vector<std::uint64_t> &spilledReadBlocks() const
    {
        return spilledReadBlocks_;
    }
    const std::vector<std::uint64_t> &spilledWriteBlocks() const
    {
        return spilledWriteBlocks_;
    }
    const MergeTree &tree() const { return tree_; }
    dram::MemoryController &mem() { return *mem_; }
    const PuMemoryMap &memoryMap() const { return map_; }
    const StatGroup &stats() const { return stats_; }
    std::uint64_t loadsIssued() const { return loads_.value(); }
    std::uint64_t storesIssued() const { return stores_.value(); }
    std::uint64_t retriesIssued() const { return retries_.value(); }

    /** Cycles the root had output but the output unit back-pressured. */
    std::uint64_t outputStallCycles() const { return output_.stallCycles(); }

    /** Buffer-cycles a ready packet was blocked on a full leaf FIFO. */
    std::uint64_t leafPushStallCycles() const { return pushStalls_.value(); }

    /** Lengths (in PU cycles) of contiguous leaf-push stall runs. */
    const Histogram &leafStallRuns() const { return leafStallRuns_; }

    /** Periodic merge-tree occupancy samples (PuConfig::samplePeriod). */
    const IntervalSampler &occupancySamples() const
    {
        return occupancySamples_;
    }

    /**
     * Emit phase spans, fetch-round instants, and occupancy counter
     * samples onto @p shard. Call from the owning thread before the
     * first tick.
     */
    void attachTrace(obs::TraceShard *shard);

  private:
    enum class Phase : std::uint8_t
    {
        Idle,
        Running,  ///< iterations in flight
        Draining, ///< last iteration: waiting for stores to land
        Done,
    };

    void setupIteration();
    void finishIteration();
    Packet readElement(const StreamDesc &desc, std::uint64_t element) const;
    void handleResponse(const mem::MemRequest &req);
    void markControllerArrival(Addr addr);
    std::uint64_t streamCount() const;
    void commonInit();
    void doAssignments();
    void doLoadPort();
    void doStorePort();
    void doPushQueue();
    void doRootPop();
    void pointerEngine();
    void noteBufferActivity(unsigned slot);
    StreamDesc streamForOrdinal(std::uint64_t ordinal) const;

    // --- SpGEMM Huffman scheduler (DESIGN.md §15) ---

    /** Build iterStreams_/roundsTotal_/finalIteration_ from mergePlan_. */
    void buildIterationStreams();

    /** All metadata blocks of a condensed leaf's sub-streams arrived? */
    bool spgemmLeafReady(std::uint64_t leaf_index) const;

    /** CondensedChunkPlanner: map a virtual pack cursor to one
     *  sub-stream's share of one aligned B span. */
    std::uint64_t condensedChunk(const StreamDesc &desc,
                                 std::uint64_t cursor,
                                 std::vector<Addr> &blocks) const;

    // --- fast simulation tiers (pu_fastsim.cc) ---

    /**
     * Measurement-window PU: a throwaway clone that replays @p streams
     * (the parent's remaining work, slot-aligned) cycle-accurately
     * against a private controller. Reads COO intermediates out of the
     * PARENT's ping-pong buffers via cooSrc_.
     */
    Pu(const Pu &parent, std::vector<StreamDesc> streams, bool final_iter,
       dram::MemoryController *mem);

    /** start() for a window PU: no pointer walk, streams are explicit. */
    void startWindow();

    /**
     * Functional warming (DESIGN.md §12): hand out the first streams and
     * fill the prefetch buffers instantly to @p fill_frac of capacity
     * (staggered around it), opening the touched DRAM rows, as the
     * detailed engine mid-run would have. The fraction is fed back from
     * the previous window's avgBufferFill() so priming tracks the
     * workload's actual steady state. Not used for the run-start anchor
     * window, whose cold start is reality.
     */
    void primeWindow(double fill_frac);

    /** Mean prefetch-buffer occupancy over capacity, in [0, 1]. */
    double avgBufferFill() const;

    /** Fresh full clone of this PU (for the run-start anchor window). */
    std::unique_ptr<Pu> cloneFresh(dram::MemoryController *mem) const;

    /** Builds the slot-aligned remaining-work streams lazily. */
    using SuffixFn = std::function<std::vector<StreamDesc>()>;
    /** Called every checkpoint stride with total elements retired. */
    using CheckpointFn =
        std::function<void(std::uint64_t retired, const SuffixFn &)>;

    /**
     * Advance the current iteration's merge semantically (stable k-way
     * merge replicating the tree's slot-order tiebreak and the root
     * reduction), feeding output_ and draining its stores. Returns
     * elements retired; bumps @p write_blocks per store drained.
     */
    std::uint64_t functionalMergeRounds(std::uint64_t &write_blocks,
                                        const CheckpointFn &checkpoint);

    /** Feed one root packet to output_ and drain its stores. */
    void acceptFunctional(const Packet &packet,
                          std::uint64_t &write_blocks);

    /** Estimated read-block traffic of the current iteration. */
    std::uint64_t functionalReadBlockEstimate() const;

    /** Analytical cycle model of one iteration (Functional tier). */
    Cycle estimateIterationCycles(std::uint64_t elements,
                                  std::uint64_t read_blocks,
                                  std::uint64_t write_blocks) const;

    std::string name_;
    PuConfig config_;
    PuMode mode_;

    // Functional inputs.
    const sparse::CsrMatrix *csr_ = nullptr; ///< transpose/SpGEMM A slice
    const sparse::CscMatrix *csc_ = nullptr; ///< SpMV input
    const std::vector<Value> *vecX_ = nullptr;
    const sparse::CsrMatrix *bMat_ = nullptr; ///< SpGEMM B (replicated)
    Index rowOffset_ = 0;

    PuMemoryMap map_;
    dram::MemoryController *mem_;

    MergeTree tree_;
    OutputUnit output_;
    std::vector<std::unique_ptr<PrefetchBuffer>> buffers_;

    // Controller FSM state.
    Phase phase_ = Phase::Idle;
    unsigned iteration_ = 0;
    bool finalIteration_ = false;
    int srcCoo_ = 0;
    std::vector<StreamDesc> streams_;   ///< this iteration's inputs
    std::vector<std::uint64_t> bufferNextRound_;
    std::uint64_t roundsTotal_ = 0;
    std::uint64_t roundsBeforeIteration_ = 0; ///< root EOLs at setup
    MergedOutput coo_[2];               ///< functional ping-pong contents
    /** Where Coo stream reads resolve: own coo_ normally; the parent's
     *  buffers for a measurement-window PU. */
    const MergedOutput *cooSrc_[2] = {&coo_[0], &coo_[1]};
    bool windowMode_ = false;  ///< throwaway measurement-window PU
    bool windowFinal_ = false; ///< window replays a final iteration
    Packet reduction_;                  ///< SpMV root reduction register
    Packet pendingEmit_;                ///< spilled second reduction emit
    bool pendingEmitValid_ = false;

    // Pointer-walk engine (iteration 0).
    bool pointerPhase_ = false;
    std::uint64_t ptrBlocksTotal_ = 0;
    std::uint64_t ptrNextIssue_ = 0;    ///< index into neededPtrBlocks_
    std::uint64_t ptrOutstanding_ = 0;
    std::vector<bool> ptrArrived_;
    std::vector<std::uint64_t> neededPtrBlocks_;
    std::deque<Addr> pendingPtrLoads_;
    std::unordered_map<Addr, Cycle> ptrInFlight_; ///< for link retries
    std::vector<Index> neRows_;   ///< non-empty rows (cols in SpMV mode)

    // SpGEMM controller state (iteration 0): the stream table built from
    // the A slice, the ordered list of controller metadata block loads
    // (A row pointers, A indices/values, first-use B row pointers), and
    // arrival bitmaps gating stream assignment on the blocks that define
    // each stream's bounds and scale.
    std::vector<spgemm::PartialProductStream> spgemmStreams_;
    std::vector<Addr> ctrlLoads_;
    std::uint64_t ctrlNextIssue_ = 0;
    std::vector<bool> aIdxArrived_, aValArrived_, bPtrArrived_;

    // SpGEMM Huffman scheduler state (empty under the uniform oracle).
    // streamElemPrefix_[t] = cumulative elements of streams [0, t); a
    // condensed leaf's virtual element space is the prefix range of its
    // packed streams. iterStreams_ is the current iteration's padded
    // slot table — ordinal = round * leaves + slot, the same contract
    // the uniform controller and both fast tiers share.
    bool huffman_ = false;
    std::vector<spgemm::CondensedLeaf> condensedLeaves_;
    std::vector<std::uint64_t> streamElemPrefix_;
    spgemm::MergeTreePlan mergePlan_;
    std::vector<StreamDesc> leafDescs_;
    std::vector<StreamDesc> iterStreams_;

    // Per-iteration spill traffic (SpGEMM only, both schedulers).
    std::vector<std::uint64_t> spilledReadBlocks_, spilledWriteBlocks_;

    // Response path: DRAM-clock callback -> PU-clock consumption.
    std::deque<mem::MemRequest> responses_;

    /** Buffers awaiting a block, plus when its load was first issued
     *  (for the link-error retry path). */
    struct Waiters
    {
        std::vector<unsigned> buffers;
        Cycle issuedAt = 0;
    };
    std::unordered_map<Addr, Waiters> waiters_;

    // Load/store/push scheduling.
    std::deque<unsigned> issueQueue_;
    std::vector<bool> inIssueQueue_;
    std::deque<unsigned> pushQueue_;
    std::vector<bool> inPushQueue_;
    std::deque<unsigned> assignQueue_;
    std::vector<bool> inAssignQueue_;

    // Results.
    sparse::CscMatrix resultCsc_;
    std::vector<double> resultVec_;
    sparse::CsrMatrix resultCsr_;

    Cycle cycle_ = 0;
    Cycle iterStartCycle_ = 0;
    std::uint64_t iterStartReads_ = 0;
    std::uint64_t iterStartWrites_ = 0;
    std::uint64_t iterStartCoalesced_ = 0;
    std::vector<IterationStats> iterStats_;

    Counter loads_, stores_, responsesHandled_, assignments_, retries_;
    Counter pushStalls_;
    Histogram leafStallRuns_;
    std::vector<Cycle> stallStart_; ///< per slot; 0 = not stalled
    IntervalSampler occupancySamples_;

    // Event tracing (null when untraced; single-writer like the stats).
    obs::TraceShard *trace_ = nullptr;
    std::uint32_t tracePhases_ = 0, traceRounds_ = 0;
    std::uint32_t traceOccupancy_ = 0;
    std::uint32_t nameDrain_ = 0, nameRound_ = 0;
    std::uint64_t traceRoundsSeen_ = 0;
    Cycle drainStartCycle_ = 0;

    void sampleOccupancy();

    StatGroup stats_;
};

// Inline: called once per element on both the detailed engine's fetch
// path and the functional merge's hot loop.
inline Packet
Pu::readElement(const StreamDesc &desc, std::uint64_t element) const
{
    const bool last = element + 1 == desc.end;
    switch (desc.source) {
      case StreamSource::CsrRow:
        return Packet::data(desc.fixedIndex, csr_->idx[element],
                            csr_->val[element], last);
      case StreamSource::CscColumn: {
        // SpMV iteration 0: the vectorized multiplier scales the value
        // by the matching input-vector element as it is fetched.
        const Value scaled = csc_->val[element] *
                             (*vecX_)[desc.fixedIndex];
        return Packet::data(csc_->idx[element], desc.fixedIndex, scaled,
                            last);
      }
      case StreamSource::Coo: {
        const MergedOutput &coo = *cooSrc_[desc.cooBuffer];
        return Packet::data(coo.row[element], coo.col[element],
                            coo.val[element], last);
      }
      case StreamSource::ScaledBRow:
        // SpGEMM iteration 0: one partial product A(i, k) * B(k, j),
        // scaled by the multiplier latched in the stream descriptor as
        // the B element is fetched (the SpMV vectorized-multiply path).
        return Packet::data(desc.fixedIndex, bMat_->idx[element],
                            desc.scale * bMat_->val[element], last);
      case StreamSource::CondensedLeaf: {
        // A packed leaf addresses the concatenated element space of its
        // sub-streams; map the virtual offset back to the owning stream
        // (skipping empty ones) and on to B's arrays. Each sub-stream
        // keeps its own output row and scale.
        const spgemm::CondensedLeaf &leaf = condensedLeaves_[desc.auxIndex];
        const auto first = streamElemPrefix_.begin() + leaf.firstStream;
        const auto it = std::upper_bound(
            first, first + leaf.streamCount + 1, element);
        const std::uint64_t t = (it - streamElemPrefix_.begin()) - 1;
        const spgemm::PartialProductStream &s = spgemmStreams_[t];
        const std::uint64_t off = s.begin + (element - streamElemPrefix_[t]);
        return Packet::data(s.outRow, bMat_->idx[off],
                            s.scale * bMat_->val[off], last);
      }
    }
    menda_panic("unreachable stream source");
}

} // namespace menda::core

#endif // MENDA_MENDA_PU_HH
