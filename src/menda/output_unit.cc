#include "menda/output_unit.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::core
{

namespace
{

constexpr std::uint64_t elemsPerBlock = blockBytes / 4;

} // namespace

OutputUnit::OutputUnit(const PuConfig &config, const PuMemoryMap *map)
    : config_(&config), map_(map)
{
}

void
OutputUnit::beginIteration(OutputMode mode, int dst_coo,
                           std::uint64_t expected_rounds, Index total_cols)
{
    mode_ = mode;
    dstCoo_ = dst_coo;
    expectedRounds_ = expected_rounds;
    roundsSeen_ = 0;
    totalCols_ = total_cols;
    nextPtrEntry_ = 0;
    denseBlock_ = ~Addr(0);
    roundStart_ = 0;
    roundBounds_.clear();
    merged_.clear();
    pendingStores_.clear();

    switch (mode) {
      case OutputMode::CooIntermediate:
        rowSink_ = {map_->cooRow(dst_coo), 0};
        colSink_ = {map_->cooCol(dst_coo), 0};
        valSink_ = {map_->cooVal(dst_coo), 0};
        break;
      case OutputMode::CscFinal:
      case OutputMode::CsrFinal:
        // Index array holds row indices (CSC) or column indices (CSR);
        // either way one idx + one val element per merged non-zero and
        // an on-the-fly synthesized pointer array.
        colSink_ = {Region::OutIdx, 0};
        valSink_ = {Region::OutVal, 0};
        ptrSink_ = {Region::OutPtr, 0};
        break;
      case OutputMode::PairIntermediate:
        rowSink_ = {map_->cooRow(dst_coo), 0};
        valSink_ = {map_->cooVal(dst_coo), 0};
        break;
      case OutputMode::DenseFinal:
        break;
    }

    if (expectedRounds_ == 0) {
        // Degenerate slice with no streams at all: the iteration still
        // writes its (all-zero) pointer array in CscFinal mode.
        finishIteration();
    }
}

void
OutputUnit::pushStore(Addr block)
{
    pendingStores_.push_back(block);
}

void
OutputUnit::append(ArraySink &sink, std::uint64_t count)
{
    while (count > 0) {
        const std::uint64_t in_block = sink.elements % elemsPerBlock;
        const std::uint64_t step =
            std::min(count, elemsPerBlock - in_block);
        const std::uint64_t block_first =
            sink.elements - in_block;
        sink.elements += step;
        count -= step;
        if (sink.elements % elemsPerBlock == 0)
            pushStore(map_->blockOf(sink.region, block_first));
    }
}

void
OutputUnit::flush(ArraySink &sink)
{
    if (sink.elements % elemsPerBlock != 0)
        pushStore(map_->blockOf(sink.region, sink.elements));
}

void
OutputUnit::advancePointer(Index col)
{
    // Pointer entry c holds the output offset of column c's first NZ;
    // entries [nextPtrEntry_, col] become final when an element of
    // column `col` is produced.
    if (col < nextPtrEntry_)
        return;
    append(ptrSink_, col + 1 - nextPtrEntry_);
    nextPtrEntry_ = col + 1;
}

void
OutputUnit::accept(const Packet &packet)
{
    menda_assert(canAccept(), "accept while back-pressured");
    if (packet.valid) {
        merged_.row.push_back(packet.row);
        merged_.col.push_back(packet.col);
        merged_.val.push_back(packet.val);
        ++elementsOut_;
        switch (mode_) {
          case OutputMode::CooIntermediate:
            append(rowSink_, 1);
            append(colSink_, 1);
            append(valSink_, 1);
            break;
          case OutputMode::CscFinal:
            advancePointer(packet.col);
            append(colSink_, 1);
            append(valSink_, 1);
            break;
          case OutputMode::CsrFinal:
            // SpGEMM final: packets arrive in (row, col) order, so the
            // ROW index drives the pointer synthesis. totalCols_ holds
            // the slice's row count here.
            advancePointer(packet.row);
            append(colSink_, 1);
            append(valSink_, 1);
            break;
          case OutputMode::PairIntermediate:
            append(rowSink_, 1);
            append(valSink_, 1);
            break;
          case OutputMode::DenseFinal: {
            // Dense vector: one 4-byte element at position row.
            const Addr block = map_->blockOf(Region::OutVal, packet.row);
            if (block != denseBlock_) {
                if (denseBlock_ != ~Addr(0))
                    pushStore(denseBlock_);
                denseBlock_ = block;
            }
            break;
          }
        }
    }
    if (packet.eol) {
        ++roundsSeen_;
        menda_assert(roundsSeen_ <= expectedRounds_,
                     "more rounds than expected");
        roundBounds_.emplace_back(roundStart_, merged_.size());
        roundStart_ = merged_.size();
        if (roundsSeen_ == expectedRounds_)
            finishIteration();
    }
}

void
OutputUnit::finishIteration()
{
    switch (mode_) {
      case OutputMode::CooIntermediate:
        flush(rowSink_);
        flush(colSink_);
        flush(valSink_);
        break;
      case OutputMode::CscFinal:
      case OutputMode::CsrFinal:
        // Trailing pointer entries for columns (rows) past the last
        // non-zero.
        append(ptrSink_, totalCols_ + 1 - nextPtrEntry_);
        nextPtrEntry_ = totalCols_ + 1;
        flush(ptrSink_);
        flush(colSink_);
        flush(valSink_);
        break;
      case OutputMode::PairIntermediate:
        flush(rowSink_);
        flush(valSink_);
        break;
      case OutputMode::DenseFinal:
        if (denseBlock_ != ~Addr(0)) {
            pushStore(denseBlock_);
            denseBlock_ = ~Addr(0);
        }
        break;
    }
}

void
OutputUnit::storeIssued()
{
    menda_assert(!pendingStores_.empty(), "no pending store");
    pendingStores_.pop_front();
    ++stores_;
}

} // namespace menda::core
