/**
 * @file
 * A full MeNDA system: one PU beside every DRAM rank (Sec. 3).
 *
 * Throughput scales with the total rank count: a channel is populated
 * with MeNDA-enabled DIMMs, each rank gets a PU in the DIMM buffer chip,
 * and every PU works on its own NNZ-balanced horizontal slice of the
 * matrix with rank-private bandwidth — the "internal" bandwidth NMP
 * exposes. PUs never communicate (Sec. 3.5).
 */

#ifndef MENDA_MENDA_SYSTEM_HH
#define MENDA_MENDA_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "dram/controller.hh"
#include "dram/dram_config.hh"
#include "menda/pu.hh"
#include "menda/pu_config.hh"
#include "obs/trace.hh"
#include "sparse/format.hh"
#include "sparse/partition.hh"

namespace menda::core
{

class KernelJob;

struct SystemConfig
{
    unsigned channels = 1;
    unsigned dimmsPerChannel = 2;
    unsigned ranksPerDimm = 2;
    PuConfig pu;
    dram::DramConfig dram = dram::DramConfig::ddr4_2400r(1);

    /**
     * Use the naive equal-row-range split instead of NNZ-balanced
     * partitioning (Sec. 3.5 ablation). Execution time then tracks the
     * most loaded PU.
     */
    bool rowPartitioning = false;

    /**
     * Host worker threads for the cycle simulation itself. PUs never
     * communicate during a pass (Sec. 3.5), so with hostThreads > 1
     * every (PU, controller) pair runs on its own TickScheduler shard
     * across a thread pool and the shards are joined before the
     * merge/collect phase; 0 picks the hardware concurrency. With the
     * default of 1 the legacy single-scheduler sequential path is used.
     * Results (outputs, counters, simulated time) are bit-identical in
     * every mode.
     */
    unsigned hostThreads = 1;

    /**
     * Period, in component cycles, of the time-series samplers (merge
     * tree occupancy, RD/WR queue depth). 0 disables sampling. A
     * non-zero period is propagated into PuConfig and DramConfig at
     * system construction.
     */
    std::uint64_t samplePeriod = 0;

    /**
     * Emit a progress heartbeat line on stderr every this many
     * simulated PU cycles (per shard). 0 disables the heartbeat.
     */
    std::uint64_t progressEveryCycles = 0;

    /**
     * Simulation fidelity tier (DESIGN.md Sec. 12). Detailed is the
     * cycle-accurate engine; Functional advances the kernel semantics
     * directly with an analytical cycle model; Sampled interleaves
     * functional fast-forward with periodic cycle-accurate windows.
     * Kernel outputs are bitwise identical across all three tiers.
     */
    SimMode simMode = SimMode::Detailed;

    /** Window/period knobs of the Sampled tier. */
    SampledConfig sampled;

    /** One PU per rank. */
    unsigned
    totalPus() const
    {
        return channels * dimmsPerChannel * ranksPerDimm;
    }

    /** Aggregate internal (rank-level) peak bandwidth, bytes/sec. */
    double
    internalPeakBandwidth() const
    {
        return dram.peakBandwidth() * totalPus();
    }
};

/** Outcome of one offloaded kernel. */
struct RunResult
{
    double seconds = 0.0;           ///< simulated wall time (max over PUs)
    Cycle puCycles = 0;             ///< PU cycles of the slowest PU
    unsigned iterations = 0;        ///< merge iterations (max over PUs)
    std::uint64_t readBlocks = 0;   ///< total 64 B blocks loaded
    std::uint64_t writeBlocks = 0;  ///< total 64 B blocks stored
    std::uint64_t coalescedRequests = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t activates = 0;
    double busUtilization = 0.0;    ///< aggregate data-bus busy fraction

    // Merge-tree utilization (summed over PUs). Dividing the occupancy
    // integral by puCycles gives the mean packets buffered in a tree;
    // the stall counters separate input-side (leaf FIFO full) from
    // output-side (output unit back-pressure) bottlenecks.
    std::uint64_t treeOccupancyPacketCycles = 0;
    std::uint64_t leafPushStallCycles = 0;
    std::uint64_t outputStallCycles = 0;

    // Distributions, merged bucket-wise across all shards.
    Histogram readLatency;   ///< read round-trip, memory-clock cycles
    Histogram leafStallRuns; ///< leaf-push stall run lengths, PU cycles

    // Per-rank command counts, flattened in (controller, rank) order —
    // the inputs to power::DramPowerModel::energyJ.
    std::vector<std::uint64_t> rankActivates;
    std::vector<std::uint64_t> rankBursts;

    // SpGEMM only (empty otherwise): COO ping-pong spill traffic per
    // merge iteration, summed element-wise over PUs (shorter-running
    // PUs contribute zeros to the tail). Reads are the analytic block
    // spans of the runs each iteration consumes; writes the measured
    // store blocks of each non-final iteration. Both schedulers report
    // them, which is what the condensed-over-uniform bench ratio and
    // its CI gate are built from.
    std::vector<std::uint64_t> spilledReadBlocks;
    std::vector<std::uint64_t> spilledWriteBlocks;

    // Representative time series (PU 0 / controller 0); empty unless
    // SystemConfig::samplePeriod was set.
    IntervalSampler treeOccupancy;
    IntervalSampler readQueueDepth;

    // Fast-tier provenance (DESIGN.md Sec. 12). Defaults describe a
    // Detailed run; the extra fields are only meaningful otherwise.
    SimMode simMode = SimMode::Detailed;
    unsigned sampledWindows = 0;   ///< detailed windows run (Sampled)
    double errorBoundPct = 0.0;    ///< ~95% CI on extrapolated puCycles
    Cycle fastForwardedCycles = 0; ///< cycles charged outside windows

    std::uint64_t totalBlocks() const { return readBlocks + writeBlocks; }

    /** Bytes moved per second of execution. */
    double
    achievedBandwidth() const
    {
        return seconds > 0.0 ? totalBlocks() * 64.0 / seconds : 0.0;
    }

    /** Transposition throughput metric of the paper: NNZ/s. */
    double
    throughputNnzPerSec(std::uint64_t nnz) const
    {
        return seconds > 0.0 ? static_cast<double>(nnz) / seconds : 0.0;
    }
};

struct TransposeResult : RunResult
{
    sparse::CscMatrix csc; ///< merged full transpose (validation view)
    std::vector<sparse::RowSlice> slices; ///< per-PU partitions
};

struct SpmvResult : RunResult
{
    std::vector<double> y; ///< full result vector
};

struct SpgemmResult : RunResult
{
    sparse::CsrMatrix c;  ///< stitched product C = A x B
    std::vector<sparse::RowSlice> slices; ///< per-PU A partitions
    std::uint64_t partialProducts = 0;    ///< merge elements generated
};

class MendaSystem
{
  public:
    explicit MendaSystem(const SystemConfig &config) : config_(config)
    {
        if (config_.samplePeriod != 0) {
            config_.pu.samplePeriod = config_.samplePeriod;
            config_.dram.samplePeriod = config_.samplePeriod;
        }
    }

    const SystemConfig &config() const { return config_; }

    /**
     * Trace the next run into @p tracer (one shard per rank). The
     * tracer must outlive the run; pass nullptr to stop tracing. Use a
     * fresh Tracer per run. Traced (or sampled) runs always take the
     * sharded simulation path — even with hostThreads == 1 — so the
     * idle-skip schedule, and with it the trace, is identical for every
     * host thread count.
     */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** Transpose @p a (CSR -> CSC) across all PUs; cycle simulated. */
    TransposeResult transpose(const sparse::CsrMatrix &a);

    /**
     * SpMV y = A * x with A given in the partitioned CSC format MeNDA's
     * transposition produces (Sec. 3.6).
     */
    SpmvResult spmv(const sparse::CsrMatrix &a,
                    const std::vector<Value> &x);

    /**
     * SpGEMM C = A x B (CSR x CSR -> CSR) as an outer-product merge
     * dataflow: each PU merges the scaled-B-row partial products of its
     * merge-work-balanced A slice, spilling to DRAM and re-merging when
     * the fan-in exceeds the tree width (DESIGN.md Sec. 9). B is
     * replicated into every rank.
     */
    SpgemmResult spgemm(const sparse::CsrMatrix &a,
                        const sparse::CsrMatrix &b);

    /**
     * Resumable counterparts of the batch entry points above: build the
     * plan, construct the simulated components, and hand back a job
     * that the caller advances via KernelJob::step() (or finishes with
     * runToCompletion()). The batch methods are thin wrappers over
     * these; outputs and reports are bit-identical either way.
     */
    std::unique_ptr<KernelJob> startTranspose(const sparse::CsrMatrix &a);
    std::unique_ptr<KernelJob> startSpmv(const sparse::CsrMatrix &a,
                                         const std::vector<Value> &x);
    std::unique_ptr<KernelJob> startSpgemm(const sparse::CsrMatrix &a,
                                           const sparse::CsrMatrix &b);

    /** Per-PU iteration stats of the last run (Fig. 12 analysis). */
    const std::vector<std::vector<IterationStats>> &
    lastIterationStats() const
    {
        return lastIterStats_;
    }

  private:
    SystemConfig config_;
    obs::Tracer *tracer_ = nullptr;
    std::vector<std::vector<IterationStats>> lastIterStats_;
};

} // namespace menda::core

#endif // MENDA_MENDA_SYSTEM_HH
