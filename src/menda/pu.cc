#include "menda/pu.hh"

#include <algorithm>

#include "common/log.hh"
#include "spgemm/plan.hh"

namespace menda::core
{

namespace
{

constexpr std::uint32_t controllerRequester = 0xffffffffu;

constexpr std::uint64_t elemsPerBlock = blockBytes / 4;

/** Aligned 64 B spans of a 4-byte-element array covering [begin, end). */
std::uint64_t
spanBlocks(std::uint64_t begin, std::uint64_t end)
{
    if (begin >= end)
        return 0;
    return (end - 1) / elemsPerBlock - begin / elemsPerBlock + 1;
}

} // namespace

void
Pu::commonInit()
{
    buffers_.reserve(config_.leaves);
    for (unsigned slot = 0; slot < config_.leaves; ++slot)
        buffers_.push_back(std::make_unique<PrefetchBuffer>(
            slot, config_, &map_,
            [this](const StreamDesc &desc, std::uint64_t element) {
                return readElement(desc, element);
            },
            [this](const StreamDesc &desc, std::uint64_t cursor,
                   std::vector<Addr> &blocks) {
                return condensedChunk(desc, cursor, blocks);
            }));
    inIssueQueue_.assign(config_.leaves, false);
    inPushQueue_.assign(config_.leaves, false);
    inAssignQueue_.assign(config_.leaves, false);
    mem_->setResponseCallback([this](const mem::MemRequest &req) {
        responses_.push_back(req);
    });
    stats_.add("loads", loads_);
    stats_.add("stores", stores_);
    stats_.add("responses", responsesHandled_);
    stats_.add("assignments", assignments_);
    stats_.add("retries", retries_);
    stats_.add("leafPushStalls", pushStalls_);
    stallStart_.assign(config_.leaves, 0);
    stats_.add("leafStallRun", leafStallRuns_);
    occupancySamples_.configure(config_.samplePeriod);
    stats_.add("treeOccupancy", occupancySamples_);
    tree_.registerStats(stats_);
    output_.registerStats(stats_);
}

void
Pu::attachTrace(obs::TraceShard *shard)
{
    trace_ = shard;
    tracePhases_ = shard->addTrack(name_ + ".phases", obs::TrackKind::Span,
                                   config_.freqMhz);
    traceRounds_ = shard->addTrack(name_ + ".rounds",
                                   obs::TrackKind::Instant,
                                   config_.freqMhz);
    traceOccupancy_ = shard->addTrack(name_ + ".treeOccupancy",
                                      obs::TrackKind::Counter,
                                      config_.freqMhz);
    nameDrain_ = shard->internName("drain");
    nameRound_ = shard->internName("round");
}

void
Pu::sampleOccupancy()
{
    const std::size_t before = occupancySamples_.values().size();
    occupancySamples_.sample(cycle_, tree_.occupancy());
    if (trace_ && occupancySamples_.values().size() != before)
        trace_->counter(traceOccupancy_, cycle_, tree_.occupancy());
}

Pu::Pu(std::string name, const PuConfig &config,
       const sparse::CsrMatrix *slice, Index row_offset,
       dram::MemoryController *mem)
    : name_(std::move(name)),
      config_(config),
      mode_(PuMode::Transpose),
      csr_(slice),
      rowOffset_(row_offset),
      map_(0, slice->rows, slice->cols, slice->nnz()),
      mem_(mem),
      tree_(config, MergeKey::Column),
      output_(config_, &map_),
      stats_(name_)
{
    for (Index r = 0; r < csr_->rows; ++r)
        if (csr_->ptr[r + 1] > csr_->ptr[r])
            neRows_.push_back(r);
    commonInit();
}

Pu::Pu(std::string name, const PuConfig &config,
       const sparse::CscMatrix *slice_csc, const std::vector<Value> *x,
       Index row_offset, dram::MemoryController *mem)
    : name_(std::move(name)),
      config_(config),
      mode_(PuMode::Spmv),
      csc_(slice_csc),
      vecX_(x),
      rowOffset_(row_offset),
      // SpMV walks the *column* pointer array (cols + 1 entries) and
      // stores a dense vector of `rows` elements, so the pointer and
      // output regions are sized for whichever dimension is larger.
      map_(0, std::max(slice_csc->rows, slice_csc->cols),
           slice_csc->cols,
           std::max<std::uint64_t>(slice_csc->nnz(), slice_csc->rows)),
      mem_(mem),
      tree_(config, MergeKey::Row),
      output_(config_, &map_),
      stats_(name_)
{
    menda_assert(x->size() == csc_->cols, "SpMV vector length mismatch");
    for (Index c = 0; c < csc_->cols; ++c)
        if (csc_->ptr[c + 1] > csc_->ptr[c])
            neRows_.push_back(c); // non-empty columns in SpMV mode
    commonInit();
}

Pu::Pu(std::string name, const PuConfig &config,
       const sparse::CsrMatrix *a_slice, const sparse::CsrMatrix *b,
       Index row_offset, dram::MemoryController *mem)
    : name_(std::move(name)),
      config_(config),
      mode_(PuMode::Spgemm),
      csr_(a_slice),
      bMat_(b),
      rowOffset_(row_offset),
      // The COO ping-pong buffers and output idx/val arrays hold the
      // slice's partial products (not A's non-zeros), and the output
      // pointer array covers the slice's LOCAL rows.
      map_(0, a_slice->rows,
           std::max<std::uint64_t>(a_slice->rows, b->cols),
           std::max<std::uint64_t>(
               {a_slice->nnz(),
                spgemm::partialProductCount(*a_slice, *b), 1}),
           b->rows, b->nnz()),
      mem_(mem),
      tree_(config, MergeKey::RowCol),
      output_(config_, &map_),
      stats_(name_)
{
    menda_assert(a_slice->cols == b->rows,
                 "SpGEMM inner dimensions must agree");
    // The controller programming step: one scaled-B-row stream per
    // non-zero of the A slice, in row-major order (exactness depends on
    // this ordinal order; DESIGN.md Sec. 9).
    spgemmStreams_ = spgemm::buildStreams(*a_slice, *b);
    huffman_ =
        config_.spgemm.scheduler == spgemm::SpgemmScheduler::Huffman;
    if (huffman_) {
        condensedLeaves_ = spgemm::condenseStreams(
            spgemmStreams_, config_.spgemm.condenseCap);
        streamElemPrefix_.resize(spgemmStreams_.size() + 1, 0);
        for (std::size_t t = 0; t < spgemmStreams_.size(); ++t)
            streamElemPrefix_[t + 1] =
                streamElemPrefix_[t] + spgemmStreams_[t].elements();
        std::vector<std::uint64_t> leaf_sizes;
        leaf_sizes.reserve(condensedLeaves_.size());
        for (const spgemm::CondensedLeaf &leaf : condensedLeaves_)
            leaf_sizes.push_back(leaf.elements);
        mergePlan_ = spgemm::planMergeTree(leaf_sizes, config_.leaves);
        // One pre-carved descriptor per condensed leaf. Single-stream
        // leaves keep the plain scaled-B-row fetch path; packs fetch
        // through the virtual concatenated element space. Either way
        // auxIndex names the leaf, for assignment gating.
        leafDescs_.reserve(condensedLeaves_.size());
        for (std::size_t i = 0; i < condensedLeaves_.size(); ++i) {
            const spgemm::CondensedLeaf &leaf = condensedLeaves_[i];
            StreamDesc desc;
            if (leaf.streamCount == 1) {
                const spgemm::PartialProductStream &s =
                    spgemmStreams_[leaf.firstStream];
                desc.source = StreamSource::ScaledBRow;
                desc.begin = s.begin;
                desc.end = s.end;
                desc.fixedIndex = s.outRow;
                desc.scale = s.scale;
            } else {
                desc.source = StreamSource::CondensedLeaf;
                desc.begin = streamElemPrefix_[leaf.firstStream];
                desc.end =
                    streamElemPrefix_[leaf.firstStream + leaf.streamCount];
            }
            desc.auxIndex = static_cast<Index>(i);
            leafDescs_.push_back(desc);
        }
    }
    commonInit();
}

bool
Pu::spgemmLeafReady(std::uint64_t leaf_index) const
{
    const spgemm::CondensedLeaf &leaf = condensedLeaves_[leaf_index];
    for (std::uint64_t t = leaf.firstStream;
         t < leaf.firstStream + leaf.streamCount; ++t) {
        const spgemm::PartialProductStream &s = spgemmStreams_[t];
        const Index r = s.outRow;
        const Index k = s.bRow;
        if (!(ptrArrived_[r / 16] && ptrArrived_[(r + 1) / 16] &&
              aIdxArrived_[t / 16] && aValArrived_[t / 16] &&
              bPtrArrived_[k / 16] && bPtrArrived_[(k + 1) / 16]))
            return false;
    }
    return true;
}

std::uint64_t
Pu::condensedChunk(const StreamDesc &desc, std::uint64_t cursor,
                   std::vector<Addr> &blocks) const
{
    // One chunk = the elements of ONE packed sub-stream that share one
    // aligned 64 B span of B's arrays — the same granularity a plain
    // scaled-B-row stream fetches at, just with the sub-stream found by
    // a prefix search on the virtual cursor.
    const spgemm::CondensedLeaf &leaf = condensedLeaves_[desc.auxIndex];
    const auto first = streamElemPrefix_.begin() + leaf.firstStream;
    const auto it =
        std::upper_bound(first, first + leaf.streamCount + 1, cursor);
    const std::uint64_t t = (it - streamElemPrefix_.begin()) - 1;
    const spgemm::PartialProductStream &s = spgemmStreams_[t];
    const std::uint64_t phys = s.begin + (cursor - streamElemPrefix_[t]);
    const std::uint64_t span_end =
        (phys / elemsPerBlock + 1) * elemsPerBlock;
    const std::uint64_t phys_end = std::min(s.end, span_end);
    blocks.push_back(map_.blockOf(Region::BColIdx, phys));
    blocks.push_back(map_.blockOf(Region::BNzVal, phys));
    return cursor + (phys_end - phys);
}

void
Pu::buildIterationStreams()
{
    const spgemm::MergeIteration &it = mergePlan_.iterations[iteration_];
    roundsTotal_ = it.rounds.size();
    finalIteration_ = iteration_ + 1 == mergePlan_.iterations.size();
    iterStreams_.assign(roundsTotal_ * config_.leaves, StreamDesc{});
    for (std::size_t r = 0; r < it.rounds.size(); ++r) {
        const spgemm::MergeRound &round = it.rounds[r];
        menda_assert(round.inputs.size() <= config_.leaves,
                     "merge-tree round fan-in exceeds tree width");
        for (std::size_t s = 0; s < round.inputs.size(); ++s) {
            const spgemm::StreamRef &ref = round.inputs[s];
            iterStreams_[r * config_.leaves + s] =
                ref.kind == spgemm::StreamRef::Kind::Leaf
                    ? leafDescs_[ref.index]
                    : streams_[ref.index];
        }
    }
}

void
Pu::start()
{
    menda_assert(phase_ == Phase::Idle, "PU already started");
    phase_ = Phase::Running;
    iteration_ = 0;
    srcCoo_ = 0;
    setupIteration();
}

StreamDesc
Pu::streamForOrdinal(std::uint64_t ordinal) const
{
    StreamDesc desc;
    if (mode_ == PuMode::Spgemm && huffman_ && !windowMode_) {
        // Huffman: every iteration's slot table is pre-built from the
        // merge-tree plan, padding included, so the shared
        // ordinal = round * leaves + slot contract holds unchanged.
        return iterStreams_[ordinal];
    }
    if (iteration_ == 0) {
        if (mode_ == PuMode::Spgemm) {
            const spgemm::PartialProductStream &s =
                spgemmStreams_[ordinal];
            desc.source = StreamSource::ScaledBRow;
            desc.begin = s.begin;
            desc.end = s.end;
            desc.fixedIndex = s.outRow; // local output row
            desc.scale = s.scale;
            desc.auxIndex = s.bRow;
            return desc;
        }
        const Index line = neRows_[ordinal];
        if (mode_ == PuMode::Transpose) {
            desc.source = StreamSource::CsrRow;
            desc.begin = csr_->ptr[line];
            desc.end = csr_->ptr[line + 1];
            desc.fixedIndex = rowOffset_ + line;
        } else {
            desc.source = StreamSource::CscColumn;
            desc.begin = csc_->ptr[line];
            desc.end = csc_->ptr[line + 1];
            desc.fixedIndex = line;
        }
    } else {
        desc = streams_[ordinal];
    }
    return desc;
}

std::uint64_t
Pu::streamCount() const
{
    if (mode_ == PuMode::Spgemm && huffman_ && !windowMode_)
        return iterStreams_.size();
    if (iteration_ != 0)
        return streams_.size();
    return mode_ == PuMode::Spgemm ? spgemmStreams_.size()
                                   : neRows_.size();
}

void
Pu::setupIteration()
{
    if (mode_ == PuMode::Spgemm && huffman_ && !windowMode_) {
        // Non-uniform rounds come from the merge-tree plan; the slot
        // table is padded so the shared ordinal contract still holds.
        buildIterationStreams();
    } else {
        const std::uint64_t n = streamCount();
        roundsTotal_ = (n + config_.leaves - 1) / config_.leaves;
        finalIteration_ = roundsTotal_ <= 1;
    }
    if (windowMode_) {
        // A measurement window replays a SUFFIX of the parent's
        // iteration; whether the output/reduction path runs in final
        // mode is the parent's call, not a round-count property.
        finalIteration_ = windowFinal_;
    }

    OutputMode out_mode;
    Index total_cols = 0;
    if (mode_ == PuMode::Transpose) {
        out_mode = finalIteration_ ? OutputMode::CscFinal
                                   : OutputMode::CooIntermediate;
        total_cols = csr_->cols;
    } else if (mode_ == PuMode::Spgemm) {
        // Final iteration synthesizes the slice's LOCAL row pointers.
        out_mode = finalIteration_ ? OutputMode::CsrFinal
                                   : OutputMode::CooIntermediate;
        total_cols = csr_->rows;
    } else {
        out_mode = finalIteration_ ? OutputMode::DenseFinal
                                   : OutputMode::PairIntermediate;
        total_cols = csc_->rows;
    }
    output_.beginIteration(out_mode, 1 - srcCoo_, roundsTotal_, total_cols);

    bufferNextRound_.assign(config_.leaves, 0);
    roundsBeforeIteration_ = tree_.roundsCompleted();
    reduction_ = Packet{};
    pendingEmitValid_ = false;

    // Pointer walk: only iteration 0 reads a pointer array; COO
    // intermediates carry explicit bounds (Sec. 3.1).
    pointerPhase_ = iteration_ == 0;
    pendingPtrLoads_.clear();
    ptrInFlight_.clear();
    neededPtrBlocks_.clear();
    ptrNextIssue_ = 0;
    ptrOutstanding_ = 0;
    ctrlLoads_.clear();
    ctrlNextIssue_ = 0;
    if (pointerPhase_) {
        const std::uint64_t entries =
            (mode_ == PuMode::Spmv ? csc_->cols : csr_->rows) + 1;
        ptrBlocksTotal_ = (entries + 15) / 16;
        ptrArrived_.assign(ptrBlocksTotal_, false);
        if (mode_ == PuMode::Spgemm) {
            // The controller needs A's row pointers (stream grouping),
            // A's indices and values (each non-zero's B row and scale),
            // and the B row-pointer entries bounding every referenced
            // row. They are fetched in stream-ordinal order so early
            // streams unblock while later metadata is still in flight;
            // B pointer blocks are deduplicated at first use.
            aIdxArrived_.assign((csr_->nnz() + 15) / 16, false);
            aValArrived_.assign((csr_->nnz() + 15) / 16, false);
            bPtrArrived_.assign((bMat_->rows + 1 + 15) / 16, false);
            for (std::uint64_t b = 0; b < ptrBlocksTotal_; ++b)
                ctrlLoads_.push_back(map_.blockOf(Region::RowPtr, b * 16));
            std::vector<bool> b_seen(bPtrArrived_.size(), false);
            for (std::uint64_t t = 0; t < spgemmStreams_.size(); ++t) {
                if (t % 16 == 0) {
                    ctrlLoads_.push_back(
                        map_.blockOf(Region::ColIdx, t));
                    ctrlLoads_.push_back(
                        map_.blockOf(Region::NzVal, t));
                }
                const Index k = spgemmStreams_[t].bRow;
                for (std::uint64_t blk :
                     {std::uint64_t(k) / 16, std::uint64_t(k + 1) / 16}) {
                    if (!b_seen[blk]) {
                        b_seen[blk] = true;
                        ctrlLoads_.push_back(
                            map_.blockOf(Region::BRowPtr, blk * 16));
                    }
                }
            }
        } else if (mode_ == PuMode::Transpose) {
            // The whole pointer array is walked front to back.
            neededPtrBlocks_.resize(ptrBlocksTotal_);
            for (std::uint64_t b = 0; b < ptrBlocksTotal_; ++b)
                neededPtrBlocks_[b] = b;
        } else {
            // SpMV: the auxiliary pointer array marks which pointer
            // blocks contain non-empty columns; only those are fetched
            // (Sec. 3.6). The aux array itself is read first.
            for (Index c : neRows_) {
                neededPtrBlocks_.push_back(c / 16);
                neededPtrBlocks_.push_back((c + 1) / 16);
            }
            std::sort(neededPtrBlocks_.begin(), neededPtrBlocks_.end());
            neededPtrBlocks_.erase(std::unique(neededPtrBlocks_.begin(),
                                               neededPtrBlocks_.end()),
                                   neededPtrBlocks_.end());
            const std::uint64_t aux_blocks =
                (ptrBlocksTotal_ + 511) / 512; // one bit per ptr block
            for (std::uint64_t b = 0; b < aux_blocks; ++b)
                pendingPtrLoads_.push_back(
                    map_.blockOf(Region::AuxPtr, b * 16));
        }
    }

    // Everyone starts wanting assignments.
    assignQueue_.clear();
    std::fill(inAssignQueue_.begin(), inAssignQueue_.end(),
              roundsTotal_ != 0);
    if (roundsTotal_ != 0)
        for (unsigned b = 0; b < config_.leaves; ++b)
            assignQueue_.push_back(b);

    // Spill-traffic ledger (SpGEMM, both schedulers): the COO runs this
    // iteration consumes were spilled by the previous one; their
    // read-back blocks are counted analytically (3 arrays per span) so
    // the metric is identical across simulation tiers and thread
    // counts. The write side lands in finishIteration.
    if (mode_ == PuMode::Spgemm && !windowMode_) {
        std::uint64_t read_blocks = 0;
        const std::uint64_t count = streamCount();
        for (std::uint64_t i = 0; i < count; ++i) {
            const StreamDesc d = streamForOrdinal(i);
            if (d.source == StreamSource::Coo)
                read_blocks += spanBlocks(d.begin, d.end) * 3;
        }
        spilledReadBlocks_.push_back(read_blocks);
        spilledWriteBlocks_.push_back(0);
    }

    iterStartCycle_ = cycle_;
    iterStartReads_ = mem_->readsServed();
    iterStartWrites_ = mem_->writesServed();
    iterStartCoalesced_ = mem_->readQueue().coalescedHits().value();
}

void
Pu::pointerEngine()
{
    if (!pointerPhase_)
        return;
    if (mode_ == PuMode::Spgemm) {
        // Stream the prebuilt controller metadata load list under the
        // same outstanding-request cap as the pointer walk.
        while (ctrlNextIssue_ < ctrlLoads_.size() &&
               ptrOutstanding_ + pendingPtrLoads_.size() < 8)
            pendingPtrLoads_.push_back(ctrlLoads_[ctrlNextIssue_++]);
        return;
    }
    // Schedule pointer (and, for SpMV, matching vector) block loads.
    // The pointer array is streamed front to back with a small
    // outstanding-request cap: the FSM needs the bounds in assignment
    // order, so streaming is both sufficient and bandwidth-friendly.
    while (ptrNextIssue_ < neededPtrBlocks_.size() &&
           ptrOutstanding_ + pendingPtrLoads_.size() < 8) {
        const std::uint64_t block = neededPtrBlocks_[ptrNextIssue_];
        pendingPtrLoads_.push_back(map_.blockOf(Region::RowPtr,
                                                block * 16));
        if (mode_ == PuMode::Spmv) {
            // The controller fetches the vector elements multiplied with
            // these columns together with the pointer block (Sec. 3.6).
            pendingPtrLoads_.push_back(map_.blockOf(Region::VecIn,
                                                    block * 16));
        }
        ++ptrNextIssue_;
    }
}

void
Pu::doLoadPort()
{
    // One load request can be enqueued per PU cycle (Sec. 3.2); the
    // controller's pointer walk takes priority over prefetch buffers.
    if (!pendingPtrLoads_.empty()) {
        mem::MemRequest req;
        req.addr = pendingPtrLoads_.front();
        req.requester = controllerRequester;
        const Addr rp_base = map_.base(Region::RowPtr);
        // In SpGEMM mode every controller metadata load (A pointers,
        // A indices/values, B pointers) is tracked for arrival gating
        // and link retries, so all of them travel as RowPointer.
        const bool is_ptr =
            mode_ == PuMode::Spgemm ||
            (req.addr >= rp_base &&
             req.addr < rp_base + ptrBlocksTotal_ * 64);
        req.stream = is_ptr ? mem::Stream::RowPointer
                            : mem::Stream::ColumnIndex;
        if (mem_->enqueue(req)) {
            pendingPtrLoads_.pop_front();
            if (is_ptr) {
                ++ptrOutstanding_;
                ptrInFlight_[req.addr] = cycle_;
            }
            ++loads_;
        }
        return;
    }

    // Round-robin over prefetch buffers with pending chunk blocks.
    // Demand fetches (buffers with nothing left for their leaf) are
    // hoisted ahead of prefetch top-ups within a bounded scan window —
    // otherwise excessive prefetch requests block the critical reads
    // on demand (Sec. 6.4).
    for (std::size_t i = 1; i < issueQueue_.size() && i < 16; ++i) {
        if (buffers_[issueQueue_[i]]->starving() &&
            !buffers_[issueQueue_.front()]->starving()) {
            std::swap(issueQueue_[0], issueQueue_[i]);
            break;
        }
    }
    std::size_t examined = 0;
    const std::size_t limit = issueQueue_.size();
    while (!issueQueue_.empty() && examined < limit) {
        ++examined;
        const unsigned b = issueQueue_.front();
        PrefetchBuffer &buf = *buffers_[b];
        const Addr addr = buf.pendingBlock();
        if (addr == 0) {
            issueQueue_.pop_front();
            inIssueQueue_[b] = false;
            continue;
        }
        mem::MemRequest req;
        req.addr = addr;
        req.requester = b;
        req.stream = mem::Stream::ColumnIndex;
        if (!mem_->enqueue(req))
            return; // read queue full; retry next cycle
        buf.issuedBlock();
        auto &entry = waiters_[addr];
        if (entry.buffers.empty())
            entry.issuedAt = cycle_;
        entry.buffers.push_back(b);
        ++loads_;
        issueQueue_.pop_front();
        if (buf.pendingBlock() != 0) {
            issueQueue_.push_back(b); // more blocks of this chunk
        } else {
            inIssueQueue_[b] = false;
        }
        return;
    }
}

void
Pu::doStorePort()
{
    if (!output_.hasPendingStore())
        return;
    mem::MemRequest req;
    req.addr = output_.nextStore();
    req.isWrite = true;
    req.stream = mem::Stream::Output;
    if (mem_->enqueue(req)) {
        output_.storeIssued();
        ++stores_;
    }
}

void
Pu::handleResponse(const mem::MemRequest &req)
{
    ++responsesHandled_;
    if (req.stream == mem::Stream::RowPointer) {
        markControllerArrival(req.addr);
        ptrInFlight_.erase(req.addr);
        if (ptrOutstanding_ > 0)
            --ptrOutstanding_;
        // Fall through: if a prefetch-buffer load was coalesced into
        // this pointer request, the broadcast must still fill it.
    }
    auto it = waiters_.find(req.addr);
    if (it == waiters_.end())
        return; // vector/aux fetches carry no waiters
    // The response is broadcast: it fills every prefetch buffer waiting
    // on this block, coalesced or not (Sec. 3.4).
    std::vector<unsigned> list = std::move(it->second.buffers);
    waiters_.erase(it);
    for (unsigned b : list) {
        buffers_[b]->fillFromResponse(req.addr);
        noteBufferActivity(b);
    }
}

void
Pu::markControllerArrival(Addr addr)
{
    // Attribute a controller load response to its arrival bitmap. The
    // regions are laid out at ascending bases and each bitmap covers
    // only the block prefix its array actually uses (always less than
    // the page-rounded region span), so the first in-range match is the
    // owning region.
    auto mark = [this, addr](Region region,
                             std::vector<bool> &bits) -> bool {
        const Addr base = map_.base(region);
        if (addr < base)
            return false;
        const std::uint64_t block = (addr - base) / blockBytes;
        if (block >= bits.size())
            return false;
        bits[block] = true;
        return true;
    };
    if (mark(Region::RowPtr, ptrArrived_))
        return;
    if (mode_ != PuMode::Spgemm)
        return;
    if (mark(Region::ColIdx, aIdxArrived_))
        return;
    if (mark(Region::NzVal, aValArrived_))
        return;
    mark(Region::BRowPtr, bPtrArrived_);
}

void
Pu::noteBufferActivity(unsigned slot)
{
    PrefetchBuffer &buf = *buffers_[slot];
    if (buf.hasPacket() && !inPushQueue_[slot]) {
        inPushQueue_[slot] = true;
        pushQueue_.push_back(slot);
    }
    if (buf.pendingBlock() != 0 && !inIssueQueue_[slot]) {
        inIssueQueue_[slot] = true;
        issueQueue_.push_back(slot);
    }
    if (buf.wantsAssignment() && bufferNextRound_[slot] < roundsTotal_ &&
        !inAssignQueue_[slot]) {
        inAssignQueue_[slot] = true;
        assignQueue_.push_back(slot);
    }
}

void
Pu::doAssignments()
{
    const std::uint64_t n = streamCount();
    unsigned made = 0;
    std::size_t examined = 0;
    while (!assignQueue_.empty() && made < 2 && examined < 8) {
        ++examined;
        const unsigned b = assignQueue_.front();
        if (!buffers_[b]->wantsAssignment() ||
            bufferNextRound_[b] >= roundsTotal_) {
            assignQueue_.pop_front();
            inAssignQueue_[b] = false;
            continue;
        }
        if (!config_.seamlessMerge &&
            bufferNextRound_[b] >
                tree_.roundsCompleted() - roundsBeforeIteration_) {
            // Non-seamless baseline: round j+1's streams are only handed
            // out once round j has fully drained from the root.
            assignQueue_.pop_front();
            assignQueue_.push_back(b);
            ++examined;
            continue;
        }
        const std::uint64_t ordinal =
            bufferNextRound_[b] * config_.leaves + b;
        StreamDesc desc;
        if (ordinal < n) {
            if (pointerPhase_) {
                bool bounds_ready;
                if (mode_ == PuMode::Spgemm && huffman_ && !windowMode_) {
                    // Huffman: the slot's entry is a pre-carved leaf
                    // descriptor (or empty padding). A leaf becomes
                    // assignable once the metadata of every packed
                    // sub-stream has arrived; padding gates on nothing.
                    const StreamDesc &entry = iterStreams_[ordinal];
                    bounds_ready =
                        entry.source != StreamSource::ScaledBRow &&
                                entry.source != StreamSource::CondensedLeaf
                            ? true
                            : spgemmLeafReady(entry.auxIndex);
                } else if (mode_ == PuMode::Spgemm) {
                    // A stream exists once the controller holds the A
                    // row-pointer blocks framing its row, the A index
                    // and value blocks carrying its B row and scale,
                    // and the B row-pointer blocks framing its bounds.
                    const spgemm::PartialProductStream &s =
                        spgemmStreams_[ordinal];
                    const Index r = s.outRow;
                    const Index k = s.bRow;
                    bounds_ready =
                        ptrArrived_[r / 16] &&
                        ptrArrived_[(r + 1) / 16] &&
                        aIdxArrived_[ordinal / 16] &&
                        aValArrived_[ordinal / 16] &&
                        bPtrArrived_[k / 16] &&
                        bPtrArrived_[(k + 1) / 16];
                } else {
                    const Index line = neRows_[ordinal];
                    bounds_ready = ptrArrived_[line / 16] &&
                                   ptrArrived_[(line + 1) / 16];
                }
                if (!bounds_ready) {
                    // Bounds not here yet; give others a chance.
                    assignQueue_.pop_front();
                    assignQueue_.push_back(b);
                    continue;
                }
            }
            desc = streamForOrdinal(ordinal);
        } else {
            desc.begin = desc.end = 0; // padding: empty stream
        }
        buffers_[b]->assign(desc);
        ++bufferNextRound_[b];
        ++assignments_;
        ++made;
        assignQueue_.pop_front();
        inAssignQueue_[b] = false;
        noteBufferActivity(b);
    }
}

void
Pu::doPushQueue()
{
    // Every buffer with a ready packet and leaf FIFO space pushes one
    // packet per cycle — all leaves move in parallel in hardware.
    std::size_t n = pushQueue_.size();
    while (n-- > 0) {
        const unsigned b = pushQueue_.front();
        pushQueue_.pop_front();
        inPushQueue_[b] = false;
        PrefetchBuffer &buf = *buffers_[b];
        if (!buf.hasPacket())
            continue;
        if (!tree_.canPush(b)) {
            ++pushStalls_;
            if (stallStart_[b] == 0)
                stallStart_[b] = cycle_; // cycle_ >= 1 while running
            continue; // leaf FIFO full; freedSlots() will wake us
        }
        if (stallStart_[b] != 0) {
            leafStallRuns_.record(cycle_ - stallStart_[b]);
            stallStart_[b] = 0;
        }
        tree_.push(b, buf.popPacket());
        noteBufferActivity(b);
    }
}

void
Pu::doRootPop()
{
    if (!output_.canAccept()) {
        if (tree_.canPop() || pendingEmitValid_)
            output_.noteStall();
        return;
    }
    // The SpMV reduction unit emits at most one element per cycle; when
    // a stream's last packet both closes the previous accumulation and
    // carries its own value, the second emission spills to this cycle.
    if (pendingEmitValid_) {
        output_.accept(pendingEmit_);
        pendingEmitValid_ = false;
        return;
    }
    if (!tree_.canPop())
        return;
    Packet p = tree_.pop();
    if (mode_ == PuMode::Transpose ||
        (mode_ == PuMode::Spgemm && !finalIteration_)) {
        // Transposition never accumulates; SpGEMM intermediate
        // iterations pass duplicates through untouched so the final
        // left-to-right accumulation order is independent of the round
        // decomposition (DESIGN.md Sec. 9).
        output_.accept(p);
        return;
    }
    // SpMV (and the SpGEMM final iteration): the reduction unit merges
    // consecutive packets with an equal merge key using the pipelined
    // FP adders (Sec. 3.6). SpGEMM keys on (row, col), SpMV on row.
    bool accepted = false;
    if (p.valid) {
        const bool same_key =
            reduction_.valid && reduction_.row == p.row &&
            (mode_ == PuMode::Spmv || reduction_.col == p.col);
        if (same_key) {
            reduction_.val += p.val;
        } else {
            if (reduction_.valid) {
                Packet out = reduction_;
                out.eol = false;
                output_.accept(out);
                accepted = true;
            }
            reduction_ = p;
            reduction_.eol = false;
        }
    }
    if (p.eol) {
        Packet out;
        if (reduction_.valid) {
            out = reduction_;
            out.eol = true;
            reduction_ = Packet{};
        } else {
            out = Packet::endOfLine();
        }
        if (accepted) {
            pendingEmit_ = out;
            pendingEmitValid_ = true;
        } else {
            output_.accept(out);
        }
    }
}

void
Pu::finishIteration()
{
    IterationStats st;
    st.cycles = cycle_ - iterStartCycle_;
    st.readBlocks = mem_->readsServed() - iterStartReads_;
    st.writeBlocks = mem_->writesServed() - iterStartWrites_;
    st.coalescedRequests =
        mem_->readQueue().coalescedHits().value() - iterStartCoalesced_;
    iterStats_.push_back(st);

    // Non-final SpGEMM iterations store nothing but the COO ping-pong
    // spill, so the iteration's write blocks ARE its spill writes.
    if (mode_ == PuMode::Spgemm && !windowMode_ && !finalIteration_ &&
        iteration_ < spilledWriteBlocks_.size())
        spilledWriteBlocks_[iteration_] = st.writeBlocks;

    if (trace_)
        trace_->span(
            tracePhases_,
            trace_->internName("iter" + std::to_string(iteration_)),
            iterStartCycle_, cycle_);

    menda_assert(tree_.drained(), "merge tree not drained at iteration end");

    if (windowMode_) {
        // A window never owns the kernel result and never arms another
        // iteration; park in Draining so the stores tick out and done()
        // latches for the measurement loop.
        drainStartCycle_ = cycle_;
        phase_ = Phase::Draining;
        return;
    }

    if (finalIteration_) {
        const MergedOutput &merged = output_.merged();
        if (mode_ == PuMode::Transpose) {
            resultCsc_.rows = rowOffset_ + csr_->rows;
            resultCsc_.cols = csr_->cols;
            resultCsc_.ptr.assign(csr_->cols + 1, 0);
            resultCsc_.idx.assign(merged.row.begin(), merged.row.end());
            resultCsc_.val.assign(merged.val.begin(), merged.val.end());
            for (Index c : merged.col)
                ++resultCsc_.ptr[c + 1];
            for (std::size_t c = 0; c < csr_->cols; ++c)
                resultCsc_.ptr[c + 1] += resultCsc_.ptr[c];
        } else if (mode_ == PuMode::Spgemm) {
            // Packets arrive in (row, col) order with duplicates already
            // accumulated; rows are local to the slice.
            resultCsr_.rows = csr_->rows;
            resultCsr_.cols = bMat_->cols;
            resultCsr_.ptr.assign(
                static_cast<std::size_t>(csr_->rows) + 1, 0);
            resultCsr_.idx.assign(merged.col.begin(), merged.col.end());
            resultCsr_.val.assign(merged.val.begin(), merged.val.end());
            for (Index r : merged.row)
                ++resultCsr_.ptr[r + 1];
            for (std::size_t r = 0; r < csr_->rows; ++r)
                resultCsr_.ptr[r + 1] += resultCsr_.ptr[r];
        } else {
            resultVec_.assign(csc_->rows, 0.0);
            for (std::size_t i = 0; i < merged.size(); ++i)
                resultVec_[merged.row[i]] = merged.val[i];
        }
        drainStartCycle_ = cycle_;
        phase_ = Phase::Draining;
        return;
    }

    // Arm the next iteration: this iteration's merged rounds become the
    // next iteration's sorted input streams, read from the COO (or pair)
    // ping-pong buffer just written.
    const int dst = 1 - srcCoo_;
    coo_[dst] = output_.merged();
    streams_.clear();
    for (const auto &[begin, end] : output_.roundBounds()) {
        StreamDesc desc;
        desc.source = StreamSource::Coo;
        desc.begin = begin;
        desc.end = end;
        desc.cooBuffer = dst;
        streams_.push_back(desc);
    }
    srcCoo_ = dst;
    ++iteration_;
    setupIteration();
}

void
Pu::tick()
{
    if (phase_ == Phase::Idle || phase_ == Phase::Done)
        return;
    ++cycle_;

    if (occupancySamples_.enabled())
        sampleOccupancy();

    if (phase_ == Phase::Draining) {
        if (mem_->idle()) {
            if (trace_)
                trace_->span(tracePhases_, nameDrain_, drainStartCycle_,
                             cycle_);
            phase_ = Phase::Done;
        }
        return;
    }

    // Consume one broadcast memory response (Sec. 3.2).
    if (!responses_.empty()) {
        mem::MemRequest req = responses_.front();
        responses_.pop_front();
        handleResponse(req);
    }

    // Link-error recovery: re-issue loads that have waited past the
    // retry timeout (their response was dropped on the bus).
    if (config_.retryTimeoutCycles != 0 && (cycle_ & 511) == 0) {
        for (auto &[addr, entry] : waiters_) {
            if (cycle_ - entry.issuedAt <= config_.retryTimeoutCycles)
                continue;
            mem::MemRequest req;
            req.addr = addr;
            req.stream = mem::Stream::ColumnIndex;
            if (mem_->enqueue(req)) {
                entry.issuedAt = cycle_;
                ++retries_;
            }
        }
        for (auto &[addr, issued_at] : ptrInFlight_) {
            if (cycle_ - issued_at <= config_.retryTimeoutCycles)
                continue;
            mem::MemRequest req;
            req.addr = addr;
            req.stream = mem::Stream::RowPointer;
            if (mem_->enqueue(req)) {
                issued_at = cycle_;
                ++retries_;
            }
        }
    }

    doRootPop();
    tree_.tick();
    if (trace_) {
        while (traceRoundsSeen_ < tree_.roundsCompleted()) {
            trace_->instant(traceRounds_, nameRound_, cycle_);
            ++traceRoundsSeen_;
        }
    }
    for (unsigned slot : tree_.freedSlots()) {
        if (buffers_[slot]->hasPacket() && !inPushQueue_[slot]) {
            inPushQueue_[slot] = true;
            pushQueue_.push_back(slot);
        }
    }
    doPushQueue();
    doAssignments();
    pointerEngine();
    doLoadPort();
    doStorePort();

    bool ctrl_drained = true;
    if (pointerPhase_ && mode_ == PuMode::Spgemm && huffman_) {
        // Huffman defers leaves past iteration 0, but the controller
        // still owns every metadata fetch and later-iteration leaf
        // assignments do not re-check arrival — hold iteration 0 open
        // until the metadata stream has fully landed.
        ctrl_drained = ctrlNextIssue_ == ctrlLoads_.size() &&
                       pendingPtrLoads_.empty() && ptrOutstanding_ == 0;
    }
    if (ctrl_drained && output_.iterationDone() && responses_.empty() &&
        mem_->writeQueue().empty() && waiters_.empty())
        finishIteration();
}

} // namespace menda::core
