#include "menda/page_coloring.hh"

#include "common/log.hh"

namespace menda::core
{

PageTable
colorPages(const std::vector<sparse::RowSlice> &slices, std::uint64_t rows,
           std::uint64_t nnz, Addr base_page)
{
    PageTable table;
    const std::uint64_t entry_bytes = 4;

    // Index and value arrays: each PU's chunk is padded to page
    // granularity so coloring can steer whole pages. Two arrays (index +
    // value) cover [nnzBegin, nnzEnd) each.
    for (int array = 0; array < 2; ++array) {
        const Addr array_base =
            static_cast<Addr>(array) * ((nnz * entry_bytes / pageBytes) +
                                        slices.size() + 1) * pageBytes;
        Addr next_page = base_page + array_base / pageBytes;
        for (unsigned color = 0; color < slices.size(); ++color) {
            const std::uint64_t bytes = slices[color].nnz() * entry_bytes;
            const std::uint64_t pages =
                (bytes + pageBytes - 1) / pageBytes;
            for (std::uint64_t p = 0; p < pages; ++p)
                table.entries.push_back({next_page++, color, false});
        }
    }

    // Row-pointer array: pages follow the row ranges; a page needed by
    // two ranks is duplicated, each rank getting a private copy.
    const Addr ptr_base =
        base_page + 2 * ((nnz * entry_bytes / pageBytes) +
                         slices.size() + 1);
    const std::uint64_t entries_per_page = pageBytes / entry_bytes;
    std::uint64_t last_page_of_prev = ~std::uint64_t(0);
    for (unsigned color = 0; color < slices.size(); ++color) {
        if (slices[color].rows() == 0)
            continue;
        const std::uint64_t first_entry = slices[color].rowBegin;
        const std::uint64_t last_entry = slices[color].rowEnd; // ptr[end]
        menda_assert(last_entry <= rows, "slice beyond matrix");
        const std::uint64_t first_page = first_entry / entries_per_page;
        const std::uint64_t last_page = last_entry / entries_per_page;
        for (std::uint64_t p = first_page; p <= last_page; ++p) {
            const bool shared = p == last_page_of_prev;
            table.entries.push_back({ptr_base + p, color, shared});
            if (shared)
                table.duplicatedBytes += pageBytes;
        }
        last_page_of_prev = last_page;
    }

    menda_assert(table.duplicatedBytes <= pageBytes * slices.size(),
                 "row-pointer duplication exceeds page_size x ranks");
    return table;
}

std::uint64_t
coloredPageSpan(std::size_t ranks, std::uint64_t rows, std::uint64_t nnz)
{
    const std::uint64_t entry_bytes = 4;
    const std::uint64_t array_pages =
        (nnz * entry_bytes / pageBytes) + ranks + 1;
    const std::uint64_t ptr_pages =
        rows / (pageBytes / entry_bytes) + 1;
    return 2 * array_pages + ptr_pages;
}

} // namespace menda::core
