#include "menda/job.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"
#include "sim/parallel.hh"
#include "spgemm/plan.hh"

namespace menda::core
{

namespace
{

/** One --progress heartbeat line on stderr (never stdout: that may be
 *  carrying the machine-readable run report). */
void
emitProgress(std::size_t shard, Cycle cycles,
             std::chrono::steady_clock::time_point wall_start,
             std::uint64_t outstanding, const char *mode = "detailed",
             Cycle fast_forwarded = 0)
{
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const double rate = secs > 0.0 ? cycles / secs / 1e6 : 0.0;
    std::fprintf(stderr,
                 "[menda] shard %zu [%s]: %.0f Mcycles "
                 "(%.0f fast-forwarded), %.1f Msim-cycles/s, "
                 "%llu outstanding requests\n",
                 shard, mode, static_cast<double>(cycles) / 1e6,
                 static_cast<double>(fast_forwarded) / 1e6, rate,
                 static_cast<unsigned long long>(outstanding));
}

std::uint64_t
csrBytes(const sparse::CsrMatrix &m)
{
    return (m.ptr.size() + m.idx.size() + m.val.size()) * 4;
}

std::uint64_t
cscBytes(const sparse::CscMatrix &m)
{
    return (m.ptr.size() + m.idx.size() + m.val.size()) * 4;
}

} // namespace

std::uint64_t
TransposePlan::residentBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &slice : csr)
        bytes += csrBytes(slice);
    return bytes;
}

std::uint64_t
SpmvPlan::residentBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &slice : csc)
        bytes += cscBytes(slice);
    return bytes;
}

std::uint64_t
SpgemmPlan::residentBytes() const
{
    std::uint64_t bytes = csrBytes(b) * slices.size(); // replicated
    for (const auto &slice : csr)
        bytes += csrBytes(slice);
    return bytes;
}

std::shared_ptr<const TransposePlan>
planTranspose(const sparse::CsrMatrix &a, const SystemConfig &config)
{
    auto plan = std::make_shared<TransposePlan>();
    const unsigned n_pus = config.totalPus();
    plan->rows = a.rows;
    plan->cols = a.cols;
    plan->nnz = a.nnz();
    plan->slices = config.rowPartitioning
                       ? sparse::partitionByRows(a, n_pus)
                       : sparse::partitionByNnz(a, n_pus);
    plan->csr.reserve(n_pus);
    for (const auto &slice : plan->slices)
        plan->csr.push_back(sparse::extractSlice(a, slice));
    plan->pages = colorPages(plan->slices, a.rows, a.nnz());
    return plan;
}

std::shared_ptr<const SpmvPlan>
planSpmv(const sparse::CsrMatrix &a, const SystemConfig &config)
{
    auto plan = std::make_shared<SpmvPlan>();
    const unsigned n_pus = config.totalPus();
    plan->rows = a.rows;
    plan->cols = a.cols;
    plan->nnz = a.nnz();
    // The input is stored in the partitioned CSC format that matches the
    // output of MeNDA transposition (Sec. 3.6).
    plan->slices = sparse::partitionByNnz(a, n_pus);
    plan->csc.reserve(n_pus);
    for (const auto &slice : plan->slices)
        plan->csc.push_back(
            sparse::transposeReference(sparse::extractSlice(a, slice)));
    plan->pages = colorPages(plan->slices, a.rows, a.nnz());
    return plan;
}

std::shared_ptr<const SpgemmPlan>
planSpgemm(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
           const SystemConfig &config)
{
    menda_assert(a.cols == b.rows, "spgemm: inner dimension mismatch");
    auto plan = std::make_shared<SpgemmPlan>();
    const unsigned n_pus = config.totalPus();
    plan->rows = a.rows;
    plan->cols = b.cols;
    plan->nnz = a.nnz() + b.nnz();
    // Balance the *merge work* (partial products), not A's NNZ: PU
    // execution time tracks the elements its tree merges (Sec. 3.5
    // balancing on the SpGEMM work profile).
    plan->slices = config.rowPartitioning
                       ? sparse::partitionByRows(a, n_pus)
                       : spgemm::partitionByMergeWork(a, b, n_pus);
    plan->partialProducts = spgemm::partialProductCount(a, b);
    plan->csr.reserve(n_pus);
    for (const auto &slice : plan->slices)
        plan->csr.push_back(sparse::extractSlice(a, slice));
    plan->b = b; // replicated into every rank (PUs never communicate)
    return plan;
}

KernelJob::KernelJob(const SystemConfig &config,
                     std::shared_ptr<const TransposePlan> plan,
                     obs::Tracer *tracer)
    : kind_(Kind::Transpose), config_(config),
      transposePlan_(std::move(plan))
{
    buildComponents(config, tracer);
}

KernelJob::KernelJob(const SystemConfig &config,
                     std::shared_ptr<const SpmvPlan> plan,
                     std::vector<Value> x, obs::Tracer *tracer)
    : kind_(Kind::Spmv), config_(config), spmvPlan_(std::move(plan)),
      x_(std::move(x))
{
    menda_assert(x_.size() == spmvPlan_->cols,
                 "spmv: vector length mismatch");
    buildComponents(config, tracer);
}

KernelJob::KernelJob(const SystemConfig &config,
                     std::shared_ptr<const SpgemmPlan> plan,
                     obs::Tracer *tracer)
    : kind_(Kind::Spgemm), config_(config), spgemmPlan_(std::move(plan))
{
    buildComponents(config, tracer);
}

KernelJob::~KernelJob() = default;

void
KernelJob::buildComponents(const SystemConfig &config, obs::Tracer *tracer)
{
    if (config_.samplePeriod != 0) {
        config_.pu.samplePeriod = config_.samplePeriod;
        config_.dram.samplePeriod = config_.samplePeriod;
    }
    const unsigned n_pus = config_.totalPus();
    const std::size_t have = kind_ == Kind::Transpose
                                 ? transposePlan_->csr.size()
                                 : kind_ == Kind::Spmv
                                       ? spmvPlan_->csc.size()
                                       : spgemmPlan_->csr.size();
    menda_assert(have == n_pus,
                 "kernel plan was built for a different rank count");
    (void)config;

    wallStart_ = std::chrono::steady_clock::now();
    mems_.reserve(n_pus);
    pus_.reserve(n_pus);
    for (unsigned i = 0; i < n_pus; ++i) {
        mems_.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        switch (kind_) {
          case Kind::Transpose:
            pus_.push_back(std::make_unique<Pu>(
                "pu" + std::to_string(i), config_.pu,
                &transposePlan_->csr[i],
                transposePlan_->slices[i].rowBegin, mems_.back().get()));
            break;
          case Kind::Spmv:
            pus_.push_back(std::make_unique<Pu>(
                "pu" + std::to_string(i), config_.pu, &spmvPlan_->csc[i],
                &x_, spmvPlan_->slices[i].rowBegin, mems_.back().get()));
            break;
          case Kind::Spgemm:
            pus_.push_back(std::make_unique<Pu>(
                "pu" + std::to_string(i), config_.pu,
                &spgemmPlan_->csr[i], &spgemmPlan_->b,
                spgemmPlan_->slices[i].rowBegin, mems_.back().get()));
            break;
        }
    }

    if (config_.simMode != SimMode::Detailed) {
        // Fast tiers have no per-cycle events: no shards, no tracer.
        fastStats_.assign(n_pus, FastSimStats{});
        return;
    }

    // Shard per rank (Sec. 3.5: PUs never communicate during a pass):
    // each (PU, controller) pair owns a private scheduler. Shards share
    // nothing mutable — const plan slices in, per-shard components and
    // counters out — and the per-rank tick schedule does not depend on
    // the host thread count or on where step() pauses, which is what
    // makes outputs, counters, traces, and reports byte-identical
    // between batch, stepped, and threaded execution.
    if (tracer)
        tracer->ensureShards(n_pus);
    shards_.reserve(n_pus);
    for (unsigned i = 0; i < n_pus; ++i) {
        auto shard = std::make_unique<Shard>();
        if (tracer) {
            // Shard i is written only by its owning thread; registration
            // order (controller, PU, then the scheduler's idle-skip
            // tracks at finalize) is fixed, so the trace is
            // deterministic.
            obs::TraceShard *ts = tracer->shard(i);
            shard->sched.setTrace(ts);
            mems_[i]->attachTrace(ts);
            pus_[i]->attachTrace(ts);
        }
        shard->puClk = shard->sched.addDomain("pu", config_.pu.freqMhz);
        shard->memClk = shard->sched.addDomain("dram",
                                               config_.dram.freqMhz);
        shard->memClk->attach(mems_[i].get());
        shard->puClk->attach(pus_[i].get());
        shard->nextMark = config_.progressEveryCycles;
        pus_[i]->start();
        shards_.push_back(std::move(shard));
    }
}

bool
KernelJob::done() const
{
    if (config_.simMode != SimMode::Detailed)
        return nextFastRank_ >= pus_.size();
    return std::all_of(shards_.begin(), shards_.end(),
                       [](const auto &s) { return s->finished; });
}

void
KernelJob::runShardToCompletion(std::size_t i)
{
    Shard &shard = *shards_[i];
    if (shard.finished)
        return;
    const std::uint64_t progress_every = config_.progressEveryCycles;
    shard.sched.runUntil([&] {
        if (progress_every != 0 && pus_[i]->cycles() >= shard.nextMark) {
            emitProgress(i, pus_[i]->cycles(), wallStart_,
                         mems_[i]->readQueue().size() +
                             mems_[i]->writeQueue().size());
            shard.nextMark += progress_every;
        }
        return pus_[i]->done();
    });
    shard.seconds = shard.sched.seconds();
    shard.finished = true;
}

void
KernelJob::runFastRank(std::size_t i)
{
    const std::uint64_t progress_every = config_.progressEveryCycles;
    const char *mode = simModeName(config_.simMode);
    Cycle next_mark = progress_every;
    Pu::ProgressHook hook;
    if (progress_every != 0)
        hook = [&, i](Cycle cycles, Cycle fast_forwarded) {
            if (cycles < next_mark)
                return;
            emitProgress(i, cycles, wallStart_, 0, mode, fast_forwarded);
            next_mark = cycles - cycles % progress_every + progress_every;
        };
    fastStats_[i] = config_.simMode == SimMode::Functional
                        ? pus_[i]->runFunctional(hook)
                        : pus_[i]->runSampled(config_.sampled, hook);
}

bool
KernelJob::step(Cycle max_pu_cycles)
{
    if (done() || max_pu_cycles == 0)
        return false;

    if (config_.simMode != SimMode::Detailed) {
        // One rank's whole kernel per slice: the fast tiers advance
        // semantics in O(kernel) host time anyway, so the bounded unit
        // of work is a rank, not a cycle window.
        runFastRank(nextFastRank_++);
        return done();
    }

    for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard &shard = *shards_[i];
        if (shard.finished)
            continue;
        const Cycle target = pus_[i]->cycles() + max_pu_cycles;
        shard.sched.runUntil([&] {
            return pus_[i]->done() || pus_[i]->cycles() >= target;
        });
        if (pus_[i]->done()) {
            shard.seconds = shard.sched.seconds();
            shard.finished = true;
        }
    }
    return done();
}

void
KernelJob::runToCompletion()
{
    if (config_.simMode != SimMode::Detailed) {
        const auto run_one = [&](std::size_t i) { runFastRank(i); };
        if (config_.hostThreads == 1) {
            while (nextFastRank_ < pus_.size())
                runFastRank(nextFastRank_++);
        } else {
            // Resume-safe: only the ranks not yet executed go to the
            // pool (step() may have run a prefix already).
            const std::size_t first = nextFastRank_;
            ParallelRunner pool(config_.hostThreads);
            pool.run(pus_.size() - first,
                     [&](std::size_t i) { run_one(first + i); });
            nextFastRank_ = pus_.size();
        }
        return;
    }

    if (config_.hostThreads == 1) {
        for (std::size_t i = 0; i < shards_.size(); ++i)
            runShardToCompletion(i);
    } else {
        ParallelRunner pool(config_.hostThreads);
        pool.run(shards_.size(),
                 [&](std::size_t i) { runShardToCompletion(i); });
    }
}

Cycle
KernelJob::puCycles() const
{
    Cycle max_cycles = 0;
    for (const auto &pu : pus_)
        max_cycles = std::max(max_cycles, pu->cycles());
    return max_cycles;
}

std::uint64_t
KernelJob::nnz() const
{
    switch (kind_) {
      case Kind::Transpose: return transposePlan_->nnz;
      case Kind::Spmv: return spmvPlan_->nnz;
      case Kind::Spgemm: return spgemmPlan_->nnz;
    }
    return 0;
}

double
KernelJob::finishSeconds() const
{
    if (config_.simMode != SimMode::Detailed)
        return static_cast<double>(puCycles()) /
               (static_cast<double>(config_.pu.freqMhz) * 1e6);
    double seconds = 0.0;
    for (const auto &shard : shards_)
        seconds = std::max(seconds, shard->seconds);
    return seconds;
}

void
KernelJob::collect(RunResult &result)
{
    menda_assert(done(), "collect() before the job finished");
    result.seconds = finishSeconds();
    iterStats_.clear();
    Cycle bus_cycles_total = 0;
    Cycle elapsed_mem_cycles = 0;
    for (std::size_t i = 0; i < pus_.size(); ++i) {
        const Pu &pu = *pus_[i];
        const dram::MemoryController &mem = *mems_[i];
        result.puCycles = std::max(result.puCycles, pu.cycles());
        result.iterations = std::max(result.iterations,
                                     pu.iterationsExecuted());
        result.readBlocks += mem.readsServed();
        result.writeBlocks += mem.writesServed();
        result.coalescedRequests +=
            mem.readQueue().coalescedHits().value();
        result.rowConflicts += mem.rowConflicts();
        result.activates += mem.activates();
        result.treeOccupancyPacketCycles +=
            pu.tree().occupancyPacketCycles();
        result.leafPushStallCycles += pu.leafPushStallCycles();
        result.outputStallCycles += pu.outputStallCycles();
        result.readLatency.merge(mem.readLatency());
        result.leafStallRuns.merge(pu.leafStallRuns());
        for (unsigned r = 0; r < mem.config().ranks; ++r) {
            result.rankActivates.push_back(mem.rankActivates(r));
            result.rankBursts.push_back(mem.rankBursts(r));
        }
        bus_cycles_total += mem.busBusyCycles();
        elapsed_mem_cycles = std::max(elapsed_mem_cycles, mem.curCycle());
        iterStats_.push_back(pu.iterationStats());
        const auto &sp_r = pu.spilledReadBlocks();
        const auto &sp_w = pu.spilledWriteBlocks();
        if (result.spilledReadBlocks.size() < sp_r.size())
            result.spilledReadBlocks.resize(sp_r.size(), 0);
        if (result.spilledWriteBlocks.size() < sp_w.size())
            result.spilledWriteBlocks.resize(sp_w.size(), 0);
        for (std::size_t t = 0; t < sp_r.size(); ++t)
            result.spilledReadBlocks[t] += sp_r[t];
        for (std::size_t t = 0; t < sp_w.size(); ++t)
            result.spilledWriteBlocks[t] += sp_w[t];
    }
    if (!pus_.empty()) {
        result.treeOccupancy = pus_[0]->occupancySamples();
        result.readQueueDepth = mems_[0]->readDepthSamples();
    }
    if (elapsed_mem_cycles > 0)
        result.busUtilization =
            static_cast<double>(bus_cycles_total) /
            (static_cast<double>(elapsed_mem_cycles) * pus_.size());
    result.simMode = config_.simMode;
    for (const FastSimStats &st : fastStats_) {
        result.sampledWindows += st.sampledWindows;
        result.errorBoundPct =
            std::max(result.errorBoundPct, st.errorBoundPct);
        result.fastForwardedCycles += st.fastForwardedCycles;
    }
    finishedCollect_ = true;
}

TransposeResult
KernelJob::takeTranspose()
{
    menda_assert(kind_ == Kind::Transpose, "job is not a transposition");
    const TransposePlan &plan = *transposePlan_;
    TransposeResult result;
    result.slices = plan.slices;
    collect(result);

    // Merge the per-PU CSC partitions column-wise: slices are ordered by
    // row range, so rows stay ascending within each merged column and
    // each partition's column segment lands contiguously, in PU order.
    result.csc.rows = plan.rows;
    result.csc.cols = plan.cols;
    result.csc.ptr.assign(static_cast<std::size_t>(plan.cols) + 1, 0);
    result.csc.idx.resize(plan.nnz);
    result.csc.val.resize(plan.nnz);
    for (const auto &pu : pus_) {
        const std::vector<std::uint32_t> &ptr = pu->resultCsc().ptr;
        for (std::size_t c = 0; c < plan.cols; ++c)
            result.csc.ptr[c + 1] += ptr[c + 1] - ptr[c];
    }
    for (std::size_t c = 0; c < plan.cols; ++c)
        result.csc.ptr[c + 1] += result.csc.ptr[c];
    std::vector<std::uint32_t> cursor;
    cursor.reserve(plan.cols);
    cursor.assign(result.csc.ptr.begin(), result.csc.ptr.end() - 1);
    for (const auto &pu : pus_) {
        const sparse::CscMatrix &part = pu->resultCsc();
        for (std::size_t c = 0; c < plan.cols; ++c) {
            const std::uint32_t begin = part.ptr[c];
            const std::uint32_t len = part.ptr[c + 1] - begin;
            if (len == 0)
                continue;
            std::copy_n(part.idx.begin() + begin, len,
                        result.csc.idx.begin() + cursor[c]);
            std::copy_n(part.val.begin() + begin, len,
                        result.csc.val.begin() + cursor[c]);
            cursor[c] += len;
        }
    }
    return result;
}

SpmvResult
KernelJob::takeSpmv()
{
    menda_assert(kind_ == Kind::Spmv, "job is not an SpMV");
    const SpmvPlan &plan = *spmvPlan_;
    SpmvResult result;
    collect(result);

    result.y.assign(plan.rows, 0.0);
    for (std::size_t i = 0; i < pus_.size(); ++i) {
        const auto &part = pus_[i]->resultVector();
        for (std::size_t r = 0; r < part.size(); ++r)
            result.y[plan.slices[i].rowBegin + r] = part[r];
    }
    return result;
}

SpgemmResult
KernelJob::takeSpgemm()
{
    menda_assert(kind_ == Kind::Spgemm, "job is not an SpGEMM");
    const SpgemmPlan &plan = *spgemmPlan_;
    SpgemmResult result;
    result.slices = plan.slices;
    result.partialProducts = plan.partialProducts;
    collect(result);

    // Stitch the per-PU CSR slices: partitions are contiguous ascending
    // row ranges, so C is the row-wise concatenation of the slice
    // results (local row pointers rebased onto the global array).
    result.c.rows = plan.rows;
    result.c.cols = plan.cols;
    result.c.ptr.assign(static_cast<std::size_t>(plan.rows) + 1, 0);
    for (std::size_t i = 0; i < pus_.size(); ++i) {
        const sparse::CsrMatrix &part = pus_[i]->resultCsr();
        const Index base = plan.slices[i].rowBegin;
        for (Index r = 0; r < part.rows; ++r)
            result.c.ptr[base + r + 1] = part.ptr[r + 1] - part.ptr[r];
        result.c.idx.insert(result.c.idx.end(), part.idx.begin(),
                            part.idx.end());
        result.c.val.insert(result.c.val.end(), part.val.begin(),
                            part.val.end());
    }
    for (std::size_t r = 0; r < plan.rows; ++r)
        result.c.ptr[r + 1] += result.c.ptr[r];
    return result;
}

} // namespace menda::core
