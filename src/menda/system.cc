#include "menda/system.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/log.hh"
#include "sim/clock.hh"
#include "sim/parallel.hh"
#include "spgemm/plan.hh"

namespace menda::core
{

namespace
{

/** One --progress heartbeat line on stderr (never stdout: that may be
 *  carrying the machine-readable run report). */
void
emitProgress(std::size_t shard, Cycle cycles,
             std::chrono::steady_clock::time_point wall_start,
             std::uint64_t outstanding, const char *mode = "detailed",
             Cycle fast_forwarded = 0)
{
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const double rate = secs > 0.0 ? cycles / secs / 1e6 : 0.0;
    std::fprintf(stderr,
                 "[menda] shard %zu [%s]: %.0f Mcycles "
                 "(%.0f fast-forwarded), %.1f Msim-cycles/s, "
                 "%llu outstanding requests\n",
                 shard, mode, static_cast<double>(cycles) / 1e6,
                 static_cast<double>(fast_forwarded) / 1e6, rate,
                 static_cast<unsigned long long>(outstanding));
}

} // namespace

template <typename PuVec, typename MemVec>
void
MendaSystem::collect(RunResult &result, const PuVec &pus,
                     const MemVec &mems, double seconds)
{
    result.seconds = seconds;
    lastIterStats_.clear();
    Cycle bus_cycles_total = 0;
    Cycle elapsed_mem_cycles = 0;
    for (std::size_t i = 0; i < pus.size(); ++i) {
        const Pu &pu = *pus[i];
        const dram::MemoryController &mem = *mems[i];
        result.puCycles = std::max(result.puCycles, pu.cycles());
        result.iterations = std::max(result.iterations,
                                     pu.iterationsExecuted());
        result.readBlocks += mem.readsServed();
        result.writeBlocks += mem.writesServed();
        result.coalescedRequests +=
            mem.readQueue().coalescedHits().value();
        result.rowConflicts += mem.rowConflicts();
        result.activates += mem.activates();
        result.treeOccupancyPacketCycles +=
            pu.tree().occupancyPacketCycles();
        result.leafPushStallCycles += pu.leafPushStallCycles();
        result.outputStallCycles += pu.outputStallCycles();
        result.readLatency.merge(mem.readLatency());
        result.leafStallRuns.merge(pu.leafStallRuns());
        for (unsigned r = 0; r < mem.config().ranks; ++r) {
            result.rankActivates.push_back(mem.rankActivates(r));
            result.rankBursts.push_back(mem.rankBursts(r));
        }
        bus_cycles_total += mem.busBusyCycles();
        elapsed_mem_cycles = std::max(elapsed_mem_cycles, mem.curCycle());
        lastIterStats_.push_back(pu.iterationStats());
    }
    if (!pus.empty()) {
        result.treeOccupancy = pus[0]->occupancySamples();
        result.readQueueDepth = mems[0]->readDepthSamples();
    }
    if (elapsed_mem_cycles > 0)
        result.busUtilization =
            static_cast<double>(bus_cycles_total) /
            (static_cast<double>(elapsed_mem_cycles) * pus.size());
    result.simMode = config_.simMode;
    for (const FastSimStats &st : lastFastStats_) {
        result.sampledWindows += st.sampledWindows;
        result.errorBoundPct =
            std::max(result.errorBoundPct, st.errorBoundPct);
        result.fastForwardedCycles += st.fastForwardedCycles;
    }
}

double
MendaSystem::simulate(std::vector<std::unique_ptr<Pu>> &pus,
                      std::vector<std::unique_ptr<dram::MemoryController>>
                          &mems)
{
    menda_assert(pus.size() == mems.size(),
                 "simulate: PU/controller count mismatch");

    lastFastStats_.clear();
    if (config_.simMode != SimMode::Detailed)
        return simulateFast(pus);

    const std::uint64_t progress_every = config_.progressEveryCycles;
    const auto wall_start = std::chrono::steady_clock::now();

    // Observability forces the sharded path even on one host thread:
    // the shared-scheduler mode below skips a domain only when every
    // component of every rank is quiescent, so its idle-skip windows —
    // and with them the trace spans and sampler timestamps — differ
    // from the per-rank schedules. Per-rank results are bit-identical
    // either way (the PR-1 guarantee), and the sharded schedule does
    // not depend on the host thread count, which is what makes traces
    // and reports byte-identical between --threads 1 and --threads N.
    const bool observed = tracer_ != nullptr ||
                          config_.pu.samplePeriod != 0 ||
                          config_.dram.samplePeriod != 0;

    if (config_.hostThreads == 1 && !observed) {
        // Legacy sequential mode: all pairs share one scheduler and the
        // run ends when the slowest PU finishes.
        TickScheduler sched;
        ClockDomain *pu_clk = sched.addDomain("pu", config_.pu.freqMhz);
        ClockDomain *mem_clk = sched.addDomain("dram",
                                               config_.dram.freqMhz);
        for (std::size_t i = 0; i < pus.size(); ++i) {
            mem_clk->attach(mems[i].get());
            pu_clk->attach(pus[i].get());
        }
        for (auto &pu : pus)
            pu->start();
        Cycle next_mark = progress_every;
        sched.runUntil([&] {
            if (progress_every != 0 && pu_clk->curCycle() >= next_mark) {
                std::uint64_t outstanding = 0;
                for (const auto &mem : mems)
                    outstanding += mem->readQueue().size() +
                                   mem->writeQueue().size();
                emitProgress(0, pu_clk->curCycle(), wall_start,
                             outstanding);
                next_mark += progress_every;
            }
            return std::all_of(pus.begin(), pus.end(),
                               [](const auto &pu) { return pu->done(); });
        });
        return sched.seconds();
    }

    // Shard per rank (Sec. 3.5: PUs never communicate during a pass):
    // each (PU, controller) pair owns a private scheduler and runs to
    // completion on a pool thread. Shards share nothing mutable — const
    // matrix slices in, per-shard components and counters out — so the
    // join below is the only synchronization point, after which the
    // caller reads every result single-threaded. Each shard stops at
    // its own PU's completion tick; the simulated time of the run is
    // the slowest shard's clock, exactly as in the shared-scheduler
    // mode, and all outputs and counters are bit-identical to it.
    if (tracer_)
        tracer_->ensureShards(pus.size());
    std::vector<double> shard_seconds(pus.size(), 0.0);
    ParallelRunner pool(config_.hostThreads);
    pool.run(pus.size(), [&](std::size_t i) {
        TickScheduler sched;
        if (tracer_) {
            // Shard i is written only by this job; registration order
            // (controller, PU, then the scheduler's idle-skip tracks at
            // finalize) is fixed, so the trace is deterministic.
            obs::TraceShard *shard = tracer_->shard(i);
            sched.setTrace(shard);
            mems[i]->attachTrace(shard);
            pus[i]->attachTrace(shard);
        }
        ClockDomain *pu_clk = sched.addDomain("pu", config_.pu.freqMhz);
        ClockDomain *mem_clk = sched.addDomain("dram",
                                               config_.dram.freqMhz);
        mem_clk->attach(mems[i].get());
        pu_clk->attach(pus[i].get());
        pus[i]->start();
        Cycle next_mark = progress_every;
        sched.runUntil([&] {
            if (progress_every != 0 && pus[i]->cycles() >= next_mark) {
                emitProgress(i, pus[i]->cycles(), wall_start,
                             mems[i]->readQueue().size() +
                                 mems[i]->writeQueue().size());
                next_mark += progress_every;
            }
            return pus[i]->done();
        });
        shard_seconds[i] = sched.seconds();
    });
    return *std::max_element(shard_seconds.begin(), shard_seconds.end());
}

double
MendaSystem::simulateFast(std::vector<std::unique_ptr<Pu>> &pus)
{
    // Tracing needs the ticked engine; fast tiers have no per-cycle
    // events to record, so a requested tracer is ignored here.
    const std::uint64_t progress_every = config_.progressEveryCycles;
    const auto wall_start = std::chrono::steady_clock::now();
    const char *mode = simModeName(config_.simMode);
    lastFastStats_.assign(pus.size(), FastSimStats{});

    const auto run_one = [&](std::size_t i) {
        Cycle next_mark = progress_every;
        Pu::ProgressHook hook;
        if (progress_every != 0)
            hook = [&, i](Cycle cycles, Cycle fast_forwarded) {
                if (cycles < next_mark)
                    return;
                emitProgress(i, cycles, wall_start, 0, mode,
                             fast_forwarded);
                next_mark =
                    cycles - cycles % progress_every + progress_every;
            };
        lastFastStats_[i] = config_.simMode == SimMode::Functional
                                ? pus[i]->runFunctional(hook)
                                : pus[i]->runSampled(config_.sampled,
                                                     hook);
    };

    if (config_.hostThreads == 1) {
        for (std::size_t i = 0; i < pus.size(); ++i)
            run_one(i);
    } else {
        ParallelRunner pool(config_.hostThreads);
        pool.run(pus.size(), run_one);
    }

    Cycle max_cycles = 0;
    for (const auto &pu : pus)
        max_cycles = std::max(max_cycles, pu->cycles());
    return static_cast<double>(max_cycles) /
           (static_cast<double>(config_.pu.freqMhz) * 1e6);
}

TransposeResult
MendaSystem::transpose(const sparse::CsrMatrix &a)
{
    const unsigned n_pus = config_.totalPus();
    TransposeResult result;
    result.slices = config_.rowPartitioning
                        ? sparse::partitionByRows(a, n_pus)
                        : sparse::partitionByNnz(a, n_pus);

    std::vector<sparse::CsrMatrix> slices;
    slices.reserve(n_pus);
    for (const auto &slice : result.slices)
        slices.push_back(sparse::extractSlice(a, slice));

    std::vector<std::unique_ptr<dram::MemoryController>> mems;
    std::vector<std::unique_ptr<Pu>> pus;
    for (unsigned i = 0; i < n_pus; ++i) {
        mems.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        pus.push_back(std::make_unique<Pu>(
            "pu" + std::to_string(i), config_.pu, &slices[i],
            result.slices[i].rowBegin, mems.back().get()));
    }

    const double seconds = simulate(pus, mems);
    collect(result, pus, mems, seconds);

    // Merge the per-PU CSC partitions column-wise: slices are ordered by
    // row range, so rows stay ascending within each merged column and
    // each partition's column segment lands contiguously, in PU order.
    result.csc.rows = a.rows;
    result.csc.cols = a.cols;
    result.csc.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
    result.csc.idx.resize(a.nnz());
    result.csc.val.resize(a.nnz());
    for (const auto &pu : pus) {
        const std::vector<std::uint32_t> &ptr = pu->resultCsc().ptr;
        for (std::size_t c = 0; c < a.cols; ++c)
            result.csc.ptr[c + 1] += ptr[c + 1] - ptr[c];
    }
    for (std::size_t c = 0; c < a.cols; ++c)
        result.csc.ptr[c + 1] += result.csc.ptr[c];
    std::vector<std::uint32_t> cursor;
    cursor.reserve(a.cols);
    cursor.assign(result.csc.ptr.begin(), result.csc.ptr.end() - 1);
    for (const auto &pu : pus) {
        const sparse::CscMatrix &part = pu->resultCsc();
        for (std::size_t c = 0; c < a.cols; ++c) {
            const std::uint32_t begin = part.ptr[c];
            const std::uint32_t len = part.ptr[c + 1] - begin;
            if (len == 0)
                continue;
            std::copy_n(part.idx.begin() + begin, len,
                        result.csc.idx.begin() + cursor[c]);
            std::copy_n(part.val.begin() + begin, len,
                        result.csc.val.begin() + cursor[c]);
            cursor[c] += len;
        }
    }
    return result;
}

SpmvResult
MendaSystem::spmv(const sparse::CsrMatrix &a, const std::vector<Value> &x)
{
    menda_assert(x.size() == a.cols, "spmv: vector length mismatch");
    const unsigned n_pus = config_.totalPus();
    SpmvResult result;
    auto slices = sparse::partitionByNnz(a, n_pus);

    // The input is stored in the partitioned CSC format that matches the
    // output of MeNDA transposition (Sec. 3.6).
    std::vector<sparse::CscMatrix> csc_slices;
    csc_slices.reserve(n_pus);
    for (const auto &slice : slices)
        csc_slices.push_back(
            sparse::transposeReference(sparse::extractSlice(a, slice)));

    std::vector<std::unique_ptr<dram::MemoryController>> mems;
    std::vector<std::unique_ptr<Pu>> pus;
    for (unsigned i = 0; i < n_pus; ++i) {
        mems.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        pus.push_back(std::make_unique<Pu>(
            "pu" + std::to_string(i), config_.pu, &csc_slices[i], &x,
            slices[i].rowBegin, mems.back().get()));
    }

    const double seconds = simulate(pus, mems);
    collect(result, pus, mems, seconds);

    result.y.assign(a.rows, 0.0);
    for (unsigned i = 0; i < n_pus; ++i) {
        const auto &part = pus[i]->resultVector();
        for (std::size_t r = 0; r < part.size(); ++r)
            result.y[slices[i].rowBegin + r] = part[r];
    }
    return result;
}

SpgemmResult
MendaSystem::spgemm(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    menda_assert(a.cols == b.rows, "spgemm: inner dimension mismatch");
    const unsigned n_pus = config_.totalPus();
    SpgemmResult result;
    // Balance the *merge work* (partial products), not A's NNZ: PU
    // execution time tracks the elements its tree merges (Sec. 3.5
    // balancing on the SpGEMM work profile).
    result.slices = config_.rowPartitioning
                        ? sparse::partitionByRows(a, n_pus)
                        : spgemm::partitionByMergeWork(a, b, n_pus);
    result.partialProducts = spgemm::partialProductCount(a, b);

    std::vector<sparse::CsrMatrix> slices;
    slices.reserve(n_pus);
    for (const auto &slice : result.slices)
        slices.push_back(sparse::extractSlice(a, slice));

    // B is replicated into every rank (PUs never communicate).
    std::vector<std::unique_ptr<dram::MemoryController>> mems;
    std::vector<std::unique_ptr<Pu>> pus;
    for (unsigned i = 0; i < n_pus; ++i) {
        mems.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        pus.push_back(std::make_unique<Pu>(
            "pu" + std::to_string(i), config_.pu, &slices[i], &b,
            result.slices[i].rowBegin, mems.back().get()));
    }

    const double seconds = simulate(pus, mems);
    collect(result, pus, mems, seconds);

    // Stitch the per-PU CSR slices: partitions are contiguous ascending
    // row ranges, so C is the row-wise concatenation of the slice
    // results (local row pointers rebased onto the global array).
    result.c.rows = a.rows;
    result.c.cols = b.cols;
    result.c.ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);
    for (unsigned i = 0; i < n_pus; ++i) {
        const sparse::CsrMatrix &part = pus[i]->resultCsr();
        const Index base = result.slices[i].rowBegin;
        for (Index r = 0; r < part.rows; ++r)
            result.c.ptr[base + r + 1] =
                part.ptr[r + 1] - part.ptr[r];
        result.c.idx.insert(result.c.idx.end(), part.idx.begin(),
                            part.idx.end());
        result.c.val.insert(result.c.val.end(), part.val.begin(),
                            part.val.end());
    }
    for (std::size_t r = 0; r < a.rows; ++r)
        result.c.ptr[r + 1] += result.c.ptr[r];
    return result;
}

} // namespace menda::core
