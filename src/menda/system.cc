#include "menda/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/clock.hh"

namespace menda::core
{

template <typename PuVec, typename MemVec>
void
MendaSystem::collect(RunResult &result, const PuVec &pus,
                     const MemVec &mems, double seconds)
{
    result.seconds = seconds;
    lastIterStats_.clear();
    Cycle bus_cycles_total = 0;
    Cycle elapsed_mem_cycles = 0;
    for (std::size_t i = 0; i < pus.size(); ++i) {
        const Pu &pu = *pus[i];
        const dram::MemoryController &mem = *mems[i];
        result.puCycles = std::max(result.puCycles, pu.cycles());
        result.iterations = std::max(result.iterations,
                                     pu.iterationsExecuted());
        result.readBlocks += mem.readsServed();
        result.writeBlocks += mem.writesServed();
        result.coalescedRequests +=
            mem.readQueue().coalescedHits().value();
        result.rowConflicts += mem.rowConflicts();
        result.activates += mem.activates();
        bus_cycles_total += mem.busBusyCycles();
        elapsed_mem_cycles = std::max(elapsed_mem_cycles, mem.curCycle());
        lastIterStats_.push_back(pu.iterationStats());
    }
    if (elapsed_mem_cycles > 0)
        result.busUtilization =
            static_cast<double>(bus_cycles_total) /
            (static_cast<double>(elapsed_mem_cycles) * pus.size());
}

TransposeResult
MendaSystem::transpose(const sparse::CsrMatrix &a)
{
    const unsigned n_pus = config_.totalPus();
    TransposeResult result;
    result.slices = config_.rowPartitioning
                        ? sparse::partitionByRows(a, n_pus)
                        : sparse::partitionByNnz(a, n_pus);

    std::vector<sparse::CsrMatrix> slices;
    slices.reserve(n_pus);
    for (const auto &slice : result.slices)
        slices.push_back(sparse::extractSlice(a, slice));

    TickScheduler sched;
    ClockDomain *pu_clk = sched.addDomain("pu", config_.pu.freqMhz);
    ClockDomain *mem_clk = sched.addDomain("dram", config_.dram.freqMhz);

    std::vector<std::unique_ptr<dram::MemoryController>> mems;
    std::vector<std::unique_ptr<Pu>> pus;
    for (unsigned i = 0; i < n_pus; ++i) {
        mems.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        pus.push_back(std::make_unique<Pu>(
            "pu" + std::to_string(i), config_.pu, &slices[i],
            result.slices[i].rowBegin, mems.back().get()));
        mem_clk->attach(mems.back().get());
        pu_clk->attach(pus.back().get());
    }

    for (auto &pu : pus)
        pu->start();
    sched.runUntil([&] {
        return std::all_of(pus.begin(), pus.end(),
                           [](const auto &pu) { return pu->done(); });
    });

    collect(result, pus, mems, sched.seconds());

    // Merge the per-PU CSC partitions column-wise: slices are ordered by
    // row range, so rows stay ascending within each merged column.
    result.csc.rows = a.rows;
    result.csc.cols = a.cols;
    result.csc.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
    result.csc.idx.resize(a.nnz());
    result.csc.val.resize(a.nnz());
    for (const auto &pu : pus)
        for (std::size_t c = 0; c < a.cols; ++c)
            result.csc.ptr[c + 1] += pu->resultCsc().ptr[c + 1] -
                                     pu->resultCsc().ptr[c];
    for (std::size_t c = 0; c < a.cols; ++c)
        result.csc.ptr[c + 1] += result.csc.ptr[c];
    std::vector<std::uint32_t> cursor(result.csc.ptr.begin(),
                                      result.csc.ptr.end() - 1);
    for (const auto &pu : pus) {
        const sparse::CscMatrix &part = pu->resultCsc();
        for (std::size_t c = 0; c < a.cols; ++c) {
            for (std::uint32_t k = part.ptr[c]; k < part.ptr[c + 1];
                 ++k) {
                const std::uint32_t dst = cursor[c]++;
                result.csc.idx[dst] = part.idx[k];
                result.csc.val[dst] = part.val[k];
            }
        }
    }
    return result;
}

SpmvResult
MendaSystem::spmv(const sparse::CsrMatrix &a, const std::vector<Value> &x)
{
    menda_assert(x.size() == a.cols, "spmv: vector length mismatch");
    const unsigned n_pus = config_.totalPus();
    SpmvResult result;
    auto slices = sparse::partitionByNnz(a, n_pus);

    // The input is stored in the partitioned CSC format that matches the
    // output of MeNDA transposition (Sec. 3.6).
    std::vector<sparse::CscMatrix> csc_slices;
    csc_slices.reserve(n_pus);
    for (const auto &slice : slices)
        csc_slices.push_back(
            sparse::transposeReference(sparse::extractSlice(a, slice)));

    TickScheduler sched;
    ClockDomain *pu_clk = sched.addDomain("pu", config_.pu.freqMhz);
    ClockDomain *mem_clk = sched.addDomain("dram", config_.dram.freqMhz);

    std::vector<std::unique_ptr<dram::MemoryController>> mems;
    std::vector<std::unique_ptr<Pu>> pus;
    for (unsigned i = 0; i < n_pus; ++i) {
        mems.push_back(std::make_unique<dram::MemoryController>(
            "mem" + std::to_string(i), config_.dram,
            config_.pu.requestCoalescing));
        pus.push_back(std::make_unique<Pu>(
            "pu" + std::to_string(i), config_.pu, &csc_slices[i], &x,
            slices[i].rowBegin, mems.back().get()));
        mem_clk->attach(mems.back().get());
        pu_clk->attach(pus.back().get());
    }

    for (auto &pu : pus)
        pu->start();
    sched.runUntil([&] {
        return std::all_of(pus.begin(), pus.end(),
                           [](const auto &pu) { return pu->done(); });
    });

    collect(result, pus, mems, sched.seconds());

    result.y.assign(a.rows, 0.0);
    for (unsigned i = 0; i < n_pus; ++i) {
        const auto &part = pus[i]->resultVector();
        for (std::size_t r = 0; r < part.size(); ++r)
            result.y[slices[i].rowBegin + r] = part[r];
    }
    return result;
}

} // namespace menda::core
