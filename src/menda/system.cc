#include "menda/system.hh"

#include "menda/job.hh"

namespace menda::core
{

// The kernel entry points are thin wrappers over the plan/job split in
// menda/job.hh: build the host-side layout, construct the simulated
// components, run to completion, assemble the output. menda_serve uses
// the same pieces through start*() but advances jobs in bounded slices
// and shares plans across requests via the residency cache.

std::unique_ptr<KernelJob>
MendaSystem::startTranspose(const sparse::CsrMatrix &a)
{
    return std::make_unique<KernelJob>(config_, planTranspose(a, config_),
                                       tracer_);
}

std::unique_ptr<KernelJob>
MendaSystem::startSpmv(const sparse::CsrMatrix &a,
                       const std::vector<Value> &x)
{
    return std::make_unique<KernelJob>(config_, planSpmv(a, config_), x,
                                       tracer_);
}

std::unique_ptr<KernelJob>
MendaSystem::startSpgemm(const sparse::CsrMatrix &a,
                         const sparse::CsrMatrix &b)
{
    return std::make_unique<KernelJob>(config_,
                                       planSpgemm(a, b, config_), tracer_);
}

TransposeResult
MendaSystem::transpose(const sparse::CsrMatrix &a)
{
    auto job = startTranspose(a);
    job->runToCompletion();
    TransposeResult result = job->takeTranspose();
    lastIterStats_ = job->iterationStats();
    return result;
}

SpmvResult
MendaSystem::spmv(const sparse::CsrMatrix &a, const std::vector<Value> &x)
{
    auto job = startSpmv(a, x);
    job->runToCompletion();
    SpmvResult result = job->takeSpmv();
    lastIterStats_ = job->iterationStats();
    return result;
}

SpgemmResult
MendaSystem::spgemm(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    auto job = startSpgemm(a, b);
    job->runToCompletion();
    SpgemmResult result = job->takeSpgemm();
    lastIterStats_ = job->iterationStats();
    return result;
}

} // namespace menda::core
