/**
 * @file
 * The fast simulation tiers of a PU (DESIGN.md §12).
 *
 * Functional: the kernel's semantics are advanced directly — a stable
 * k-way software merge that replicates the hardware tree's slot-order
 * tiebreak, round structure, and root reduction, feeding the same
 * OutputUnit the detailed engine feeds — so COO/CSR/vector outputs are
 * bitwise identical to a ticked run. puCycles comes from an analytical
 * per-iteration model (merge throughput vs block-transfer bounds).
 *
 * Sampled: SMARTS-style interleaving. The kernel still advances
 * functionally, but every periodCycles of estimated time a
 * windowCycles-long cycle-accurate window runs on a THROWAWAY PU and
 * controller pair seeded with the live stream cursors (prefetch buffers
 * filled, DRAM rows opened — functional warming). The fast-forwarded
 * gaps are charged at the measured per-window merge rates, and the
 * spread of those rates yields errorBoundPct.
 */

#include "menda/pu.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "menda/sampled_stats.hh"
#include "sim/clock.hh"

namespace menda::core
{

namespace
{

/** The merge key each PU mode's tree compares (mirrors the Pu ctors). */
MergeKey
keyForMode(PuMode mode)
{
    switch (mode) {
      case PuMode::Transpose: return MergeKey::Column;
      case PuMode::Spmv: return MergeKey::Row;
      case PuMode::Spgemm: return MergeKey::RowCol;
    }
    return MergeKey::Column;
}

constexpr std::uint64_t elemsPerBlock = blockBytes / 4;

/** Aligned 64 B spans of a 4-byte-element array covering [begin, end). */
std::uint64_t
spanBlocks(std::uint64_t begin, std::uint64_t end)
{
    if (begin >= end)
        return 0;
    return (end - 1) / elemsPerBlock - begin / elemsPerBlock + 1;
}

/** Elements retired between checkpoint calls (amortizes the hook). */
constexpr std::uint64_t checkpointStride = 1024;

} // namespace

Pu::Pu(const Pu &parent, std::vector<StreamDesc> streams, bool final_iter,
       dram::MemoryController *mem)
    : name_(parent.name_ + ".window"),
      config_(parent.config_),
      mode_(parent.mode_),
      csr_(parent.csr_),
      csc_(parent.csc_),
      vecX_(parent.vecX_),
      bMat_(parent.bMat_),
      rowOffset_(parent.rowOffset_),
      map_(parent.map_),
      mem_(mem),
      tree_(parent.config_, keyForMode(parent.mode_)),
      output_(config_, &map_),
      stats_(name_)
{
    // Throwaway measurement clone: never sampled, never traced; COO
    // stream reads resolve against the PARENT's ping-pong buffers.
    config_.samplePeriod = 0;
    windowMode_ = true;
    windowFinal_ = final_iter;
    cooSrc_[0] = &parent.coo_[0];
    cooSrc_[1] = &parent.coo_[1];
    streams_ = std::move(streams);
    // Huffman-scheduled SpGEMM suffixes may carry CondensedLeaf
    // descriptors; their virtual-to-physical mapping rides along.
    // huffman_ itself stays false: a window replays explicit streams
    // and never consults the merge-tree plan.
    spgemmStreams_ = parent.spgemmStreams_;
    streamElemPrefix_ = parent.streamElemPrefix_;
    condensedLeaves_ = parent.condensedLeaves_;
    commonInit();
}

void
Pu::startWindow()
{
    menda_assert(windowMode_ && phase_ == Phase::Idle,
                 "startWindow: not an idle window PU");
    phase_ = Phase::Running;
    // Window streams are explicit suffix descriptors: resolve ordinals
    // from streams_ and skip the pointer walk (iteration 0's stream
    // bounds are already baked into the descriptors).
    iteration_ = 1;
    srcCoo_ = 0;
    setupIteration();
}

void
Pu::primeWindow(double fill_frac)
{
    // Hand out the first streams the way the mid-run FSM already had.
    // Each doAssignments() pass makes at most two assignments, so drive
    // the queue a bounded number of passes; non-seamless configs keep
    // requeueing future rounds — those stay for the window proper.
    for (unsigned pass = 0;
         pass < config_.leaves * 2 && !assignQueue_.empty(); ++pass)
        doAssignments();

    // Fill the prefetch buffers instantly and open the DRAM rows those
    // blocks live in. Fill levels matter: priming every buffer to the
    // brim hands the window a synchronized stall-free honeymoon
    // (~bufferEntries*leaves pops) that inflates the measured rate,
    // while underfilling starves it. Both biases showed up as multi-%
    // puCycles errors, with opposite signs on uniform vs RMAT inputs —
    // so the target is the PREVIOUS window's observed mean occupancy,
    // staggered across slots to avoid lockstep drain. Partially-filled
    // chunks are fine: the window issues the remaining blocks itself,
    // exactly like in-flight loads.
    fill_frac = std::min(std::max(fill_frac, 0.05), 1.0);
    for (unsigned b = 0; b < config_.leaves; ++b) {
        PrefetchBuffer &buf = *buffers_[b];
        static constexpr double kStagger[4] = {0.6, 0.9, 1.1, 1.4};
        const double frac =
            std::min(fill_frac * kStagger[b % 4], 1.0);
        const unsigned target = static_cast<unsigned>(
            frac * config_.prefetchBufferEntries + 0.5);
        Addr addr;
        while (buf.occupancy() < target &&
               (addr = buf.pendingBlock()) != 0) {
            buf.issuedBlock();
            mem_->warmPrime(addr);
            buf.fillFromResponse(addr);
        }
        noteBufferActivity(b);
    }
}

double
Pu::avgBufferFill() const
{
    std::uint64_t held = 0;
    for (unsigned b = 0; b < config_.leaves; ++b)
        held += buffers_[b]->occupancy();
    const double cap = static_cast<double>(config_.leaves) *
                       config_.prefetchBufferEntries;
    return cap > 0.0 ? static_cast<double>(held) / cap : 0.0;
}

std::unique_ptr<Pu>
Pu::cloneFresh(dram::MemoryController *mem) const
{
    PuConfig cfg = config_;
    cfg.samplePeriod = 0;
    switch (mode_) {
      case PuMode::Transpose:
        return std::make_unique<Pu>(name_ + ".anchor", cfg, csr_,
                                    rowOffset_, mem);
      case PuMode::Spmv:
        return std::make_unique<Pu>(name_ + ".anchor", cfg, csc_, vecX_,
                                    rowOffset_, mem);
      case PuMode::Spgemm:
        return std::make_unique<Pu>(name_ + ".anchor", cfg, csr_, bMat_,
                                    rowOffset_, mem);
    }
    menda_panic("unreachable PU mode");
}

void
Pu::acceptFunctional(const Packet &packet, std::uint64_t &write_blocks)
{
    // Stores drain immediately, so canAccept() never back-pressures and
    // the store sequence matches the detailed engine's block order.
    output_.accept(packet);
    while (output_.hasPendingStore()) {
        output_.storeIssued();
        ++stores_;
        ++write_blocks;
    }
}

std::uint64_t
Pu::functionalMergeRounds(std::uint64_t &write_blocks,
                          const CheckpointFn &checkpoint)
{
    const std::uint64_t n = streamCount();
    const unsigned leaves = config_.leaves;
    const MergeKey key = keyForMode(mode_);
    // SpMV reduces in every iteration; SpGEMM only in the final one; a
    // transposition never does — exactly doRootPop's dispatch.
    const bool reduce = mode_ == PuMode::Spmv ||
                        (mode_ == PuMode::Spgemm && finalIteration_);

    struct Slot
    {
        StreamDesc desc;
        std::uint64_t cursor = 0; ///< element currently held in cur
        Packet cur;
    };
    std::vector<Slot> slots(leaves);

    // Pre-size the merged arrays: vector growth inside the per-element
    // accept path is pure overhead at this tier.
    std::uint64_t total = 0;
    for (std::uint64_t ord = 0; ord < n; ++ord) {
        const StreamDesc d = streamForOrdinal(ord);
        if (d.end > d.begin)
            total += d.end - d.begin;
    }
    output_.reserveMerged(total);

    // Tournament (loser) tree on (merge key, slot index): a PE tie pops
    // its LEFT child, which composes across the tree to lowest-slot-wins
    // — the stability that makes the merge timing-independent. A loser
    // tree replays exactly log2(k) comparisons per element along a FIXED
    // leaf-to-root path (a binary heap's replace-top sift-down costs up
    // to 2·log2(k) on a data-dependent path), which is the difference
    // between the functional tier tracking memory bandwidth and tracking
    // branch mispredictions. Exhausted leaves become (max, max)
    // sentinels; a live entry always wins the tie on slot < UINT32_MAX.
    // An entry packs (key << 32 | slot) into one 128-bit integer, so the
    // ordering test is a single wide compare and the replay loop below
    // compiles branch-free — the keys are effectively random, and a
    // branchy compare costs a misprediction per tree level.
    using Entry = unsigned __int128;
    constexpr Entry kSentinel = ~Entry(0);
    const auto makeEntry = [](std::uint64_t k, unsigned slot) {
        return (Entry(k) << 32) | slot;
    };
    const auto entSlot = [](Entry e) {
        return unsigned(e & 0xffffffffu);
    };
    std::vector<Entry> ext;        // current entry per leaf position
    std::vector<unsigned> losers;  // internal nodes: losing leaf position
    std::vector<unsigned> winners; // build-time scratch
    ext.reserve(std::bit_ceil(std::uint64_t(leaves)));

    // SpMV dense-accumulator scratch: a round's reduction by row is a
    // scatter-add when the row domain is dense enough (see below).
    const Index dense_rows =
        mode_ == PuMode::Spmv && csc_ ? csc_->rows : 0;
    std::vector<Value> dense_val;
    std::vector<Index> dense_col;
    std::vector<std::uint32_t> dense_stamp, dense_cnt;
    if (dense_rows != 0) {
        dense_val.resize(dense_rows);
        dense_col.resize(dense_rows);
        dense_cnt.resize(dense_rows);
        dense_stamp.assign(dense_rows, 0);
    }
    // Transpose counting-sort scratch: without a reduction the merge
    // output is exactly a stable sort of the round by (column, slot),
    // which a two-pass counting sort over the column domain reproduces.
    const Index sort_cols =
        mode_ == PuMode::Transpose && csr_ ? csr_->cols : 0;
    std::vector<Packet> staged, placed;
    std::vector<std::uint16_t> staged_slot, placed_slot;
    std::vector<std::uint32_t> col_ofs;
    if (sort_cols != 0)
        col_ofs.resize(std::size_t(sort_cols) + 1);

    std::uint64_t retired = 0;
    std::uint64_t until_checkpoint = checkpointStride;
    for (std::uint64_t round = 0; round < roundsTotal_; ++round) {
        const std::uint64_t base = round * leaves;
        ext.clear();
        std::uint64_t round_elems = 0;
        for (unsigned s = 0; s < leaves; ++s) {
            Slot &slot = slots[s];
            const std::uint64_t ordinal = base + s;
            slot.desc = ordinal < n ? streamForOrdinal(ordinal)
                                    : StreamDesc{};
            slot.cursor = slot.desc.begin;
            if (slot.cursor < slot.desc.end) {
                round_elems += slot.desc.end - slot.desc.begin;
                slot.cur = readElement(slot.desc, slot.cursor);
                ext.push_back(makeEntry(mergeKey(slot.cur, key), s));
            }
        }
        // Slot-aligned remaining work: the current round's live cursors
        // (exhausted slots become padding), then every later round's
        // streams untouched.
        const SuffixFn suffix = [&]() {
            std::vector<StreamDesc> out;
            out.reserve(leaves +
                        (n > base + leaves ? n - base - leaves : 0));
            for (unsigned t = 0; t < leaves; ++t) {
                StreamDesc d = slots[t].desc;
                d.begin = slots[t].cursor;
                if (d.begin >= d.end)
                    d = StreamDesc{};
                out.push_back(d);
            }
            for (std::uint64_t ord = base + leaves; ord < n; ++ord)
                out.push_back(streamForOrdinal(ord));
            return out;
        };
        // SpMV reduces on the row alone and every stream's rows
        // strictly increase, so for any output row the contributions
        // arrive in ascending slot order — the exact order the merge
        // tree's lowest-slot-wins tiebreak feeds the root reduction.
        // Walking the streams slot-major and scatter-adding into a
        // dense per-row accumulator therefore produces bitwise-equal
        // sums (same float additions, same order) without paying
        // log2(k) compares per element. Only worth it when the round
        // actually covers the row domain; sparse rounds keep the tree.
        if (dense_rows != 0 && round_elems >= dense_rows / 4) {
            const std::uint32_t epoch =
                static_cast<std::uint32_t>(round + 1);
            for (unsigned s = 0; s < leaves; ++s) {
                Slot &slot = slots[s];
                while (slot.cursor < slot.desc.end) {
                    const Packet p =
                        readElement(slot.desc, slot.cursor);
                    ++slot.cursor;
                    if (dense_stamp[p.row] != epoch) {
                        dense_stamp[p.row] = epoch;
                        dense_val[p.row] = p.val;
                        dense_col[p.row] = p.col;
                        dense_cnt[p.row] = 1;
                    } else {
                        dense_val[p.row] += p.val;
                        ++dense_cnt[p.row];
                    }
                }
            }
            // Ascending-row drain; the last touched row carries the
            // round's end-of-line token, as the tree's root would.
            // Checkpoints fire in OUTPUT order: emitting row r means
            // exactly the elements with row <= r are consumed from
            // every stream, so the (lazy) suffix replays each stream
            // to that frontier — the same state the tree would be in.
            Packet pend;
            for (Index r = 0; r < dense_rows; ++r) {
                if (dense_stamp[r] != epoch)
                    continue;
                if (pend.valid)
                    acceptFunctional(pend, write_blocks);
                pend = Packet::data(r, dense_col[r], dense_val[r]);
                const std::uint64_t consumed = dense_cnt[r];
                retired += consumed;
                if (checkpoint) {
                    if (consumed >= until_checkpoint) {
                        until_checkpoint = checkpointStride;
                        const SuffixFn frontier = [&, r]() {
                            std::vector<StreamDesc> out;
                            out.reserve(
                                leaves + (n > base + leaves
                                              ? n - base - leaves
                                              : 0));
                            for (unsigned t = 0; t < leaves; ++t) {
                                StreamDesc d = slots[t].desc;
                                while (d.begin < d.end &&
                                       readElement(d, d.begin).row <=
                                           r)
                                    ++d.begin;
                                if (d.begin >= d.end)
                                    d = StreamDesc{};
                                out.push_back(d);
                            }
                            for (std::uint64_t ord = base + leaves;
                                 ord < n; ++ord)
                                out.push_back(streamForOrdinal(ord));
                            return out;
                        };
                        checkpoint(retired, frontier);
                    } else {
                        until_checkpoint -= consumed;
                    }
                }
            }
            if (pend.valid) {
                pend.eol = true;
                acceptFunctional(pend, write_blocks);
            } else {
                acceptFunctional(Packet::endOfLine(), write_blocks);
            }
            continue;
        }
        // Transposition keeps every element, so the round's output
        // sequence is its input stable-sorted by (column, slot): equal
        // columns pop lowest-slot-first, and within one slot the stream
        // is already column-ordered. Staging the round stream-major and
        // counting-sorting on the column reproduces that order in two
        // linear passes instead of log2(k) compares per element. Sparse
        // rounds (histogram would dwarf the data) keep the tree.
        if (sort_cols != 0 && round_elems >= sort_cols / 4) {
            staged.clear();
            staged_slot.clear();
            staged.reserve(round_elems);
            staged_slot.reserve(round_elems);
            for (unsigned s = 0; s < leaves; ++s) {
                Slot &slot = slots[s];
                while (slot.cursor < slot.desc.end) {
                    staged.push_back(
                        readElement(slot.desc, slot.cursor));
                    staged_slot.push_back(
                        static_cast<std::uint16_t>(s));
                    ++slot.cursor;
                }
            }
            std::fill(col_ofs.begin(), col_ofs.end(), 0u);
            for (const Packet &p : staged)
                ++col_ofs[std::size_t(p.col) + 1];
            for (std::size_t c = 1; c < col_ofs.size(); ++c)
                col_ofs[c] += col_ofs[c - 1];
            placed.resize(staged.size());
            placed_slot.resize(staged.size());
            for (std::size_t i = 0; i < staged.size(); ++i) {
                const std::uint32_t at = col_ofs[staged[i].col]++;
                placed[at] = staged[i];
                placed_slot[at] = staged_slot[i];
            }
            // Emission IS the merge order, so checkpoints fire exactly
            // as the tree's would; the (lazy) suffix counts how many
            // elements each slot contributed to the emitted prefix.
            for (std::size_t i = 0; i < placed.size(); ++i) {
                Packet p = placed[i];
                p.eol = false;
                acceptFunctional(p, write_blocks);
                ++retired;
                if (checkpoint && --until_checkpoint == 0) {
                    until_checkpoint = checkpointStride;
                    const SuffixFn frontier = [&, i]() {
                        std::vector<std::uint64_t> consumed(leaves, 0);
                        for (std::size_t j = 0; j <= i; ++j)
                            ++consumed[placed_slot[j]];
                        std::vector<StreamDesc> out;
                        out.reserve(leaves + (n > base + leaves
                                                  ? n - base - leaves
                                                  : 0));
                        for (unsigned t = 0; t < leaves; ++t) {
                            StreamDesc d = slots[t].desc;
                            d.begin += consumed[t];
                            if (d.begin >= d.end)
                                d = StreamDesc{};
                            out.push_back(d);
                        }
                        for (std::uint64_t ord = base + leaves;
                             ord < n; ++ord)
                            out.push_back(streamForOrdinal(ord));
                        return out;
                    };
                    checkpoint(retired, frontier);
                }
            }
            acceptFunctional(Packet::endOfLine(), write_blocks);
            continue;
        }
        unsigned live = ext.size();
        unsigned winner = 0;
        const unsigned m =
            live > 1 ? unsigned(std::bit_ceil(std::uint64_t(live))) : 1;
        if (live > 1) {
            ext.resize(m, kSentinel);
            losers.resize(m);
            winners.resize(2 * m);
            for (unsigned i = 0; i < m; ++i)
                winners[m + i] = i;
            for (unsigned p = m; p-- > 1;) {
                const unsigned a = winners[2 * p];
                const unsigned b = winners[2 * p + 1];
                const bool right = ext[b] < ext[a];
                losers[p] = right ? a : b;
                winners[p] = right ? b : a;
            }
            winner = winners[1];
        }
        Packet red; // round-local: doRootPop flushes it at every EOL
        const auto emit = [&](Packet p) {
            p.eol = false;
            if (!reduce) {
                acceptFunctional(p, write_blocks);
            } else {
                const bool same_key =
                    red.valid && red.row == p.row &&
                    (mode_ == PuMode::Spmv || red.col == p.col);
                if (same_key) {
                    red.val += p.val;
                } else {
                    if (red.valid)
                        acceptFunctional(red, write_blocks);
                    red = p;
                }
            }
            ++retired;
            if (checkpoint && --until_checkpoint == 0) {
                until_checkpoint = checkpointStride;
                checkpoint(retired, suffix);
            }
        };
        while (live > 1) {
            const unsigned w = winner;
            const unsigned s = entSlot(ext[w]);
            Slot &slot = slots[s];
            const Packet p = slot.cur;
            ++slot.cursor;
            if (slot.cursor < slot.desc.end) {
                slot.cur = readElement(slot.desc, slot.cursor);
                ext[w] = makeEntry(mergeKey(slot.cur, key), s);
            } else {
                ext[w] = kSentinel;
                --live;
            }
            unsigned cur = w;
            Entry cur_ent = ext[w];
            for (unsigned node = (m + w) >> 1; node; node >>= 1) {
                const unsigned l = losers[node];
                const Entry lent = ext[l];
                const bool swap = lent < cur_ent;
                losers[node] = swap ? cur : l;
                cur = swap ? l : cur;
                cur_ent = swap ? lent : cur_ent;
            }
            winner = cur;
            emit(p);
        }
        if (live == 1) {
            // Solo drain: the round's last live stream needs no tree
            // maintenance. This is every round's tail — and for skewed
            // (RMAT) rounds, where one stream dwarfs the rest, it is
            // most of the round's elements.
            Slot &slot = slots[entSlot(ext[winner])];
            for (;;) {
                const Packet p = slot.cur;
                ++slot.cursor;
                if (slot.cursor >= slot.desc.end) {
                    emit(p);
                    break;
                }
                slot.cur = readElement(slot.desc, slot.cursor);
                emit(p);
            }
        }
        if (red.valid) {
            red.eol = true;
            acceptFunctional(red, write_blocks);
        } else {
            acceptFunctional(Packet::endOfLine(), write_blocks);
        }
    }
    return retired;
}

std::uint64_t
Pu::functionalReadBlockEstimate() const
{
    const std::uint64_t n = streamCount();
    std::uint64_t blocks = 0;
    for (std::uint64_t ordinal = 0; ordinal < n; ++ordinal) {
        const StreamDesc desc = streamForOrdinal(ordinal);
        if (desc.source == StreamSource::CondensedLeaf) {
            // Virtual pack: sum the physical B spans of every
            // sub-stream overlapping [begin, end) — a suffix may start
            // mid-pack. Empty sub-streams contribute nothing.
            const auto it = std::upper_bound(streamElemPrefix_.begin(),
                                             streamElemPrefix_.end(),
                                             desc.begin);
            for (std::uint64_t t = (it - streamElemPrefix_.begin()) - 1;
                 t < spgemmStreams_.size() &&
                 streamElemPrefix_[t] < desc.end;
                 ++t) {
                const spgemm::PartialProductStream &s = spgemmStreams_[t];
                const std::uint64_t lo =
                    std::max(desc.begin, streamElemPrefix_[t]);
                const std::uint64_t hi =
                    std::min(desc.end, streamElemPrefix_[t + 1]);
                if (lo < hi)
                    blocks += spanBlocks(s.begin + (lo - streamElemPrefix_[t]),
                                         s.begin + (hi - streamElemPrefix_[t])) *
                              2;
            }
            continue;
        }
        const std::uint64_t span = spanBlocks(desc.begin, desc.end);
        // COO runs load row/col/val; CSR/CSC/B-row streams idx/val.
        blocks += span * (desc.source == StreamSource::Coo ? 3 : 2);
    }
    // Controller metadata of the pointer walk (iteration 0 only).
    if (iteration_ == 0) {
        if (mode_ == PuMode::Spgemm) {
            blocks += ctrlLoads_.size();
        } else if (mode_ == PuMode::Transpose) {
            blocks += ptrBlocksTotal_;
        } else {
            blocks += (ptrBlocksTotal_ + 511) / 512; // aux bitmap
            blocks += neededPtrBlocks_.size() * 2;   // ptr + vec pairs
        }
    }
    // Coalescing is not modeled here; the counts are estimates.
    return blocks;
}

Cycle
Pu::estimateIterationCycles(std::uint64_t elements,
                            std::uint64_t read_blocks,
                            std::uint64_t write_blocks) const
{
    // The root retires at most one element per PU cycle; the rank bus
    // moves one 64 B block per blockBytes/peakBandwidth seconds. The
    // slower bound governs the iteration, degraded by an efficiency
    // factor covering scheduling gaps, row misses, and drain tails
    // (calibrated against Detailed on bench_sampled_accuracy).
    const double cycles_per_block =
        static_cast<double>(blockBytes) *
        (static_cast<double>(config_.freqMhz) * 1e6) /
        mem_->config().peakBandwidth();
    const double pu_bound = static_cast<double>(elements);
    const double mem_bound =
        static_cast<double>(read_blocks + write_blocks) * cycles_per_block;
    constexpr double efficiency = 0.85;
    constexpr Cycle overhead = 256; // ramp-up + pointer walk + drain
    return overhead +
           static_cast<Cycle>(
               std::ceil(std::max(pu_bound, mem_bound) / efficiency));
}

FastSimStats
Pu::runFunctional(const ProgressHook &progress)
{
    start();
    while (phase_ == Phase::Running) {
        std::uint64_t writes = 0;
        // Degenerate iterations flush their pointer array already at
        // beginIteration time; drain those stores first.
        while (output_.hasPendingStore()) {
            output_.storeIssued();
            ++stores_;
            ++writes;
        }
        const std::uint64_t elems = functionalMergeRounds(writes, {});
        const std::uint64_t reads = functionalReadBlockEstimate();
        cycle_ += estimateIterationCycles(elems, reads, writes);
        mem_->noteFunctionalTraffic(reads, writes);
        if (occupancySamples_.enabled())
            occupancySamples_.fillTo(cycle_, 0);
        if (progress)
            progress(cycle_, cycle_);
        finishIteration();
    }
    if (phase_ == Phase::Draining)
        phase_ = Phase::Done; // the controller never saw a request
    FastSimStats st;
    st.fastForwardedCycles = cycle_;
    return st;
}

FastSimStats
Pu::runSampled(const SampledConfig &sampled, const ProgressHook &progress)
{
    FastSimStats st;
    std::vector<double> rates;
    std::vector<double> iter_rates; ///< rates of the current iteration
    double rate = 0.0;         ///< extrapolation rate, elements/cycle
    double gap_mult = 1.0;     ///< cadence stretch earned by stability
    double buf_fill = 0.75;    ///< priming target for the next window
    std::uint64_t prepaid = 0; ///< elements already paid by window time
    Cycle last_window_end = 0;

    // Tick one measurement window against its private controller: run
    // to the first root pop (a window that starts inside a pointer walk
    // would dilute the merge rate to near zero), settle warmupCycles
    // more, then measure windowCycles. Charges the window's exact
    // cycles to this PU — the pre-pop span is real simulated head time,
    // not extrapolation.
    const auto measure = [&](Pu &win, dram::MemoryController &wmem) {
        TickScheduler sched;
        ClockDomain *pu_clk = sched.addDomain("pu", config_.freqMhz);
        ClockDomain *mem_clk =
            sched.addDomain("dram", wmem.config().freqMhz);
        mem_clk->attach(&wmem);
        pu_clk->attach(&win);
        sched.runUntil([&] {
            return win.tree().rootPops() != 0 || win.done();
        });
        // A stability-credited stretch (gap_mult > 1) is at steady
        // state by construction; its windows settle in half the time.
        const Cycle warmup = gap_mult > 1.0 ? sampled.warmupCycles / 2
                                            : sampled.warmupCycles;
        const Cycle settled = win.cycles() + warmup;
        sched.runUntil(
            [&] { return win.cycles() >= settled || win.done(); });
        const std::uint64_t pops_warm = win.tree().rootPops();
        const Cycle warm = win.cycles();
        sched.runUntil([&] {
            return win.cycles() >= warm + sampled.windowCycles ||
                   win.done();
        });
        const std::uint64_t pops = win.tree().rootPops();
        const Cycle cyc = win.cycles();
        const double r = sampled::windowRate(pops, cyc, pops_warm, warm);
        if (r > 0.0) {
            // Extrapolate at the LATEST window's rate, not a mean:
            // merge rates drift within an iteration, so the most recent
            // window is the best predictor for the gap that follows it.
            // The cross-window variance still feeds errorBoundPct.
            // (Adaptive periods were tried and rejected: reacting to
            // rate jumps concentrates windows in noisy stretches and
            // starves drifting ones — uniform cadence is unbiased.)
            rate = r;
            rates.push_back(r);
            iter_rates.push_back(r);
            // Variance-adaptive cadence: when the last few windows of
            // THIS iteration agree tightly, the rate is demonstrably
            // stable and the next gap stretches (4x for near-exact
            // agreement — e.g. a saturated merge popping every cycle —
            // 2x for merely tight). Any disagreement snaps back to the
            // base period. Unlike the rejected jump-reactive scheme,
            // this only ever LENGTHENS gaps on demonstrated stability,
            // so volatile stretches keep the unbiased uniform cadence.
            gap_mult = 1.0;
            if (iter_rates.size() >= 3) {
                double mean = 0.0, var = 0.0;
                const std::size_t k = 3;
                const std::size_t base0 = iter_rates.size() - k;
                for (std::size_t i = base0; i < iter_rates.size(); ++i)
                    mean += iter_rates[i];
                mean /= double(k);
                for (std::size_t i = base0; i < iter_rates.size(); ++i) {
                    const double d = iter_rates[i] - mean;
                    var += d * d;
                }
                const double cv =
                    mean > 0.0 ? std::sqrt(var / double(k)) / mean : 1.0;
                if (cv < 0.005)
                    gap_mult = 4.0;
                else if (cv < 0.04)
                    gap_mult = 2.0;
                else if (cv < 0.08)
                    gap_mult = 1.5;
            }
            if (std::getenv("MENDA_DEBUG_RATES"))
                std::fprintf(stderr,
                             "[rates] %s iter=%u cycle=%llu rate=%.4f "
                             "fill=%.3f\n",
                             name_.c_str(), iteration_,
                             static_cast<unsigned long long>(cycle_), r,
                             buf_fill);
        }
        if (!win.done())
            buf_fill = win.avgBufferFill();
        prepaid += pops;
        cycle_ += cyc;
        ++st.sampledWindows;
        last_window_end = cycle_;
    };

    // Run-start anchor window: a fresh full clone replays the head of
    // the run — pointer walk and cold row buffers included. It is NOT
    // primed, because a cold start is reality there.
    {
        dram::MemoryController wmem(name_ + ".winmem", mem_->config(),
                                    config_.requestCoalescing);
        std::unique_ptr<Pu> anchor = cloneFresh(&wmem);
        anchor->start();
        measure(*anchor, wmem);
    }

    // Fast-forward accounting: elements the windows already simulated
    // are covered by the charged window cycles; the rest extrapolate at
    // the latest measured rate.
    const auto charge = [&](std::uint64_t batch) {
        const std::uint64_t paid = std::min(batch, prepaid);
        prepaid -= paid;
        batch -= paid;
        if (batch == 0)
            return;
        const Cycle c = sampled::chargeForElements(batch, rate);
        cycle_ += c;
        st.fastForwardedCycles += c;
    };

    start();
    // The anchor covered the head of iteration 0; every later iteration
    // forces one window at its first checkpoint, because merge rates
    // shift across iterations (short runs vs long runs, SpGEMM's gather
    // pass vs its final merge) and extrapolating a stale rate across an
    // iteration boundary was the dominant residual error.
    bool force_window = false;
    while (phase_ == Phase::Running) {
        std::uint64_t writes = 0;
        while (output_.hasPendingStore()) {
            output_.storeIssued();
            ++stores_;
            ++writes;
        }
        std::uint64_t last_retired = 0;
        const CheckpointFn checkpoint = [&](std::uint64_t retired,
                                            const SuffixFn &suffix) {
            charge(retired - last_retired);
            last_retired = retired;
            if (force_window ||
                cycle_ - last_window_end >=
                    Cycle(double(sampled.periodCycles) * gap_mult)) {
                force_window = false;
                dram::MemoryController wmem(name_ + ".winmem",
                                            mem_->config(),
                                            config_.requestCoalescing);
                Pu win(*this, suffix(), finalIteration_, &wmem);
                win.startWindow();
                win.primeWindow(buf_fill);
                measure(win, wmem);
            }
            if (progress)
                progress(cycle_, st.fastForwardedCycles);
        };
        const std::uint64_t elems =
            functionalMergeRounds(writes, checkpoint);
        charge(elems - last_retired);
        const std::uint64_t reads = functionalReadBlockEstimate();
        mem_->noteFunctionalTraffic(reads, writes);
        if (occupancySamples_.enabled())
            occupancySamples_.fillTo(cycle_, 0);
        if (progress)
            progress(cycle_, st.fastForwardedCycles);
        finishIteration();
        force_window = true;
        // Rates do not survive iteration boundaries (gather pass vs
        // final merge); neither does the stability credit.
        iter_rates.clear();
        gap_mult = 1.0;
    }
    if (phase_ == Phase::Draining)
        phase_ = Phase::Done;
    st.errorBoundPct = sampled::errorBoundPct(rates);
    return st;
}

} // namespace menda::core
