/**
 * @file
 * The hardware multi-way merge tree (Sec. 3.2, 3.3).
 *
 * An l-leaf tree has l-1 PEs in log2(l) levels. Each PE is connected to
 * its two children through 2-entry FIFOs, so every PE can move one packet
 * per cycle with no root-to-leaf critical path. A PE forwards the child
 * packet whose merge index (column for transposition, row for SpMV) is
 * smaller; ties pop the left child, keeping the merge stable. End-of-line
 * bits delimit sorted streams and let consecutive rounds of merge sort
 * flow through back-to-back with no drain/refill stalls (Sec. 3.3).
 *
 * Simulation note: the model is cycle-accurate but visits a PE only on
 * cycles where one of its FIFOs changed ("active set"). Because a PE
 * moves at most one packet per cycle and its inputs/outputs only change
 * through its neighbours, a PE that stalled with unchanged FIFOs would
 * stall again — skipping it is exact, and the per-popped-element cost
 * drops from O(l) to O(log l).
 */

#ifndef MENDA_MENDA_MERGE_TREE_HH
#define MENDA_MENDA_MERGE_TREE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "menda/packet.hh"
#include "menda/pu_config.hh"
#include "sim/fifo.hh"

namespace menda::core
{

class MergeTree
{
  public:
    MergeTree(const PuConfig &config, MergeKey key);

    unsigned leaves() const { return leaves_; }
    unsigned peCount() const { return leaves_ - 1; }
    unsigned levels() const { return levels_; }

    /** Stream slots (== leaves); slot s feeds leaf PE s/2, side s%2. */
    unsigned streamSlots() const { return leaves_; }

    /** True if stream slot @p slot can accept a packet this cycle. */
    bool canPush(unsigned slot) const;

    /** Push a packet into stream slot @p slot (prefetch buffer side). */
    void push(unsigned slot, const Packet &packet);

    /** True if the root has produced a packet that can be popped. */
    bool canPop() const { return !rootOut_.empty(); }

    /** Peek the root output. */
    const Packet &front() const { return rootOut_.front(); }

    /** Pop the root output (output buffer side). */
    Packet pop();

    /** Advance every active PE by one cycle. */
    void tick();

    /**
     * Stream slots whose leaf FIFO gained space during the last tick().
     * The PU uses this to wake prefetch buffers that were blocked on a
     * full leaf FIFO. Cleared at the start of every tick.
     */
    const std::vector<unsigned> &freedSlots() const { return freedSlots_; }

    /** True when no packet is buffered anywhere in the tree. */
    bool drained() const;

    /** Number of data packets popped from the root so far. */
    std::uint64_t rootPops() const { return rootPops_.value(); }

    /** Root-side end-of-line tokens emitted (== rounds completed). */
    std::uint64_t roundsCompleted() const { return roundsDone_.value(); }

    /** Cycles on which the root FIFO had no packet ready. */
    std::uint64_t rootIdleCycles() const { return rootIdle_.value(); }

    /**
     * Sum over ticks of the packets buffered anywhere in the tree
     * (PE FIFOs + root FIFO). Divided by the PU cycle count this gives
     * the mean tree occupancy in packets — the utilization figure the
     * Fig. 12 ablation bench reports next to the stall counters.
     */
    std::uint64_t occupancyPacketCycles() const
    {
        return occupancyCycles_.value();
    }

    /** Packets currently buffered anywhere in the tree. */
    std::uint64_t occupancy() const { return buffered_; }

    void
    registerStats(StatGroup &group) const
    {
        group.add("tree.rootPops", rootPops_);
        group.add("tree.rounds", roundsDone_);
        group.add("tree.rootIdleCycles", rootIdle_);
        group.add("tree.peMoves", peMoves_);
        group.add("tree.occupancyPacketCycles", occupancyCycles_);
    }

  private:
    struct Pe
    {
        Fifo<Packet> in[2];      ///< FIFOs from the two children
        bool terminated[2] = {false, false}; ///< EOL seen this round

        Pe(unsigned fifo_entries)
            : in{Fifo<Packet>(fifo_entries), Fifo<Packet>(fifo_entries)}
        {}
    };

    /** Evaluate PE @p pe; returns true if any state changed. */
    bool evaluate(unsigned pe);

    /** Output FIFO of PE @p pe: root FIFO for 0, else parent input. */
    Fifo<Packet> &outputOf(unsigned pe, bool &is_root);

    void schedule(unsigned pe);
    void scheduleNeighbours(unsigned pe);
    void noteLeafPop(unsigned pe, int side);

    unsigned leaves_;
    unsigned levels_;
    MergeKey key_;

    std::vector<Pe> pes_;
    Fifo<Packet> rootOut_;
    std::vector<unsigned> freedSlots_;

    // Active-set scheduling.
    std::vector<unsigned> current_;
    std::vector<unsigned> next_;
    std::vector<std::uint64_t> scheduledEpoch_;
    std::uint64_t epoch_ = 1;

    Counter rootPops_, roundsDone_, rootIdle_, peMoves_, occupancyCycles_;
    std::uint64_t buffered_ = 0; ///< packets currently in any FIFO

#ifdef MENDA_CHECKS
    // Invariant-checker state: the last merge key each PE (and the root
    // consumer) emitted in the current round. Every output stream of a
    // correct merge is non-decreasing between end-of-line tokens.
    std::vector<std::uint64_t> lastPeKey_;
    std::vector<bool> peHasLast_;
    std::uint64_t lastRootKey_ = 0;
    bool rootHasLast_ = false;
#endif
};

} // namespace menda::core

#endif // MENDA_MENDA_MERGE_TREE_HH
