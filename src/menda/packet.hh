/**
 * @file
 * Data packets exchanged between merge-tree PEs (Sec. 3.2/3.3).
 *
 * A packet carries a 1-bit valid signal plus the 32-bit row index, 32-bit
 * column index, and 32-bit value of one non-zero. The end-of-line bit
 * marks the last element of a sorted stream and enables seamless
 * back-to-back merge sort: a pure-EOL token (valid=0, eol=1) represents
 * an empty stream.
 */

#ifndef MENDA_MENDA_PACKET_HH
#define MENDA_MENDA_PACKET_HH

#include "common/types.hh"

namespace menda::core
{

struct Packet
{
    Index row = 0;
    Index col = 0;
    Value val = 0.0f;
    bool valid = false; ///< false + eol = empty-stream token
    bool eol = false;   ///< set on the last element of a sorted stream

    static Packet
    data(Index row, Index col, Value val, bool eol = false)
    {
        return Packet{row, col, val, true, eol};
    }

    static Packet
    endOfLine()
    {
        return Packet{0, 0, 0.0f, false, true};
    }
};

/**
 * Merge order: transposition compares column indices (the output is
 * sorted by column); ties must pop the LEFT child so the merge is stable
 * and equal columns stay ordered by row. SpMV compares row indices.
 * SpGEMM compares the lexicographic (row, col) pair so one merge pass
 * sorts all partial products of a rank's row slice into CSR order.
 */
enum class MergeKey : std::uint8_t
{
    Column, ///< transposition
    Row,    ///< SpMV reduction dataflow
    RowCol, ///< SpGEMM partial-product merge
};

/** The key the tree comparators look at under @p key. */
constexpr std::uint64_t
mergeKey(const Packet &p, MergeKey key)
{
    switch (key) {
    case MergeKey::Column:
        return p.col;
    case MergeKey::Row:
        return p.row;
    case MergeKey::RowCol:
    default:
        return (static_cast<std::uint64_t>(p.row) << 32) | p.col;
    }
}

} // namespace menda::core

#endif // MENDA_MENDA_PACKET_HH
