/**
 * @file
 * Simulation fidelity tiers (DESIGN.md §12).
 *
 * The cycle-accurate model runs at ~0.1–1 M simulated cycles per wall
 * second, which caps experiments at toy matrices. Two faster tiers trade
 * timing fidelity for throughput while keeping every kernel *output*
 * bitwise identical to the detailed engine:
 *
 *  - Functional: the merge/transpose/SpMV/SpGEMM semantics are advanced
 *    directly (a stable k-way software merge replicating the hardware
 *    tree's slot-order tiebreak and round structure); puCycles comes
 *    from an analytical per-iteration model.
 *  - Sampled: SMARTS-style interleaving — every periodCycles of
 *    estimated time a windowCycles-long cycle-accurate measurement
 *    window runs on a throwaway PU/controller pair (warm-primed with
 *    the functional stream state), and the gaps between windows are
 *    fast-forwarded at the measured per-window merge rates, with a
 *    variance-derived confidence interval on the extrapolation.
 */

#ifndef MENDA_MENDA_SIM_MODE_HH
#define MENDA_MENDA_SIM_MODE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace menda::core
{

/** Fidelity tier of a MendaSystem run. */
enum class SimMode : std::uint8_t
{
    Detailed,   ///< full cycle-accurate model (the default)
    Functional, ///< semantics only; analytical cycle estimate
    Sampled,    ///< periodic detailed windows + functional fast-forward
};

/** Knobs of the Sampled tier (ignored in the other modes). */
struct SampledConfig
{
    Cycle windowCycles = 2048;   ///< detailed cycles per measurement window
    Cycle periodCycles = 131072; ///< estimated cycles between window starts
    Cycle warmupCycles = 4096;   ///< window prefix excluded from the rate

    bool operator==(const SampledConfig &other) const = default;
};

inline const char *
simModeName(SimMode mode)
{
    switch (mode) {
      case SimMode::Detailed: return "detailed";
      case SimMode::Functional: return "functional";
      case SimMode::Sampled: return "sampled";
    }
    return "?";
}

/**
 * Parse a --sim-mode spec: "detailed", "functional", "sampled", or
 * "sampled:W,P[,WARM]" (window, period, and optional warmup cycles).
 * Returns false on a malformed spec; @p mode / @p sampled are untouched
 * then.
 */
inline bool
parseSimMode(const std::string &spec, SimMode &mode,
             SampledConfig &sampled)
{
    if (spec == "detailed") {
        mode = SimMode::Detailed;
        return true;
    }
    if (spec == "functional") {
        mode = SimMode::Functional;
        return true;
    }
    if (spec == "sampled") {
        mode = SimMode::Sampled;
        return true;
    }
    if (spec.rfind("sampled:", 0) != 0)
        return false;
    const std::string args = spec.substr(8);
    const std::size_t comma = args.find(',');
    if (comma == std::string::npos)
        return false;
    try {
        const unsigned long long w = std::stoull(args.substr(0, comma));
        std::string rest = args.substr(comma + 1);
        const std::size_t comma2 = rest.find(',');
        unsigned long long warm = sampled.warmupCycles;
        if (comma2 != std::string::npos) {
            warm = std::stoull(rest.substr(comma2 + 1));
            rest = rest.substr(0, comma2);
        }
        const unsigned long long p = std::stoull(rest);
        if (w == 0 || p == 0)
            return false;
        mode = SimMode::Sampled;
        sampled.windowCycles = w;
        sampled.periodCycles = p;
        sampled.warmupCycles = warm;
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace menda::core

#endif // MENDA_MENDA_SIM_MODE_HH
