/**
 * @file
 * Prefetch buffers (Sec. 3.2, 3.4).
 *
 * Each merge-tree stream slot is fed by one prefetch buffer — a small
 * multi-bank SRAM that issues 64 B block loads for its assigned sorted
 * stream and feeds decoded packets to its leaf PE. Two policies:
 *
 *  - baseline: a buffer only fetches once it has fully drained;
 *  - stall-reducing prefetching: a buffer fetches whenever the next chunk
 *    fits in its free space, but never has more than one chunk of
 *    outstanding requests (keeping *all* buffers non-empty beats filling
 *    one buffer to the brim, Sec. 3.4).
 *
 * Fetches are grouped into "chunks": the elements of the current stream
 * that share one aligned 64 B span of the index array, which need one
 * block load per backing array (2 for CSR streams, 3 for COO). Loads go
 * through the coalescing read queue; responses are broadcast, so a buffer
 * is filled by any response that covers a block it waits for, no matter
 * who requested it.
 */

#ifndef MENDA_MENDA_PREFETCH_BUFFER_HH
#define MENDA_MENDA_PREFETCH_BUFFER_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "menda/memory_map.hh"
#include "menda/packet.hh"
#include "menda/pu_config.hh"
#include "menda/stream.hh"

namespace menda::core
{

/** Materializes functional packets for a stream element. */
using ElementReader = std::function<Packet(const StreamDesc &,
                                           std::uint64_t element)>;

/**
 * Plans one fetch chunk of a StreamSource::CondensedLeaf stream: given
 * the virtual element cursor, appends the physical block loads of the
 * chunk to @p blocks and returns the virtual chunk end (the elements of
 * one packed sub-stream that share one aligned 64 B span of B's
 * arrays). Owned by the PU, which knows the pack-to-B mapping.
 */
using CondensedChunkPlanner = std::function<std::uint64_t(
    const StreamDesc &, std::uint64_t cursor, std::vector<Addr> &blocks)>;

class PrefetchBuffer
{
  public:
    PrefetchBuffer(unsigned slot, const PuConfig &config,
                   const PuMemoryMap *map, ElementReader reader,
                   CondensedChunkPlanner condensed = {});

    unsigned slot() const { return slot_; }

    /** True if the controller should hand us another stream (< 2 queued,
     *  counting the one being fetched). */
    bool wantsAssignment() const { return assignments_.size() < 2; }

    /** Hand the next sorted stream (in round order) to this buffer. */
    void assign(const StreamDesc &desc);

    /** True if a packet is ready for the leaf PE. */
    bool hasPacket() const { return !ready_.empty(); }

    /** Pop the next packet for the leaf PE. */
    Packet popPacket();

    /**
     * The next block-load this buffer wants to send, or 0 if none.
     * Non-zero means the PU's load port should call issuedBlock() once
     * the request was accepted by the read queue.
     */
    Addr pendingBlock() const;

    /** The read queue accepted the load for pendingBlock(). */
    void issuedBlock();

    /**
     * A read response for @p block_addr is on the bus (broadcast). Fills
     * this buffer if it waits for that block; returns true if consumed.
     */
    bool fillFromResponse(Addr block_addr);

    /** Bytes of load traffic this buffer has asked for (stats). */
    std::uint64_t blocksRequested() const { return blocksReq_.value(); }

    /** True if the buffer has no queued work at all. */
    bool
    idle() const
    {
        return ready_.empty() && assignments_.empty() && !chunk_.active;
    }

    /**
     * True when the pending request is a *demand* fetch: the buffer has
     * nothing left to feed its leaf, so its stream may be blocking the
     * root. The PU load port prioritizes these over prefetch top-ups —
     * otherwise "excessive prefetching requests block the critical read
     * requests on demand" (Sec. 6.4).
     */
    bool starving() const { return ready_.empty(); }

    /** Number of data packets currently buffered or in flight. */
    unsigned occupancy() const { return occupancy_; }

  private:
    /** Start fetching the next chunk if the policy allows. */
    void maybeStartChunk();

    /** Move on past streams that need no fetch (empty streams). */
    void drainTrivialAssignments();

    struct Chunk
    {
        bool active = false;
        std::uint64_t firstElem = 0;
        std::uint64_t count = 0;
        std::vector<Addr> blocksToIssue;
        std::vector<Addr> blocksAwaited;
        StreamDesc desc;
        bool lastOfStream = false;
    };

    unsigned slot_;
    const PuConfig *config_;
    const PuMemoryMap *map_;
    ElementReader reader_;
    CondensedChunkPlanner condensed_;

    std::deque<StreamDesc> assignments_; ///< front = being fetched
    std::uint64_t cursor_ = 0;           ///< next element to fetch
    Chunk chunk_;
    std::deque<Packet> ready_;           ///< decoded packets for the PE
    unsigned occupancy_ = 0;             ///< data packets held + in flight

    Counter blocksReq_;
};

} // namespace menda::core

#endif // MENDA_MENDA_PREFETCH_BUFFER_HH
