/**
 * @file
 * Per-PU physical memory layout inside its DRAM rank.
 *
 * The page-coloring allocator (Sec. 3.5) places each PU's slice of the
 * row pointer / index / value arrays, the ping-pong COO intermediate
 * buffers, and the output CSC arrays in the PU's own rank so that no
 * request ever crosses the rank boundary. Regions are page aligned, which
 * is what lets page coloring steer them.
 */

#ifndef MENDA_MENDA_MEMORY_MAP_HH
#define MENDA_MENDA_MEMORY_MAP_HH

#include "common/types.hh"

namespace menda::core
{

/** Identifies a simulated array for address computation. */
enum class Region : std::uint8_t
{
    RowPtr,    ///< input CSR row pointers (4 B entries)
    ColIdx,    ///< input CSR column indices (4 B)
    NzVal,     ///< input CSR values (4 B)
    CooRowA, CooColA, CooValA, ///< intermediate ping buffer
    CooRowB, CooColB, CooValB, ///< intermediate pong buffer
    OutPtr,    ///< output CSC column pointers (4 B)
    OutIdx,    ///< output CSC row indices (4 B)
    OutVal,    ///< output CSC values (4 B)
    VecIn,     ///< SpMV input vector x (4 B)
    AuxPtr,    ///< SpMV auxiliary pointer array (Sec. 3.6)
    BRowPtr,   ///< SpGEMM: replicated B row pointers (4 B)
    BColIdx,   ///< SpGEMM: replicated B column indices (4 B)
    BNzVal,    ///< SpGEMM: replicated B values (4 B)
};

/**
 * Base addresses for one PU. All arrays hold 4-byte elements, matching
 * the 32-bit indices/values of the packet format.
 */
class PuMemoryMap
{
  public:
    PuMemoryMap() = default;

    /**
     * Lay out regions for a slice with @p slice_rows rows, @p cols
     * columns, and @p slice_nnz non-zeros, starting at @p base (a
     * rank-local physical address, typically 0). SpGEMM additionally
     * replicates the second operand B into every rank (PUs never
     * communicate, Sec. 3.5); its arrays are sized by @p b_rows /
     * @p b_nnz and stay zero-length for the other dataflows.
     */
    PuMemoryMap(Addr base, std::uint64_t slice_rows, std::uint64_t cols,
                std::uint64_t slice_nnz, std::uint64_t b_rows = 0,
                std::uint64_t b_nnz = 0)
    {
        // Regions are staggered across DRAM banks (32 KiB steps move
        // the bank bits of the rank's address layout): COO keeps its
        // row/col/val in three separate arrays precisely so concurrent
        // streams exploit bank-level parallelism instead of thrashing
        // one bank's row buffer (Sec. 3.1).
        Addr cursor = base;
        unsigned region_index = 0;
        auto place = [&cursor, &region_index](std::uint64_t entries) {
            constexpr Addr bank_stride = 32 * 1024;
            cursor += ((region_index * 3) % 8) * bank_stride;
            ++region_index;
            Addr region = cursor;
            Addr bytes = entries * 4;
            cursor += (bytes + pageBytes - 1) & ~(pageBytes - 1);
            return region;
        };
        rowPtr_ = place(slice_rows + 1);
        colIdx_ = place(slice_nnz);
        nzVal_ = place(slice_nnz);
        cooRow_[0] = place(slice_nnz);
        cooCol_[0] = place(slice_nnz);
        cooVal_[0] = place(slice_nnz);
        cooRow_[1] = place(slice_nnz);
        cooCol_[1] = place(slice_nnz);
        cooVal_[1] = place(slice_nnz);
        outPtr_ = place(cols + 1);
        outIdx_ = place(slice_nnz);
        outVal_ = place(slice_nnz);
        vecIn_ = place(cols);
        auxPtr_ = place((cols + 1 + 15) / 16);
        bRowPtr_ = place(b_rows ? b_rows + 1 : 0);
        bColIdx_ = place(b_nnz);
        bNzVal_ = place(b_nnz);
        end_ = cursor;
    }

    /** Address of 4-byte element @p index within @p region. */
    Addr
    addrOf(Region region, std::uint64_t index) const
    {
        return base(region) + index * 4;
    }

    /** Block address containing element @p index of @p region. */
    Addr
    blockOf(Region region, std::uint64_t index) const
    {
        return blockAlign(addrOf(region, index));
    }

    Addr
    base(Region region) const
    {
        switch (region) {
          case Region::RowPtr: return rowPtr_;
          case Region::ColIdx: return colIdx_;
          case Region::NzVal: return nzVal_;
          case Region::CooRowA: return cooRow_[0];
          case Region::CooColA: return cooCol_[0];
          case Region::CooValA: return cooVal_[0];
          case Region::CooRowB: return cooRow_[1];
          case Region::CooColB: return cooCol_[1];
          case Region::CooValB: return cooVal_[1];
          case Region::OutPtr: return outPtr_;
          case Region::OutIdx: return outIdx_;
          case Region::OutVal: return outVal_;
          case Region::VecIn: return vecIn_;
          case Region::AuxPtr: return auxPtr_;
          case Region::BRowPtr: return bRowPtr_;
          case Region::BColIdx: return bColIdx_;
          case Region::BNzVal: return bNzVal_;
        }
        return 0;
    }

    /** COO region selectors for ping-pong buffer @p which (0/1). */
    Region cooRow(int which) const
    {
        return which == 0 ? Region::CooRowA : Region::CooRowB;
    }
    Region cooCol(int which) const
    {
        return which == 0 ? Region::CooColA : Region::CooColB;
    }
    Region cooVal(int which) const
    {
        return which == 0 ? Region::CooValA : Region::CooValB;
    }

    /** One past the last byte used. */
    Addr end() const { return end_; }

  private:
    Addr rowPtr_ = 0, colIdx_ = 0, nzVal_ = 0;
    Addr cooRow_[2] = {0, 0}, cooCol_[2] = {0, 0}, cooVal_[2] = {0, 0};
    Addr outPtr_ = 0, outIdx_ = 0, outVal_ = 0;
    Addr vecIn_ = 0, auxPtr_ = 0;
    Addr bRowPtr_ = 0, bColIdx_ = 0, bNzVal_ = 0;
    Addr end_ = 0;
};

} // namespace menda::core

#endif // MENDA_MENDA_MEMORY_MAP_HH
