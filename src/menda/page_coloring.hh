/**
 * @file
 * Page-coloring placement (Sec. 3.5).
 *
 * The host determines each PU's NNZ share, allocates contiguous physical
 * chunks, and uses page coloring to pin every page of a PU's index/value
 * data to that PU's rank. Row-pointer pages are special: the rank a
 * pointer page belongs to depends on the matrix distribution, and a page
 * straddling two PUs' row ranges is *duplicated* so each rank holds a
 * private copy — bounded by page_size x #ranks of extra storage.
 */

#ifndef MENDA_MENDA_PAGE_COLORING_HH
#define MENDA_MENDA_PAGE_COLORING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sparse/partition.hh"

namespace menda::core
{

/** One colored page of the host allocation. */
struct PageEntry
{
    Addr virtualPage = 0;  ///< page index in the host's address space
    unsigned color = 0;    ///< rank the page maps to
    bool duplicate = false;///< private copy of a shared row-pointer page
};

/** The coloring decisions for one allocated sparse matrix. */
struct PageTable
{
    std::vector<PageEntry> entries;
    std::uint64_t duplicatedBytes = 0; ///< row-pointer duplication cost

    /** Pages assigned to rank @p color (including duplicates). */
    std::uint64_t
    pagesOfColor(unsigned color) const
    {
        std::uint64_t count = 0;
        for (const PageEntry &entry : entries)
            if (entry.color == color)
                ++count;
        return count;
    }
};

/**
 * Color the index/value/pointer pages of a matrix split into @p slices.
 * Index/value pages follow the NNZ split exactly (slices are page
 * aligned by construction of the allocator); row-pointer pages follow
 * the row ranges and are duplicated when shared between two ranks.
 *
 * @param rows      total rows (row-pointer array has rows + 1 entries)
 * @param nnz       total non-zeros (index/value arrays)
 * @param base_page first virtual page of the allocation. Every entry's
 *                  virtualPage is offset by this, so multiple live
 *                  matrices get disjoint page tables when the caller
 *                  allocates disjoint spans (see coloredPageSpan).
 */
PageTable colorPages(const std::vector<sparse::RowSlice> &slices,
                     std::uint64_t rows, std::uint64_t nnz,
                     Addr base_page = 0);

/**
 * Number of virtual pages colorPages will lay out for this shape —
 * what an allocator must reserve before picking a base_page.
 */
std::uint64_t coloredPageSpan(std::size_t ranks, std::uint64_t rows,
                              std::uint64_t nnz);

} // namespace menda::core

#endif // MENDA_MENDA_PAGE_COLORING_HH
