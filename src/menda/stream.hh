/**
 * @file
 * Sorted-stream descriptors handed from the PU controller to prefetch
 * buffers (the "start and end addresses of the corresponding sorted
 * streams", Sec. 3.2).
 */

#ifndef MENDA_MENDA_STREAM_HH
#define MENDA_MENDA_STREAM_HH

#include "common/types.hh"

namespace menda::core
{

/** Where a stream's elements live. */
enum class StreamSource : std::uint8_t
{
    CsrRow,    ///< iteration 0: one row of the input CSR slice
    Coo,       ///< iteration >= 1: a COO run from the ping-pong buffer
    CscColumn, ///< SpMV iteration 0: one column of the input CSC slice
    ScaledBRow,///< SpGEMM iteration 0: row of B scaled by one A non-zero
    /**
     * SpGEMM Huffman scheduler: a pack of >= 2 consecutive scaled-B-row
     * streams with strictly increasing output rows, fetched as one
     * virtual stream. [begin, end) addresses the pack's concatenated
     * element space; the PU maps virtual offsets back to B's arrays
     * through its per-stream element prefix.
     */
    CondensedLeaf,
};

/** A contiguous run of non-zeros, sorted by the iteration's merge key. */
struct StreamDesc
{
    StreamSource source = StreamSource::CsrRow;
    std::uint64_t begin = 0; ///< first element offset in the source arrays
    std::uint64_t end = 0;   ///< one past the last element
    Index fixedIndex = 0;    ///< CsrRow: row id; CscColumn: col id;
                             ///< ScaledBRow: the LOCAL output row
    int cooBuffer = 0;       ///< Coo: which ping-pong buffer (0/1)
    Value scale = 1.0f;      ///< ScaledBRow: the A(i, k) multiplier
    Index auxIndex = 0;      ///< ScaledBRow: the source B row k (uniform
                             ///< scheduler) or the condensed-leaf index
                             ///< (Huffman); CondensedLeaf: leaf index

    std::uint64_t length() const { return end - begin; }
    bool empty() const { return begin == end; }
};

} // namespace menda::core

#endif // MENDA_MENDA_STREAM_HH
