#include "menda/prefetch_buffer.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::core
{

namespace
{

/** Elements per aligned 64 B span of a 4-byte array. */
constexpr std::uint64_t elemsPerBlock = blockBytes / 4;

} // namespace

PrefetchBuffer::PrefetchBuffer(unsigned slot, const PuConfig &config,
                               const PuMemoryMap *map, ElementReader reader,
                               CondensedChunkPlanner condensed)
    : slot_(slot), config_(&config), map_(map), reader_(std::move(reader)),
      condensed_(std::move(condensed))
{
    // A buffer must hold at least one whole 64 B span (16 NZs), or long
    // streams could never make progress.
    menda_assert(config.prefetchBufferEntries >= elemsPerBlock,
                 "prefetch buffers need >= 16 entries");
}

void
PrefetchBuffer::assign(const StreamDesc &desc)
{
    menda_assert(assignments_.size() < 2, "assignment queue overflow");
    const bool was_empty = assignments_.empty();
    assignments_.push_back(desc);
    if (was_empty)
        cursor_ = desc.begin;
    maybeStartChunk();
}

Packet
PrefetchBuffer::popPacket()
{
    menda_assert(!ready_.empty(), "pop from empty prefetch buffer");
    Packet packet = ready_.front();
    ready_.pop_front();
    if (packet.valid) {
        menda_assert(occupancy_ > 0, "occupancy underflow");
        --occupancy_;
    }
    maybeStartChunk();
    return packet;
}

void
PrefetchBuffer::drainTrivialAssignments()
{
    while (!assignments_.empty() && cursor_ >= assignments_.front().end) {
        if (assignments_.front().empty()) {
            // Empty stream: hand the leaf a pure end-of-line token.
            ready_.push_back(Packet::endOfLine());
        }
        assignments_.pop_front();
        if (!assignments_.empty())
            cursor_ = assignments_.front().begin;
    }
}

void
PrefetchBuffer::maybeStartChunk()
{
    if (chunk_.active)
        return; // at most one chunk of outstanding requests (Sec. 3.4)
    drainTrivialAssignments();
    if (assignments_.empty())
        return;

    const StreamDesc &desc = assignments_.front();

    // Chunk granularity is one 64 B span of the backing arrays (the
    // "16 NZs" of the paper's Sec. 3.4 example); stream tails shorter
    // than a span are taken whole. The policies differ in *when* a
    // request launches: stall-reducing prefetching tops up as soon as
    // the next span fits in free space, the ablation baseline only
    // requests once the buffer has completely drained.
    const std::uint64_t space =
        config_->prefetchBufferEntries - occupancy_;
    if (!config_->stallReducingPrefetch && occupancy_ != 0) {
        // Baseline ("load requests as soon as the prefetch buffers
        // become empty"): no request while any data remains, so each
        // drain costs a full memory round trip — the stall the
        // optimization removes.
        return;
    }
    const std::uint64_t remaining = desc.end - cursor_;
    std::uint64_t chunk_end = 0;
    std::vector<Addr> condensed_blocks;
    if (desc.source == StreamSource::CondensedLeaf) {
        // Packed leaf: the virtual-to-physical mapping lives in the PU;
        // its planner bounds the chunk to one packed sub-stream's share
        // of one aligned B span and names the physical blocks.
        menda_assert(static_cast<bool>(condensed_),
                     "condensed stream without a chunk planner");
        chunk_end = condensed_(desc, cursor_, condensed_blocks);
        menda_assert(chunk_end > cursor_ && chunk_end <= desc.end,
                     "condensed chunk out of stream bounds");
    } else {
        const std::uint64_t span_end =
            (cursor_ / elemsPerBlock + 1) * elemsPerBlock;
        chunk_end = std::min<std::uint64_t>(desc.end, span_end);
    }
    const std::uint64_t count = chunk_end - cursor_;
    menda_assert(count > 0, "empty chunk");
    if (count > space)
        return; // the next span does not fit yet
    (void)remaining;

    chunk_.active = true;
    chunk_.firstElem = cursor_;
    chunk_.count = count;
    chunk_.desc = desc;
    chunk_.blocksToIssue.clear();
    chunk_.blocksAwaited.clear();
    if (desc.source == StreamSource::CondensedLeaf) {
        chunk_.blocksToIssue = std::move(condensed_blocks);
    } else {
        for (std::uint64_t span = cursor_ / elemsPerBlock;
             span <= (chunk_end - 1) / elemsPerBlock; ++span) {
            const std::uint64_t elem = span * elemsPerBlock;
            switch (desc.source) {
              case StreamSource::CsrRow:
              case StreamSource::CscColumn:
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(Region::ColIdx, elem));
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(Region::NzVal, elem));
                break;
              case StreamSource::Coo:
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(map_->cooRow(desc.cooBuffer), elem));
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(map_->cooCol(desc.cooBuffer), elem));
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(map_->cooVal(desc.cooBuffer), elem));
                break;
              case StreamSource::ScaledBRow:
                // SpGEMM partial product: the stream is a row of the
                // replicated B operand; the scaling factor A(i, k) rode
                // in with the stream descriptor, so only B's arrays are
                // read.
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(Region::BColIdx, elem));
                chunk_.blocksToIssue.push_back(
                    map_->blockOf(Region::BNzVal, elem));
                break;
              case StreamSource::CondensedLeaf:
                break; // handled above
            }
        }
    }
    occupancy_ += static_cast<unsigned>(count);

    cursor_ = chunk_end;
    if (cursor_ >= desc.end) {
        // Stream fully planned; advance to the next assignment so the
        // controller can queue one more behind it.
        assignments_.pop_front();
        if (!assignments_.empty())
            cursor_ = assignments_.front().begin;
    }
}

Addr
PrefetchBuffer::pendingBlock() const
{
    if (!chunk_.active || chunk_.blocksToIssue.empty())
        return 0;
    return chunk_.blocksToIssue.back();
}

void
PrefetchBuffer::issuedBlock()
{
    menda_assert(chunk_.active && !chunk_.blocksToIssue.empty(),
                 "issuedBlock without pending block");
    chunk_.blocksAwaited.push_back(chunk_.blocksToIssue.back());
    chunk_.blocksToIssue.pop_back();
    ++blocksReq_;
}

bool
PrefetchBuffer::fillFromResponse(Addr block_addr)
{
    if (!chunk_.active)
        return false;
    auto it = std::find(chunk_.blocksAwaited.begin(),
                        chunk_.blocksAwaited.end(), block_addr);
    if (it == chunk_.blocksAwaited.end())
        return false;
    chunk_.blocksAwaited.erase(it);
    if (!chunk_.blocksAwaited.empty() || !chunk_.blocksToIssue.empty())
        return true;

    // All backing blocks arrived: decode the chunk into packets.
    for (std::uint64_t k = chunk_.firstElem;
         k < chunk_.firstElem + chunk_.count; ++k)
        ready_.push_back(reader_(chunk_.desc, k));
    chunk_.active = false;
    maybeStartChunk();
    return true;
}

} // namespace menda::core
