/**
 * @file
 * MeNDA processing-unit parameters (Tab. 1) and optimization switches.
 */

#ifndef MENDA_MENDA_PU_CONFIG_HH
#define MENDA_MENDA_PU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "spgemm/plan.hh"

namespace menda::core
{

struct PuConfig
{
    /** PU clock (Tab. 1 nominal: 800 MHz; Fig. 15 sweeps 400-1200). */
    std::uint64_t freqMhz = 800;

    /**
     * Number of merge-tree leaves = sorted streams merged per round
     * (Tab. 1 nominal: 1024; Fig. 15 sweeps 64/256/1024).
     * Must be a power of two >= 2.
     */
    unsigned leaves = 1024;

    /** Entries per inter-PE FIFO (Tab. 1: 2). */
    unsigned fifoEntries = 2;

    /** NZ capacity of each prefetch buffer (Tab. 1: 32; Fig. 12 sweeps). */
    unsigned prefetchBufferEntries = 32;

    /** Stall-reducing prefetching (Sec. 3.4); Fig. 12 ablates this. */
    bool stallReducingPrefetch = true;

    /**
     * Seamless back-to-back merge sort (Sec. 3.3): prefetch buffers are
     * assigned (and fetch) the next round's streams as soon as they set
     * the end-of-line signal. Disabled, a new round of merge sort only
     * starts after the current one has fully drained from the root —
     * the baseline the Fig. 6 discussion compares against.
     */
    bool seamlessMerge = true;

    /** Request coalescing in the read queue (Sec. 3.4); Fig. 12 ablates. */
    bool requestCoalescing = true;

    /**
     * Pending-store slots in the output unit before the root back-
     * pressures (covers pointer-block flushes at stream boundaries).
     */
    unsigned outputPendingStores = 8;

    /**
     * Cycles a prefetch-buffer load may stay unanswered before the PU
     * re-issues it — recovery from dropped/corrupted link transfers
     * (CRC retry on the DDR4 bus). 0 disables retries.
     */
    unsigned retryTimeoutCycles = 8192;

    /**
     * Period, in PU cycles, of the time-series samplers (merge-tree
     * occupancy). 0 disables sampling. Samples land on the first tick at
     * or after each period boundary, so idle-skip windows collapse to a
     * single post-skip catch-up sample — deterministically.
     */
    std::uint64_t samplePeriod = 0;

    /** Pipeline depth of the FP reduction adders (SpMV only, Tab. 1). */
    unsigned fpAdderStages = 2;

    /** Pipeline depth of the FP multipliers (SpMV only, Tab. 1). */
    unsigned fpMultiplierStages = 3;

    /** Vector lanes of the SpMV multiplier (Tab. 1: 16). */
    unsigned fpMultiplierLanes = 16;

    /**
     * SpGEMM merge scheduling (SpGEMM only): uniform ceil(n/l) rounds
     * (the oracle) or the condensed/Huffman planner of
     * spgemm::planMergeTree. Outputs are bitwise identical either way.
     */
    spgemm::SpgemmConfig spgemm;

    /** Number of streams each round merges. */
    unsigned streamsPerRound() const { return leaves; }
};

} // namespace menda::core

#endif // MENDA_MENDA_PU_CONFIG_HH
