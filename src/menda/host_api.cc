#include "menda/host_api.hh"

#include "common/log.hh"

namespace menda::nmp
{

Context::Context(const core::SystemConfig &config)
    : config_(config), system_(config), mmio_(config.totalPus())
{
}

MatrixHandle
Context::allocSparseMatrix(const sparse::CsrMatrix &a)
{
    MatrixHandle handle;
    handle.csr_ = &a;
    handle.slices_ = sparse::partitionByNnz(a, ranks());
    handle.pages_ = core::colorPages(handle.slices_, a.rows, a.nnz());
    // The allocation functions write the necessary metadata to the
    // memory-mapped registers (Sec. 4).
    for (unsigned r = 0; r < ranks(); ++r) {
        const auto &slice = handle.slices_[r];
        core::PuMemoryMap map(0, slice.rows(), a.cols, slice.nnz());
        mmio_[r].rowPtrAddr = map.base(core::Region::RowPtr);
        mmio_[r].colIdxAddr = map.base(core::Region::ColIdx);
        mmio_[r].valueAddr = map.base(core::Region::NzVal);
        mmio_[r].rowBegin = slice.rowBegin;
        mmio_[r].rowEnd = slice.rowEnd;
        mmio_[r].start = false;
        mmio_[r].finish = false;
    }
    return handle;
}

void
Context::transpose(MatrixHandle &handle)
{
    menda_assert(!pending_, "an offload is already in flight");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Transpose;
    pendingHandle_ = &handle;
    pending_ = true;
}

void
Context::spmv(MatrixHandle &handle, const std::vector<Value> &x)
{
    menda_assert(!pending_, "an offload is already in flight");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Spmv;
    pendingHandle_ = &handle;
    pendingX_ = x;
    pending_ = true;
}

void
Context::spgemm(MatrixHandle &handle, const sparse::CsrMatrix &b)
{
    menda_assert(!pending_, "an offload is already in flight");
    menda_assert(handle.csr_->cols == b.rows,
                 "spgemm: inner dimension mismatch");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Spgemm;
    pendingHandle_ = &handle;
    pendingB_ = &b;
    pending_ = true;
}

void
Context::wait()
{
    if (!pending_)
        return;
    MatrixHandle &handle = *pendingHandle_;
    if (pendingOp_ == Op::Transpose) {
        core::TransposeResult result = system_.transpose(*handle.csr_);
        handle.result_ = std::move(result.csc);
        handle.transposed_ = true;
        handle.runStats_ = result;
        lastRun_ = result;
        // Each PU holds one partition; rebuild the per-rank views the
        // host reaches through NMP::getAddr.
        handle.partitions_.clear();
        for (unsigned r = 0; r < ranks(); ++r) {
            const auto &slice = handle.slices_[r];
            sparse::CsrMatrix part = sparse::extractSlice(*handle.csr_,
                                                          slice);
            handle.partitions_.push_back(
                sparse::transposeReference(part));
        }
    } else if (pendingOp_ == Op::Spgemm) {
        core::SpgemmResult result =
            system_.spgemm(*handle.csr_, *pendingB_);
        lastC_ = std::move(result.c);
        lastRun_ = result;
        pendingB_ = nullptr;
    } else {
        core::SpmvResult result = system_.spmv(*handle.csr_, pendingX_);
        lastY_ = std::move(result.y);
        lastRun_ = result;
    }
    for (unsigned r = 0; r < ranks(); ++r) {
        mmio_[r].finish = true; // PU sets finish, updates output addrs
        const auto &slice = handle.slices_[r];
        core::PuMemoryMap map(0, slice.rows(), handle.csr_->cols,
                              slice.nnz());
        mmio_[r].outPtrAddr = map.base(core::Region::OutPtr);
        mmio_[r].outIdxAddr = map.base(core::Region::OutIdx);
        mmio_[r].outValAddr = map.base(core::Region::OutVal);
    }
    pending_ = false;
    pendingOp_ = Op::None;
    pendingHandle_ = nullptr;
}

PartitionView
Context::getAddr(const MatrixHandle &handle, unsigned rank) const
{
    menda_assert(rank < ranks(), "rank out of range");
    menda_assert(handle.transposed_, "matrix not transposed yet");
    PartitionView view;
    view.csc = &handle.partitions_[rank];
    view.rowBegin = handle.slices_[rank].rowBegin;
    view.rowEnd = handle.slices_[rank].rowEnd;
    view.ptrAddr = mmio_[rank].outPtrAddr;
    view.idxAddr = mmio_[rank].outIdxAddr;
    view.valAddr = mmio_[rank].outValAddr;
    return view;
}

const sparse::CscMatrix &
Context::result(const MatrixHandle &handle) const
{
    menda_assert(handle.transposed_, "matrix not transposed yet");
    return handle.result_;
}

} // namespace menda::nmp
