#include "menda/host_api.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::nmp
{

Addr
SpanAllocator::alloc(Addr size)
{
    live_ += size;
    for (std::size_t i = 0; i < free_.size(); ++i) {
        Span &span = free_[i];
        if (span.end - span.base < size)
            continue;
        const Addr base = span.base;
        span.base += size;
        if (span.base == span.end)
            free_.erase(free_.begin() + i);
        return base;
    }
    const Addr base = top_;
    top_ += size;
    highWater_ = std::max(highWater_, top_);
    return base;
}

void
SpanAllocator::free(Addr base, Addr size)
{
    if (size == 0)
        return;
    menda_assert(live_ >= size, "SpanAllocator: double free");
    live_ -= size;
    Span span{base, base + size};
    auto it = std::lower_bound(free_.begin(), free_.end(), span,
                               [](const Span &a, const Span &b) {
                                   return a.base < b.base;
                               });
    // Coalesce with the successor, the predecessor, then top-of-heap.
    if (it != free_.end() && span.end == it->base) {
        span.end = it->end;
        it = free_.erase(it);
    }
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        menda_assert(prev->end <= span.base,
                     "SpanAllocator: overlapping free");
        if (prev->end == span.base) {
            span.base = prev->base;
            it = free_.erase(prev);
        }
    }
    if (span.end == top_) {
        top_ = span.base;
        return;
    }
    free_.insert(it, span);
}

Context::Context(const core::SystemConfig &config)
    : config_(config), system_(config), mmio_(config.totalPus()),
      rankAlloc_(config.totalPus())
{
}

MatrixHandle
Context::allocSparseMatrix(const sparse::CsrMatrix &a)
{
    MatrixHandle handle;
    handle.csr_ = &a;
    handle.slices_ = sparse::partitionByNnz(a, ranks());

    // Colored virtual pages: each live matrix gets a disjoint span, so
    // a second allocation cannot alias the first's page table.
    handle.pageSpan_ = core::coloredPageSpan(ranks(), a.rows, a.nnz());
    handle.pageBase_ = pageAlloc_.alloc(handle.pageSpan_);
    handle.pages_ = core::colorPages(handle.slices_, a.rows, a.nnz(),
                                     handle.pageBase_);

    // Rank-local physical spans: lay the slice out at each rank's next
    // free region instead of hard-coding base 0 (the single-use
    // assumption this replaces), and remember the map so wait() and
    // getAddr() report this handle's addresses, not the latest one's.
    // The allocation functions write the necessary metadata to the
    // memory-mapped registers (Sec. 4).
    handle.maps_.resize(ranks());
    handle.rankBase_.resize(ranks());
    handle.rankBytes_.resize(ranks());
    for (unsigned r = 0; r < ranks(); ++r) {
        const auto &slice = handle.slices_[r];
        const core::PuMemoryMap probe(0, slice.rows(), a.cols,
                                      slice.nnz());
        const Addr bytes =
            (probe.end() + pageBytes - 1) &
            ~static_cast<Addr>(pageBytes - 1);
        const Addr base = rankAlloc_[r].alloc(bytes);
        handle.rankBase_[r] = base;
        handle.rankBytes_[r] = bytes;
        handle.maps_[r] = core::PuMemoryMap(base, slice.rows(), a.cols,
                                            slice.nnz());
        mmio_[r].rowPtrAddr = handle.maps_[r].base(core::Region::RowPtr);
        mmio_[r].colIdxAddr = handle.maps_[r].base(core::Region::ColIdx);
        mmio_[r].valueAddr = handle.maps_[r].base(core::Region::NzVal);
        mmio_[r].rowBegin = slice.rowBegin;
        mmio_[r].rowEnd = slice.rowEnd;
        mmio_[r].start = false;
        mmio_[r].finish = false;
    }
    handle.alive_ = true;
    return handle;
}

void
Context::free(MatrixHandle &handle)
{
    menda_assert(handle.alive_, "free: handle not allocated");
    menda_assert(!pending_ || pendingHandle_ != &handle,
                 "free: offload in flight on this handle");
    for (unsigned r = 0; r < ranks(); ++r)
        rankAlloc_[r].free(handle.rankBase_[r], handle.rankBytes_[r]);
    pageAlloc_.free(handle.pageBase_, handle.pageSpan_);
    handle.alive_ = false;
}

void
Context::transpose(MatrixHandle &handle)
{
    menda_assert(!pending_, "an offload is already in flight");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Transpose;
    pendingHandle_ = &handle;
    pending_ = true;
}

void
Context::spmv(MatrixHandle &handle, const std::vector<Value> &x)
{
    menda_assert(!pending_, "an offload is already in flight");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Spmv;
    pendingHandle_ = &handle;
    pendingX_ = x;
    pending_ = true;
}

void
Context::spgemm(MatrixHandle &handle, const sparse::CsrMatrix &b)
{
    menda_assert(!pending_, "an offload is already in flight");
    menda_assert(handle.csr_->cols == b.rows,
                 "spgemm: inner dimension mismatch");
    for (auto &regs : mmio_) {
        regs.start = true;
        regs.finish = false;
    }
    pendingOp_ = Op::Spgemm;
    pendingHandle_ = &handle;
    pendingB_ = &b;
    pending_ = true;
}

void
Context::wait()
{
    if (!pending_)
        return;
    MatrixHandle &handle = *pendingHandle_;
    if (pendingOp_ == Op::Transpose) {
        core::TransposeResult result = system_.transpose(*handle.csr_);
        handle.result_ = std::move(result.csc);
        handle.transposed_ = true;
        handle.runStats_ = result;
        lastRun_ = result;
        // Each PU holds one partition; rebuild the per-rank views the
        // host reaches through NMP::getAddr.
        handle.partitions_.clear();
        for (unsigned r = 0; r < ranks(); ++r) {
            const auto &slice = handle.slices_[r];
            sparse::CsrMatrix part = sparse::extractSlice(*handle.csr_,
                                                          slice);
            handle.partitions_.push_back(
                sparse::transposeReference(part));
        }
    } else if (pendingOp_ == Op::Spgemm) {
        core::SpgemmResult result =
            system_.spgemm(*handle.csr_, *pendingB_);
        lastC_ = std::move(result.c);
        lastRun_ = result;
        pendingB_ = nullptr;
    } else {
        core::SpmvResult result = system_.spmv(*handle.csr_, pendingX_);
        lastY_ = std::move(result.y);
        lastRun_ = result;
    }
    for (unsigned r = 0; r < ranks(); ++r) {
        mmio_[r].finish = true; // PU sets finish, updates output addrs
        mmio_[r].outPtrAddr = handle.maps_[r].base(core::Region::OutPtr);
        mmio_[r].outIdxAddr = handle.maps_[r].base(core::Region::OutIdx);
        mmio_[r].outValAddr = handle.maps_[r].base(core::Region::OutVal);
    }
    pending_ = false;
    pendingOp_ = Op::None;
    pendingHandle_ = nullptr;
}

PartitionView
Context::getAddr(const MatrixHandle &handle, unsigned rank) const
{
    menda_assert(rank < ranks(), "rank out of range");
    menda_assert(handle.transposed_, "matrix not transposed yet");
    PartitionView view;
    view.csc = &handle.partitions_[rank];
    view.rowBegin = handle.slices_[rank].rowBegin;
    view.rowEnd = handle.slices_[rank].rowEnd;
    view.ptrAddr = mmio_[rank].outPtrAddr;
    view.idxAddr = mmio_[rank].outIdxAddr;
    view.valAddr = mmio_[rank].outValAddr;
    return view;
}

const sparse::CscMatrix &
Context::result(const MatrixHandle &handle) const
{
    menda_assert(handle.transposed_, "matrix not transposed yet");
    return handle.result_;
}

} // namespace menda::nmp
