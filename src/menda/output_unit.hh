/**
 * @file
 * Output buffer behind the root PE (Sec. 3.2).
 *
 * Collects the packets popped from the root, assembles them into 64 B
 * blocks per destination array, and emits store requests at block
 * granularity. In intermediate iterations the destination is a COO
 * ping-pong buffer (row/col/val arrays) and the unit records each merged
 * stream's bounds for the next iteration. In the final iteration the
 * destination is the output CSC (ptr/idx/val): the unit synthesizes the
 * column pointer array on the fly as the column index advances, which is
 * the pointer-update traffic the paper's throughput discussion calls out
 * (Sec. 6.5). SpMV iterations store (index, value) pairs, and the SpMV
 * final iteration stores a dense vector (Sec. 3.6).
 */

#ifndef MENDA_MENDA_OUTPUT_UNIT_HH
#define MENDA_MENDA_OUTPUT_UNIT_HH

#include <deque>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "menda/memory_map.hh"
#include "menda/packet.hh"
#include "menda/pu_config.hh"

namespace menda::core
{

/** What one iteration writes back to memory. */
enum class OutputMode : std::uint8_t
{
    CooIntermediate,  ///< transposition/SpGEMM, more iterations follow
    CscFinal,         ///< transposition, last iteration (ptr/idx/val)
    PairIntermediate, ///< SpMV, (index, value) pairs
    DenseFinal,       ///< SpMV, dense result vector
    CsrFinal,         ///< SpGEMM, last iteration: row-pointer synthesis
};

/** Functional sink for merged non-zeros. */
struct MergedOutput
{
    std::vector<Index> row;
    std::vector<Index> col;
    std::vector<Value> val;

    void
    clear()
    {
        row.clear();
        col.clear();
        val.clear();
    }

    std::uint64_t size() const { return row.size(); }
};

class OutputUnit
{
  public:
    OutputUnit(const PuConfig &config, const PuMemoryMap *map);

    /**
     * Arm the unit for one iteration.
     * @param mode            what to write (see OutputMode)
     * @param dst_coo         ping-pong buffer index for intermediates
     * @param expected_rounds end-of-line tokens before the iteration ends
     * @param total_cols      pointer entries - 1 (CscFinal only)
     */
    void beginIteration(OutputMode mode, int dst_coo,
                        std::uint64_t expected_rounds, Index total_cols);

    /** True if the unit can accept a packet from the root this cycle. */
    bool
    canAccept() const
    {
        return pendingStores_.size() < config_->outputPendingStores;
    }

    /** Consume one packet popped from the root PE. */
    void accept(const Packet &packet);

    /** Pre-size the merged arrays (fast tiers know the element count). */
    void
    reserveMerged(std::size_t elements)
    {
        merged_.row.reserve(merged_.row.size() + elements);
        merged_.col.reserve(merged_.col.size() + elements);
        merged_.val.reserve(merged_.val.size() + elements);
    }

    /** Pending store blocks awaiting the PU's store port. */
    bool hasPendingStore() const { return !pendingStores_.empty(); }
    Addr nextStore() const { return pendingStores_.front(); }
    void storeIssued();

    /** All rounds seen and every store block handed to the write queue. */
    bool
    iterationDone() const
    {
        return roundsSeen_ == expectedRounds_ && pendingStores_.empty();
    }

    /** Per-round output bounds recorded this iteration. */
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &
    roundBounds() const
    {
        return roundBounds_;
    }

    /** Functional merged data of this iteration. */
    const MergedOutput &merged() const { return merged_; }

    std::uint64_t elementsOut() const { return elementsOut_.value(); }
    std::uint64_t storesQueued() const { return stores_.value(); }

    /** Cycles the root had data while this unit was back-pressured. */
    std::uint64_t stallCycles() const { return stalls_.value(); }

    void
    registerStats(StatGroup &group) const
    {
        group.add("output.elements", elementsOut_);
        group.add("output.stores", stores_);
        group.add("output.stallCycles", stalls_);
    }

    /** Count a cycle the root had data but the unit was back-pressured. */
    void noteStall() { ++stalls_; }

  private:
    /** One destination array filling up block by block. */
    struct ArraySink
    {
        Region region = Region::OutIdx;
        std::uint64_t elements = 0;
    };

    /** Append @p count elements to @p sink, emitting completed blocks. */
    void append(ArraySink &sink, std::uint64_t count);

    /** Emit the trailing partial block of @p sink, if any. */
    void flush(ArraySink &sink);

    /** Emit pointer entries up to and including column @p col. */
    void advancePointer(Index col);

    void finishIteration();
    void pushStore(Addr block);

    const PuConfig *config_;
    const PuMemoryMap *map_;

    OutputMode mode_ = OutputMode::CscFinal;
    int dstCoo_ = 0;
    std::uint64_t expectedRounds_ = 0;
    std::uint64_t roundsSeen_ = 0;
    Index totalCols_ = 0;

    ArraySink rowSink_, colSink_, valSink_, ptrSink_;
    Index nextPtrEntry_ = 0;  ///< pointer entries emitted so far
    Addr denseBlock_ = ~Addr(0); ///< current dense-vector block

    std::deque<Addr> pendingStores_;
    std::uint64_t roundStart_ = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> roundBounds_;
    MergedOutput merged_;

    Counter elementsOut_, stores_, stalls_;
};

} // namespace menda::core

#endif // MENDA_MENDA_OUTPUT_UNIT_HH
