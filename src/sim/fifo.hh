/**
 * @file
 * Fixed-capacity FIFO modeling the hardware queues between merge-tree PEs.
 *
 * The paper's PEs are decoupled by 2-entry FIFOs so that every PE can pop
 * one packet per cycle without a combinational path from root to leaves
 * (Sec. 3.2). This template is a behavioural model: capacity checks stand
 * in for back-pressure wires.
 */

#ifndef MENDA_SIM_FIFO_HH
#define MENDA_SIM_FIFO_HH

#include <cstddef>
#include <vector>

#include "common/log.hh"

namespace menda
{

template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity) : capacity_(capacity)
    {
        menda_assert(capacity > 0, "FIFO capacity must be positive");
        slots_.resize(capacity);
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t space() const { return capacity_ - size_; }

    /** Reference to the oldest element. FIFO must be non-empty. */
    const T &
    front() const
    {
        menda_assert(size_ > 0, "front() on empty FIFO");
        return slots_[head_];
    }

    /** Append @p item; FIFO must not be full. */
    void
    push(const T &item)
    {
        menda_assert(size_ < capacity_, "push() on full FIFO");
        slots_[(head_ + size_) % capacity_] = item;
        ++size_;
    }

    /** Remove and return the oldest element; FIFO must be non-empty. */
    T
    pop()
    {
        menda_assert(size_ > 0, "pop() on empty FIFO");
        T item = slots_[head_];
        head_ = (head_ + 1) % capacity_;
        --size_;
        return item;
    }

    /** Discard all contents. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<T> slots_;
};

} // namespace menda

#endif // MENDA_SIM_FIFO_HH
