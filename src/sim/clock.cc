#include "sim/clock.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace menda
{

ClockDomain *
TickScheduler::addDomain(const std::string &name, std::uint64_t freq_mhz)
{
    if (finalized_)
        menda_panic("cannot add clock domain '", name, "' after run start");
    if (freq_mhz == 0)
        menda_fatal("clock domain '", name, "' frequency must be nonzero");
    domains_.push_back(std::make_unique<ClockDomain>(name, freq_mhz));
    return domains_.back().get();
}

double
TickScheduler::seconds() const
{
    if (baseMhz_ == 0)
        return 0.0;
    return static_cast<double>(curTick_) / (baseMhz_ * 1e6);
}

void
TickScheduler::finalize()
{
    if (finalized_)
        return;
    if (domains_.empty())
        menda_fatal("simulation has no clock domains");
    baseMhz_ = 1;
    for (const auto &domain : domains_)
        baseMhz_ = std::lcm(baseMhz_, domain->freqMhz());
    for (auto &domain : domains_) {
        domain->period_ = baseMhz_ / domain->freqMhz();
        domain->nextFire_ = curTick_;
    }
    finalized_ = true;
}

void
TickScheduler::step()
{
    finalize();
    Tick next = ~Tick(0);
    for (const auto &domain : domains_)
        next = std::min(next, domain->nextFire_);
    curTick_ = next;
    for (auto &domain : domains_) {
        if (domain->nextFire_ != curTick_)
            continue;
        for (Ticked *component : domain->components_)
            component->tick();
        ++domain->cycle_;
        domain->nextFire_ += domain->period_;
    }
}

} // namespace menda
