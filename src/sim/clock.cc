#include "sim/clock.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace menda
{

ClockDomain *
TickScheduler::addDomain(const std::string &name, std::uint64_t freq_mhz)
{
    if (finalized_)
        menda_panic("cannot add clock domain '", name, "' after run start");
    if (freq_mhz == 0)
        menda_fatal("clock domain '", name, "' frequency must be nonzero");
    domains_.push_back(std::make_unique<ClockDomain>(name, freq_mhz));
    return domains_.back().get();
}

void
TickScheduler::setTrace(obs::TraceShard *shard)
{
    if (finalized_)
        menda_panic("cannot attach a trace shard after run start");
    trace_ = shard;
}

double
TickScheduler::seconds() const
{
    if (baseMhz_ == 0)
        return 0.0;
    return static_cast<double>(curTick_) / (baseMhz_ * 1e6);
}

void
TickScheduler::finalize()
{
    if (finalized_)
        return;
    if (domains_.empty())
        menda_fatal("simulation has no clock domains");
    baseMhz_ = 1;
    for (const auto &domain : domains_)
        baseMhz_ = std::lcm(baseMhz_, domain->freqMhz());
    for (auto &domain : domains_) {
        domain->period_ = baseMhz_ / domain->freqMhz();
        domain->nextFire_ = curTick_;
        if (trace_) {
            domain->traceTrack_ =
                trace_->addTrack("idleSkip." + domain->name(),
                                 obs::TrackKind::Span, domain->freqMhz());
            domain->traceName_ = trace_->internName("skip");
        }
    }
    finalized_ = true;
}

Cycle
ClockDomain::skippableCycles() const
{
    Cycle window = ~Cycle(0);
    for (const Ticked *component : components_) {
        window = std::min(window, component->quiescentFor());
        if (window == 0)
            return 0;
    }
    return window;
}

void
TickScheduler::step()
{
    finalize();

    // Earliest tick at which any domain must do work. A domain whose
    // components are all quiescent pushes its due time to the end of the
    // smallest declared window instead of its next period boundary.
    Tick next = ~Tick(0);
    for (const auto &domain : domains_) {
        Tick due = domain->nextFire_;
        const Cycle skip = domain->skippableCycles();
        if (skip > 0) {
            const Tick headroom = (~Tick(0) - due) / domain->period_;
            due += std::min<Tick>(skip, headroom) * domain->period_;
        }
        next = std::min(next, due);
    }
    curTick_ = next;

    // Catch up, then fire. A domain whose period boundaries were passed
    // over while quiescent accounts them via skipCycles() — boundaries
    // strictly before curTick_ only, so input arriving this tick is never
    // folded into a skipped window. A domain left mid-period (no
    // coincident boundary) resyncs just past curTick_ and fires again on
    // its next boundary, exactly where the dense schedule would tick it.
    //
    // Every domain must catch up before ANY domain ticks: a ticking
    // component may call into a component of a later, still-lagging
    // domain (a PU enqueuing into its memory controller), and that callee
    // would otherwise see — and timestamp with — a stale cycle counter.
    for (auto &domain : domains_) {
        if (domain->nextFire_ > curTick_)
            continue;
        const Tick behind = curTick_ - domain->nextFire_;
        const bool fires = behind % domain->period_ == 0;
        Cycle lag = behind / domain->period_;
        if (!fires)
            ++lag;
        if (lag > 0) {
            for (Ticked *component : domain->components_)
                component->skipCycles(lag);
            if (trace_)
                trace_->span(domain->traceTrack_, domain->traceName_,
                             domain->cycle_, domain->cycle_ + lag);
            domain->cycle_ += lag;
            domain->nextFire_ += lag * domain->period_;
            cyclesSkipped_ += lag;
        }
    }
    for (auto &domain : domains_) {
        if (domain->nextFire_ != curTick_)
            continue;
        for (Ticked *component : domain->components_)
            component->tick();
        ++domain->cycle_;
        domain->nextFire_ += domain->period_;
    }
}

} // namespace menda
