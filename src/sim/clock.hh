/**
 * @file
 * Multi-clock-domain cycle simulation kernel.
 *
 * MeNDA couples a PU clock (nominally 800 MHz) with the DDR4 command clock
 * (1200 MHz for DDR4-2400). Both domains are simulated exactly by choosing
 * the base tick rate as the least common multiple of all domain
 * frequencies; each domain then fires every (base / freq) ticks with zero
 * drift. Components implement Ticked and are ticked in registration order
 * whenever their domain fires.
 */

#ifndef MENDA_SIM_CLOCK_HH
#define MENDA_SIM_CLOCK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace menda
{

class TickScheduler;

/** A component that does work once per cycle of its clock domain. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance this component by one cycle of its clock domain. */
    virtual void tick() = 0;
};

/**
 * One clock domain (e.g. "pu" at 800 MHz, "dram" at 1200 MHz).
 * Created via TickScheduler::addDomain.
 */
class ClockDomain
{
  public:
    ClockDomain(std::string name, std::uint64_t freq_mhz)
        : name_(std::move(name)), freqMhz_(freq_mhz)
    {}

    const std::string &name() const { return name_; }
    std::uint64_t freqMhz() const { return freqMhz_; }

    /** Cycles of this domain elapsed since simulation start. */
    Cycle curCycle() const { return cycle_; }

    /** Period of one cycle in base ticks (valid after finalize()). */
    Tick period() const { return period_; }

    /** Seconds represented by @p cycles of this domain. */
    double
    cyclesToSeconds(Cycle cycles) const
    {
        return static_cast<double>(cycles) / (freqMhz_ * 1e6);
    }

    /** Register @p component to be ticked every cycle of this domain. */
    void attach(Ticked *component) { components_.push_back(component); }

  private:
    friend class TickScheduler;

    std::string name_;
    std::uint64_t freqMhz_;
    Tick period_ = 0;
    Tick nextFire_ = 0;
    Cycle cycle_ = 0;
    std::vector<Ticked *> components_;
};

/**
 * Owns clock domains and advances simulated time.
 *
 * Usage:
 *   TickScheduler sched;
 *   auto *pu = sched.addDomain("pu", 800);
 *   auto *dram = sched.addDomain("dram", 1200);
 *   pu->attach(&my_pu); dram->attach(&my_ctrl);
 *   sched.runUntil([&]{ return my_pu.done(); });
 */
class TickScheduler
{
  public:
    /** Create a domain with @p freq_mhz MHz. Must precede the first run. */
    ClockDomain *addDomain(const std::string &name, std::uint64_t freq_mhz);

    /** Current simulated time in base ticks. */
    Tick curTick() const { return curTick_; }

    /** Base tick rate in MHz (LCM of all domain frequencies). */
    std::uint64_t baseFreqMhz() const { return baseMhz_; }

    /** Simulated seconds elapsed. */
    double seconds() const;

    /**
     * Run until @p done returns true. The predicate is evaluated after
     * every simulated tick on which at least one domain fired.
     * @return number of base ticks elapsed during this call.
     */
    template <typename Done>
    Tick
    runUntil(Done &&done, Tick max_ticks = ~Tick(0))
    {
        finalize();
        Tick start = curTick_;
        while (!done()) {
            if (curTick_ - start >= max_ticks)
                break;
            step();
        }
        return curTick_ - start;
    }

    /** Advance to the next firing tick and tick all due domains. */
    void step();

  private:
    void finalize();

    bool finalized_ = false;
    Tick curTick_ = 0;
    std::uint64_t baseMhz_ = 0;
    std::vector<std::unique_ptr<ClockDomain>> domains_;
};

} // namespace menda

#endif // MENDA_SIM_CLOCK_HH
