/**
 * @file
 * Multi-clock-domain cycle simulation kernel.
 *
 * MeNDA couples a PU clock (nominally 800 MHz) with the DDR4 command clock
 * (1200 MHz for DDR4-2400). Both domains are simulated exactly by choosing
 * the base tick rate as the least common multiple of all domain
 * frequencies; each domain then fires every (base / freq) ticks with zero
 * drift. Components implement Ticked and are ticked in registration order
 * whenever their domain fires.
 *
 * Idle-cycle skipping: a component may report quiescence — a window of
 * upcoming own-clock cycles during which tick() is guaranteed to be a
 * no-op absent external input (see Ticked::quiescentFor). When every
 * component of a domain is quiescent the scheduler fast-forwards the
 * domain to its earliest wake-up instead of spinning through the window
 * cycle by cycle; skipped cycles are reported back via skipCycles() so
 * components keep their internal clocks exact. The skipped schedule is
 * bit-identical to the dense one: a component that becomes active mid
 * window (e.g. a memory controller receiving a request from its PU) is
 * caught up and fires again on its next period boundary, exactly where
 * the dense simulation would have ticked it.
 */

#ifndef MENDA_SIM_CLOCK_HH
#define MENDA_SIM_CLOCK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/trace.hh"

namespace menda
{

class TickScheduler;

/** A component that does work once per cycle of its clock domain. */
class Ticked
{
  public:
    virtual ~Ticked() = default;

    /** Advance this component by one cycle of its clock domain. */
    virtual void tick() = 0;

    /**
     * Number of upcoming cycles (of this component's domain) for which
     * tick() is guaranteed to change no observable state, assuming no
     * external input arrives. 0 means active; the default keeps legacy
     * components densely ticked. Returning n permits the scheduler to
     * skip up to n cycles, delivered later through skipCycles(). A
     * component that can be poked from outside (a request enqueued, a
     * callback delivered) must tolerate becoming active mid-window: the
     * cycles skipped so far still count as idle, and it is ticked again
     * on its next period boundary.
     */
    virtual Cycle quiescentFor() const { return 0; }

    /**
     * Account @p cycles own-domain cycles that elapsed without tick()
     * being called (all inside a window this component declared via
     * quiescentFor). Implementations advance internal time in O(1).
     */
    virtual void skipCycles(Cycle cycles) { (void)cycles; }
};

/**
 * One clock domain (e.g. "pu" at 800 MHz, "dram" at 1200 MHz).
 * Created via TickScheduler::addDomain.
 */
class ClockDomain
{
  public:
    ClockDomain(std::string name, std::uint64_t freq_mhz)
        : name_(std::move(name)), freqMhz_(freq_mhz)
    {}

    const std::string &name() const { return name_; }
    std::uint64_t freqMhz() const { return freqMhz_; }

    /** Cycles of this domain elapsed since simulation start. */
    Cycle curCycle() const { return cycle_; }

    /** Period of one cycle in base ticks (valid after finalize()). */
    Tick period() const { return period_; }

    /** Seconds represented by @p cycles of this domain. */
    double
    cyclesToSeconds(Cycle cycles) const
    {
        return static_cast<double>(cycles) / (freqMhz_ * 1e6);
    }

    /** Register @p component to be ticked every cycle of this domain. */
    void attach(Ticked *component) { components_.push_back(component); }

  private:
    friend class TickScheduler;

    /** Cycles every attached component can skip right now (0 = active). */
    Cycle skippableCycles() const;

    std::string name_;
    std::uint64_t freqMhz_;
    Tick period_ = 0;
    Tick nextFire_ = 0;
    Cycle cycle_ = 0;
    std::vector<Ticked *> components_;
    std::uint32_t traceTrack_ = 0; ///< idle-skip span track (if traced)
    std::uint32_t traceName_ = 0;  ///< interned "skip"
};

/**
 * Owns clock domains and advances simulated time.
 *
 * Usage:
 *   TickScheduler sched;
 *   auto *pu = sched.addDomain("pu", 800);
 *   auto *dram = sched.addDomain("dram", 1200);
 *   pu->attach(&my_pu); dram->attach(&my_ctrl);
 *   sched.runUntil([&]{ return my_pu.done(); });
 */
class TickScheduler
{
  public:
    /** Create a domain with @p freq_mhz MHz. Must precede the first run. */
    ClockDomain *addDomain(const std::string &name, std::uint64_t freq_mhz);

    /**
     * Record every idle-skip window as a span on an "idleSkip.<domain>"
     * track of @p shard (one track per domain, registered at the first
     * run). Must precede the first run; pass nullptr to disable.
     */
    void setTrace(obs::TraceShard *shard);

    /** Current simulated time in base ticks. */
    Tick curTick() const { return curTick_; }

    /** Base tick rate in MHz (LCM of all domain frequencies). */
    std::uint64_t baseFreqMhz() const { return baseMhz_; }

    /** Simulated seconds elapsed. */
    double seconds() const;

    /** Domain cycles fast-forwarded instead of ticked (all domains). */
    Cycle cyclesSkipped() const { return cyclesSkipped_; }

    /**
     * Run until @p done returns true. The predicate is evaluated after
     * every simulated tick on which at least one domain fired.
     * @return number of base ticks elapsed during this call.
     */
    template <typename Done>
    Tick
    runUntil(Done &&done, Tick max_ticks = ~Tick(0))
    {
        finalize();
        Tick start = curTick_;
        while (!done()) {
            if (curTick_ - start >= max_ticks)
                break;
            step();
        }
        return curTick_ - start;
    }

    /** Advance to the next firing tick and tick all due domains. */
    void step();

  private:
    void finalize();

    bool finalized_ = false;
    Tick curTick_ = 0;
    std::uint64_t baseMhz_ = 0;
    Cycle cyclesSkipped_ = 0;
    obs::TraceShard *trace_ = nullptr;
    std::vector<std::unique_ptr<ClockDomain>> domains_;
};

} // namespace menda

#endif // MENDA_SIM_CLOCK_HH
