#include "sim/parallel.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace menda
{

ParallelRunner::ParallelRunner(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 1;
    }
}

void
ParallelRunner::run(std::size_t jobs,
                    const std::function<void(std::size_t)> &job)
{
    if (jobs == 0)
        return;

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobs));
    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs; ++i) {
            job(i);
            jobsExecuted_.increment();
        }
        return;
    }

    // Work stealing via a shared ticket counter: shards are claimed in
    // index order, so a pool of K threads keeps K shards in flight and
    // long shards do not serialize behind short ones.
    std::atomic<std::size_t> ticket{0};
    std::exception_ptr error;
    std::mutex error_mutex;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                ticket.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs)
                return;
            try {
                job(i);
                jobsExecuted_.increment();
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(worker);
    worker(); // the caller is worker 0
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

void
ParallelRunner::registerStats(StatGroup &group, const std::string &prefix) const
{
    group.add(prefix + ".jobsExecuted", jobsExecuted_);
}

} // namespace menda
