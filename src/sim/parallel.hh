/**
 * @file
 * Host-side thread pool for shard-per-rank simulation.
 *
 * MeNDA PUs never communicate during a pass (Sec. 3.5): each (PU, memory
 * controller) pair evolves independently on its private clocks, so one
 * simulation shard per rank can run on its own host thread with no
 * synchronization beyond the final join. ParallelRunner is the small
 * fork/join primitive behind MendaSystem's parallel mode: it executes N
 * independent jobs across a bounded pool and rethrows the first worker
 * exception on the caller.
 *
 * Isolation rules the callers follow (enforced by construction, checked
 * by the ThreadSanitizer CI job):
 *   - every mutable object a job touches (scheduler, PU, controller,
 *     stats counters) is owned by exactly one shard;
 *   - shared inputs (matrix slices, the SpMV vector) are const;
 *   - shard results are read only after run() returns (the join is the
 *     only publication point);
 *   - randomness, if a shard needs any, comes from shardRng() so the
 *     draw sequence is per-shard deterministic regardless of how jobs
 *     are interleaved across threads.
 */

#ifndef MENDA_SIM_PARALLEL_HH
#define MENDA_SIM_PARALLEL_HH

#include <cstdint>
#include <functional>

#include "common/random.hh"
#include "common/stats.hh"

namespace menda
{

class ParallelRunner
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware concurrency.
     *                1 runs every job inline on the caller.
     */
    explicit ParallelRunner(unsigned threads);

    /** Resolved worker count (never 0). */
    unsigned threads() const { return threads_; }

    /**
     * Execute job(0) ... job(jobs - 1), each exactly once, distributed
     * over min(threads(), jobs) workers. Blocks until every job has
     * finished; if any job throws, the first exception (in completion
     * order) is rethrown here after all workers have stopped.
     */
    void run(std::size_t jobs, const std::function<void(std::size_t)> &job);

    /** Total jobs completed over this runner's lifetime. */
    std::uint64_t jobsExecuted() const { return jobsExecuted_.value(); }

    /** Register pool counters under @p prefix. */
    void registerStats(StatGroup &group, const std::string &prefix) const;

  private:
    unsigned threads_;
    AtomicCounter jobsExecuted_;
};

/**
 * Deterministic per-shard RNG: the stream depends only on (seed, shard),
 * never on host thread assignment or interleaving, so stochastic models
 * (e.g. fault injection) stay bit-identical between sequential and
 * parallel simulation.
 */
inline Rng
shardRng(std::uint64_t seed, std::uint64_t shard)
{
    // Mix the shard index in with a splitmix-style finalizer so adjacent
    // shards get well-separated xoshiro seeds.
    std::uint64_t z = seed + (shard + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
}

} // namespace menda

#endif // MENDA_SIM_PARALLEL_HH
