#include "sparse/workloads.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/log.hh"
#include "sparse/generate.hh"
#include "sparse/mmio.hh"

namespace menda::sparse
{

namespace
{

/** Smallest power of two >= n (R-MAT needs power-of-two dimensions). */
Index
ceilPow2(Index n)
{
    Index p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

std::uint64_t
specSeed(const WorkloadSpec &spec)
{
    // Stable, name-derived seed so every run regenerates the same matrix.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char ch : spec.name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

const std::vector<WorkloadSpec> &
table3Uniform()
{
    static const std::vector<WorkloadSpec> specs = {
        {"N1", 262144, 262144, 3435973, MatrixKind::Uniform},
        {"N2", 262144, 262144, 1717986, MatrixKind::Uniform},
        {"N3", 262144, 262144, 858993, MatrixKind::Uniform},
        {"N4", 262144, 262144, 429496, MatrixKind::Uniform},
        {"N5", 524288, 524288, 8388608, MatrixKind::Uniform},
        {"N6", 1048576, 1048576, 8388608, MatrixKind::Uniform},
        {"N7", 2097152, 2097152, 8388608, MatrixKind::Uniform},
        {"N8", 4194304, 4194304, 8388608, MatrixKind::Uniform},
    };
    return specs;
}

const std::vector<WorkloadSpec> &
table3PowerLaw()
{
    static const std::vector<WorkloadSpec> specs = {
        {"P1", 262144, 262144, 3435973, MatrixKind::PowerLaw},
        {"P2", 262144, 262144, 1717986, MatrixKind::PowerLaw},
        {"P3", 262144, 262144, 858993, MatrixKind::PowerLaw},
        {"P4", 262144, 262144, 429496, MatrixKind::PowerLaw},
        {"P5", 524288, 524288, 8388608, MatrixKind::PowerLaw},
        {"P6", 1048576, 1048576, 8388608, MatrixKind::PowerLaw},
        {"P7", 2097152, 2097152, 8388608, MatrixKind::PowerLaw},
        {"P8", 4194304, 4194304, 8388608, MatrixKind::PowerLaw},
    };
    return specs;
}

const std::vector<WorkloadSpec> &
table4()
{
    static const std::vector<WorkloadSpec> specs = {
        {"amazon", 262111, 262111, 1234877, MatrixKind::LocalGraph},
        {"ASIC_320K", 321821, 321821, 1931828, MatrixKind::Circuit},
        {"bcsstk32", 44609, 44609, 2014701, MatrixKind::Structural},
        {"language", 399130, 399130, 1216334, MatrixKind::LocalGraph},
        {"mac_econ", 206500, 206500, 1273389, MatrixKind::Economic},
        {"parabolic", 525825, 525825, 3674625, MatrixKind::FluidDynamics},
        {"rajat21", 411676, 411676, 1876011, MatrixKind::Circuit},
        {"sme3Dc", 42930, 42930, 3148656, MatrixKind::Structural},
        {"Slashdot0902", 82168, 82168, 948464, MatrixKind::DirectedGraph},
        {"stomach", 213360, 213360, 3021648, MatrixKind::FluidDynamics},
        {"transient", 178866, 178866, 961368, MatrixKind::Circuit},
        {"twotone", 120750, 120750, 1206265, MatrixKind::Circuit},
        {"venkat01", 62424, 62424, 1717792, MatrixKind::FluidDynamics},
        {"webbase-1M", 1000005, 1000005, 3105536,
         MatrixKind::LocalGraph},
        {"wiki-Talk", 2394385, 2394385, 5021410,
         MatrixKind::DirectedGraph},
    };
    return specs;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto *table : {&table3Uniform(), &table3PowerLaw(),
                              &table4()}) {
        auto it = std::find_if(table->begin(), table->end(),
                               [&](const WorkloadSpec &spec) {
                                   return spec.name == name;
                               });
        if (it != table->end())
            return *it;
    }
    menda_fatal("unknown workload '", name, "'");
}

CsrMatrix
makeWorkload(const WorkloadSpec &spec, std::uint64_t scale)
{
    if (scale == 0)
        menda_fatal("makeWorkload: scale must be >= 1");

    if (const char *dir = std::getenv("MENDA_MATRIX_DIR")) {
        std::filesystem::path path =
            std::filesystem::path(dir) / (spec.name + ".mtx");
        if (std::filesystem::exists(path)) {
            menda_inform("loading real matrix ", path.string());
            return readMatrixMarketFile(path.string());
        }
    }

    const Index rows = std::max<Index>(64, spec.rows / scale);
    const Index cols = std::max<Index>(64, spec.cols / scale);
    const std::uint64_t nnz = std::max<std::uint64_t>(256, spec.nnz / scale);
    const std::uint64_t seed = specSeed(spec);

    switch (spec.kind) {
      case MatrixKind::Uniform:
        return generateUniform(rows, cols, nnz, seed);
      case MatrixKind::PowerLaw:
      case MatrixKind::DirectedGraph: {
        CsrMatrix a =
            generateRmat(ceilPow2(rows), nnz, 0.1, 0.2, 0.3, seed);
        return a;
      }
      case MatrixKind::LocalGraph: {
        // Diameter of roughly 30 hops at any scale.
        const Index reach = std::max<Index>(2, rows / 30);
        return generateLocalGraph(rows, nnz, reach, seed);
      }
      case MatrixKind::Circuit:
        return generateCircuit(rows, nnz, seed);
      case MatrixKind::Structural: {
        // Dense band sized to reach the target average row length.
        const Index band = std::max<Index>(
            4, static_cast<Index>(2.0 * nnz / rows));
        return generateBanded(rows, band, 0.55, seed);
      }
      case MatrixKind::FluidDynamics: {
        const Index band = std::max<Index>(
            8, static_cast<Index>(8.0 * nnz / rows));
        return generateBanded(rows, band, 0.14, seed);
      }
      case MatrixKind::Economic:
        return generateSkewedRows(rows, cols, nnz, 0.7, seed);
    }
    menda_panic("unreachable matrix kind");
}

} // namespace menda::sparse
