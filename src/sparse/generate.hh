/**
 * @file
 * Deterministic synthetic sparse matrix generators.
 *
 * Implements the two generators of Tab. 3: uniform matrices built by
 * "randomly sampling NZs until NNZ is reached", and power-law matrices in
 * the style of SNAP's GenRMat(dim, nnz, a, b, c) R-MAT generator. Extra
 * structured generators (banded, block-diagonal, circuit-like) provide
 * stand-ins for the SuiteSparse kinds of Tab. 4 (see DESIGN.md §3).
 */

#ifndef MENDA_SPARSE_GENERATE_HH
#define MENDA_SPARSE_GENERATE_HH

#include <cstdint>

#include "sparse/format.hh"

namespace menda::sparse
{

/**
 * Uniform random matrix: sample (row, col) uniformly, discarding
 * duplicates, until @p nnz distinct non-zeros exist (Tab. 3, N#).
 */
CsrMatrix generateUniform(Index rows, Index cols, std::uint64_t nnz,
                          std::uint64_t seed);

/**
 * R-MAT power-law matrix a la GenRMat(dim, nnz, a, b, c) with
 * d = 1 - a - b - c (Tab. 3, P#: a=0.1, b=0.2, c=0.3).
 * @p rows must be a power of two.
 */
CsrMatrix generateRmat(Index rows, std::uint64_t nnz, double a, double b,
                       double c, std::uint64_t seed);

/**
 * Banded matrix with @p band non-zeros clustered around the diagonal of
 * each row — FEM / structural-problem style (bcsstk32, sme3Dc...).
 */
CsrMatrix generateBanded(Index rows, Index band, double fill,
                         std::uint64_t seed);

/**
 * Circuit-simulation style: strong diagonal, short local coupling, and a
 * few dense rows/columns (supply rails) — rajat21, transient, twotone...
 */
CsrMatrix generateCircuit(Index rows, std::uint64_t nnz, std::uint64_t seed);

/**
 * Random matrix whose row lengths follow the given average but with
 * geometric variation — economic / miscellaneous kinds.
 */
CsrMatrix generateSkewedRows(Index rows, Index cols, std::uint64_t nnz,
                             double skew, std::uint64_t seed);

/**
 * Locality-structured directed graph: edges reach targets within
 * +-@p reach of the source, giving a diameter of roughly rows / reach —
 * the high-diameter structure of web/co-purchase graphs (amazon,
 * webbase), as opposed to the low-diameter social graphs R-MAT models.
 */
CsrMatrix generateLocalGraph(Index rows, std::uint64_t nnz, Index reach,
                             std::uint64_t seed);

} // namespace menda::sparse

#endif // MENDA_SPARSE_GENERATE_HH
