#include "sparse/format.hh"

#include <algorithm>
#include <numeric>

#include "common/log.hh"

namespace menda::sparse
{

namespace
{

void
validateCompressed(const char *what, Index major, Index minor,
                   const std::vector<std::uint32_t> &ptr,
                   const std::vector<Index> &idx,
                   const std::vector<Value> &val)
{
    if (ptr.size() != static_cast<std::size_t>(major) + 1)
        menda_fatal(what, ": pointer array has ", ptr.size(),
                    " entries, expected ", major + 1);
    if (ptr.front() != 0)
        menda_fatal(what, ": pointer array must start at 0");
    if (ptr.back() != idx.size())
        menda_fatal(what, ": pointer array ends at ", ptr.back(),
                    " but there are ", idx.size(), " non-zeros");
    if (idx.size() != val.size())
        menda_fatal(what, ": index/value arrays differ in length");
    for (std::size_t i = 1; i < ptr.size(); ++i) {
        if (ptr[i] < ptr[i - 1])
            menda_fatal(what, ": pointer array not monotonic at ", i);
    }
    for (std::size_t r = 0; r < major; ++r) {
        for (std::uint32_t k = ptr[r]; k < ptr[r + 1]; ++k) {
            if (idx[k] >= minor)
                menda_fatal(what, ": index ", idx[k], " out of bounds (",
                            minor, ") in line ", r);
            if (k > ptr[r] && idx[k] <= idx[k - 1])
                menda_fatal(what, ": indices not strictly increasing in "
                            "line ", r, " at offset ", k);
        }
    }
}

} // namespace

Index
CsrMatrix::nonEmptyRows() const
{
    Index count = 0;
    for (Index r = 0; r < rows; ++r)
        if (ptr[r + 1] > ptr[r])
            ++count;
    return count;
}

double
CsrMatrix::density() const
{
    if (rows == 0 || cols == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows) * static_cast<double>(cols));
}

void
CsrMatrix::validate() const
{
    validateCompressed("CSR", rows, cols, ptr, idx, val);
}

void
CscMatrix::validate() const
{
    validateCompressed("CSC", cols, rows, ptr, idx, val);
}

bool
CooMatrix::sortedByColRow() const
{
    for (std::size_t i = 1; i < nnz(); ++i) {
        if (col[i] < col[i - 1] ||
            (col[i] == col[i - 1] && row[i] < row[i - 1]))
            return false;
    }
    return true;
}

bool
CooMatrix::sortedByRowCol() const
{
    for (std::size_t i = 1; i < nnz(); ++i) {
        if (row[i] < row[i - 1] ||
            (row[i] == row[i - 1] && col[i] < col[i - 1]))
            return false;
    }
    return true;
}

CscMatrix
transposeReference(const CsrMatrix &a)
{
    CscMatrix out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
    out.idx.resize(a.nnz());
    out.val.resize(a.nnz());

    // Count non-zeros per column.
    for (Index c : a.idx)
        ++out.ptr[c + 1];
    std::partial_sum(out.ptr.begin(), out.ptr.end(), out.ptr.begin());

    // Scatter in row order so rows stay sorted within each column.
    std::vector<std::uint32_t> cursor(out.ptr.begin(), out.ptr.end() - 1);
    for (Index r = 0; r < a.rows; ++r) {
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
            std::uint32_t dst = cursor[a.idx[k]]++;
            out.idx[dst] = r;
            out.val[dst] = a.val[k];
        }
    }
    return out;
}

CsrMatrix
transposeReference(const CscMatrix &a)
{
    // CSC(A) is CSR(Aᵀ); transposing Aᵀ with the CSR routine yields
    // CSC(Aᵀ) = CSR(A).
    CsrMatrix as_csr = asCsrOfTranspose(a);
    CscMatrix t = transposeReference(as_csr);
    CsrMatrix out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.ptr = std::move(t.ptr);
    out.idx = std::move(t.idx);
    out.val = std::move(t.val);
    return out;
}

CsrMatrix
asCsrOfTranspose(const CscMatrix &a)
{
    CsrMatrix out;
    out.rows = a.cols;
    out.cols = a.rows;
    out.ptr = a.ptr;
    out.idx = a.idx;
    out.val = a.val;
    return out;
}

CscMatrix
asCscOfTranspose(const CsrMatrix &a)
{
    CscMatrix out;
    out.rows = a.cols;
    out.cols = a.rows;
    out.ptr = a.ptr;
    out.idx = a.idx;
    out.val = a.val;
    return out;
}

CsrMatrix
cooToCsr(CooMatrix coo)
{
    std::vector<std::size_t> order(coo.nnz());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                  if (coo.row[x] != coo.row[y])
                      return coo.row[x] < coo.row[y];
                  return coo.col[x] < coo.col[y];
              });

    CsrMatrix out;
    out.rows = coo.rows;
    out.cols = coo.cols;
    out.ptr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
    out.idx.reserve(coo.nnz());
    out.val.reserve(coo.nnz());
    for (std::size_t k : order) {
        ++out.ptr[coo.row[k] + 1];
        out.idx.push_back(coo.col[k]);
        out.val.push_back(coo.val[k]);
    }
    std::partial_sum(out.ptr.begin(), out.ptr.end(), out.ptr.begin());
    return out;
}

CooMatrix
csrToCoo(const CsrMatrix &a)
{
    CooMatrix out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.row.reserve(a.nnz());
    out.col.assign(a.idx.begin(), a.idx.end());
    out.val.assign(a.val.begin(), a.val.end());
    for (Index r = 0; r < a.rows; ++r)
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            out.row.push_back(r);
    return out;
}

std::vector<double>
spmvReference(const CsrMatrix &a, const std::vector<Value> &x)
{
    menda_assert(x.size() == a.cols,
                 "spmv: vector length ", x.size(), " != cols ", a.cols);
    std::vector<double> y(a.rows, 0.0);
    for (Index r = 0; r < a.rows; ++r) {
        double acc = 0.0;
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            acc += static_cast<double>(a.val[k]) *
                   static_cast<double>(x[a.idx[k]]);
        y[r] = acc;
    }
    return y;
}

} // namespace menda::sparse
