/**
 * @file
 * Structural statistics of sparse matrices — the quantities the paper's
 * analysis sections reason with: row/column-length distributions (the
 * stream lengths MeNDA merges), empty lines (streams that vanish),
 * bandwidth (locality), and skew (workload-balance difficulty).
 */

#ifndef MENDA_SPARSE_STATS_HH
#define MENDA_SPARSE_STATS_HH

#include <cstdint>
#include <vector>

#include "sparse/format.hh"

namespace menda::sparse
{

struct LengthDistribution
{
    std::uint32_t min = 0;
    std::uint32_t max = 0;
    double mean = 0.0;
    double stddev = 0.0;
    /** Skew factor rms/mean; 1.0 = perfectly even. */
    double skew = 1.0;
    /** Histogram over power-of-two buckets: [0], [1], [2,3], [4,7]... */
    std::vector<std::uint64_t> log2Histogram;
};

struct MatrixStats
{
    Index rows = 0;
    Index cols = 0;
    std::uint64_t nnz = 0;
    double density = 0.0;
    Index emptyRows = 0;
    Index emptyCols = 0;
    LengthDistribution rowLengths;
    LengthDistribution colLengths;
    /** Maximum |col - row| over all non-zeros (matrix bandwidth). */
    Index bandwidth = 0;
    /** Fraction of non-zeros whose mirror entry also exists. */
    double structuralSymmetry = 0.0;
    /**
     * Merge iterations a MeNDA PU with @c leaves streams needs per the
     * Sec. 3.1 formula, for the whole matrix on one PU.
     */
    unsigned mergeIterations(unsigned leaves) const;
};

/** Compute all statistics in one pass (plus one transpose for columns). */
MatrixStats analyze(const CsrMatrix &a);

/** Distribution of the values in @p lengths. */
LengthDistribution distributionOf(const std::vector<std::uint32_t> &lengths);

} // namespace menda::sparse

#endif // MENDA_SPARSE_STATS_HH
