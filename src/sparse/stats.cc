#include "sparse/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace menda::sparse
{

LengthDistribution
distributionOf(const std::vector<std::uint32_t> &lengths)
{
    LengthDistribution dist;
    if (lengths.empty())
        return dist;
    dist.min = ~std::uint32_t(0);
    double sum = 0.0, sum_sq = 0.0;
    for (std::uint32_t len : lengths) {
        dist.min = std::min(dist.min, len);
        dist.max = std::max(dist.max, len);
        sum += len;
        sum_sq += double(len) * len;
        unsigned bucket = 0;
        if (len > 0) {
            bucket = 1;
            while ((1u << bucket) <= len)
                ++bucket;
        }
        if (dist.log2Histogram.size() <= bucket)
            dist.log2Histogram.resize(bucket + 1, 0);
        ++dist.log2Histogram[bucket];
    }
    const double n = static_cast<double>(lengths.size());
    dist.mean = sum / n;
    const double var = std::max(0.0, sum_sq / n - dist.mean * dist.mean);
    dist.stddev = std::sqrt(var);
    dist.skew = dist.mean > 0.0 ? std::sqrt(sum_sq / n) / dist.mean : 1.0;
    return dist;
}

unsigned
MatrixStats::mergeIterations(unsigned leaves) const
{
    menda_assert(leaves >= 2, "need at least a 2-leaf tree");
    const std::uint64_t streams = rows - emptyRows;
    if (streams <= 1)
        return 1;
    unsigned iterations = 0;
    std::uint64_t remaining = streams;
    while (remaining > 1) {
        remaining = (remaining + leaves - 1) / leaves;
        ++iterations;
    }
    return iterations;
}

MatrixStats
analyze(const CsrMatrix &a)
{
    MatrixStats stats;
    stats.rows = a.rows;
    stats.cols = a.cols;
    stats.nnz = a.nnz();
    stats.density = a.density();

    std::vector<std::uint32_t> row_lengths(a.rows, 0);
    std::vector<std::uint32_t> col_lengths(a.cols, 0);
    for (Index r = 0; r < a.rows; ++r) {
        row_lengths[r] = a.ptr[r + 1] - a.ptr[r];
        if (row_lengths[r] == 0)
            ++stats.emptyRows;
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
            ++col_lengths[a.idx[k]];
            const Index c = a.idx[k];
            const Index dist = c > r ? c - r : r - c;
            stats.bandwidth = std::max(stats.bandwidth, dist);
        }
    }
    for (Index c = 0; c < a.cols; ++c)
        if (col_lengths[c] == 0)
            ++stats.emptyCols;
    stats.rowLengths = distributionOf(row_lengths);
    stats.colLengths = distributionOf(col_lengths);

    // Structural symmetry via one transpose: an entry is symmetric if
    // (j, i) exists whenever (i, j) does.
    if (a.rows == a.cols && a.nnz() > 0) {
        CscMatrix t = transposeReference(a);
        // CSC of A lists, per column i, the rows j with A(j,i) != 0 —
        // i.e. row i of Aᵀ. Count matches against row i of A.
        std::uint64_t symmetric = 0;
        for (Index i = 0; i < a.rows; ++i) {
            std::uint32_t ka = a.ptr[i], kt = t.ptr[i];
            while (ka < a.ptr[i + 1] && kt < t.ptr[i + 1]) {
                if (a.idx[ka] == t.idx[kt]) {
                    ++symmetric;
                    ++ka;
                    ++kt;
                } else if (a.idx[ka] < t.idx[kt]) {
                    ++ka;
                } else {
                    ++kt;
                }
            }
        }
        stats.structuralSymmetry =
            static_cast<double>(symmetric) / a.nnz();
    }
    return stats;
}

} // namespace menda::sparse
