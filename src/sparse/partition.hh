/**
 * @file
 * NNZ-balanced horizontal matrix partitioning (Sec. 3.5).
 *
 * Each MeNDA PU transposes a contiguous horizontal slice of the matrix so
 * no PU ever communicates with another. Because PU execution time is
 * roughly proportional to its NNZ, slices are chosen to equalize NNZ, not
 * row counts. The host performs this split during data allocation.
 */

#ifndef MENDA_SPARSE_PARTITION_HH
#define MENDA_SPARSE_PARTITION_HH

#include <vector>

#include "sparse/format.hh"

namespace menda::sparse
{

/** One PU's slice: rows [rowBegin, rowEnd) and its global NNZ offset. */
struct RowSlice
{
    Index rowBegin = 0;
    Index rowEnd = 0;
    std::uint64_t nnzBegin = 0;
    std::uint64_t nnzEnd = 0;

    Index rows() const { return rowEnd - rowBegin; }
    std::uint64_t nnz() const { return nnzEnd - nnzBegin; }
};

/**
 * Split @p a into @p parts contiguous horizontal slices with near-equal
 * NNZ. Every row belongs to exactly one slice; slices may be empty for
 * pathological inputs (fewer non-empty rows than parts).
 */
std::vector<RowSlice> partitionByNnz(const CsrMatrix &a, unsigned parts);

/**
 * The Sec. 3.5 balancing algorithm on an arbitrary per-row weight
 * prefix sum (rows + 1 entries, prefix[0] == 0): rows are split into
 * @p parts contiguous ranges with near-equal total weight. This is what
 * partitionByNnz runs on the NNZ prefix (the row pointer array); the
 * SpGEMM planner runs it on the partial-product count so each rank
 * merges a near-equal share of the multiply's merge work. The returned
 * slices carry the *weight* prefix in nnzBegin/nnzEnd; callers slicing
 * an actual matrix must rebuild those from its row pointers.
 */
std::vector<RowSlice> partitionByWeight(
    const std::vector<std::uint64_t> &prefix, unsigned parts);

/**
 * The naive alternative of Sec. 3.5: split by equal ROW ranges (what
 * address-MSB assignment amounts to). Skewed matrices then hand some
 * PUs far more non-zeros than others — the imbalance the NNZ-based
 * scheme exists to avoid. Provided for the ablation bench.
 */
std::vector<RowSlice> partitionByRows(const CsrMatrix &a, unsigned parts);

/** Extract the sub-matrix of @p slice as a standalone CSR (same cols). */
CsrMatrix extractSlice(const CsrMatrix &a, const RowSlice &slice);

/**
 * Maximum NNZ imbalance: max slice nnz / ideal. 1.0 is perfect. Used by
 * tests to bound the balancing guarantee (within the longest single row).
 */
double imbalance(const CsrMatrix &a, const std::vector<RowSlice> &slices);

} // namespace menda::sparse

#endif // MENDA_SPARSE_PARTITION_HH
