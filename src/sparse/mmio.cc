#include "sparse/mmio.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.hh"

namespace menda::sparse
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
}

} // namespace

CsrMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        menda_fatal("MatrixMarket: empty input");

    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        menda_fatal("MatrixMarket: missing %%MatrixMarket banner");
    object = lower(object);
    format = lower(format);
    field = lower(field);
    symmetry = lower(symmetry);
    if (object != "matrix" || format != "coordinate")
        menda_fatal("MatrixMarket: only 'matrix coordinate' is supported");
    if (field != "real" && field != "integer" && field != "pattern")
        menda_fatal("MatrixMarket: unsupported field '", field, "'");
    if (symmetry != "general" && symmetry != "symmetric")
        menda_fatal("MatrixMarket: unsupported symmetry '", symmetry, "'");
    const bool pattern = field == "pattern";
    const bool symmetric = symmetry == "symmetric";

    // Skip comments.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream sizes(line);
    std::uint64_t rows = 0, cols = 0, entries = 0;
    sizes >> rows >> cols >> entries;
    if (!sizes)
        menda_fatal("MatrixMarket: malformed size line '", line, "'");

    CooMatrix coo;
    coo.rows = static_cast<Index>(rows);
    coo.cols = static_cast<Index>(cols);
    coo.row.reserve(entries);
    coo.col.reserve(entries);
    coo.val.reserve(entries);
    for (std::uint64_t i = 0; i < entries; ++i) {
        if (!std::getline(in, line))
            menda_fatal("MatrixMarket: expected ", entries,
                        " entries, got ", i);
        std::istringstream entry(line);
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        if (!pattern)
            entry >> v;
        if (!entry || r == 0 || c == 0 || r > rows || c > cols)
            menda_fatal("MatrixMarket: bad entry '", line, "'");
        coo.row.push_back(static_cast<Index>(r - 1));
        coo.col.push_back(static_cast<Index>(c - 1));
        coo.val.push_back(static_cast<Value>(v));
        if (symmetric && r != c) {
            coo.row.push_back(static_cast<Index>(c - 1));
            coo.col.push_back(static_cast<Index>(r - 1));
            coo.val.push_back(static_cast<Value>(v));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        menda_fatal("cannot open matrix file '", path, "'");
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &a)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << a.rows << " " << a.cols << " " << a.nnz() << "\n";
    for (Index r = 0; r < a.rows; ++r)
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            out << (r + 1) << " " << (a.idx[k] + 1) << " " << a.val[k]
                << "\n";
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &a)
{
    std::ofstream out(path);
    if (!out)
        menda_fatal("cannot create matrix file '", path, "'");
    writeMatrixMarket(out, a);
}

} // namespace menda::sparse
