#include "sparse/generate.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/log.hh"
#include "common/random.hh"

namespace menda::sparse
{

namespace
{

/** Pack a coordinate for dedup/sorting: row-major order. */
constexpr std::uint64_t
key(Index r, Index c)
{
    return (static_cast<std::uint64_t>(r) << 32) | c;
}

/** Build a CSR matrix from a set of unique, packed coordinates. */
CsrMatrix
fromKeys(Index rows, Index cols, std::vector<std::uint64_t> keys,
         std::uint64_t seed)
{
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    Rng value_rng(seed ^ 0xabcdef1234567890ull);
    CsrMatrix out;
    out.rows = rows;
    out.cols = cols;
    out.ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
    out.idx.reserve(keys.size());
    out.val.reserve(keys.size());
    for (std::uint64_t k : keys) {
        Index r = static_cast<Index>(k >> 32);
        Index c = static_cast<Index>(k & 0xffffffffu);
        ++out.ptr[r + 1];
        out.idx.push_back(c);
        out.val.push_back(value_rng.value());
    }
    for (std::size_t r = 0; r < rows; ++r)
        out.ptr[r + 1] += out.ptr[r];
    return out;
}

} // namespace

CsrMatrix
generateUniform(Index rows, Index cols, std::uint64_t nnz,
                std::uint64_t seed)
{
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(rows) * cols;
    if (nnz > capacity)
        menda_fatal("generateUniform: nnz ", nnz, " exceeds ", rows, "x",
                    cols);

    Rng rng(seed);
    std::unordered_set<std::uint64_t> picked;
    picked.reserve(nnz * 2);
    while (picked.size() < nnz) {
        Index r = static_cast<Index>(rng.below(rows));
        Index c = static_cast<Index>(rng.below(cols));
        picked.insert(key(r, c));
    }
    return fromKeys(rows, cols,
                    std::vector<std::uint64_t>(picked.begin(), picked.end()),
                    seed);
}

CsrMatrix
generateRmat(Index rows, std::uint64_t nnz, double a, double b, double c,
             std::uint64_t seed)
{
    if (rows == 0 || (rows & (rows - 1)) != 0)
        menda_fatal("generateRmat: dimension ", rows,
                    " must be a power of two");
    const double d = 1.0 - a - b - c;
    if (d < 0.0)
        menda_fatal("generateRmat: a+b+c must be <= 1");

    int levels = 0;
    for (Index n = rows; n > 1; n >>= 1)
        ++levels;

    Rng rng(seed);
    std::unordered_set<std::uint64_t> picked;
    picked.reserve(nnz * 2);
    // SNAP's GenRMat perturbs the quadrant probabilities per recursion
    // level (+-10% noise, then renormalized); without it the hubs of
    // deep R-MAT recursions are unrealistically concentrated.
    std::uint64_t attempts = 0;
    const std::uint64_t max_attempts = nnz * 64 + 1024;
    while (picked.size() < nnz) {
        if (++attempts > max_attempts)
            menda_fatal("generateRmat: matrix too dense for R-MAT skew; "
                        "cannot place ", nnz, " distinct edges");
        Index r = 0, col = 0;
        for (int level = 0; level < levels; ++level) {
            const double na = a * (0.9 + 0.2 * rng.uniform());
            const double nb = b * (0.9 + 0.2 * rng.uniform());
            const double nc = c * (0.9 + 0.2 * rng.uniform());
            const double nd = d * (0.9 + 0.2 * rng.uniform());
            const double p = rng.uniform() * (na + nb + nc + nd);
            r <<= 1;
            col <<= 1;
            if (p < na) {
                // top-left quadrant
            } else if (p < na + nb) {
                col |= 1;
            } else if (p < na + nb + nc) {
                r |= 1;
            } else {
                r |= 1;
                col |= 1;
            }
        }
        picked.insert(key(r, col));
    }
    return fromKeys(rows, rows,
                    std::vector<std::uint64_t>(picked.begin(), picked.end()),
                    seed);
}

CsrMatrix
generateBanded(Index rows, Index band, double fill, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    keys.reserve(static_cast<std::size_t>(rows * band * fill * 1.1) + rows);
    for (Index r = 0; r < rows; ++r) {
        // Diagonal is always present, as in FEM stiffness matrices.
        keys.push_back(key(r, r));
        Index lo = r > band / 2 ? r - band / 2 : 0;
        Index hi = std::min<Index>(rows - 1, r + band / 2);
        for (Index c = lo; c <= hi; ++c) {
            if (c != r && rng.uniform() < fill)
                keys.push_back(key(r, c));
        }
    }
    return fromKeys(rows, rows, std::move(keys), seed);
}

CsrMatrix
generateCircuit(Index rows, std::uint64_t nnz, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys;
    keys.reserve(nnz + rows);

    // Diagonal (device self-conductance).
    for (Index r = 0; r < rows; ++r)
        keys.push_back(key(r, r));

    // A handful of dense rows and columns modeling supply rails.
    const Index n_rails = std::max<Index>(2, rows / 50000);
    const std::uint64_t rail_budget = nnz / 20;
    for (std::uint64_t i = 0; i < rail_budget; ++i) {
        Index rail = static_cast<Index>(rng.below(n_rails));
        Index other = static_cast<Index>(rng.below(rows));
        if (i % 2 == 0)
            keys.push_back(key(rail, other));
        else
            keys.push_back(key(other, rail));
    }

    // Local couplings with short, geometrically distributed reach.
    while (keys.size() < nnz + rows / 2) {
        Index r = static_cast<Index>(rng.below(rows));
        std::uint64_t reach = 1 + rng.below(64);
        Index c = static_cast<Index>((r + reach) % rows);
        keys.push_back(key(r, c));
        keys.push_back(key(c, r)); // circuits are structurally symmetric
    }
    return fromKeys(rows, rows, std::move(keys), seed);
}

CsrMatrix
generateLocalGraph(Index rows, std::uint64_t nnz, Index reach,
                   std::uint64_t seed)
{
    menda_assert(reach > 0 && reach < rows, "bad reach");
    Rng rng(seed);
    std::unordered_set<std::uint64_t> picked;
    picked.reserve(nnz * 2);
    // A connectivity backbone keeps traversals from fragmenting.
    for (Index r = 0; r + 1 < rows && picked.size() < nnz; ++r)
        picked.insert(key(r, r + 1));
    while (picked.size() < nnz) {
        Index r = static_cast<Index>(rng.below(rows));
        // Skewed reach: most edges are short, a few span the window.
        std::uint64_t span = 1 + rng.below(reach);
        if (rng.below(4) != 0)
            span = 1 + span % (reach / 8 + 1);
        Index c = static_cast<Index>((r + span) % rows);
        picked.insert(key(r, c));
        if (rng.below(2) == 0 && picked.size() < nnz) {
            Index back = r >= span ? r - static_cast<Index>(span)
                                   : static_cast<Index>(r + rows - span);
            picked.insert(key(r, back % rows));
        }
    }
    return fromKeys(rows, rows,
                    std::vector<std::uint64_t>(picked.begin(),
                                               picked.end()),
                    seed);
}

CsrMatrix
generateSkewedRows(Index rows, Index cols, std::uint64_t nnz, double skew,
                   std::uint64_t seed)
{
    Rng rng(seed);
    const double avg = static_cast<double>(nnz) / rows;
    std::vector<std::uint64_t> keys;
    keys.reserve(nnz + nnz / 8);
    for (Index r = 0; r < rows && keys.size() < nnz; ++r) {
        // Geometric-ish length: most rows short, a tail of long rows.
        double u = rng.uniform();
        std::uint64_t len = static_cast<std::uint64_t>(
            avg * (1.0 - skew) + avg * skew * (-std::log(1.0 - u)));
        len = std::min<std::uint64_t>(len, cols);
        for (std::uint64_t i = 0; i < len; ++i)
            keys.push_back(key(r, static_cast<Index>(rng.below(cols))));
    }
    return fromKeys(rows, cols, std::move(keys), seed);
}

} // namespace menda::sparse
