/**
 * @file
 * The paper's evaluation workloads.
 *
 * Tab. 3: synthetic uniform (N1-N8) and power-law (P1-P8) matrices.
 * Tab. 4: fifteen SuiteSparse matrices. Real .mtx files can be loaded via
 * mmio.hh; by default we generate deterministic stand-ins with the same
 * dimension, NNZ, and kind-appropriate structure (DESIGN.md §3).
 *
 * Every maker accepts a scale divisor so benches can run quickly by
 * default; scale=1 reproduces the paper's sizes.
 */

#ifndef MENDA_SPARSE_WORKLOADS_HH
#define MENDA_SPARSE_WORKLOADS_HH

#include <string>
#include <vector>

#include "sparse/format.hh"

namespace menda::sparse
{

/** Structural family used to synthesize a stand-in. */
enum class MatrixKind
{
    Uniform,       ///< uniformly sampled coordinates
    PowerLaw,      ///< R-MAT (0.1, 0.2, 0.3)
    DirectedGraph, ///< low-diameter social graphs (R-MAT stand-in)
    LocalGraph,    ///< high-diameter web/co-purchase graphs
    Circuit,       ///< circuit simulation (diagonal + rails + couplings)
    Structural,    ///< FEM stiffness (dense band)
    FluidDynamics, ///< CFD meshes (wide sparse band)
    Economic,      ///< skewed random rows
};

/** One workload row out of Tab. 3 or Tab. 4. */
struct WorkloadSpec
{
    std::string name;
    Index rows;
    Index cols;
    std::uint64_t nnz;
    MatrixKind kind;
};

/** Tab. 3 uniform matrices N1..N8. */
const std::vector<WorkloadSpec> &table3Uniform();

/** Tab. 3 power-law matrices P1..P8. */
const std::vector<WorkloadSpec> &table3PowerLaw();

/** Tab. 4 SuiteSparse matrices (stand-in specs). */
const std::vector<WorkloadSpec> &table4();

/** Look up a spec by name across all tables. menda_fatal if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/**
 * Materialize @p spec with dimensions and NNZ divided by @p scale.
 * Deterministic for a given (spec, scale) pair. If the environment
 * variable MENDA_MATRIX_DIR is set and contains "<name>.mtx", the real
 * matrix is loaded instead (and scale is ignored).
 */
CsrMatrix makeWorkload(const WorkloadSpec &spec, std::uint64_t scale = 1);

} // namespace menda::sparse

#endif // MENDA_SPARSE_WORKLOADS_HH
