/**
 * @file
 * Compressed sparse matrix formats: CSR, CSC, and COO (Sec. 2.1).
 *
 * CSR(/CSC) stores a matrix in three arrays: a pointer array with the
 * start offset of each row(/column), an index array with the column(/row)
 * index of each non-zero, and a value array. COO stores (row, col, value)
 * of each non-zero in three separate arrays; MeNDA uses it for the
 * intermediate sorted streams between merge iterations (Sec. 3.1).
 *
 * Pointer entries are 32-bit, matching the 4-byte elements the paper's
 * traffic model assumes; all evaluated matrices have nnz < 2^32.
 */

#ifndef MENDA_SPARSE_FORMAT_HH
#define MENDA_SPARSE_FORMAT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace menda::sparse
{

/** Compressed sparse row. Non-zeros of row r live at [ptr[r], ptr[r+1]). */
struct CsrMatrix
{
    Index rows = 0;
    Index cols = 0;
    std::vector<std::uint32_t> ptr;   ///< rows + 1 entries
    std::vector<Index> idx;           ///< column index per non-zero
    std::vector<Value> val;           ///< value per non-zero

    std::uint64_t nnz() const { return idx.size(); }

    /** Number of rows with at least one non-zero. */
    Index nonEmptyRows() const;

    /** Density nnz / (rows * cols). */
    double density() const;

    /** Verify structural invariants; menda_fatal with a reason if broken. */
    void validate() const;

    bool operator==(const CsrMatrix &other) const = default;
};

/** Compressed sparse column. CSC of A is bit-identical to CSR of Aᵀ. */
struct CscMatrix
{
    Index rows = 0;
    Index cols = 0;
    std::vector<std::uint32_t> ptr;   ///< cols + 1 entries
    std::vector<Index> idx;           ///< row index per non-zero
    std::vector<Value> val;

    std::uint64_t nnz() const { return idx.size(); }
    void validate() const;

    bool operator==(const CscMatrix &other) const = default;
};

/** Coordinate format: parallel (row, col, value) arrays. */
struct CooMatrix
{
    Index rows = 0;
    Index cols = 0;
    std::vector<Index> row;
    std::vector<Index> col;
    std::vector<Value> val;

    std::uint64_t nnz() const { return row.size(); }

    /** True if sorted by (col, row) — the MeNDA intermediate order. */
    bool sortedByColRow() const;

    /** True if sorted by (row, col). */
    bool sortedByRowCol() const;
};

/**
 * Golden-reference transposition via count sort (the algorithmic core of
 * scanTrans): O(nnz + cols), used to check every simulated result.
 */
CscMatrix transposeReference(const CsrMatrix &a);

/** Inverse golden reference (CSC → CSR). */
CsrMatrix transposeReference(const CscMatrix &a);

/** Reinterpret: CSC of A *is* CSR of Aᵀ (same arrays, swapped dims). */
CsrMatrix asCsrOfTranspose(const CscMatrix &a);
CscMatrix asCscOfTranspose(const CsrMatrix &a);

/** Build CSR from (possibly unsorted) COO triples. Duplicates are kept. */
CsrMatrix cooToCsr(CooMatrix coo);

/** Expand CSR to COO in row-major order. */
CooMatrix csrToCoo(const CsrMatrix &a);

/** Golden-reference SpMV: y = A * x. @p x must have a.cols entries. */
std::vector<double> spmvReference(const CsrMatrix &a,
                                  const std::vector<Value> &x);

} // namespace menda::sparse

#endif // MENDA_SPARSE_FORMAT_HH
