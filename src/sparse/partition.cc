#include "sparse/partition.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::sparse
{

std::vector<RowSlice>
partitionByWeight(const std::vector<std::uint64_t> &prefix, unsigned parts)
{
    menda_assert(parts > 0, "partitionByWeight: need at least one part");
    menda_assert(!prefix.empty() && prefix.front() == 0,
                 "partitionByWeight: prefix must start at 0");
    const Index rows = static_cast<Index>(prefix.size() - 1);
    std::vector<RowSlice> slices(parts);
    const std::uint64_t total = prefix.back();
    Index row = 0;
    for (unsigned p = 0; p < parts; ++p) {
        RowSlice &slice = slices[p];
        slice.rowBegin = row;
        slice.nnzBegin = prefix[row];
        // Target cumulative weight at the end of this slice.
        const std::uint64_t target = total * (p + 1) / parts;
        while (row < rows && prefix[row + 1] <= target)
            ++row;
        // Take one more row if it brings us closer to the target than
        // stopping short does (and rows remain for later slices).
        if (row < rows && p + 1 < parts) {
            std::uint64_t under = target - prefix[row];
            std::uint64_t over = prefix[row + 1] - target;
            if (over < under && rows - (row + 1) >=
                    static_cast<Index>(parts - p - 1))
                ++row;
        }
        if (p + 1 == parts)
            row = rows;
        slice.rowEnd = row;
        slice.nnzEnd = prefix[row];
    }
    return slices;
}

std::vector<RowSlice>
partitionByNnz(const CsrMatrix &a, unsigned parts)
{
    std::vector<std::uint64_t> prefix(a.ptr.begin(), a.ptr.end());
    return partitionByWeight(prefix, parts);
}

std::vector<RowSlice>
partitionByRows(const CsrMatrix &a, unsigned parts)
{
    menda_assert(parts > 0, "partitionByRows: need at least one part");
    std::vector<RowSlice> slices(parts);
    for (unsigned p = 0; p < parts; ++p) {
        RowSlice &slice = slices[p];
        slice.rowBegin = static_cast<Index>(
            std::uint64_t(a.rows) * p / parts);
        slice.rowEnd = static_cast<Index>(
            std::uint64_t(a.rows) * (p + 1) / parts);
        slice.nnzBegin = a.ptr[slice.rowBegin];
        slice.nnzEnd = a.ptr[slice.rowEnd];
    }
    return slices;
}

CsrMatrix
extractSlice(const CsrMatrix &a, const RowSlice &slice)
{
    CsrMatrix out;
    out.rows = slice.rows();
    out.cols = a.cols;
    out.ptr.resize(static_cast<std::size_t>(out.rows) + 1);
    for (Index r = 0; r <= out.rows; ++r)
        out.ptr[r] = a.ptr[slice.rowBegin + r] - slice.nnzBegin;
    out.idx.assign(a.idx.begin() + slice.nnzBegin,
                   a.idx.begin() + slice.nnzEnd);
    out.val.assign(a.val.begin() + slice.nnzBegin,
                   a.val.begin() + slice.nnzEnd);
    return out;
}

double
imbalance(const CsrMatrix &a, const std::vector<RowSlice> &slices)
{
    if (a.nnz() == 0 || slices.empty())
        return 1.0;
    const double ideal =
        static_cast<double>(a.nnz()) / static_cast<double>(slices.size());
    std::uint64_t worst = 0;
    for (const RowSlice &slice : slices)
        worst = std::max(worst, slice.nnz());
    return static_cast<double>(worst) / ideal;
}

} // namespace menda::sparse
