#include "sparse/partition.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::sparse
{

std::vector<RowSlice>
partitionByNnz(const CsrMatrix &a, unsigned parts)
{
    menda_assert(parts > 0, "partitionByNnz: need at least one part");
    std::vector<RowSlice> slices(parts);
    const std::uint64_t total = a.nnz();
    Index row = 0;
    for (unsigned p = 0; p < parts; ++p) {
        RowSlice &slice = slices[p];
        slice.rowBegin = row;
        slice.nnzBegin = a.ptr[row];
        // Target cumulative NNZ at the end of this slice.
        const std::uint64_t target = total * (p + 1) / parts;
        while (row < a.rows && a.ptr[row + 1] <= target)
            ++row;
        // Take one more row if it brings us closer to the target than
        // stopping short does (and rows remain for later slices).
        if (row < a.rows && p + 1 < parts) {
            std::uint64_t under = target - a.ptr[row];
            std::uint64_t over = a.ptr[row + 1] - target;
            if (over < under && a.rows - (row + 1) >=
                    static_cast<Index>(parts - p - 1))
                ++row;
        }
        if (p + 1 == parts)
            row = a.rows;
        slice.rowEnd = row;
        slice.nnzEnd = a.ptr[row];
    }
    return slices;
}

std::vector<RowSlice>
partitionByRows(const CsrMatrix &a, unsigned parts)
{
    menda_assert(parts > 0, "partitionByRows: need at least one part");
    std::vector<RowSlice> slices(parts);
    for (unsigned p = 0; p < parts; ++p) {
        RowSlice &slice = slices[p];
        slice.rowBegin = static_cast<Index>(
            std::uint64_t(a.rows) * p / parts);
        slice.rowEnd = static_cast<Index>(
            std::uint64_t(a.rows) * (p + 1) / parts);
        slice.nnzBegin = a.ptr[slice.rowBegin];
        slice.nnzEnd = a.ptr[slice.rowEnd];
    }
    return slices;
}

CsrMatrix
extractSlice(const CsrMatrix &a, const RowSlice &slice)
{
    CsrMatrix out;
    out.rows = slice.rows();
    out.cols = a.cols;
    out.ptr.resize(static_cast<std::size_t>(out.rows) + 1);
    for (Index r = 0; r <= out.rows; ++r)
        out.ptr[r] = a.ptr[slice.rowBegin + r] - slice.nnzBegin;
    out.idx.assign(a.idx.begin() + slice.nnzBegin,
                   a.idx.begin() + slice.nnzEnd);
    out.val.assign(a.val.begin() + slice.nnzBegin,
                   a.val.begin() + slice.nnzEnd);
    return out;
}

double
imbalance(const CsrMatrix &a, const std::vector<RowSlice> &slices)
{
    if (a.nnz() == 0 || slices.empty())
        return 1.0;
    const double ideal =
        static_cast<double>(a.nnz()) / static_cast<double>(slices.size());
    std::uint64_t worst = 0;
    for (const RowSlice &slice : slices)
        worst = std::max(worst, slice.nnz());
    return static_cast<double>(worst) / ideal;
}

} // namespace menda::sparse
