/**
 * @file
 * Matrix Market (.mtx) reader/writer so real SuiteSparse matrices can be
 * used in place of the synthetic Tab. 4 stand-ins when available.
 *
 * Supports "matrix coordinate real|integer|pattern general|symmetric".
 */

#ifndef MENDA_SPARSE_MMIO_HH
#define MENDA_SPARSE_MMIO_HH

#include <iosfwd>
#include <string>

#include "sparse/format.hh"

namespace menda::sparse
{

/** Parse a Matrix Market stream into CSR. menda_fatal on malformed input. */
CsrMatrix readMatrixMarket(std::istream &in);

/** Load a .mtx file from disk. */
CsrMatrix readMatrixMarketFile(const std::string &path);

/** Write @p a as "matrix coordinate real general". */
void writeMatrixMarket(std::ostream &out, const CsrMatrix &a);

/** Write to a file on disk. */
void writeMatrixMarketFile(const std::string &path, const CsrMatrix &a);

} // namespace menda::sparse

#endif // MENDA_SPARSE_MMIO_HH
