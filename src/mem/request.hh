/**
 * @file
 * Memory request/response types exchanged between processing units and the
 * DRAM subsystem. All requests are 64 B block transfers (Sec. 3.2).
 */

#ifndef MENDA_MEM_REQUEST_HH
#define MENDA_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace menda::mem
{

/** Which PU-side structure a response must be routed to. */
enum class Stream : std::uint8_t
{
    None = 0,
    RowPointer,   ///< input pointer array
    ColumnIndex,  ///< input index array (or vector elements for SpMV)
    NzValue,      ///< input value array
    Intermediate, ///< COO intermediate arrays
    Output,       ///< output CSC / vector store
};

/**
 * DRAM coordinates of a block address, decoded once at enqueue by the
 * memory controller and carried in the request so scheduler scans never
 * re-decode (or re-unpack) the address. Kept as plain integers here so
 * mem/ stays independent of dram/; dram::DramCoord converts losslessly.
 */
struct DecodedCoord
{
    std::uint32_t rank = 0;
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t columnBlock = 0;
    std::uint32_t flatBank = 0; ///< bank id flattened across ranks/groups
};

/** A 64 B block load or store. */
struct MemRequest
{
    Addr addr = 0;          ///< block-aligned physical address
    bool isWrite = false;
    std::uint32_t requester = 0; ///< prefetch buffer / unit id
    Stream stream = Stream::None;
    std::uint64_t id = 0;   ///< unique tag assigned at enqueue
    std::uint32_t coalesced = 0; ///< additional requesters merged in
    Cycle enqueuedAt = 0;   ///< controller cycle of queue acceptance

    /** Filled by the memory controller at enqueue (see DecodedCoord). */
    DecodedCoord coord;
};

/** Delivered to the PU when a read completes (writes complete silently). */
using ResponseCallback = std::function<void(const MemRequest &)>;

} // namespace menda::mem

#endif // MENDA_MEM_REQUEST_HH
