/**
 * @file
 * Memory request/response types exchanged between processing units and the
 * DRAM subsystem. All requests are 64 B block transfers (Sec. 3.2).
 */

#ifndef MENDA_MEM_REQUEST_HH
#define MENDA_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace menda::mem
{

/** Which PU-side structure a response must be routed to. */
enum class Stream : std::uint8_t
{
    None = 0,
    RowPointer,   ///< input pointer array
    ColumnIndex,  ///< input index array (or vector elements for SpMV)
    NzValue,      ///< input value array
    Intermediate, ///< COO intermediate arrays
    Output,       ///< output CSC / vector store
};

/** A 64 B block load or store. */
struct MemRequest
{
    Addr addr = 0;          ///< block-aligned physical address
    bool isWrite = false;
    std::uint32_t requester = 0; ///< prefetch buffer / unit id
    Stream stream = Stream::None;
    std::uint64_t id = 0;   ///< unique tag assigned at enqueue
    std::uint32_t coalesced = 0; ///< additional requesters merged in

    /**
     * Opaque slot for the memory controller: the decoded DRAM
     * coordinates are cached here at enqueue so scheduler scans do not
     * re-decode the address every cycle.
     */
    std::uint64_t decodeHint = 0;
};

/** Delivered to the PU when a read completes (writes complete silently). */
using ResponseCallback = std::function<void(const MemRequest &)>;

} // namespace menda::mem

#endif // MENDA_MEM_REQUEST_HH
