#include "mem/request_queue.hh"

#include "common/log.hh"

namespace menda::mem
{

RequestQueue::RequestQueue(std::size_t entries, bool coalesce)
    : entries_(entries), coalesce_(coalesce), slots_(entries)
{
    menda_assert(entries > 0, "request queue needs at least one entry");
    menda_assert(entries < npos, "request queue capacity too large");
    freeList_.reserve(entries);
    for (std::uint32_t s = static_cast<std::uint32_t>(entries); s-- > 0;)
        freeList_.push_back(s);
    if (coalesce_)
        readSlotByAddr_.reserve(entries);
#ifdef MENDA_CHECKS
    live_.assign(entries, false);
#endif
}

RequestQueue::Insert
RequestQueue::insert(const MemRequest &req, std::uint32_t &slot_out)
{
    menda_assert(req.addr == blockAlign(req.addr),
                 "requests must be block aligned");
    if (coalesce_ && !req.isWrite) {
        // CAM address match against the occupied read slots.
        auto match = readSlotByAddr_.find(req.addr);
        if (match != readSlotByAddr_.end()) {
#ifdef MENDA_CHECKS
            menda_assert(live_[match->second],
                         "request coalesced into a freed slot");
#endif
            ++slots_[match->second].req.coalesced;
            ++coalescedHits_;
            slot_out = match->second;
            return Insert::Merged;
        }
    }
    if (full()) {
        slot_out = npos;
        return Insert::Rejected;
    }
    const std::uint32_t slot = freeList_.back();
    freeList_.pop_back();
    Slot &entry = slots_[slot];
    entry.req = req;
    entry.req.id = nextId_++;
    entry.prev = tail_;
    entry.next = npos;
    if (tail_ != npos)
        slots_[tail_].next = slot;
    else
        head_ = slot;
    tail_ = slot;
    ++size_;
    if (coalesce_ && !req.isWrite)
        readSlotByAddr_.emplace(req.addr, slot);
    ++enqueued_;
    slot_out = slot;
#ifdef MENDA_CHECKS
    menda_assert(!live_[slot], "free list handed out a live slot");
    live_[slot] = true;
    menda_assert(freeList_.size() + size_ == entries_,
                 "request queue slot accounting out of balance");
#endif
    return Insert::Fresh;
}

MemRequest
RequestQueue::removeSlot(std::uint32_t slot)
{
    menda_assert(slot < slots_.size() && size_ > 0,
                 "request queue remove out of range");
#ifdef MENDA_CHECKS
    menda_assert(live_[slot], "removed a slot that was not live");
#endif
    Slot &entry = slots_[slot];
    if (entry.prev != npos)
        slots_[entry.prev].next = entry.next;
    else
        head_ = entry.next;
    if (entry.next != npos)
        slots_[entry.next].prev = entry.prev;
    else
        tail_ = entry.prev;
    if (coalesce_ && !entry.req.isWrite) {
        auto match = readSlotByAddr_.find(entry.req.addr);
        if (match != readSlotByAddr_.end() && match->second == slot)
            readSlotByAddr_.erase(match);
    }
    --size_;
    freeList_.push_back(slot);
#ifdef MENDA_CHECKS
    live_[slot] = false;
    menda_assert(freeList_.size() + size_ == entries_,
                 "request queue slot accounting out of balance");
#endif
    return entry.req;
}

std::uint32_t
RequestQueue::slotOf(std::size_t i) const
{
    menda_assert(i < size_, "request queue index out of range");
    std::uint32_t slot = head_;
    while (i-- > 0)
        slot = slots_[slot].next;
    return slot;
}

} // namespace menda::mem
