#include "mem/request_queue.hh"

#include "common/log.hh"

namespace menda::mem
{

RequestQueue::RequestQueue(std::size_t entries, bool coalesce)
    : entries_(entries), coalesce_(coalesce)
{
    menda_assert(entries > 0, "request queue needs at least one entry");
}

bool
RequestQueue::enqueue(const MemRequest &req)
{
    menda_assert(req.addr == blockAlign(req.addr),
                 "requests must be block aligned");
    if (coalesce_ && !req.isWrite) {
        // Parallel address match against every occupied slot.
        for (MemRequest &slot : queue_) {
            if (!slot.isWrite && slot.addr == req.addr) {
                ++slot.coalesced;
                ++coalescedHits_;
                return true;
            }
        }
    }
    if (full())
        return false;
    MemRequest accepted = req;
    accepted.id = nextId_++;
    queue_.push_back(accepted);
    ++enqueued_;
    return true;
}

MemRequest
RequestQueue::remove(std::size_t i)
{
    menda_assert(i < queue_.size(), "request queue remove out of range");
    MemRequest req = queue_[i];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    return req;
}

} // namespace menda::mem
