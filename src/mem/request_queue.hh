/**
 * @file
 * Read/write request queues with CAM-style request coalescing (Sec. 3.4).
 *
 * Due to matrix sparsity, several short rows can share one 64 B block, so
 * in iteration 0 different prefetch buffers issue loads for the same
 * block. Request coalescing compares each incoming load against every
 * occupied read-queue slot (a comparator per entry, like a CAM) and merges
 * duplicates into the existing slot. The eventual memory response is
 * broadcast to all prefetch buffers, so merging never affects correctness
 * and requesters need not be tracked.
 */

#ifndef MENDA_MEM_REQUEST_QUEUE_HH
#define MENDA_MEM_REQUEST_QUEUE_HH

#include <cstddef>
#include <deque>

#include "common/stats.hh"
#include "mem/request.hh"

namespace menda::mem
{

/**
 * A bounded FIFO of outstanding block requests. The read queue optionally
 * coalesces; the write queue never does (stores carry distinct data).
 */
class RequestQueue
{
  public:
    /**
     * @param entries   queue capacity (Tab. 1: 32 for both RD and WR)
     * @param coalesce  enable CAM matching of incoming loads
     */
    RequestQueue(std::size_t entries, bool coalesce);

    bool full() const { return queue_.size() >= entries_; }
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    std::size_t capacity() const { return entries_; }

    /**
     * Try to insert @p req. Returns true if it was accepted — either into
     * a fresh slot or merged into an existing one (reads only). Returns
     * false when the queue is full and no slot matches.
     */
    bool enqueue(const MemRequest &req);

    /** Oldest request. Queue must be non-empty. */
    const MemRequest &front() const { return queue_.front(); }

    /** Access entry @p i (0 = oldest) for scheduler scans. */
    const MemRequest &at(std::size_t i) const { return queue_[i]; }
    MemRequest &at(std::size_t i) { return queue_[i]; }

    /** Remove entry @p i once its last command has been issued. */
    MemRequest remove(std::size_t i);

    /** Statistics. */
    const Counter &enqueued() const { return enqueued_; }
    const Counter &coalescedHits() const { return coalescedHits_; }

    void
    registerStats(StatGroup &group, const std::string &prefix) const
    {
        group.add(prefix + ".enqueued", enqueued_);
        group.add(prefix + ".coalesced", coalescedHits_);
    }

  private:
    std::size_t entries_;
    bool coalesce_;
    std::deque<MemRequest> queue_;
    std::uint64_t nextId_ = 0;

    Counter enqueued_;
    Counter coalescedHits_;
};

} // namespace menda::mem

#endif // MENDA_MEM_REQUEST_QUEUE_HH
