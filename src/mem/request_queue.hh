/**
 * @file
 * Read/write request queues with request coalescing (Sec. 3.4).
 *
 * Due to matrix sparsity, several short rows can share one 64 B block, so
 * in iteration 0 different prefetch buffers issue loads for the same
 * block. Request coalescing compares each incoming load against every
 * occupied read-queue slot (hardware: a comparator per entry, like a CAM)
 * and merges duplicates into the existing slot. The eventual memory
 * response is broadcast to all prefetch buffers, so merging never affects
 * correctness and requesters need not be tracked.
 *
 * Host-side representation: entries live in fixed slots recycled through
 * a free list and chained into an intrusive FIFO, so removal from the
 * middle (a scheduled request retiring out of age order) is O(1) instead
 * of an O(n) deque erase. The hardware CAM is modeled by a hash map from
 * block address to slot, making the coalescing probe O(1) per enqueue —
 * same match semantics, no linear scan. Age order is the order of the
 * intrusive list, and ids are monotonic in it.
 */

#ifndef MENDA_MEM_REQUEST_QUEUE_HH
#define MENDA_MEM_REQUEST_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "mem/request.hh"

namespace menda::mem
{

/**
 * A bounded FIFO of outstanding block requests. The read queue optionally
 * coalesces; the write queue never does (stores carry distinct data).
 */
class RequestQueue
{
  public:
    /** Invalid slot sentinel (list terminator). */
    static constexpr std::uint32_t npos = ~std::uint32_t(0);

    /** What RequestQueue::insert did with a request. */
    enum class Insert : std::uint8_t
    {
        Rejected, ///< queue full, no matching slot
        Fresh,    ///< a new slot was allocated
        Merged,   ///< coalesced into an existing slot
    };

    /**
     * @param entries   queue capacity (Tab. 1: 32 for both RD and WR)
     * @param coalesce  enable CAM matching of incoming loads
     */
    RequestQueue(std::size_t entries, bool coalesce);

    bool full() const { return size_ >= entries_; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return entries_; }

    /**
     * Try to insert @p req. Returns true if it was accepted — either into
     * a fresh slot or merged into an existing one (reads only). Returns
     * false when the queue is full and no slot matches.
     */
    bool
    enqueue(const MemRequest &req)
    {
        std::uint32_t slot;
        return insert(req, slot) != Insert::Rejected;
    }

    /**
     * Like enqueue(), but reports what happened and which slot the
     * request landed in (valid unless Rejected), so callers indexing
     * requests by slot (the memory controller's per-bank scheduler
     * bookkeeping) need not rediscover it.
     */
    Insert insert(const MemRequest &req, std::uint32_t &slot_out);

    /** Oldest request. Queue must be non-empty. */
    const MemRequest &front() const { return slots_[head_].req; }

    // --- O(1) slot-handle interface (age order = list order) ---
    /** Slot of the oldest request, or npos when empty. */
    std::uint32_t headSlot() const { return head_; }
    /** Next-younger slot after @p slot, or npos at the tail. */
    std::uint32_t nextSlot(std::uint32_t slot) const
    {
        return slots_[slot].next;
    }
    const MemRequest &slotAt(std::uint32_t slot) const
    {
        return slots_[slot].req;
    }
    MemRequest &slotAt(std::uint32_t slot) { return slots_[slot].req; }

    /** Remove the request in @p slot (any position) in O(1). */
    MemRequest removeSlot(std::uint32_t slot);

    // --- position interface (0 = oldest; walks the list, O(i)) ---
    /** Access entry @p i for age-ordered scans (reference scheduler). */
    const MemRequest &at(std::size_t i) const
    {
        return slots_[slotOf(i)].req;
    }
    MemRequest &at(std::size_t i) { return slots_[slotOf(i)].req; }

    /** Remove entry @p i once its last command has been issued. */
    MemRequest remove(std::size_t i) { return removeSlot(slotOf(i)); }

    /** Statistics. */
    const Counter &enqueued() const { return enqueued_; }
    const Counter &coalescedHits() const { return coalescedHits_; }

    void
    registerStats(StatGroup &group, const std::string &prefix) const
    {
        group.add(prefix + ".enqueued", enqueued_);
        group.add(prefix + ".coalesced", coalescedHits_);
    }

  private:
    struct Slot
    {
        MemRequest req;
        std::uint32_t prev = npos;
        std::uint32_t next = npos;
    };

    std::uint32_t slotOf(std::size_t i) const;

    std::size_t entries_;
    bool coalesce_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    std::uint32_t head_ = npos;
    std::uint32_t tail_ = npos;
    std::size_t size_ = 0;
    std::uint64_t nextId_ = 0;

    /**
     * CAM model: block address -> occupied read slot. Only maintained
     * when coalescing is on; at most one read slot per address can then
     * be live (a second arrival merges instead of allocating).
     */
    std::unordered_map<Addr, std::uint32_t> readSlotByAddr_;

    Counter enqueued_;
    Counter coalescedHits_;

#ifdef MENDA_CHECKS
    /** Invariant checker: which slots are currently on the live list. */
    std::vector<bool> live_;
#endif
};

} // namespace menda::mem

#endif // MENDA_MEM_REQUEST_QUEUE_HH
