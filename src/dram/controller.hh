/**
 * @file
 * Cycle-level DDR4 memory controller.
 *
 * Models the memory interface unit of Sec. 3.2: a request scheduler
 * (FRFCFS_PriorHit / "FCFS-FR" — oldest-first, but requests that are ready
 * to launch and DRAM row hits are prioritized), an address decoder, and a
 * command generator that emits ACT/PRE/RD/WR/REF commands subject to the
 * full DDR4 timing constraint table of Tab. 1.
 *
 * One controller instance drives one data/command bus. A MeNDA PU
 * instantiates a single-rank controller (the rank-internal bus that NMP
 * exposes); host-style simulations instantiate one controller per channel
 * with several ranks sharing the bus.
 *
 * The scheduler is indexed (see DESIGN.md §8): requests are bucketed per
 * flat bank at enqueue, per-bank open-row-hit counts are maintained
 * incrementally, and a ready-bank index keyed by each bank's earliest
 * next-eligible cycle lets pickAndIssue touch only banks that might accept
 * a command this cycle — a few integer compares per cycle instead of a
 * linear rescan of every queue entry and its DRAM timing state. The
 * original scan-based scheduler survives
 * behind DramConfig::referenceScheduler as a differential-testing oracle;
 * both produce bit-identical command streams, counters, and responses.
 */

#ifndef MENDA_DRAM_CONTROLLER_HH
#define MENDA_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "dram/address.hh"
#include "dram/dram_config.hh"
#include "mem/request_queue.hh"
#include "obs/trace.hh"
#include "sim/clock.hh"

namespace menda::dram
{

/** DRAM command types emitted by the command generator. */
enum class CommandType : std::uint8_t
{
    Activate,
    Precharge,
    Read,
    Write,
    Refresh,
};

/** Observer hook for command-level verification and power counting. */
using CommandCallback =
    std::function<void(CommandType, const DramCoord &, Cycle)>;

class MemoryController : public Ticked
{
  public:
    /**
     * @param name       instance name for statistics
     * @param config     organization/timing parameters
     * @param coalesce   enable read-request coalescing (Sec. 3.4)
     */
    MemoryController(std::string name, const DramConfig &config,
                     bool coalesce);

    /** Deliver read completions here. May be empty (responses dropped). */
    void setResponseCallback(mem::ResponseCallback callback)
    {
        callback_ = std::move(callback);
    }

    /** Observe every ACT/PRE/RD/WR/REF command as it issues. */
    void setCommandCallback(CommandCallback callback)
    {
        commandCallback_ = std::move(callback);
    }

    /**
     * Emit command instants (one track per bank) and queue-depth
     * counter samples onto @p shard. Call from the owning thread before
     * the first tick; tracks are registered here, deterministically.
     */
    void attachTrace(obs::TraceShard *shard);

    /**
     * Fault-injection hook: called before each read response is
     * delivered; returning false drops the response (modeling a link
     * CRC error the requester must recover from via retry).
     */
    void setResponseFilter(std::function<bool(const mem::MemRequest &)>
                               filter)
    {
        responseFilter_ = std::move(filter);
    }

    /**
     * Try to enqueue a block request. Returns false when the matching
     * queue is full (caller must retry later — this is the back-pressure
     * the PU's prefetch logic respects).
     */
    bool enqueue(const mem::MemRequest &req);

    /** True when no request is queued, in flight, or awaiting response. */
    bool idle() const;

    void tick() override;

    /**
     * Idle-skip protocol: a tick is a guaranteed no-op until the
     * earliest of (a) the next read-response delivery, (b) the next
     * refresh deadline (tREFI epoch start, or tRFC completion while a
     * REF is in progress), and (c) the ready-bank index's earliest
     * next-eligible cycle for every queue the scheduler would consult —
     * so a controller with queued-but-ineligible requests (banks waiting
     * out tRCD, tRC, tRFC, ...) reports a non-zero skippable window
     * instead of rescanning every cycle. Bank/bus timing state is
     * untouched during such windows, which is what makes the O(1)
     * catch-up in skipCycles() exact. The reference-scheduler oracle
     * keeps the legacy behavior (only a fully idle controller skips).
     */
    Cycle quiescentFor() const override;
    void skipCycles(Cycle cycles) override { now_ += cycles; }

    /**
     * Window warming (DESIGN.md §12): mark the row containing @p addr
     * open in its bank, as a detailed run that just streamed the
     * preceding blocks of that span would have left it. Used when a
     * sampled measurement window enters on a throwaway controller, so
     * the window does not measure an artificially cold row-buffer
     * state. Timing deadlines stay at their construction values (long
     * satisfied), which is the correct post-steady-state view.
     */
    void
    warmPrime(Addr addr)
    {
        const DramCoord coord = decoder_.decode(addr);
        Bank &bank = bankAt(coord);
        bank.open = true;
        bank.openRow = coord.row;
    }

    /**
     * Account block traffic completed outside the cycle model: the
     * Functional tier services reads/writes semantically, so the
     * readsServed()/writesServed() totals (and the block counts derived
     * from them in reports) stay meaningful across tiers.
     */
    void
    noteFunctionalTraffic(std::uint64_t read_blocks,
                          std::uint64_t write_blocks)
    {
        reads_ += read_blocks;
        writes_ += write_blocks;
    }

    // --- observability ---
    Cycle curCycle() const { return now_; }
    const DramConfig &config() const { return config_; }

    std::uint64_t readsServed() const { return reads_.value(); }
    std::uint64_t writesServed() const { return writes_.value(); }
    /** Bursts that required no activate of their own. */
    std::uint64_t
    rowHits() const
    {
        const std::uint64_t bursts = readsServed() + writesServed();
        return bursts > activates() ? bursts - activates() : 0;
    }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }
    std::uint64_t rowConflicts() const { return rowConflicts_.value(); }
    std::uint64_t activates() const { return activates_.value(); }
    std::uint64_t refreshes() const { return refreshes_.value(); }
    std::uint64_t busBusyCycles() const { return busBusy_.value(); }

    /** Activates issued to rank @p r (input to the DRAM power model). */
    std::uint64_t rankActivates(unsigned r) const
    {
        return rankActivates_[r].value();
    }
    /** RD/WR bursts issued to rank @p r. */
    std::uint64_t rankBursts(unsigned r) const
    {
        return rankBursts_[r].value();
    }

    /** Round-trip latency of served reads, enqueue to data delivery. */
    const Histogram &readLatency() const { return readLatency_; }

    /** Periodic RD/WR queue-depth samples (DramConfig::samplePeriod). */
    const IntervalSampler &readDepthSamples() const { return readDepth_; }
    const IntervalSampler &writeDepthSamples() const
    {
        return writeDepth_;
    }

    /** Bytes moved over the data bus so far. */
    std::uint64_t bytesTransferred() const
    {
        return (readsServed() + writesServed()) * blockBytes;
    }

    /** Achieved bandwidth over the first @p cycles cycles, bytes/sec. */
    double achievedBandwidth(Cycle cycles) const;

    /** Read queue (exposed for coalescing statistics). */
    const mem::RequestQueue &readQueue() const { return readQueue_; }
    const mem::RequestQueue &writeQueue() const { return writeQueue_; }

    const StatGroup &stats() const { return stats_; }

  private:
    struct Bank
    {
        bool open = false;
        unsigned openRow = 0;
        Cycle nextActivate = 0;
        Cycle nextRead = 0;
        Cycle nextWrite = 0;
        Cycle nextPrecharge = 0;
    };

    struct RankState
    {
        /**
         * Ring of the last (up to) four ACT times: tFAW constrains the
         * fifth activate against the fourth-most-recent, so nothing
         * older is ever consulted. Fixed-size, no per-ACT allocation.
         */
        Cycle actRing[4] = {0, 0, 0, 0};
        unsigned actCount = 0; ///< valid entries, saturates at 4
        unsigned actHead = 0;  ///< index of the oldest valid entry
        Cycle nextActAny = 0;  ///< tRRDS
        std::vector<Cycle> nextActGroup; ///< tRRDL, per bank group
        Cycle nextRefresh = 0;
        bool refreshing = false;
        Cycle refreshDone = 0;
    };

    /**
     * Per-scheduled-queue bank bookkeeping for the indexed scheduler:
     * an intrusive FIFO of queue slots per flat bank (age order within
     * the bank), a compact list of banks that hold requests, and one
     * earliest-next-eligible key per bank. Keys are lower bounds built
     * from monotonically non-decreasing timing state, updated in place
     * (O(1), no reordering cost): a stale key is only ever stale
     * *early*, so the scheduler re-evaluates that bank and tightens the
     * key, never misses it. The number of live banks is bounded by the
     * queue capacity, so the per-cycle ready scan is a handful of
     * integer compares instead of a linear walk over every queued
     * request and its DRAM state.
     */
    struct BankIndex
    {
        static constexpr Cycle kNoKey = ~Cycle(0);

        std::vector<std::uint32_t> head, tail; ///< per flat bank
        std::vector<std::uint32_t> next, prev; ///< per queue slot
        std::vector<Cycle> key;     ///< per flat bank; kNoKey when empty
        std::vector<unsigned> live; ///< banks holding >= 1 request
        std::vector<std::uint32_t> livePos; ///< fb -> index into live
    };

    // Scheduling.
    bool pickAndIssue(mem::RequestQueue &queue, bool is_write);
    bool pickAndIssueReference(mem::RequestQueue &queue, bool is_write);
    bool pickAndIssueIndexed(mem::RequestQueue &queue, bool is_write);
    bool tryIssueFor(const mem::MemRequest &req, bool is_write,
                     bool hits_only, bool &served);
    void issueActivate(const DramCoord &coord);
    void issuePrecharge(const DramCoord &coord);
    void issueBurst(const DramCoord &coord, const mem::MemRequest &req,
                    bool is_write);
    void maybeRefresh();

    void recountOpenRowWaiters(const DramCoord &coord);
    void recountBankWaiters(unsigned fb);

    /** Per-flat-bank count of queued requests hitting the open row. */
    std::vector<std::uint32_t> &
    openRowWaiters(bool is_write)
    {
        return is_write ? openRowHitsWrite_ : openRowHitsRead_;
    }
    const std::vector<std::uint32_t> &
    openRowWaiters(bool is_write) const
    {
        return is_write ? openRowHitsWrite_ : openRowHitsRead_;
    }

    // Indexed-scheduler bookkeeping.
    BankIndex &bankIndex(bool is_write)
    {
        return is_write ? writeIndex_ : readIndex_;
    }
    const mem::RequestQueue &queueFor(bool is_write) const
    {
        return is_write ? writeQueue_ : readQueue_;
    }
    void linkSlot(BankIndex &index, unsigned fb, std::uint32_t slot);
    void unlinkSlot(BankIndex &index, unsigned fb, std::uint32_t slot);
    Cycle bankEligibleAt(bool is_write, unsigned fb) const;
    void rekeyBank(bool is_write, unsigned fb, Cycle floor);
    void rekeyRankBanks(unsigned rank);
    bool willDrainWrites() const;
    Cycle indexWindow(const BankIndex &index) const;

    unsigned rankOf(unsigned fb) const
    {
        return fb / (config_.bankGroups * config_.banksPerGroup);
    }
    /** Flattened (rank, bank group) index used by the tCCD_L tables. */
    unsigned groupIndexOf(unsigned fb) const
    {
        return fb / config_.banksPerGroup;
    }

    bool canActivate(const DramCoord &coord) const;
    bool canActivateAt(unsigned fb) const;
    bool canPrecharge(const Bank &bank) const;
    bool canRead(const Bank &bank, unsigned group_index) const;
    bool canWrite(const Bank &bank, unsigned group_index) const;

    Bank &bankAt(const DramCoord &coord)
    {
        return banks_[coord.flatBank(config_)];
    }
    const Bank &bankAt(const DramCoord &coord) const
    {
        return banks_[coord.flatBank(config_)];
    }

    std::string name_;
    DramConfig config_;
    AddressDecoder decoder_;
    mem::ResponseCallback callback_;
    CommandCallback commandCallback_;
    std::function<bool(const mem::MemRequest &)> responseFilter_;

    Cycle now_ = 0;
    bool commandIssued_ = false; ///< at most one command per cycle

    mem::RequestQueue readQueue_;
    mem::RequestQueue writeQueue_;
    bool drainingWrites_ = false;

    std::vector<Bank> banks_;
    std::vector<RankState> ranks_;
    std::vector<std::uint32_t> openRowHitsRead_;
    std::vector<std::uint32_t> openRowHitsWrite_;

    BankIndex readIndex_;
    BankIndex writeIndex_;
    std::vector<unsigned> scratchBanks_;  ///< ready banks, this cycle
    std::vector<unsigned> scratchRekeys_; ///< timing-blocked, re-key late

    // Bus-level constraints (shared across ranks on this controller).
    Cycle nextReadCmd_ = 0;
    Cycle nextWriteCmd_ = 0;
    std::vector<Cycle> nextReadCmdGroup_;  ///< per (rank, group): tCCDL
    std::vector<Cycle> nextWriteCmdGroup_;
    Cycle busFreeAt_ = 0;

    /** In-flight reads ordered by completion cycle. */
    std::deque<std::pair<Cycle, mem::MemRequest>> pendingResponses_;

    Counter reads_, writes_, rowHits_, rowMisses_, rowConflicts_;
    Counter activates_, precharges_, refreshes_, busBusy_;
    Counter readQueueFullEvents_, writeQueueFullEvents_;
    std::vector<Counter> rankActivates_, rankBursts_;
    Histogram readLatency_;
    IntervalSampler readDepth_, writeDepth_;

    // Event tracing (null when untraced; single-writer like the stats).
    obs::TraceShard *trace_ = nullptr;
    std::vector<std::uint32_t> traceBankTracks_;
    std::uint32_t traceReadDepth_ = 0, traceWriteDepth_ = 0;
    std::uint32_t nameAct_ = 0, namePre_ = 0, nameRead_ = 0;
    std::uint32_t nameWrite_ = 0, nameRef_ = 0;

    void sampleDepths();

    StatGroup stats_;
};

} // namespace menda::dram

#endif // MENDA_DRAM_CONTROLLER_HH
