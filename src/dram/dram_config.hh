/**
 * @file
 * DDR4 device organization and timing parameters.
 *
 * Defaults reproduce Tab. 1: standard DDR4_2400R, 4Gb x8 devices,
 * 32-entry RD/WR queues with FRFCFS_PriorHit scheduling, and the listed
 * timing constraints (in memory-clock cycles at 1200 MHz). Parameters the
 * table omits (write recovery, turnarounds, refresh) use JEDEC DDR4-2400
 * values.
 */

#ifndef MENDA_DRAM_DRAM_CONFIG_HH
#define MENDA_DRAM_DRAM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace menda::dram
{

/**
 * Physical-to-DRAM address mapping policy.
 *
 * BankGroupInterleaved (default) places the bank-group bits directly
 * above the block offset: back-to-back blocks of a sequential stream
 * rotate bank groups, so consecutive bursts are spaced by tCCD_S (= the
 * burst length) and the data bus can saturate — the standard DDR4
 * layout trick. RowBufferContiguous keeps a whole row buffer contiguous
 * instead (column bits first); sequential bursts then stay within one
 * bank group and are spaced by the longer tCCD_L, capping streaming
 * bandwidth at tBL/tCCD_L (= 2/3 for DDR4-2400). The ablation bench
 * quantifies the difference.
 */
enum class AddressMapping : std::uint8_t
{
    BankGroupInterleaved,
    RowBufferContiguous,
};

struct DramConfig
{
    // --- organization (4Gb x8, 64-bit rank) ---
    unsigned ranks = 1;          ///< ranks sharing this controller's bus
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rowsPerBank = 32768;
    unsigned rowBufferBytes = 8192;  ///< per rank (1 KB per x8 device * 8)

    // --- clocking ---
    std::uint64_t freqMhz = 1200;    ///< memory clock (DDR4-2400)

    // --- timing constraints, in memory-clock cycles (Tab. 1) ---
    unsigned tRC = 55;
    unsigned tRCD = 16;
    unsigned tCL = 16;
    unsigned tRP = 16;
    unsigned tBL = 4;
    unsigned tCCDS = 4;
    unsigned tCCDL = 6;
    unsigned tRRDS = 4;
    unsigned tRRDL = 6;
    unsigned tFAW = 26;
    // JEDEC DDR4-2400 values for constraints not listed in Tab. 1:
    unsigned tRAS = 39;   ///< tRC - tRP
    unsigned tCWL = 12;
    unsigned tWR = 18;    ///< 15 ns
    unsigned tWTRS = 3;   ///< 2.5 ns
    unsigned tWTRL = 9;   ///< 7.5 ns
    unsigned tRTP = 9;    ///< 7.5 ns
    unsigned tREFI = 9360; ///< 7.8 us
    unsigned tRFC = 312;   ///< 260 ns (4 Gb)

    // --- address mapping ---
    AddressMapping mapping = AddressMapping::BankGroupInterleaved;

    // --- scheduling (Tab. 1) ---
    unsigned readQueueEntries = 32;
    unsigned writeQueueEntries = 32;
    unsigned writeHighWatermark = 24; ///< start draining writes
    unsigned writeLowWatermark = 8;   ///< stop draining writes
    bool refreshEnabled = true;

    /**
     * Schedule with the original per-cycle linear queue scans instead of
     * the indexed per-bank structures. Both implement the same
     * FRFCFS_PriorHit policy and must produce bit-identical command
     * streams; the scan path is kept as a differential-testing oracle
     * (test_dram_sched_diff), not for production use.
     */
    bool referenceScheduler = false;

    /**
     * Period, in memory-clock cycles, of the controller's queue-depth
     * samplers. 0 disables sampling (see PuConfig::samplePeriod for the
     * idle-skip interaction).
     */
    std::uint64_t samplePeriod = 0;

    /** Total banks visible to this controller. */
    unsigned totalBanks() const { return ranks * bankGroups * banksPerGroup; }

    /** Capacity in bytes of one rank. */
    std::uint64_t rankBytes() const
    {
        return static_cast<std::uint64_t>(bankGroups) * banksPerGroup *
               rowsPerBank * rowBufferBytes;
    }

    /** Capacity in bytes of all ranks behind this controller. */
    std::uint64_t totalBytes() const { return rankBytes() * ranks; }

    /** Peak data bandwidth of the shared bus in bytes/second. */
    double peakBandwidth() const
    {
        // 64 B per tBL cycles.
        return static_cast<double>(blockBytes) / tBL * freqMhz * 1e6;
    }

    /** Tab. 1 configuration. @p n_ranks ranks share one bus. */
    static DramConfig ddr4_2400r(unsigned n_ranks = 1);
};

} // namespace menda::dram

#endif // MENDA_DRAM_DRAM_CONFIG_HH
