/**
 * @file
 * Physical address → DRAM coordinate decoding.
 *
 * Bit layout (LSB → MSB): block offset (6b) | bank group | column block |
 * bank | rank | row. Interleaving bank groups at block granularity is the
 * standard DDR4 trick: back-to-back bursts of a sequential stream land in
 * different bank groups, so they are spaced by tCCD_S (= tBL) rather than
 * the longer tCCD_L and the data bus can saturate. A sequential stream
 * walks the open rows of all four bank groups in parallel (row hits),
 * larger strides rotate banks, and rank bits sit below the row bits so
 * contiguous chunks switch ranks only at large granularity.
 */

#ifndef MENDA_DRAM_ADDRESS_HH
#define MENDA_DRAM_ADDRESS_HH

#include "common/types.hh"
#include "dram/dram_config.hh"
#include "mem/request.hh"

namespace menda::dram
{

/** Decoded DRAM coordinates of one block address. */
struct DramCoord
{
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned columnBlock = 0;

    /** Flat bank id across ranks/groups for state lookup. */
    unsigned
    flatBank(const DramConfig &config) const
    {
        return (rank * config.bankGroups + bankGroup) *
                   config.banksPerGroup + bank;
    }

    bool operator==(const DramCoord &other) const = default;

    /**
     * Cache into a request's decoded-coordinate fields at enqueue, so
     * scheduler code never re-decodes (or unpacks) an address.
     */
    mem::DecodedCoord
    toDecoded(const DramConfig &config) const
    {
        mem::DecodedCoord decoded;
        decoded.rank = rank;
        decoded.bankGroup = bankGroup;
        decoded.bank = bank;
        decoded.row = row;
        decoded.columnBlock = columnBlock;
        decoded.flatBank = flatBank(config);
        return decoded;
    }

    static DramCoord
    fromDecoded(const mem::DecodedCoord &decoded)
    {
        return DramCoord{decoded.rank, decoded.bankGroup, decoded.bank,
                         decoded.row, decoded.columnBlock};
    }
};

/** The address decoder in the memory interface unit (Sec. 3.2). */
class AddressDecoder
{
  public:
    explicit AddressDecoder(const DramConfig &config);

    /** Decode @p addr; wraps modulo the controller's capacity. */
    DramCoord decode(Addr addr) const;

    /** Recompose coordinates into a block-aligned address (for tests). */
    Addr encode(const DramCoord &coord) const;

  private:
    unsigned columnBits_;
    unsigned bankGroupBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned rowBits_;
    DramConfig config_;
};

} // namespace menda::dram

#endif // MENDA_DRAM_ADDRESS_HH
