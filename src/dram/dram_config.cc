#include "dram/dram_config.hh"

#include "common/log.hh"

namespace menda::dram
{

DramConfig
DramConfig::ddr4_2400r(unsigned n_ranks)
{
    menda_assert(n_ranks > 0, "need at least one rank");
    DramConfig config;
    config.ranks = n_ranks;
    return config;
}

} // namespace menda::dram
