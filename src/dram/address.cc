#include "dram/address.hh"

#include <bit>

#include "common/log.hh"

namespace menda::dram
{

namespace
{

unsigned
log2Exact(std::uint64_t value, const char *what)
{
    if (value == 0 || (value & (value - 1)) != 0)
        menda_fatal("DRAM ", what, " (", value, ") must be a power of two");
    return static_cast<unsigned>(std::countr_zero(value));
}

} // namespace

AddressDecoder::AddressDecoder(const DramConfig &config) : config_(config)
{
    columnBits_ = log2Exact(config.rowBufferBytes / blockBytes,
                            "blocks per row");
    bankGroupBits_ = log2Exact(config.bankGroups, "bank groups");
    bankBits_ = log2Exact(config.banksPerGroup, "banks per group");
    rankBits_ = log2Exact(config.ranks, "ranks");
    rowBits_ = log2Exact(config.rowsPerBank, "rows per bank");
}

DramCoord
AddressDecoder::decode(Addr addr) const
{
    Addr bits = addr >> 6; // strip block offset
    DramCoord coord;
    auto take = [&bits](unsigned width) {
        const unsigned value =
            static_cast<unsigned>(bits & ((1ull << width) - 1));
        bits >>= width;
        return value;
    };
    if (config_.mapping == AddressMapping::BankGroupInterleaved) {
        coord.bankGroup = take(bankGroupBits_);
        coord.columnBlock = take(columnBits_);
    } else {
        coord.columnBlock = take(columnBits_);
        coord.bankGroup = take(bankGroupBits_);
    }
    coord.bank = take(bankBits_);
    coord.rank = take(rankBits_);
    coord.row = take(rowBits_);
    return coord;
}

Addr
AddressDecoder::encode(const DramCoord &coord) const
{
    Addr bits = coord.row;
    bits = (bits << rankBits_) | coord.rank;
    bits = (bits << bankBits_) | coord.bank;
    if (config_.mapping == AddressMapping::BankGroupInterleaved) {
        bits = (bits << columnBits_) | coord.columnBlock;
        bits = (bits << bankGroupBits_) | coord.bankGroup;
    } else {
        bits = (bits << bankGroupBits_) | coord.bankGroup;
        bits = (bits << columnBits_) | coord.columnBlock;
    }
    return bits << 6;
}

} // namespace menda::dram
