#include "dram/controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace menda::dram
{

MemoryController::MemoryController(std::string name,
                                   const DramConfig &config, bool coalesce)
    : name_(std::move(name)),
      config_(config),
      decoder_(config),
      readQueue_(config.readQueueEntries, coalesce),
      writeQueue_(config.writeQueueEntries, false),
      banks_(config.totalBanks()),
      ranks_(config.ranks),
      nextReadCmdGroup_(config.ranks * config.bankGroups, 0),
      nextWriteCmdGroup_(config.ranks * config.bankGroups, 0),
      stats_(name_)
{
    for (auto &rank : ranks_) {
        rank.nextActGroup.assign(config.bankGroups, 0);
        rank.nextRefresh = config.tREFI;
    }
    openRowHitsRead_.assign(config.totalBanks(), 0);
    openRowHitsWrite_.assign(config.totalBanks(), 0);
    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("rowHits", rowHits_);
    stats_.add("rowMisses", rowMisses_);
    stats_.add("rowConflicts", rowConflicts_);
    stats_.add("activates", activates_);
    stats_.add("precharges", precharges_);
    stats_.add("refreshes", refreshes_);
    stats_.add("busBusyCycles", busBusy_);
    stats_.add("readQueueFull", readQueueFullEvents_);
    stats_.add("writeQueueFull", writeQueueFullEvents_);
    readQueue_.registerStats(stats_, "readQueue");
    writeQueue_.registerStats(stats_, "writeQueue");
}

bool
MemoryController::enqueue(const mem::MemRequest &req)
{
    mem::MemRequest aligned = req;
    aligned.addr = blockAlign(req.addr) % config_.totalBytes();
    const DramCoord coord = decoder_.decode(aligned.addr);
    aligned.decodeHint = coord.pack();

    mem::RequestQueue &queue = aligned.isWrite ? writeQueue_ : readQueue_;
    const std::size_t before = queue.size();
    if (!queue.enqueue(aligned)) {
        ++(aligned.isWrite ? writeQueueFullEvents_
                           : readQueueFullEvents_);
        return false;
    }
    if (queue.size() > before) {
        // A fresh slot (not a coalesced merge): track open-row hits.
        const Bank &bank = bankAt(coord);
        if (bank.open && bank.openRow == coord.row)
            ++openRowWaiters(aligned.isWrite)[coord.flatBank(config_)];
    }
    return true;
}

bool
MemoryController::idle() const
{
    return readQueue_.empty() && writeQueue_.empty() &&
           pendingResponses_.empty();
}

Cycle
MemoryController::quiescentFor() const
{
    if (!idle())
        return 0;
    Cycle window = ~Cycle(0);
    if (config_.refreshEnabled) {
        for (const RankState &rank : ranks_) {
            if (rank.refreshing || now_ >= rank.nextRefresh)
                return 0;
            window = std::min(window, rank.nextRefresh - now_);
        }
    }
    return window;
}

void
MemoryController::tick()
{
    // Deliver read data whose burst completed.
    while (!pendingResponses_.empty() &&
           pendingResponses_.front().first <= now_) {
        const mem::MemRequest &resp = pendingResponses_.front().second;
        if (callback_ && (!responseFilter_ || responseFilter_(resp)))
            callback_(resp);
        pendingResponses_.pop_front();
    }

    commandIssued_ = false;
    maybeRefresh();

    if (!commandIssued_ && !(readQueue_.empty() && writeQueue_.empty())) {
        // Write-drain hysteresis: start at the high watermark or when no
        // reads are pending; stop at the low watermark.
        if (drainingWrites_) {
            if (writeQueue_.size() <= config_.writeLowWatermark)
                drainingWrites_ = false;
        } else {
            if (writeQueue_.size() >= config_.writeHighWatermark ||
                (readQueue_.empty() && !writeQueue_.empty()))
                drainingWrites_ = true;
        }

        if (drainingWrites_) {
            if (!pickAndIssue(writeQueue_, true))
                pickAndIssue(readQueue_, false);
        } else {
            pickAndIssue(readQueue_, false);
        }
    }

    ++now_;
}

bool
MemoryController::pickAndIssue(mem::RequestQueue &queue, bool is_write)
{
    if (queue.empty())
        return false;

    // Pass 1 — FR: oldest request that is a row hit and ready to launch.
    // Globally gated: no burst of this type can issue before the bus
    // tCCD/turnaround horizon, so skip the scan entirely until then.
    const Cycle burst_gate = is_write ? nextWriteCmd_ : nextReadCmd_;
    if (now_ >= burst_gate) {
        for (std::size_t i = 0; i < queue.size(); ++i) {
            bool served = false;
            if (tryIssueFor(queue.at(i), is_write, true, served)) {
                if (served)
                    queue.remove(i);
                return true;
            }
        }
    }
    // Pass 2 — FCFS: oldest request for which any command can issue.
    // The scan window is bounded, as in real schedulers.
    const std::size_t window = std::min<std::size_t>(queue.size(), 16);
    for (std::size_t i = 0; i < window; ++i) {
        bool served = false;
        if (tryIssueFor(queue.at(i), is_write, false, served)) {
            if (served)
                queue.remove(i);
            return true;
        }
    }
    return false;
}

bool
MemoryController::tryIssueFor(const mem::MemRequest &req, bool is_write,
                              bool hits_only, bool &served)
{
    const DramCoord coord = DramCoord::unpack(req.decodeHint);
    const RankState &rank = ranks_[coord.rank];
    if (rank.refreshing ||
        (config_.refreshEnabled && now_ >= rank.nextRefresh))
        return false; // rank is (about to be) refreshing

    Bank &bank = bankAt(coord);
    const bool hit = bank.open && bank.openRow == coord.row;

    if (hit) {
        if (is_write ? canWrite(bank, coord) : canRead(bank, coord)) {
            const unsigned fb = coord.flatBank(config_);
            menda_assert(openRowWaiters(is_write)[fb] > 0,
                         "open-row waiter underflow");
            --openRowWaiters(is_write)[fb];
            issueBurst(coord, req, is_write);
            served = true;
            return true;
        }
        return false; // ready soon; don't waste the slot elsewhere
    }
    if (hits_only)
        return false;

    if (!bank.open) {
        if (canActivate(coord)) {
            issueActivate(coord);
            ++rowMisses_;
            return true;
        }
        return false;
    }

    // Row conflict. PriorHit: keep the open row while a request in the
    // queue being scheduled still hits it; otherwise precharge. Only the
    // scheduled queue counts — a write hit must not pin a row against
    // conflicting reads while write draining is far away (and vice
    // versa), or the conflicting side stalls for a whole drain period.
    if (openRowWaiters(is_write)[coord.flatBank(config_)] > 0)
        return false;
    if (canPrecharge(bank)) {
        issuePrecharge(coord);
        ++rowConflicts_;
        return true;
    }
    return false;
}

bool
MemoryController::canActivate(const DramCoord &coord) const
{
    const Bank &bank = bankAt(coord);
    const RankState &rank = ranks_[coord.rank];
    if (bank.open)
        return false;
    if (now_ < bank.nextActivate || now_ < rank.nextActAny ||
        now_ < rank.nextActGroup[coord.bankGroup])
        return false;
    if (rank.actWindow.size() >= 4 &&
        now_ < rank.actWindow[rank.actWindow.size() - 4] + config_.tFAW)
        return false;
    return true;
}

bool
MemoryController::canPrecharge(const Bank &bank) const
{
    return bank.open && now_ >= bank.nextPrecharge;
}

bool
MemoryController::canRead(const Bank &bank, const DramCoord &coord) const
{
    const unsigned group = coord.rank * config_.bankGroups + coord.bankGroup;
    return now_ >= bank.nextRead && now_ >= nextReadCmd_ &&
           now_ >= nextReadCmdGroup_[group] &&
           now_ + config_.tCL >= busFreeAt_;
}

bool
MemoryController::canWrite(const Bank &bank, const DramCoord &coord) const
{
    const unsigned group = coord.rank * config_.bankGroups + coord.bankGroup;
    return now_ >= bank.nextWrite && now_ >= nextWriteCmd_ &&
           now_ >= nextWriteCmdGroup_[group] &&
           now_ + config_.tCWL >= busFreeAt_;
}

void
MemoryController::issueActivate(const DramCoord &coord)
{
    Bank &bank = bankAt(coord);
    RankState &rank = ranks_[coord.rank];
    bank.open = true;
    bank.openRow = coord.row;
    bank.nextRead = now_ + config_.tRCD;
    bank.nextWrite = now_ + config_.tRCD;
    bank.nextPrecharge = std::max<Cycle>(bank.nextPrecharge,
                                         now_ + config_.tRAS);
    bank.nextActivate = now_ + config_.tRC;
    rank.nextActAny = std::max<Cycle>(rank.nextActAny, now_ + config_.tRRDS);
    rank.nextActGroup[coord.bankGroup] =
        std::max<Cycle>(rank.nextActGroup[coord.bankGroup],
                        now_ + config_.tRRDL);
    rank.actWindow.push_back(now_);
    while (rank.actWindow.size() > 8)
        rank.actWindow.pop_front();
    recountOpenRowWaiters(coord);
    ++activates_;
    commandIssued_ = true;
    if (commandCallback_)
        commandCallback_(CommandType::Activate, coord, now_);
}

void
MemoryController::recountOpenRowWaiters(const DramCoord &coord)
{
    const unsigned fb = coord.flatBank(config_);
    const Bank &bank = bankAt(coord);
    openRowHitsRead_[fb] = 0;
    openRowHitsWrite_[fb] = 0;
    if (!bank.open)
        return;
    for (std::size_t i = 0; i < readQueue_.size(); ++i) {
        DramCoord other =
            DramCoord::unpack(readQueue_.at(i).decodeHint);
        if (other.flatBank(config_) == fb && other.row == bank.openRow)
            ++openRowHitsRead_[fb];
    }
    for (std::size_t i = 0; i < writeQueue_.size(); ++i) {
        DramCoord other =
            DramCoord::unpack(writeQueue_.at(i).decodeHint);
        if (other.flatBank(config_) == fb && other.row == bank.openRow)
            ++openRowHitsWrite_[fb];
    }
}

void
MemoryController::issuePrecharge(const DramCoord &coord)
{
    Bank &bank = bankAt(coord);
    bank.open = false;
    bank.nextActivate = std::max<Cycle>(bank.nextActivate,
                                        now_ + config_.tRP);
    const unsigned fb = coord.flatBank(config_);
    openRowHitsRead_[fb] = 0;
    openRowHitsWrite_[fb] = 0;
    ++precharges_;
    commandIssued_ = true;
    if (commandCallback_)
        commandCallback_(CommandType::Precharge, coord, now_);
}

void
MemoryController::issueBurst(const DramCoord &coord,
                             const mem::MemRequest &req, bool is_write)
{
    Bank &bank = bankAt(coord);
    const unsigned group = coord.rank * config_.bankGroups + coord.bankGroup;
    busBusy_ += config_.tBL;
    if (is_write) {
        busFreeAt_ = now_ + config_.tCWL + config_.tBL;
        nextWriteCmd_ = std::max<Cycle>(nextWriteCmd_, now_ + config_.tCCDS);
        nextWriteCmdGroup_[group] =
            std::max<Cycle>(nextWriteCmdGroup_[group], now_ + config_.tCCDL);
        // Write-to-read turnaround.
        const Cycle wtr = now_ + config_.tCWL + config_.tBL;
        nextReadCmd_ = std::max<Cycle>(nextReadCmd_, wtr + config_.tWTRS);
        nextReadCmdGroup_[group] =
            std::max<Cycle>(nextReadCmdGroup_[group], wtr + config_.tWTRL);
        bank.nextPrecharge = std::max<Cycle>(
            bank.nextPrecharge, now_ + config_.tCWL + config_.tBL +
                                    config_.tWR);
        ++writes_;
    } else {
        busFreeAt_ = now_ + config_.tCL + config_.tBL;
        nextReadCmd_ = std::max<Cycle>(nextReadCmd_, now_ + config_.tCCDS);
        nextReadCmdGroup_[group] =
            std::max<Cycle>(nextReadCmdGroup_[group], now_ + config_.tCCDL);
        // Read-to-write turnaround: write burst must not collide.
        nextWriteCmd_ = std::max<Cycle>(
            nextWriteCmd_,
            now_ + config_.tCL + config_.tBL + 2 - config_.tCWL);
        bank.nextPrecharge = std::max<Cycle>(bank.nextPrecharge,
                                             now_ + config_.tRTP);
        pendingResponses_.emplace_back(now_ + config_.tCL + config_.tBL,
                                       req);
        ++reads_;
    }
    commandIssued_ = true;
    if (commandCallback_)
        commandCallback_(is_write ? CommandType::Write
                                  : CommandType::Read,
                         coord, now_);
}

void
MemoryController::maybeRefresh()
{
    if (!config_.refreshEnabled)
        return;
    for (unsigned r = 0; r < config_.ranks; ++r) {
        RankState &rank = ranks_[r];
        if (rank.refreshing) {
            if (now_ >= rank.refreshDone)
                rank.refreshing = false;
            else
                continue;
        }
        if (now_ < rank.nextRefresh || commandIssued_)
            continue;
        // Close all banks of this rank, one precharge per cycle.
        bool all_closed = true;
        for (unsigned g = 0; g < config_.bankGroups && !commandIssued_;
             ++g) {
            for (unsigned b = 0; b < config_.banksPerGroup; ++b) {
                DramCoord coord{r, g, b, 0, 0};
                Bank &bank = bankAt(coord);
                if (!bank.open)
                    continue;
                all_closed = false;
                if (canPrecharge(bank)) {
                    issuePrecharge(coord);
                    break;
                }
            }
        }
        if (!all_closed || commandIssued_)
            continue;
        // All banks precharged: issue REF.
        rank.refreshing = true;
        rank.refreshDone = now_ + config_.tRFC;
        rank.nextRefresh += config_.tREFI;
        for (unsigned g = 0; g < config_.bankGroups; ++g) {
            for (unsigned b = 0; b < config_.banksPerGroup; ++b) {
                DramCoord coord{r, g, b, 0, 0};
                bankAt(coord).nextActivate = rank.refreshDone;
            }
        }
        ++refreshes_;
        commandIssued_ = true;
        if (commandCallback_)
            commandCallback_(CommandType::Refresh, DramCoord{r, 0, 0, 0, 0},
                             now_);
    }
}

double
MemoryController::achievedBandwidth(Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(cycles) / (config_.freqMhz * 1e6);
    return static_cast<double>(bytesTransferred()) / seconds;
}

} // namespace menda::dram
