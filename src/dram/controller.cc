#include "dram/controller.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"

namespace menda::dram
{

namespace
{

/**
 * Fault-injection hook for the conformance harness: when the
 * MENDA_TEST_FLIP_TIEBREAK environment variable is set (to anything),
 * the indexed scheduler's FR-pass tie-break picks the *youngest* request
 * among equally-ready banks instead of the oldest. The reference
 * scheduler is unaffected, so the divergence surfaces as a cross-variant
 * metric mismatch. Read once; never set outside the harness's own tests.
 */
bool
flipTieBreak()
{
    static const bool flip =
        std::getenv("MENDA_TEST_FLIP_TIEBREAK") != nullptr;
    return flip;
}

} // namespace

MemoryController::MemoryController(std::string name,
                                   const DramConfig &config, bool coalesce)
    : name_(std::move(name)),
      config_(config),
      decoder_(config),
      readQueue_(config.readQueueEntries, coalesce),
      writeQueue_(config.writeQueueEntries, false),
      banks_(config.totalBanks()),
      ranks_(config.ranks),
      nextReadCmdGroup_(config.ranks * config.bankGroups, 0),
      nextWriteCmdGroup_(config.ranks * config.bankGroups, 0),
      rankActivates_(config.ranks),
      rankBursts_(config.ranks),
      stats_(name_)
{
    for (auto &rank : ranks_) {
        rank.nextActGroup.assign(config.bankGroups, 0);
        rank.nextRefresh = config.tREFI;
    }
    openRowHitsRead_.assign(config.totalBanks(), 0);
    openRowHitsWrite_.assign(config.totalBanks(), 0);
    for (BankIndex *index : {&readIndex_, &writeIndex_}) {
        index->head.assign(config.totalBanks(), mem::RequestQueue::npos);
        index->tail.assign(config.totalBanks(), mem::RequestQueue::npos);
        index->key.assign(config.totalBanks(), BankIndex::kNoKey);
        index->livePos.assign(config.totalBanks(),
                              mem::RequestQueue::npos);
        index->live.reserve(config.totalBanks());
    }
    readIndex_.next.assign(config.readQueueEntries,
                           mem::RequestQueue::npos);
    readIndex_.prev.assign(config.readQueueEntries,
                           mem::RequestQueue::npos);
    writeIndex_.next.assign(config.writeQueueEntries,
                            mem::RequestQueue::npos);
    writeIndex_.prev.assign(config.writeQueueEntries,
                            mem::RequestQueue::npos);
    scratchBanks_.reserve(config.totalBanks());
    scratchRekeys_.reserve(config.totalBanks());
    stats_.add("reads", reads_);
    stats_.add("writes", writes_);
    stats_.add("rowHits", rowHits_);
    stats_.add("rowMisses", rowMisses_);
    stats_.add("rowConflicts", rowConflicts_);
    stats_.add("activates", activates_);
    stats_.add("precharges", precharges_);
    stats_.add("refreshes", refreshes_);
    stats_.add("busBusyCycles", busBusy_);
    stats_.add("readQueueFull", readQueueFullEvents_);
    stats_.add("writeQueueFull", writeQueueFullEvents_);
    for (unsigned r = 0; r < config_.ranks; ++r) {
        stats_.add("rank" + std::to_string(r) + ".activates",
                   rankActivates_[r]);
        stats_.add("rank" + std::to_string(r) + ".bursts",
                   rankBursts_[r]);
    }
    stats_.add("readLatency", readLatency_);
    readDepth_.configure(config_.samplePeriod);
    writeDepth_.configure(config_.samplePeriod);
    stats_.add("readQueueDepth", readDepth_);
    stats_.add("writeQueueDepth", writeDepth_);
    readQueue_.registerStats(stats_, "readQueue");
    writeQueue_.registerStats(stats_, "writeQueue");
}

void
MemoryController::attachTrace(obs::TraceShard *shard)
{
    trace_ = shard;
    traceBankTracks_.clear();
    for (unsigned fb = 0; fb < config_.totalBanks(); ++fb)
        traceBankTracks_.push_back(
            shard->addTrack(name_ + ".bank" + std::to_string(fb),
                            obs::TrackKind::Instant, config_.freqMhz));
    traceReadDepth_ = shard->addTrack(name_ + ".readQueueDepth",
                                      obs::TrackKind::Counter,
                                      config_.freqMhz);
    traceWriteDepth_ = shard->addTrack(name_ + ".writeQueueDepth",
                                       obs::TrackKind::Counter,
                                       config_.freqMhz);
    nameAct_ = shard->internName("ACT");
    namePre_ = shard->internName("PRE");
    nameRead_ = shard->internName("RD");
    nameWrite_ = shard->internName("WR");
    nameRef_ = shard->internName("REF");
}

bool
MemoryController::enqueue(const mem::MemRequest &req)
{
    mem::MemRequest aligned = req;
    aligned.addr = blockAlign(req.addr) % config_.totalBytes();
    aligned.enqueuedAt = now_;
    const DramCoord coord = decoder_.decode(aligned.addr);
    aligned.coord = coord.toDecoded(config_);

    mem::RequestQueue &queue = aligned.isWrite ? writeQueue_ : readQueue_;
    std::uint32_t slot = mem::RequestQueue::npos;
    const mem::RequestQueue::Insert outcome = queue.insert(aligned, slot);
    if (outcome == mem::RequestQueue::Insert::Rejected) {
        ++(aligned.isWrite ? writeQueueFullEvents_
                           : readQueueFullEvents_);
        return false;
    }
    if (outcome == mem::RequestQueue::Insert::Fresh) {
        // A fresh slot (not a coalesced merge): track open-row hits.
        const unsigned fb = aligned.coord.flatBank;
        const Bank &bank = banks_[fb];
        if (bank.open && bank.openRow == coord.row)
            ++openRowWaiters(aligned.isWrite)[fb];
        if (!config_.referenceScheduler) {
            linkSlot(bankIndex(aligned.isWrite), fb, slot);
            rekeyBank(aligned.isWrite, fb, 0);
        }
    }
    return true;
}

bool
MemoryController::idle() const
{
    return readQueue_.empty() && writeQueue_.empty() &&
           pendingResponses_.empty();
}

bool
MemoryController::willDrainWrites() const
{
    if (drainingWrites_)
        return writeQueue_.size() > config_.writeLowWatermark;
    return writeQueue_.size() >= config_.writeHighWatermark ||
           (readQueue_.empty() && !writeQueue_.empty());
}

Cycle
MemoryController::indexWindow(const BankIndex &index) const
{
    // Keys are lower bounds: one that already lapsed (a bank that lost a
    // tie-break or sits outside the FCFS window keeps its old key) just
    // collapses the window to zero — never overshoots it.
    Cycle min_key = BankIndex::kNoKey;
    for (const unsigned fb : index.live)
        min_key = std::min(min_key, index.key[fb]);
    if (min_key == BankIndex::kNoKey)
        return ~Cycle(0);
    return min_key > now_ ? min_key - now_ : 0;
}

Cycle
MemoryController::quiescentFor() const
{
    Cycle window = ~Cycle(0);
    if (!pendingResponses_.empty()) {
        const Cycle due = pendingResponses_.front().first;
        if (due <= now_)
            return 0;
        window = std::min(window, due - now_);
    }
    if (config_.refreshEnabled) {
        for (const RankState &rank : ranks_) {
            const Cycle deadline =
                rank.refreshing ? rank.refreshDone : rank.nextRefresh;
            if (now_ >= deadline)
                return 0;
            window = std::min(window, deadline - now_);
        }
    }
    if (config_.referenceScheduler) {
        // The oracle rescans its queues every cycle; only a fully idle
        // controller can skip.
        if (!(readQueue_.empty() && writeQueue_.empty()))
            return 0;
        return window;
    }
    // Indexed path. The write-drain hysteresis bit is real state: a tick
    // that flips it is not a no-op even when no command issues (with an
    // empty read queue and a write backlog at or below the low watermark
    // the dense schedule alternates off/on, issuing a write every other
    // cycle — skipping would lose the flip parity). Only skip while the
    // bit is stable; queue sizes cannot change inside a no-op window, so
    // stability holds across the whole window once it holds now.
    const bool draining_next = willDrainWrites();
    if (draining_next != drainingWrites_)
        return 0;
    // The scheduler consults the write index only while draining (with
    // reads as the drain fallback), otherwise only the read index.
    if (draining_next) {
        window = std::min(window, indexWindow(writeIndex_));
        window = std::min(window, indexWindow(readIndex_));
    } else if (!readQueue_.empty()) {
        window = std::min(window, indexWindow(readIndex_));
    }
    return window;
}

void
MemoryController::sampleDepths()
{
    const std::size_t before = readDepth_.values().size();
    readDepth_.sample(now_, readQueue_.size());
    writeDepth_.sample(now_, writeQueue_.size());
    if (trace_ && readDepth_.values().size() != before) {
        trace_->counter(traceReadDepth_, now_, readQueue_.size());
        trace_->counter(traceWriteDepth_, now_, writeQueue_.size());
    }
}

void
MemoryController::tick()
{
    if (readDepth_.enabled())
        sampleDepths();

    // Deliver read data whose burst completed.
    while (!pendingResponses_.empty() &&
           pendingResponses_.front().first <= now_) {
        const mem::MemRequest &resp = pendingResponses_.front().second;
        readLatency_.record(now_ - resp.enqueuedAt);
        if (callback_ && (!responseFilter_ || responseFilter_(resp)))
            callback_(resp);
        pendingResponses_.pop_front();
    }

    commandIssued_ = false;
    maybeRefresh();

    if (!commandIssued_ && !(readQueue_.empty() && writeQueue_.empty())) {
        // Write-drain hysteresis: start at the high watermark or when no
        // reads are pending; stop at the low watermark.
        if (drainingWrites_) {
            if (writeQueue_.size() <= config_.writeLowWatermark)
                drainingWrites_ = false;
        } else {
            if (writeQueue_.size() >= config_.writeHighWatermark ||
                (readQueue_.empty() && !writeQueue_.empty()))
                drainingWrites_ = true;
        }

        if (drainingWrites_) {
            if (!pickAndIssue(writeQueue_, true))
                pickAndIssue(readQueue_, false);
        } else {
            pickAndIssue(readQueue_, false);
        }
    }

    ++now_;
}

bool
MemoryController::pickAndIssue(mem::RequestQueue &queue, bool is_write)
{
    return config_.referenceScheduler
               ? pickAndIssueReference(queue, is_write)
               : pickAndIssueIndexed(queue, is_write);
}

bool
MemoryController::pickAndIssueReference(mem::RequestQueue &queue,
                                        bool is_write)
{
    if (queue.empty())
        return false;

    // Pass 1 — FR: oldest request that is a row hit and ready to launch.
    // Globally gated: no burst of this type can issue before the bus
    // tCCD/turnaround horizon, so skip the scan entirely until then.
    const Cycle burst_gate = is_write ? nextWriteCmd_ : nextReadCmd_;
    if (now_ >= burst_gate) {
        for (std::uint32_t s = queue.headSlot();
             s != mem::RequestQueue::npos; s = queue.nextSlot(s)) {
            bool served = false;
            if (tryIssueFor(queue.slotAt(s), is_write, true, served)) {
                if (served)
                    queue.removeSlot(s);
                return true;
            }
        }
    }
    // Pass 2 — FCFS: oldest request for which any command can issue.
    // The scan window is bounded, as in real schedulers.
    std::size_t window = std::min<std::size_t>(queue.size(), 16);
    for (std::uint32_t s = queue.headSlot(); window-- > 0;
         s = queue.nextSlot(s)) {
        bool served = false;
        if (tryIssueFor(queue.slotAt(s), is_write, false, served)) {
            if (served)
                queue.removeSlot(s);
            return true;
        }
    }
    return false;
}

bool
MemoryController::pickAndIssueIndexed(mem::RequestQueue &queue,
                                      bool is_write)
{
    if (queue.empty())
        return false;
    BankIndex &index = bankIndex(is_write);

    // Gather every bank whose conservative eligibility key has arrived;
    // all others provably cannot accept any command this cycle. Keys are
    // read in place — no reordering cost for banks that stay put.
    scratchBanks_.clear();
    for (const unsigned fb : index.live)
        if (index.key[fb] <= now_)
            scratchBanks_.push_back(fb);
    if (scratchBanks_.empty())
        return false;

    // Banks whose evaluation fails on a *timing* constraint are re-keyed
    // after the issue, so the fresh key already reflects this cycle's
    // command and lands past it. Banks that merely lose the oldest-first
    // tie-break, sit outside the FCFS window, or wait on a refresh gate
    // keep their lapsed key: re-scanning them is one integer compare per
    // cycle, cheaper than any re-key discipline.
    scratchRekeys_.clear();
    bool issued = false;
    const std::vector<std::uint32_t> &waiters = openRowWaiters(is_write);

    // Pass 1 — FR: oldest request that is a row hit and ready to launch,
    // globally gated by the bus tCCD/turnaround horizon. Burst readiness
    // is uniform across one bank's requests (the group is a function of
    // the bank), so each eligible bank contributes its oldest open-row
    // hit and the winner is the lowest request id — exactly the request
    // the reference full-queue scan stops at.
    const Cycle burst_gate = is_write ? nextWriteCmd_ : nextReadCmd_;
    const bool fr_ran = now_ >= burst_gate;
    if (fr_ran) {
        std::uint32_t best = mem::RequestQueue::npos;
        unsigned best_fb = 0;
        std::uint64_t best_id = 0;
        for (unsigned fb : scratchBanks_) {
            if (waiters[fb] == 0)
                continue;
            const RankState &rank = ranks_[rankOf(fb)];
            if (rank.refreshing ||
                (config_.refreshEnabled && now_ >= rank.nextRefresh))
                continue;
            const Bank &bank = banks_[fb];
            if (!(is_write ? canWrite(bank, groupIndexOf(fb))
                           : canRead(bank, groupIndexOf(fb)))) {
                scratchRekeys_.push_back(fb);
                continue;
            }
            std::uint32_t s = index.head[fb];
            while (queue.slotAt(s).coord.row != bank.openRow)
                s = index.next[s];
            const std::uint64_t id = queue.slotAt(s).id;
            if (best == mem::RequestQueue::npos ||
                (flipTieBreak() ? id > best_id : id < best_id)) {
                best = s;
                best_fb = fb;
                best_id = id;
            }
        }
        if (best != mem::RequestQueue::npos) {
            bool served = false;
            const bool ok =
                tryIssueFor(queue.slotAt(best), is_write, true, served);
            menda_assert(ok && served,
                         "indexed FR pick failed to issue a burst");
            unlinkSlot(index, best_fb, best);
            queue.removeSlot(best);
            rekeyBank(is_write, best_fb, 0);
            issued = true;
        }
    }

    // Pass 2 — FCFS: oldest request within the 16-entry window for which
    // a command can issue. Ready hits are exclusively pass-1 material
    // (if the FR pass ran, no hit anywhere is ready; if it was gated,
    // the same gate blocks hits here), so each bank's candidate is its
    // oldest request: ACT when the bank is closed, or PRE on a conflict
    // when no scheduled-queue request still hits the open row.
    if (!issued) {
        // The window boundary (id of the 16th-oldest entry) costs a
        // 15-hop list walk, so resolve it lazily: only when some bank's
        // head actually reaches the id comparison.
        std::uint64_t window_max_id = ~std::uint64_t(0);
        bool window_known = queue.size() <= 16;
        std::uint32_t best = mem::RequestQueue::npos;
        std::uint64_t best_id = 0;
        for (unsigned fb : scratchBanks_) {
            const std::uint32_t s = index.head[fb];
            if (s == mem::RequestQueue::npos)
                continue;
            const Bank &bank = banks_[fb];
            if (bank.open && waiters[fb] > 0) {
                // PriorHit: the open row stays pinned, so this bank only
                // ever issues bursts. If the FR pass ran it already
                // queued the re-key; a gated pass leaves it to us.
                if (!fr_ran)
                    scratchRekeys_.push_back(fb);
                continue;
            }
            const mem::MemRequest &req = queue.slotAt(s);
            if (!window_known) {
                std::uint32_t w = queue.headSlot();
                for (unsigned i = 0; i < 15; ++i)
                    w = queue.nextSlot(w);
                window_max_id = queue.slotAt(w).id;
                window_known = true;
            }
            if (req.id > window_max_id)
                continue;
            const RankState &rank = ranks_[rankOf(fb)];
            if (rank.refreshing ||
                (config_.refreshEnabled && now_ >= rank.nextRefresh))
                continue;
            if (bank.open) {
                if (!canPrecharge(bank)) {
                    scratchRekeys_.push_back(fb);
                    continue;
                }
            } else if (!canActivateAt(fb)) {
                scratchRekeys_.push_back(fb);
                continue;
            }
            if (best == mem::RequestQueue::npos || req.id < best_id) {
                best = s;
                best_id = req.id;
            }
        }
        if (best != mem::RequestQueue::npos) {
            bool served = false;
            const bool ok =
                tryIssueFor(queue.slotAt(best), is_write, false, served);
            menda_assert(ok && !served,
                         "indexed FCFS pick failed to issue ACT/PRE");
            issued = true;
        }
    }

    // Re-key the timing-blocked banks against post-issue state. A bank
    // that could not accept a command during this cycle's evaluation
    // cannot become eligible again before the next cycle.
    for (unsigned fb : scratchRekeys_)
        rekeyBank(is_write, fb, now_ + 1);
    return issued;
}

void
MemoryController::linkSlot(BankIndex &index, unsigned fb,
                           std::uint32_t slot)
{
    if (index.head[fb] == mem::RequestQueue::npos) {
        index.livePos[fb] = static_cast<std::uint32_t>(index.live.size());
        index.live.push_back(fb);
    }
    index.next[slot] = mem::RequestQueue::npos;
    index.prev[slot] = index.tail[fb];
    if (index.tail[fb] != mem::RequestQueue::npos)
        index.next[index.tail[fb]] = slot;
    else
        index.head[fb] = slot;
    index.tail[fb] = slot;
}

void
MemoryController::unlinkSlot(BankIndex &index, unsigned fb,
                             std::uint32_t slot)
{
    if (index.prev[slot] != mem::RequestQueue::npos)
        index.next[index.prev[slot]] = index.next[slot];
    else
        index.head[fb] = index.next[slot];
    if (index.next[slot] != mem::RequestQueue::npos)
        index.prev[index.next[slot]] = index.prev[slot];
    else
        index.tail[fb] = index.prev[slot];
    if (index.head[fb] == mem::RequestQueue::npos) {
        // Bank emptied: O(1) swap-remove from the live-bank list.
        const std::uint32_t pos = index.livePos[fb];
        const unsigned moved = index.live.back();
        index.live[pos] = moved;
        index.livePos[moved] = pos;
        index.live.pop_back();
        index.livePos[fb] = mem::RequestQueue::npos;
        index.key[fb] = BankIndex::kNoKey;
    }
}

Cycle
MemoryController::bankEligibleAt(bool is_write, unsigned fb) const
{
    const Bank &bank = banks_[fb];
    const RankState &rank = ranks_[rankOf(fb)];
    Cycle key;
    if (bank.open) {
        if (openRowWaiters(is_write)[fb] > 0) {
            // Burst candidate: bank CAS readiness plus the bus-level
            // horizons. Every term is monotone non-decreasing, so the
            // key can go stale early but never late.
            const unsigned group = groupIndexOf(fb);
            if (is_write) {
                key = std::max(bank.nextWrite, nextWriteCmd_);
                key = std::max(key, nextWriteCmdGroup_[group]);
                if (busFreeAt_ > config_.tCWL)
                    key = std::max(key, busFreeAt_ - config_.tCWL);
            } else {
                key = std::max(bank.nextRead, nextReadCmd_);
                key = std::max(key, nextReadCmdGroup_[group]);
                if (busFreeAt_ > config_.tCL)
                    key = std::max(key, busFreeAt_ - config_.tCL);
            }
        } else {
            // All queued requests conflict with the open row: precharge.
            key = bank.nextPrecharge;
        }
    } else {
        // Activate candidate: bank tRC plus the rank-level ACT horizons
        // (tRRD, tFAW) — also all monotone.
        key = std::max(bank.nextActivate, rank.nextActAny);
        key = std::max(
            key, rank.nextActGroup[(fb / config_.banksPerGroup) %
                                   config_.bankGroups]);
        if (rank.actCount == 4)
            key = std::max(key,
                           rank.actRing[rank.actHead] + config_.tFAW);
    }
    if (rank.refreshing)
        key = std::max(key, rank.refreshDone);
    return key;
}

void
MemoryController::rekeyBank(bool is_write, unsigned fb, Cycle floor)
{
    BankIndex &index = bankIndex(is_write);
    if (index.head[fb] == mem::RequestQueue::npos) {
        index.key[fb] = BankIndex::kNoKey;
        return;
    }
    index.key[fb] = std::max(bankEligibleAt(is_write, fb), floor);
}

void
MemoryController::rekeyRankBanks(unsigned rank)
{
    if (config_.referenceScheduler)
        return;
    const unsigned per_rank = config_.bankGroups * config_.banksPerGroup;
    for (unsigned fb = rank * per_rank; fb < (rank + 1) * per_rank; ++fb) {
        rekeyBank(false, fb, 0);
        rekeyBank(true, fb, 0);
    }
}

bool
MemoryController::tryIssueFor(const mem::MemRequest &req, bool is_write,
                              bool hits_only, bool &served)
{
    const DramCoord coord = DramCoord::fromDecoded(req.coord);
    const unsigned fb = req.coord.flatBank;
    const RankState &rank = ranks_[coord.rank];
    if (rank.refreshing ||
        (config_.refreshEnabled && now_ >= rank.nextRefresh))
        return false; // rank is (about to be) refreshing

    Bank &bank = banks_[fb];
    const bool hit = bank.open && bank.openRow == coord.row;

    if (hit) {
        if (is_write ? canWrite(bank, groupIndexOf(fb))
                     : canRead(bank, groupIndexOf(fb))) {
            menda_assert(openRowWaiters(is_write)[fb] > 0,
                         "open-row waiter underflow");
            --openRowWaiters(is_write)[fb];
            issueBurst(coord, req, is_write);
            served = true;
            return true;
        }
        return false; // ready soon; don't waste the slot elsewhere
    }
    if (hits_only)
        return false;

    if (!bank.open) {
        if (canActivateAt(fb)) {
            issueActivate(coord);
            ++rowMisses_;
            return true;
        }
        return false;
    }

    // Row conflict. PriorHit: keep the open row while a request in the
    // queue being scheduled still hits it; otherwise precharge. Only the
    // scheduled queue counts — a write hit must not pin a row against
    // conflicting reads while write draining is far away (and vice
    // versa), or the conflicting side stalls for a whole drain period.
    if (openRowWaiters(is_write)[fb] > 0)
        return false;
    if (canPrecharge(bank)) {
        issuePrecharge(coord);
        ++rowConflicts_;
        return true;
    }
    return false;
}

bool
MemoryController::canActivateAt(unsigned fb) const
{
    const Bank &bank = banks_[fb];
    const RankState &rank = ranks_[rankOf(fb)];
    if (bank.open)
        return false;
    if (now_ < bank.nextActivate || now_ < rank.nextActAny ||
        now_ < rank.nextActGroup[(fb / config_.banksPerGroup) %
                                 config_.bankGroups])
        return false;
    if (rank.actCount == 4 &&
        now_ < rank.actRing[rank.actHead] + config_.tFAW)
        return false;
    return true;
}

bool
MemoryController::canActivate(const DramCoord &coord) const
{
    return canActivateAt(coord.flatBank(config_));
}

bool
MemoryController::canPrecharge(const Bank &bank) const
{
    return bank.open && now_ >= bank.nextPrecharge;
}

bool
MemoryController::canRead(const Bank &bank, unsigned group_index) const
{
    return now_ >= bank.nextRead && now_ >= nextReadCmd_ &&
           now_ >= nextReadCmdGroup_[group_index] &&
           now_ + config_.tCL >= busFreeAt_;
}

bool
MemoryController::canWrite(const Bank &bank, unsigned group_index) const
{
    return now_ >= bank.nextWrite && now_ >= nextWriteCmd_ &&
           now_ >= nextWriteCmdGroup_[group_index] &&
           now_ + config_.tCWL >= busFreeAt_;
}

void
MemoryController::issueActivate(const DramCoord &coord)
{
    const unsigned fb = coord.flatBank(config_);
    Bank &bank = banks_[fb];
    RankState &rank = ranks_[coord.rank];
    bank.open = true;
    bank.openRow = coord.row;
    bank.nextRead = now_ + config_.tRCD;
    bank.nextWrite = now_ + config_.tRCD;
    bank.nextPrecharge = std::max<Cycle>(bank.nextPrecharge,
                                         now_ + config_.tRAS);
    bank.nextActivate = now_ + config_.tRC;
    rank.nextActAny = std::max<Cycle>(rank.nextActAny, now_ + config_.tRRDS);
    rank.nextActGroup[coord.bankGroup] =
        std::max<Cycle>(rank.nextActGroup[coord.bankGroup],
                        now_ + config_.tRRDL);
    if (rank.actCount < 4) {
        rank.actRing[(rank.actHead + rank.actCount) & 3] = now_;
        ++rank.actCount;
    } else {
        rank.actRing[rank.actHead] = now_;
        rank.actHead = (rank.actHead + 1) & 3;
    }
    if (config_.referenceScheduler) {
        recountOpenRowWaiters(coord);
    } else {
        recountBankWaiters(fb);
        rekeyBank(false, fb, 0);
        rekeyBank(true, fb, 0);
    }
    ++activates_;
    ++rankActivates_[coord.rank];
    commandIssued_ = true;
    if (trace_)
        trace_->instant(traceBankTracks_[fb], nameAct_, now_);
    if (commandCallback_)
        commandCallback_(CommandType::Activate, coord, now_);
}

void
MemoryController::recountOpenRowWaiters(const DramCoord &coord)
{
    const unsigned fb = coord.flatBank(config_);
    const Bank &bank = bankAt(coord);
    openRowHitsRead_[fb] = 0;
    openRowHitsWrite_[fb] = 0;
    if (!bank.open)
        return;
    for (std::uint32_t s = readQueue_.headSlot();
         s != mem::RequestQueue::npos; s = readQueue_.nextSlot(s)) {
        const mem::DecodedCoord &other = readQueue_.slotAt(s).coord;
        if (other.flatBank == fb && other.row == bank.openRow)
            ++openRowHitsRead_[fb];
    }
    for (std::uint32_t s = writeQueue_.headSlot();
         s != mem::RequestQueue::npos; s = writeQueue_.nextSlot(s)) {
        const mem::DecodedCoord &other = writeQueue_.slotAt(s).coord;
        if (other.flatBank == fb && other.row == bank.openRow)
            ++openRowHitsWrite_[fb];
    }
}

void
MemoryController::recountBankWaiters(unsigned fb)
{
    // Bank-local replacement for the reference full-queue recount: only
    // requests bucketed under this bank can hit its open row, and they
    // are exactly the members of the two per-bank FIFOs.
    const Bank &bank = banks_[fb];
    std::uint32_t read_hits = 0, write_hits = 0;
    for (std::uint32_t s = readIndex_.head[fb];
         s != mem::RequestQueue::npos; s = readIndex_.next[s])
        read_hits += readQueue_.slotAt(s).coord.row == bank.openRow;
    for (std::uint32_t s = writeIndex_.head[fb];
         s != mem::RequestQueue::npos; s = writeIndex_.next[s])
        write_hits += writeQueue_.slotAt(s).coord.row == bank.openRow;
    openRowHitsRead_[fb] = read_hits;
    openRowHitsWrite_[fb] = write_hits;
}

void
MemoryController::issuePrecharge(const DramCoord &coord)
{
    const unsigned fb = coord.flatBank(config_);
    Bank &bank = banks_[fb];
    bank.open = false;
    bank.nextActivate = std::max<Cycle>(bank.nextActivate,
                                        now_ + config_.tRP);
    openRowHitsRead_[fb] = 0;
    openRowHitsWrite_[fb] = 0;
    if (!config_.referenceScheduler) {
        rekeyBank(false, fb, 0);
        rekeyBank(true, fb, 0);
    }
    ++precharges_;
    commandIssued_ = true;
    if (trace_)
        trace_->instant(traceBankTracks_[fb], namePre_, now_);
    if (commandCallback_)
        commandCallback_(CommandType::Precharge, coord, now_);
}

void
MemoryController::issueBurst(const DramCoord &coord,
                             const mem::MemRequest &req, bool is_write)
{
    Bank &bank = bankAt(coord);
    const unsigned group = coord.rank * config_.bankGroups + coord.bankGroup;
    busBusy_ += config_.tBL;
    if (is_write) {
        busFreeAt_ = now_ + config_.tCWL + config_.tBL;
        nextWriteCmd_ = std::max<Cycle>(nextWriteCmd_, now_ + config_.tCCDS);
        nextWriteCmdGroup_[group] =
            std::max<Cycle>(nextWriteCmdGroup_[group], now_ + config_.tCCDL);
        // Write-to-read turnaround.
        const Cycle wtr = now_ + config_.tCWL + config_.tBL;
        nextReadCmd_ = std::max<Cycle>(nextReadCmd_, wtr + config_.tWTRS);
        nextReadCmdGroup_[group] =
            std::max<Cycle>(nextReadCmdGroup_[group], wtr + config_.tWTRL);
        bank.nextPrecharge = std::max<Cycle>(
            bank.nextPrecharge, now_ + config_.tCWL + config_.tBL +
                                    config_.tWR);
        ++writes_;
    } else {
        busFreeAt_ = now_ + config_.tCL + config_.tBL;
        nextReadCmd_ = std::max<Cycle>(nextReadCmd_, now_ + config_.tCCDS);
        nextReadCmdGroup_[group] =
            std::max<Cycle>(nextReadCmdGroup_[group], now_ + config_.tCCDL);
        // Read-to-write turnaround: write burst must not collide.
        nextWriteCmd_ = std::max<Cycle>(
            nextWriteCmd_,
            now_ + config_.tCL + config_.tBL + 2 - config_.tCWL);
        bank.nextPrecharge = std::max<Cycle>(bank.nextPrecharge,
                                             now_ + config_.tRTP);
        pendingResponses_.emplace_back(now_ + config_.tCL + config_.tBL,
                                       req);
        ++reads_;
    }
    ++rankBursts_[coord.rank];
    commandIssued_ = true;
    if (trace_)
        trace_->instant(traceBankTracks_[coord.flatBank(config_)],
                        is_write ? nameWrite_ : nameRead_, now_);
    if (commandCallback_)
        commandCallback_(is_write ? CommandType::Write
                                  : CommandType::Read,
                         coord, now_);
}

void
MemoryController::maybeRefresh()
{
    if (!config_.refreshEnabled)
        return;
    for (unsigned r = 0; r < config_.ranks; ++r) {
        RankState &rank = ranks_[r];
        if (rank.refreshing) {
            if (now_ >= rank.refreshDone)
                rank.refreshing = false;
            else
                continue;
        }
        if (now_ < rank.nextRefresh || commandIssued_)
            continue;
        // Close all banks of this rank, one precharge per cycle.
        bool all_closed = true;
        for (unsigned g = 0; g < config_.bankGroups && !commandIssued_;
             ++g) {
            for (unsigned b = 0; b < config_.banksPerGroup; ++b) {
                DramCoord coord{r, g, b, 0, 0};
                Bank &bank = bankAt(coord);
                if (!bank.open)
                    continue;
                all_closed = false;
                if (canPrecharge(bank)) {
                    issuePrecharge(coord);
                    break;
                }
            }
        }
        if (!all_closed || commandIssued_)
            continue;
        // All banks precharged: issue REF.
        rank.refreshing = true;
        rank.refreshDone = now_ + config_.tRFC;
        rank.nextRefresh += config_.tREFI;
        for (unsigned g = 0; g < config_.bankGroups; ++g) {
            for (unsigned b = 0; b < config_.banksPerGroup; ++b) {
                DramCoord coord{r, g, b, 0, 0};
                bankAt(coord).nextActivate = rank.refreshDone;
            }
        }
        // Push the rank's queued banks out to the refresh horizon so the
        // quiescence window can swallow the whole tRFC in one skip.
        rekeyRankBanks(r);
        ++refreshes_;
        commandIssued_ = true;
        if (trace_)
            trace_->instant(
                traceBankTracks_[r * config_.bankGroups *
                                 config_.banksPerGroup],
                nameRef_, now_);
        if (commandCallback_)
            commandCallback_(CommandType::Refresh, DramCoord{r, 0, 0, 0, 0},
                             now_);
    }
}

double
MemoryController::achievedBandwidth(Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(cycles) / (config_.freqMhz * 1e6);
    return static_cast<double>(bytesTransferred()) / seconds;
}

} // namespace menda::dram
