#include "obs/trace.hh"

#include "common/log.hh"
#include "obs/json.hh"

namespace menda::obs
{

TraceShard::TraceShard(std::size_t capacity)
{
    events_.reserve(capacity);
    // Name id 0 is reserved so counter events can leave the field unset.
    names_.push_back("");
}

std::uint32_t
TraceShard::addTrack(const std::string &name, TrackKind kind,
                     std::uint64_t freq_mhz)
{
    menda_assert(freq_mhz > 0, "trace track '", name,
                 "' needs a non-zero clock frequency");
    tracks_.push_back(Track{name, kind, freq_mhz});
    return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t
TraceShard::internName(const std::string &name)
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return static_cast<std::uint32_t>(i);
    names_.push_back(name);
    return static_cast<std::uint32_t>(names_.size() - 1);
}

void
Tracer::ensureShards(std::size_t n)
{
    while (shards_.size() < n) {
        shards_.push_back(std::make_unique<TraceShard>(shardCapacity_));
        shardLabels_.emplace_back();
    }
}

void
Tracer::labelShard(std::size_t i, std::string label)
{
    menda_assert(i < shards_.size(), "labelShard: no shard ", i);
    shardLabels_[i] = std::move(label);
}

std::uint64_t
Tracer::eventCount() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->eventCount();
    return total;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->droppedEvents();
    return total;
}

namespace
{

/** Cycles → microseconds at the track's clock frequency. */
std::string
usString(Cycle cycles, std::uint64_t freq_mhz)
{
    return json::formatNumber(static_cast<double>(cycles) /
                              static_cast<double>(freq_mhz));
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string &event) {
        if (!first)
            os << ",\n";
        first = false;
        os << event;
    };

    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const TraceShard &shard = *shards_[s];
        const std::string pid = std::to_string(s + 1);

        std::string process = shardLabels_[s].empty()
                                  ? "shard" + std::to_string(s)
                                  : shardLabels_[s];
        if (shard.dropped_ > 0)
            process += " (dropped " + std::to_string(shard.dropped_) +
                       " events)";
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
             ",\"tid\":0,\"args\":{\"name\":\"" + json::escape(process) +
             "\"}}");
        emit("{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" +
             pid + ",\"tid\":0,\"args\":{\"sort_index\":" +
             std::to_string(s) + "}}");

        for (std::size_t t = 0; t < shard.tracks_.size(); ++t) {
            const std::string tid = std::to_string(t + 1);
            emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + pid +
                 ",\"tid\":" + tid + ",\"args\":{\"name\":\"" +
                 json::escape(shard.tracks_[t].name) + "\"}}");
            emit("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" +
                 pid + ",\"tid\":" + tid +
                 ",\"args\":{\"sort_index\":" + std::to_string(t) + "}}");
        }

        for (const TraceShard::Event &e : shard.events_) {
            const TraceShard::Track &track = shard.tracks_[e.track];
            const std::string tid = std::to_string(e.track + 1);
            const std::string ts = usString(e.a, track.freqMhz);
            switch (track.kind) {
              case TrackKind::Span:
                emit("{\"name\":\"" + json::escape(shard.names_[e.name]) +
                     "\",\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":" + tid +
                     ",\"ts\":" + ts + ",\"dur\":" +
                     usString(e.b - e.a, track.freqMhz) + "}");
                break;
              case TrackKind::Instant:
                emit("{\"name\":\"" + json::escape(shard.names_[e.name]) +
                     "\",\"ph\":\"i\",\"pid\":" + pid + ",\"tid\":" + tid +
                     ",\"ts\":" + ts + ",\"s\":\"t\"}");
                break;
              case TrackKind::Counter:
                emit("{\"name\":\"" + json::escape(track.name) +
                     "\",\"ph\":\"C\",\"pid\":" + pid + ",\"tid\":" + tid +
                     ",\"ts\":" + ts + ",\"args\":{\"value\":" +
                     std::to_string(e.b) + "}}");
                break;
            }
        }
    }

    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace menda::obs
