#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace menda::obs::json
{

namespace
{

const Value nullValue;

[[noreturn]] void
fail(const std::string &text, std::size_t pos, const std::string &what)
{
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos) + " of " +
                             std::to_string(text.size()) + " bytes");
}

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail(text, pos, "unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(text, pos,
                 std::string("expected '") + c + "', got '" + text[pos] +
                     "'");
        ++pos;
    }

    bool
    consume(const std::string &word)
    {
        if (text.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail(text, pos, "unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail(text, pos, "dangling escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail(text, pos, "truncated \\u escape");
                const std::string hex = text.substr(pos, 4);
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4)
                    fail(text, pos, "bad \\u escape");
                pos += 4;
                // ASCII only; anything else is passed through as '?'
                // (the observability layer never emits non-ASCII).
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                fail(text, pos, "unknown escape");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-'))
            ++pos;
        const std::string token = text.substr(start, pos - start);
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || token.empty())
            fail(text, start, "malformed number '" + token + "'");
        return Value(d);
    }

    Value
    parseValue()
    {
        skipSpace();
        const char c = peek();
        if (c == '{') {
            ++pos;
            Object obj;
            skipSpace();
            if (peek() == '}') {
                ++pos;
                return Value(std::move(obj));
            }
            while (true) {
                skipSpace();
                std::string key = parseString();
                skipSpace();
                expect(':');
                obj.emplace(std::move(key), parseValue());
                skipSpace();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect('}');
                return Value(std::move(obj));
            }
        }
        if (c == '[') {
            ++pos;
            Array arr;
            skipSpace();
            if (peek() == ']') {
                ++pos;
                return Value(std::move(arr));
            }
            while (true) {
                arr.push_back(parseValue());
                skipSpace();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                expect(']');
                return Value(std::move(arr));
            }
        }
        if (c == '"')
            return Value(parseString());
        if (consume("true"))
            return Value(true);
        if (consume("false"))
            return Value(false);
        if (consume("null"))
            return Value();
        return parseNumber();
    }
};

void
serializeInto(const Value &v, std::string &out)
{
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        return;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
      case Value::Kind::Number:
        out += formatNumber(v.asNumber());
        return;
      case Value::Kind::String:
        out += '"';
        out += escape(v.asString());
        out += '"';
        return;
      case Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &e : v.asArray()) {
            if (!first)
                out += ',';
            first = false;
            serializeInto(e, out);
        }
        out += ']';
        return;
      }
      case Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, e] : v.asObject()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escape(key);
            out += "\":";
            serializeInto(e, out);
        }
        out += '}';
        return;
      }
    }
}

} // namespace

const Value &
Value::at(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullValue;
    auto it = object_->find(key);
    return it == object_->end() ? nullValue : it->second;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object && object_->count(key) != 0;
}

std::string
Value::serialize() const
{
    std::string out;
    serializeInto(*this, out);
    return out;
}

Value
parse(const std::string &text)
{
    Parser parser{text};
    Value v = parser.parseValue();
    parser.skipSpace();
    if (parser.pos != text.size())
        fail(text, parser.pos, "trailing garbage after document");
    return v;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatNumber(double d)
{
    if (!std::isfinite(d))
        return "0"; // JSON has no inf/nan; clamp rather than corrupt
    // Integers (the common case: counters) print exactly; everything
    // else uses the shortest form that round-trips a double.
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", d);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    // Trim to the shortest representation that still round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[40];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, d);
        if (std::strtod(shorter, nullptr) == d)
            return shorter;
    }
    return buf;
}

} // namespace menda::obs::json
