/**
 * @file
 * Structured event journal: a bounded ring of typed events on a
 * virtual-cycle clock.
 *
 * Long-running services need an answer to "what happened around cycle
 * X?" that metrics cannot give: discrete, rare events (an admission
 * reject, a cache eviction, a cancellation, an SLO-window rollover)
 * with their context. The journal records each event as one canonical
 * JSON line — `{"cycle":C,"seq":S,"type":"...",...fields}` — stamped
 * with a monotone sequence number so a remote reader can drain
 * incrementally and detect gaps from drops.
 *
 * The ring holds a fixed number of entries; when full, the oldest entry
 * is overwritten (newest events are the ones an operator asks about).
 * Everything is deterministic for a deterministic event stream: same
 * events in, byte-identical JSONL out, independent of host threading or
 * wall time — which is what lets tests assert journal bytes across
 * re-runs and `--threads`.
 */

#ifndef MENDA_OBS_JOURNAL_HH
#define MENDA_OBS_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"

namespace menda::obs
{

class EventJournal
{
  public:
    /** @param capacity ring capacity in events (>= 1). */
    explicit EventJournal(std::size_t capacity = 4096);

    /**
     * Append one typed event at virtual cycle @p at. @p fields are
     * merged into the line object next to "cycle"/"seq"/"type" (those
     * three keys are reserved). Oldest entry is dropped when full.
     */
    void emit(Cycle at, const std::string &type,
              json::Object fields = {});

    /** Events ever emitted (monotone; first seq is 0). */
    std::uint64_t emitted() const { return nextSeq_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Events currently buffered. */
    std::size_t size() const { return entries_.size(); }

    std::size_t capacity() const { return capacity_; }

    /** Sequence number of the oldest buffered event (0 when empty). */
    std::uint64_t oldestSeq() const;

    /** All buffered events, oldest first, one JSON object per line. */
    std::string jsonl() const { return jsonlSince(0); }

    /**
     * Buffered events with seq >= @p from_seq as JSONL. Pass the
     * journal's emitted() from the previous drain to read only new
     * events; if @p from_seq is older than oldestSeq() the reader
     * missed droppedEvents() worth of history.
     */
    std::string jsonlSince(std::uint64_t from_seq) const;

  private:
    struct Entry
    {
        std::uint64_t seq = 0;
        std::string line; ///< canonical JSON, no trailing newline
    };

    std::size_t capacity_;
    std::size_t head_ = 0; ///< index of the oldest entry once wrapped
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<Entry> entries_;
};

} // namespace menda::obs

#endif // MENDA_OBS_JOURNAL_HH
