#include "obs/report.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace menda::obs
{

void
RunReport::addHistogram(const std::string &hist_name,
                        const Histogram &histogram)
{
    HistogramData data;
    const unsigned used = histogram.usedBuckets();
    data.buckets.reserve(used);
    for (unsigned b = 0; b < used; ++b)
        data.buckets.push_back(histogram.bucket(b));
    data.count = histogram.count();
    data.sum = histogram.sum();
    data.min = histogram.min();
    data.max = histogram.max();
    histograms_[hist_name] = std::move(data);
}

void
RunReport::addSeries(const std::string &series_name,
                     const IntervalSampler &sampler)
{
    SeriesData data;
    data.period = sampler.period();
    data.cycles = sampler.cycles();
    data.values = sampler.values();
    series_[series_name] = std::move(data);
}

namespace
{

json::Array
toJsonArray(const std::vector<std::uint64_t> &values)
{
    json::Array arr;
    arr.reserve(values.size());
    for (std::uint64_t v : values)
        arr.emplace_back(v);
    return arr;
}

std::vector<std::uint64_t>
fromJsonArray(const json::Value &value)
{
    std::vector<std::uint64_t> out;
    if (!value.isArray())
        return out;
    out.reserve(value.asArray().size());
    for (const json::Value &v : value.asArray())
        out.push_back(static_cast<std::uint64_t>(v.asNumber()));
    return out;
}

} // namespace

std::string
RunReport::toJson() const
{
    json::Object root;
    root.emplace("schema", kSchema);
    root.emplace("name", name_);

    json::Object meta;
    for (const auto &[key, value] : meta_)
        meta.emplace(key, value);
    root.emplace("meta", std::move(meta));

    json::Object metrics;
    for (const auto &[key, value] : metrics_)
        metrics.emplace(key, value);
    root.emplace("metrics", std::move(metrics));

    json::Object histograms;
    for (const auto &[key, data] : histograms_) {
        json::Object h;
        h.emplace("buckets", toJsonArray(data.buckets));
        h.emplace("count", data.count);
        h.emplace("sum", data.sum);
        h.emplace("min", data.min);
        h.emplace("max", data.max);
        histograms.emplace(key, std::move(h));
    }
    root.emplace("histograms", std::move(histograms));

    json::Object series;
    for (const auto &[key, data] : series_) {
        json::Object s;
        s.emplace("period", data.period);
        s.emplace("cycles", toJsonArray(data.cycles));
        s.emplace("values", toJsonArray(data.values));
        series.emplace(key, std::move(s));
    }
    root.emplace("series", std::move(series));

    return json::Value(std::move(root)).serialize() + "\n";
}

RunReport
RunReport::fromJson(const std::string &text)
{
    const json::Value root = json::parse(text);
    if (!root.isObject())
        throw std::runtime_error("run report: top level is not an object");
    if (root.at("schema").asString() != kSchema)
        throw std::runtime_error(
            "run report: unsupported schema '" +
            root.at("schema").asString() + "' (want " + kSchema + ")");

    RunReport report(root.at("name").asString());
    if (root.at("meta").isObject())
        for (const auto &[key, value] : root.at("meta").asObject())
            report.meta_[key] = value.asString();
    if (root.at("metrics").isObject())
        for (const auto &[key, value] : root.at("metrics").asObject())
            report.metrics_[key] = value.asNumber();
    if (root.at("histograms").isObject()) {
        for (const auto &[key, value] : root.at("histograms").asObject()) {
            HistogramData data;
            data.buckets = fromJsonArray(value.at("buckets"));
            data.count =
                static_cast<std::uint64_t>(value.at("count").asNumber());
            data.sum =
                static_cast<std::uint64_t>(value.at("sum").asNumber());
            data.min =
                static_cast<std::uint64_t>(value.at("min").asNumber());
            data.max =
                static_cast<std::uint64_t>(value.at("max").asNumber());
            report.histograms_[key] = std::move(data);
        }
    }
    if (root.at("series").isObject()) {
        for (const auto &[key, value] : root.at("series").asObject()) {
            SeriesData data;
            data.period =
                static_cast<std::uint64_t>(value.at("period").asNumber());
            data.cycles = fromJsonArray(value.at("cycles"));
            data.values = fromJsonArray(value.at("values"));
            report.series_[key] = std::move(data);
        }
    }
    return report;
}

void
RunReport::write(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("run report: cannot open '" + path +
                                 "' for writing");
    os << toJson();
    if (!os)
        throw std::runtime_error("run report: write to '" + path +
                                 "' failed");
}

RunReport
RunReport::read(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("run report: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return fromJson(buffer.str());
}

bool
DiffOptions::ignored(const std::string &metric_name) const
{
    // Case-insensitive: "wall" must catch wallSeconds, heapWallSeconds,
    // and speedupVsHeapWall alike.
    auto lower = [](std::string s) {
        for (char &c : s)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return s;
    };
    const std::string haystack = lower(metric_name);
    for (const std::string &needle : ignoreSubstrings)
        if (haystack.find(lower(needle)) != std::string::npos)
            return true;
    return false;
}

DiffResult
diffReports(const RunReport &baseline, const RunReport &current,
            const DiffOptions &options)
{
    DiffResult result;

    for (const auto &[name, base_value] : baseline.metrics()) {
        if (!current.hasMetric(name)) {
            if (!options.ignored(name)) {
                result.missing.push_back(name);
                result.passed = false;
            }
            continue;
        }
        DiffResult::Entry entry;
        entry.name = name;
        entry.baseline = base_value;
        entry.current = current.metric(name);
        entry.ignored = options.ignored(name);
        if (base_value == 0.0) {
            // No meaningful relative delta; any non-zero drift from an
            // exactly-zero baseline counts as out of tolerance.
            entry.relDelta = entry.current == 0.0 ? 0.0 : INFINITY;
            entry.withinTolerance = entry.current == 0.0;
        } else {
            entry.relDelta =
                (entry.current - base_value) / std::fabs(base_value);
            entry.withinTolerance =
                std::fabs(entry.relDelta) <= options.tolerance;
        }
        if (!entry.ignored && !entry.withinTolerance)
            result.passed = false;
        result.entries.push_back(std::move(entry));
    }

    for (const auto &[name, value] : current.metrics()) {
        (void)value;
        if (!baseline.hasMetric(name))
            result.added.push_back(name);
    }

    return result;
}

} // namespace menda::obs
