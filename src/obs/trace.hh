/**
 * @file
 * Cycle-level event tracing for the simulator.
 *
 * A Tracer owns one TraceShard per simulation shard — the same
 * (PU, controller) granularity as the host thread pool — and each shard
 * is a fixed-capacity, allocation-free ring of POD events written by
 * exactly one thread. The threading contract mirrors Counter
 * (common/stats.hh): a shard is only read after its owning host thread
 * has been joined; the join is the publication point. Components emit
 * behind a single `if (trace_)` pointer check, so a null tracer costs
 * one predictable branch per emission site.
 *
 * Tracks are registered per shard during component attach (before or
 * during the shard's own simulation, always from the owning thread) and
 * carry their clock-domain frequency: timestamps are recorded in
 * domain cycles and converted to microseconds only at serialization.
 *
 * Serialization produces Chrome trace-event JSON ("traceEvents" array)
 * loadable in Perfetto or chrome://tracing: one process per shard, one
 * thread per track, "X" complete events for spans, "i" instants, and
 * "C" counter samples. Output is byte-deterministic: shard order, track
 * order, and per-shard event order are all fixed by the deterministic
 * simulation, independent of host thread count.
 */

#ifndef MENDA_OBS_TRACE_HH
#define MENDA_OBS_TRACE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace menda::obs
{

/** What the events of a track mean (fixed per track). */
enum class TrackKind : std::uint8_t
{
    Span,    ///< [begin, end) durations ("X" complete events)
    Instant, ///< point events ("i")
    Counter, ///< sampled numeric value ("C")
};

class TraceShard
{
  public:
    /** @param capacity ring capacity in events (fully preallocated). */
    explicit TraceShard(std::size_t capacity);

    // --- setup (owning thread only) ---
    /** Register a track; returns its id. @p freq_mhz scales timestamps. */
    std::uint32_t addTrack(const std::string &name, TrackKind kind,
                           std::uint64_t freq_mhz);

    /**
     * Intern an event name; returns its id. Allocation is amortized and
     * rare (names are per-phase, not per-event), so interning mid-run
     * from the owning thread is fine.
     */
    std::uint32_t internName(const std::string &name);

    // --- hot path (owning thread only, allocation-free) ---
    void
    span(std::uint32_t track, std::uint32_t name, Cycle begin, Cycle end)
    {
        push(track, name, begin, end);
    }

    void
    instant(std::uint32_t track, std::uint32_t name, Cycle at)
    {
        push(track, name, at, at);
    }

    void
    counter(std::uint32_t track, Cycle at, std::uint64_t value)
    {
        push(track, 0, at, value);
    }

    // --- post-join inspection ---
    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }
    std::size_t trackCount() const { return tracks_.size(); }

  private:
    friend class Tracer;

    struct Event
    {
        Cycle a;             ///< span begin / instant cycle / sample cycle
        std::uint64_t b;     ///< span end / unused / counter value
        std::uint32_t track;
        std::uint32_t name;  ///< interned name id (unused for counters)
    };

    struct Track
    {
        std::string name;
        TrackKind kind;
        std::uint64_t freqMhz;
    };

    void
    push(std::uint32_t track, std::uint32_t name, Cycle a,
         std::uint64_t b)
    {
        if (events_.size() == events_.capacity()) {
            ++dropped_;
            return; // ring full: keep the earliest events, count the rest
        }
        events_.push_back(Event{a, b, track, name});
    }

    std::vector<Event> events_;
    std::vector<Track> tracks_;
    std::vector<std::string> names_;
    std::uint64_t dropped_ = 0;
};

class Tracer
{
  public:
    /** @param shard_capacity per-shard event ring capacity. */
    explicit Tracer(std::size_t shard_capacity = 1 << 16)
        : shardCapacity_(shard_capacity)
    {}

    /**
     * Create shards up to @p n (single-threaded, before the simulation
     * forks). Existing shards are kept, so a Tracer can only be used
     * for one run; create a fresh Tracer per traced run.
     */
    void ensureShards(std::size_t n);

    /**
     * Name shard @p i in the serialized trace ("serve", "pu3", ...)
     * instead of the default "shard<i>". The shard must exist.
     */
    void labelShard(std::size_t i, std::string label);

    std::size_t shardCount() const { return shards_.size(); }
    TraceShard *shard(std::size_t i) { return shards_[i].get(); }
    const TraceShard *shard(std::size_t i) const
    {
        return shards_[i].get();
    }

    /** Total events recorded across all shards (post-join). */
    std::uint64_t eventCount() const;

    /** Total events dropped to full rings across all shards. */
    std::uint64_t droppedEvents() const;

    /**
     * Serialize all shards as Chrome trace-event JSON (post-join).
     * Byte-deterministic for deterministic simulations.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::size_t shardCapacity_;
    std::vector<std::unique_ptr<TraceShard>> shards_;
    std::vector<std::string> shardLabels_; ///< "" = default "shard<i>"
};

} // namespace menda::obs

#endif // MENDA_OBS_TRACE_HH
