/**
 * @file
 * Minimal JSON value model, parser, and serializer.
 *
 * Just enough JSON for the observability layer: RunReport round-trips,
 * the report-diff tool, and structural validation of emitted trace
 * files in tests. Numbers are doubles, objects preserve key order via
 * std::map (sorted), strings support the common escapes. Not a general
 * purpose library — no streaming, no comments, no unicode surrogate
 * pair handling beyond pass-through of \uXXXX escapes.
 */

#ifndef MENDA_OBS_JSON_HH
#define MENDA_OBS_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace menda::obs::json
{

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value
{
  public:
    enum class Kind : unsigned char
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), number_(d) {}
    Value(std::uint64_t u)
        : kind_(Kind::Number), number_(static_cast<double>(u))
    {}
    Value(int i) : kind_(Kind::Number), number_(i) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(Array a)
        : kind_(Kind::Array),
          array_(std::make_shared<Array>(std::move(a)))
    {}
    Value(Object o)
        : kind_(Kind::Object),
          object_(std::make_shared<Object>(std::move(o)))
    {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return *array_; }
    const Object &asObject() const { return *object_; }

    /** Object member lookup; returns null Value when absent. */
    const Value &at(const std::string &key) const;

    /** True iff the object has @p key (false for non-objects). */
    bool has(const std::string &key) const;

    /** Serialize canonically (sorted keys, shortest-round-trip doubles). */
    std::string serialize() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed).
 * Throws std::runtime_error with position info on malformed input.
 */
Value parse(const std::string &text);

/** Escape @p s as the contents of a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/** Format @p d the way serialize() does (shortest round-trip form). */
std::string formatNumber(double d);

} // namespace menda::obs::json

#endif // MENDA_OBS_JSON_HH
