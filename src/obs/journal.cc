#include "obs/journal.hh"

#include "common/log.hh"

namespace menda::obs
{

EventJournal::EventJournal(std::size_t capacity) : capacity_(capacity)
{
    menda_assert(capacity_ > 0, "journal capacity must be >= 1");
    entries_.reserve(capacity_);
}

void
EventJournal::emit(Cycle at, const std::string &type, json::Object fields)
{
    menda_assert(!fields.count("cycle") && !fields.count("seq") &&
                     !fields.count("type"),
                 "journal field name collides with the envelope");
    fields["cycle"] = json::Value(at);
    fields["seq"] = json::Value(nextSeq_);
    fields["type"] = json::Value(type);

    Entry entry;
    entry.seq = nextSeq_++;
    entry.line = json::Value(std::move(fields)).serialize();
    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(entry));
        return;
    }
    entries_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::uint64_t
EventJournal::oldestSeq() const
{
    return entries_.empty() ? 0 : entries_[head_].seq;
}

std::string
EventJournal::jsonlSince(std::uint64_t from_seq) const
{
    std::string out;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[(head_ + i) % entries_.size()];
        if (e.seq < from_seq)
            continue;
        out += e.line;
        out += '\n';
    }
    return out;
}

} // namespace menda::obs
