/**
 * @file
 * Metric exposition model shared by the daemon, its clients, and CI.
 *
 * A snapshot is a flat list of MetricFamily — a named, typed series
 * with labelled samples — which renders two ways from the same data:
 *
 *  - renderPrometheus(): the Prometheus text exposition format, so an
 *    external scraper can poll the daemon's `metrics` verb directly.
 *  - metricsToJson()/metricsFromJson(): a canonical JSON round-trip
 *    used on the wire (`menda.job/1` "metrics" response) and by
 *    `menda_top --json`.
 *
 * Both renderings are byte-deterministic: families render in list
 * order, samples in list order, labels sorted (std::map), numbers in
 * shortest round-trip form. Precomputed quantiles travel as gauge
 * samples with a "quantile" label, matching Prometheus summary
 * conventions without its _sum/_count machinery.
 */

#ifndef MENDA_OBS_METRICS_HH
#define MENDA_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace menda::obs
{

struct MetricSample
{
    std::map<std::string, std::string> labels; ///< sorted by key
    double value = 0.0;
};

struct MetricFamily
{
    enum class Type : std::uint8_t
    {
        Gauge,   ///< point-in-time value (utilization, quantile)
        Counter, ///< monotone total (jobs completed, cache hits)
    };

    std::string name; ///< Prometheus-safe: [a-zA-Z_][a-zA-Z0-9_]*
    std::string help;
    Type type = Type::Gauge;
    std::vector<MetricSample> samples;
};

const char *metricTypeName(MetricFamily::Type type);

/** Convenience: append a sample to @p family and return it. */
MetricSample &addSample(MetricFamily &family, double value,
                        std::map<std::string, std::string> labels = {});

/** Render @p families in the Prometheus text exposition format. */
std::string renderPrometheus(const std::vector<MetricFamily> &families);

/** The "families" JSON array for the wire / menda_top --json. */
json::Value metricsToJson(const std::vector<MetricFamily> &families);

/** Parse metricsToJson() output back; throws on malformed input. */
std::vector<MetricFamily> metricsFromJson(const json::Value &v);

} // namespace menda::obs

#endif // MENDA_OBS_METRICS_HH
