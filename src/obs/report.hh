/**
 * @file
 * Unified run report: one JSON schema for simulator and bench output.
 *
 * A RunReport carries scalar metrics, log-2 histograms, and periodic
 * time series from a run, serialized canonically (sorted keys,
 * shortest-round-trip numbers) so identical runs produce byte-identical
 * files. menda_sim emits one per --report run; bench harnesses emit one
 * per configuration; tools/menda_report_diff compares two reports with
 * per-metric relative tolerances and exits non-zero on regression —
 * which is what the CI perf gate runs against committed baselines.
 */

#ifndef MENDA_OBS_REPORT_HH
#define MENDA_OBS_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace menda::obs
{

class RunReport
{
  public:
    static constexpr const char *kSchema = "menda.runReport/1";

    RunReport() = default;
    explicit RunReport(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Free-form string annotations (kernel, matrix, flags, ...). */
    void setMeta(const std::string &key, const std::string &value)
    {
        meta_[key] = value;
    }
    const std::map<std::string, std::string> &meta() const { return meta_; }

    void setMetric(const std::string &metric_name, double value)
    {
        metrics_[metric_name] = value;
    }
    const std::map<std::string, double> &metrics() const
    {
        return metrics_;
    }
    bool hasMetric(const std::string &metric_name) const
    {
        return metrics_.count(metric_name) != 0;
    }
    double metric(const std::string &metric_name) const
    {
        auto it = metrics_.find(metric_name);
        return it == metrics_.end() ? 0.0 : it->second;
    }

    void addHistogram(const std::string &hist_name,
                      const Histogram &histogram);
    void addSeries(const std::string &series_name,
                   const IntervalSampler &sampler);

    struct HistogramData
    {
        std::vector<std::uint64_t> buckets; ///< trailing zeros trimmed
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
    };

    struct SeriesData
    {
        std::uint64_t period = 0;
        std::vector<std::uint64_t> cycles;
        std::vector<std::uint64_t> values;
    };

    const std::map<std::string, HistogramData> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, SeriesData> &series() const
    {
        return series_;
    }

    /** Canonical JSON (byte-deterministic for identical content). */
    std::string toJson() const;

    /**
     * Parse a report back from JSON. Throws std::runtime_error on
     * malformed input or a schema mismatch.
     */
    static RunReport fromJson(const std::string &text);

    /** Write toJson() to @p path; throws on I/O failure. */
    void write(const std::string &path) const;

    /** Read + parse a report file; throws on I/O or parse failure. */
    static RunReport read(const std::string &path);

  private:
    std::string name_;
    std::map<std::string, std::string> meta_;
    std::map<std::string, double> metrics_;
    std::map<std::string, HistogramData> histograms_;
    std::map<std::string, SeriesData> series_;
};

/** Controls for diffReports(). */
struct DiffOptions
{
    /** Allowed relative drift per metric, e.g. 0.10 = ±10%. */
    double tolerance = 0.10;

    /**
     * Metrics whose name contains any of these substrings
     * (case-insensitively) are reported but never fail the diff —
     * machine-dependent throughput and host configuration do not belong
     * in a regression gate.
     */
    std::vector<std::string> ignoreSubstrings = {
        "wall", "CyclesPerSec", "hostThreads", "hwConcurrency",
        "traceOverhead",
    };

    bool ignored(const std::string &metric_name) const;
};

/** Outcome of comparing a current report against a baseline. */
struct DiffResult
{
    struct Entry
    {
        std::string name;
        double baseline = 0.0;
        double current = 0.0;
        double relDelta = 0.0; ///< (current - baseline) / |baseline|
        bool ignored = false;
        bool withinTolerance = true;
    };

    std::vector<Entry> entries;          ///< metrics present in both
    std::vector<std::string> missing;    ///< in baseline, not in current
    std::vector<std::string> added;      ///< in current, not in baseline
    bool passed = true; ///< all checked metrics in tolerance, none missing
};

/** Compare @p current against @p baseline metric-by-metric. */
DiffResult diffReports(const RunReport &baseline, const RunReport &current,
                       const DiffOptions &options);

} // namespace menda::obs

#endif // MENDA_OBS_REPORT_HH
