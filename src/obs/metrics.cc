#include "obs/metrics.hh"

#include <stdexcept>

namespace menda::obs
{

const char *
metricTypeName(MetricFamily::Type type)
{
    return type == MetricFamily::Type::Counter ? "counter" : "gauge";
}

MetricSample &
addSample(MetricFamily &family, double value,
          std::map<std::string, std::string> labels)
{
    MetricSample sample;
    sample.labels = std::move(labels);
    sample.value = value;
    family.samples.push_back(std::move(sample));
    return family.samples.back();
}

namespace
{

/** Prometheus label-value escaping: backslash, quote, newline. */
std::string
escapeLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const std::vector<MetricFamily> &families)
{
    std::string out;
    for (const MetricFamily &family : families) {
        if (!family.help.empty())
            out += "# HELP " + family.name + " " + family.help + "\n";
        out += "# TYPE " + family.name + " " +
               metricTypeName(family.type) + "\n";
        for (const MetricSample &sample : family.samples) {
            out += family.name;
            if (!sample.labels.empty()) {
                out += '{';
                bool first = true;
                for (const auto &[key, value] : sample.labels) {
                    if (!first)
                        out += ',';
                    first = false;
                    out += key + "=\"" + escapeLabel(value) + "\"";
                }
                out += '}';
            }
            out += ' ';
            out += json::formatNumber(sample.value);
            out += '\n';
        }
    }
    return out;
}

json::Value
metricsToJson(const std::vector<MetricFamily> &families)
{
    json::Array array;
    array.reserve(families.size());
    for (const MetricFamily &family : families) {
        json::Object fo;
        fo["name"] = json::Value(family.name);
        fo["help"] = json::Value(family.help);
        fo["type"] = json::Value(metricTypeName(family.type));
        json::Array samples;
        samples.reserve(family.samples.size());
        for (const MetricSample &sample : family.samples) {
            json::Object so;
            json::Object labels;
            for (const auto &[key, value] : sample.labels)
                labels[key] = json::Value(value);
            so["labels"] = json::Value(std::move(labels));
            so["value"] = json::Value(sample.value);
            samples.push_back(json::Value(std::move(so)));
        }
        fo["samples"] = json::Value(std::move(samples));
        array.push_back(json::Value(std::move(fo)));
    }
    return json::Value(std::move(array));
}

std::vector<MetricFamily>
metricsFromJson(const json::Value &v)
{
    if (!v.isArray())
        throw std::runtime_error("metrics: families is not an array");
    std::vector<MetricFamily> families;
    families.reserve(v.asArray().size());
    for (const json::Value &fv : v.asArray()) {
        if (!fv.isObject() || !fv.at("name").isString() ||
            !fv.at("samples").isArray())
            throw std::runtime_error("metrics: malformed family");
        MetricFamily family;
        family.name = fv.at("name").asString();
        if (fv.at("help").isString())
            family.help = fv.at("help").asString();
        const std::string &type = fv.at("type").isString()
                                      ? fv.at("type").asString()
                                      : "gauge";
        family.type = type == "counter" ? MetricFamily::Type::Counter
                                        : MetricFamily::Type::Gauge;
        for (const json::Value &sv : fv.at("samples").asArray()) {
            if (!sv.isObject() || !sv.at("value").isNumber())
                throw std::runtime_error("metrics: malformed sample");
            MetricSample sample;
            sample.value = sv.at("value").asNumber();
            if (sv.at("labels").isObject())
                for (const auto &[key, value] :
                     sv.at("labels").asObject()) {
                    if (!value.isString())
                        throw std::runtime_error(
                            "metrics: label value is not a string");
                    sample.labels[key] = value.asString();
                }
            family.samples.push_back(std::move(sample));
        }
        families.push_back(std::move(family));
    }
    return families;
}

} // namespace menda::obs
