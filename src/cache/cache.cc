#include "cache/cache.hh"

#include "common/log.hh"

namespace menda::cache
{

Cache::Cache(std::uint64_t size_bytes, unsigned associativity)
    : ways_(associativity)
{
    const std::uint64_t lines = size_bytes / blockBytes;
    menda_assert(lines >= associativity, "cache smaller than one set");
    sets_ = static_cast<unsigned>(lines / associativity);
    menda_assert(sets_ > 0, "cache needs at least one set");
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

Cache::AccessResult
Cache::access(Addr addr, bool write)
{
    // Modulo indexing supports non-power-of-two set counts (the 3 MB
    // L3 of Tab. 1 has 6144 sets).
    const Addr block = addr / blockBytes;
    const unsigned set = static_cast<unsigned>(block % sets_);
    const Addr tag = block / sets_;
    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    ++useClock_;

    AccessResult result;
    Line *victim = base;
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            line.dirty |= write;
            result.hit = true;
            ++hits_;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.evictedAddr = (victim->tag * sets_ + set) * blockBytes;
        ++writebacks_;
    }
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    const Addr block = addr / blockBytes;
    const unsigned set = static_cast<unsigned>(block % sets_);
    const Addr tag = block / sets_;
    const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
}

Hierarchy::Hierarchy(const Config &config, unsigned threads)
    : config_(config), threadsPerCluster_(config.threadsPerCluster)
{
    const unsigned clusters =
        (threads + threadsPerCluster_ - 1) / threadsPerCluster_;
    for (unsigned t = 0; t < threads; ++t) {
        l1_.emplace_back(config.l1Bytes, config.associativity);
        l2_.emplace_back(config.l2Bytes, config.associativity);
    }
    for (unsigned c = 0; c < clusters; ++c)
        l3_.emplace_back(config.l3Bytes, config.associativity);
}

Hierarchy::Outcome
Hierarchy::access(unsigned thread, Addr addr, bool write)
{
    Outcome out;
    const Addr block = blockAlign(addr);
    Cache &l1 = l1_[thread];
    Cache &l2 = l2_[thread];
    Cache &l3 = l3_[thread / threadsPerCluster_];

    auto r1 = l1.access(block, write);
    if (r1.hit) {
        out.level = 1;
        out.latency = config_.l1LatencyCycles;
        return out;
    }
    // L1 victim writes back into L2.
    if (r1.writeback) {
        auto wb = l2.access(r1.evictedAddr, true);
        if (wb.writeback)
            out.dramWrites.push_back(wb.evictedAddr); // skipped L3: rare
    }
    auto r2 = l2.access(block, write);
    if (r2.hit) {
        out.level = 2;
        out.latency = config_.l2LatencyCycles;
        return out;
    }
    if (r2.writeback) {
        auto wb = l3.access(r2.evictedAddr, true);
        if (wb.writeback)
            out.dramWrites.push_back(wb.evictedAddr);
    }
    auto r3 = l3.access(block, write);
    if (r3.hit) {
        out.level = 3;
        out.latency = config_.l3LatencyCycles;
        return out;
    }
    if (r3.writeback)
        out.dramWrites.push_back(r3.evictedAddr);

    out.level = 4;
    out.latency = config_.l3LatencyCycles;
    out.dramRead = true;
    ++dramAccesses_;
    return out;
}

std::uint64_t
Hierarchy::l1Hits() const
{
    std::uint64_t total = 0;
    for (const Cache &cache : l1_)
        total += cache.hits();
    return total;
}

std::uint64_t
Hierarchy::l2Hits() const
{
    std::uint64_t total = 0;
    for (const Cache &cache : l2_)
        total += cache.hits();
    return total;
}

std::uint64_t
Hierarchy::l3Hits() const
{
    std::uint64_t total = 0;
    for (const Cache &cache : l3_)
        total += cache.hits();
    return total;
}

} // namespace menda::cache
