/**
 * @file
 * Set-associative write-back caches and the three-level hierarchy used
 * to replay CPU baseline traces (Tab. 1: 32 KB L1 / 256 KB L2 / 3 MB L3,
 * 64 B blocks, 8-way, 16 MSHR entries per core).
 */

#ifndef MENDA_CACHE_CACHE_HH
#define MENDA_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace menda::cache
{

/** One set-associative, true-LRU, write-back, write-allocate cache. */
class Cache
{
  public:
    struct AccessResult
    {
        bool hit = false;
        bool writeback = false; ///< a dirty block was evicted
        Addr evictedAddr = 0;   ///< block address of the victim
    };

    Cache(std::uint64_t size_bytes, unsigned associativity);

    /** Look up @p addr; allocate on miss; update LRU and dirty bits. */
    AccessResult access(Addr addr, bool write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate everything (between replay experiments). */
    void reset();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    unsigned sets_;
    unsigned ways_;
    std::uint64_t useClock_ = 0;
    std::vector<Line> lines_;

    Counter hits_, misses_, writebacks_;
};

/**
 * Private L1+L2 per thread, L3 shared within a cluster of threads
 * (modeling the CCX structure of the baseline CPU). Returns where an
 * access was satisfied and any DRAM traffic it generated.
 */
class Hierarchy
{
  public:
    struct Config
    {
        std::uint64_t l1Bytes = 32 * 1024;
        std::uint64_t l2Bytes = 256 * 1024;
        std::uint64_t l3Bytes = 3 * 1024 * 1024;
        unsigned associativity = 8;
        unsigned threadsPerCluster = 8;
        unsigned l1LatencyCycles = 4;
        unsigned l2LatencyCycles = 12;
        unsigned l3LatencyCycles = 38;
    };

    struct Outcome
    {
        unsigned level = 0;       ///< 1, 2, 3 = hit level; 4 = DRAM
        unsigned latency = 0;     ///< on-chip latency component
        bool dramRead = false;    ///< must fetch the block from DRAM
        std::vector<Addr> dramWrites; ///< dirty writebacks to DRAM
    };

    Hierarchy(const Config &config, unsigned threads);

    Outcome access(unsigned thread, Addr addr, bool write);

    std::uint64_t l1Hits() const;
    std::uint64_t l2Hits() const;
    std::uint64_t l3Hits() const;
    std::uint64_t dramAccesses() const { return dramAccesses_.value(); }

  private:
    Config config_;
    std::vector<Cache> l1_, l2_, l3_;
    unsigned threadsPerCluster_;
    Counter dramAccesses_;
};

} // namespace menda::cache

#endif // MENDA_CACHE_CACHE_HH
