#include "cosparse/cosparse.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"

namespace menda::cosparse
{

namespace
{

/** Positive edge weight derived from the stored value. */
double
weightOf(Value v)
{
    return 1.0 + std::abs(static_cast<double>(v));
}

/** Folded sequential recording, as in the CPU baselines. */
struct SeqCursor
{
    Addr last = ~Addr(0);

    void
    touch(trace::TraceRecorder &rec, unsigned pe, Addr addr, bool write)
    {
        const Addr block = blockAlign(addr);
        if (block != last) {
            rec.access(pe, reinterpret_cast<const void *>(block), write);
            last = block;
        }
    }
};

} // namespace

CosparseFramework::CosparseFramework(sparse::CsrMatrix graph,
                                     const CosparseConfig &config)
    : config_(config), a_(std::move(graph)),
      at_(sparse::transposeReference(a_))
{
    // Synthetic physical layout; 1 GiB strides keep regions disjoint.
    const Addr gib = 1ull << 30;
    baseRowPtr_ = 1 * gib;
    baseIdx_ = 2 * gib;
    baseVal_ = 3 * gib;
    baseVec_ = 4 * gib;
    baseOut_ = 5 * gib;
    baseColPtr_ = 6 * gib;
    baseColIdx_ = 7 * gib;
    baseColVal_ = 8 * gib;
}

Addr
CosparseFramework::mapAddr(Addr base, std::uint64_t index,
                           std::uint64_t element_bytes,
                           std::uint64_t total_elements) const
{
    if (!config_.mendaMapping || total_elements == 0)
        return base + index * element_bytes;
    // MeNDA's layout (Sec. 3.5): the array is cut into `ranks`
    // NNZ-contiguous chunks and page coloring pins each chunk's pages to
    // its rank. We emulate the colored allocator against the DRAM
    // decoder's bit layout: rank bits sit at page-frame bits [5, 5+log2
    // ranks), so the n-th page of rank r maps to frame
    // ((n / 32) * 32 * ranks) | (r * 32) | (n % 32).
    const std::uint64_t chunk =
        (total_elements + config_.ranks - 1) / config_.ranks;
    const std::uint64_t rank = std::min<std::uint64_t>(index / chunk,
                                                       config_.ranks - 1);
    const std::uint64_t within = index - rank * chunk;
    const Addr byte = within * element_bytes;
    const std::uint64_t page = (base >> 12) + (byte >> 12);
    const std::uint64_t frame = ((page >> 5) * 32 * config_.ranks) |
                                (rank * 32) | (page & 31);
    return (frame << 12) | (byte & 0xfff);
}

double
CosparseFramework::timeDenseIteration()
{
    // Pull-style inner-product SpMV over the CSC representation: every
    // PE sweeps an NNZ-balanced span of columns, streaming (index,
    // value) and gathering the source-vertex vector elements.
    trace::TraceRecorder rec(config_.pes());
    const std::uint64_t nnz = at_.nnz();
    std::vector<SeqCursor> ptr_cur(config_.pes()), idx_cur(config_.pes()),
        val_cur(config_.pes()), out_cur(config_.pes());

    // Split columns by nnz share.
    unsigned pe = 0;
    std::uint64_t quota = (nnz + config_.pes() - 1) / config_.pes();
    std::uint64_t used = 0;
    for (Index c = 0; c < at_.cols; ++c) {
        ptr_cur[pe].touch(rec, pe,
                          mapAddr(baseColPtr_, c, 4, at_.cols + 1), false);
        for (std::uint32_t k = at_.ptr[c]; k < at_.ptr[c + 1]; ++k) {
            idx_cur[pe].touch(rec, pe, mapAddr(baseColIdx_, k, 4, nnz),
                              false);
            val_cur[pe].touch(rec, pe, mapAddr(baseColVal_, k, 4, nnz),
                              false);
            // Gather of the source vector element: irregular.
            rec.access(pe, reinterpret_cast<const void *>(
                               mapAddr(baseVec_, at_.idx[k], 4, at_.rows)),
                       false);
            ++used;
        }
        out_cur[pe].touch(rec, pe, mapAddr(baseOut_, c, 4, at_.cols),
                          true);
        if (used >= quota && pe + 1 < config_.pes()) {
            ++pe;
            used = 0;
        }
    }
    return trace::replayTrace(rec, config_.replay).seconds;
}

double
CosparseFramework::timeSparseIteration(const std::vector<Index> &frontier)
{
    // Push-style outer-product: active vertices' rows stream out and
    // scatter updates to the destination vector.
    trace::TraceRecorder rec(config_.pes());
    std::vector<SeqCursor> idx_cur(config_.pes()), val_cur(config_.pes());
    const std::uint64_t nnz = a_.nnz();
    unsigned pe = 0;
    for (Index u : frontier) {
        rec.access(pe, reinterpret_cast<const void *>(
                           mapAddr(baseRowPtr_, u, 4, a_.rows + 1)),
                   false);
        for (std::uint32_t k = a_.ptr[u]; k < a_.ptr[u + 1]; ++k) {
            idx_cur[pe].touch(rec, pe, mapAddr(baseIdx_, k, 4, nnz),
                              false);
            val_cur[pe].touch(rec, pe, mapAddr(baseVal_, k, 4, nnz),
                              false);
            rec.access(pe, reinterpret_cast<const void *>(
                               mapAddr(baseOut_, a_.idx[k], 4, a_.cols)),
                       true);
        }
        pe = (pe + 1) % config_.pes();
    }
    return trace::replayTrace(rec, config_.replay).seconds;
}

SsspResult
CosparseFramework::sssp(Index source)
{
    menda_assert(source < a_.rows, "SSSP source out of range");
    SsspResult result;
    const double inf = std::numeric_limits<double>::infinity();
    result.distance.assign(a_.rows, inf);
    result.distance[source] = 0.0;

    std::vector<Index> frontier{source};
    bool was_dense = false;
    bool first = true;
    double dense_time = -1.0;

    while (!frontier.empty()) {
        const bool dense =
            frontier.size() >
            static_cast<std::uint64_t>(config_.denseThreshold * a_.rows);
        if (!first && dense != was_dense)
            ++result.directionSwitches;
        first = false;
        was_dense = dense;

        IterationRecord record;
        record.dense = dense;
        record.frontier = frontier.size();

        std::vector<char> changed(a_.rows, 0);
        if (dense) {
            // Pull: every vertex scans its in-edges.
            for (Index v = 0; v < a_.rows; ++v) {
                for (std::uint32_t k = at_.ptr[v]; k < at_.ptr[v + 1];
                     ++k) {
                    const Index u = at_.idx[k];
                    const double cand =
                        result.distance[u] + weightOf(at_.val[k]);
                    if (cand < result.distance[v]) {
                        result.distance[v] = cand;
                        changed[v] = 1;
                    }
                }
            }
            if (dense_time < 0.0)
                dense_time = timeDenseIteration();
            record.seconds = dense_time;
            result.denseSeconds += record.seconds;
            ++result.denseIterations;
        } else {
            // Push: frontier vertices relax their out-edges.
            for (Index u : frontier) {
                for (std::uint32_t k = a_.ptr[u]; k < a_.ptr[u + 1];
                     ++k) {
                    const Index v = a_.idx[k];
                    const double cand =
                        result.distance[u] + weightOf(a_.val[k]);
                    if (cand < result.distance[v]) {
                        result.distance[v] = cand;
                        changed[v] = 1;
                    }
                }
            }
            record.seconds = timeSparseIteration(frontier);
            result.sparseSeconds += record.seconds;
            ++result.sparseIterations;
        }

        frontier.clear();
        for (Index v = 0; v < a_.rows; ++v)
            if (changed[v])
                frontier.push_back(v);
        result.iterations.push_back(record);
    }
    return result;
}

BfsResult
CosparseFramework::bfs(Index source)
{
    menda_assert(source < a_.rows, "BFS source out of range");
    BfsResult result;
    result.depth.assign(a_.rows, -1);
    result.depth[source] = 0;

    std::vector<Index> frontier{source};
    bool was_dense = false, first = true;
    double dense_time = -1.0;
    std::int64_t depth = 0;

    while (!frontier.empty()) {
        const bool dense =
            frontier.size() >
            static_cast<std::uint64_t>(config_.denseThreshold * a_.rows);
        if (!first && dense != was_dense)
            ++result.directionSwitches;
        first = false;
        was_dense = dense;

        IterationRecord record;
        record.dense = dense;
        record.frontier = frontier.size();
        std::vector<Index> next;
        if (dense) {
            for (Index v = 0; v < a_.rows; ++v) {
                if (result.depth[v] != -1)
                    continue;
                for (std::uint32_t k = at_.ptr[v]; k < at_.ptr[v + 1];
                     ++k) {
                    if (result.depth[at_.idx[k]] == depth) {
                        result.depth[v] = depth + 1;
                        next.push_back(v);
                        break;
                    }
                }
            }
            if (dense_time < 0.0)
                dense_time = timeDenseIteration();
            record.seconds = dense_time;
            result.denseSeconds += record.seconds;
            ++result.denseIterations;
        } else {
            for (Index u : frontier) {
                for (std::uint32_t k = a_.ptr[u]; k < a_.ptr[u + 1];
                     ++k) {
                    const Index v = a_.idx[k];
                    if (result.depth[v] == -1) {
                        result.depth[v] = depth + 1;
                        next.push_back(v);
                    }
                }
            }
            record.seconds = timeSparseIteration(frontier);
            result.sparseSeconds += record.seconds;
            ++result.sparseIterations;
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        frontier = std::move(next);
        ++depth;
        result.iterations.push_back(record);
    }
    return result;
}

ComponentsResult
CosparseFramework::connectedComponents()
{
    // Min-label propagation over the *undirected* structure (an edge in
    // either direction joins two vertices' components), expressed as
    // iterated (min, select) SpMV — CoSPARSE switches direction exactly
    // as for SSSP.
    ComponentsResult result;
    result.component.resize(a_.rows);
    for (Index v = 0; v < a_.rows; ++v)
        result.component[v] = v;

    std::vector<Index> frontier(a_.rows);
    for (Index v = 0; v < a_.rows; ++v)
        frontier[v] = v;
    bool was_dense = false, first = true;
    double dense_time = -1.0;

    while (!frontier.empty()) {
        const bool dense =
            frontier.size() >
            static_cast<std::uint64_t>(config_.denseThreshold * a_.rows);
        if (!first && dense != was_dense)
            ++result.directionSwitches;
        first = false;
        was_dense = dense;

        IterationRecord record;
        record.dense = dense;
        record.frontier = frontier.size();

        std::vector<char> changed(a_.rows, 0);
        auto relax = [&](Index u, Index v) {
            const Index label = result.component[u];
            if (label < result.component[v]) {
                result.component[v] = label;
                changed[v] = 1;
            }
        };
        if (dense) {
            for (Index v = 0; v < a_.rows; ++v)
                for (std::uint32_t k = at_.ptr[v]; k < at_.ptr[v + 1];
                     ++k)
                    relax(at_.idx[k], v);
            for (Index u = 0; u < a_.rows; ++u)
                for (std::uint32_t k = a_.ptr[u]; k < a_.ptr[u + 1];
                     ++k)
                    relax(a_.idx[k], u);
            if (dense_time < 0.0)
                dense_time = timeDenseIteration();
            record.seconds = dense_time;
            result.denseSeconds += record.seconds;
            ++result.denseIterations;
        } else {
            for (Index u : frontier) {
                for (std::uint32_t k = a_.ptr[u]; k < a_.ptr[u + 1];
                     ++k)
                    relax(u, a_.idx[k]);
                for (std::uint32_t k = at_.ptr[u]; k < at_.ptr[u + 1];
                     ++k)
                    relax(u, at_.idx[k]);
            }
            record.seconds = timeSparseIteration(frontier);
            result.sparseSeconds += record.seconds;
            ++result.sparseIterations;
        }

        frontier.clear();
        for (Index v = 0; v < a_.rows; ++v)
            if (changed[v])
                frontier.push_back(v);
        result.iterations.push_back(record);
    }

    for (Index v = 0; v < a_.rows; ++v)
        result.count += result.component[v] == v;
    return result;
}

PageRankResult
CosparseFramework::pagerank(unsigned iterations, double damping)
{
    PageRankResult result;
    const double n = static_cast<double>(a_.rows);
    result.rank.assign(a_.rows, 1.0 / n);
    std::vector<double> outdeg(a_.rows, 0.0);
    for (Index u = 0; u < a_.rows; ++u)
        outdeg[u] = static_cast<double>(a_.ptr[u + 1] - a_.ptr[u]);

    double dense_time = -1.0;
    for (unsigned it = 0; it < iterations; ++it) {
        std::vector<double> next(a_.rows, (1.0 - damping) / n);
        for (Index v = 0; v < a_.rows; ++v) {
            for (std::uint32_t k = at_.ptr[v]; k < at_.ptr[v + 1]; ++k) {
                const Index u = at_.idx[k];
                if (outdeg[u] > 0.0)
                    next[v] += damping * result.rank[u] / outdeg[u];
            }
        }
        result.rank = std::move(next);

        IterationRecord record;
        record.dense = true;
        record.frontier = a_.rows;
        if (dense_time < 0.0)
            dense_time = timeDenseIteration();
        record.seconds = dense_time;
        result.denseSeconds += record.seconds;
        ++result.denseIterations;
        result.iterations.push_back(record);
    }
    return result;
}

} // namespace menda::cosparse
