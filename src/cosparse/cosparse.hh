/**
 * @file
 * CoSPARSE-style reconfigurable SpMV graph framework (Sec. 4.1, Fig. 8b).
 *
 * CoSPARSE (Feng et al., DAC'21) runs graph algorithms as iterated SpMV
 * on a reconfigurable substrate of A tiles x B PEs (8x16 in the paper's
 * integration study) and switches direction per iteration, Beamer-style:
 *
 *   - dense iterations: inner-product SpMV over row-major data (the
 *     original graph A), touching every vertex;
 *   - sparse iterations: outer-product SpMV over CSC data (Aᵀ),
 *     touching only the active frontier's columns.
 *
 * Switching needs both A and Aᵀ: either two copies of the graph are
 * stored (CoSPARSE ~2xStorage), or the graph is transposed at runtime
 * (mergeTrans on the host, or MeNDA near memory).
 *
 * Timing is transaction-level: every iteration's per-PE memory accesses
 * are recorded and replayed through the shared cache/DRAM model
 * (src/trace), under either the original contiguous address mapping or
 * the Sec. 3.5 rank-partitioned mapping MeNDA requires — the comparison
 * behind Fig. 11's "memory mapping has negligible impact" claim.
 */

#ifndef MENDA_COSPARSE_COSPARSE_HH
#define MENDA_COSPARSE_COSPARSE_HH

#include <cstdint>
#include <vector>

#include "sparse/format.hh"
#include "trace/replay.hh"

namespace menda::cosparse
{

struct CosparseConfig
{
    unsigned tiles = 8;
    unsigned pesPerTile = 16;
    /**
     * Frontier fraction above which the framework switches to the dense
     * dataflow. Calibrated so SSSP on the amazon stand-in reproduces the
     * paper's profile ("the number of the sparse iterations is twice
     * that of the dense", Sec. 6.3).
     */
    double denseThreshold = 0.02;
    bool mendaMapping = false;    ///< rank-partitioned address layout
    unsigned ranks = 4;           ///< partitions under MeNDA mapping
    trace::ReplayConfig replay = [] {
        trace::ReplayConfig rc;
        rc.dram = dram::DramConfig::ddr4_2400r(4); // 4 ranks per channel
        return rc;
    }();                          ///< memory system of the substrate

    unsigned pes() const { return tiles * pesPerTile; }
};

/** One executed iteration of a switching algorithm. */
struct IterationRecord
{
    bool dense = false;
    std::uint64_t frontier = 0; ///< active vertices entering it
    double seconds = 0.0;
};

struct AlgorithmResult
{
    std::vector<IterationRecord> iterations;
    std::uint64_t denseIterations = 0;
    std::uint64_t sparseIterations = 0;
    double denseSeconds = 0.0;
    double sparseSeconds = 0.0;
    std::uint64_t directionSwitches = 0;

    double totalSeconds() const { return denseSeconds + sparseSeconds; }
};

struct SsspResult : AlgorithmResult
{
    std::vector<double> distance;
};

struct BfsResult : AlgorithmResult
{
    std::vector<std::int64_t> depth; ///< -1 = unreachable
};

struct PageRankResult : AlgorithmResult
{
    std::vector<double> rank;
};

struct ComponentsResult : AlgorithmResult
{
    std::vector<Index> component; ///< representative vertex per vertex
    Index count = 0;              ///< number of weakly connected components
};

class CosparseFramework
{
  public:
    /**
     * @param graph  adjacency matrix A in CSR (edge weights = values);
     *               copied, so temporaries are safe to pass
     */
    CosparseFramework(sparse::CsrMatrix graph,
                      const CosparseConfig &config);

    /** Single-source shortest path with direction switching. */
    SsspResult sssp(Index source);

    /** Breadth-first search (unit weights) with direction switching. */
    BfsResult bfs(Index source);

    /** PageRank: dense iterations only (every vertex always active). */
    PageRankResult pagerank(unsigned iterations, double damping = 0.85);

    /**
     * Weakly connected components by label propagation (min-label
     * SpMV semiring) with direction switching.
     */
    ComponentsResult connectedComponents();

    const CosparseConfig &config() const { return config_; }

  private:
    /** Record & replay one dense inner-product iteration. */
    double timeDenseIteration();

    /** Record & replay one sparse outer-product iteration. */
    double timeSparseIteration(const std::vector<Index> &frontier);

    /** Apply the configured address mapping to an array element. */
    Addr mapAddr(Addr base, std::uint64_t index, std::uint64_t
                 element_bytes, std::uint64_t total_elements) const;

    CosparseConfig config_;
    sparse::CsrMatrix a_;          ///< row-major representation (owned)
    sparse::CscMatrix at_;         ///< CSC representation (= Aᵀ in CSR)

    // Synthetic physical bases for the data arrays (timing only).
    Addr baseRowPtr_, baseIdx_, baseVal_, baseVec_, baseOut_;
    Addr baseColPtr_, baseColIdx_, baseColVal_;
};

} // namespace menda::cosparse

#endif // MENDA_COSPARSE_COSPARSE_HH
