#include "power/power_model.hh"

namespace menda::power
{

double
PuPowerModel::puWatts(const core::PuConfig &config,
                      bool spmv_units_active) const
{
    // Structure scaling relative to the synthesized anchor.
    const double tree_scale =
        static_cast<double>(config.leaves - 1) / (anchorLeaves - 1);
    const double buffer_scale =
        (static_cast<double>(config.leaves) *
         config.prefetchBufferEntries) /
        (static_cast<double>(anchorLeaves) * anchorBufferEntries);

    const double structural =
        anchorWatts * (treeFraction * tree_scale +
                       bufferFraction * buffer_scale + controlFraction);

    // Frequency scaling applies to the dynamic share only.
    const double freq_scale =
        static_cast<double>(config.freqMhz) / anchorFreqMhz;
    double watts = structural * (leakageShare +
                                 (1.0 - leakageShare) * freq_scale);
    if (spmv_units_active)
        watts += spmvExtraWatts * (leakageShare +
                                   (1.0 - leakageShare) * freq_scale);
    return watts;
}

double
PuPowerModel::puAreaMm2(const core::PuConfig &config) const
{
    const double tree_scale =
        static_cast<double>(config.leaves - 1) / (anchorLeaves - 1);
    const double buffer_scale =
        (static_cast<double>(config.leaves) *
         config.prefetchBufferEntries) /
        (static_cast<double>(anchorLeaves) * anchorBufferEntries);
    return anchorAreaMm2 * (treeFraction * tree_scale +
                            bufferFraction * buffer_scale +
                            controlFraction);
}

} // namespace menda::power
