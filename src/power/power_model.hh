/**
 * @file
 * Area/power/energy models (Sec. 6.2, Fig. 15, Fig. 16).
 *
 * Anchored to the paper's 40 nm Synopsys DC synthesis results:
 * a MeNDA PU consumes 78.6 mW at 800 MHz in 7.1 mm²; the extra SpMV
 * logic (vectorized FP multiplier, delay buffer, reduction adders) adds
 * up to 13.8 mW and negligible area. The model splits the total into
 * components that scale differently with the Fig. 15 design-space axes:
 *
 *   - merge-tree logic scales with the PE count (leaves - 1);
 *   - prefetch-buffer SRAM scales with leaves x entries;
 *   - control + memory-interface power is roughly fixed;
 *   - dynamic power scales linearly with frequency, leakage does not.
 *
 * DRAM energy uses flat per-command/burst energies typical of DDR4
 * datasheet IDD values; only relative EDP trends are consumed by the
 * benches, matching how the paper uses them.
 */

#ifndef MENDA_POWER_POWER_MODEL_HH
#define MENDA_POWER_POWER_MODEL_HH

#include <cstdint>

#include "menda/pu_config.hh"

namespace menda::power
{

struct PuPowerModel
{
    // --- synthesis anchor (Tab. 1 nominal configuration) ---
    double anchorWatts = 0.0786;   ///< 78.6 mW @ 800 MHz, 1024 leaves
    double anchorAreaMm2 = 7.1;    ///< in 40 nm
    double spmvExtraWatts = 0.0138;///< gated off during transposition
    std::uint64_t anchorFreqMhz = 800;
    unsigned anchorLeaves = 1024;
    unsigned anchorBufferEntries = 32;

    // --- component split of the anchor power (documented assumption) --
    double treeFraction = 0.30;    ///< PE comparators + FIFOs
    double bufferFraction = 0.40;  ///< multi-bank prefetch SRAM
    double controlFraction = 0.30; ///< controller + memory interface
    double leakageShare = 0.15;    ///< fraction not scaling with f

    /** PU power in watts for an arbitrary configuration. */
    double puWatts(const core::PuConfig &config,
                   bool spmv_units_active = false) const;

    /** PU area in mm^2 (40 nm). */
    double puAreaMm2(const core::PuConfig &config) const;
};

struct DramPowerModel
{
    double actPrechargeNj = 1.5;  ///< per ACT/PRE pair
    double burstNj = 5.0;         ///< per 64 B RD/WR burst (core)
    double ioNj = 2.5;            ///< per burst on-DIMM I/O
    double backgroundWatts = 0.075; ///< per rank

    /** Rank energy in joules over an execution window. */
    double
    energyJ(std::uint64_t activates, std::uint64_t bursts,
            double seconds) const
    {
        return activates * actPrechargeNj * 1e-9 +
               bursts * (burstNj + ioNj) * 1e-9 +
               backgroundWatts * seconds;
    }
};

/** Energy-delay product in J*s. */
inline double
edp(double energy_j, double seconds)
{
    return energy_j * seconds;
}

} // namespace menda::power

#endif // MENDA_POWER_POWER_MODEL_HH
