/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All matrix generators use this RNG so that every experiment is exactly
 * reproducible across runs and platforms (std::mt19937_64 distributions are
 * not guaranteed portable; we implement our own bounded draws).
 */

#ifndef MENDA_COMMON_RANDOM_HH
#define MENDA_COMMON_RANDOM_HH

#include <cstdint>

namespace menda
{

/**
 * xoshiro256** generator. Small, fast, and with a portable, fully
 * specified output sequence.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded draw (biased by < 2^-64
        // per draw which is irrelevant for workload generation).
        const unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float value usable as a matrix non-zero in [-1, 1]. */
    float
    value()
    {
        return static_cast<float>(uniform() * 2.0 - 1.0);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &state)
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace menda

#endif // MENDA_COMMON_RANDOM_HH
