/**
 * @file
 * Minimal logging and error-reporting facilities, in the spirit of
 * gem5's logging.hh: fatal() for user errors, panic() for internal bugs,
 * warn()/inform() for status messages.
 */

#ifndef MENDA_COMMON_LOG_HH
#define MENDA_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace menda
{

/** Verbosity levels for runtime logging. */
enum class LogLevel
{
    Quiet = 0,
    Info = 1,
    Debug = 2,
};

/** Global log level; settable via MENDA_LOG env var or setLogLevel(). */
LogLevel logLevel();

/** Override the global log level. */
void setLogLevel(LogLevel level);

namespace detail
{

[[noreturn]] void failImpl(const char *kind, const char *file, int line,
                           const std::string &msg);

void messageImpl(const char *kind, const std::string &msg);

template <typename... Args>
std::string
formatArgs(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort simulation because of an internal inconsistency (a simulator bug).
 */
#define menda_panic(...)                                                     \
    ::menda::detail::failImpl("panic", __FILE__, __LINE__,                   \
                              ::menda::detail::formatArgs(__VA_ARGS__))

/**
 * Exit because the simulation cannot continue due to a user-facing error
 * (bad configuration, invalid input matrix, ...).
 */
#define menda_fatal(...)                                                     \
    ::menda::detail::failImpl("fatal", __FILE__, __LINE__,                   \
                              ::menda::detail::formatArgs(__VA_ARGS__))

/** Warn about suspicious but non-fatal conditions. */
#define menda_warn(...)                                                      \
    ::menda::detail::messageImpl("warn",                                     \
                                 ::menda::detail::formatArgs(__VA_ARGS__))

/** Informational status message (suppressed at LogLevel::Quiet). */
#define menda_inform(...)                                                    \
    do {                                                                     \
        if (::menda::logLevel() >= ::menda::LogLevel::Info)                  \
            ::menda::detail::messageImpl(                                    \
                "info", ::menda::detail::formatArgs(__VA_ARGS__));           \
    } while (0)

/** Assert an invariant that indicates a simulator bug when violated. */
#define menda_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond))                                                         \
            menda_panic("assertion failed: " #cond " ", ##__VA_ARGS__);      \
    } while (0)

} // namespace menda

#endif // MENDA_COMMON_LOG_HH
