/**
 * @file
 * Fundamental scalar types shared across the MeNDA code base.
 */

#ifndef MENDA_COMMON_TYPES_HH
#define MENDA_COMMON_TYPES_HH

#include <cstdint>

namespace menda
{

/** Simulation tick. One tick is one period of the base (LCM) clock. */
using Tick = std::uint64_t;

/** Cycle count within one clock domain. */
using Cycle = std::uint64_t;

/** Physical (simulated) memory address in bytes. */
using Addr = std::uint64_t;

/** Matrix row/column index. The paper uses 32-bit indices in packets. */
using Index = std::uint32_t;

/** Non-zero value. The paper streams 32-bit values. */
using Value = float;

/** Size of one memory block / DRAM access granularity (bytes). */
inline constexpr Addr blockBytes = 64;

/** Default OS page size used by the page-coloring allocator (bytes). */
inline constexpr Addr pageBytes = 4096;

/** Align @p addr down to the containing 64 B memory block. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~(blockBytes - 1);
}

/** Align @p addr up to the next 64 B block boundary. */
constexpr Addr
blockAlignUp(Addr addr)
{
    return (addr + blockBytes - 1) & ~(blockBytes - 1);
}

/** Number of 64 B blocks needed to hold @p bytes starting at @p addr. */
constexpr std::uint64_t
blocksSpanned(Addr addr, Addr bytes)
{
    if (bytes == 0)
        return 0;
    return (blockAlign(addr + bytes - 1) - blockAlign(addr)) / blockBytes + 1;
}

} // namespace menda

#endif // MENDA_COMMON_TYPES_HH
