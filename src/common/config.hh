/**
 * @file
 * Simple key-value configuration store used by benches and examples to
 * parse "--key=value" command line options and environment overrides.
 */

#ifndef MENDA_COMMON_CONFIG_HH
#define MENDA_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

namespace menda
{

/**
 * Command-line/environment option parser.
 *
 * Recognized argument forms: "--key=value" and "--flag" (value "1").
 * Unrecognized positional arguments are kept in positional().
 */
class Options
{
  public:
    Options() = default;

    /** Parse argv-style options. Throws on malformed "--" arguments. */
    void parse(int argc, const char *const *argv);

    /** True if @p key was supplied. */
    bool has(const std::string &key) const;

    /** String value or @p fallback. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Integer value or @p fallback; menda_fatal on non-numeric. */
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;

    /** Double value or @p fallback; menda_fatal on non-numeric. */
    double getDouble(const std::string &key, double fallback) const;

    /** Positional (non "--") arguments in order. */
    const std::map<int, std::string> &positional() const
    {
        return positional_;
    }

    /**
     * Benchmark scale divisor: --scale if given, else MENDA_BENCH_SCALE
     * env var, else @p fallback. Matrix dimensions and NNZ in benches are
     * divided by this to keep default runs quick (see DESIGN.md §4).
     */
    std::uint64_t scale(std::uint64_t fallback = 8) const;

  private:
    std::map<std::string, std::string> values_;
    std::map<int, std::string> positional_;
};

} // namespace menda

#endif // MENDA_COMMON_CONFIG_HH
