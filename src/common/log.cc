#include "common/log.hh"

#include <cstdlib>
#include <stdexcept>

namespace menda
{

namespace
{

LogLevel
initialLevel()
{
    const char *env = std::getenv("MENDA_LOG");
    if (!env)
        return LogLevel::Quiet;
    switch (env[0]) {
      case '0': case 'q': case 'Q': return LogLevel::Quiet;
      case '2': case 'd': case 'D': return LogLevel::Debug;
      default: return LogLevel::Info;
    }
}

LogLevel globalLevel = initialLevel();

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

void
failImpl(const char *kind, const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing lets tests exercise failure paths; uncaught it terminates.
    throw std::runtime_error(std::string(kind) + ": " + msg);
}

void
messageImpl(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace menda
