#include "common/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace menda
{

void
Options::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg.rfind("--", 0) == 0) {
            auto eq = arg.find('=');
            if (eq == std::string::npos) {
                values_[arg.substr(2)] = "1";
            } else {
                values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positional_[i] = arg;
        }
    }
}

bool
Options::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Options::get(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Options::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        menda_fatal("option --", key, " expects an integer, got '",
                    it->second, "'");
    return v;
}

double
Options::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        menda_fatal("option --", key, " expects a number, got '",
                    it->second, "'");
    return v;
}

std::uint64_t
Options::scale(std::uint64_t fallback) const
{
    if (has("scale")) {
        auto v = getInt("scale", static_cast<std::int64_t>(fallback));
        if (v < 1)
            menda_fatal("--scale must be >= 1");
        return static_cast<std::uint64_t>(v);
    }
    if (const char *env = std::getenv("MENDA_BENCH_SCALE")) {
        char *end = nullptr;
        long long v = std::strtoll(env, &end, 0);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<std::uint64_t>(v);
        menda_warn("ignoring malformed MENDA_BENCH_SCALE='", env, "'");
    }
    return fallback;
}

} // namespace menda
