/**
 * @file
 * Lightweight statistics registry.
 *
 * Simulator components own Counter/Scalar statistics and register them in a
 * StatGroup so harnesses can dump name → value tables without knowing the
 * component internals.
 *
 * Threading contract: Counter and StatGroup are deliberately unsynchronized
 * — every counter is owned by exactly one simulation shard and is only read
 * from other threads after the shard's host thread has been joined (the
 * join is the publication point; see sim/parallel.hh). Statistics that are
 * genuinely updated from several live threads at once (e.g. thread-pool
 * bookkeeping) use AtomicCounter instead.
 */

#ifndef MENDA_COMMON_STATS_HH
#define MENDA_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace menda
{

/** A named 64-bit event counter. Single-writer (see file header). */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A 64-bit event counter safe to bump from concurrently running host
 * threads. Relaxed ordering: counts are totals, not synchronization.
 */
class AtomicCounter
{
  public:
    AtomicCounter() = default;

    void increment(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A log-2 bucketed histogram of 64-bit samples (latencies, run lengths).
 * Sample v lands in bucket floor(log2(v)) + 1; zero has its own bucket 0.
 * Single-writer, like Counter. Histograms from joined shards can be
 * merged bucket-wise, so per-shard instances aggregate exactly.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65; ///< bucket 0 + one per bit

    Histogram() = default;

    void
    record(std::uint64_t sample)
    {
        ++buckets_[bucketOf(sample)];
        ++count_;
        sum_ += sample;
        if (sample < min_)
            min_ = sample;
        if (sample > max_)
            max_ = sample;
    }

    /** Bucket-wise accumulate @p other into this histogram. */
    void merge(const Histogram &other);

    void reset() { *this = Histogram{}; }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest recorded sample; 0 when empty. */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }
    std::uint64_t bucket(unsigned b) const { return buckets_[b]; }
    /** Index of the highest non-empty bucket + 1 (0 when empty). */
    unsigned usedBuckets() const;

    /**
     * Estimate the @p q quantile (q in [0,1], e.g. 0.5 / 0.95 / 0.99)
     * of the recorded samples from the bucket counts alone: locate the
     * bucket holding the nearest-rank sample, interpolate linearly by
     * rank position across the bucket's value range, and clamp to the
     * recorded [min, max]. The estimate always lands inside the value
     * range of the bucket containing the true nearest-rank sample, so
     * it is within a factor of 2 of the exact answer, and exact when
     * every sample in that bucket is the same value (min == max pins
     * the degenerate one-value case). Merged histograms estimate the
     * quantiles of the combined sample set.
     */
    double quantile(double q) const;

    static unsigned
    bucketOf(std::uint64_t sample)
    {
        unsigned b = 0;
        while (sample != 0) {
            ++b;
            sample >>= 1;
        }
        return b;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/**
 * Periodic time series of a counter-like value: one sample per
 * @p period cycles of the owning component's clock. Single-writer.
 * A period of 0 disables sampling entirely (every call is a cheap
 * compare). Components drive it from tick(): because a quiescent
 * (skipped) window is by definition a no-op, the sampled value is
 * constant across the window and the post-skip catch-up records it
 * once at the first boundary after the skip — deterministically, since
 * the component's cycle evolution is deterministic.
 */
class IntervalSampler
{
  public:
    IntervalSampler() = default;

    /** (Re)arm with a sample period in cycles; 0 disables. */
    void
    configure(std::uint64_t period)
    {
        period_ = period;
        nextSampleAt_ = 0;
        samples_.clear();
        sampleCycles_.clear();
    }

    bool enabled() const { return period_ != 0; }
    std::uint64_t period() const { return period_; }

    /** Record @p value if a period boundary has been reached. */
    void
    sample(std::uint64_t now, std::uint64_t value)
    {
        if (period_ == 0 || now < nextSampleAt_)
            return;
        sampleCycles_.push_back(now);
        samples_.push_back(value);
        nextSampleAt_ = now - (now % period_) + period_;
    }

    /**
     * Catch up across a fast-forwarded span: record @p value at each
     * period boundary in (lastBoundary, now]. Fast-forward skips the
     * per-cycle sample() calls, so without this the series would have a
     * hole over the span; with it the series stays boundary-aligned. A
     * long span is capped at a bounded number of points (the value is
     * constant over the span anyway) and the cursor jumps past @p now.
     */
    void
    fillTo(std::uint64_t now, std::uint64_t value)
    {
        if (period_ == 0 || now < nextSampleAt_)
            return;
        constexpr unsigned kMaxCatchupPoints = 64;
        unsigned emitted = 0;
        while (nextSampleAt_ <= now && emitted < kMaxCatchupPoints) {
            sampleCycles_.push_back(nextSampleAt_);
            samples_.push_back(value);
            nextSampleAt_ += period_;
            ++emitted;
        }
        if (nextSampleAt_ <= now)
            nextSampleAt_ = now - (now % period_) + period_;
    }

    const std::vector<std::uint64_t> &values() const { return samples_; }
    const std::vector<std::uint64_t> &cycles() const
    {
        return sampleCycles_;
    }
    std::uint64_t lastValue() const
    {
        return samples_.empty() ? 0 : samples_.back();
    }

  private:
    std::uint64_t period_ = 0;
    std::uint64_t nextSampleAt_ = 0;
    std::vector<std::uint64_t> samples_;
    std::vector<std::uint64_t> sampleCycles_;
};

/**
 * A flat registry of statistics belonging to one component instance.
 * Children may be attached to build hierarchical names ("pu0.tree.pops").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. The counter must outlive us. */
    void add(const std::string &stat_name, const Counter &counter);

    /** Register a thread-safe counter under @p stat_name. */
    void add(const std::string &stat_name, const AtomicCounter &counter);

    /** Register a derived (computed on demand) floating point stat. */
    void add(const std::string &stat_name, double *value);

    /** Register a histogram; collect() flattens its summary stats. */
    void add(const std::string &stat_name, const Histogram &histogram);

    /** Register a sampler; collect() flattens its summary stats. */
    void add(const std::string &stat_name, const IntervalSampler &sampler);

    /** Attach a child group; its stats are prefixed with its name. */
    void addChild(const StatGroup &child);

    const std::string &name() const { return name_; }

    /** Collect all stats (recursively) as fully-qualified name → value. */
    std::map<std::string, double> collect() const;

    /** Registered histograms of this group (no children), in add order. */
    const std::vector<std::pair<std::string, const Histogram *>> &
    histograms() const
    {
        return histograms_;
    }

    /** Registered samplers of this group (no children), in add order. */
    const std::vector<std::pair<std::string, const IntervalSampler *>> &
    samplers() const
    {
        return samplers_;
    }

    /** Pretty-print all stats to @p os, one per line. */
    void dump(std::ostream &os) const;

    /** Emit all stats as a flat JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    /** menda_assert that @p stat_name is not yet registered here. */
    void checkFresh(const std::string &stat_name) const;

    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const AtomicCounter *>> atomics_;
    std::vector<std::pair<std::string, const double *>> scalars_;
    std::vector<std::pair<std::string, const Histogram *>> histograms_;
    std::vector<std::pair<std::string, const IntervalSampler *>> samplers_;
    std::vector<const StatGroup *> children_;
};

} // namespace menda

#endif // MENDA_COMMON_STATS_HH
