/**
 * @file
 * Lightweight statistics registry.
 *
 * Simulator components own Counter/Scalar statistics and register them in a
 * StatGroup so harnesses can dump name → value tables without knowing the
 * component internals.
 */

#ifndef MENDA_COMMON_STATS_HH
#define MENDA_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace menda
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A flat registry of statistics belonging to one component instance.
 * Children may be attached to build hierarchical names ("pu0.tree.pops").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. The counter must outlive us. */
    void add(const std::string &stat_name, const Counter &counter);

    /** Register a derived (computed on demand) floating point stat. */
    void add(const std::string &stat_name, double *value);

    /** Attach a child group; its stats are prefixed with its name. */
    void addChild(const StatGroup &child);

    const std::string &name() const { return name_; }

    /** Collect all stats (recursively) as fully-qualified name → value. */
    std::map<std::string, double> collect() const;

    /** Pretty-print all stats to @p os, one per line. */
    void dump(std::ostream &os) const;

    /** Emit all stats as a flat JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const double *>> scalars_;
    std::vector<const StatGroup *> children_;
};

} // namespace menda

#endif // MENDA_COMMON_STATS_HH
