/**
 * @file
 * Lightweight statistics registry.
 *
 * Simulator components own Counter/Scalar statistics and register them in a
 * StatGroup so harnesses can dump name → value tables without knowing the
 * component internals.
 *
 * Threading contract: Counter and StatGroup are deliberately unsynchronized
 * — every counter is owned by exactly one simulation shard and is only read
 * from other threads after the shard's host thread has been joined (the
 * join is the publication point; see sim/parallel.hh). Statistics that are
 * genuinely updated from several live threads at once (e.g. thread-pool
 * bookkeeping) use AtomicCounter instead.
 */

#ifndef MENDA_COMMON_STATS_HH
#define MENDA_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace menda
{

/** A named 64-bit event counter. Single-writer (see file header). */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A 64-bit event counter safe to bump from concurrently running host
 * threads. Relaxed ordering: counts are totals, not synchronization.
 */
class AtomicCounter
{
  public:
    AtomicCounter() = default;

    void increment(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * A flat registry of statistics belonging to one component instance.
 * Children may be attached to build hierarchical names ("pu0.tree.pops").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. The counter must outlive us. */
    void add(const std::string &stat_name, const Counter &counter);

    /** Register a thread-safe counter under @p stat_name. */
    void add(const std::string &stat_name, const AtomicCounter &counter);

    /** Register a derived (computed on demand) floating point stat. */
    void add(const std::string &stat_name, double *value);

    /** Attach a child group; its stats are prefixed with its name. */
    void addChild(const StatGroup &child);

    const std::string &name() const { return name_; }

    /** Collect all stats (recursively) as fully-qualified name → value. */
    std::map<std::string, double> collect() const;

    /** Pretty-print all stats to @p os, one per line. */
    void dump(std::ostream &os) const;

    /** Emit all stats as a flat JSON object. */
    void dumpJson(std::ostream &os) const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const AtomicCounter *>> atomics_;
    std::vector<std::pair<std::string, const double *>> scalars_;
    std::vector<const StatGroup *> children_;
};

} // namespace menda

#endif // MENDA_COMMON_STATS_HH
