#include "common/stats.hh"

#include <cmath>

#include "common/log.hh"

namespace menda
{

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;

    // Nearest-rank: the k-th smallest sample with k = ceil(q * count),
    // clamped to [1, count] so q = 0 still names the smallest sample.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    if (rank > count_)
        rank = count_;

    std::uint64_t before = 0; // samples in buckets below b
    unsigned b = 0;
    while (before + buckets_[b] < rank) {
        before += buckets_[b];
        ++b;
    }

    // Bucket 0 holds only zeros; bucket b >= 1 holds [2^(b-1), 2^b - 1].
    if (b == 0)
        return 0.0;
    const double lo =
        static_cast<double>(std::uint64_t(1) << (b - 1));
    const double hi = lo * 2.0 - 1.0;

    // Midpoint-rule interpolation by rank position within the bucket.
    const double in_bucket = static_cast<double>(buckets_[b]);
    const double frac =
        (static_cast<double>(rank - before) - 0.5) / in_bucket;
    double estimate = lo + frac * (hi - lo);

    const double min_v = static_cast<double>(min());
    const double max_v = static_cast<double>(max_);
    if (estimate < min_v)
        estimate = min_v;
    if (estimate > max_v)
        estimate = max_v;
    return estimate;
}

unsigned
Histogram::usedBuckets() const
{
    unsigned used = kBuckets;
    while (used > 0 && buckets_[used - 1] == 0)
        --used;
    return used;
}

void
StatGroup::checkFresh(const std::string &stat_name) const
{
    // Silent shadowing of a same-named stat would make collect() report
    // only one of them — a latent reporting bug, so registration is the
    // right place to fail loudly.
    for (const auto &[existing, ptr] : counters_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : atomics_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : scalars_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : histograms_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : samplers_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
}

void
StatGroup::add(const std::string &stat_name, const Counter &counter)
{
    checkFresh(stat_name);
    counters_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, const AtomicCounter &counter)
{
    checkFresh(stat_name);
    atomics_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, double *value)
{
    checkFresh(stat_name);
    scalars_.emplace_back(stat_name, value);
}

void
StatGroup::add(const std::string &stat_name, const Histogram &histogram)
{
    checkFresh(stat_name);
    histograms_.emplace_back(stat_name, &histogram);
}

void
StatGroup::add(const std::string &stat_name, const IntervalSampler &sampler)
{
    checkFresh(stat_name);
    samplers_.emplace_back(stat_name, &sampler);
}

void
StatGroup::addChild(const StatGroup &child)
{
    children_.push_back(&child);
}

std::map<std::string, double>
StatGroup::collect() const
{
    std::map<std::string, double> out;
    for (const auto &[stat_name, counter] : counters_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, counter] : atomics_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, value] : scalars_)
        out[name_ + "." + stat_name] = *value;
    for (const auto &[stat_name, hist] : histograms_) {
        const std::string base = name_ + "." + stat_name;
        out[base + ".count"] = static_cast<double>(hist->count());
        out[base + ".mean"] = hist->mean();
        out[base + ".max"] = static_cast<double>(hist->max());
    }
    for (const auto &[stat_name, sampler] : samplers_) {
        const std::string base = name_ + "." + stat_name;
        out[base + ".samples"] =
            static_cast<double>(sampler->values().size());
        out[base + ".last"] = static_cast<double>(sampler->lastValue());
    }
    for (const StatGroup *child : children_)
        for (const auto &[child_name, value] : child->collect())
            out[name_ + "." + child_name] = value;
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, value] : collect())
        os << stat_name << " " << value << "\n";
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[stat_name, value] : collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stat_name << "\":" << value;
    }
    os << "}";
}

} // namespace menda
