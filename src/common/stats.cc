#include "common/stats.hh"

namespace menda
{

void
StatGroup::add(const std::string &stat_name, const Counter &counter)
{
    counters_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, const AtomicCounter &counter)
{
    atomics_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, double *value)
{
    scalars_.emplace_back(stat_name, value);
}

void
StatGroup::addChild(const StatGroup &child)
{
    children_.push_back(&child);
}

std::map<std::string, double>
StatGroup::collect() const
{
    std::map<std::string, double> out;
    for (const auto &[stat_name, counter] : counters_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, counter] : atomics_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, value] : scalars_)
        out[name_ + "." + stat_name] = *value;
    for (const StatGroup *child : children_)
        for (const auto &[child_name, value] : child->collect())
            out[name_ + "." + child_name] = value;
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, value] : collect())
        os << stat_name << " " << value << "\n";
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[stat_name, value] : collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stat_name << "\":" << value;
    }
    os << "}";
}

} // namespace menda
