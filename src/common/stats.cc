#include "common/stats.hh"

#include "common/log.hh"

namespace menda
{

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

unsigned
Histogram::usedBuckets() const
{
    unsigned used = kBuckets;
    while (used > 0 && buckets_[used - 1] == 0)
        --used;
    return used;
}

void
StatGroup::checkFresh(const std::string &stat_name) const
{
    // Silent shadowing of a same-named stat would make collect() report
    // only one of them — a latent reporting bug, so registration is the
    // right place to fail loudly.
    for (const auto &[existing, ptr] : counters_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : atomics_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : scalars_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : histograms_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
    for (const auto &[existing, ptr] : samplers_) {
        (void)ptr;
        menda_assert(existing != stat_name, "duplicate stat registration '",
                     name_, ".", stat_name, "'");
    }
}

void
StatGroup::add(const std::string &stat_name, const Counter &counter)
{
    checkFresh(stat_name);
    counters_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, const AtomicCounter &counter)
{
    checkFresh(stat_name);
    atomics_.emplace_back(stat_name, &counter);
}

void
StatGroup::add(const std::string &stat_name, double *value)
{
    checkFresh(stat_name);
    scalars_.emplace_back(stat_name, value);
}

void
StatGroup::add(const std::string &stat_name, const Histogram &histogram)
{
    checkFresh(stat_name);
    histograms_.emplace_back(stat_name, &histogram);
}

void
StatGroup::add(const std::string &stat_name, const IntervalSampler &sampler)
{
    checkFresh(stat_name);
    samplers_.emplace_back(stat_name, &sampler);
}

void
StatGroup::addChild(const StatGroup &child)
{
    children_.push_back(&child);
}

std::map<std::string, double>
StatGroup::collect() const
{
    std::map<std::string, double> out;
    for (const auto &[stat_name, counter] : counters_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, counter] : atomics_)
        out[name_ + "." + stat_name] =
            static_cast<double>(counter->value());
    for (const auto &[stat_name, value] : scalars_)
        out[name_ + "." + stat_name] = *value;
    for (const auto &[stat_name, hist] : histograms_) {
        const std::string base = name_ + "." + stat_name;
        out[base + ".count"] = static_cast<double>(hist->count());
        out[base + ".mean"] = hist->mean();
        out[base + ".max"] = static_cast<double>(hist->max());
    }
    for (const auto &[stat_name, sampler] : samplers_) {
        const std::string base = name_ + "." + stat_name;
        out[base + ".samples"] =
            static_cast<double>(sampler->values().size());
        out[base + ".last"] = static_cast<double>(sampler->lastValue());
    }
    for (const StatGroup *child : children_)
        for (const auto &[child_name, value] : child->collect())
            out[name_ + "." + child_name] = value;
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, value] : collect())
        os << stat_name << " " << value << "\n";
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[stat_name, value] : collect()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stat_name << "\":" << value;
    }
    os << "}";
}

} // namespace menda
