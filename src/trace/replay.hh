/**
 * @file
 * Multi-threaded trace replay through the cache hierarchy and DRAM model
 * — our stand-in for "Ramulator CPU mode with a custom implementation of
 * barrier synchronization" (Sec. 5.1).
 *
 * Each recorded thread replays its event stream on a simple in-order
 * core model: cache hits complete with their level's latency, misses
 * allocate one of 16 MSHRs and overlap (hit-under-miss / miss-under-miss)
 * until the MSHRs are exhausted, and barrier markers hold a thread until
 * every thread has arrived with no outstanding misses. DRAM traffic is
 * interleaved block-wise across four DDR4-2400 channels — the 76.8 GB/s
 * theoretical peak of the baseline CPU (Sec. 2.2).
 */

#ifndef MENDA_TRACE_REPLAY_HH
#define MENDA_TRACE_REPLAY_HH

#include <cstdint>

#include "cache/cache.hh"
#include "dram/dram_config.hh"
#include "trace/recorder.hh"

namespace menda::trace
{

struct ReplayConfig
{
    std::uint64_t cpuFreqMhz = 3000;     ///< baseline CPU clock
    unsigned mshrPerThread = 16;         ///< Tab. 1
    unsigned channels = 4;               ///< quad-channel DDR4-2400
    cache::Hierarchy::Config cache;      ///< Tab. 1 cache parameters
    dram::DramConfig dram = dram::DramConfig::ddr4_2400r(2);

    /** Theoretical peak DRAM bandwidth (bytes/sec). */
    double
    peakBandwidth() const
    {
        return dram.peakBandwidth() * channels;
    }
};

struct ReplayResult
{
    double seconds = 0.0;
    std::uint64_t cpuCycles = 0;
    std::uint64_t dramReadBlocks = 0;
    std::uint64_t dramWriteBlocks = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;

    std::uint64_t
    dramBytes() const
    {
        return (dramReadBlocks + dramWriteBlocks) * blockBytes;
    }

    /** Utilized memory bandwidth in bytes/sec (Fig. 3(b) metric). */
    double
    achievedBandwidth() const
    {
        return seconds > 0.0 ? static_cast<double>(dramBytes()) / seconds
                             : 0.0;
    }
};

/** Replay every recorded stream to completion and report timing. */
ReplayResult replayTrace(const TraceRecorder &recorder,
                         const ReplayConfig &config);

} // namespace menda::trace

#endif // MENDA_TRACE_REPLAY_HH
