/**
 * @file
 * Memory trace capture for the CPU-baseline characterization (Sec. 5.1).
 *
 * The paper builds its roofline and thread-scaling figures by collecting
 * memory traces from mergeTrans and replaying them in Ramulator's CPU
 * mode with custom barrier synchronization. We do the same: the baseline
 * implementations are instrumented to record every data-array access per
 * thread, with barrier markers where the parallel algorithm
 * synchronizes; src/trace/replay.hh replays them through a cache
 * hierarchy and the DRAM model.
 */

#ifndef MENDA_TRACE_RECORDER_HH
#define MENDA_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace menda::trace
{

/**
 * A packed trace event. Bit 0: write flag; bits 1..63: byte address.
 * The all-ones pattern is a barrier marker.
 */
using Event = std::uint64_t;

inline constexpr Event barrierEvent = ~Event(0);

constexpr Event
makeEvent(Addr addr, bool write)
{
    return (addr << 1) | (write ? 1 : 0);
}

constexpr Addr
eventAddr(Event event)
{
    return event >> 1;
}

constexpr bool
eventIsWrite(Event event)
{
    return (event & 1) != 0;
}

constexpr bool
eventIsBarrier(Event event)
{
    return event == barrierEvent;
}

/**
 * Collects one event stream per thread. Threads record concurrently into
 * disjoint slots, so no locking is needed; barriers are recorded in every
 * participating thread's stream.
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(unsigned threads) : streams_(threads) {}

    unsigned threads() const { return static_cast<unsigned>(streams_.size()); }

    /** Record a data access from @p thread. */
    void
    access(unsigned thread, const void *ptr, bool write)
    {
        streams_[thread].push_back(
            makeEvent(reinterpret_cast<Addr>(ptr), write));
    }

    /** Record that @p thread arrived at a barrier. */
    void
    barrier(unsigned thread)
    {
        streams_[thread].push_back(barrierEvent);
    }

    const std::vector<Event> &stream(unsigned thread) const
    {
        return streams_[thread];
    }

    std::uint64_t
    totalAccesses() const
    {
        std::uint64_t count = 0;
        for (const auto &stream : streams_)
            for (Event event : stream)
                count += !eventIsBarrier(event);
        return count;
    }

  private:
    std::vector<std::vector<Event>> streams_;
};

} // namespace menda::trace

#endif // MENDA_TRACE_RECORDER_HH
