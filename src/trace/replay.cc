#include "trace/replay.hh"

#include <deque>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "dram/controller.hh"
#include "sim/clock.hh"

namespace menda::trace
{

namespace
{

struct ThreadState
{
    const std::vector<Event> *stream = nullptr;
    std::size_t index = 0;
    unsigned outstanding = 0;
    Cycle stallUntil = 0;
    bool atBarrier = false;
    std::deque<Addr> pendingWrites; ///< writebacks awaiting queue space
    std::deque<Addr> pendingReads;  ///< misses awaiting queue space

    bool
    doneIssuing() const
    {
        return index >= stream->size() && pendingWrites.empty() &&
               pendingReads.empty();
    }

    bool
    fullyDone() const
    {
        return doneIssuing() && outstanding == 0;
    }
};

/** The CPU side: all threads, ticked at the CPU clock. */
class CpuModel : public Ticked
{
  public:
    CpuModel(const TraceRecorder &recorder, const ReplayConfig &config,
             std::vector<std::unique_ptr<dram::MemoryController>> &chans)
        : config_(config),
          hierarchy_(config.cache, recorder.threads()),
          channels_(chans),
          threads_(recorder.threads())
    {
        for (unsigned t = 0; t < recorder.threads(); ++t)
            threads_[t].stream = &recorder.stream(t);
        for (auto &chan : channels_) {
            chan->setResponseCallback([this](const mem::MemRequest &req) {
                menda_assert(threads_[req.requester].outstanding > 0,
                             "response without outstanding miss");
                --threads_[req.requester].outstanding;
            });
        }
    }

    void
    tick() override
    {
        ++cycle_;
        maybeReleaseBarrier();
        for (unsigned t = 0; t < threads_.size(); ++t)
            step(t);
    }

    bool
    done() const
    {
        for (const ThreadState &thread : threads_)
            if (!thread.fullyDone())
                return false;
        return true;
    }

    Cycle cycles() const { return cycle_; }
    const cache::Hierarchy &hierarchy() const { return hierarchy_; }

  private:
    dram::MemoryController &
    channelOf(Addr addr)
    {
        return *channels_[(addr / blockBytes) % channels_.size()];
    }

    void
    maybeReleaseBarrier()
    {
        // Release only when every thread has arrived (or fully retired
        // its stream) and barrier-waiting threads have no miss in flight.
        for (const ThreadState &thread : threads_) {
            const bool arrived = thread.atBarrier ||
                                 thread.index >= thread.stream->size();
            if (!arrived)
                return;
            if (thread.atBarrier && thread.outstanding != 0)
                return;
        }
        for (ThreadState &thread : threads_)
            thread.atBarrier = false;
    }

    void
    step(unsigned t)
    {
        ThreadState &thread = threads_[t];
        if (thread.atBarrier || cycle_ < thread.stallUntil)
            return;

        // Retry stashed requests first (they already hold their MSHR /
        // writeback buffer entry and must reach DRAM eventually).
        if (!thread.pendingReads.empty()) {
            mem::MemRequest req;
            req.addr = thread.pendingReads.front();
            req.requester = t;
            if (channelOf(req.addr).enqueue(req))
                thread.pendingReads.pop_front();
            return;
        }
        if (!thread.pendingWrites.empty()) {
            mem::MemRequest req;
            req.addr = blockAlign(thread.pendingWrites.front());
            req.isWrite = true;
            req.requester = t;
            if (channelOf(req.addr).enqueue(req))
                thread.pendingWrites.pop_front();
            return;
        }
        if (thread.index >= thread.stream->size())
            return;

        const Event event = (*thread.stream)[thread.index];
        if (eventIsBarrier(event)) {
            thread.atBarrier = true;
            ++thread.index;
            return;
        }
        if (thread.outstanding >= config_.mshrPerThread)
            return; // MSHRs exhausted

        const Addr addr = eventAddr(event);
        const bool write = eventIsWrite(event);
        auto outcome = hierarchy_.access(t, addr, write);
        for (Addr wb : outcome.dramWrites)
            thread.pendingWrites.push_back(wb);
        if (outcome.dramRead) {
            mem::MemRequest req;
            req.addr = blockAlign(addr);
            req.requester = t;
            ++thread.outstanding;
            if (!channelOf(req.addr).enqueue(req)) {
                // Channel queue full: hold the miss in its MSHR and
                // retry the enqueue on subsequent cycles.
                thread.pendingReads.push_back(req.addr);
            }
        } else if (outcome.level > 1) {
            // On-chip hits pipeline: a modern core overlaps L2/L3 hit
            // latency with subsequent independent accesses, so charge
            // only a fraction of it as issue stall.
            thread.stallUntil = cycle_ + outcome.latency / 4;
        }
        ++thread.index;
    }

    const ReplayConfig &config_;
    cache::Hierarchy hierarchy_;
    std::vector<std::unique_ptr<dram::MemoryController>> &channels_;
    std::vector<ThreadState> threads_;
    Cycle cycle_ = 0;
};

} // namespace

ReplayResult
replayTrace(const TraceRecorder &recorder, const ReplayConfig &config)
{
    TickScheduler sched;
    ClockDomain *cpu_clk = sched.addDomain("cpu", config.cpuFreqMhz);
    ClockDomain *mem_clk = sched.addDomain("dram", config.dram.freqMhz);

    std::vector<std::unique_ptr<dram::MemoryController>> channels;
    for (unsigned c = 0; c < config.channels; ++c) {
        channels.push_back(std::make_unique<dram::MemoryController>(
            "chan" + std::to_string(c), config.dram, false));
        mem_clk->attach(channels.back().get());
    }

    CpuModel cpu(recorder, config, channels);
    cpu_clk->attach(&cpu);

    sched.runUntil([&] {
        if (!cpu.done())
            return false;
        for (const auto &chan : channels)
            if (!chan->idle())
                return false;
        return true;
    });

    ReplayResult result;
    result.seconds = sched.seconds();
    result.cpuCycles = cpu.cycles();
    for (const auto &chan : channels) {
        result.dramReadBlocks += chan->readsServed();
        result.dramWriteBlocks += chan->writesServed();
    }
    result.l1Hits = cpu.hierarchy().l1Hits();
    result.l2Hits = cpu.hierarchy().l2Hits();
    result.l3Hits = cpu.hierarchy().l3Hits();
    return result;
}

} // namespace menda::trace
