/**
 * @file
 * Host-side planning for the outer-product SpGEMM dataflow (C = A x B)
 * on the MeNDA PU.
 *
 * SpGEMM reduces to exactly the primitive MeNDA accelerates: every
 * non-zero A(i,k) selects row k of B, scaled by A(i,k), as one sorted
 * partial-product stream of output row i, and all streams of a rank's
 * row slice are merged by (row, col) with duplicate keys accumulated
 * (the SpArch observation). Two planning problems are solved here:
 *
 *  - Work partitioning: PU execution time tracks the number of partial
 *    products it merges, not A's NNZ, so the Sec. 3.5 balancing
 *    algorithm (sparse::partitionByWeight) runs on the per-row
 *    partial-product prefix instead of the row pointer array.
 *  - Round decomposition: a slice's merge fan-in (its A non-zero count)
 *    routinely exceeds the hardware tree width l. The merge is then
 *    decomposed into hierarchical rounds: each round merges up to l
 *    streams into one sorted run spilled to the DRAM-resident COO
 *    ping-pong buffer, and the runs are re-fed through the prefetch
 *    buffers as the next iteration's streams until one run remains.
 */

#ifndef MENDA_SPGEMM_PLAN_HH
#define MENDA_SPGEMM_PLAN_HH

#include <cstdint>
#include <vector>

#include "sparse/format.hh"
#include "sparse/partition.hh"

namespace menda::spgemm
{

/** Scheduler for the multi-round SpGEMM merge decomposition. */
enum class SpgemmScheduler : std::uint8_t
{
    /** ceil(n / l) equal rounds per iteration (planMergeRounds). */
    Uniform,
    /** Condensed leaves + size-aware deferral (planMergeTree). */
    Huffman,
};

/** Host-side SpGEMM planning knobs (lives in PuConfig::spgemm). */
struct SpgemmConfig
{
    SpgemmScheduler scheduler = SpgemmScheduler::Uniform;

    /**
     * Maximum partial-product streams condensed into one packed leaf
     * (Huffman scheduler only). Streams pack while their output rows
     * stay strictly increasing, so concatenation is already sorted.
     */
    unsigned condenseCap = 64;
};

/** Per-row merge-work profile of C = A x B. */
struct WorkProfile
{
    /** rows + 1 entries: cumulative partial products up to each row. */
    std::vector<std::uint64_t> prefix;

    /**
     * Per-stream NNZ: one entry per A non-zero in row-major order (==
     * the length of the B row it selects). This is exactly the stream
     * size profile the Huffman scheduler condenses and orders by.
     */
    std::vector<std::uint64_t> streamElements;

    /** Total partial products (merge elements) of the product. */
    std::uint64_t
    total() const
    {
        return prefix.empty() ? 0 : prefix.back();
    }
};

/** Count the partial products each row of A x B generates. */
WorkProfile profileWork(const sparse::CsrMatrix &a,
                        const sparse::CsrMatrix &b);

/** Partial products of the whole product (== profileWork().total()). */
std::uint64_t partialProductCount(const sparse::CsrMatrix &a,
                                  const sparse::CsrMatrix &b);

/**
 * Split A's rows into @p parts contiguous slices so every rank merges a
 * near-equal share of the partial products (Sec. 3.5 balancing on the
 * work prefix). nnzBegin/nnzEnd are rebuilt against A's row pointers so
 * the slices drive sparse::extractSlice directly.
 */
std::vector<sparse::RowSlice> partitionByMergeWork(
    const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
    unsigned parts);

/** Hierarchical decomposition of one rank's merge. */
struct MergeSchedule
{
    std::uint64_t fanIn = 0; ///< initial sorted streams (slice A NNZ)
    unsigned leaves = 0;     ///< hardware tree width

    /** PU iterations, including the final (non-spilling) one. */
    unsigned iterations = 0;

    /** Merge rounds per iteration; the last entry is <= 1. */
    std::vector<std::uint64_t> roundsPerIteration;

    /**
     * COO elements written to the intermediate ping-pong buffer and
     * read back: every non-final iteration spills the slice's full
     * partial-product set once.
     */
    std::uint64_t spilledElements = 0;

    /** Spill traffic in bytes: 3 x 4 B arrays, written and re-read. */
    std::uint64_t
    spilledBytes() const
    {
        return spilledElements * 12 * 2;
    }

    /** True if the fan-in does not fit one pass through the tree. */
    bool multiRound() const { return iterations > 1; }
};

/**
 * Decompose a merge of @p fan_in sorted streams totalling
 * @p partial_products elements on an @p leaves-way tree under the
 * *uniform* scheduler (SpgemmScheduler::Uniform, the differential
 * oracle): ceil(n / l) rounds per iteration, every round output
 * becomes a next-iteration stream, and the iteration whose fan-in fits
 * a single round is final. Every non-final iteration therefore spills
 * the slice's full element set. The Huffman scheduler (planMergeTree)
 * instead defers large streams to late iterations and spills only what
 * it actually merges early; the PU controller honors whichever plan
 * PuConfig::spgemm.scheduler selects.
 */
MergeSchedule planMergeRounds(std::uint64_t fan_in, unsigned leaves,
                              std::uint64_t partial_products);

/**
 * A packed leaf: @p streamCount consecutive partial-product streams
 * starting at @p firstStream whose output rows strictly increase, so
 * their concatenation is one already-sorted stream of @p elements
 * merge elements. Single-stream leaves (streamCount == 1) keep their
 * original fetch path.
 */
struct CondensedLeaf
{
    std::uint64_t firstStream = 0;
    std::uint32_t streamCount = 0;
    std::uint64_t elements = 0;
};

/**
 * Greedily pack runs of consecutive streams with strictly increasing
 * output rows (up to @p cap streams per pack) into condensed leaves.
 * Streams sharing an output row — a multi-NNZ A row — never pack,
 * because their key ranges interleave. Covers every stream exactly
 * once, in order.
 */
struct PartialProductStream;

std::vector<CondensedLeaf>
condenseStreams(const std::vector<PartialProductStream> &streams,
                unsigned cap);

/** One merge-tree input: a condensed leaf or a prior-iteration run. */
struct StreamRef
{
    enum class Kind : std::uint8_t
    {
        Leaf, ///< index = condensed-leaf ordinal
        Run,  ///< index = round ordinal within the previous iteration
    };
    Kind kind = Kind::Leaf;
    std::uint32_t index = 0;
};

/** One merge round: up to `leaves` inputs folded into one sorted run. */
struct MergeRound
{
    std::vector<StreamRef> inputs;
};

struct MergeIteration
{
    std::vector<MergeRound> rounds;
};

/**
 * Size-aware merge schedule (SpgemmScheduler::Huffman). Inputs stay in
 * stream-ordinal order — every round merges a *contiguous* ordinal
 * window, which is what keeps equal-key FP accumulation order, and so
 * the CSR bytes, identical to the uniform plan and spgemmHeapMerge.
 */
struct MergeTreePlan
{
    unsigned leaves = 0;
    std::vector<MergeIteration> iterations;

    /** COO elements written to the ping-pong across all iterations. */
    std::uint64_t spilledElements = 0;
};

/**
 * Plan a merge of @p leaf_sizes.size() condensed leaves on an
 * @p leaves-way tree, Huffman-style: within each non-final iteration
 * the largest leaves that can still be deferred without adding an
 * iteration are pushed to later rounds, so their elements never
 * transit the spill buffer. Runs (prior-iteration outputs) are always
 * consumed the very next iteration — the ping-pong only holds two
 * buffers. The iteration count always equals the uniform plan's, and
 * spilledElements is <= the uniform plan's for the same profile.
 */
MergeTreePlan planMergeTree(const std::vector<std::uint64_t> &leaf_sizes,
                            unsigned leaves);

} // namespace menda::spgemm

#endif // MENDA_SPGEMM_PLAN_HH
