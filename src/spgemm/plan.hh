/**
 * @file
 * Host-side planning for the outer-product SpGEMM dataflow (C = A x B)
 * on the MeNDA PU.
 *
 * SpGEMM reduces to exactly the primitive MeNDA accelerates: every
 * non-zero A(i,k) selects row k of B, scaled by A(i,k), as one sorted
 * partial-product stream of output row i, and all streams of a rank's
 * row slice are merged by (row, col) with duplicate keys accumulated
 * (the SpArch observation). Two planning problems are solved here:
 *
 *  - Work partitioning: PU execution time tracks the number of partial
 *    products it merges, not A's NNZ, so the Sec. 3.5 balancing
 *    algorithm (sparse::partitionByWeight) runs on the per-row
 *    partial-product prefix instead of the row pointer array.
 *  - Round decomposition: a slice's merge fan-in (its A non-zero count)
 *    routinely exceeds the hardware tree width l. The merge is then
 *    decomposed into hierarchical rounds: each round merges up to l
 *    streams into one sorted run spilled to the DRAM-resident COO
 *    ping-pong buffer, and the runs are re-fed through the prefetch
 *    buffers as the next iteration's streams until one run remains.
 */

#ifndef MENDA_SPGEMM_PLAN_HH
#define MENDA_SPGEMM_PLAN_HH

#include <cstdint>
#include <vector>

#include "sparse/format.hh"
#include "sparse/partition.hh"

namespace menda::spgemm
{

/** Per-row merge-work profile of C = A x B. */
struct WorkProfile
{
    /** rows + 1 entries: cumulative partial products up to each row. */
    std::vector<std::uint64_t> prefix;

    /** Total partial products (merge elements) of the product. */
    std::uint64_t
    total() const
    {
        return prefix.empty() ? 0 : prefix.back();
    }
};

/** Count the partial products each row of A x B generates. */
WorkProfile profileWork(const sparse::CsrMatrix &a,
                        const sparse::CsrMatrix &b);

/** Partial products of the whole product (== profileWork().total()). */
std::uint64_t partialProductCount(const sparse::CsrMatrix &a,
                                  const sparse::CsrMatrix &b);

/**
 * Split A's rows into @p parts contiguous slices so every rank merges a
 * near-equal share of the partial products (Sec. 3.5 balancing on the
 * work prefix). nnzBegin/nnzEnd are rebuilt against A's row pointers so
 * the slices drive sparse::extractSlice directly.
 */
std::vector<sparse::RowSlice> partitionByMergeWork(
    const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
    unsigned parts);

/** Hierarchical decomposition of one rank's merge. */
struct MergeSchedule
{
    std::uint64_t fanIn = 0; ///< initial sorted streams (slice A NNZ)
    unsigned leaves = 0;     ///< hardware tree width

    /** PU iterations, including the final (non-spilling) one. */
    unsigned iterations = 0;

    /** Merge rounds per iteration; the last entry is <= 1. */
    std::vector<std::uint64_t> roundsPerIteration;

    /**
     * COO elements written to the intermediate ping-pong buffer and
     * read back: every non-final iteration spills the slice's full
     * partial-product set once.
     */
    std::uint64_t spilledElements = 0;

    /** Spill traffic in bytes: 3 x 4 B arrays, written and re-read. */
    std::uint64_t
    spilledBytes() const
    {
        return spilledElements * 12 * 2;
    }

    /** True if the fan-in does not fit one pass through the tree. */
    bool multiRound() const { return iterations > 1; }
};

/**
 * Decompose a merge of @p fan_in sorted streams totalling
 * @p partial_products elements on an @p leaves-way tree. Mirrors the PU
 * controller exactly: ceil(n / l) rounds per iteration, the round
 * outputs become the next iteration's streams, and the iteration whose
 * fan-in fits a single round is final.
 */
MergeSchedule planMergeRounds(std::uint64_t fan_in, unsigned leaves,
                              std::uint64_t partial_products);

} // namespace menda::spgemm

#endif // MENDA_SPGEMM_PLAN_HH
