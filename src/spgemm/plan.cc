#include "spgemm/plan.hh"

#include "common/log.hh"

namespace menda::spgemm
{

WorkProfile
profileWork(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    menda_assert(a.cols == b.rows,
                 "profileWork: inner dimensions must agree");
    WorkProfile profile;
    profile.prefix.resize(static_cast<std::size_t>(a.rows) + 1, 0);
    for (Index r = 0; r < a.rows; ++r) {
        std::uint64_t row_work = 0;
        for (std::uint64_t e = a.ptr[r]; e < a.ptr[r + 1]; ++e) {
            const Index k = a.idx[e];
            row_work += b.ptr[k + 1] - b.ptr[k];
        }
        profile.prefix[r + 1] = profile.prefix[r] + row_work;
    }
    return profile;
}

std::uint64_t
partialProductCount(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    return profileWork(a, b).total();
}

std::vector<sparse::RowSlice>
partitionByMergeWork(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
                     unsigned parts)
{
    const WorkProfile profile = profileWork(a, b);
    std::vector<sparse::RowSlice> slices =
        sparse::partitionByWeight(profile.prefix, parts);
    // partitionByWeight leaves the weight prefix in nnzBegin/nnzEnd;
    // rebuild them from A's row pointers so extractSlice works.
    for (sparse::RowSlice &slice : slices) {
        slice.nnzBegin = a.ptr[slice.rowBegin];
        slice.nnzEnd = a.ptr[slice.rowEnd];
    }
    return slices;
}

MergeSchedule
planMergeRounds(std::uint64_t fan_in, unsigned leaves,
                std::uint64_t partial_products)
{
    menda_assert(leaves >= 2, "planMergeRounds: tree needs >= 2 leaves");
    MergeSchedule schedule;
    schedule.fanIn = fan_in;
    schedule.leaves = leaves;
    // Mirror of Pu::setupIteration / finishIteration: each iteration
    // merges n streams in ceil(n / leaves) rounds; if more than one
    // round was needed, the round outputs (each a sorted run of the
    // slice's full element set) become the next iteration's streams.
    std::uint64_t n = fan_in;
    do {
        const std::uint64_t rounds = (n + leaves - 1) / leaves;
        schedule.roundsPerIteration.push_back(rounds);
        ++schedule.iterations;
        if (rounds <= 1)
            break;
        schedule.spilledElements += partial_products;
        n = rounds;
    } while (true);
    return schedule;
}

} // namespace menda::spgemm
