#include "spgemm/plan.hh"

#include <algorithm>
#include <set>

#include "common/log.hh"
#include "spgemm/partial_products.hh"

namespace menda::spgemm
{

WorkProfile
profileWork(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    menda_assert(a.cols == b.rows,
                 "profileWork: inner dimensions must agree");
    WorkProfile profile;
    profile.prefix.resize(static_cast<std::size_t>(a.rows) + 1, 0);
    profile.streamElements.reserve(a.nnz());
    for (Index r = 0; r < a.rows; ++r) {
        std::uint64_t row_work = 0;
        for (std::uint64_t e = a.ptr[r]; e < a.ptr[r + 1]; ++e) {
            const Index k = a.idx[e];
            const std::uint64_t stream_nnz = b.ptr[k + 1] - b.ptr[k];
            profile.streamElements.push_back(stream_nnz);
            row_work += stream_nnz;
        }
        profile.prefix[r + 1] = profile.prefix[r] + row_work;
    }
    return profile;
}

std::uint64_t
partialProductCount(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b)
{
    return profileWork(a, b).total();
}

std::vector<sparse::RowSlice>
partitionByMergeWork(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
                     unsigned parts)
{
    const WorkProfile profile = profileWork(a, b);
    std::vector<sparse::RowSlice> slices =
        sparse::partitionByWeight(profile.prefix, parts);
    // partitionByWeight leaves the weight prefix in nnzBegin/nnzEnd;
    // rebuild them from A's row pointers so extractSlice works.
    for (sparse::RowSlice &slice : slices) {
        slice.nnzBegin = a.ptr[slice.rowBegin];
        slice.nnzEnd = a.ptr[slice.rowEnd];
    }
    return slices;
}

MergeSchedule
planMergeRounds(std::uint64_t fan_in, unsigned leaves,
                std::uint64_t partial_products)
{
    menda_assert(leaves >= 2, "planMergeRounds: tree needs >= 2 leaves");
    MergeSchedule schedule;
    schedule.fanIn = fan_in;
    schedule.leaves = leaves;
    // Mirror of Pu::setupIteration / finishIteration: each iteration
    // merges n streams in ceil(n / leaves) rounds; if more than one
    // round was needed, the round outputs (each a sorted run of the
    // slice's full element set) become the next iteration's streams.
    std::uint64_t n = fan_in;
    do {
        const std::uint64_t rounds = (n + leaves - 1) / leaves;
        schedule.roundsPerIteration.push_back(rounds);
        ++schedule.iterations;
        if (rounds <= 1)
            break;
        schedule.spilledElements += partial_products;
        n = rounds;
    } while (true);
    return schedule;
}

std::vector<CondensedLeaf>
condenseStreams(const std::vector<PartialProductStream> &streams,
                unsigned cap)
{
    if (cap == 0)
        cap = 1;
    std::vector<CondensedLeaf> leaves;
    std::uint64_t s = 0;
    while (s < streams.size()) {
        CondensedLeaf leaf;
        leaf.firstStream = s;
        leaf.streamCount = 1;
        leaf.elements = streams[s].elements();
        // Extend while output rows strictly increase: all keys of
        // stream t-1 then precede all keys of stream t, so plain
        // concatenation is already the stable merge of the pack.
        // Streams of one multi-NNZ A row share an output row and
        // therefore never pack.
        std::uint64_t t = s + 1;
        while (t < streams.size() && leaf.streamCount < cap &&
               streams[t].outRow > streams[t - 1].outRow) {
            leaf.elements += streams[t].elements();
            ++leaf.streamCount;
            ++t;
        }
        leaves.push_back(leaf);
        s = t;
    }
    return leaves;
}

MergeTreePlan
planMergeTree(const std::vector<std::uint64_t> &leaf_sizes, unsigned leaves)
{
    menda_assert(leaves >= 2, "planMergeTree: tree needs >= 2 leaves");
    MergeTreePlan plan;
    plan.leaves = leaves;
    const std::uint64_t l = leaves;

    // Iteration count of the uniform controller from the same leaf
    // count: repeated ceil-division by l. Deferral below never adds an
    // iteration, so the Huffman plan matches this depth exactly.
    unsigned total_iters = 1;
    for (std::uint64_t n = leaf_sizes.size(); n > l; n = (n + l - 1) / l)
        ++total_iters;

    struct Item
    {
        StreamRef ref;
        std::uint64_t size = 0;
    };
    std::vector<Item> items;
    items.reserve(leaf_sizes.size());
    for (std::uint32_t i = 0; i < leaf_sizes.size(); ++i)
        items.push_back({{StreamRef::Kind::Leaf, i}, leaf_sizes[i]});

    const auto ceil_div = [l](std::uint64_t x) { return (x + l - 1) / l; };

    for (unsigned t = 0;; ++t) {
        const std::uint64_t m = items.size();
        if (m <= l) {
            // Final iteration: everything left fits one round.
            MergeIteration iter;
            if (m > 0) {
                MergeRound round;
                for (const Item &item : items)
                    round.inputs.push_back(item.ref);
                iter.rounds.push_back(std::move(round));
            }
            plan.iterations.push_back(std::move(iter));
            break;
        }
        menda_assert(t + 1 < total_iters, "planMergeTree: depth overrun");

        // Largest next-iteration item count that still finishes on
        // schedule: min(m, l^(total_iters - t - 1)), saturated at m.
        // Minimality of total_iters guarantees target < m, so every
        // iteration consumes at least one item.
        std::uint64_t target = 1;
        for (unsigned e = t + 1; e < total_iters && target < m; ++e)
            target = (target > m / l) ? m : target * l;
        target = std::min<std::uint64_t>(target, m);

        // Start from consume-everything — ceil(m / l) sequential
        // windows — then defer the largest leaves one by one while the
        // resulting item count stays within target. Deferring position
        // i splits its window segment in two; the count delta is
        // 1 (the kept leaf) plus the window-count change of the split.
        // Runs are never deferred: the ping-pong buffer they live in
        // is overwritten by the very next iteration's spills.
        std::uint64_t next = ceil_div(m);
        menda_assert(next <= target, "planMergeTree: target unreachable");

        std::set<std::int64_t> deferred;
        deferred.insert(-1);
        deferred.insert(static_cast<std::int64_t>(m));

        std::vector<std::uint64_t> cands;
        for (std::uint64_t i = 0; i < m; ++i)
            if (items[i].ref.kind == StreamRef::Kind::Leaf)
                cands.push_back(i);
        std::stable_sort(cands.begin(), cands.end(),
                         [&](std::uint64_t a, std::uint64_t b) {
                             return items[a].size > items[b].size;
                         });

        for (const std::uint64_t i : cands) {
            const auto right_it =
                deferred.upper_bound(static_cast<std::int64_t>(i));
            const std::int64_t right = *right_it;
            const std::int64_t left = *std::prev(right_it);
            const std::uint64_t g = right - left - 1;
            const std::uint64_t g1 = i - left - 1;
            const std::uint64_t g2 = right - i - 1;
            const std::int64_t dwindows =
                static_cast<std::int64_t>(ceil_div(g1) + ceil_div(g2)) -
                static_cast<std::int64_t>(ceil_div(g));
            const std::int64_t dnext = 1 + dwindows;
            if (static_cast<std::int64_t>(next) + dnext <=
                static_cast<std::int64_t>(target)) {
                deferred.insert(static_cast<std::int64_t>(i));
                next += dnext;
            }
        }

        // Materialize the rounds: walk in ordinal order, chunk every
        // maximal consumed group into <= l contiguous windows. Each
        // window's run re-enters the sequence at the group's position,
        // so ordinal-range order is preserved end to end.
        MergeIteration iter;
        std::vector<Item> next_items;
        next_items.reserve(next);
        std::uint64_t i = 0;
        while (i < m) {
            if (deferred.count(static_cast<std::int64_t>(i))) {
                next_items.push_back(items[i]);
                ++i;
                continue;
            }
            std::uint64_t j = i;
            while (j < m && !deferred.count(static_cast<std::int64_t>(j)))
                ++j;
            for (std::uint64_t c = i; c < j; c += l) {
                const std::uint64_t e = std::min(j, c + l);
                MergeRound round;
                std::uint64_t mass = 0;
                for (std::uint64_t k = c; k < e; ++k) {
                    round.inputs.push_back(items[k].ref);
                    mass += items[k].size;
                }
                plan.spilledElements += mass;
                const auto round_ord =
                    static_cast<std::uint32_t>(iter.rounds.size());
                iter.rounds.push_back(std::move(round));
                next_items.push_back(
                    {{StreamRef::Kind::Run, round_ord}, mass});
            }
            i = j;
        }
        menda_assert(next_items.size() == next,
                     "planMergeTree: round accounting drifted");
        plan.iterations.push_back(std::move(iter));
        items = std::move(next_items);
    }
    return plan;
}

} // namespace menda::spgemm
