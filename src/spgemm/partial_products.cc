#include "spgemm/partial_products.hh"

#include "common/log.hh"

namespace menda::spgemm
{

std::vector<PartialProductStream>
buildStreams(const sparse::CsrMatrix &a_slice, const sparse::CsrMatrix &b)
{
    menda_assert(a_slice.cols == b.rows,
                 "buildStreams: inner dimensions must agree");
    std::vector<PartialProductStream> streams;
    streams.reserve(a_slice.nnz());
    for (Index r = 0; r < a_slice.rows; ++r) {
        for (std::uint64_t e = a_slice.ptr[r]; e < a_slice.ptr[r + 1]; ++e) {
            PartialProductStream s;
            s.outRow = r;
            s.bRow = a_slice.idx[e];
            s.scale = a_slice.val[e];
            s.begin = b.ptr[s.bRow];
            s.end = b.ptr[s.bRow + 1];
            streams.push_back(s);
        }
    }
    return streams;
}

} // namespace menda::spgemm
