/**
 * @file
 * Partial-product stream generation for outer-product SpGEMM.
 *
 * Each non-zero A(i,k) of the rank's A slice becomes one sorted input
 * stream: row k of B with every value scaled by A(i,k), emitted under
 * output row i. The streams are enumerated in row-major nonzero order
 * of the slice, which makes the hierarchical stable merge in the PU
 * equivalent to a flat stable k-way merge in stream-ordinal order --
 * the property the exactness guarantee against the CPU heap baseline
 * rests on (see DESIGN.md Sec. 9).
 */

#ifndef MENDA_SPGEMM_PARTIAL_PRODUCTS_HH
#define MENDA_SPGEMM_PARTIAL_PRODUCTS_HH

#include <cstdint>
#include <vector>

#include "sparse/format.hh"

namespace menda::spgemm
{

/** One scaled-B-row stream: elements [begin, end) of B's arrays. */
struct PartialProductStream
{
    Index outRow = 0; ///< output row, LOCAL to the slice
    Index bRow = 0;   ///< source row of B
    Value scale = 0;  ///< A(i, k)
    std::uint64_t begin = 0;  ///< b.ptr[bRow]
    std::uint64_t end = 0;    ///< b.ptr[bRow + 1]

    std::uint64_t elements() const { return end - begin; }
};

/**
 * Enumerate the partial-product streams of @p a_slice x @p b in
 * row-major non-zero order. @p a_slice uses local row numbering
 * (i.e. it is an extractSlice result); streams of empty B rows are
 * included so stream ordinals match A non-zero ordinals.
 */
std::vector<PartialProductStream> buildStreams(
    const sparse::CsrMatrix &a_slice, const sparse::CsrMatrix &b);

} // namespace menda::spgemm

#endif // MENDA_SPGEMM_PARTIAL_PRODUCTS_HH
