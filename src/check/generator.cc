#include "check/generator.hh"

#include <string>
#include <vector>

namespace menda::check
{

template <typename ValueOf>
unsigned
CaseGenerator::pick(const char *dimension, unsigned count,
                    ValueOf &&value_of)
{
    if (!coverage_)
        return static_cast<unsigned>(rng_.below(count));
    std::vector<double> weights(count);
    double total = 0.0;
    for (unsigned i = 0; i < count; ++i) {
        weights[i] = coverage_->weight(std::string(dimension) + "=" +
                                       value_of(i));
        total += weights[i];
    }
    double draw = rng_.uniform() * total;
    for (unsigned i = 0; i < count; ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return count - 1;
}

MatrixSpec
CaseGenerator::randomMatrix(Kernel kernel, bool is_b)
{
    static constexpr MatrixKind kKinds[] = {
        MatrixKind::Uniform,       MatrixKind::Rmat,
        MatrixKind::Banded,        MatrixKind::SkewedRows,
        MatrixKind::EmptyRows,     MatrixKind::DenseRows,
        MatrixKind::SingleColumn,  MatrixKind::DuplicateHeavy,
    };
    MatrixSpec m;
    const char *dimension = is_b ? "matrixB" : "matrix";
    m.kind = kKinds[pick(dimension, 8, [](unsigned i) {
        return matrixKindName(kKinds[i]);
    })];
    // SpGEMM fan-in is A's nnz and the output grows with nnz^2/k, so
    // keep its operands smaller than the single-matrix kernels'.
    const bool spgemm = kernel == Kernel::Spgemm;
    const Index dim_cap = spgemm ? 96 : 384;
    m.rows = 8 + static_cast<Index>(rng_.below(dim_cap));
    m.cols = 8 + static_cast<Index>(rng_.below(dim_cap));
    const std::uint64_t nnz_cap = spgemm ? 700 : 3500;
    m.nnz = 1 + rng_.below(nnz_cap);
    m.seed = rng_.next() | 1;
    return m;
}

CaseSpec
CaseGenerator::next()
{
    CaseSpec spec;
    static constexpr Kernel kKernels[] = {Kernel::Transpose,
                                          Kernel::Spmv, Kernel::Spgemm};
    spec.kernel = kKernels[pick("kernel", 3, [](unsigned i) {
        return kernelName(kKernels[i]);
    })];
    spec.a = randomMatrix(spec.kernel, false);
    if (spec.kernel == Kernel::Spgemm)
        spec.b = randomMatrix(spec.kernel, true);

    static constexpr unsigned kPus[] = {1, 2, 4};
    spec.pus = kPus[pick("pus", 3, [](unsigned i) {
        return std::to_string(kPus[i]);
    })];
    static constexpr unsigned kLeaves[] = {4, 8, 16, 32, 64};
    spec.leaves = kLeaves[pick("leaves", 5, [](unsigned i) {
        return std::to_string(kLeaves[i]);
    })];
    spec.fifoEntries = 2 + static_cast<unsigned>(rng_.below(3));
    static constexpr unsigned kBuf[] = {16, 32, 64, 128};
    spec.prefetchBufferEntries = kBuf[pick("buf", 4, [](unsigned i) {
        return std::to_string(kBuf[i]);
    })];
    const auto on_off = [](unsigned i) { return i == 0 ? "on" : "off"; };
    spec.stallReducingPrefetch = pick("prefetch", 2, on_off) == 0;
    spec.requestCoalescing = pick("coalesce", 2, on_off) == 0;
    spec.seamlessMerge = pick("seamless", 2, on_off) == 0;

    spec.threads = 2 + static_cast<unsigned>(rng_.below(2));
    spec.withReferenceScheduler = true;
    spec.withTrace = rng_.below(4) != 0;
    spec.samplePeriod =
        pick("sampled", 2, on_off) == 0 ? 128 + rng_.below(1024) : 0;
    spec.withFunctional = pick("functional", 2, on_off) == 0;
    spec.withSampledSim = pick("sampledsim", 2, on_off) == 0;
    spec.withServed = pick("served", 2, on_off) == 0;
    // Scheduler axis: SpGEMM cases may also run the condensed (Huffman)
    // planner and diff its CSR against the uniform baseline.
    spec.withCondensed = spec.kernel == Kernel::Spgemm &&
                         pick("condensed", 2, on_off) == 0;

    spec.normalize();
    return spec;
}

} // namespace menda::check
