/**
 * @file
 * Delta-debugging of failing conformance cases.
 *
 * Given a spec whose runCase() fails and a predicate that re-runs a
 * candidate, the minimizer greedily applies shrinking transformations —
 * cut the matrix dimensions and non-zero counts, simplify the matrix
 * family to uniform, collapse the PU shape, and drop engine variants —
 * keeping any candidate that still fails, until no transformation makes
 * progress. The result is the small `.case.json` a human actually wants
 * to stare at, typically a few dozen non-zeros.
 */

#ifndef MENDA_CHECK_MINIMIZE_HH
#define MENDA_CHECK_MINIMIZE_HH

#include <functional>

#include "check/case_spec.hh"

namespace menda::check
{

struct MinimizeResult
{
    CaseSpec spec;        ///< smallest failing spec found
    unsigned attempts = 0; ///< candidate re-runs performed
    unsigned accepted = 0; ///< candidates that still failed
};

/**
 * Shrink @p spec to a local minimum under @p still_fails. The predicate
 * receives normalized candidates; @p spec itself must already fail.
 * @p max_attempts bounds the total number of predicate evaluations.
 */
MinimizeResult
minimizeCase(const CaseSpec &spec,
             const std::function<bool(const CaseSpec &)> &still_fails,
             unsigned max_attempts = 1000);

} // namespace menda::check

#endif // MENDA_CHECK_MINIMIZE_HH
