#include "check/engine.hh"

#include <cmath>
#include <sstream>

#include "baselines/spgemm_cpu.hh"
#include "menda/run_report.hh"
#include "obs/trace.hh"
#include "serve/protocol.hh"
#include "serve/serve_core.hh"

namespace menda::check
{

std::vector<EngineVariant>
variantsFor(const CaseSpec &spec)
{
    std::vector<EngineVariant> variants;
    variants.push_back({"seq", 1, false, false, 0});
    variants.push_back({"threads" + std::to_string(spec.threads),
                        spec.threads, false, false, 0});
    if (spec.withReferenceScheduler)
        variants.push_back({"refsched", 1, true, false, 0});
    if (spec.withTrace)
        variants.push_back({"traced", 1, false, true, 0});
    if (spec.samplePeriod != 0)
        variants.push_back({"sampled", 1, false, false,
                            spec.samplePeriod});
    if (spec.withFunctional) {
        EngineVariant v;
        v.name = "functional";
        v.simMode = core::SimMode::Functional;
        variants.push_back(v);
    }
    if (spec.withSampledSim) {
        EngineVariant v;
        v.name = "sampledsim";
        v.simMode = core::SimMode::Sampled;
        variants.push_back(v);
    }
    if (spec.withServed) {
        EngineVariant v;
        v.name = "served";
        v.served = true;
        variants.push_back(v);
    }
    if (spec.kernel == Kernel::Spgemm && spec.withCondensed) {
        EngineVariant v;
        v.name = "condensed";
        v.condensed = true;
        variants.push_back(v);
        if (spec.withFunctional) {
            // The functional tier must mirror the Huffman schedule
            // too: same CSR, bitwise, through a very different engine.
            EngineVariant f;
            f.name = "condensed-functional";
            f.condensed = true;
            f.simMode = core::SimMode::Functional;
            variants.push_back(f);
        }
    }
    return variants;
}

namespace
{

/**
 * Execute @p spec through an in-process ServeCore: encode the inputs as
 * a `menda.job/1` submit, pump the scheduler until the job completes,
 * and decode outputs + report from the protocol response — the same
 * code path a daemon client exercises, minus the socket.
 */
CaseOutcome
runServed(const CaseSpec &spec)
{
    obs::json::Object request_fields;
    request_fields["schema"] = obs::json::Value(serve::kSchema);
    request_fields["type"] = obs::json::Value("submit");
    request_fields["kernel"] =
        obs::json::Value(std::string(kernelName(spec.kernel)));
    const sparse::CsrMatrix a = buildMatrix(spec.a);
    request_fields["a"] = serve::csrToJson(a);
    if (spec.kernel == Kernel::Spmv)
        request_fields["x"] =
            serve::valueVectorToJson(spec.spmvInput(a.cols));
    else if (spec.kernel == Kernel::Spgemm)
        request_fields["b"] = serve::csrToJson(buildMatrix(spec.b));
    const obs::json::Value request(std::move(request_fields));

    struct ServedRun
    {
        obs::json::Value response;
        std::string journal;
        std::string trace;
    };
    const auto run = [&](unsigned host_threads) -> ServedRun {
        serve::ServeConfig serve_config;
        serve_config.system = spec.systemConfig();
        serve_config.system.hostThreads = host_threads;
        serve_config.ranksPerJob = serve_config.system.totalPus();
        // A small slice forces many step()/yield rounds per job, which
        // is exactly the resumable execution this variant checks; a
        // window every few slices exercises the journal rollovers too.
        serve_config.sliceCycles = 1024;
        serve_config.windowCycles = 4096;
        serve::ServeCore core(serve_config);

        const obs::json::Value submitted = core.handle(request);
        std::string code, message;
        if (serve::isError(submitted, &code, &message))
            throw std::runtime_error("served submit rejected (" + code +
                                     "): " + message);
        const auto id =
            static_cast<std::uint64_t>(submitted.at("id").asNumber());
        core.runUntilIdle();
        return {core.jobResponse(id), core.journalJsonl(),
                core.jobTraceJson()};
    };

    // Run twice at different host thread counts: outputs AND the
    // observability artifacts (journal, job-span trace) must be
    // byte-identical — every timestamp lives on the virtual clock.
    const ServedRun first = run(1);
    const ServedRun second = run(2);
    if (first.journal != second.journal)
        throw std::runtime_error(
            "served journal differs across host threads");
    if (first.trace != second.trace)
        throw std::runtime_error(
            "served job trace differs across host threads");
    if (first.response.serialize() != second.response.serialize())
        throw std::runtime_error(
            "served response differs across host threads");

    const obs::json::Value &response = first.response;
    if (response.at("state").asString() != "done")
        throw std::runtime_error(
            "served job ended in state '" +
            response.at("state").asString() + "'");

    CaseOutcome outcome;
    switch (spec.kernel) {
      case Kernel::Transpose:
        outcome.csc = serve::cscFromJson(response.at("csc"));
        break;
      case Kernel::Spmv:
        outcome.y = serve::doubleVectorFromJson(response.at("y"));
        break;
      case Kernel::Spgemm:
        outcome.c = serve::csrFromJson(response.at("c"));
        break;
    }
    // The served report differs from the direct path's only in its
    // name; after renaming, the bytes must match exactly.
    outcome.report = obs::RunReport::fromJson(
        response.at("report").serialize());
    outcome.report.setName(std::string("menda_check.") +
                           kernelName(spec.kernel));
    outcome.reportJson = outcome.report.toJson();
    return outcome;
}

} // namespace

CaseOutcome
runVariant(const CaseSpec &spec, const EngineVariant &variant)
{
    if (variant.served)
        return runServed(spec);

    core::SystemConfig config = spec.systemConfig();
    config.hostThreads = variant.hostThreads;
    config.dram.referenceScheduler = variant.referenceScheduler;
    config.samplePeriod = variant.samplePeriod;
    config.simMode = variant.simMode;
    if (variant.condensed)
        config.pu.spgemm.scheduler = spgemm::SpgemmScheduler::Huffman;
    if (variant.simMode == core::SimMode::Sampled) {
        // Small windows so tiny fuzz cases still alternate between
        // fast-forward and measurement a few times.
        config.sampled.windowCycles = 512;
        config.sampled.periodCycles = 4096;
        config.sampled.warmupCycles = 128;
    }
    core::MendaSystem sys(config);

    // The traced variant keeps the trace in memory: what matters here is
    // that arming the tracer flips the system onto the sharded
    // simulation path, which must not change any result.
    obs::Tracer tracer(std::size_t{1} << 16);
    if (variant.traced)
        sys.setTracer(&tracer);

    CaseOutcome outcome;
    const sparse::CsrMatrix a = buildMatrix(spec.a);
    core::RunResult run;
    std::uint64_t nnz = a.nnz();
    switch (spec.kernel) {
      case Kernel::Transpose: {
        core::TransposeResult result = sys.transpose(a);
        outcome.csc = std::move(result.csc);
        run = std::move(result);
        break;
      }
      case Kernel::Spmv: {
        core::SpmvResult result = sys.spmv(a, spec.spmvInput(a.cols));
        outcome.y = std::move(result.y);
        run = std::move(result);
        break;
      }
      case Kernel::Spgemm: {
        const sparse::CsrMatrix b = buildMatrix(spec.b);
        core::SpgemmResult result = sys.spgemm(a, b);
        outcome.c = std::move(result.c);
        run = std::move(result);
        break;
      }
    }

    // wall_seconds = 0 keeps host-dependent metrics out entirely, so the
    // report is a pure function of the simulation.
    outcome.report = core::makeRunReport(
        std::string("menda_check.") + kernelName(spec.kernel),
        kernelName(spec.kernel), config, run, nnz, 0.0);
    outcome.reportJson = outcome.report.toJson();
    return outcome;
}

Mismatch
checkGolden(const CaseSpec &spec, const CaseOutcome &outcome)
{
    const sparse::CsrMatrix a = buildMatrix(spec.a);
    switch (spec.kernel) {
      case Kernel::Transpose: {
        const sparse::CscMatrix want = sparse::transposeReference(a);
        if (!(outcome.csc == want))
            return {true, "transpose output differs from the golden "
                          "CPU reference"};
        break;
      }
      case Kernel::Spmv: {
        const std::vector<double> want =
            sparse::spmvReference(a, spec.spmvInput(a.cols));
        if (outcome.y.size() != want.size())
            return {true, "spmv output length differs from reference"};
        for (std::size_t r = 0; r < want.size(); ++r)
            if (std::abs(outcome.y[r] - want[r]) >
                1e-3 * (std::abs(want[r]) + 1.0)) {
                std::ostringstream os;
                os << "spmv row " << r << " differs from reference: "
                   << outcome.y[r] << " vs " << want[r];
                return {true, os.str()};
            }
        break;
      }
      case Kernel::Spgemm: {
        const sparse::CsrMatrix b = buildMatrix(spec.b);
        // The heap merge is the bitwise oracle (identical FP order);
        // the hash accumulator cross-checks values in double precision.
        if (!(outcome.c == baselines::spgemmHeapMerge(a, b)))
            return {true, "spgemm output differs from the heap-merge "
                          "oracle"};
        break;
      }
    }
    return {};
}

namespace
{

Mismatch
mismatch(const EngineVariant &va, const EngineVariant &vb,
         const std::string &what)
{
    return {true, va.name + " vs " + vb.name + ": " + what};
}

} // namespace

Mismatch
diffOutcomes(const CaseSpec &spec, const EngineVariant &va,
             const CaseOutcome &oa, const EngineVariant &vb,
             const CaseOutcome &ob)
{
    switch (spec.kernel) {
      case Kernel::Transpose:
        if (!(oa.csc == ob.csc))
            return mismatch(va, vb, "transpose outputs differ");
        break;
      case Kernel::Spmv:
        // Identical simulation order in every variant means the FP sums
        // must agree bit-for-bit, not just within tolerance.
        if (oa.y != ob.y)
            return mismatch(va, vb, "spmv outputs differ bitwise");
        break;
      case Kernel::Spgemm:
        if (!(oa.c == ob.c))
            return mismatch(va, vb, "spgemm outputs differ");
        break;
    }

    // Fast-tier variants estimate timing: their kernel outputs must be
    // bitwise identical (checked above) but their reports are not
    // comparable against the cycle-accurate engine's. The same holds
    // across schedulers: the condensed variant executes a different
    // merge schedule, so cycles and traffic legitimately diverge while
    // the CSR may not.
    if (va.outputsOnly() || vb.outputsOnly() ||
        va.condensed != vb.condensed)
        return {};

    if (!va.metricsOnly() && !vb.metricsOnly()) {
        if (oa.reportJson != ob.reportJson)
            return mismatch(va, vb, "deterministic run reports are not "
                                    "byte-identical");
        return {};
    }

    // A sampled report additionally carries series; compare the metric
    // set with zero tolerance instead.
    obs::DiffOptions options;
    options.tolerance = 0.0;
    const obs::DiffResult diff =
        diffReports(oa.report, ob.report, options);
    if (!diff.passed) {
        std::ostringstream os;
        os << "metrics diverge:";
        for (const auto &entry : diff.entries)
            if (!entry.ignored && !entry.withinTolerance)
                os << " " << entry.name << " " << entry.baseline
                   << " -> " << entry.current;
        for (const auto &name : diff.missing)
            os << " missing:" << name;
        return mismatch(va, vb, os.str());
    }
    return {};
}

Mismatch
runCase(const CaseSpec &spec, unsigned *runs, unsigned *pairs,
        obs::RunReport *baseline_report)
{
    const std::vector<EngineVariant> variants = variantsFor(spec);
    std::vector<CaseOutcome> outcomes;
    outcomes.reserve(variants.size());
    for (const EngineVariant &variant : variants) {
        outcomes.push_back(runVariant(spec, variant));
        if (runs)
            ++*runs;
    }
    if (baseline_report)
        *baseline_report = outcomes.front().report;

    if (Mismatch golden = checkGolden(spec, outcomes.front())) {
        golden.what = variants.front().name + ": " + golden.what;
        return golden;
    }
    // Baseline-vs-each covers the equivalence classes; all variants are
    // expected equal, so any divergence shows up against the baseline.
    for (std::size_t i = 1; i < variants.size(); ++i) {
        if (pairs)
            ++*pairs;
        if (Mismatch diff =
                diffOutcomes(spec, variants[0], outcomes[0],
                             variants[i], outcomes[i]))
            return diff;
    }
    return {};
}

} // namespace menda::check
