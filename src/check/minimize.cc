#include "check/minimize.hh"

#include <algorithm>
#include <vector>

namespace menda::check
{

namespace
{

/** All one-step shrink candidates of @p spec, roughly biggest cut first. */
std::vector<CaseSpec>
shrinkCandidates(const CaseSpec &spec)
{
    std::vector<CaseSpec> out;
    const auto add = [&](const std::function<void(CaseSpec &)> &mutate) {
        CaseSpec candidate = spec;
        mutate(candidate);
        candidate.normalize();
        if (!(candidate == spec))
            out.push_back(std::move(candidate));
    };

    // Joint jump for SpGEMM: shrinking a alone starves the merge fan-in
    // (and with it the DRAM contention many scheduler failures need), so
    // a greedy per-matrix walk strands b at a large size. Likewise a big
    // machine (many PUs, wide trees, deep buffers) spreads a tiny
    // workload so thin that no two requests ever contend. Try landing
    // matrices AND machine on a tiny-but-busy shape in one step first,
    // under several seeds (the landscape per seed is spiky).
    const bool tiny = spec.a.nnz + spec.b.nnz <= 8 + 24 &&
                      spec.pus == 1 && spec.leaves == 4 &&
                      spec.prefetchBufferEntries == 16;
    if (spec.kernel == Kernel::Spgemm && !tiny) {
        for (std::uint64_t k = 0; k < 6; ++k) {
            add([&](CaseSpec &c) {
                c.a = {MatrixKind::Uniform, 4, 4, 8, c.a.seed + k};
                c.b = {MatrixKind::Uniform, 4, 12, 24, c.b.seed + k};
                c.pus = 1;
                c.leaves = 4;
                c.prefetchBufferEntries = 16;
            });
        }
    }

    const auto shrink_matrix = [&](MatrixSpec CaseSpec::*m) {
        // Any size change redraws the matrix from scratch, so the repro
        // landscape under one fixed seed is spiky — a cut that loses the
        // failure under seed s often keeps it under s+1. Retry the big
        // cuts under a few seeds, starting with a jump straight to a
        // tiny matrix (tried first: when it lands, minimization is
        // nearly done in one accepted step). Every seed-retry candidate
        // is gated on an actual size cut; a bare seed change is not
        // progress and would let the greedy loop churn forever.
        const MatrixSpec &current = spec.*m;
        if (current.rows > 4 || current.cols > 12 || current.nnz > 24) {
            for (std::uint64_t k = 0; k < 4; ++k) {
                add([&](CaseSpec &c) {
                    MatrixSpec &matrix = c.*m;
                    matrix.kind = MatrixKind::Uniform;
                    matrix.rows = std::min<Index>(matrix.rows, 4);
                    matrix.cols = std::min<Index>(matrix.cols, 12);
                    matrix.nnz = std::min<std::uint64_t>(matrix.nnz, 24);
                    matrix.seed += k;
                });
            }
        }
        if (current.nnz > 1) {
            for (std::uint64_t k = 0; k < 4; ++k) {
                add([&](CaseSpec &c) {
                    (c.*m).nnz /= 2;
                    (c.*m).seed += k;
                });
            }
        }
        add([&](CaseSpec &c) { (c.*m).nnz /= 4; });
        add([&](CaseSpec &c) { (c.*m).nnz -= 1; });
        add([&](CaseSpec &c) {
            (c.*m).rows /= 2;
            (c.*m).nnz /= 2;
        });
        add([&](CaseSpec &c) { (c.*m).rows -= 1; });
        add([&](CaseSpec &c) {
            (c.*m).cols /= 2;
            (c.*m).nnz /= 2;
        });
        add([&](CaseSpec &c) { (c.*m).cols -= 1; });
        add([&](CaseSpec &c) { (c.*m).kind = MatrixKind::Uniform; });
    };
    shrink_matrix(&CaseSpec::a);
    if (spec.kernel == Kernel::Spgemm)
        shrink_matrix(&CaseSpec::b);

    // Collapse the PU shape toward the smallest machine.
    add([](CaseSpec &c) { c.pus = 1; });
    add([](CaseSpec &c) { c.pus /= 2; });
    add([](CaseSpec &c) { c.leaves = 4; });
    add([](CaseSpec &c) { c.leaves /= 2; });
    add([](CaseSpec &c) { c.prefetchBufferEntries /= 2; });
    add([](CaseSpec &c) { c.fifoEntries = 2; });

    // Drop optional engine variants so the repro runs fewer engines.
    add([](CaseSpec &c) { c.withTrace = false; });
    add([](CaseSpec &c) { c.samplePeriod = 0; });
    add([](CaseSpec &c) { c.withReferenceScheduler = false; });
    add([](CaseSpec &c) { c.withFunctional = false; });
    add([](CaseSpec &c) { c.withSampledSim = false; });
    add([](CaseSpec &c) { c.withServed = false; });
    add([](CaseSpec &c) { c.threads = 2; });
    return out;
}

} // namespace

MinimizeResult
minimizeCase(const CaseSpec &spec,
             const std::function<bool(const CaseSpec &)> &still_fails,
             unsigned max_attempts)
{
    MinimizeResult result;
    result.spec = spec;
    bool progressed = true;
    while (progressed && result.attempts < max_attempts) {
        progressed = false;
        for (const CaseSpec &candidate : shrinkCandidates(result.spec)) {
            if (result.attempts >= max_attempts)
                break;
            ++result.attempts;
            if (still_fails(candidate)) {
                result.spec = candidate;
                ++result.accepted;
                progressed = true;
                break; // restart from the shrunk spec
            }
        }
    }
    return result;
}

} // namespace menda::check
