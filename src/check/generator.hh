/**
 * @file
 * Coverage-guided random case generation.
 *
 * Each dimension (kernel, matrix family, PU shape, engine knobs) is
 * drawn from a fixed candidate list, weighted by Coverage::weight — a
 * value that has been exercised many times is proportionally less likely
 * to be drawn again, so generation drifts toward the unexplored corners
 * of the config space while staying fully deterministic for a given
 * seed + execution history.
 */

#ifndef MENDA_CHECK_GENERATOR_HH
#define MENDA_CHECK_GENERATOR_HH

#include "check/case_spec.hh"
#include "check/coverage.hh"
#include "common/random.hh"

namespace menda::check
{

class CaseGenerator
{
  public:
    /** @p coverage may be nullptr for unbiased generation. */
    CaseGenerator(std::uint64_t seed, const Coverage *coverage)
        : rng_(seed), coverage_(coverage)
    {}

    /** Generate the next case (normalized and ready to run). */
    CaseSpec next();

  private:
    /**
     * Draw one of @p count candidate values for @p dimension, weighted
     * by coverage ("dimension=value" hit counts); uniform without
     * coverage. @p value_of maps a candidate index to its value string.
     */
    template <typename ValueOf>
    unsigned pick(const char *dimension, unsigned count,
                  ValueOf &&value_of);

    MatrixSpec randomMatrix(Kernel kernel, bool is_b);

    Rng rng_;
    const Coverage *coverage_;
};

} // namespace menda::check

#endif // MENDA_CHECK_GENERATOR_HH
