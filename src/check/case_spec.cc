#include "check/case_spec.hh"

#include <algorithm>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/log.hh"
#include "common/random.hh"
#include "obs/json.hh"
#include "sparse/generate.hh"

namespace menda::check
{

namespace
{

sparse::CsrMatrix
cooToSortedCsr(sparse::CooMatrix coo)
{
    // cooToCsr accepts arbitrary order; it buckets by row and sorts
    // columns within each row.
    return sparse::cooToCsr(std::move(coo));
}

/** Distinct (row, col) sampler for the hand-rolled pathological kinds. */
void
sampleDistinct(sparse::CooMatrix &coo, std::uint64_t nnz, Rng &rng,
               const std::function<std::pair<Index, Index>(Rng &)> &draw)
{
    // Distinct-edge sampling with a retry bound: pathological shapes can
    // saturate their region, in which case the matrix just ends up a
    // little sparser than requested — fine for fuzzing.
    std::set<std::pair<Index, Index>> seen;
    std::uint64_t attempts = 0;
    while (seen.size() < nnz && attempts < nnz * 64 + 1024) {
        ++attempts;
        seen.insert(draw(rng));
    }
    for (const auto &[r, c] : seen) {
        coo.row.push_back(r);
        coo.col.push_back(c);
        coo.val.push_back(rng.value());
    }
}

sparse::CsrMatrix
generateEmptyRows(const MatrixSpec &spec)
{
    // Cluster every non-zero into a narrow band of rows (and columns):
    // most rows — including the leading and trailing ranges that hit
    // partition boundaries — are empty, and so are most output columns.
    Rng rng(spec.seed);
    sparse::CooMatrix coo;
    coo.rows = spec.rows;
    coo.cols = spec.cols;
    const Index live_rows = std::max<Index>(1, spec.rows / 8);
    const Index row_base = spec.rows > live_rows
                               ? static_cast<Index>(
                                     rng.below(spec.rows - live_rows))
                               : 0;
    const Index live_cols = std::max<Index>(1, spec.cols / 4);
    sampleDistinct(coo, spec.nnz, rng, [&](Rng &r) {
        return std::pair<Index, Index>(
            row_base + static_cast<Index>(r.below(live_rows)),
            static_cast<Index>(r.below(live_cols)) *
                (spec.cols / live_cols));
    });
    return cooToSortedCsr(std::move(coo));
}

sparse::CsrMatrix
generateDenseRows(const MatrixSpec &spec)
{
    // A couple of (near-)fully dense rows over a sparse uniform
    // background: the dense rows dominate the merge fan-in exactly the
    // way supply rails / hub vertices do.
    Rng rng(spec.seed);
    sparse::CooMatrix coo;
    coo.rows = spec.rows;
    coo.cols = spec.cols;
    const unsigned dense = 1 + static_cast<unsigned>(rng.below(3));
    std::set<Index> dense_rows;
    while (dense_rows.size() < std::min<std::size_t>(dense, spec.rows))
        dense_rows.insert(static_cast<Index>(rng.below(spec.rows)));
    for (Index r : dense_rows)
        for (Index c = 0; c < spec.cols; ++c) {
            coo.row.push_back(r);
            coo.col.push_back(c);
            coo.val.push_back(rng.value());
        }
    sparse::CooMatrix background;
    background.rows = spec.rows;
    background.cols = spec.cols;
    sampleDistinct(background, spec.nnz, rng, [&](Rng &r) {
        Index row = static_cast<Index>(r.below(spec.rows));
        while (dense_rows.count(row) != 0)
            row = static_cast<Index>(r.below(spec.rows));
        return std::pair<Index, Index>(
            row, static_cast<Index>(r.below(spec.cols)));
    });
    coo.row.insert(coo.row.end(), background.row.begin(),
                   background.row.end());
    coo.col.insert(coo.col.end(), background.col.begin(),
                   background.col.end());
    coo.val.insert(coo.val.end(), background.val.begin(),
                   background.val.end());
    return cooToSortedCsr(std::move(coo));
}

sparse::CsrMatrix
generateSingleColumn(const MatrixSpec &spec)
{
    // Every row's non-zeros land in one global column (plus a light
    // diagonal sprinkle): transposition funnels the whole matrix through
    // a single output column and SpMV reduces everything into one key.
    Rng rng(spec.seed);
    sparse::CooMatrix coo;
    coo.rows = spec.rows;
    coo.cols = spec.cols;
    const Index the_col = static_cast<Index>(rng.below(spec.cols));
    const Index column_rows = static_cast<Index>(std::min<std::uint64_t>(
        spec.nnz, spec.rows));
    for (Index r = 0; r < column_rows; ++r) {
        coo.row.push_back(r);
        coo.col.push_back(the_col);
        coo.val.push_back(rng.value());
    }
    for (std::uint64_t extra = column_rows; extra < spec.nnz; ++extra) {
        const Index r = static_cast<Index>(rng.below(spec.rows));
        const Index c = r % spec.cols;
        if (c == the_col)
            continue;
        coo.row.push_back(r);
        coo.col.push_back(c);
        coo.val.push_back(rng.value());
    }
    // The diagonal sprinkle may produce duplicate (r, c) pairs; dedup so
    // CSR stays a set of coordinates.
    sparse::CsrMatrix csr = cooToSortedCsr(std::move(coo));
    sparse::CooMatrix dedup;
    dedup.rows = csr.rows;
    dedup.cols = csr.cols;
    for (Index r = 0; r < csr.rows; ++r)
        for (std::uint32_t k = csr.ptr[r]; k < csr.ptr[r + 1]; ++k)
            if (k == csr.ptr[r] || csr.idx[k] != csr.idx[k - 1]) {
                dedup.row.push_back(r);
                dedup.col.push_back(csr.idx[k]);
                dedup.val.push_back(csr.val[k]);
            }
    return cooToSortedCsr(std::move(dedup));
}

sparse::CsrMatrix
generateDuplicateHeavy(const MatrixSpec &spec)
{
    // Tall-and-narrow with heavily reused columns: as the B operand of
    // SpGEMM this makes nearly every partial product collide on the same
    // (row, col) keys, stressing the root accumulator; as A it yields
    // long equal-key runs through the merge tree.
    Rng rng(spec.seed);
    sparse::CooMatrix coo;
    coo.rows = spec.rows;
    coo.cols = spec.cols;
    const Index hot_cols =
        std::max<Index>(1, std::min<Index>(4, spec.cols));
    sampleDistinct(coo, spec.nnz, rng, [&](Rng &r) {
        const Index row = static_cast<Index>(r.below(spec.rows));
        const Index col =
            r.below(4) == 0
                ? static_cast<Index>(r.below(spec.cols))
                : static_cast<Index>(r.below(hot_cols));
        return std::pair<Index, Index>(row, col);
    });
    return cooToSortedCsr(std::move(coo));
}

Index
ceilPow2(Index n)
{
    Index p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::Transpose: return "transpose";
      case Kernel::Spmv: return "spmv";
      case Kernel::Spgemm: return "spgemm";
    }
    return "?";
}

const char *
matrixKindName(MatrixKind kind)
{
    switch (kind) {
      case MatrixKind::Uniform: return "uniform";
      case MatrixKind::Rmat: return "rmat";
      case MatrixKind::Banded: return "banded";
      case MatrixKind::SkewedRows: return "skewedRows";
      case MatrixKind::EmptyRows: return "emptyRows";
      case MatrixKind::DenseRows: return "denseRows";
      case MatrixKind::SingleColumn: return "singleColumn";
      case MatrixKind::DuplicateHeavy: return "duplicateHeavy";
    }
    return "?";
}

sparse::CsrMatrix
buildMatrix(const MatrixSpec &spec)
{
    switch (spec.kind) {
      case MatrixKind::Uniform:
        return sparse::generateUniform(spec.rows, spec.cols, spec.nnz,
                                       spec.seed);
      case MatrixKind::Rmat: {
        // R-MAT needs a power-of-two square dimension; keep density low
        // enough that distinct-edge sampling terminates.
        const Index dim = ceilPow2(std::max<Index>(spec.rows, 4));
        const std::uint64_t cap =
            static_cast<std::uint64_t>(dim) * dim / 32;
        return sparse::generateRmat(
            dim, std::max<std::uint64_t>(1, std::min(spec.nnz, cap)),
            0.1, 0.2, 0.3, spec.seed);
      }
      case MatrixKind::Banded:
        return sparse::generateBanded(
            spec.rows,
            std::max<Index>(3, static_cast<Index>(
                                   spec.nnz / std::max<Index>(
                                                  1, spec.rows)) |
                                   1),
            0.5, spec.seed);
      case MatrixKind::SkewedRows:
        return sparse::generateSkewedRows(spec.rows, spec.cols, spec.nnz,
                                          2.0, spec.seed);
      case MatrixKind::EmptyRows: return generateEmptyRows(spec);
      case MatrixKind::DenseRows: return generateDenseRows(spec);
      case MatrixKind::SingleColumn: return generateSingleColumn(spec);
      case MatrixKind::DuplicateHeavy:
        return generateDuplicateHeavy(spec);
    }
    menda_fatal("unknown matrix kind");
}

void
CaseSpec::normalize()
{
    auto fix_matrix = [](MatrixSpec &m) {
        m.rows = std::clamp<Index>(m.rows, 1, 4096);
        m.cols = std::clamp<Index>(m.cols, 1, 4096);
        const std::uint64_t cap =
            std::max<std::uint64_t>(1, static_cast<std::uint64_t>(m.rows) *
                                           m.cols / 2);
        m.nnz = std::clamp<std::uint64_t>(m.nnz, 1, cap);
        // Seeds live in 32 bits so the JSON round-trip (numbers are
        // doubles, exact only up to 2^53) cannot corrupt them.
        m.seed &= 0xffffffffull;
    };
    fix_matrix(a);
    if (kernel == Kernel::Spgemm) {
        // The inner dimension is whatever A actually materializes to
        // (R-MAT rounds to a power of two), so resolve it via the built
        // matrix's column count.
        const Index inner = buildMatrix(a).cols;
        b.rows = inner;
        fix_matrix(b);
        b.rows = inner;
        // A family that materializes with its own dimensions (R-MAT
        // squares and pow2-rounds) cannot honor the inner tie; fall back
        // to uniform, which builds exactly the requested shape.
        if (buildMatrix(b).rows != inner)
            b.kind = MatrixKind::Uniform;
    } else {
        b = MatrixSpec{}; // unused; keep operator== meaningful
    }
    // The condensed scheduler only exists for the SpGEMM dataflow.
    if (kernel != Kernel::Spgemm)
        withCondensed = false;
    pus = std::clamp<unsigned>(pus, 1, 8);
    // Power-of-two leaf count >= 4 keeps trees valid and small.
    unsigned l = 4;
    while (l < leaves && l < 64)
        l <<= 1;
    leaves = l;
    fifoEntries = std::clamp<unsigned>(fifoEntries, 2, 8);
    // Prefetch buffers must hold at least one DRAM block (16 elements).
    prefetchBufferEntries =
        std::clamp<unsigned>(prefetchBufferEntries, 16, 128);
    threads = std::clamp<unsigned>(threads, 2, 4);
}

core::SystemConfig
CaseSpec::systemConfig() const
{
    core::SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = pus;
    config.pu.leaves = leaves;
    config.pu.fifoEntries = fifoEntries;
    config.pu.prefetchBufferEntries = prefetchBufferEntries;
    config.pu.stallReducingPrefetch = stallReducingPrefetch;
    config.pu.requestCoalescing = requestCoalescing;
    config.pu.seamlessMerge = seamlessMerge;
    return config;
}

std::vector<Value>
CaseSpec::spmvInput(Index cols) const
{
    Rng rng(a.seed ^ 0x5be5u);
    std::vector<Value> x(cols);
    for (auto &v : x)
        v = rng.value();
    return x;
}

std::string
CaseSpec::oneLine() const
{
    std::ostringstream os;
    os << kernelName(kernel) << " a=" << matrixKindName(a.kind) << "["
       << a.rows << "x" << a.cols << ",nnz=" << a.nnz << ",seed="
       << a.seed << "]";
    if (kernel == Kernel::Spgemm)
        os << " b=" << matrixKindName(b.kind) << "[" << b.rows << "x"
           << b.cols << ",nnz=" << b.nnz << ",seed=" << b.seed << "]";
    os << " pus=" << pus << " leaves=" << leaves << " fifo="
       << fifoEntries << " buf=" << prefetchBufferEntries
       << (stallReducingPrefetch ? "" : " -prefetch")
       << (requestCoalescing ? "" : " -coalesce")
       << (seamlessMerge ? "" : " -seamless") << " threads=" << threads
       << (withReferenceScheduler ? " +refsched" : "")
       << (withTrace ? " +trace" : "")
       << (withFunctional ? " +functional" : "")
       << (withSampledSim ? " +sampledsim" : "")
       << (withServed ? " +served" : "")
       << (withCondensed ? " +condensed" : "");
    if (samplePeriod != 0)
        os << " sample=" << samplePeriod;
    return os.str();
}

namespace
{

obs::json::Object
matrixToJson(const MatrixSpec &m)
{
    obs::json::Object o;
    o["kind"] = matrixKindName(m.kind);
    o["rows"] = static_cast<std::uint64_t>(m.rows);
    o["cols"] = static_cast<std::uint64_t>(m.cols);
    o["nnz"] = m.nnz;
    o["seed"] = m.seed;
    return o;
}

MatrixSpec
matrixFromJson(const obs::json::Value &v)
{
    if (!v.isObject())
        throw std::runtime_error("caseSpec: matrix is not an object");
    MatrixSpec m;
    const std::string kind = v.at("kind").asString();
    bool found = false;
    for (unsigned k = 0;
         k <= static_cast<unsigned>(MatrixKind::DuplicateHeavy); ++k)
        if (kind == matrixKindName(static_cast<MatrixKind>(k))) {
            m.kind = static_cast<MatrixKind>(k);
            found = true;
        }
    if (!found)
        throw std::runtime_error("caseSpec: unknown matrix kind '" +
                                 kind + "'");
    m.rows = static_cast<Index>(v.at("rows").asNumber());
    m.cols = static_cast<Index>(v.at("cols").asNumber());
    m.nnz = static_cast<std::uint64_t>(v.at("nnz").asNumber());
    m.seed = static_cast<std::uint64_t>(v.at("seed").asNumber());
    return m;
}

} // namespace

std::string
CaseSpec::toJson() const
{
    obs::json::Object o;
    o["schema"] = kSchema;
    o["kernel"] = kernelName(kernel);
    o["a"] = matrixToJson(a);
    if (kernel == Kernel::Spgemm)
        o["b"] = matrixToJson(b);
    obs::json::Object pu;
    pu["pus"] = static_cast<std::uint64_t>(pus);
    pu["leaves"] = static_cast<std::uint64_t>(leaves);
    pu["fifoEntries"] = static_cast<std::uint64_t>(fifoEntries);
    pu["prefetchBufferEntries"] =
        static_cast<std::uint64_t>(prefetchBufferEntries);
    pu["stallReducingPrefetch"] = stallReducingPrefetch;
    pu["requestCoalescing"] = requestCoalescing;
    pu["seamlessMerge"] = seamlessMerge;
    o["pu"] = pu;
    obs::json::Object engine;
    engine["threads"] = static_cast<std::uint64_t>(threads);
    engine["referenceScheduler"] = withReferenceScheduler;
    engine["trace"] = withTrace;
    engine["samplePeriod"] = samplePeriod;
    engine["functional"] = withFunctional;
    engine["sampledSim"] = withSampledSim;
    engine["served"] = withServed;
    engine["condensed"] = withCondensed;
    o["engine"] = engine;
    return obs::json::Value(std::move(o)).serialize();
}

CaseSpec
CaseSpec::fromJson(const std::string &text)
{
    const obs::json::Value v = obs::json::parse(text);
    if (!v.isObject() || !v.has("schema") ||
        v.at("schema").asString() != kSchema)
        throw std::runtime_error(
            "caseSpec: missing or mismatched schema (want " +
            std::string(kSchema) + ")");
    CaseSpec spec;
    const std::string kernel = v.at("kernel").asString();
    if (kernel == "transpose")
        spec.kernel = Kernel::Transpose;
    else if (kernel == "spmv")
        spec.kernel = Kernel::Spmv;
    else if (kernel == "spgemm")
        spec.kernel = Kernel::Spgemm;
    else
        throw std::runtime_error("caseSpec: unknown kernel '" + kernel +
                                 "'");
    spec.a = matrixFromJson(v.at("a"));
    if (spec.kernel == Kernel::Spgemm)
        spec.b = matrixFromJson(v.at("b"));
    const obs::json::Value &pu = v.at("pu");
    spec.pus = static_cast<unsigned>(pu.at("pus").asNumber());
    spec.leaves = static_cast<unsigned>(pu.at("leaves").asNumber());
    spec.fifoEntries =
        static_cast<unsigned>(pu.at("fifoEntries").asNumber());
    spec.prefetchBufferEntries = static_cast<unsigned>(
        pu.at("prefetchBufferEntries").asNumber());
    spec.stallReducingPrefetch =
        pu.at("stallReducingPrefetch").asBool();
    spec.requestCoalescing = pu.at("requestCoalescing").asBool();
    spec.seamlessMerge = pu.at("seamlessMerge").asBool();
    const obs::json::Value &engine = v.at("engine");
    spec.threads = static_cast<unsigned>(engine.at("threads").asNumber());
    spec.withReferenceScheduler =
        engine.at("referenceScheduler").asBool();
    spec.withTrace = engine.at("trace").asBool();
    spec.samplePeriod =
        static_cast<std::uint64_t>(engine.at("samplePeriod").asNumber());
    // Fast-tier knobs postdate menda.caseSpec/1; older case files simply
    // lack them, which means "off".
    spec.withFunctional = engine.has("functional")
                              ? engine.at("functional").asBool()
                              : false;
    spec.withSampledSim = engine.has("sampledSim")
                              ? engine.at("sampledSim").asBool()
                              : false;
    spec.withServed =
        engine.has("served") ? engine.at("served").asBool() : false;
    spec.withCondensed = engine.has("condensed")
                             ? engine.at("condensed").asBool()
                             : false;
    spec.normalize();
    return spec;
}

void
CaseSpec::write(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open '" + path +
                                 "' for writing");
    out << toJson() << "\n";
    if (!out)
        throw std::runtime_error("failed writing '" + path + "'");
}

CaseSpec
CaseSpec::read(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJson(buffer.str());
}

} // namespace menda::check
