/**
 * @file
 * Run one conformance case under every applicable engine variant and
 * diff the results.
 *
 * The simulator guarantees that several execution strategies produce
 * bit-identical results: sequential vs. sharded-parallel simulation,
 * dense vs. idle-skipped ticking, the indexed vs. reference DRAM
 * scheduler, and traced/sampled vs. plain runs. Each guarantee has its
 * own hand-written test on a handful of workloads; this module turns
 * them into one machine-checkable property per generated case:
 *
 *   - every variant's *outputs* (CSC / y / CSR) must be bit-identical,
 *   - the outputs must match the golden CPU references,
 *   - every deterministic `menda.runReport/1` metric must agree exactly
 *     (reports are built with wall_seconds = 0, so no host-dependent
 *     metric exists; the sampled variant additionally carries series and
 *     is compared metric-wise instead of byte-wise).
 */

#ifndef MENDA_CHECK_ENGINE_HH
#define MENDA_CHECK_ENGINE_HH

#include <string>
#include <vector>

#include "check/case_spec.hh"
#include "obs/report.hh"

namespace menda::check
{

/** One way of executing a case through MendaSystem. */
struct EngineVariant
{
    std::string name;        ///< stable id, e.g. "seq" or "threads2"
    unsigned hostThreads = 1;
    bool referenceScheduler = false;
    bool traced = false;            ///< in-memory tracer attached
    std::uint64_t samplePeriod = 0; ///< interval samplers armed
    core::SimMode simMode = core::SimMode::Detailed; ///< fidelity tier

    /**
     * Execute through the menda_serve core (in-process): the case is
     * encoded as a `menda.job/1` submit, run in scheduler slices, and
     * decoded from the response. Detailed-tier serve jobs must match
     * the direct path byte-for-byte, reports included — the resumable
     * step()/yield execution may not perturb anything.
     */
    bool served = false;

    /**
     * Run with the Huffman (condensed) SpGEMM merge scheduler instead
     * of the uniform one (DESIGN.md Sec. 15). The schedule differs, so
     * timing and traffic differ too — only the CSR output is comparable
     * against other variants (it must still be bitwise identical).
     */
    bool condensed = false;

    /**
     * Sampling adds time series to the report, so a sampled run is only
     * comparable metric-by-metric, not byte-by-byte.
     */
    bool metricsOnly() const { return samplePeriod != 0; }

    /**
     * The fast tiers promise bitwise-identical kernel *outputs* but
     * estimate timing, so their reports are not comparable at all.
     */
    bool outputsOnly() const
    {
        return simMode != core::SimMode::Detailed;
    }
};

/** The variant list a spec's engine knobs select. Index 0 is baseline. */
std::vector<EngineVariant> variantsFor(const CaseSpec &spec);

/** Everything a variant run produces that must be deterministic. */
struct CaseOutcome
{
    obs::RunReport report;   ///< wall-free, fully deterministic
    std::string reportJson;  ///< canonical bytes of @ref report
    sparse::CscMatrix csc;   ///< transpose output
    std::vector<double> y;   ///< spmv output
    sparse::CsrMatrix c;     ///< spgemm output
};

/** Execute @p spec under @p variant. Deterministic. */
CaseOutcome runVariant(const CaseSpec &spec, const EngineVariant &variant);

/** A detected conformance violation (empty when ok). */
struct Mismatch
{
    bool failed = false;
    std::string what;

    explicit operator bool() const { return failed; }
};

/** Compare a variant's outputs against the golden CPU references. */
Mismatch checkGolden(const CaseSpec &spec, const CaseOutcome &outcome);

/**
 * Compare two variants of the same case: outputs bitwise, reports
 * byte-wise (or metric-wise with zero tolerance when either variant is
 * metricsOnly()).
 */
Mismatch diffOutcomes(const CaseSpec &spec, const EngineVariant &va,
                      const CaseOutcome &oa, const EngineVariant &vb,
                      const CaseOutcome &ob);

/**
 * Run @p spec under every variant and diff all pairs plus the golden
 * references. @p runs/@p pairs (optional) accumulate how many variant
 * executions and pairwise diffs happened; @p baseline_report (optional)
 * receives the baseline variant's report for coverage accounting.
 */
Mismatch runCase(const CaseSpec &spec, unsigned *runs = nullptr,
                 unsigned *pairs = nullptr,
                 obs::RunReport *baseline_report = nullptr);

} // namespace menda::check

#endif // MENDA_CHECK_ENGINE_HH
