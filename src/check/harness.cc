#include "check/harness.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <ostream>

#include "check/generator.hh"
#include "check/minimize.hh"

namespace menda::check
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Re-run a candidate spec and report whether it still fails. */
bool
specFails(const CaseSpec &spec)
{
    return static_cast<bool>(runCase(spec));
}

void
handleFailure(const FuzzOptions &options, const CaseSpec &spec,
              const Mismatch &mismatch, FuzzResult &result,
              std::ostream &log)
{
    FuzzFailure failure;
    failure.original = spec;
    failure.minimized = spec;
    failure.what = mismatch.what;
    log << "MISMATCH on " << spec.oneLine() << "\n  " << mismatch.what
        << "\n";

    if (options.minimize) {
        const MinimizeResult minimized = minimizeCase(spec, specFails);
        failure.minimized = minimized.spec;
        // Re-derive the message from the minimized spec: the shrunk case
        // is what gets committed, so its symptom is the one to record.
        if (Mismatch final_mismatch = runCase(failure.minimized))
            failure.what = final_mismatch.what;
        log << "  minimized (" << minimized.attempts << " attempts, "
            << minimized.accepted << " shrinks) to "
            << failure.minimized.oneLine() << "\n  " << failure.what
            << "\n";
    }

    if (!options.failureDir.empty()) {
        std::filesystem::create_directories(options.failureDir);
        failure.path = options.failureDir + "/fail-" +
                       std::to_string(result.failures.size()) +
                       ".case.json";
        failure.minimized.write(failure.path);
        log << "  wrote " << failure.path
            << " (replay: menda_check --replay " << failure.path
            << ")\n";
    }
    result.failures.push_back(std::move(failure));
}

} // namespace

FuzzResult
fuzz(const FuzzOptions &options, std::ostream &log)
{
    FuzzResult result;
    const auto start = std::chrono::steady_clock::now();

    if (!options.corpusDir.empty() &&
        std::filesystem::is_directory(options.corpusDir)) {
        std::vector<std::string> paths;
        for (const auto &entry :
             std::filesystem::directory_iterator(options.corpusDir))
            if (entry.path().extension() == ".json")
                paths.push_back(entry.path().string());
        std::sort(paths.begin(), paths.end());
        for (const std::string &path : paths) {
            const CaseSpec spec = CaseSpec::read(path);
            obs::RunReport report;
            const Mismatch mismatch =
                runCase(spec, &result.runs, &result.pairs, &report);
            ++result.corpusCases;
            result.coverage.note(spec, report);
            if (mismatch) {
                log << "corpus case " << path << " failed\n";
                handleFailure(options, spec, mismatch, result, log);
                if (result.failures.size() >= options.maxFailures)
                    return result;
            }
        }
        log << "corpus: " << result.corpusCases << " cases replayed, "
            << result.coverage.summary() << "\n";
    }

    CaseGenerator generator(options.seed, &result.coverage);
    while (result.failures.size() < options.maxFailures) {
        if (options.maxCases != 0 && result.cases >= options.maxCases)
            break;
        if (secondsSince(start) >= options.budgetSeconds)
            break; // --budget 0s = corpus-only run
        const CaseSpec spec = generator.next();
        obs::RunReport report;
        const Mismatch mismatch =
            runCase(spec, &result.runs, &result.pairs, &report);
        ++result.cases;
        result.coverage.note(spec, report);
        if (mismatch)
            handleFailure(options, spec, mismatch, result, log);
        if (options.logEvery != 0 &&
            result.cases % options.logEvery == 0)
            log << "[" << result.cases << " cases, " << result.runs
                << " runs] " << result.coverage.summary() << "\n";
    }

    log << "done: " << result.cases << " generated + "
        << result.corpusCases << " corpus cases, " << result.runs
        << " variant runs, " << result.pairs << " pairwise diffs, "
        << result.failures.size() << " mismatches; "
        << result.coverage.summary() << "\n";
    return result;
}

Mismatch
replayFile(const std::string &path, std::ostream &log)
{
    const CaseSpec spec = CaseSpec::read(path);
    log << "replaying " << path << ": " << spec.oneLine() << "\n";
    unsigned runs = 0, pairs = 0;
    const Mismatch mismatch = runCase(spec, &runs, &pairs);
    if (mismatch)
        log << "MISMATCH: " << mismatch.what << "\n";
    else
        log << "ok: " << runs << " variant runs, " << pairs
            << " pairwise diffs, all identical\n";
    return mismatch;
}

} // namespace menda::check
