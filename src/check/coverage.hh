/**
 * @file
 * Config-space + event coverage for the conformance harness.
 *
 * Every executed case is mapped to a set of feature strings drawn from
 * two sources: the configuration point it exercised (kernel, matrix
 * family, PU shape, engine knobs) and the simulation events its baseline
 * report shows actually fired (row conflicts, coalesced hits, refreshes,
 * stalls, multi-round merges, occupancy buckets). The harness counts
 * hits per feature; the generator biases its draws toward feature values
 * with the fewest hits, steering the random walk into unexplored regions
 * instead of re-sampling the easy center of the space.
 */

#ifndef MENDA_CHECK_COVERAGE_HH
#define MENDA_CHECK_COVERAGE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/case_spec.hh"
#include "obs/report.hh"

namespace menda::check
{

/**
 * The feature strings of one executed case: "dimension=value" pairs for
 * config-space dimensions ("kernel=spgemm", "matrix=emptyRows",
 * "leaves=16"), crossed kernel x matrix pairs, and "event.*" flags plus
 * log-2 buckets derived from the run report.
 */
std::vector<std::string> caseFeatures(const CaseSpec &spec,
                                      const obs::RunReport &report);

class Coverage
{
  public:
    /** Account one executed case; returns how many features were new. */
    unsigned note(const CaseSpec &spec, const obs::RunReport &report);

    /** Distinct features observed so far. */
    std::size_t featureCount() const { return hits_.size(); }

    /** Hit count of @p feature (0 when never seen). */
    std::uint64_t hits(const std::string &feature) const;

    /**
     * Selection weight for a candidate value of one dimension: high for
     * never-seen values, decaying with hit count. The generator samples
     * dimension values proportionally to this.
     */
    double weight(const std::string &feature) const
    {
        return 1.0 / (1.0 + static_cast<double>(hits(feature)));
    }

    /** One-line progress summary for the harness log. */
    std::string summary() const;

    const std::map<std::string, std::uint64_t> &all() const
    {
        return hits_;
    }

  private:
    std::map<std::string, std::uint64_t> hits_;
};

} // namespace menda::check

#endif // MENDA_CHECK_COVERAGE_HH
