#include "check/coverage.hh"

#include <set>
#include <sstream>

namespace menda::check
{

namespace
{

unsigned
log2Bucket(double value)
{
    if (value < 1.0)
        return 0;
    unsigned b = 0;
    while (value >= 2.0) {
        value /= 2.0;
        ++b;
    }
    return b + 1;
}

} // namespace

std::vector<std::string>
caseFeatures(const CaseSpec &spec, const obs::RunReport &report)
{
    std::vector<std::string> features;
    const std::string kernel = kernelName(spec.kernel);
    const std::string matrix = matrixKindName(spec.a.kind);
    features.push_back("kernel=" + kernel);
    features.push_back("matrix=" + matrix);
    features.push_back("case=" + kernel + "/" + matrix);
    if (spec.kernel == Kernel::Spgemm)
        features.push_back("matrixB=" +
                           std::string(matrixKindName(spec.b.kind)));
    features.push_back("pus=" + std::to_string(spec.pus));
    features.push_back("leaves=" + std::to_string(spec.leaves));
    features.push_back("fifo=" + std::to_string(spec.fifoEntries));
    features.push_back("buf=" +
                       std::to_string(spec.prefetchBufferEntries));
    features.push_back(std::string("prefetch=") +
                       (spec.stallReducingPrefetch ? "on" : "off"));
    features.push_back(std::string("coalesce=") +
                       (spec.requestCoalescing ? "on" : "off"));
    features.push_back(std::string("seamless=") +
                       (spec.seamlessMerge ? "on" : "off"));
    features.push_back(std::string("sampled=") +
                       (spec.samplePeriod != 0 ? "on" : "off"));

    // Event coverage: which observable behaviors actually fired. The
    // bool flags record that a path was taken at all; the buckets spread
    // intensity so "barely" and "saturated" count as different regions.
    const auto flag = [&](const char *name, double value) {
        features.push_back(std::string("event.") + name + "=" +
                           (value != 0.0 ? "yes" : "no"));
    };
    flag("rowConflicts", report.metric("rowConflicts"));
    flag("coalesced", report.metric("coalescedRequests"));
    flag("leafStalls", report.metric("leafPushStallCycles"));
    flag("outputStalls", report.metric("outputStallCycles"));
    flag("multiRound", report.metric("iterations") > 1.0 ? 1.0 : 0.0);
    features.push_back(
        "bucket.iterations=" +
        std::to_string(log2Bucket(report.metric("iterations"))));
    const double cycles = report.metric("puCycles");
    if (cycles > 0.0)
        features.push_back(
            "bucket.occupancy=" +
            std::to_string(log2Bucket(
                report.metric("treeOccupancyPacketCycles") / cycles)));
    features.push_back(
        "bucket.activates=" +
        std::to_string(log2Bucket(report.metric("activates"))));
    return features;
}

unsigned
Coverage::note(const CaseSpec &spec, const obs::RunReport &report)
{
    unsigned fresh = 0;
    for (const std::string &feature : caseFeatures(spec, report))
        if (hits_[feature]++ == 0)
            ++fresh;
    return fresh;
}

std::uint64_t
Coverage::hits(const std::string &feature) const
{
    auto it = hits_.find(feature);
    return it == hits_.end() ? 0 : it->second;
}

std::string
Coverage::summary() const
{
    std::set<std::string> event_names, events_fired;
    for (const auto &[feature, count] : hits_) {
        (void)count;
        if (feature.rfind("event.", 0) != 0)
            continue;
        const std::size_t eq = feature.find('=');
        event_names.insert(feature.substr(0, eq));
        if (feature.compare(eq, std::string::npos, "=yes") == 0)
            events_fired.insert(feature.substr(0, eq));
    }
    std::ostringstream os;
    os << hits_.size() << " features (" << events_fired.size() << "/"
       << event_names.size() << " event flags fired)";
    return os.str();
}

} // namespace menda::check
