/**
 * @file
 * Serializable differential-conformance case descriptions.
 *
 * A CaseSpec is everything needed to reproduce one fuzzed workload
 * deterministically: the kernel, the synthetic input matrix (or matrices
 * for SpGEMM), the PU configuration, and the engine knobs that select
 * which execution variants the harness cross-checks. Specs round-trip
 * through canonical JSON (`menda.caseSpec/1`, sorted keys) so a failing
 * case minimizes to a small `.case.json` file that
 * `menda_check --replay file.case.json` re-runs in one command.
 */

#ifndef MENDA_CHECK_CASE_SPEC_HH
#define MENDA_CHECK_CASE_SPEC_HH

#include <cstdint>
#include <string>

#include "menda/system.hh"
#include "sparse/format.hh"

namespace menda::check
{

enum class Kernel : std::uint8_t
{
    Transpose,
    Spmv,
    Spgemm,
};

/**
 * Synthetic matrix families. Uniform/Rmat/Banded/SkewedRows wrap the
 * sparse::generate* generators; the rest are the pathological structures
 * point tests under-sample (SpArch's failure modes): fully empty row
 * ranges, a few dense rows dominating the fan-in, all non-zeros in a
 * single column, and duplicate-heavy inputs that stress SpGEMM's
 * same-key accumulation.
 */
enum class MatrixKind : std::uint8_t
{
    Uniform,
    Rmat,
    Banded,
    SkewedRows,
    EmptyRows,
    DenseRows,
    SingleColumn,
    DuplicateHeavy,
};

const char *kernelName(Kernel kernel);
const char *matrixKindName(MatrixKind kind);

struct MatrixSpec
{
    MatrixKind kind = MatrixKind::Uniform;
    Index rows = 64;
    Index cols = 64;
    std::uint64_t nnz = 256;
    std::uint64_t seed = 1;

    bool operator==(const MatrixSpec &other) const = default;
};

/** Deterministically materialize @p spec (same spec -> same matrix). */
sparse::CsrMatrix buildMatrix(const MatrixSpec &spec);

struct CaseSpec
{
    static constexpr const char *kSchema = "menda.caseSpec/1";

    Kernel kernel = Kernel::Transpose;
    MatrixSpec a;
    MatrixSpec b; ///< SpGEMM only; b.rows is forced to a.cols

    // --- PU / system knobs ---
    unsigned pus = 1; ///< single channel/DIMM, this many ranks
    unsigned leaves = 16;
    unsigned fifoEntries = 2;
    unsigned prefetchBufferEntries = 32;
    bool stallReducingPrefetch = true;
    bool requestCoalescing = true;
    bool seamlessMerge = true;

    // --- engine knobs: which execution variants to cross-check ---
    unsigned threads = 2;        ///< host threads of the sharded variant
    bool withReferenceScheduler = true; ///< run the DRAM oracle variant
    bool withTrace = true;              ///< run the traced variant
    std::uint64_t samplePeriod = 0;     ///< sampled variant; 0 = skip

    // Fast simulation tiers (DESIGN.md Sec. 12). These variants promise
    // bitwise-identical *outputs* only, so the harness skips the report
    // comparison for them.
    bool withFunctional = false; ///< run the functional fast tier
    bool withSampledSim = false; ///< run the sampled (SMARTS) fast tier

    /**
     * Route the case through the menda_serve daemon core (in-process,
     * no sockets): submit over the `menda.job/1` protocol, execute in
     * scheduler slices, decode the response. The detailed tier's
     * outputs AND report must be byte-identical to the direct path.
     */
    bool withServed = false;

    /**
     * SpGEMM only: also run the Huffman (condensed) merge scheduler and
     * diff its CSR bitwise against the uniform baseline (DESIGN.md
     * Sec. 15). Reports are not compared — the schedule differs.
     */
    bool withCondensed = false;

    /** Clamp fields into valid ranges and tie b.rows to a.cols. */
    void normalize();

    /** SystemConfig shared by every variant of this case. */
    core::SystemConfig systemConfig() const;

    /** Deterministic SpMV input vector (derived from a.seed). */
    std::vector<Value> spmvInput(Index cols) const;

    /** Short human-readable summary for log lines. */
    std::string oneLine() const;

    /** Canonical JSON (schema menda.caseSpec/1). */
    std::string toJson() const;

    /** Parse a spec back; throws std::runtime_error on bad input. */
    static CaseSpec fromJson(const std::string &text);

    void write(const std::string &path) const;
    static CaseSpec read(const std::string &path);

    bool operator==(const CaseSpec &other) const = default;
};

} // namespace menda::check

#endif // MENDA_CHECK_CASE_SPEC_HH
