/**
 * @file
 * The conformance fuzz loop: generate, run, cover, minimize, persist.
 *
 * One fuzz session replays the committed corpus first (known-tricky
 * regions stay covered and seed the coverage map), then generates
 * coverage-biased random cases until a time or case budget runs out. Any
 * mismatch is delta-debugged to a minimal spec and written to
 * `<failureDir>/<name>.case.json`; `menda_check --replay` re-runs such a
 * file deterministically.
 */

#ifndef MENDA_CHECK_HARNESS_HH
#define MENDA_CHECK_HARNESS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "check/case_spec.hh"
#include "check/coverage.hh"
#include "check/engine.hh"

namespace menda::check
{

struct FuzzOptions
{
    std::uint64_t seed = 1;
    double budgetSeconds = 60.0; ///< wall budget for generated cases
    unsigned maxCases = 0;       ///< stop after this many cases; 0 = no cap
    unsigned maxFailures = 1;    ///< stop after this many minimized failures
    std::string corpusDir;       ///< replayed before fuzzing; "" = skip
    std::string failureDir = "."; ///< minimized .case.json files land here
    bool minimize = true;
    unsigned logEvery = 50;      ///< progress line period; 0 = quiet
};

struct FuzzFailure
{
    CaseSpec original;  ///< first failing spec as generated
    CaseSpec minimized; ///< delta-debugged spec (== original if !minimize)
    std::string what;   ///< mismatch description from the minimized spec
    std::string path;   ///< written .case.json ("" if failureDir empty)
};

struct FuzzResult
{
    unsigned corpusCases = 0; ///< corpus files replayed
    unsigned cases = 0;       ///< generated cases executed
    unsigned runs = 0;        ///< engine-variant executions
    unsigned pairs = 0;       ///< pairwise diffs checked
    std::vector<FuzzFailure> failures;
    Coverage coverage;

    bool passed() const { return failures.empty(); }
};

/** Run one fuzz session; progress and findings go to @p log. */
FuzzResult fuzz(const FuzzOptions &options, std::ostream &log);

/**
 * Re-run one persisted case file under the full variant matrix.
 * Returns the mismatch (empty = the case passes).
 */
Mismatch replayFile(const std::string &path, std::ostream &log);

} // namespace menda::check

#endif // MENDA_CHECK_HARNESS_HH
