/**
 * @file
 * Wire protocol of menda_serve (schema `menda.job/1`, DESIGN.md §13).
 *
 * Messages are length-prefixed JSON: a 4-byte little-endian payload
 * length followed by one UTF-8 JSON document. The prefix makes framing
 * trivial to validate — a frame longer than the negotiated maximum is
 * rejected before any allocation proportional to the claimed length,
 * and a truncated frame is simply an incomplete buffer, never a parse
 * of garbage.
 *
 * Requests are objects with a "type" field: "submit", "status",
 * "stats", "shutdown". Responses mirror with "submitted", "jobStatus",
 * "stats", "shuttingDown", or "error" (typed "code" + human "message").
 * Matrices travel as {"rows","cols","ptr","idx","val"} arrays; float
 * values round-trip exactly through the canonical JSON serializer.
 */

#ifndef MENDA_SERVE_PROTOCOL_HH
#define MENDA_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/json.hh"
#include "sparse/format.hh"

namespace menda::serve
{

constexpr const char *kSchema = "menda.job/1";

/** Default ceiling on one frame's payload bytes. */
constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/** Prepend the 4-byte little-endian length prefix to @p payload. */
std::string encodeFrame(const std::string &payload);

/**
 * Incremental frame decoder for one connection. feed() appends raw
 * bytes; next() yields complete payloads. An oversized length prefix
 * poisons the stream (Error is sticky — close the connection).
 */
class FrameReader
{
  public:
    explicit FrameReader(std::uint32_t max_frame = kDefaultMaxFrameBytes)
        : maxFrame_(max_frame)
    {}

    void feed(const char *data, std::size_t n) { buf_.append(data, n); }

    enum class Status : std::uint8_t
    {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< *payload holds the next frame
        Error,    ///< protocol violation; *error describes it
    };

    Status next(std::string *payload, std::string *error);

    /** Bytes buffered but not yet consumed (truncated-frame detection). */
    std::size_t pendingBytes() const { return buf_.size(); }

    /** The negotiated per-frame payload ceiling. */
    std::uint32_t maxFrameBytes() const { return maxFrame_; }

    /**
     * The length prefix that poisoned the stream (0 while healthy) —
     * surfaced in the typed "badFrame" error payload so the client can
     * tell an oversized submit from a corrupted prefix.
     */
    std::uint32_t badFrameLength() const { return badLength_; }

  private:
    std::uint32_t maxFrame_;
    std::string buf_;
    bool poisoned_ = false;
    std::uint32_t badLength_ = 0;
};

// --- JSON codecs (throw std::runtime_error on malformed input) ---

obs::json::Value csrToJson(const sparse::CsrMatrix &m);
sparse::CsrMatrix csrFromJson(const obs::json::Value &v);
obs::json::Value cscToJson(const sparse::CscMatrix &m);
sparse::CscMatrix cscFromJson(const obs::json::Value &v);
obs::json::Value doubleVectorToJson(const std::vector<double> &v);
std::vector<double> doubleVectorFromJson(const obs::json::Value &v);
obs::json::Value valueVectorToJson(const std::vector<Value> &v);
std::vector<Value> valueVectorFromJson(const obs::json::Value &v);

/** Build a typed error response (code e.g. "queueFull", "badRequest"). */
obs::json::Value errorResponse(const std::string &code,
                               const std::string &message);

/**
 * Error response with machine-readable context merged in next to
 * code/message (e.g. "badFrame" carries frameLength + maxFrameBytes).
 * @p details must not use the reserved envelope keys.
 */
obs::json::Value errorResponse(const std::string &code,
                               const std::string &message,
                               obs::json::Object details);

/** True iff @p v is an error response; fills code/message if non-null. */
bool isError(const obs::json::Value &v, std::string *code = nullptr,
             std::string *message = nullptr);

} // namespace menda::serve

#endif // MENDA_SERVE_PROTOCOL_HH
