#include "serve/observer.hh"

namespace menda::serve
{

ServeObserver::ServeObserver(unsigned machine_ranks,
                             std::uint64_t freq_mhz, Options options)
    : tracer_(options.traceCapacity), journal_(options.journalCapacity)
{
    tracer_.ensureShards(1);
    tracer_.labelShard(0, "serve");
    lifecycleTrack_ =
        shard().addTrack("lifecycle", obs::TrackKind::Instant, freq_mhz);
    queueTrack_ =
        shard().addTrack("queue", obs::TrackKind::Span, freq_mhz);
    rankTracks_.reserve(machine_ranks);
    for (unsigned r = 0; r < machine_ranks; ++r)
        rankTracks_.push_back(shard().addTrack(
            "rank" + std::to_string(r), obs::TrackKind::Span,
            freq_mhz));
}

void
ServeObserver::jobSubmitted(std::uint64_t id, const std::string &tenant,
                            const char *kernel, unsigned ranks,
                            bool cache_hit, Cycle at)
{
    JobInfo info;
    info.tenant = tenant;
    info.label = "j" + std::to_string(id) + " " + tenant + "/" +
                 kernel + "x" + std::to_string(ranks) +
                 (cache_hit ? " hit" : " miss");
    info.name = shard().internName(info.label);
    shard().instant(lifecycleTrack_,
                    shard().internName("submit " + info.label), at);
    jobs_.emplace(id, std::move(info));
}

void
ServeObserver::admissionRejected(const std::string &tenant,
                                 const std::string &code, Cycle at)
{
    shard().instant(lifecycleTrack_,
                    shard().internName("reject " + tenant + " (" +
                                       code + ")"),
                    at);
    obs::json::Object fields;
    fields["tenant"] = obs::json::Value(tenant);
    fields["code"] = obs::json::Value(code);
    journal_.emit(at, "reject", std::move(fields));
}

void
ServeObserver::jobDispatched(std::uint64_t id, Cycle submit, Cycle start)
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    shard().span(queueTrack_,
                 shard().internName("wait " + it->second.label), submit,
                 start);
}

void
ServeObserver::sliceExecuted(std::uint64_t id,
                             const std::vector<unsigned> &ranks,
                             Cycle begin, Cycle end)
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    for (unsigned r : ranks)
        shard().span(rankTracks_[r], it->second.name, begin, end);
}

void
ServeObserver::jobPreempted(std::uint64_t id, Cycle at)
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    shard().instant(lifecycleTrack_,
                    shard().internName("preempt " + it->second.label),
                    at);
}

void
ServeObserver::jobFinished(std::uint64_t id, const char *state,
                           unsigned preemptions, Cycle at)
{
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    std::string name = std::string(state) + " " + it->second.label;
    if (preemptions > 0)
        name += " (" + std::to_string(preemptions) + " preempt)";
    shard().instant(lifecycleTrack_, shard().internName(name), at);
    if (std::string(state) == "cancelled") {
        obs::json::Object fields;
        fields["job"] = obs::json::Value(id);
        fields["tenant"] = obs::json::Value(it->second.tenant);
        journal_.emit(at, "cancel", std::move(fields));
    }
    jobs_.erase(it);
}

void
ServeObserver::cacheEvicted(const char *plan_kind, std::uint64_t bytes,
                            Cycle at)
{
    obs::json::Object fields;
    fields["plan"] = obs::json::Value(plan_kind);
    fields["bytes"] = obs::json::Value(bytes);
    journal_.emit(at, "evict", std::move(fields));
}

void
ServeObserver::windowRollover(std::uint64_t index, Cycle at)
{
    obs::json::Object fields;
    fields["index"] = obs::json::Value(index);
    journal_.emit(at, "window", std::move(fields));
}

} // namespace menda::serve
