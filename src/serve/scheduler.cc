#include "serve/scheduler.hh"

#include <algorithm>
#include <stdexcept>

#include "common/log.hh"

namespace menda::serve
{

const char *
schedPolicyName(SchedPolicy policy)
{
    return policy == SchedPolicy::Fair ? "fair" : "fifo";
}

SchedPolicy
parseSchedPolicy(const std::string &name)
{
    if (name == "fair")
        return SchedPolicy::Fair;
    if (name == "fifo")
        return SchedPolicy::Fifo;
    throw std::runtime_error("unknown scheduler policy: " + name);
}

std::vector<std::uint64_t>
RankScheduler::pick(const std::vector<Runnable> &runnable)
{
    std::vector<std::uint64_t> picked;
    unsigned free_ranks = machineRanks_;

    // A job picked last round that is still runnable but misses this
    // round's pick was preempted — it lost its ranks mid-kernel.
    // Computed on exit so both policies report through one accessor
    // (Fifo re-picks every hold, so its list is always empty).
    const auto noteRound = [&](const std::vector<std::uint64_t> &now) {
        preempted_.clear();
        for (std::uint64_t id : lastPicked_) {
            const bool still_runnable =
                std::find_if(runnable.begin(), runnable.end(),
                             [id](const Runnable &r) {
                                 return r.id == id;
                             }) != runnable.end();
            const bool repicked =
                std::find(now.begin(), now.end(), id) != now.end();
            if (still_runnable && !repicked)
                preempted_.push_back(id);
        }
        lastPicked_ = now;
    };

    if (policy_ == SchedPolicy::Fifo) {
        // Holds persist: drop holds whose job disappeared, keep the
        // rest, then admit from the head of the queue in strict order —
        // the first job that doesn't fit blocks everything behind it.
        for (std::uint64_t id : held_) {
            const auto it = std::find_if(
                runnable.begin(), runnable.end(),
                [id](const Runnable &r) { return r.id == id; });
            if (it == runnable.end())
                continue; // finished() not yet called; be tolerant
            menda_assert(it->ranks <= free_ranks,
                         "fifo holds exceed the machine");
            free_ranks -= it->ranks;
            picked.push_back(id);
        }
        for (const Runnable &r : runnable) {
            if (std::find(picked.begin(), picked.end(), r.id) !=
                picked.end())
                continue;
            if (r.ranks > free_ranks)
                break; // head-of-line blocking: FIFO does not backfill
            free_ranks -= r.ranks;
            picked.push_back(r.id);
            held_.push_back(r.id);
        }
        noteRound(picked);
        return picked;
    }

    // Fair: rotate the scan origin so every runnable job gets slices at
    // the same long-run rate; skip jobs that don't fit this round.
    if (runnable.empty()) {
        noteRound(picked);
        return picked;
    }
    const std::size_t n = runnable.size();
    const std::size_t origin = static_cast<std::size_t>(rotate_ % n);
    ++rotate_;
    for (std::size_t k = 0; k < n && free_ranks > 0; ++k) {
        const Runnable &r = runnable[(origin + k) % n];
        if (r.ranks > free_ranks)
            continue;
        free_ranks -= r.ranks;
        picked.push_back(r.id);
    }
    noteRound(picked);
    return picked;
}

void
RankScheduler::finished(std::uint64_t id)
{
    held_.erase(std::remove(held_.begin(), held_.end(), id), held_.end());
}

} // namespace menda::serve
