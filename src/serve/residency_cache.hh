/**
 * @file
 * Matrix-residency cache (DESIGN.md §13).
 *
 * A plan (menda/job.hh) is the expensive host-side half of an offload:
 * NNZ-balanced partitioning, per-rank slice extraction, and the
 * page-coloring placement. Plans are immutable and shared via
 * shared_ptr, so the cache can hand the same plan to any number of
 * concurrent jobs and evict it at will — in-flight jobs keep their
 * reference alive; eviction only drops the cache's.
 *
 * Keys are content hashes (FNV-1a over dimensions + arrays) plus the
 * rank count and partitioning mode the plan was built for: a repeated
 * job against the same matrix bytes skips re-allocation and re-layout
 * entirely. Eviction is LRU under a configurable simulated-capacity
 * budget (the bytes the plan keeps resident across the ranks).
 */

#ifndef MENDA_SERVE_RESIDENCY_CACHE_HH
#define MENDA_SERVE_RESIDENCY_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>

#include "menda/job.hh"

namespace menda::serve
{

/** FNV-1a over dims and the ptr/idx/val bytes of @p m. */
std::uint64_t hashCsr(const sparse::CsrMatrix &m);

struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t residentBytes = 0; ///< simulated bytes cached now
    std::uint64_t entries = 0;

    double
    hitRatePct() const
    {
        const std::uint64_t total = hits + misses;
        return total ? 100.0 * static_cast<double>(hits) / total : 0.0;
    }
};

class ResidencyCache
{
  public:
    explicit ResidencyCache(std::uint64_t budget_bytes)
        : budgetBytes_(budget_bytes)
    {}

    std::shared_ptr<const core::TransposePlan>
    transposePlan(const sparse::CsrMatrix &a,
                  const core::SystemConfig &config);
    std::shared_ptr<const core::SpmvPlan>
    spmvPlan(const sparse::CsrMatrix &a, const core::SystemConfig &config);
    std::shared_ptr<const core::SpgemmPlan>
    spgemmPlan(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
               const core::SystemConfig &config);

    const CacheStats &stats() const { return stats_; }
    std::uint64_t budgetBytes() const { return budgetBytes_; }

    /** Eviction notification: (plan kind name, resident bytes freed). */
    using EvictionHook =
        std::function<void(const char *, std::uint64_t)>;

    /** Observe every LRU eviction (journal feed); pass {} to clear. */
    void setEvictionHook(EvictionHook hook)
    {
        evictionHook_ = std::move(hook);
    }

  private:
    struct Key
    {
        std::uint8_t kind = 0; ///< plan type tag
        std::uint64_t hashA = 0;
        std::uint64_t hashB = 0;
        unsigned pus = 0;
        bool rowPartitioning = false;

        bool
        operator<(const Key &o) const
        {
            return std::tie(kind, hashA, hashB, pus, rowPartitioning) <
                   std::tie(o.kind, o.hashA, o.hashB, o.pus,
                            o.rowPartitioning);
        }
    };

    struct Entry
    {
        std::shared_ptr<const void> plan;
        std::uint64_t bytes = 0;
        std::uint64_t lastUse = 0;
    };

    /** Lookup/insert boilerplate shared by the three plan types. */
    template <typename Plan, typename Build>
    std::shared_ptr<const Plan> fetch(const Key &key, Build &&build);

    void evictToBudget();

    std::uint64_t budgetBytes_;
    std::uint64_t tick_ = 0; ///< LRU clock
    std::map<Key, Entry> entries_;
    CacheStats stats_;
    EvictionHook evictionHook_;
};

} // namespace menda::serve

#endif // MENDA_SERVE_RESIDENCY_CACHE_HH
