#include "serve/socket_server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"

namespace menda::serve
{

namespace json = obs::json;

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void
sysFail(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

SocketServer::SocketServer(ServeCore &core, const ServerOptions &options)
    : core_(core), options_(options)
{
    if (!options_.unixPath.empty()) {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            sysFail("socket(AF_UNIX)");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (options_.unixPath.size() >= sizeof(addr.sun_path)) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw std::runtime_error("unix socket path too long: " +
                                     options_.unixPath);
        }
        std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(options_.unixPath.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            sysFail("bind(" + options_.unixPath + ")");
        }
        endpoint_ = "unix:" + options_.unixPath;
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0)
            sysFail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(options_.port));
        if (::inet_pton(AF_INET, options_.host.c_str(),
                        &addr.sin_addr) != 1) {
            ::close(listenFd_);
            listenFd_ = -1;
            throw std::runtime_error("bad listen host: " +
                                     options_.host);
        }
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            sysFail("bind(" + options_.host + ")");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &len);
        port_ = ntohs(bound.sin_port);
        endpoint_ =
            "tcp:" + options_.host + ":" + std::to_string(port_);
    }
    if (::listen(listenFd_, 64) < 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        sysFail("listen");
    }
    setNonBlocking(listenFd_);
}

SocketServer::~SocketServer()
{
    for (auto &conn : conns_)
        if (conn->fd >= 0)
            ::close(conn->fd);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (!options_.unixPath.empty())
        ::unlink(options_.unixPath.c_str());
}

bool
SocketServer::shouldStop() const
{
    if (!core_.shutdownRequested() || !core_.idle())
        return false;
    for (const auto &conn : conns_)
        if (!conn->outbuf.empty())
            return false;
    return true;
}

void
SocketServer::run()
{
    while (!shouldStop())
        iterate(core_.idle() ? 50 : 0);
}

void
SocketServer::iterate(int timeout_ms)
{
    std::vector<pollfd> fds;
    fds.push_back({listenFd_, POLLIN, 0});
    for (const auto &conn : conns_) {
        short events = POLLIN;
        if (!conn->outbuf.empty())
            events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
    }
    const int ready = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()),
                             timeout_ms);
    if (ready > 0) {
        if (fds[0].revents & POLLIN)
            acceptPending();
        for (std::size_t i = 0; i < conns_.size(); ++i) {
            // fds[i + 1] pairs with conns_[i]; acceptPending() only
            // appends, so the prefix correspondence holds.
            Conn &conn = *conns_[i];
            if (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))
                readConn(conn);
            if (conn.fd >= 0 && (fds[i + 1].revents & POLLOUT))
                flushConn(conn);
        }
    }
    if (!core_.idle())
        core_.pump();
    deliverFinished();
    reapConns();
}

void
SocketServer::acceptPending()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->owner = nextOwner_++;
        conn->reader = FrameReader(options_.maxFrameBytes);
        conns_.push_back(std::move(conn));
    }
}

void
SocketServer::readConn(Conn &conn)
{
    char buf[16384];
    for (;;) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.reader.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        // EOF or hard error: the peer is gone. Cancel its jobs.
        core_.cancelOwner(conn.owner);
        ::close(conn.fd);
        conn.fd = -1;
        return;
    }
    for (;;) {
        std::string payload, error;
        const FrameReader::Status status =
            conn.reader.next(&payload, &error);
        if (status == FrameReader::Status::NeedMore)
            break;
        if (status == FrameReader::Status::Error) {
            // Framing is unrecoverable: answer once, then close after
            // the error response drains. The offending length rides in
            // the payload so the client can tell an oversized request
            // from a corrupted prefix.
            json::Object detail;
            detail["frameLength"] = json::Value(
                std::uint64_t(conn.reader.badFrameLength()));
            detail["maxFrameBytes"] = json::Value(
                std::uint64_t(conn.reader.maxFrameBytes()));
            conn.outbuf += encodeFrame(
                errorResponse("badFrame", error, std::move(detail))
                    .serialize());
            conn.closing = true;
            break;
        }
        handlePayload(conn, payload);
        if (conn.fd < 0 || conn.closing)
            break;
    }
    if (conn.fd >= 0)
        flushConn(conn);
}

void
SocketServer::handlePayload(Conn &conn, const std::string &payload)
{
    json::Value request;
    try {
        request = json::parse(payload);
    } catch (const std::exception &e) {
        conn.outbuf += encodeFrame(
            errorResponse("badJson", e.what()).serialize());
        return;
    }

    const bool wait = request.isObject() && request.has("wait") &&
                      request.at("wait").isBool() &&
                      request.at("wait").asBool();
    const json::Value response = core_.handle(request, conn.owner);

    if (wait && response.isObject() && response.has("type") &&
        response.at("type").asString() == "submitted") {
        // Response deferred until the job is terminal; remember who is
        // waiting. deliverFinished() sends the jobStatus.
        const auto id = static_cast<std::uint64_t>(
            response.at("id").asNumber());
        waiters_[id] = conn.owner;
        return;
    }
    conn.outbuf += encodeFrame(response.serialize());
}

void
SocketServer::flushConn(Conn &conn)
{
    while (!conn.outbuf.empty()) {
        const ssize_t n =
            ::write(conn.fd, conn.outbuf.data(), conn.outbuf.size());
        if (n > 0) {
            conn.outbuf.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        core_.cancelOwner(conn.owner);
        ::close(conn.fd);
        conn.fd = -1;
        return;
    }
    if (conn.closing) {
        ::close(conn.fd);
        conn.fd = -1;
    }
}

void
SocketServer::deliverFinished()
{
    for (std::uint64_t id : core_.drainFinished()) {
        const auto it = waiters_.find(id);
        if (it == waiters_.end())
            continue;
        const std::uint64_t owner = it->second;
        waiters_.erase(it);
        for (auto &conn : conns_) {
            if (conn->owner != owner || conn->fd < 0)
                continue;
            conn->outbuf +=
                encodeFrame(core_.jobResponse(id).serialize());
            flushConn(*conn);
            break;
        }
    }
}

void
SocketServer::reapConns()
{
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn> &c) {
                                    return c->fd < 0;
                                }),
                 conns_.end());
}

// --- Client ---

Client
Client::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        sysFail("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("unix socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sysFail("connect(" + path + ")");
    }
    return Client(fd);
}

Client
Client::connectTcp(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        sysFail("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        sysFail("connect(" + host + ":" + std::to_string(port) + ")");
    }
    return Client(fd);
}

Client::~Client()
{
    closeNow();
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_))
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        closeNow();
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        other.fd_ = -1;
    }
    return *this;
}

void
Client::closeNow()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::sendRaw(const std::string &bytes)
{
    menda_assert(fd_ >= 0, "client not connected");
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd_, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            sysFail("write");
        }
        off += static_cast<std::size_t>(n);
    }
}

void
Client::send(const json::Value &request)
{
    sendRaw(encodeFrame(request.serialize()));
}

json::Value
Client::recv()
{
    menda_assert(fd_ >= 0, "client not connected");
    for (;;) {
        std::string payload, error;
        const FrameReader::Status status =
            reader_.next(&payload, &error);
        if (status == FrameReader::Status::Frame)
            return json::parse(payload);
        if (status == FrameReader::Status::Error)
            throw std::runtime_error("protocol error: " + error);
        char buf[16384];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n == 0)
            throw std::runtime_error(
                "connection closed by menda_serve");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            sysFail("read");
        }
        reader_.feed(buf, static_cast<std::size_t>(n));
    }
}

json::Value
Client::call(const json::Value &request)
{
    send(request);
    return recv();
}

} // namespace menda::serve
