/**
 * @file
 * Socket transport for menda_serve: a single-threaded poll loop that
 * feeds framed `menda.job/1` requests into a ServeCore and pumps the
 * simulation between I/O rounds (DESIGN.md §13).
 *
 * Listens on a Unix-domain socket (default) or loopback TCP. Each
 * connection gets its own FrameReader and an owner token; jobs
 * submitted with "wait": true defer their response until the job is
 * terminal, and a mid-job disconnect cleanly cancels every job the
 * connection owned. One thread does everything — the simulated machine
 * is the concurrency layer, not the host.
 *
 * The blocking Client mirrors the framing for tools and tests; sendRaw
 * exists so robustness tests can inject truncated or oversized frames.
 */

#ifndef MENDA_SERVE_SOCKET_SERVER_HH
#define MENDA_SERVE_SOCKET_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "serve/serve_core.hh"

namespace menda::serve
{

struct ServerOptions
{
    /** Non-empty: listen on this Unix socket path (unlinked on exit). */
    std::string unixPath;

    /** TCP fallback when unixPath is empty; port 0 picks an ephemeral
     *  port (read it back via port()). Loopback only. */
    std::string host = "127.0.0.1";
    int port = 0;

    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
};

class SocketServer
{
  public:
    /** Binds and listens; throws std::runtime_error on failure. */
    SocketServer(ServeCore &core, const ServerOptions &options);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Actual TCP port (0 for Unix sockets). */
    int port() const { return port_; }

    /** "unix:<path>" or "tcp:<host>:<port>" (log lines, tests). */
    const std::string &endpoint() const { return endpoint_; }

    /**
     * Serve until a "shutdown" request has been handled AND every job
     * is terminal AND every response has been flushed.
     */
    void run();

    /** One I/O + simulation round (run() is a loop over this). */
    void iterate(int timeout_ms);

    bool shouldStop() const;

  private:
    struct Conn
    {
        int fd = -1;
        std::uint64_t owner = 0;
        FrameReader reader;
        std::string outbuf;
        bool closing = false; ///< close once outbuf drains
    };

    void acceptPending();
    void readConn(Conn &conn);
    void handlePayload(Conn &conn, const std::string &payload);
    void flushConn(Conn &conn);
    void deliverFinished();
    void reapConns();

    ServeCore &core_;
    ServerOptions options_;
    int listenFd_ = -1;
    int port_ = 0;
    std::string endpoint_;
    std::uint64_t nextOwner_ = 1;
    std::vector<std::unique_ptr<Conn>> conns_;
    std::map<std::uint64_t, std::uint64_t> waiters_; ///< job -> owner
};

/** Blocking client for tools and tests. */
class Client
{
  public:
    static Client connectUnix(const std::string &path);
    static Client connectTcp(const std::string &host, int port);
    ~Client();

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** send() + recv(): one request/response round trip. */
    obs::json::Value call(const obs::json::Value &request);

    void send(const obs::json::Value &request);

    /** Block until one complete response frame arrives; throws on EOF
     *  or a malformed frame. */
    obs::json::Value recv();

    /** Write raw bytes (robustness tests: truncated/oversized frames). */
    void sendRaw(const std::string &bytes);

    /** Close immediately (mid-job disconnect tests). */
    void closeNow();

    bool connected() const { return fd_ >= 0; }

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_ = -1;
    FrameReader reader_;
};

} // namespace menda::serve

#endif // MENDA_SERVE_SOCKET_SERVER_HH
