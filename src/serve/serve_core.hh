/**
 * @file
 * The daemon's brain: job table, admission control, scheduling loop,
 * per-tenant SLO metrics (DESIGN.md §13). Transport-agnostic — the
 * socket server feeds it parsed `menda.job/1` requests, and the
 * conformance harness drives it in-process through the same entry
 * point.
 *
 * Execution model: one virtual machine clock (PU-cycle domain). Every
 * pump() is one scheduling round — the rank scheduler picks which
 * runnable jobs occupy ranks, each picked job advances by one bounded
 * cycle slice (KernelJob::step), and the virtual clock advances by the
 * slice. Queue-wait and completion latencies are measured on this
 * clock, so latency metrics are deterministic for a deterministic
 * request stream and independent of host speed.
 *
 * Fast-tier jobs (functional/sampled) execute their semantics at
 * dispatch (host time is O(kernel) anyway) and then occupy their ranks
 * until the charged slices cover the tier's estimated PU cycles — so a
 * functional job contends for the machine in virtual time exactly like
 * a detailed one, while staying cheap to simulate.
 */

#ifndef MENDA_SERVE_SERVE_CORE_HH
#define MENDA_SERVE_SERVE_CORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "menda/job.hh"
#include "obs/metrics.hh"
#include "obs/report.hh"
#include "serve/observer.hh"
#include "serve/protocol.hh"
#include "serve/residency_cache.hh"
#include "serve/scheduler.hh"

namespace menda::serve
{

struct ServeConfig
{
    /** Shape of the shared simulated machine; totalPus() = rank pool. */
    core::SystemConfig system;

    /** Default ranks a job occupies (request "pus" may override; both
     *  are clamped to the machine). */
    unsigned ranksPerJob = 4;

    /** Max jobs waiting (excludes running); admission rejects beyond. */
    std::size_t queueDepth = 64;

    /** Max queued+running jobs per tenant. */
    unsigned tenantInFlight = 4;

    /** PU cycles granted per job per scheduling round. */
    Cycle sliceCycles = 20'000;

    /** Residency-cache budget, simulated bytes. */
    std::uint64_t cacheBudgetBytes = 256ull << 20;

    SchedPolicy policy = SchedPolicy::Fair;

    /**
     * Virtual cycles per SLO window. Rolling per-tenant percentiles
     * (metrics verb) cover the last completed window plus the current
     * partial one; each rollover is journaled. 0 disables windows
     * (rolling percentiles then cover the whole run).
     */
    Cycle windowCycles = 1'000'000;

    /**
     * Job-span tracing + event journal (DESIGN.md §14). On by default;
     * the serve benchmark A/Bs this flag to bound the overhead. Must
     * never change scheduling: the virtual-cycle schedule is identical
     * either way.
     */
    bool observability = true;

    std::size_t traceCapacity = 1 << 16; ///< job-span ring, events
    std::size_t journalCapacity = 4096;  ///< journal ring, events
};

enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

const char *jobStateName(JobState state);

class ServeCore
{
  public:
    explicit ServeCore(const ServeConfig &config);
    ~ServeCore();

    /**
     * Handle one parsed request; returns the response. @p owner tags
     * submitted jobs with the connection they came from so a mid-job
     * disconnect can cancel them (0 = unowned, never auto-cancelled).
     * Never throws on bad input — malformed requests get a typed
     * "error" response.
     */
    obs::json::Value handle(const obs::json::Value &request,
                            std::uint64_t owner = 0);

    /** One scheduling round; no-op when nothing is runnable. */
    void pump();

    /** pump() until no job is queued or running. */
    void runUntilIdle();

    bool idle() const;
    bool shutdownRequested() const { return shutdown_; }

    /** Job ids that reached a terminal state since the last drain. */
    std::vector<std::uint64_t> drainFinished();

    /** Cancel every non-terminal job submitted by @p owner. */
    void cancelOwner(std::uint64_t owner);

    /** The "jobStatus" response for @p id (results when terminal). */
    obs::json::Value jobResponse(std::uint64_t id) const;

    /** The "stats" response body. */
    obs::json::Value statsJson() const;

    /** Metrics snapshot as a menda.runReport/1 (CI artifact). */
    obs::RunReport metricsReport() const;

    /**
     * Current metric families (rolling per-tenant percentiles, cache,
     * rank utilization, preemptions) — the "metrics" verb body, also
     * renderable as Prometheus text via obs::renderPrometheus().
     */
    std::vector<obs::MetricFamily> metricFamilies() const;

    /** Prometheus text exposition of metricFamilies(). */
    std::string prometheusText() const;

    /** Observability sinks; null/empty when config.observability off. */
    const ServeObserver *observer() const { return observer_.get(); }

    /** Journal as JSONL ("" when observability is off). */
    std::string journalJsonl() const;

    /** Job-span Chrome trace JSON ("" when observability is off). */
    std::string jobTraceJson() const;

    const ServeConfig &config() const { return config_; }
    const CacheStats &cacheStats() const { return cache_.stats(); }
    Cycle virtualCycle() const { return virtualCycle_; }
    std::uint64_t preemptions() const { return preemptionsTotal_; }

  private:
    struct Job
    {
        std::uint64_t id = 0;
        std::string tenant;
        std::uint64_t owner = 0;
        core::KernelJob::Kind kind = core::KernelJob::Kind::Transpose;
        core::SystemConfig config; ///< per-job (rank subset of machine)
        unsigned ranks = 0;
        bool cacheHit = false;
        std::uint64_t inputNnz = 0; ///< nnz(A): report throughput basis

        std::shared_ptr<const core::TransposePlan> transposePlan;
        std::shared_ptr<const core::SpmvPlan> spmvPlan;
        std::shared_ptr<const core::SpgemmPlan> spgemmPlan;
        std::vector<Value> x;

        std::unique_ptr<core::KernelJob> kernel; ///< built at dispatch
        Cycle fastRemaining = 0; ///< fast tiers: cycles still charged
        bool fastExecuted = false;

        JobState state = JobState::Queued;
        Cycle submitCycle = 0, startCycle = 0, doneCycle = 0;
        unsigned preemptions = 0;
        /** Concrete ranks occupied this round (fair reassigns every
         *  round; fifo holds them until completion). */
        std::vector<unsigned> assignedRanks;

        obs::json::Value result; ///< outputs + report once Done
        std::string error;      ///< reason once Failed
    };

    struct TenantStats
    {
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t rejected = 0;
        std::uint64_t preemptions = 0; ///< of finished jobs
        std::vector<std::uint64_t> queueWait; ///< cycles, per job
        std::vector<std::uint64_t> total;     ///< queue-to-completion
        Histogram queueWaitHist;
        Histogram totalHist;
        // Rolling SLO windows: current partial window + the last
        // completed one; the metrics verb reports their merge.
        Histogram windowQueueWait, windowTotal;
        Histogram prevQueueWait, prevTotal;
    };

    obs::json::Value handleSubmit(const obs::json::Value &request,
                                  std::uint64_t owner);
    obs::json::Value handleStatus(const obs::json::Value &request) const;
    obs::json::Value handleMetrics(const obs::json::Value &request) const;
    obs::json::Value handleStatsStream(
        const obs::json::Value &request) const;

    unsigned inFlightOf(const std::string &tenant) const;
    std::size_t queuedCount() const;
    void dispatch(Job &job);      ///< Queued -> Running (build kernel)
    void advance(Job &job);       ///< one slice of progress
    void complete(Job &job);      ///< Running -> Done (build result)
    void finishJob(Job &job, JobState state);
    obs::json::Value buildResult(Job &job);
    /** Label this round's picked jobs with concrete rank ids. */
    void assignRanks(const std::vector<std::uint64_t> &picked);
    /** Roll SLO windows past @p now (journals each rollover). */
    void rollWindowsTo(Cycle now);

    ServeConfig config_;
    ResidencyCache cache_;
    RankScheduler scheduler_;
    std::unique_ptr<ServeObserver> observer_; ///< null when disabled
    Cycle virtualCycle_ = 0;
    std::uint64_t nextJobId_ = 1;
    std::map<std::uint64_t, Job> jobs_;
    std::vector<std::uint64_t> order_;    ///< submission order (live)
    std::vector<std::uint64_t> finished_; ///< for drainFinished()
    std::map<std::string, TenantStats> tenants_;
    std::uint64_t rejectedTotal_ = 0;
    std::uint64_t preemptionsTotal_ = 0;
    std::uint64_t windowIndex_ = 0;
    std::vector<Cycle> rankBusy_;  ///< per-rank busy virtual cycles
    std::vector<bool> rankHeld_;   ///< fifo: rank held by a running job
    bool shutdown_ = false;
};

} // namespace menda::serve

#endif // MENDA_SERVE_SERVE_CORE_HH
