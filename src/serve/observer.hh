/**
 * @file
 * Service-level observability plane (DESIGN.md §14).
 *
 * ServeCore narrates the job lifecycle into this observer, which fans
 * the stream into two sinks on the same virtual PU-cycle clock:
 *
 *  - Job-span tracing (obs::Tracer, one shard labeled "serve"): a
 *    "lifecycle" instant track (submit / reject / preempt / terminal
 *    state per job), a "queue" span track (submit → dispatch wait),
 *    and one span track per DRAM rank carrying the execution slices of
 *    whichever job occupied that rank each scheduling round. The
 *    serialized Chrome trace is loadable in Perfetto next to the
 *    kernel-level traces from PR 4 and is byte-identical across
 *    `--threads` and re-runs because every timestamp is virtual.
 *
 *  - Structured event journal (obs::EventJournal): typed, rare events
 *    — admission rejects, cache evictions, cancellations, SLO-window
 *    rollovers — as canonical JSONL, drainable over the wire via the
 *    `stats.stream` verb.
 *
 * The observer holds no scheduling state and must never influence the
 * schedule: ServeCore behaves identically with observability disabled,
 * which is what the bench overhead A/B relies on.
 */

#ifndef MENDA_SERVE_OBSERVER_HH
#define MENDA_SERVE_OBSERVER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/journal.hh"
#include "obs/trace.hh"

namespace menda::serve
{

class ServeObserver
{
  public:
    struct Options
    {
        std::size_t traceCapacity = 1 << 16;  ///< events
        std::size_t journalCapacity = 4096;   ///< events
    };

    /** @param freq_mhz PU clock (scales trace timestamps to µs). */
    ServeObserver(unsigned machine_ranks, std::uint64_t freq_mhz,
                  Options options);

    ServeObserver(unsigned machine_ranks, std::uint64_t freq_mhz)
        : ServeObserver(machine_ranks, freq_mhz, Options())
    {}

    // --- lifecycle feed (all cycles are virtual PU cycles) ---

    void jobSubmitted(std::uint64_t id, const std::string &tenant,
                      const char *kernel, unsigned ranks,
                      bool cache_hit, Cycle at);

    void admissionRejected(const std::string &tenant,
                           const std::string &code, Cycle at);

    /** Queued → Running: emits the queue-wait span. */
    void jobDispatched(std::uint64_t id, Cycle submit, Cycle start);

    /** One execution slice on the given concrete ranks. */
    void sliceExecuted(std::uint64_t id,
                       const std::vector<unsigned> &ranks, Cycle begin,
                       Cycle end);

    void jobPreempted(std::uint64_t id, Cycle at);

    /** Terminal transition; journals a "cancel" event when cancelled. */
    void jobFinished(std::uint64_t id, const char *state,
                     unsigned preemptions, Cycle at);

    void cacheEvicted(const char *plan_kind, std::uint64_t bytes,
                      Cycle at);

    void windowRollover(std::uint64_t index, Cycle at);

    // --- sinks ---

    const obs::EventJournal &journal() const { return journal_; }
    const obs::Tracer &tracer() const { return tracer_; }

    /** Serialize the job-span trace as Chrome trace-event JSON. */
    void writeTrace(std::ostream &os) const
    {
        tracer_.writeChromeTrace(os);
    }

  private:
    struct JobInfo
    {
        std::string tenant;
        std::string label;       ///< "j<id> <tenant>/<kernel> hit|miss"
        std::uint32_t name = 0;  ///< interned label
    };

    obs::TraceShard &shard() { return *tracer_.shard(0); }

    obs::Tracer tracer_;
    obs::EventJournal journal_;
    std::uint32_t lifecycleTrack_ = 0;
    std::uint32_t queueTrack_ = 0;
    std::vector<std::uint32_t> rankTracks_;
    std::map<std::uint64_t, JobInfo> jobs_;
};

} // namespace menda::serve

#endif // MENDA_SERVE_OBSERVER_HH
