/**
 * @file
 * Rank-packing job scheduler (DESIGN.md §13).
 *
 * The daemon's simulated machine has a fixed number of DRAM ranks; each
 * job's plan is built for a subset of them. Every scheduling round the
 * scheduler selects which runnable jobs occupy ranks for the next cycle
 * slice:
 *
 *  - Fair (default): preemptive round-robin. The scan origin rotates
 *    each round, jobs that don't fit are skipped, and nothing holds
 *    ranks between rounds — a long SpGEMM advances one slice at a time
 *    and cannot starve queued SpMVs (resumable kernels make the
 *    preemption free).
 *  - Fifo: non-preemptive run-to-completion in strict submission
 *    order. A started job holds its ranks until it finishes, and the
 *    queue head blocks everything behind it. This is the baseline the
 *    serve benchmark contrasts against.
 */

#ifndef MENDA_SERVE_SCHEDULER_HH
#define MENDA_SERVE_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace menda::serve
{

enum class SchedPolicy : std::uint8_t
{
    Fair,
    Fifo,
};

const char *schedPolicyName(SchedPolicy policy);

/** Parse "fair" | "fifo"; throws std::runtime_error otherwise. */
SchedPolicy parseSchedPolicy(const std::string &name);

class RankScheduler
{
  public:
    RankScheduler(unsigned machine_ranks, SchedPolicy policy)
        : machineRanks_(machine_ranks), policy_(policy)
    {}

    struct Runnable
    {
        std::uint64_t id = 0;
        unsigned ranks = 0; ///< ranks the job occupies while scheduled
    };

    /**
     * Pick the jobs that run this round. @p runnable must be in
     * submission order and contain every queued or started-but-
     * unfinished job. Deterministic.
     */
    std::vector<std::uint64_t> pick(const std::vector<Runnable> &runnable);

    /** Release a finished (or cancelled) job's rank hold. */
    void finished(std::uint64_t id);

    /**
     * Jobs preempted by the most recent pick(): picked last round,
     * still runnable, but not picked this round — they lost their
     * ranks mid-kernel. Always empty under Fifo (run-to-completion).
     */
    const std::vector<std::uint64_t> &preempted() const
    {
        return preempted_;
    }

    SchedPolicy policy() const { return policy_; }
    unsigned machineRanks() const { return machineRanks_; }

  private:
    unsigned machineRanks_;
    SchedPolicy policy_;
    std::vector<std::uint64_t> held_; ///< Fifo: running, holding ranks
    std::uint64_t rotate_ = 0;        ///< Fair: scan origin
    std::vector<std::uint64_t> lastPicked_;
    std::vector<std::uint64_t> preempted_;
};

} // namespace menda::serve

#endif // MENDA_SERVE_SCHEDULER_HH
