#include "serve/protocol.hh"

#include <stdexcept>

namespace menda::serve
{

namespace
{

void
expect(bool ok, const char *what)
{
    if (!ok)
        throw std::runtime_error(std::string("menda.job/1: ") + what);
}

template <typename T>
obs::json::Value
numberArray(const std::vector<T> &v)
{
    obs::json::Array array;
    array.reserve(v.size());
    for (const T &x : v)
        array.push_back(obs::json::Value(static_cast<double>(x)));
    return obs::json::Value(std::move(array));
}

template <typename T>
std::vector<T>
numbersFrom(const obs::json::Value &v, const char *what)
{
    expect(v.isArray(), what);
    std::vector<T> out;
    out.reserve(v.asArray().size());
    for (const obs::json::Value &x : v.asArray()) {
        expect(x.isNumber(), what);
        out.push_back(static_cast<T>(x.asNumber()));
    }
    return out;
}

std::uint64_t
indexField(const obs::json::Value &v, const char *key)
{
    const obs::json::Value &field = v.at(key);
    expect(field.isNumber(), "matrix field is not a number");
    expect(field.asNumber() >= 0, "matrix dimension is negative");
    return static_cast<std::uint64_t>(field.asNumber());
}

} // namespace

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(payload.size() + 4);
    frame.push_back(static_cast<char>(n & 0xff));
    frame.push_back(static_cast<char>((n >> 8) & 0xff));
    frame.push_back(static_cast<char>((n >> 16) & 0xff));
    frame.push_back(static_cast<char>((n >> 24) & 0xff));
    frame += payload;
    return frame;
}

FrameReader::Status
FrameReader::next(std::string *payload, std::string *error)
{
    if (poisoned_) {
        if (error)
            *error = "frame stream already poisoned";
        return Status::Error;
    }
    if (buf_.size() < 4)
        return Status::NeedMore;
    const auto b = [&](std::size_t i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(buf_[i]));
    };
    const std::uint32_t n = b(0) | (b(1) << 8) | (b(2) << 16) |
                            (b(3) << 24);
    if (n > maxFrame_) {
        poisoned_ = true;
        badLength_ = n;
        if (error)
            *error = "frame of " + std::to_string(n) +
                     " bytes exceeds the " + std::to_string(maxFrame_) +
                     " byte limit";
        return Status::Error;
    }
    if (buf_.size() < 4 + static_cast<std::size_t>(n))
        return Status::NeedMore;
    payload->assign(buf_, 4, n);
    buf_.erase(0, 4 + static_cast<std::size_t>(n));
    return Status::Frame;
}

obs::json::Value
csrToJson(const sparse::CsrMatrix &m)
{
    obs::json::Object o;
    o["rows"] = obs::json::Value(static_cast<double>(m.rows));
    o["cols"] = obs::json::Value(static_cast<double>(m.cols));
    o["ptr"] = numberArray(m.ptr);
    o["idx"] = numberArray(m.idx);
    o["val"] = numberArray(m.val);
    return obs::json::Value(std::move(o));
}

sparse::CsrMatrix
csrFromJson(const obs::json::Value &v)
{
    expect(v.isObject(), "matrix is not an object");
    sparse::CsrMatrix m;
    m.rows = static_cast<Index>(indexField(v, "rows"));
    m.cols = static_cast<Index>(indexField(v, "cols"));
    m.ptr = numbersFrom<std::uint32_t>(v.at("ptr"), "bad ptr array");
    m.idx = numbersFrom<std::uint32_t>(v.at("idx"), "bad idx array");
    m.val = numbersFrom<Value>(v.at("val"), "bad val array");
    expect(m.ptr.size() == static_cast<std::size_t>(m.rows) + 1,
           "ptr length != rows + 1");
    expect(m.idx.size() == m.val.size(), "idx/val length mismatch");
    expect(!m.ptr.empty() && m.ptr.front() == 0, "ptr[0] != 0");
    expect(m.ptr.back() == m.idx.size(), "ptr[rows] != nnz");
    for (std::size_t r = 1; r < m.ptr.size(); ++r)
        expect(m.ptr[r - 1] <= m.ptr[r], "ptr not monotonic");
    for (std::uint32_t c : m.idx)
        expect(c < m.cols, "column index out of range");
    return m;
}

obs::json::Value
cscToJson(const sparse::CscMatrix &m)
{
    obs::json::Object o;
    o["rows"] = obs::json::Value(static_cast<double>(m.rows));
    o["cols"] = obs::json::Value(static_cast<double>(m.cols));
    o["ptr"] = numberArray(m.ptr);
    o["idx"] = numberArray(m.idx);
    o["val"] = numberArray(m.val);
    return obs::json::Value(std::move(o));
}

sparse::CscMatrix
cscFromJson(const obs::json::Value &v)
{
    expect(v.isObject(), "matrix is not an object");
    sparse::CscMatrix m;
    m.rows = static_cast<Index>(indexField(v, "rows"));
    m.cols = static_cast<Index>(indexField(v, "cols"));
    m.ptr = numbersFrom<std::uint32_t>(v.at("ptr"), "bad ptr array");
    m.idx = numbersFrom<std::uint32_t>(v.at("idx"), "bad idx array");
    m.val = numbersFrom<Value>(v.at("val"), "bad val array");
    expect(m.ptr.size() == static_cast<std::size_t>(m.cols) + 1,
           "ptr length != cols + 1");
    expect(m.idx.size() == m.val.size(), "idx/val length mismatch");
    return m;
}

obs::json::Value
doubleVectorToJson(const std::vector<double> &v)
{
    obs::json::Array array;
    array.reserve(v.size());
    for (double x : v)
        array.push_back(obs::json::Value(x));
    return obs::json::Value(std::move(array));
}

std::vector<double>
doubleVectorFromJson(const obs::json::Value &v)
{
    return numbersFrom<double>(v, "bad double vector");
}

obs::json::Value
valueVectorToJson(const std::vector<Value> &v)
{
    return numberArray(v);
}

std::vector<Value>
valueVectorFromJson(const obs::json::Value &v)
{
    return numbersFrom<Value>(v, "bad value vector");
}

obs::json::Value
errorResponse(const std::string &code, const std::string &message)
{
    return errorResponse(code, message, obs::json::Object{});
}

obs::json::Value
errorResponse(const std::string &code, const std::string &message,
              obs::json::Object details)
{
    obs::json::Object o = std::move(details);
    o["schema"] = obs::json::Value(kSchema);
    o["type"] = obs::json::Value("error");
    o["code"] = obs::json::Value(code);
    o["message"] = obs::json::Value(message);
    return obs::json::Value(std::move(o));
}

bool
isError(const obs::json::Value &v, std::string *code, std::string *message)
{
    if (!v.isObject() || !v.at("type").isString() ||
        v.at("type").asString() != "error")
        return false;
    if (code && v.at("code").isString())
        *code = v.at("code").asString();
    if (message && v.at("message").isString())
        *message = v.at("message").asString();
    return true;
}

} // namespace menda::serve
