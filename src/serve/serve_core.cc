#include "serve/serve_core.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.hh"
#include "menda/run_report.hh"
#include "menda/sim_mode.hh"

namespace menda::serve
{

namespace json = obs::json;

namespace
{

const char *
kernelName(core::KernelJob::Kind kind)
{
    switch (kind) {
      case core::KernelJob::Kind::Transpose: return "transpose";
      case core::KernelJob::Kind::Spmv: return "spmv";
      case core::KernelJob::Kind::Spgemm: return "spgemm";
    }
    return "?";
}

/** Nearest-rank percentile of an unsorted sample vector. */
std::uint64_t
percentile(std::vector<std::uint64_t> samples, double pct)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    if (rank == 0)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    return samples[rank - 1];
}

json::Value
latencySummary(const std::vector<std::uint64_t> &samples)
{
    json::Object o;
    std::uint64_t sum = 0, max = 0;
    for (std::uint64_t s : samples) {
        sum += s;
        max = std::max(max, s);
    }
    o["count"] = json::Value(std::uint64_t(samples.size()));
    o["mean"] = json::Value(
        samples.empty() ? 0.0
                        : static_cast<double>(sum) / samples.size());
    o["max"] = json::Value(max);
    o["p50"] = json::Value(percentile(samples, 50.0));
    o["p95"] = json::Value(percentile(samples, 95.0));
    o["p99"] = json::Value(percentile(samples, 99.0));
    return json::Value(std::move(o));
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

ServeCore::ServeCore(const ServeConfig &config)
    : config_(config), cache_(config.cacheBudgetBytes),
      scheduler_(config.system.totalPus(), config.policy)
{
    menda_assert(config_.system.totalPus() > 0, "machine needs ranks");
    menda_assert(config_.sliceCycles > 0, "sliceCycles must be > 0");
}

ServeCore::~ServeCore() = default;

json::Value
ServeCore::handle(const json::Value &request, std::uint64_t owner)
{
    if (!request.isObject())
        return errorResponse("badRequest", "request must be an object");
    if (request.has("schema") &&
        request.at("schema").asString() != kSchema)
        return errorResponse("badRequest",
                             "unsupported schema: " +
                                 request.at("schema").asString());
    if (!request.has("type") || !request.at("type").isString())
        return errorResponse("badRequest", "missing request type");
    const std::string &type = request.at("type").asString();

    if (type == "submit")
        return handleSubmit(request, owner);
    if (type == "status")
        return handleStatus(request);
    if (type == "stats")
        return statsJson();
    if (type == "shutdown") {
        shutdown_ = true;
        json::Object o;
        o["type"] = json::Value("shuttingDown");
        return json::Value(std::move(o));
    }
    return errorResponse("badRequest", "unknown request type: " + type);
}

json::Value
ServeCore::handleSubmit(const json::Value &request, std::uint64_t owner)
{
    // Cheap admission checks first; matrix decoding (the expensive part)
    // only happens for requests that would actually be admitted.
    std::string tenant = "default";
    if (request.has("tenant")) {
        if (!request.at("tenant").isString())
            return errorResponse("badRequest", "tenant must be a string");
        tenant = request.at("tenant").asString();
    }
    if (!request.has("kernel") || !request.at("kernel").isString())
        return errorResponse("badRequest", "missing kernel");
    const std::string &kernel = request.at("kernel").asString();

    if (queuedCount() >= config_.queueDepth) {
        ++rejectedTotal_;
        ++tenants_[tenant].rejected;
        return errorResponse("queueFull",
                             "queue depth " +
                                 std::to_string(config_.queueDepth) +
                                 " reached; retry later");
    }
    if (inFlightOf(tenant) >= config_.tenantInFlight) {
        ++rejectedTotal_;
        ++tenants_[tenant].rejected;
        return errorResponse(
            "tenantBusy", "tenant '" + tenant + "' already has " +
                              std::to_string(config_.tenantInFlight) +
                              " jobs in flight");
    }

    Job job;
    job.tenant = tenant;
    job.owner = owner;

    unsigned ranks = config_.ranksPerJob;
    if (request.has("pus")) {
        if (!request.at("pus").isNumber() ||
            request.at("pus").asNumber() < 1)
            return errorResponse("badRequest",
                                 "pus must be a positive number");
        ranks = static_cast<unsigned>(request.at("pus").asNumber());
    }
    job.ranks = std::min(ranks, scheduler_.machineRanks());
    if (job.ranks == 0)
        job.ranks = 1;

    // The per-job machine: a rank subset of the shared pool. Fidelity
    // and the ablation/sampling knobs come from the daemon's config;
    // interleaved execution requires hostThreads == 1 per job (the
    // daemon itself is the concurrency layer).
    job.config = config_.system;
    job.config.channels = 1;
    job.config.dimmsPerChannel = 1;
    job.config.ranksPerDimm = job.ranks;
    job.config.hostThreads = 1;
    job.config.progressEveryCycles = 0;
    if (request.has("simMode")) {
        if (!request.at("simMode").isString() ||
            !core::parseSimMode(request.at("simMode").asString(),
                                job.config.simMode, job.config.sampled))
            return errorResponse("badRequest",
                                 "bad simMode (want detailed | "
                                 "functional | sampled[:W,P[,WARM]])");
    }

    const std::uint64_t hitsBefore = cache_.stats().hits;
    try {
        if (kernel == "transpose") {
            job.kind = core::KernelJob::Kind::Transpose;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            job.inputNnz = a.nnz();
            job.transposePlan = cache_.transposePlan(a, job.config);
        } else if (kernel == "spmv") {
            job.kind = core::KernelJob::Kind::Spmv;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            job.x = valueVectorFromJson(request.at("x"));
            if (job.x.size() != a.cols)
                throw std::runtime_error(
                    "x has " + std::to_string(job.x.size()) +
                    " entries; matrix has " + std::to_string(a.cols) +
                    " columns");
            job.inputNnz = a.nnz();
            job.spmvPlan = cache_.spmvPlan(a, job.config);
        } else if (kernel == "spgemm") {
            job.kind = core::KernelJob::Kind::Spgemm;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            const sparse::CsrMatrix b = csrFromJson(request.at("b"));
            if (a.cols != b.rows)
                throw std::runtime_error(
                    "dimension mismatch: a.cols != b.rows");
            job.inputNnz = a.nnz();
            job.spgemmPlan = cache_.spgemmPlan(a, b, job.config);
        } else {
            return errorResponse("badRequest",
                                 "unknown kernel: " + kernel);
        }
    } catch (const std::exception &e) {
        return errorResponse("badRequest", e.what());
    }
    job.cacheHit = cache_.stats().hits != hitsBefore;

    job.id = nextJobId_++;
    job.submitCycle = virtualCycle_;
    const std::uint64_t id = job.id;
    const bool cacheHit = job.cacheHit;
    const unsigned jobRanks = job.ranks;
    order_.push_back(job.id);
    jobs_.emplace(job.id, std::move(job));

    json::Object o;
    o["type"] = json::Value("submitted");
    o["id"] = json::Value(id);
    o["cacheHit"] = json::Value(cacheHit);
    o["ranks"] = json::Value(std::uint64_t(jobRanks));
    return json::Value(std::move(o));
}

json::Value
ServeCore::handleStatus(const json::Value &request) const
{
    if (!request.has("id") || !request.at("id").isNumber())
        return errorResponse("badRequest", "missing job id");
    return jobResponse(
        static_cast<std::uint64_t>(request.at("id").asNumber()));
}

unsigned
ServeCore::inFlightOf(const std::string &tenant) const
{
    unsigned n = 0;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.tenant == tenant &&
            (job.state == JobState::Queued ||
             job.state == JobState::Running))
            ++n;
    }
    return n;
}

std::size_t
ServeCore::queuedCount() const
{
    std::size_t n = 0;
    for (std::uint64_t id : order_)
        if (jobs_.at(id).state == JobState::Queued)
            ++n;
    return n;
}

bool
ServeCore::idle() const
{
    return order_.empty();
}

void
ServeCore::pump()
{
    std::vector<RankScheduler::Runnable> runnable;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.state == JobState::Queued ||
            job.state == JobState::Running)
            runnable.push_back({id, job.ranks});
    }
    if (runnable.empty())
        return;

    const Cycle roundStart = virtualCycle_;
    const std::vector<std::uint64_t> picked = scheduler_.pick(runnable);
    for (std::uint64_t id : picked) {
        Job &job = jobs_.at(id);
        try {
            if (job.state == JobState::Queued) {
                job.startCycle = roundStart;
                dispatch(job);
            }
            advance(job);
            const bool finished =
                job.kernel ? (job.kernel->done() &&
                              job.fastRemaining == 0)
                           : false;
            if (finished) {
                job.doneCycle = roundStart + config_.sliceCycles;
                complete(job);
            }
        } catch (const std::exception &e) {
            job.error = e.what();
            job.doneCycle = roundStart + config_.sliceCycles;
            finishJob(job, JobState::Failed);
        }
    }
    virtualCycle_ = roundStart + config_.sliceCycles;
}

void
ServeCore::runUntilIdle()
{
    while (!idle())
        pump();
}

void
ServeCore::dispatch(Job &job)
{
    job.state = JobState::Running;
    switch (job.kind) {
      case core::KernelJob::Kind::Transpose:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.transposePlan);
        break;
      case core::KernelJob::Kind::Spmv:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.spmvPlan, job.x);
        break;
      case core::KernelJob::Kind::Spgemm:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.spgemmPlan);
        break;
    }
    if (job.config.simMode != core::SimMode::Detailed) {
        // Fast tiers: the semantics run up front (host cost is O(kernel)
        // regardless), then the job occupies its ranks until the charged
        // slices cover the tier's estimated PU cycles — so it contends
        // for the machine in virtual time exactly like a detailed job.
        job.kernel->runToCompletion();
        job.fastExecuted = true;
        job.fastRemaining = job.kernel->puCycles();
    }
}

void
ServeCore::advance(Job &job)
{
    if (job.fastExecuted) {
        job.fastRemaining -= std::min(job.fastRemaining,
                                      config_.sliceCycles);
        return;
    }
    if (!job.kernel->done())
        job.kernel->step(config_.sliceCycles);
}

void
ServeCore::complete(Job &job)
{
    job.result = buildResult(job);
    TenantStats &t = tenants_[job.tenant];
    ++t.completed;
    const std::uint64_t wait = job.startCycle - job.submitCycle;
    const std::uint64_t total = job.doneCycle - job.submitCycle;
    t.queueWait.push_back(wait);
    t.total.push_back(total);
    t.queueWaitHist.record(wait);
    t.totalHist.record(total);
    finishJob(job, JobState::Done);
}

void
ServeCore::finishJob(Job &job, JobState state)
{
    job.state = state;
    if (job.doneCycle == 0)
        job.doneCycle = virtualCycle_;
    if (state == JobState::Failed)
        ++tenants_[job.tenant].failed;
    job.kernel.reset(); // release the simulated components immediately
    scheduler_.finished(job.id);
    order_.erase(std::remove(order_.begin(), order_.end(), job.id),
                 order_.end());
    finished_.push_back(job.id);
}

json::Value
ServeCore::buildResult(Job &job)
{
    json::Object o;
    o["kernel"] = json::Value(kernelName(job.kind));
    o["cacheHit"] = json::Value(job.cacheHit);
    o["ranks"] = json::Value(std::uint64_t(job.ranks));
    o["queueWaitCycles"] =
        json::Value(job.startCycle - job.submitCycle);
    o["totalCycles"] = json::Value(job.doneCycle - job.submitCycle);

    // Report throughput against nnz(A), matching the direct-run
    // convention (KernelJob::nnz() counts A+B for SpGEMM).
    const std::uint64_t nnz = job.inputNnz;
    switch (job.kind) {
      case core::KernelJob::Kind::Transpose: {
        core::TransposeResult r = job.kernel->takeTranspose();
        o["csc"] = cscToJson(r.csc);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "transpose",
                                job.config, r, nnz)
                .toJson());
        break;
      }
      case core::KernelJob::Kind::Spmv: {
        core::SpmvResult r = job.kernel->takeSpmv();
        o["y"] = doubleVectorToJson(r.y);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "spmv", job.config,
                                r, nnz)
                .toJson());
        break;
      }
      case core::KernelJob::Kind::Spgemm: {
        core::SpgemmResult r = job.kernel->takeSpgemm();
        o["c"] = csrToJson(r.c);
        o["partialProducts"] = json::Value(r.partialProducts);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "spgemm",
                                job.config, r, nnz)
                .toJson());
        break;
      }
    }
    return json::Value(std::move(o));
}

std::vector<std::uint64_t>
ServeCore::drainFinished()
{
    std::vector<std::uint64_t> out;
    out.swap(finished_);
    return out;
}

void
ServeCore::cancelOwner(std::uint64_t owner)
{
    if (owner == 0)
        return;
    const std::vector<std::uint64_t> live = order_;
    for (std::uint64_t id : live) {
        Job &job = jobs_.at(id);
        if (job.owner != owner)
            continue;
        job.error = "client disconnected";
        finishJob(job, JobState::Cancelled);
    }
}

json::Value
ServeCore::jobResponse(std::uint64_t id) const
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("unknownJob",
                             "no job with id " + std::to_string(id));
    const Job &job = it->second;
    json::Object o;
    o["type"] = json::Value("jobStatus");
    o["id"] = json::Value(id);
    o["state"] = json::Value(jobStateName(job.state));
    o["tenant"] = json::Value(job.tenant);
    if (job.state == JobState::Done && job.result.isObject())
        for (const auto &[key, value] : job.result.asObject())
            o[key] = value;
    if (!job.error.empty())
        o["error"] = json::Value(job.error);
    return json::Value(std::move(o));
}

json::Value
ServeCore::statsJson() const
{
    json::Object o;
    o["type"] = json::Value("stats");
    o["schema"] = json::Value(kSchema);
    o["policy"] = json::Value(schedPolicyName(scheduler_.policy()));
    o["machineRanks"] =
        json::Value(std::uint64_t(scheduler_.machineRanks()));
    o["virtualCycle"] = json::Value(virtualCycle_);
    o["sliceCycles"] = json::Value(config_.sliceCycles);

    std::uint64_t queued = 0, running = 0;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.state == JobState::Queued)
            ++queued;
        else if (job.state == JobState::Running)
            ++running;
    }
    std::uint64_t completed = 0, failed = 0, cancelled = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Done)
            ++completed;
        else if (job.state == JobState::Failed)
            ++failed;
        else if (job.state == JobState::Cancelled)
            ++cancelled;
    }
    json::Object jobs;
    jobs["queued"] = json::Value(queued);
    jobs["running"] = json::Value(running);
    jobs["completed"] = json::Value(completed);
    jobs["failed"] = json::Value(failed);
    jobs["cancelled"] = json::Value(cancelled);
    jobs["rejected"] = json::Value(rejectedTotal_);
    o["jobs"] = json::Value(std::move(jobs));

    const CacheStats &c = cache_.stats();
    json::Object cache;
    cache["hits"] = json::Value(c.hits);
    cache["misses"] = json::Value(c.misses);
    cache["evictions"] = json::Value(c.evictions);
    cache["entries"] = json::Value(c.entries);
    cache["residentBytes"] = json::Value(c.residentBytes);
    cache["budgetBytes"] = json::Value(cache_.budgetBytes());
    cache["hitRatePct"] = json::Value(c.hitRatePct());
    o["cache"] = json::Value(std::move(cache));

    json::Object tenants;
    for (const auto &[name, t] : tenants_) {
        json::Object to;
        to["completed"] = json::Value(t.completed);
        to["failed"] = json::Value(t.failed);
        to["rejected"] = json::Value(t.rejected);
        to["inFlight"] = json::Value(std::uint64_t(inFlightOf(name)));
        to["queueWaitCycles"] = latencySummary(t.queueWait);
        to["totalCycles"] = latencySummary(t.total);
        tenants[name] = json::Value(std::move(to));
    }
    o["tenants"] = json::Value(std::move(tenants));
    return json::Value(std::move(o));
}

obs::RunReport
ServeCore::metricsReport() const
{
    obs::RunReport report("menda.serve.metrics");
    report.setMeta("schema", kSchema);
    report.setMeta("policy", schedPolicyName(scheduler_.policy()));
    report.setMetric("machineRanks", scheduler_.machineRanks());
    report.setMetric("virtualCycle",
                     static_cast<double>(virtualCycle_));

    std::uint64_t completed = 0, failed = 0, cancelled = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Done)
            ++completed;
        else if (job.state == JobState::Failed)
            ++failed;
        else if (job.state == JobState::Cancelled)
            ++cancelled;
    }
    report.setMetric("jobsCompleted", static_cast<double>(completed));
    report.setMetric("jobsFailed", static_cast<double>(failed));
    report.setMetric("jobsCancelled", static_cast<double>(cancelled));
    report.setMetric("jobsRejected",
                     static_cast<double>(rejectedTotal_));

    const CacheStats &c = cache_.stats();
    report.setMetric("cacheHits", static_cast<double>(c.hits));
    report.setMetric("cacheMisses", static_cast<double>(c.misses));
    report.setMetric("cacheEvictions",
                     static_cast<double>(c.evictions));
    report.setMetric("cacheHitRatePct", c.hitRatePct());
    report.setMetric("cacheResidentBytes",
                     static_cast<double>(c.residentBytes));

    for (const auto &[name, t] : tenants_) {
        const std::string prefix = "tenant." + name + ".";
        report.setMetric(prefix + "completed",
                         static_cast<double>(t.completed));
        report.setMetric(prefix + "queueWaitP95",
                         static_cast<double>(
                             percentile(t.queueWait, 95.0)));
        report.setMetric(prefix + "totalP95",
                         static_cast<double>(percentile(t.total, 95.0)));
        report.addHistogram(prefix + "queueWait", t.queueWaitHist);
        report.addHistogram(prefix + "total", t.totalHist);
    }
    return report;
}

} // namespace menda::serve
