#include "serve/serve_core.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/log.hh"
#include "menda/run_report.hh"
#include "menda/sim_mode.hh"

namespace menda::serve
{

namespace json = obs::json;

namespace
{

const char *
kernelName(core::KernelJob::Kind kind)
{
    switch (kind) {
      case core::KernelJob::Kind::Transpose: return "transpose";
      case core::KernelJob::Kind::Spmv: return "spmv";
      case core::KernelJob::Kind::Spgemm: return "spgemm";
    }
    return "?";
}

/** Nearest-rank percentile of an unsorted sample vector. */
std::uint64_t
percentile(std::vector<std::uint64_t> samples, double pct)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    if (rank == 0)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    return samples[rank - 1];
}

json::Value
latencySummary(const std::vector<std::uint64_t> &samples)
{
    json::Object o;
    std::uint64_t sum = 0, max = 0;
    for (std::uint64_t s : samples) {
        sum += s;
        max = std::max(max, s);
    }
    o["count"] = json::Value(std::uint64_t(samples.size()));
    o["mean"] = json::Value(
        samples.empty() ? 0.0
                        : static_cast<double>(sum) / samples.size());
    o["max"] = json::Value(max);
    o["p50"] = json::Value(percentile(samples, 50.0));
    o["p95"] = json::Value(percentile(samples, 95.0));
    o["p99"] = json::Value(percentile(samples, 99.0));
    return json::Value(std::move(o));
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

ServeCore::ServeCore(const ServeConfig &config)
    : config_(config), cache_(config.cacheBudgetBytes),
      scheduler_(config.system.totalPus(), config.policy)
{
    menda_assert(config_.system.totalPus() > 0, "machine needs ranks");
    menda_assert(config_.sliceCycles > 0, "sliceCycles must be > 0");
    const unsigned ranks = config_.system.totalPus();
    rankBusy_.assign(ranks, 0);
    rankHeld_.assign(ranks, false);
    if (config_.observability) {
        ServeObserver::Options obs_options;
        obs_options.traceCapacity = config_.traceCapacity;
        obs_options.journalCapacity = config_.journalCapacity;
        observer_ = std::make_unique<ServeObserver>(
            ranks, config_.system.pu.freqMhz, obs_options);
        cache_.setEvictionHook(
            [this](const char *kind, std::uint64_t bytes) {
                observer_->cacheEvicted(kind, bytes, virtualCycle_);
            });
    }
}

ServeCore::~ServeCore() = default;

json::Value
ServeCore::handle(const json::Value &request, std::uint64_t owner)
{
    if (!request.isObject())
        return errorResponse("badRequest", "request must be an object");
    if (request.has("schema") &&
        request.at("schema").asString() != kSchema)
        return errorResponse("badRequest",
                             "unsupported schema: " +
                                 request.at("schema").asString());
    if (!request.has("type") || !request.at("type").isString())
        return errorResponse("badRequest", "missing request type");
    const std::string &type = request.at("type").asString();

    if (type == "submit")
        return handleSubmit(request, owner);
    if (type == "status")
        return handleStatus(request);
    if (type == "stats")
        return statsJson();
    if (type == "metrics")
        return handleMetrics(request);
    if (type == "stats.stream")
        return handleStatsStream(request);
    if (type == "shutdown") {
        shutdown_ = true;
        json::Object o;
        o["type"] = json::Value("shuttingDown");
        return json::Value(std::move(o));
    }
    return errorResponse("badRequest", "unknown request type: " + type);
}

json::Value
ServeCore::handleSubmit(const json::Value &request, std::uint64_t owner)
{
    // Cheap admission checks first; matrix decoding (the expensive part)
    // only happens for requests that would actually be admitted.
    std::string tenant = "default";
    if (request.has("tenant")) {
        if (!request.at("tenant").isString())
            return errorResponse("badRequest", "tenant must be a string");
        tenant = request.at("tenant").asString();
    }
    if (!request.has("kernel") || !request.at("kernel").isString())
        return errorResponse("badRequest", "missing kernel");
    const std::string &kernel = request.at("kernel").asString();

    if (queuedCount() >= config_.queueDepth) {
        ++rejectedTotal_;
        ++tenants_[tenant].rejected;
        if (observer_)
            observer_->admissionRejected(tenant, "queueFull",
                                         virtualCycle_);
        return errorResponse("queueFull",
                             "queue depth " +
                                 std::to_string(config_.queueDepth) +
                                 " reached; retry later");
    }
    if (inFlightOf(tenant) >= config_.tenantInFlight) {
        ++rejectedTotal_;
        ++tenants_[tenant].rejected;
        if (observer_)
            observer_->admissionRejected(tenant, "tenantBusy",
                                         virtualCycle_);
        return errorResponse(
            "tenantBusy", "tenant '" + tenant + "' already has " +
                              std::to_string(config_.tenantInFlight) +
                              " jobs in flight");
    }

    Job job;
    job.tenant = tenant;
    job.owner = owner;

    unsigned ranks = config_.ranksPerJob;
    if (request.has("pus")) {
        if (!request.at("pus").isNumber() ||
            request.at("pus").asNumber() < 1)
            return errorResponse("badRequest",
                                 "pus must be a positive number");
        ranks = static_cast<unsigned>(request.at("pus").asNumber());
    }
    job.ranks = std::min(ranks, scheduler_.machineRanks());
    if (job.ranks == 0)
        job.ranks = 1;

    // The per-job machine: a rank subset of the shared pool. Fidelity
    // and the ablation/sampling knobs come from the daemon's config.
    // hostThreads is inherited: sliced (detailed) execution steps
    // shards sequentially regardless, and fast tiers run their batch
    // semantics through the PR-1 thread pool, which is bit-identical
    // to sequential — so every observable byte (results, journal,
    // traces, metrics) is independent of the daemon's --threads.
    job.config = config_.system;
    job.config.channels = 1;
    job.config.dimmsPerChannel = 1;
    job.config.ranksPerDimm = job.ranks;
    job.config.progressEveryCycles = 0;
    if (request.has("simMode")) {
        if (!request.at("simMode").isString() ||
            !core::parseSimMode(request.at("simMode").asString(),
                                job.config.simMode, job.config.sampled))
            return errorResponse("badRequest",
                                 "bad simMode (want detailed | "
                                 "functional | sampled[:W,P[,WARM]])");
    }

    const std::uint64_t hitsBefore = cache_.stats().hits;
    try {
        if (kernel == "transpose") {
            job.kind = core::KernelJob::Kind::Transpose;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            job.inputNnz = a.nnz();
            job.transposePlan = cache_.transposePlan(a, job.config);
        } else if (kernel == "spmv") {
            job.kind = core::KernelJob::Kind::Spmv;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            job.x = valueVectorFromJson(request.at("x"));
            if (job.x.size() != a.cols)
                throw std::runtime_error(
                    "x has " + std::to_string(job.x.size()) +
                    " entries; matrix has " + std::to_string(a.cols) +
                    " columns");
            job.inputNnz = a.nnz();
            job.spmvPlan = cache_.spmvPlan(a, job.config);
        } else if (kernel == "spgemm") {
            job.kind = core::KernelJob::Kind::Spgemm;
            const sparse::CsrMatrix a = csrFromJson(request.at("a"));
            const sparse::CsrMatrix b = csrFromJson(request.at("b"));
            if (a.cols != b.rows)
                throw std::runtime_error(
                    "dimension mismatch: a.cols != b.rows");
            job.inputNnz = a.nnz();
            job.spgemmPlan = cache_.spgemmPlan(a, b, job.config);
        } else {
            return errorResponse("badRequest",
                                 "unknown kernel: " + kernel);
        }
    } catch (const std::exception &e) {
        return errorResponse("badRequest", e.what());
    }
    job.cacheHit = cache_.stats().hits != hitsBefore;

    job.id = nextJobId_++;
    job.submitCycle = virtualCycle_;
    const std::uint64_t id = job.id;
    const bool cacheHit = job.cacheHit;
    const unsigned jobRanks = job.ranks;
    if (observer_)
        observer_->jobSubmitted(id, job.tenant, kernelName(job.kind),
                                jobRanks, cacheHit, virtualCycle_);
    order_.push_back(job.id);
    jobs_.emplace(job.id, std::move(job));

    json::Object o;
    o["type"] = json::Value("submitted");
    o["id"] = json::Value(id);
    o["cacheHit"] = json::Value(cacheHit);
    o["ranks"] = json::Value(std::uint64_t(jobRanks));
    return json::Value(std::move(o));
}

json::Value
ServeCore::handleStatus(const json::Value &request) const
{
    if (!request.has("id") || !request.at("id").isNumber())
        return errorResponse("badRequest", "missing job id");
    return jobResponse(
        static_cast<std::uint64_t>(request.at("id").asNumber()));
}

unsigned
ServeCore::inFlightOf(const std::string &tenant) const
{
    unsigned n = 0;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.tenant == tenant &&
            (job.state == JobState::Queued ||
             job.state == JobState::Running))
            ++n;
    }
    return n;
}

std::size_t
ServeCore::queuedCount() const
{
    std::size_t n = 0;
    for (std::uint64_t id : order_)
        if (jobs_.at(id).state == JobState::Queued)
            ++n;
    return n;
}

bool
ServeCore::idle() const
{
    return order_.empty();
}

void
ServeCore::pump()
{
    std::vector<RankScheduler::Runnable> runnable;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.state == JobState::Queued ||
            job.state == JobState::Running)
            runnable.push_back({id, job.ranks});
    }
    if (runnable.empty())
        return;

    const Cycle roundStart = virtualCycle_;
    const std::vector<std::uint64_t> picked = scheduler_.pick(runnable);

    // Preemptions are an observation of the pick, not an input to it:
    // a job that ran last round, is still runnable, and was skipped
    // lost its ranks mid-kernel (fair only; fifo never preempts).
    for (std::uint64_t id : scheduler_.preempted()) {
        Job &job = jobs_.at(id);
        ++job.preemptions;
        ++preemptionsTotal_;
        job.assignedRanks.clear();
        if (observer_)
            observer_->jobPreempted(id, roundStart);
    }

    assignRanks(picked);

    for (std::uint64_t id : picked) {
        Job &job = jobs_.at(id);
        for (unsigned r : job.assignedRanks)
            rankBusy_[r] += config_.sliceCycles;
        if (observer_)
            observer_->sliceExecuted(id, job.assignedRanks, roundStart,
                                     roundStart + config_.sliceCycles);
        try {
            if (job.state == JobState::Queued) {
                job.startCycle = roundStart;
                dispatch(job);
            }
            advance(job);
            const bool finished =
                job.kernel ? (job.kernel->done() &&
                              job.fastRemaining == 0)
                           : false;
            if (finished) {
                job.doneCycle = roundStart + config_.sliceCycles;
                complete(job);
            }
        } catch (const std::exception &e) {
            job.error = e.what();
            job.doneCycle = roundStart + config_.sliceCycles;
            finishJob(job, JobState::Failed);
        }
    }
    virtualCycle_ = roundStart + config_.sliceCycles;
    rollWindowsTo(virtualCycle_);
}

void
ServeCore::assignRanks(const std::vector<std::uint64_t> &picked)
{
    if (config_.policy == SchedPolicy::Fair) {
        // Nothing persists between rounds: relabel in pick order from
        // rank 0. The scheduler guaranteed the total fits the machine.
        unsigned next = 0;
        for (std::uint64_t id : picked) {
            Job &job = jobs_.at(id);
            job.assignedRanks.clear();
            for (unsigned k = 0; k < job.ranks; ++k)
                job.assignedRanks.push_back(next++);
        }
        return;
    }
    // Fifo: a job keeps its ranks until it finishes, so assign the
    // lowest free ranks at first pick (the free set can fragment as
    // earlier jobs finish) and release them in finishJob().
    for (std::uint64_t id : picked) {
        Job &job = jobs_.at(id);
        if (!job.assignedRanks.empty())
            continue;
        for (unsigned r = 0;
             r < rankHeld_.size() &&
             job.assignedRanks.size() < job.ranks;
             ++r) {
            if (rankHeld_[r])
                continue;
            rankHeld_[r] = true;
            job.assignedRanks.push_back(r);
        }
        menda_assert(job.assignedRanks.size() == job.ranks,
                     "fifo rank bookkeeping out of sync");
    }
}

void
ServeCore::rollWindowsTo(Cycle now)
{
    if (config_.windowCycles == 0)
        return;
    while ((windowIndex_ + 1) * config_.windowCycles <= now) {
        ++windowIndex_;
        for (auto &[name, t] : tenants_) {
            (void)name;
            t.prevQueueWait = t.windowQueueWait;
            t.prevTotal = t.windowTotal;
            t.windowQueueWait.reset();
            t.windowTotal.reset();
        }
        if (observer_)
            observer_->windowRollover(windowIndex_,
                                      windowIndex_ *
                                          config_.windowCycles);
    }
}

void
ServeCore::runUntilIdle()
{
    while (!idle())
        pump();
}

void
ServeCore::dispatch(Job &job)
{
    job.state = JobState::Running;
    if (observer_)
        observer_->jobDispatched(job.id, job.submitCycle,
                                 job.startCycle);
    switch (job.kind) {
      case core::KernelJob::Kind::Transpose:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.transposePlan);
        break;
      case core::KernelJob::Kind::Spmv:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.spmvPlan, job.x);
        break;
      case core::KernelJob::Kind::Spgemm:
        job.kernel = std::make_unique<core::KernelJob>(
            job.config, job.spgemmPlan);
        break;
    }
    if (job.config.simMode != core::SimMode::Detailed) {
        // Fast tiers: the semantics run up front (host cost is O(kernel)
        // regardless), then the job occupies its ranks until the charged
        // slices cover the tier's estimated PU cycles — so it contends
        // for the machine in virtual time exactly like a detailed job.
        job.kernel->runToCompletion();
        job.fastExecuted = true;
        job.fastRemaining = job.kernel->puCycles();
    }
}

void
ServeCore::advance(Job &job)
{
    if (job.fastExecuted) {
        job.fastRemaining -= std::min(job.fastRemaining,
                                      config_.sliceCycles);
        return;
    }
    if (!job.kernel->done())
        job.kernel->step(config_.sliceCycles);
}

void
ServeCore::complete(Job &job)
{
    job.result = buildResult(job);
    TenantStats &t = tenants_[job.tenant];
    ++t.completed;
    const std::uint64_t wait = job.startCycle - job.submitCycle;
    const std::uint64_t total = job.doneCycle - job.submitCycle;
    t.queueWait.push_back(wait);
    t.total.push_back(total);
    t.queueWaitHist.record(wait);
    t.totalHist.record(total);
    t.windowQueueWait.record(wait);
    t.windowTotal.record(total);
    finishJob(job, JobState::Done);
}

void
ServeCore::finishJob(Job &job, JobState state)
{
    job.state = state;
    if (job.doneCycle == 0)
        job.doneCycle = virtualCycle_;
    if (state == JobState::Failed)
        ++tenants_[job.tenant].failed;
    tenants_[job.tenant].preemptions += job.preemptions;
    for (unsigned r : job.assignedRanks)
        rankHeld_[r] = false; // no-op under fair (nothing is held)
    job.assignedRanks.clear();
    if (observer_)
        observer_->jobFinished(job.id, jobStateName(state),
                               job.preemptions, job.doneCycle);
    job.kernel.reset(); // release the simulated components immediately
    scheduler_.finished(job.id);
    order_.erase(std::remove(order_.begin(), order_.end(), job.id),
                 order_.end());
    finished_.push_back(job.id);
}

json::Value
ServeCore::buildResult(Job &job)
{
    json::Object o;
    o["kernel"] = json::Value(kernelName(job.kind));
    o["cacheHit"] = json::Value(job.cacheHit);
    o["ranks"] = json::Value(std::uint64_t(job.ranks));
    o["queueWaitCycles"] =
        json::Value(job.startCycle - job.submitCycle);
    o["totalCycles"] = json::Value(job.doneCycle - job.submitCycle);

    // Report throughput against nnz(A), matching the direct-run
    // convention (KernelJob::nnz() counts A+B for SpGEMM).
    const std::uint64_t nnz = job.inputNnz;
    switch (job.kind) {
      case core::KernelJob::Kind::Transpose: {
        core::TransposeResult r = job.kernel->takeTranspose();
        o["csc"] = cscToJson(r.csc);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "transpose",
                                job.config, r, nnz)
                .toJson());
        break;
      }
      case core::KernelJob::Kind::Spmv: {
        core::SpmvResult r = job.kernel->takeSpmv();
        o["y"] = doubleVectorToJson(r.y);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "spmv", job.config,
                                r, nnz)
                .toJson());
        break;
      }
      case core::KernelJob::Kind::Spgemm: {
        core::SpgemmResult r = job.kernel->takeSpgemm();
        o["c"] = csrToJson(r.c);
        o["partialProducts"] = json::Value(r.partialProducts);
        o["report"] = json::parse(
            core::makeRunReport("menda.serve.job", "spgemm",
                                job.config, r, nnz)
                .toJson());
        break;
      }
    }
    return json::Value(std::move(o));
}

std::vector<std::uint64_t>
ServeCore::drainFinished()
{
    std::vector<std::uint64_t> out;
    out.swap(finished_);
    return out;
}

void
ServeCore::cancelOwner(std::uint64_t owner)
{
    if (owner == 0)
        return;
    const std::vector<std::uint64_t> live = order_;
    for (std::uint64_t id : live) {
        Job &job = jobs_.at(id);
        if (job.owner != owner)
            continue;
        job.error = "client disconnected";
        finishJob(job, JobState::Cancelled);
    }
}

json::Value
ServeCore::jobResponse(std::uint64_t id) const
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("unknownJob",
                             "no job with id " + std::to_string(id));
    const Job &job = it->second;
    json::Object o;
    o["type"] = json::Value("jobStatus");
    o["id"] = json::Value(id);
    o["state"] = json::Value(jobStateName(job.state));
    o["tenant"] = json::Value(job.tenant);
    if (job.state == JobState::Done && job.result.isObject())
        for (const auto &[key, value] : job.result.asObject())
            o[key] = value;
    if (!job.error.empty())
        o["error"] = json::Value(job.error);
    return json::Value(std::move(o));
}

json::Value
ServeCore::statsJson() const
{
    json::Object o;
    o["type"] = json::Value("stats");
    o["schema"] = json::Value(kSchema);
    o["policy"] = json::Value(schedPolicyName(scheduler_.policy()));
    o["machineRanks"] =
        json::Value(std::uint64_t(scheduler_.machineRanks()));
    o["virtualCycle"] = json::Value(virtualCycle_);
    o["sliceCycles"] = json::Value(config_.sliceCycles);

    std::uint64_t queued = 0, running = 0;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.state == JobState::Queued)
            ++queued;
        else if (job.state == JobState::Running)
            ++running;
    }
    std::uint64_t completed = 0, failed = 0, cancelled = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Done)
            ++completed;
        else if (job.state == JobState::Failed)
            ++failed;
        else if (job.state == JobState::Cancelled)
            ++cancelled;
    }
    json::Object jobs;
    jobs["queued"] = json::Value(queued);
    jobs["running"] = json::Value(running);
    jobs["completed"] = json::Value(completed);
    jobs["failed"] = json::Value(failed);
    jobs["cancelled"] = json::Value(cancelled);
    jobs["rejected"] = json::Value(rejectedTotal_);
    o["jobs"] = json::Value(std::move(jobs));

    const CacheStats &c = cache_.stats();
    json::Object cache;
    cache["hits"] = json::Value(c.hits);
    cache["misses"] = json::Value(c.misses);
    cache["evictions"] = json::Value(c.evictions);
    cache["entries"] = json::Value(c.entries);
    cache["residentBytes"] = json::Value(c.residentBytes);
    cache["budgetBytes"] = json::Value(cache_.budgetBytes());
    cache["hitRatePct"] = json::Value(c.hitRatePct());
    o["cache"] = json::Value(std::move(cache));

    o["preemptions"] = json::Value(preemptionsTotal_);

    json::Object tenants;
    for (const auto &[name, t] : tenants_) {
        json::Object to;
        to["completed"] = json::Value(t.completed);
        to["failed"] = json::Value(t.failed);
        to["rejected"] = json::Value(t.rejected);
        to["preemptions"] = json::Value(t.preemptions);
        to["inFlight"] = json::Value(std::uint64_t(inFlightOf(name)));
        to["queueWaitCycles"] = latencySummary(t.queueWait);
        to["totalCycles"] = latencySummary(t.total);
        tenants[name] = json::Value(std::move(to));
    }
    o["tenants"] = json::Value(std::move(tenants));
    return json::Value(std::move(o));
}

obs::json::Value
ServeCore::handleMetrics(const json::Value &request) const
{
    json::Object o;
    o["type"] = json::Value("metrics");
    o["schema"] = json::Value(kSchema);
    o["virtualCycle"] = json::Value(virtualCycle_);
    const bool prometheus =
        request.has("format") && request.at("format").isString() &&
        request.at("format").asString() == "prometheus";
    if (prometheus)
        o["text"] = json::Value(prometheusText());
    else
        o["families"] = obs::metricsToJson(metricFamilies());
    return json::Value(std::move(o));
}

obs::json::Value
ServeCore::handleStatsStream(const json::Value &request) const
{
    std::uint64_t from_seq = 0;
    if (request.has("afterSeq")) {
        if (!request.at("afterSeq").isNumber() ||
            request.at("afterSeq").asNumber() < 0)
            return errorResponse("badRequest",
                                 "afterSeq must be a non-negative "
                                 "number");
        from_seq = static_cast<std::uint64_t>(
            request.at("afterSeq").asNumber());
    }
    json::Object o;
    o["type"] = json::Value("journal");
    o["schema"] = json::Value(kSchema);
    if (observer_) {
        const obs::EventJournal &journal = observer_->journal();
        o["nextSeq"] = json::Value(journal.emitted());
        o["dropped"] = json::Value(journal.droppedEvents());
        o["jsonl"] = json::Value(journal.jsonlSince(from_seq));
    } else {
        o["nextSeq"] = json::Value(std::uint64_t(0));
        o["dropped"] = json::Value(std::uint64_t(0));
        o["jsonl"] = json::Value("");
    }
    return json::Value(std::move(o));
}

std::string
ServeCore::journalJsonl() const
{
    return observer_ ? observer_->journal().jsonl() : std::string();
}

std::string
ServeCore::jobTraceJson() const
{
    if (!observer_)
        return {};
    std::ostringstream os;
    observer_->writeTrace(os);
    return os.str();
}

std::string
ServeCore::prometheusText() const
{
    return obs::renderPrometheus(metricFamilies());
}

std::vector<obs::MetricFamily>
ServeCore::metricFamilies() const
{
    using obs::MetricFamily;
    std::vector<MetricFamily> families;
    const auto counter = [&](const char *name,
                             const char *help) -> MetricFamily & {
        MetricFamily family;
        family.name = name;
        family.help = help;
        family.type = MetricFamily::Type::Counter;
        families.push_back(std::move(family));
        return families.back();
    };
    const auto gauge = [&](const char *name,
                           const char *help) -> MetricFamily & {
        MetricFamily family;
        family.name = name;
        family.help = help;
        family.type = MetricFamily::Type::Gauge;
        families.push_back(std::move(family));
        return families.back();
    };

    obs::addSample(counter("menda_serve_virtual_cycles",
                           "Virtual PU-cycle clock of the daemon"),
                   static_cast<double>(virtualCycle_));

    std::uint64_t queued = 0, running = 0;
    for (std::uint64_t id : order_) {
        const Job &job = jobs_.at(id);
        if (job.state == JobState::Queued)
            ++queued;
        else if (job.state == JobState::Running)
            ++running;
    }
    std::uint64_t completed = 0, failed = 0, cancelled = 0;
    for (const auto &[id, job] : jobs_) {
        (void)id;
        if (job.state == JobState::Done)
            ++completed;
        else if (job.state == JobState::Failed)
            ++failed;
        else if (job.state == JobState::Cancelled)
            ++cancelled;
    }
    {
        MetricFamily &family =
            counter("menda_serve_jobs_total",
                    "Jobs by terminal state (rejected = never admitted)");
        obs::addSample(family, static_cast<double>(completed),
                       {{"state", "completed"}});
        obs::addSample(family, static_cast<double>(failed),
                       {{"state", "failed"}});
        obs::addSample(family, static_cast<double>(cancelled),
                       {{"state", "cancelled"}});
        obs::addSample(family, static_cast<double>(rejectedTotal_),
                       {{"state", "rejected"}});
    }
    {
        MetricFamily &family = gauge("menda_serve_queue_depth",
                                     "Live jobs by state");
        obs::addSample(family, static_cast<double>(queued),
                       {{"state", "queued"}});
        obs::addSample(family, static_cast<double>(running),
                       {{"state", "running"}});
    }
    obs::addSample(counter("menda_serve_preemptions_total",
                           "Fair-scheduler preemptions (jobs that lost "
                           "their ranks mid-kernel)"),
                   static_cast<double>(preemptionsTotal_));

    const CacheStats &c = cache_.stats();
    {
        MetricFamily &family =
            counter("menda_serve_cache_events_total",
                    "Residency-cache lookups and evictions");
        obs::addSample(family, static_cast<double>(c.hits),
                       {{"event", "hit"}});
        obs::addSample(family, static_cast<double>(c.misses),
                       {{"event", "miss"}});
        obs::addSample(family, static_cast<double>(c.evictions),
                       {{"event", "eviction"}});
    }
    obs::addSample(gauge("menda_serve_cache_hit_rate_pct",
                         "Residency-cache hit rate, percent"),
                   c.hitRatePct());
    obs::addSample(gauge("menda_serve_cache_resident_bytes",
                         "Simulated bytes held by cached plans"),
                   static_cast<double>(c.residentBytes));

    {
        MetricFamily &busy =
            counter("menda_serve_rank_busy_cycles",
                    "Virtual cycles each DRAM rank spent executing "
                    "job slices");
        MetricFamily util;
        util.name = "menda_serve_rank_utilization";
        util.help = "Busy fraction of the virtual clock per rank";
        util.type = MetricFamily::Type::Gauge;
        for (std::size_t r = 0; r < rankBusy_.size(); ++r) {
            obs::addSample(busy, static_cast<double>(rankBusy_[r]),
                           {{"rank", std::to_string(r)}});
            obs::addSample(
                util,
                virtualCycle_ ? static_cast<double>(rankBusy_[r]) /
                                    static_cast<double>(virtualCycle_)
                              : 0.0,
                {{"rank", std::to_string(r)}});
        }
        families.push_back(std::move(util));
    }

    // Per-tenant: lifetime counters plus rolling-window percentiles
    // (last completed SLO window merged with the current partial one,
    // estimated from the mergeable log-2 histograms).
    MetricFamily tenant_jobs;
    tenant_jobs.name = "menda_serve_tenant_jobs_total";
    tenant_jobs.help = "Per-tenant jobs by outcome";
    tenant_jobs.type = MetricFamily::Type::Counter;
    MetricFamily tenant_preempt;
    tenant_preempt.name = "menda_serve_tenant_preemptions_total";
    tenant_preempt.help = "Preemptions suffered by finished jobs";
    tenant_preempt.type = MetricFamily::Type::Counter;
    MetricFamily tenant_inflight;
    tenant_inflight.name = "menda_serve_tenant_inflight";
    tenant_inflight.help = "Queued + running jobs per tenant";
    tenant_inflight.type = MetricFamily::Type::Gauge;
    MetricFamily queue_wait;
    queue_wait.name = "menda_serve_queue_wait_cycles";
    queue_wait.help = "Rolling-window queue-wait quantiles, virtual "
                      "cycles";
    queue_wait.type = MetricFamily::Type::Gauge;
    MetricFamily completion;
    completion.name = "menda_serve_completion_cycles";
    completion.help = "Rolling-window submit-to-completion quantiles, "
                      "virtual cycles";
    completion.type = MetricFamily::Type::Gauge;
    MetricFamily window_jobs;
    window_jobs.name = "menda_serve_window_completed";
    window_jobs.help = "Completions inside the rolling window";
    window_jobs.type = MetricFamily::Type::Gauge;

    static const char *const kQuantiles[] = {"0.5", "0.95", "0.99"};
    static const double kQ[] = {0.5, 0.95, 0.99};
    for (const auto &[name, t] : tenants_) {
        obs::addSample(tenant_jobs, static_cast<double>(t.completed),
                       {{"state", "completed"}, {"tenant", name}});
        obs::addSample(tenant_jobs, static_cast<double>(t.failed),
                       {{"state", "failed"}, {"tenant", name}});
        obs::addSample(tenant_jobs, static_cast<double>(t.rejected),
                       {{"state", "rejected"}, {"tenant", name}});
        obs::addSample(tenant_preempt,
                       static_cast<double>(t.preemptions),
                       {{"tenant", name}});
        obs::addSample(tenant_inflight,
                       static_cast<double>(inFlightOf(name)),
                       {{"tenant", name}});

        Histogram rolling_wait = t.prevQueueWait;
        rolling_wait.merge(t.windowQueueWait);
        Histogram rolling_total = t.prevTotal;
        rolling_total.merge(t.windowTotal);
        obs::addSample(window_jobs,
                       static_cast<double>(rolling_total.count()),
                       {{"tenant", name}});
        if (rolling_total.count() == 0)
            continue; // no quantiles without samples in the window
        for (unsigned q = 0; q < 3; ++q) {
            obs::addSample(queue_wait, rolling_wait.quantile(kQ[q]),
                           {{"quantile", kQuantiles[q]},
                            {"tenant", name}});
            obs::addSample(completion, rolling_total.quantile(kQ[q]),
                           {{"quantile", kQuantiles[q]},
                            {"tenant", name}});
        }
    }
    families.push_back(std::move(tenant_jobs));
    families.push_back(std::move(tenant_preempt));
    families.push_back(std::move(tenant_inflight));
    families.push_back(std::move(window_jobs));
    families.push_back(std::move(queue_wait));
    families.push_back(std::move(completion));

    if (observer_) {
        const obs::EventJournal &journal = observer_->journal();
        MetricFamily &family =
            counter("menda_serve_journal_events_total",
                    "Journal events emitted / overwritten");
        obs::addSample(family,
                       static_cast<double>(journal.emitted()),
                       {{"event", "emitted"}});
        obs::addSample(family,
                       static_cast<double>(journal.droppedEvents()),
                       {{"event", "dropped"}});
    }
    return families;
}

obs::RunReport
ServeCore::metricsReport() const
{
    obs::RunReport report("menda.serve.metrics");
    report.setMeta("schema", kSchema);
    report.setMeta("policy", schedPolicyName(scheduler_.policy()));
    report.setMetric("machineRanks", scheduler_.machineRanks());
    report.setMetric("virtualCycle",
                     static_cast<double>(virtualCycle_));

    std::uint64_t completed = 0, failed = 0, cancelled = 0;
    for (const auto &[id, job] : jobs_) {
        if (job.state == JobState::Done)
            ++completed;
        else if (job.state == JobState::Failed)
            ++failed;
        else if (job.state == JobState::Cancelled)
            ++cancelled;
    }
    report.setMetric("jobsCompleted", static_cast<double>(completed));
    report.setMetric("jobsFailed", static_cast<double>(failed));
    report.setMetric("jobsCancelled", static_cast<double>(cancelled));
    report.setMetric("jobsRejected",
                     static_cast<double>(rejectedTotal_));
    report.setMetric("preemptions",
                     static_cast<double>(preemptionsTotal_));
    if (virtualCycle_ > 0) {
        double busy = 0.0;
        for (Cycle cycles : rankBusy_)
            busy += static_cast<double>(cycles);
        report.setMetric("rankUtilization",
                         busy / (static_cast<double>(virtualCycle_) *
                                 static_cast<double>(rankBusy_.size())));
    }

    const CacheStats &c = cache_.stats();
    report.setMetric("cacheHits", static_cast<double>(c.hits));
    report.setMetric("cacheMisses", static_cast<double>(c.misses));
    report.setMetric("cacheEvictions",
                     static_cast<double>(c.evictions));
    report.setMetric("cacheHitRatePct", c.hitRatePct());
    report.setMetric("cacheResidentBytes",
                     static_cast<double>(c.residentBytes));

    for (const auto &[name, t] : tenants_) {
        const std::string prefix = "tenant." + name + ".";
        report.setMetric(prefix + "completed",
                         static_cast<double>(t.completed));
        report.setMetric(prefix + "queueWaitP95",
                         static_cast<double>(
                             percentile(t.queueWait, 95.0)));
        report.setMetric(prefix + "queueWaitP99",
                         static_cast<double>(
                             percentile(t.queueWait, 99.0)));
        report.setMetric(prefix + "totalP95",
                         static_cast<double>(percentile(t.total, 95.0)));
        report.setMetric(prefix + "totalP99",
                         static_cast<double>(percentile(t.total, 99.0)));
        report.setMetric(prefix + "preemptions",
                         static_cast<double>(t.preemptions));
        report.addHistogram(prefix + "queueWait", t.queueWaitHist);
        report.addHistogram(prefix + "total", t.totalHist);
    }
    return report;
}

} // namespace menda::serve
