#include "serve/residency_cache.hh"

#include <cstring>

namespace menda::serve
{

namespace
{

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

template <typename T>
std::uint64_t
fnv1aVec(std::uint64_t h, const std::vector<T> &v)
{
    return fnv1a(h, v.data(), v.size() * sizeof(T));
}

} // namespace

std::uint64_t
hashCsr(const sparse::CsrMatrix &m)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const std::uint64_t dims[2] = {m.rows, m.cols};
    h = fnv1a(h, dims, sizeof(dims));
    h = fnv1aVec(h, m.ptr);
    h = fnv1aVec(h, m.idx);
    h = fnv1aVec(h, m.val);
    return h;
}

template <typename Plan, typename Build>
std::shared_ptr<const Plan>
ResidencyCache::fetch(const Key &key, Build &&build)
{
    ++tick_;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++stats_.hits;
        it->second.lastUse = tick_;
        return std::static_pointer_cast<const Plan>(it->second.plan);
    }
    ++stats_.misses;
    std::shared_ptr<const Plan> plan = build();
    Entry entry;
    entry.plan = plan;
    entry.bytes = plan->residentBytes();
    entry.lastUse = tick_;
    stats_.residentBytes += entry.bytes;
    entries_.emplace(key, std::move(entry));
    stats_.entries = entries_.size();
    evictToBudget();
    return plan;
}

void
ResidencyCache::evictToBudget()
{
    // LRU: drop the least-recently-used entry until within budget. An
    // entry larger than the whole budget is dropped too — the caller's
    // shared_ptr keeps the in-flight plan alive; we just don't retain.
    static const char *const kind_names[] = {"transpose", "spmv",
                                             "spgemm"};
    while (stats_.residentBytes > budgetBytes_ && !entries_.empty()) {
        auto lru = entries_.begin();
        for (auto it = std::next(entries_.begin()); it != entries_.end();
             ++it)
            if (it->second.lastUse < lru->second.lastUse)
                lru = it;
        stats_.residentBytes -= lru->second.bytes;
        ++stats_.evictions;
        if (evictionHook_)
            evictionHook_(kind_names[lru->first.kind],
                          lru->second.bytes);
        entries_.erase(lru);
    }
    stats_.entries = entries_.size();
}

std::shared_ptr<const core::TransposePlan>
ResidencyCache::transposePlan(const sparse::CsrMatrix &a,
                              const core::SystemConfig &config)
{
    Key key{0, hashCsr(a), 0, config.totalPus(), config.rowPartitioning};
    return fetch<core::TransposePlan>(
        key, [&] { return core::planTranspose(a, config); });
}

std::shared_ptr<const core::SpmvPlan>
ResidencyCache::spmvPlan(const sparse::CsrMatrix &a,
                         const core::SystemConfig &config)
{
    Key key{1, hashCsr(a), 0, config.totalPus(), config.rowPartitioning};
    return fetch<core::SpmvPlan>(
        key, [&] { return core::planSpmv(a, config); });
}

std::shared_ptr<const core::SpgemmPlan>
ResidencyCache::spgemmPlan(const sparse::CsrMatrix &a,
                           const sparse::CsrMatrix &b,
                           const core::SystemConfig &config)
{
    Key key{2, hashCsr(a), hashCsr(b), config.totalPus(),
            config.rowPartitioning};
    return fetch<core::SpgemmPlan>(
        key, [&] { return core::planSpgemm(a, b, config); });
}

} // namespace menda::serve
