#include "baselines/spgemm_cpu.hh"

#include <algorithm>
#include <chrono>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/log.hh"

namespace menda::baselines
{

namespace
{

/** Heap entry: the next element of one scaled-B-row stream. */
struct HeapEntry
{
    Index col;           ///< column of the next B element
    std::uint64_t ord;   ///< stream ordinal (A non-zero index)
    std::uint64_t pos;   ///< current offset into B's arrays
    std::uint64_t end;   ///< one past the stream's last element
    Value scale;         ///< A(i, k)
};

/** Min-heap on (col, ordinal): the stable-merge pop order of the PU. */
struct HeapOrder
{
    bool
    operator()(const HeapEntry &x, const HeapEntry &y) const
    {
        if (x.col != y.col)
            return x.col > y.col;
        return x.ord > y.ord;
    }
};

} // namespace

sparse::CsrMatrix
spgemmHeapMerge(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
                CpuRunResult *timing)
{
    menda_assert(a.cols == b.rows, "spgemmHeapMerge: dimension mismatch");
    const auto start = std::chrono::steady_clock::now();

    sparse::CsrMatrix c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> heap;
    for (Index r = 0; r < a.rows; ++r) {
        // One stream per non-zero of row r, entering in non-zero order:
        // that ordinal is the tie-break, so equal columns pop in the
        // same order the PU's stable tree delivers them.
        for (std::uint64_t e = a.ptr[r]; e < a.ptr[r + 1]; ++e) {
            const Index k = a.idx[e];
            if (b.ptr[k] == b.ptr[k + 1])
                continue;
            heap.push(HeapEntry{b.idx[b.ptr[k]], e, b.ptr[k],
                                b.ptr[k + 1], a.val[e]});
        }
        while (!heap.empty()) {
            HeapEntry top = heap.top();
            heap.pop();
            // Same product and accumulation arithmetic as the PU:
            // float multiply at fetch, float left-to-right adds.
            const Value prod = top.scale * b.val[top.pos];
            if (c.idx.size() > c.ptr[r] && c.idx.back() == top.col) {
                c.val.back() += prod;
            } else {
                c.idx.push_back(top.col);
                c.val.push_back(prod);
            }
            if (++top.pos < top.end) {
                top.col = b.idx[top.pos];
                heap.push(top);
            }
        }
        c.ptr[r + 1] = static_cast<std::uint32_t>(c.idx.size());
    }

    const auto stop = std::chrono::steady_clock::now();
    if (timing) {
        timing->seconds =
            std::chrono::duration<double>(stop - start).count();
        timing->threads = 1;
    }
    return c;
}

sparse::CsrMatrix
spgemmHashAccumulate(const sparse::CsrMatrix &a, const sparse::CsrMatrix &b,
                     CpuRunResult *timing)
{
    menda_assert(a.cols == b.rows,
                 "spgemmHashAccumulate: dimension mismatch");
    const auto start = std::chrono::steady_clock::now();

    sparse::CsrMatrix c;
    c.rows = a.rows;
    c.cols = b.cols;
    c.ptr.assign(static_cast<std::size_t>(a.rows) + 1, 0);

    std::unordered_map<Index, double> acc;
    std::vector<std::pair<Index, double>> sorted;
    for (Index r = 0; r < a.rows; ++r) {
        acc.clear();
        for (std::uint64_t e = a.ptr[r]; e < a.ptr[r + 1]; ++e) {
            const Index k = a.idx[e];
            const double scale = a.val[e];
            for (std::uint64_t p = b.ptr[k]; p < b.ptr[k + 1]; ++p)
                acc[b.idx[p]] += scale * static_cast<double>(b.val[p]);
        }
        sorted.assign(acc.begin(), acc.end());
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        for (const auto &[col, val] : sorted) {
            c.idx.push_back(col);
            c.val.push_back(static_cast<Value>(val));
        }
        c.ptr[r + 1] = static_cast<std::uint32_t>(c.idx.size());
    }

    const auto stop = std::chrono::steady_clock::now();
    if (timing) {
        timing->seconds =
            std::chrono::duration<double>(stop - start).count();
        timing->threads = 1;
    }
    return c;
}

} // namespace menda::baselines
