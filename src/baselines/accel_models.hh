/**
 * @file
 * Published-number models of prior accelerators the paper compares
 * against (DESIGN.md §3):
 *
 *  - OuterSPACE (HPCA'18) and SpArch (HPCA'20) SpMM execution times for
 *    Fig. 2(b): both are outer-product engines whose runtime is governed
 *    by the partial-product (multiply) and merge traffic; we model time
 *    as work / reported-effective-throughput.
 *  - Sadi et al. (MICRO'19), the HBM-based multi-way-merge SpMV
 *    accelerator of Fig. 16: the paper compares iso-bandwidth throughput
 *    (0.049 GTEPS per GB/s) and energy efficiency (GTEPS/W).
 */

#ifndef MENDA_BASELINES_ACCEL_MODELS_HH
#define MENDA_BASELINES_ACCEL_MODELS_HH

#include "sparse/format.hh"

namespace menda::baselines
{

/** Partial products of A x A — the work unit of outer-product SpMM. */
std::uint64_t spmmPartialProducts(const sparse::CsrMatrix &a);

struct SpmmModelConfig
{
    // Effective partial-product throughput calibrated to the reported
    // results: OuterSPACE averages 2.9 GFLOPS (~1.45 G products/s);
    // SpArch reports ~4x additional merge efficiency plus ~2.8x faster
    // multiply, about an order of magnitude over OuterSPACE.
    double outerSpaceProductsPerSec = 1.45e9;
    double spArchProductsPerSec = 14.5e9;
};

/** Modelled SpMM (A x A) execution times for Fig. 2(b). */
double outerSpaceSpmmSeconds(const sparse::CsrMatrix &a,
                             const SpmmModelConfig &config = {});
double spArchSpmmSeconds(const sparse::CsrMatrix &a,
                         const SpmmModelConfig &config = {});

struct SadiModelConfig
{
    /**
     * Iso-bandwidth throughput reported in Sec. 6.8: 0.049 GTEPS per
     * GB/s of memory bandwidth.
     */
    double gtepsPerGBs = 0.049;

    /**
     * Aggregate bandwidth of the monolithic design: four HBM stacks
     * (Sadi et al. saturate ~512 GB/s).
     */
    double bandwidthGBs = 512.0;

    /**
     * Accelerator-logic power of the four-stack design (multi-die
     * 16 nm; excludes the DRAM devices, matching the logic-power basis
     * on which Fig. 16 compares the designs). 24 W is the documented
     * assumption; under it our simulated MeNDA lands near the published
     * 3.8x average gain. Scaled designs keep GTEPS/W fixed, so the
     * *relative* Fig. 16 trend is insensitive to this choice.
     */
    double watts = 24.0;

    double gteps() const { return gtepsPerGBs * bandwidthGBs; }
    double gtepsPerWatt() const { return gteps() / watts; }
};

} // namespace menda::baselines

#endif // MENDA_BASELINES_ACCEL_MODELS_HH
