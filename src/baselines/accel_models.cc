#include "baselines/accel_models.hh"

namespace menda::baselines
{

std::uint64_t
spmmPartialProducts(const sparse::CsrMatrix &a)
{
    // Outer-product A x A: column j of A multiplies row j of A, giving
    // nnz_col(j) * nnz_row(j) partial products.
    std::vector<std::uint32_t> col_count(a.cols, 0);
    for (Index c : a.idx)
        ++col_count[c];
    std::uint64_t products = 0;
    const Index common = a.rows < a.cols ? a.rows : a.cols;
    for (Index j = 0; j < common; ++j) {
        const std::uint64_t row_len = a.ptr[j + 1] - a.ptr[j];
        products += static_cast<std::uint64_t>(col_count[j]) * row_len;
    }
    return products;
}

double
outerSpaceSpmmSeconds(const sparse::CsrMatrix &a,
                      const SpmmModelConfig &config)
{
    return static_cast<double>(spmmPartialProducts(a)) /
           config.outerSpaceProductsPerSec;
}

double
spArchSpmmSeconds(const sparse::CsrMatrix &a, const SpmmModelConfig &config)
{
    return static_cast<double>(spmmPartialProducts(a)) /
           config.spArchProductsPerSec;
}

} // namespace menda::baselines
