/**
 * @file
 * CPU SpGEMM baselines for the merge-dataflow comparison (DESIGN.md
 * Sec. 9).
 *
 * Two shapes, mirroring the accelerator-vs-CPU split of the SpGEMM
 * literature:
 *
 *  - spgemmHeapMerge: per output row, a k-way heap merge of the scaled
 *    B rows selected by that row's A non-zeros (the row-merging
 *    formulation of Du et al.). Streams enter the heap in A non-zero
 *    order and ties break on the stream ordinal, so the element order
 *    — and therefore the left-to-right float accumulation order of
 *    duplicate (row, col) keys — is IDENTICAL to the PU's stable merge
 *    tree. This is the value-exact oracle the PU is tested against.
 *
 *  - spgemmHashAccumulate: per output row, hash-map accumulation of the
 *    partial products in double precision, then a column sort (the
 *    cuSPARSE/Gustavson-style shape). Accumulation order differs, so
 *    comparisons against it need a tolerance; it doubles as an
 *    independent numerical cross-check of the merge results.
 */

#ifndef MENDA_BASELINES_SPGEMM_CPU_HH
#define MENDA_BASELINES_SPGEMM_CPU_HH

#include "sparse/format.hh"
#include "baselines/scan_trans.hh" // CpuRunResult

namespace menda::baselines
{

/**
 * C = A x B by per-row k-way heap merge of scaled B rows. Bitwise
 * reference for the MeNDA SpGEMM dataflow.
 */
sparse::CsrMatrix spgemmHeapMerge(const sparse::CsrMatrix &a,
                                  const sparse::CsrMatrix &b,
                                  CpuRunResult *timing = nullptr);

/**
 * C = A x B by per-row hash accumulation (double-precision adds) and
 * column sort. Not bitwise comparable to the merge formulations.
 */
sparse::CsrMatrix spgemmHashAccumulate(const sparse::CsrMatrix &a,
                                       const sparse::CsrMatrix &b,
                                       CpuRunResult *timing = nullptr);

} // namespace menda::baselines

#endif // MENDA_BASELINES_SPGEMM_CPU_HH
