/**
 * @file
 * Analytical model of cusparseCsr2cscEx2 on an NVIDIA V100 (Tab. 2 GPU
 * baseline). See DESIGN.md §3: we cannot run CUDA here, so the GPU
 * baseline is a bandwidth/traffic model of cuSPARSE's conversion, which
 * is radix-sort based and memory-bound on HBM2:
 *
 *   - sort phase: r radix passes over (column-key, position) pairs, each
 *     pass streaming the pair set in and out plus a histogram pass;
 *   - gather phase: permuting the row indices and values through the
 *     sorted positions (one irregular gather per non-zero);
 *   - fixed kernel-launch/setup overhead.
 *
 * The efficiency factors below encode measured-on-GPU behaviour the
 * paper reports: throughput improves with density (less pointer
 * overhead per NZ) and degrades on skewed distributions (gather
 * divergence) — cf. the bcsstk32 vs sme3Dc discussion in Sec. 6.1.
 */

#ifndef MENDA_BASELINES_GPU_MODEL_HH
#define MENDA_BASELINES_GPU_MODEL_HH

#include "sparse/format.hh"

namespace menda::baselines
{

struct GpuModelConfig
{
    // Efficiency factors calibrated so the model lands near published
    // cusparseCsr2cscEx2 measurements (several hundred MNNZ/s on a
    // V100; the conversion runs multiple kernels plus buffer setup and
    // is far from raw HBM streaming speed). We deliberately keep the
    // model on the *fast* side of the measurements the paper implies —
    // Fig. 10's 7.7x average would correspond to an even slower GPU
    // baseline.
    double hbmBandwidth = 900e9;  ///< V100 HBM2 (Tab. 2)
    double streamEfficiency = 0.20; ///< achievable fraction, streaming
    double gatherEfficiency = 0.055; ///< achievable fraction, irregular
    unsigned radixBitsPerPass = 8;  ///< CUB onesweep-style passes
    double kernelOverhead = 50e-6;  ///< launches + plan/buffer setup
    double skewPenaltyWeight = 0.35; ///< divergence cost on skewed cols
};

struct GpuModelResult
{
    double seconds = 0.0;
    double sortSeconds = 0.0;
    double gatherSeconds = 0.0;
    std::uint64_t bytesMoved = 0;
};

/** Model the csr2csc conversion time for @p a. */
GpuModelResult cusparseCsr2cscModel(const sparse::CsrMatrix &a,
                                    const GpuModelConfig &config = {});

} // namespace menda::baselines

#endif // MENDA_BASELINES_GPU_MODEL_HH
