#include "baselines/gpu_model.hh"

#include <algorithm>
#include <cmath>

namespace menda::baselines
{

GpuModelResult
cusparseCsr2cscModel(const sparse::CsrMatrix &a,
                     const GpuModelConfig &config)
{
    GpuModelResult result;
    const double nnz = static_cast<double>(a.nnz());
    if (a.nnz() == 0) {
        result.seconds = config.kernelOverhead;
        return result;
    }

    // Radix passes needed to order the column keys.
    unsigned key_bits = 1;
    while ((1ull << key_bits) < a.cols)
        ++key_bits;
    const unsigned passes =
        (key_bits + config.radixBitsPerPass - 1) / config.radixBitsPerPass;

    // Sort phase: (key, position) pairs are 8 B; each pass reads and
    // writes them once plus a histogram read of the keys.
    const double sort_bytes = passes * nnz * (8.0 + 8.0 + 4.0);
    result.sortSeconds =
        sort_bytes / (config.hbmBandwidth * config.streamEfficiency);

    // Column-skew divergence penalty: warps gathering into few dense
    // columns serialize. Quantified by the rms/mean ratio of column
    // occupancy.
    std::vector<std::uint32_t> col_count(a.cols, 0);
    for (Index c : a.idx)
        ++col_count[c];
    double sum_sq = 0.0;
    for (std::uint32_t count : col_count)
        sum_sq += double(count) * count;
    const double mean = nnz / a.cols;
    const double rms = std::sqrt(sum_sq / a.cols);
    const double skew = mean > 0.0 ? rms / mean : 1.0;
    const double divergence =
        1.0 + config.skewPenaltyWeight * std::log2(std::max(1.0, skew));

    // Gather phase: permute 8 B (row, value) per NZ through sorted
    // positions (random read, streaming write), plus the pointer build.
    const double gather_bytes = nnz * (4.0 + 8.0 + 8.0) +
                                4.0 * (double(a.cols) + 1.0);
    result.gatherSeconds =
        gather_bytes * divergence /
        (config.hbmBandwidth * config.gatherEfficiency);

    result.bytesMoved =
        static_cast<std::uint64_t>(sort_bytes + gather_bytes);
    result.seconds = config.kernelOverhead + result.sortSeconds +
                     result.gatherSeconds;
    return result;
}

} // namespace menda::baselines
