#include "baselines/scan_trans.hh"

#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace menda::baselines
{

namespace
{

/** Sequential-access trace folding: record one event per 64 B block. */
struct SeqCursor
{
    Addr last = ~Addr(0);

    void
    touch(trace::TraceRecorder *rec, unsigned t, const void *ptr,
          bool write)
    {
        if (!rec)
            return;
        const Addr block = blockAlign(reinterpret_cast<Addr>(ptr));
        if (block != last) {
            rec->access(t, ptr, write);
            last = block;
        }
    }
};

} // namespace

sparse::CscMatrix
scanTrans(const sparse::CsrMatrix &a, unsigned threads,
          trace::TraceRecorder *recorder, CpuRunResult *timing)
{
    menda_assert(threads > 0, "scanTrans needs at least one thread");
    const std::uint64_t nnz = a.nnz();

    sparse::CscMatrix out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
    out.idx.resize(nnz);
    out.val.resize(nnz);

    // Expand row indices once (CSR gives columns; the scatter needs the
    // source row of each non-zero). Wang et al. derive it on the fly
    // from the row pointer; a per-chunk scan does the same work.
    // Per-thread column histograms.
    std::vector<std::vector<std::uint32_t>> counts(threads);
    std::vector<std::vector<std::uint32_t>> offsets(threads);

    std::barrier sync(static_cast<std::ptrdiff_t>(threads));

    auto worker = [&](unsigned t) {
        const std::uint64_t lo = nnz * t / threads;
        const std::uint64_t hi = nnz * (t + 1) / threads;

        // --- phase 1: histogram ---
        counts[t].assign(static_cast<std::size_t>(a.cols) + 1, 0);
        SeqCursor idx_seq;
        for (std::uint64_t k = lo; k < hi; ++k) {
            idx_seq.touch(recorder, t, &a.idx[k], false);
            const Index c = a.idx[k];
            if (recorder) {
                recorder->access(t, &counts[t][c], false);
                recorder->access(t, &counts[t][c], true);
            }
            ++counts[t][c];
        }
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // --- phase 2: 2D prefix sum over a column stripe ---
        const Index col_lo = static_cast<Index>(
            std::uint64_t(a.cols) * t / threads);
        const Index col_hi = static_cast<Index>(
            std::uint64_t(a.cols) * (t + 1) / threads);
        SeqCursor cnt_seq, ptr_seq;
        for (Index c = col_lo; c < col_hi; ++c) {
            std::uint32_t total = 0;
            for (unsigned u = 0; u < threads; ++u) {
                cnt_seq.touch(recorder, t, &counts[u][c], false);
                total += counts[u][c];
            }
            ptr_seq.touch(recorder, t, &out.ptr[c + 1], true);
            out.ptr[c + 1] = total; // per-column totals, pre-scan
        }
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // Global exclusive scan of the column totals (done by thread 0,
        // as in the reference implementation).
        if (t == 0) {
            // Totals were staged at ptr[c+1], so an inclusive scan makes
            // ptr[c] the offset of column c's first non-zero.
            SeqCursor scan_seq;
            std::uint32_t running = 0;
            for (Index c = 0; c <= a.cols; ++c) {
                scan_seq.touch(recorder, 0, &out.ptr[c], true);
                running += out.ptr[c];
                out.ptr[c] = running;
            }
        }
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // Per-thread scatter offsets for this thread's column stripe.
        offsets[t].assign(static_cast<std::size_t>(a.cols), 0);
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();
        for (Index c = col_lo; c < col_hi; ++c) {
            std::uint32_t base = out.ptr[c];
            for (unsigned u = 0; u < threads; ++u) {
                if (recorder) {
                    recorder->access(t, &offsets[u][c], true);
                    recorder->access(t, &counts[u][c], false);
                }
                offsets[u][c] = base;
                base += counts[u][c];
            }
        }
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // --- phase 3: scatter ---
        if (lo >= hi)
            return; // no non-zeros assigned to this thread
        // Locate the row of the first non-zero in this chunk.
        Index row = 0;
        while (a.ptr[row + 1] <= lo)
            ++row;
        SeqCursor idx2_seq, val_seq, rp_seq;
        for (std::uint64_t k = lo; k < hi; ++k) {
            while (a.ptr[row + 1] <= k) {
                ++row;
                rp_seq.touch(recorder, t, &a.ptr[row + 1], false);
            }
            idx2_seq.touch(recorder, t, &a.idx[k], false);
            val_seq.touch(recorder, t, &a.val[k], false);
            const Index c = a.idx[k];
            if (recorder) {
                recorder->access(t, &offsets[t][c], false);
                recorder->access(t, &offsets[t][c], true);
            }
            const std::uint32_t dst = offsets[t][c]++;
            if (recorder) {
                recorder->access(t, &out.idx[dst], true);
                recorder->access(t, &out.val[dst], true);
            }
            out.idx[dst] = row;
            out.val[dst] = a.val[k];
        }
    };

    const auto start = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &th : pool)
            th.join();
    }
    const auto stop = std::chrono::steady_clock::now();
    if (timing) {
        timing->seconds =
            std::chrono::duration<double>(stop - start).count();
        timing->threads = threads;
    }
    return out;
}

} // namespace menda::baselines
