/**
 * @file
 * mergeTrans — the merge-sort based parallel sparse matrix transposition
 * of Wang et al., ICS'16. This is the CPU baseline MeNDA's algorithm and
 * characterization (Sec. 2.2) build on.
 *
 * Each thread takes an NNZ-balanced slice of rows, whose non-zeros are
 * individually column-sorted streams, and merges them pairwise into one
 * sorted (col, row) run; the per-thread runs are then merged across
 * threads in log2(T) rounds with half of the remaining threads idle in
 * every round — the serialization that makes mergeTrans scale poorly
 * beyond ~16 threads (Fig. 3(b)). Every merge round streams the full
 * intermediate triple set out to memory and back, which is the
 * "back-and-forth intermediate data" traffic MeNDA eliminates by merging
 * l ways at once in hardware.
 */

#ifndef MENDA_BASELINES_MERGE_TRANS_HH
#define MENDA_BASELINES_MERGE_TRANS_HH

#include "baselines/scan_trans.hh"
#include "sparse/format.hh"
#include "trace/recorder.hh"

namespace menda::baselines
{

/** Extra observability for the characterization figures. */
struct MergeTransStats
{
    std::uint64_t mergeRounds = 0;       ///< total pairwise rounds
    std::uint64_t intermediateBytes = 0; ///< triple traffic, all rounds
};

sparse::CscMatrix mergeTrans(const sparse::CsrMatrix &a, unsigned threads,
                             trace::TraceRecorder *recorder = nullptr,
                             CpuRunResult *timing = nullptr,
                             MergeTransStats *stats = nullptr);

} // namespace menda::baselines

#endif // MENDA_BASELINES_MERGE_TRANS_HH
