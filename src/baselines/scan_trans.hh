/**
 * @file
 * scanTrans — the count-sort ("scan") based parallel sparse matrix
 * transposition of Wang et al., ICS'16, one of the two CPU baselines of
 * Fig. 10.
 *
 * Three phases separated by barriers:
 *   1. each thread histograms the column indices of its NNZ chunk into a
 *      private count array;
 *   2. a two-dimensional prefix sum (across threads, then across
 *      columns) turns the histograms into per-thread scatter offsets;
 *   3. each thread re-reads its chunk and scatters every non-zero to its
 *      final CSC position.
 *
 * The scatter in phase 3 is the random-access pattern that makes
 * scanTrans memory-latency bound on large matrices.
 */

#ifndef MENDA_BASELINES_SCAN_TRANS_HH
#define MENDA_BASELINES_SCAN_TRANS_HH

#include "sparse/format.hh"
#include "trace/recorder.hh"

namespace menda::baselines
{

/** Timing/trace knobs for a baseline run. */
struct CpuRunResult
{
    double seconds = 0.0;      ///< native wall-clock time
    unsigned threads = 0;
};

/**
 * Transpose @p a with @p threads worker threads.
 * @param recorder  optional: capture per-thread memory traces (slower;
 *                  used for the Sec. 2.2 characterization)
 * @param timing    optional: native wall-clock seconds
 */
sparse::CscMatrix scanTrans(const sparse::CsrMatrix &a, unsigned threads,
                            trace::TraceRecorder *recorder = nullptr,
                            CpuRunResult *timing = nullptr);

} // namespace menda::baselines

#endif // MENDA_BASELINES_SCAN_TRANS_HH
