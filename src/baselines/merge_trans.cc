#include "baselines/merge_trans.hh"

#include <barrier>
#include <chrono>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "sparse/partition.hh"

namespace menda::baselines
{

namespace
{

/**
 * Merge width. Wang et al.'s mergeTrans uses SIMD to accelerate the
 * *compute* of pairwise merging; data-wise every round still streams
 * the full triple set out and back, so the pass count is log_2 of the
 * run count. This log_2 re-streaming is exactly the intermediate
 * traffic the paper reports MeNDA reducing by an order of magnitude
 * (11.2x on wiki-Talk, Sec. 6.1) with its single 1024-way pass.
 */
constexpr std::size_t mergeWays = 2;

/** Sequential-access trace folding (one event per 64 B block). */
struct SeqCursor
{
    Addr last = ~Addr(0);

    void
    touch(trace::TraceRecorder *rec, unsigned t, const void *ptr,
          bool write)
    {
        if (!rec)
            return;
        const Addr block = blockAlign(reinterpret_cast<Addr>(ptr));
        if (block != last) {
            rec->access(t, ptr, write);
            last = block;
        }
    }
};

/** A sorted run of (col, row, val) triples in structure-of-arrays form. */
struct Triples
{
    std::vector<Index> col, row;
    std::vector<Value> val;

    std::uint64_t size() const { return col.size(); }

    void
    resize(std::uint64_t n)
    {
        col.resize(n);
        row.resize(n);
        val.resize(n);
    }
};

/** One input of a k-way merge: a cursor over a slice of a run. */
struct MergeInput
{
    const Triples *src = nullptr;
    std::uint64_t pos = 0;
    std::uint64_t end = 0;
    SeqCursor keyCursor, payloadCursor;

    bool exhausted() const { return pos >= end; }
};

/**
 * K-way merge of @p inputs into @p dst starting at @p dst_pos, ordered
 * by (col, row). Traffic is recorded with per-input folding.
 */
void
mergeKWay(std::vector<MergeInput> &inputs, Triples &dst,
          std::uint64_t dst_pos, trace::TraceRecorder *rec, unsigned t)
{
    SeqCursor write_cursor;
    while (true) {
        MergeInput *best = nullptr;
        for (MergeInput &input : inputs) {
            if (input.exhausted())
                continue;
            input.keyCursor.touch(rec, t, &input.src->col[input.pos],
                                  false);
            if (!best ||
                input.src->col[input.pos] < best->src->col[best->pos] ||
                (input.src->col[input.pos] ==
                     best->src->col[best->pos] &&
                 input.src->row[input.pos] < best->src->row[best->pos]))
                best = &input;
        }
        if (!best)
            return;
        dst.col[dst_pos] = best->src->col[best->pos];
        dst.row[dst_pos] = best->src->row[best->pos];
        dst.val[dst_pos] = best->src->val[best->pos];
        best->payloadCursor.touch(rec, t, &best->src->val[best->pos],
                                  false);
        write_cursor.touch(rec, t, &dst.col[dst_pos], true);
        ++best->pos;
        ++dst_pos;
    }
}

} // namespace

sparse::CscMatrix
mergeTrans(const sparse::CsrMatrix &a, unsigned threads,
           trace::TraceRecorder *recorder, CpuRunResult *timing,
           MergeTransStats *stats)
{
    menda_assert(threads > 0, "mergeTrans needs at least one thread");
    const std::uint64_t nnz = a.nnz();

    sparse::CscMatrix out;
    out.rows = a.rows;
    out.cols = a.cols;
    out.ptr.assign(static_cast<std::size_t>(a.cols) + 1, 0);
    out.idx.resize(nnz);
    out.val.resize(nnz);

    auto slices = sparse::partitionByNnz(a, threads);
    std::vector<Triples> runs(threads), scratch(threads);
    std::barrier sync(static_cast<std::ptrdiff_t>(threads));
    std::vector<std::uint64_t> rounds_by_thread(threads, 0);
    std::vector<std::uint64_t> bytes_by_thread(threads, 0);

    auto worker = [&](unsigned t) {
        const sparse::RowSlice &slice = slices[t];
        Triples &mine = runs[t];
        Triples &tmp = scratch[t];
        mine.resize(slice.nnz());
        tmp.resize(slice.nnz());

        // Load the slice: each CSR row is already one sorted run.
        SeqCursor rd_ptr, rd_idx, rd_val, wr_run;
        std::vector<std::uint64_t> segments;
        segments.push_back(0);
        std::uint64_t o = 0;
        for (Index r = slice.rowBegin; r < slice.rowEnd; ++r) {
            rd_ptr.touch(recorder, t, &a.ptr[r + 1], false);
            for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
                rd_idx.touch(recorder, t, &a.idx[k], false);
                rd_val.touch(recorder, t, &a.val[k], false);
                mine.col[o] = a.idx[k];
                mine.row[o] = r;
                mine.val[o] = a.val[k];
                wr_run.touch(recorder, t, &mine.col[o], true);
                ++o;
            }
            if (a.ptr[r + 1] > a.ptr[r])
                segments.push_back(o);
        }

        // Bottom-up k-way merge of the row runs: each pass streams the
        // whole slice out to the scratch buffer and back.
        Triples *src = &mine, *dst = &tmp;
        while (segments.size() > 2) {
            std::vector<std::uint64_t> next;
            next.push_back(0);
            for (std::size_t s = 0; s + 1 < segments.size();
                 s += mergeWays) {
                const std::size_t group_end =
                    std::min(s + mergeWays, segments.size() - 1);
                std::vector<MergeInput> inputs;
                for (std::size_t g = s; g < group_end; ++g) {
                    MergeInput input;
                    input.src = src;
                    input.pos = segments[g];
                    input.end = segments[g + 1];
                    inputs.push_back(input);
                }
                mergeKWay(inputs, *dst, segments[s], recorder, t);
                next.push_back(segments[group_end]);
            }
            segments = std::move(next);
            std::swap(src, dst);
            ++rounds_by_thread[t];
            bytes_by_thread[t] += src->size() * 12;
        }
        if (src != &mine)
            mine = std::move(*src);
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // Cross-thread k-way rounds; most threads idle while group
        // leaders merge — the scaling bottleneck of Fig. 3(b).
        for (std::uint64_t stride = 1; stride < threads;
             stride *= mergeWays) {
            if (t % (mergeWays * stride) == 0) {
                std::vector<MergeInput> inputs;
                std::vector<std::uint64_t> contributors;
                std::uint64_t total = 0;
                for (std::size_t w = 0; w < mergeWays; ++w) {
                    const std::uint64_t u = t + w * stride;
                    if (u >= threads || runs[u].size() == 0)
                        continue;
                    MergeInput input;
                    input.src = &runs[u];
                    input.pos = 0;
                    input.end = runs[u].size();
                    total += runs[u].size();
                    inputs.push_back(input);
                    contributors.push_back(u);
                }
                if (inputs.size() == 1 && contributors[0] != t) {
                    // A lone non-empty partner run: adopt it so later
                    // rounds (and the output phase) find it at runs[t].
                    runs[t] = std::move(runs[contributors[0]]);
                    runs[contributors[0]] = Triples{};
                }
                if (inputs.size() > 1) {
                    Triples merged;
                    merged.resize(total);
                    mergeKWay(inputs, merged, 0, recorder, t);
                    for (std::size_t w = 1; w < mergeWays; ++w) {
                        const std::uint64_t u = t + w * stride;
                        if (u < threads)
                            runs[u] = Triples{};
                    }
                    runs[t] = std::move(merged);
                    ++rounds_by_thread[t];
                    bytes_by_thread[t] += runs[t].size() * 12;
                }
            }
            if (recorder)
                recorder->barrier(t);
            sync.arrive_and_wait();
        }

        // Output phase: the merged triple arrays are the CSC index and
        // value arrays; the pointer array comes from scanning columns.
        if (t == 0) {
            const Triples &merged = runs[0];
            SeqCursor rd_col, wr_ptr;
            for (std::uint64_t k = 0; k < merged.size(); ++k) {
                rd_col.touch(recorder, 0, &merged.col[k], false);
                ++out.ptr[merged.col[k] + 1];
            }
            for (Index c = 0; c < a.cols; ++c) {
                wr_ptr.touch(recorder, 0, &out.ptr[c + 1], true);
                out.ptr[c + 1] += out.ptr[c];
            }
        }
        if (recorder)
            recorder->barrier(t);
        sync.arrive_and_wait();

        // Parallel copy of the index/value arrays.
        const Triples &merged = runs[0];
        const std::uint64_t lo = merged.size() * t / threads;
        const std::uint64_t hi = merged.size() * (t + 1) / threads;
        SeqCursor rd_row, rd_v, wr_idx, wr_val;
        for (std::uint64_t k = lo; k < hi; ++k) {
            rd_row.touch(recorder, t, &merged.row[k], false);
            rd_v.touch(recorder, t, &merged.val[k], false);
            out.idx[k] = merged.row[k];
            out.val[k] = merged.val[k];
            wr_idx.touch(recorder, t, &out.idx[k], true);
            wr_val.touch(recorder, t, &out.val[k], true);
        }
    };

    const auto start = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (auto &th : pool)
            th.join();
    }
    const auto stop = std::chrono::steady_clock::now();

    if (timing) {
        timing->seconds =
            std::chrono::duration<double>(stop - start).count();
        timing->threads = threads;
    }
    if (stats) {
        stats->mergeRounds = 0;
        stats->intermediateBytes = 0;
        for (unsigned t = 0; t < threads; ++t) {
            stats->mergeRounds += rounds_by_thread[t];
            stats->intermediateBytes += bytes_by_thread[t];
        }
    }
    return out;
}

} // namespace menda::baselines
