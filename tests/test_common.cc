/**
 * @file
 * Unit tests for common utilities: block math, RNG determinism, stats
 * registry, option parsing, and error macros.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace menda;

TEST(Types, BlockAlignment)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(130), 128u);
    EXPECT_EQ(blockAlignUp(0), 0u);
    EXPECT_EQ(blockAlignUp(1), 64u);
    EXPECT_EQ(blockAlignUp(64), 64u);
}

TEST(Types, BlocksSpanned)
{
    EXPECT_EQ(blocksSpanned(0, 0), 0u);
    EXPECT_EQ(blocksSpanned(0, 1), 1u);
    EXPECT_EQ(blocksSpanned(0, 64), 1u);
    EXPECT_EQ(blocksSpanned(0, 65), 2u);
    EXPECT_EQ(blocksSpanned(60, 8), 2u); // straddles a boundary
    EXPECT_EQ(blocksSpanned(64, 64), 1u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.below(17);
        ASSERT_LT(v, 17u);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(99);
    double min = 1.0, max = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    EXPECT_LT(min, 0.01);
    EXPECT_GT(max, 0.99);
}

TEST(Stats, CountersCollectHierarchically)
{
    Counter hits;
    hits += 5;
    ++hits;
    Counter misses;

    StatGroup child("cache");
    child.add("hits", hits);
    child.add("misses", misses);
    StatGroup parent("cpu");
    parent.addChild(child);

    auto collected = parent.collect();
    EXPECT_EQ(collected.at("cpu.cache.hits"), 6.0);
    EXPECT_EQ(collected.at("cpu.cache.misses"), 0.0);
}

TEST(Stats, DumpContainsEveryStat)
{
    Counter c;
    c += 42;
    StatGroup g("g");
    g.add("answer", c);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("g.answer 42"), std::string::npos);
}

TEST(Options, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--scale=4", "--verbose", "file.mtx"};
    Options opts;
    opts.parse(4, argv);
    EXPECT_EQ(opts.getInt("scale", 1), 4);
    EXPECT_TRUE(opts.has("verbose"));
    EXPECT_EQ(opts.get("verbose"), "1");
    EXPECT_EQ(opts.scale(8), 4u);
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional().begin()->second, "file.mtx");
}

TEST(Options, RejectsMalformedNumbers)
{
    const char *argv[] = {"prog", "--scale=abc"};
    Options opts;
    opts.parse(2, argv);
    EXPECT_THROW(opts.getInt("scale", 1), std::runtime_error);
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(menda_fatal("boom ", 42), std::runtime_error);
    EXPECT_THROW(menda_panic("bug"), std::runtime_error);
}

TEST(Log, AssertPassesAndFails)
{
    menda_assert(1 + 1 == 2, "arithmetic works");
    EXPECT_THROW(menda_assert(false, "nope"), std::runtime_error);
}

TEST(Stats, JsonDumpIsWellFormed)
{
    Counter c;
    c += 7;
    StatGroup g("unit");
    g.add("events", c);
    double scalar = 2.5;
    g.add("ratio", &scalar);
    std::ostringstream os;
    g.dumpJson(os);
    EXPECT_EQ(os.str(), "{\"unit.events\":7,\"unit.ratio\":2.5}");
}

TEST(Stats, DuplicateRegistrationAsserts)
{
    Counter a, b;
    StatGroup g("dup");
    g.add("events", a);
    EXPECT_THROW(g.add("events", b), std::runtime_error);

    // Same name across stat kinds collides too.
    Histogram h;
    EXPECT_THROW(g.add("events", h), std::runtime_error);
    double scalar = 0.0;
    EXPECT_THROW(g.add("events", &scalar), std::runtime_error);
}

TEST(Histogram, BucketsByLog2)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~std::uint64_t(0)), 64u);

    Histogram h;
    h.record(0);
    h.record(5);
    h.record(5);
    h.record(300);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 310u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.usedBuckets(), 10u);
}

TEST(Histogram, MergeIsBucketwiseExact)
{
    Histogram a, b;
    a.record(7);
    a.record(100);
    b.record(0);
    b.record(9000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 7u + 100 + 9000);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), 9000u);
    EXPECT_EQ(a.bucket(0), 1u);
    EXPECT_EQ(a.bucket(3), 1u);
    EXPECT_EQ(a.bucket(7), 1u);
    EXPECT_EQ(a.bucket(14), 1u);

    // Merging an empty histogram keeps min well-defined.
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.count(), 4u);
}

namespace
{

/** Exact nearest-rank quantile over the raw samples (the reference the
 *  bucketed estimate is tested against). */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
    return samples[rank - 1];
}

/** The estimate must land inside the value range of the bucket holding
 *  the exact nearest-rank sample (factor-2 worst case for log-2
 *  buckets), and inside the recorded [min, max]. */
void
expectQuantileWithinBucket(const Histogram &h,
                           const std::vector<std::uint64_t> &samples,
                           double q)
{
    const std::uint64_t exact = exactQuantile(samples, q);
    const double estimate = h.quantile(q);
    const unsigned b = Histogram::bucketOf(exact);
    const double lo =
        b == 0 ? 0.0 : static_cast<double>(std::uint64_t(1) << (b - 1));
    const double hi = b == 0 ? 0.0 : lo * 2.0 - 1.0;
    EXPECT_GE(estimate, std::max(lo, static_cast<double>(h.min())))
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(estimate, std::min(hi, static_cast<double>(h.max())))
        << "q=" << q << " exact=" << exact;
}

} // namespace

TEST(Histogram, QuantileDegenerateCasesAreExact)
{
    Histogram empty;
    EXPECT_EQ(empty.quantile(0.5), 0.0);

    // All-equal samples: clamping to [min, max] pins every quantile.
    Histogram same;
    for (int i = 0; i < 100; ++i)
        same.record(37);
    EXPECT_EQ(same.quantile(0.0), 37.0);
    EXPECT_EQ(same.quantile(0.5), 37.0);
    EXPECT_EQ(same.quantile(0.99), 37.0);
    EXPECT_EQ(same.quantile(1.0), 37.0);

    // All zeros live in bucket 0, which holds exactly the value 0.
    Histogram zeros;
    zeros.record(0);
    zeros.record(0);
    EXPECT_EQ(zeros.quantile(0.95), 0.0);

    // One sample: every quantile is that sample.
    Histogram one;
    one.record(5);
    EXPECT_EQ(one.quantile(0.01), 5.0);
    EXPECT_EQ(one.quantile(0.99), 5.0);
}

TEST(Histogram, QuantileTracksExactReferenceWithinBucketBounds)
{
    // Deterministic skewed sample set (latency-shaped: mostly small,
    // a heavy tail), checked against the exact nearest-rank reference.
    Rng rng(42);
    std::vector<std::uint64_t> samples;
    Histogram h;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = 1 + rng.below(64);
        if (i % 17 == 0)
            v = 1000 + rng.below(9000);
        if (i % 97 == 0)
            v = 100'000 + rng.below(900'000);
        samples.push_back(v);
        h.record(v);
    }
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        expectQuantileWithinBucket(h, samples, q);
        const double exact =
            static_cast<double>(exactQuantile(samples, q));
        EXPECT_GE(h.quantile(q), exact / 2.0) << "q=" << q;
        EXPECT_LE(h.quantile(q), exact * 2.0) << "q=" << q;
    }

    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
    EXPECT_LE(h.quantile(0.99), h.quantile(1.0));
}

TEST(Histogram, QuantileOfMergedShardsMatchesCombinedRecording)
{
    // Per-shard histograms merged bucket-wise must estimate the
    // combined sample set exactly as one histogram would.
    Rng rng(7);
    Histogram combined, shard0, shard1;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = 1 + rng.below(100'000);
        samples.push_back(v);
        combined.record(v);
        (i % 2 ? shard0 : shard1).record(v);
    }
    Histogram merged = shard0;
    merged.merge(shard1);
    for (const double q : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(merged.quantile(q), combined.quantile(q));
        expectQuantileWithinBucket(merged, samples, q);
    }
}

TEST(IntervalSampler, SamplesOncePerPeriod)
{
    IntervalSampler s;
    EXPECT_FALSE(s.enabled());
    s.sample(1, 99); // disabled: no-op
    EXPECT_TRUE(s.values().empty());

    s.configure(10);
    ASSERT_TRUE(s.enabled());
    for (std::uint64_t now = 0; now < 35; ++now)
        s.sample(now, now * 2);
    EXPECT_EQ(s.cycles(), (std::vector<std::uint64_t>{0, 10, 20, 30}));
    EXPECT_EQ(s.values(), (std::vector<std::uint64_t>{0, 20, 40, 60}));
    EXPECT_EQ(s.lastValue(), 60u);
}

TEST(IntervalSampler, CatchesUpAfterSkippedWindow)
{
    // An idle-skipped component calls sample() with a jumped `now`; the
    // sampler records one catch-up point at that cycle, then realigns
    // to the period grid — deterministically, independent of where the
    // skip window fell.
    IntervalSampler s;
    s.configure(10);
    s.sample(0, 1);
    s.sample(47, 2); // skipped cycles 1..46
    s.sample(48, 3); // within the realigned period: not sampled
    s.sample(50, 4); // next grid point
    EXPECT_EQ(s.cycles(), (std::vector<std::uint64_t>{0, 47, 50}));
    EXPECT_EQ(s.values(), (std::vector<std::uint64_t>{1, 2, 4}));
}
