/**
 * @file
 * Unit tests for the prefetch buffer: chunking, the one-outstanding-
 * request rule, stall-reducing vs baseline refill policies, empty-stream
 * tokens, and cross-stream prefetch.
 */

#include <gtest/gtest.h>

#include <vector>

#include "menda/prefetch_buffer.hh"

using namespace menda;
using namespace menda::core;

namespace
{

struct Fixture
{
    PuConfig config;
    PuMemoryMap map;
    std::vector<Value> values;
    std::unique_ptr<PrefetchBuffer> buffer;

    explicit Fixture(bool prefetch = true, unsigned entries = 32)
        : map(0, 1024, 1024, 65536)
    {
        config.stallReducingPrefetch = prefetch;
        config.prefetchBufferEntries = entries;
        buffer = std::make_unique<PrefetchBuffer>(
            0, config, &map,
            [](const StreamDesc &desc, std::uint64_t element) {
                return Packet::data(desc.fixedIndex,
                                    static_cast<Index>(element), 1.0f,
                                    element + 1 == desc.end);
            });
    }

    /** Serve every outstanding block of the current chunk. */
    void
    serveChunk()
    {
        std::vector<Addr> blocks;
        while (buffer->pendingBlock() != 0) {
            blocks.push_back(buffer->pendingBlock());
            buffer->issuedBlock();
        }
        for (Addr addr : blocks)
            buffer->fillFromResponse(addr);
    }

    StreamDesc
    csrStream(std::uint64_t begin, std::uint64_t end, Index row)
    {
        StreamDesc desc;
        desc.source = StreamSource::CsrRow;
        desc.begin = begin;
        desc.end = end;
        desc.fixedIndex = row;
        return desc;
    }
};

} // namespace

TEST(PrefetchBuffer, ChunkNeedsIndexAndValueBlocks)
{
    Fixture f;
    f.buffer->assign(f.csrStream(0, 8, 5));
    // 8 elements in one span: 1 ColIdx block + 1 NzVal block.
    Addr first = f.buffer->pendingBlock();
    ASSERT_NE(first, 0u);
    f.buffer->issuedBlock();
    Addr second = f.buffer->pendingBlock();
    ASSERT_NE(second, 0u);
    EXPECT_NE(first, second);
    f.buffer->issuedBlock();
    EXPECT_EQ(f.buffer->pendingBlock(), 0u) << "one outstanding chunk";

    // No packets until *both* blocks arrive.
    f.buffer->fillFromResponse(first);
    EXPECT_FALSE(f.buffer->hasPacket());
    f.buffer->fillFromResponse(second);
    ASSERT_TRUE(f.buffer->hasPacket());
}

TEST(PrefetchBuffer, DeliversStreamInOrderWithEol)
{
    Fixture f;
    f.buffer->assign(f.csrStream(0, 10, 7));
    f.serveChunk();
    for (std::uint64_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(f.buffer->hasPacket());
        Packet p = f.buffer->popPacket();
        EXPECT_TRUE(p.valid);
        EXPECT_EQ(p.row, 7u);
        EXPECT_EQ(p.col, i);
        EXPECT_EQ(p.eol, i == 9);
    }
    EXPECT_FALSE(f.buffer->hasPacket());
    EXPECT_TRUE(f.buffer->idle());
}

TEST(PrefetchBuffer, EmptyStreamYieldsPureEolWithoutFetch)
{
    Fixture f;
    f.buffer->assign(f.csrStream(0, 0, 3));
    EXPECT_EQ(f.buffer->pendingBlock(), 0u);
    ASSERT_TRUE(f.buffer->hasPacket());
    Packet p = f.buffer->popPacket();
    EXPECT_FALSE(p.valid);
    EXPECT_TRUE(p.eol);
}

TEST(PrefetchBuffer, BaselineRequestsOnlyWhenEmpty)
{
    Fixture f(/*prefetch=*/false);
    f.buffer->assign(f.csrStream(0, 64, 1)); // 4 spans of 16
    f.serveChunk(); // one span arrives
    // No further request launches while any data remains.
    EXPECT_EQ(f.buffer->pendingBlock(), 0u)
        << "baseline must not top up a non-empty buffer";
    for (int i = 0; i < 15; ++i)
        f.buffer->popPacket();
    EXPECT_EQ(f.buffer->pendingBlock(), 0u);
    f.buffer->popPacket(); // drained
    EXPECT_NE(f.buffer->pendingBlock(), 0u)
        << "drained buffer must refill";
}

TEST(PrefetchBuffer, StallReducingPrefetchTopsUpEarly)
{
    Fixture f(/*prefetch=*/true);
    f.buffer->assign(f.csrStream(0, 64, 1));
    f.serveChunk();
    f.serveChunk(); // two spans buffered: 32 of 32 entries used
    EXPECT_EQ(f.buffer->pendingBlock(), 0u) << "buffer full";
    // Popping one whole span (16) frees enough space for the next span
    // to be requested immediately — well before the buffer drains.
    for (int i = 0; i < 16; ++i)
        f.buffer->popPacket();
    EXPECT_NE(f.buffer->pendingBlock(), 0u)
        << "prefetch must start before the buffer drains";
}

TEST(PrefetchBuffer, PrefetchesAcrossStreamBoundaries)
{
    Fixture f(/*prefetch=*/true);
    f.buffer->assign(f.csrStream(0, 4, 1));
    EXPECT_TRUE(f.buffer->wantsAssignment());
    f.buffer->assign(f.csrStream(100, 104, 2));
    f.serveChunk(); // stream 1 data
    f.serveChunk(); // stream 2 data, prefetched behind stream 1
    std::vector<Index> rows;
    while (f.buffer->hasPacket())
        rows.push_back(f.buffer->popPacket().row);
    EXPECT_EQ(rows, (std::vector<Index>{1, 1, 1, 1, 2, 2, 2, 2}));
}

TEST(PrefetchBuffer, CooStreamsNeedThreeBlocksPerSpan)
{
    Fixture f;
    StreamDesc desc;
    desc.source = StreamSource::Coo;
    desc.begin = 0;
    desc.end = 8;
    desc.cooBuffer = 1;
    f.buffer->assign(desc);
    unsigned blocks = 0;
    while (f.buffer->pendingBlock() != 0) {
        f.buffer->issuedBlock();
        ++blocks;
    }
    EXPECT_EQ(blocks, 3u);
}

TEST(PrefetchBuffer, ResponsesForUnknownBlocksAreIgnored)
{
    Fixture f;
    f.buffer->assign(f.csrStream(0, 8, 5));
    EXPECT_FALSE(f.buffer->fillFromResponse(0xdead000));
    f.buffer->issuedBlock();
    EXPECT_FALSE(f.buffer->fillFromResponse(0xdead000));
}

TEST(PrefetchBuffer, CapacityIsRespected)
{
    Fixture f(/*prefetch=*/true, /*entries=*/16);
    f.buffer->assign(f.csrStream(0, 1000, 1));
    f.serveChunk();
    // At most 16 elements buffered or in flight at any point.
    unsigned buffered = 0;
    while (f.buffer->hasPacket()) {
        f.buffer->popPacket();
        ++buffered;
    }
    EXPECT_LE(buffered, 16u);
}
