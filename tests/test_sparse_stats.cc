/**
 * @file
 * Tests for the matrix-analysis module.
 */

#include <gtest/gtest.h>

#include "sparse/generate.hh"
#include "sparse/stats.hh"

using namespace menda;
using namespace menda::sparse;

TEST(MatrixStats, HandComputedExample)
{
    CooMatrix coo;
    coo.rows = 4;
    coo.cols = 4;
    coo.row = {0, 0, 1, 3};
    coo.col = {0, 3, 1, 0};
    coo.val = {1, 2, 3, 4};
    CsrMatrix a = cooToCsr(coo);
    MatrixStats stats = analyze(a);
    EXPECT_EQ(stats.nnz, 4u);
    EXPECT_EQ(stats.emptyRows, 1u); // row 2
    EXPECT_EQ(stats.emptyCols, 1u); // col 2
    EXPECT_EQ(stats.bandwidth, 3u); // (0,3) and (3,0)
    EXPECT_DOUBLE_EQ(stats.rowLengths.mean, 1.0);
    EXPECT_EQ(stats.rowLengths.max, 2u);
    // Symmetric pairs: (0,0), (1,1), and (0,3)/(3,0) -> all 4 entries.
    EXPECT_DOUBLE_EQ(stats.structuralSymmetry, 1.0);
}

TEST(MatrixStats, SymmetryDetectsAsymmetry)
{
    CooMatrix coo;
    coo.rows = coo.cols = 3;
    coo.row = {0, 1};
    coo.col = {1, 2};
    coo.val = {1, 1};
    MatrixStats stats = analyze(cooToCsr(coo));
    EXPECT_DOUBLE_EQ(stats.structuralSymmetry, 0.0);
}

TEST(MatrixStats, BandedMatrixHasSmallBandwidth)
{
    CsrMatrix a = generateBanded(500, 9, 0.8, 1);
    MatrixStats stats = analyze(a);
    EXPECT_LE(stats.bandwidth, 4u);
    EXPECT_GT(stats.structuralSymmetry, 0.3);
    EXPECT_EQ(stats.emptyRows, 0u);
}

TEST(MatrixStats, SkewSeparatesUniformFromPowerLaw)
{
    CsrMatrix u = generateUniform(4096, 4096, 40000, 2);
    CsrMatrix p = generateRmat(4096, 40000, 0.1, 0.2, 0.3, 3);
    MatrixStats su = analyze(u);
    MatrixStats sp = analyze(p);
    EXPECT_LT(su.rowLengths.skew, 1.3);
    EXPECT_GT(sp.rowLengths.skew, 1.8);
}

TEST(MatrixStats, MergeIterationFormula)
{
    CsrMatrix a = generateBanded(1000, 5, 1.0, 4); // 1000 non-empty rows
    MatrixStats stats = analyze(a);
    EXPECT_EQ(stats.mergeIterations(1024), 1u);
    EXPECT_EQ(stats.mergeIterations(32), 2u);  // 1000 -> 32 -> 1
    EXPECT_EQ(stats.mergeIterations(10), 3u);  // 1000 -> 100 -> 10 -> 1
    EXPECT_EQ(stats.mergeIterations(2), 10u);  // ceil(log2 1000)
}

TEST(Distribution, Log2HistogramBuckets)
{
    LengthDistribution dist =
        distributionOf({0, 1, 2, 3, 4, 7, 8, 100});
    // Buckets: [0]=1, [1]=1, [2,3]=2, [4,7]=2, [8,15]=1, ..., [64,127]=1
    ASSERT_GE(dist.log2Histogram.size(), 8u);
    EXPECT_EQ(dist.log2Histogram[0], 1u);
    EXPECT_EQ(dist.log2Histogram[1], 1u);
    EXPECT_EQ(dist.log2Histogram[2], 2u);
    EXPECT_EQ(dist.log2Histogram[3], 2u);
    EXPECT_EQ(dist.log2Histogram[4], 1u);
    EXPECT_EQ(dist.log2Histogram[7], 1u);
    EXPECT_EQ(dist.min, 0u);
    EXPECT_EQ(dist.max, 100u);
}

TEST(Distribution, EmptyInput)
{
    LengthDistribution dist = distributionOf({});
    EXPECT_EQ(dist.max, 0u);
    EXPECT_EQ(dist.mean, 0.0);
}
