/**
 * @file
 * Tests for the area/power/EDP models (Sec. 6.2, Fig. 15 axes).
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

using namespace menda;
using namespace menda::power;

TEST(PuPower, AnchorsToSynthesisNumbers)
{
    PuPowerModel model;
    core::PuConfig nominal; // 1024 leaves, 800 MHz, 32-entry buffers
    EXPECT_NEAR(model.puWatts(nominal), 0.0786, 1e-9);
    EXPECT_NEAR(model.puAreaMm2(nominal), 7.1, 1e-9);
    EXPECT_NEAR(model.puWatts(nominal, true), 0.0786 + 0.0138, 1e-9);
}

TEST(PuPower, ScalesWithFrequency)
{
    PuPowerModel model;
    core::PuConfig slow, fast;
    slow.freqMhz = 400;
    fast.freqMhz = 1200;
    const double p400 = model.puWatts(slow);
    const double p800 = model.puWatts(core::PuConfig{});
    const double p1200 = model.puWatts(fast);
    EXPECT_LT(p400, p800);
    EXPECT_LT(p800, p1200);
    // Leakage floor: halving frequency does not halve power.
    EXPECT_GT(p400, p800 / 2.0);
}

TEST(PuPower, ScalesWithLeafCount)
{
    PuPowerModel model;
    core::PuConfig small;
    small.leaves = 64;
    const double p64 = model.puWatts(small);
    const double p1024 = model.puWatts(core::PuConfig{});
    EXPECT_LT(p64, p1024);
    // Control power is fixed: 16x fewer leaves is far from 16x less
    // power (Sec. 6.7: smaller trees don't pay off).
    EXPECT_GT(p64, p1024 / 16.0);
    EXPECT_LT(model.puAreaMm2(small), model.puAreaMm2(core::PuConfig{}));
}

TEST(DramPower, EnergyAccumulates)
{
    DramPowerModel model;
    const double idle = model.energyJ(0, 0, 1.0);
    EXPECT_NEAR(idle, 0.075, 1e-12);
    const double busy = model.energyJ(1000, 100000, 1.0);
    EXPECT_GT(busy, idle);
}

TEST(Edp, CombinesEnergyAndDelay)
{
    EXPECT_NEAR(edp(2.0, 3.0), 6.0, 1e-12);
    // Fig. 15 logic: running faster at higher power can still win EDP.
    const double slow = edp(0.1 * 2.0, 2.0);  // 0.1 W for 2 s
    const double fast = edp(0.15 * 1.2, 1.2); // 0.15 W for 1.2 s
    EXPECT_LT(fast, slow);
}
