/**
 * @file
 * Tests for the heterogeneous programming model (Sec. 4): allocation,
 * non-blocking launch, wait, MMIO register protocol, and per-rank
 * partition views.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/spgemm_cpu.hh"
#include "menda/host_api.hh"
#include "sparse/generate.hh"

using namespace menda;

namespace
{

core::SystemConfig
apiConfig()
{
    core::SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 2;
    config.ranksPerDimm = 2;
    config.pu.leaves = 16;
    return config;
}

} // namespace

TEST(HostApi, TransposeFollowsTheFig8Protocol)
{
    sparse::CsrMatrix a = sparse::generateRmat(512, 4000, 0.1, 0.2, 0.3,
                                               71);
    nmp::Context ctx(apiConfig());
    EXPECT_EQ(ctx.ranks(), 4u);

    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    EXPECT_EQ(g.slices().size(), 4u);
    EXPECT_FALSE(ctx.mmio(0).start);

    ctx.transpose(g);            // non-blocking launch
    EXPECT_TRUE(ctx.mmio(0).start);
    EXPECT_FALSE(ctx.finished());

    ctx.wait();                  // blocks until finish signals set
    EXPECT_TRUE(ctx.finished());
    for (unsigned r = 0; r < ctx.ranks(); ++r)
        EXPECT_TRUE(ctx.mmio(r).finish);

    EXPECT_EQ(ctx.result(g).ptr, sparse::transposeReference(a).ptr);
}

TEST(HostApi, GetAddrExposesPartitionedCsc)
{
    sparse::CsrMatrix a = sparse::generateUniform(256, 256, 3000, 73);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    ctx.transpose(g);
    ctx.wait();

    std::uint64_t nnz = 0;
    for (unsigned r = 0; r < ctx.ranks(); ++r) {
        nmp::PartitionView view = ctx.getAddr(g, r);
        ASSERT_NE(view.csc, nullptr);
        view.csc->validate();
        nnz += view.csc->nnz();
        EXPECT_EQ(view.rowBegin, g.slices()[r].rowBegin);
        // Output addresses published through MMIO registers.
        EXPECT_GT(view.idxAddr, 0u);
    }
    EXPECT_EQ(nnz, a.nnz());
}

TEST(HostApi, GetAddrBeforeTransposeIsAnError)
{
    sparse::CsrMatrix a = sparse::generateUniform(64, 64, 500, 75);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    EXPECT_THROW(ctx.getAddr(g, 0), std::runtime_error);
}

TEST(HostApi, SpmvOffloadProducesReferenceResult)
{
    sparse::CsrMatrix a = sparse::generateUniform(300, 300, 4000, 77);
    std::vector<Value> x(a.cols, 0.5f);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    ctx.spmv(g, x);
    ctx.wait();
    auto want = sparse::spmvReference(a, x);
    ASSERT_EQ(ctx.vectorResult().size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r)
        EXPECT_NEAR(ctx.vectorResult()[r], want[r],
                    1e-3 * (std::abs(want[r]) + 1.0));
}

TEST(HostApi, AllocationColorsPagesPerRank)
{
    sparse::CsrMatrix a = sparse::generateUniform(2048, 2048, 30000, 79);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    for (unsigned r = 0; r < ctx.ranks(); ++r)
        EXPECT_GT(g.pageTable().pagesOfColor(r), 0u);
    EXPECT_LE(g.pageTable().duplicatedBytes, pageBytes * ctx.ranks());
}

TEST(HostApi, RunStatsArePopulated)
{
    sparse::CsrMatrix a = sparse::generateUniform(256, 256, 4000, 81);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    ctx.transpose(g);
    ctx.wait();
    EXPECT_GT(ctx.lastRun().seconds, 0.0);
    EXPECT_GT(ctx.lastRun().readBlocks, 0u);
    EXPECT_GT(ctx.lastRun().writeBlocks, 0u);
}

TEST(HostApi, DoubleLaunchWithoutWaitIsAnError)
{
    sparse::CsrMatrix a = sparse::generateUniform(64, 64, 400, 83);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    ctx.transpose(g);
    EXPECT_THROW(ctx.transpose(g), std::runtime_error)
        << "an offload is already in flight";
    ctx.wait();
    // After wait() a new offload is fine.
    ctx.transpose(g);
    ctx.wait();
    EXPECT_TRUE(ctx.finished());
}

TEST(HostApi, WaitWithoutLaunchIsANoOp)
{
    nmp::Context ctx(apiConfig());
    ctx.wait();
    EXPECT_TRUE(ctx.finished());
}

TEST(HostApi, MmioAddressesAreDistinctPerRegion)
{
    sparse::CsrMatrix a = sparse::generateUniform(256, 256, 2000, 87);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
    const nmp::MmioRegisters &regs = ctx.mmio(0);
    EXPECT_NE(regs.rowPtrAddr, regs.colIdxAddr);
    EXPECT_NE(regs.colIdxAddr, regs.valueAddr);
    EXPECT_EQ(regs.rowBegin, 0u);
    ctx.transpose(g);
    ctx.wait();
    EXPECT_NE(ctx.mmio(0).outPtrAddr, ctx.mmio(0).outIdxAddr);
}

TEST(HostApiMultiUse, ThreeBackToBackKernelsOnOneSystem)
{
    // Regression: the system and context used to assume one kernel per
    // process. Three different kernels back to back on one instance
    // must each produce the reference result.
    sparse::CsrMatrix a = sparse::generateUniform(256, 256, 3000, 89);
    sparse::CsrMatrix b = sparse::generateUniform(256, 256, 2500, 91);
    std::vector<Value> x(a.cols, 0.25f);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);

    ctx.transpose(g);
    ctx.wait();
    EXPECT_EQ(ctx.result(g).ptr, sparse::transposeReference(a).ptr);

    ctx.spmv(g, x);
    ctx.wait();
    auto want = sparse::spmvReference(a, x);
    ASSERT_EQ(ctx.vectorResult().size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r)
        EXPECT_NEAR(ctx.vectorResult()[r], want[r],
                    1e-3 * (std::abs(want[r]) + 1.0));

    ctx.spgemm(g, b);
    ctx.wait();
    auto c_want = baselines::spgemmHeapMerge(a, b);
    EXPECT_EQ(ctx.productResult().ptr, c_want.ptr);
    EXPECT_EQ(ctx.productResult().idx, c_want.idx);
}

TEST(HostApiMultiUse, SecondAllocationDoesNotAliasTheFirst)
{
    // Regression: allocSparseMatrix used to lay every matrix out at
    // rank-local base 0 and virtual page 0, so a second live matrix
    // overlapped the first's pages and MMIO-published addresses.
    sparse::CsrMatrix a = sparse::generateUniform(512, 512, 8000, 93);
    sparse::CsrMatrix b = sparse::generateUniform(512, 512, 6000, 95);
    nmp::Context ctx(apiConfig());
    nmp::MatrixHandle ga = ctx.allocSparseMatrix(a);
    nmp::MatrixHandle gb = ctx.allocSparseMatrix(b);

    // Disjoint colored page tables.
    std::set<Addr> pages_a;
    for (const auto &entry : ga.pageTable().entries)
        pages_a.insert(entry.virtualPage);
    for (const auto &entry : gb.pageTable().entries)
        EXPECT_EQ(pages_a.count(entry.virtualPage), 0u)
            << "page " << entry.virtualPage << " allocated twice";

    // Disjoint rank-local physical spans.
    for (unsigned r = 0; r < ctx.ranks(); ++r) {
        EXPECT_NE(ga.memoryMap(r).base(core::Region::RowPtr),
                  gb.memoryMap(r).base(core::Region::RowPtr));
        EXPECT_LE(ga.memoryMap(r).end(),
                  gb.memoryMap(r).base(core::Region::RowPtr) + 1);
    }

    // Both handles still transpose correctly against their own data.
    ctx.transpose(ga);
    ctx.wait();
    EXPECT_EQ(ctx.result(ga).ptr, sparse::transposeReference(a).ptr);
    ctx.transpose(gb);
    ctx.wait();
    EXPECT_EQ(ctx.result(gb).ptr, sparse::transposeReference(b).ptr);
}

TEST(HostApiMultiUse, FreeReclaimsSpaceWithoutLeaking)
{
    sparse::CsrMatrix a = sparse::generateUniform(512, 512, 8000, 97);
    nmp::Context ctx(apiConfig());

    nmp::MatrixHandle g1 = ctx.allocSparseMatrix(a);
    const Addr high_water = ctx.rankHighWater(0);
    EXPECT_GT(ctx.rankLiveBytes(0), 0u);

    ctx.free(g1);
    EXPECT_FALSE(g1.alive());
    EXPECT_EQ(ctx.rankLiveBytes(0), 0u);

    // Alloc/free cycles reuse the freed spans: the simulated heap's
    // high-water mark must not grow.
    for (int i = 0; i < 8; ++i) {
        nmp::MatrixHandle g = ctx.allocSparseMatrix(a);
        EXPECT_EQ(g.memoryMap(0).base(core::Region::RowPtr),
                  g1.memoryMap(0).base(core::Region::RowPtr));
        EXPECT_EQ(g.pageBase(), g1.pageBase());
        ctx.free(g);
    }
    EXPECT_EQ(ctx.rankHighWater(0), high_water);

    EXPECT_THROW(ctx.free(g1), std::runtime_error) << "double free";
}
