/**
 * @file
 * End-to-end tests of a single MeNDA PU performing sparse matrix
 * transposition against the golden count-sort reference, across matrix
 * shapes, densities, and tree sizes, plus ablation invariance (the
 * prefetch/coalescing optimizations must never change results) and
 * iteration-count checks (ceil(log_l N) iterations, Sec. 3.1).
 */

#include <gtest/gtest.h>

#include <memory>

#include "dram/controller.hh"
#include "menda/pu.hh"
#include "sim/clock.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

namespace
{

struct PuHarness
{
    sparse::CsrMatrix csr;
    std::unique_ptr<dram::MemoryController> mem;
    std::unique_ptr<Pu> pu;
    TickScheduler sched;

    PuHarness(sparse::CsrMatrix matrix, const PuConfig &config,
              Index row_offset = 0)
        : csr(std::move(matrix))
    {
        mem = std::make_unique<dram::MemoryController>(
            "mem", dram::DramConfig::ddr4_2400r(1),
            config.requestCoalescing);
        pu = std::make_unique<Pu>("pu", config, &csr, row_offset,
                                  mem.get());
        auto *pu_clk = sched.addDomain("pu", config.freqMhz);
        auto *mem_clk = sched.addDomain("dram",
                                        mem->config().freqMhz);
        pu_clk->attach(pu.get());
        mem_clk->attach(mem.get());
    }

    void
    run()
    {
        pu->start();
        Tick elapsed = sched.runUntil([&] { return pu->done(); },
                                      2'000'000'000ull);
        ASSERT_TRUE(pu->done()) << "PU did not finish in " << elapsed
                                << " ticks";
    }
};

PuConfig
testConfig(unsigned leaves)
{
    PuConfig config;
    config.leaves = leaves;
    return config;
}

void
expectMatchesReference(const sparse::CsrMatrix &a,
                       const sparse::CscMatrix &got, Index row_offset = 0)
{
    sparse::CscMatrix want = sparse::transposeReference(a);
    ASSERT_EQ(got.ptr.size(), want.ptr.size());
    EXPECT_EQ(got.ptr, want.ptr) << "column pointer arrays differ";
    ASSERT_EQ(got.idx.size(), want.idx.size());
    for (std::size_t i = 0; i < want.idx.size(); ++i) {
        ASSERT_EQ(got.idx[i], want.idx[i] + row_offset)
            << "row index mismatch at nz " << i;
        ASSERT_EQ(got.val[i], want.val[i]) << "value mismatch at nz " << i;
    }
}

} // namespace

TEST(PuTranspose, TransposesThePaperFig1Matrix)
{
    // The 8x7 example of Fig. 1.
    sparse::CooMatrix coo;
    coo.rows = 8;
    coo.cols = 7;
    auto add = [&](Index r, Index c, float v) {
        coo.row.push_back(r);
        coo.col.push_back(c);
        coo.val.push_back(v);
    };
    add(0, 0, 'a'); add(0, 2, 'b');
    add(1, 1, 'c'); add(1, 4, 'd');
    add(2, 0, 'e'); add(2, 4, 'f'); add(2, 6, 'g');
    add(3, 3, 'h'); add(3, 5, 'i');
    add(4, 0, 'j'); add(4, 2, 'k'); add(4, 5, 'l');
    add(5, 1, 'm'); add(5, 3, 'n');
    add(6, 2, 'o'); add(6, 5, 'p'); add(6, 6, 'q');
    sparse::CsrMatrix a = sparse::cooToCsr(coo);

    PuHarness h(a, testConfig(4));
    h.run();
    expectMatchesReference(h.csr, h.pu->resultCsc());

    // Fig. 4: a 4-leaf tree over 7 non-empty rows needs 2 iterations.
    EXPECT_EQ(h.pu->iterationsExecuted(), 2u);
}

class PuTransposeMatrix
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PuTransposeMatrix, MatchesGoldenReference)
{
    const auto [leaves, variant] = GetParam();
    sparse::CsrMatrix a;
    switch (variant) {
      case 0: a = sparse::generateUniform(200, 150, 1500, 7); break;
      case 1: a = sparse::generateUniform(512, 512, 600, 11); break;
      case 2: a = sparse::generateRmat(256, 2000, 0.1, 0.2, 0.3, 13);
              break;
      case 3: a = sparse::generateBanded(300, 9, 0.6, 17); break;
      case 4: a = sparse::generateUniform(64, 2048, 900, 19); break;
      case 5: a = sparse::generateUniform(2048, 64, 900, 23); break;
    }
    PuHarness h(a, testConfig(leaves));
    h.run();
    expectMatchesReference(h.csr, h.pu->resultCsc());
}

INSTANTIATE_TEST_SUITE_P(
    LeavesByMatrix, PuTransposeMatrix,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u)));

TEST(PuTranspose, IterationCountIsCeilLogLeavesOfStreams)
{
    // 100 non-empty rows on an 8-leaf tree: ceil(log_8 100) = 3. The
    // banded generator keeps every diagonal, so no row is empty.
    sparse::CsrMatrix a = sparse::generateBanded(100, 9, 0.6, 3);
    ASSERT_EQ(a.nonEmptyRows(), 100u);
    PuHarness h(a, testConfig(8));
    h.run();
    EXPECT_EQ(h.pu->iterationsExecuted(), 3u);
}

TEST(PuTranspose, SingleIterationWhenStreamsFit)
{
    sparse::CsrMatrix a = sparse::generateUniform(60, 60, 400, 5);
    PuHarness h(a, testConfig(64));
    h.run();
    EXPECT_EQ(h.pu->iterationsExecuted(), 1u);
    expectMatchesReference(h.csr, h.pu->resultCsc());
}

TEST(PuTranspose, HandlesEmptyRowsAndColumns)
{
    // Rows 0, 2, 5 populated; all other rows empty; some empty columns.
    sparse::CooMatrix coo;
    coo.rows = 10;
    coo.cols = 12;
    coo.row = {0, 0, 2, 5, 5, 5};
    coo.col = {3, 11, 0, 3, 7, 8};
    coo.val = {1, 2, 3, 4, 5, 6};
    sparse::CsrMatrix a = sparse::cooToCsr(coo);
    PuHarness h(a, testConfig(4));
    h.run();
    expectMatchesReference(h.csr, h.pu->resultCsc());
}

TEST(PuTranspose, HandlesEmptyMatrix)
{
    sparse::CsrMatrix a;
    a.rows = 16;
    a.cols = 16;
    a.ptr.assign(17, 0);
    PuHarness h(a, testConfig(4));
    h.run();
    sparse::CscMatrix got = h.pu->resultCsc();
    EXPECT_EQ(got.nnz(), 0u);
    EXPECT_EQ(got.ptr, std::vector<std::uint32_t>(17, 0));
}

TEST(PuTranspose, HandlesSingleRowAndSingleColumn)
{
    sparse::CsrMatrix row = sparse::generateUniform(1, 500, 120, 29);
    PuHarness h1(row, testConfig(8));
    h1.run();
    expectMatchesReference(h1.csr, h1.pu->resultCsc());

    sparse::CsrMatrix col = sparse::generateUniform(500, 1, 120, 31);
    PuHarness h2(col, testConfig(8));
    h2.run();
    expectMatchesReference(h2.csr, h2.pu->resultCsc());
}

TEST(PuTranspose, RowOffsetShiftsGlobalIndices)
{
    sparse::CsrMatrix a = sparse::generateUniform(100, 80, 500, 37);
    PuHarness h(a, testConfig(16), /*row_offset=*/1000);
    h.run();
    expectMatchesReference(h.csr, h.pu->resultCsc(), 1000);
}

TEST(PuTranspose, OptimizationsNeverChangeResults)
{
    sparse::CsrMatrix a = sparse::generateRmat(512, 4000, 0.1, 0.2, 0.3,
                                               41);
    sparse::CscMatrix want = sparse::transposeReference(a);
    for (bool prefetch : {false, true}) {
        for (bool coalesce : {false, true}) {
            PuConfig config = testConfig(16);
            config.stallReducingPrefetch = prefetch;
            config.requestCoalescing = coalesce;
            PuHarness h(a, config);
            h.run();
            EXPECT_EQ(h.pu->resultCsc().ptr, want.ptr)
                << "prefetch=" << prefetch << " coalesce=" << coalesce;
            EXPECT_EQ(h.pu->resultCsc().idx, want.idx);
            EXPECT_EQ(h.pu->resultCsc().val, want.val);
        }
    }
}

TEST(PuTranspose, CoalescingReducesReadTraffic)
{
    // Many tiny rows share blocks; coalescing must cut read traffic in
    // iteration 0 (Sec. 3.4 reports up to 60%).
    sparse::CsrMatrix a = sparse::generateUniform(4096, 4096, 8192, 43);

    auto run_reads = [&](bool coalesce) {
        PuConfig config = testConfig(64);
        config.requestCoalescing = coalesce;
        PuHarness h(a, config);
        h.run();
        return h.mem->readsServed();
    };
    const auto without = run_reads(false);
    const auto with = run_reads(true);
    EXPECT_LT(with, without);
}

TEST(PuTranspose, PrefetchingNeverIncreasesCyclesBeyondNoise)
{
    sparse::CsrMatrix a = sparse::generateUniform(512, 512, 16384, 47);
    auto run_cycles = [&](bool prefetch) {
        PuConfig config = testConfig(64);
        config.stallReducingPrefetch = prefetch;
        PuHarness h(a, config);
        h.run();
        return h.pu->cycles();
    };
    const double base = static_cast<double>(run_cycles(false));
    const double opt = static_cast<double>(run_cycles(true));
    EXPECT_LT(opt, base * 1.05)
        << "stall-reducing prefetching should not slow execution down";
}
