/**
 * @file
 * Shared seed plumbing for the randomized (fuzz-style) gtest suites.
 *
 * A suite's RNG base seed defaults to a fixed constant (deterministic CI)
 * but can be overridden with the MENDA_FUZZ_SEED environment variable to
 * explore fresh seeds, e.g. from a nightly job:
 *
 *   MENDA_FUZZ_SEED=$RANDOM ./tests/test_pu_fuzz
 *
 * Every randomized test wraps its body in a SCOPED_TRACE carrying the
 * exact one-line command that re-runs just the failing case, so a red CI
 * log is directly actionable.
 */

#ifndef MENDA_TESTS_FUZZ_SEED_HH
#define MENDA_TESTS_FUZZ_SEED_HH

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace menda::testutil
{

/** The active base seed: MENDA_FUZZ_SEED if set, else @p fallback. */
inline std::uint64_t
fuzzSeedBase(std::uint64_t fallback)
{
    if (const char *env = std::getenv("MENDA_FUZZ_SEED"))
        return std::strtoull(env, nullptr, 0);
    return fallback;
}

/**
 * One-line repro command for the currently running test under base seed
 * @p base: pins both the seed and the gtest filter, so pasting it into a
 * shell re-runs exactly the failing case.
 */
inline std::string
reproCommand(std::uint64_t base, const char *binary)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::ostringstream os;
    os << "repro: MENDA_FUZZ_SEED=" << base << " ./tests/" << binary
       << " --gtest_filter=" << info->test_suite_name() << "."
       << info->name();
    return os.str();
}

} // namespace menda::testutil

#endif // MENDA_TESTS_FUZZ_SEED_HH
