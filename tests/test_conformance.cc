/**
 * @file
 * Conformance regression suite on top of the menda_check subsystem.
 *
 *  - A committed golden run-report corpus (3 small matrices x 3
 *    kernels) must stay byte-identical: any change to deterministic
 *    metrics, report canonicalization, or simulation behaviour fails
 *    here before it can silently shift the perf gate. Regenerate with
 *    `MENDA_REGEN_GOLDEN=1 ./tests/test_conformance` after an
 *    intentional change.
 *  - Every committed corpus case under tests/corpus/ must replay clean
 *    through the full variant cross-check, and replays must be
 *    deterministic (same bytes twice).
 *  - The harness's own end-to-end self test: with the hidden
 *    MENDA_TEST_FLIP_TIEBREAK fault armed, the menda_check binary must
 *    catch the flipped DRAM scheduler tie-break and minimize it to a
 *    tiny repro case.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/case_spec.hh"
#include "check/engine.hh"
#include "obs/report.hh"

using namespace menda;
using namespace menda::check;

namespace
{

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path.string());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

struct GoldenCase
{
    const char *matrixName;
    MatrixSpec a;
};

/** The three committed matrices. Small but structurally distinct. */
const GoldenCase kMatrices[] = {
    {"uniform48",
     {MatrixKind::Uniform, /*rows=*/48, /*cols=*/48, /*nnz=*/300,
      /*seed=*/11}},
    {"rmat32",
     {MatrixKind::Rmat, /*rows=*/32, /*cols=*/32, /*nnz=*/200,
      /*seed=*/12}},
    {"denserows40",
     {MatrixKind::DenseRows, /*rows=*/40, /*cols=*/56, /*nnz=*/280,
      /*seed=*/13}},
};

const Kernel kKernels[] = {Kernel::Transpose, Kernel::Spmv,
                           Kernel::Spgemm};

CaseSpec
goldenSpec(const GoldenCase &matrix, Kernel kernel)
{
    CaseSpec spec;
    spec.kernel = kernel;
    spec.a = matrix.a;
    if (kernel == Kernel::Spgemm) {
        spec.b = {MatrixKind::Uniform, matrix.a.cols, 48, 250,
                  matrix.a.seed + 100};
    }
    spec.pus = 2;
    spec.leaves = 16;
    spec.normalize();
    return spec;
}

fs::path
goldenPath(const GoldenCase &matrix, Kernel kernel)
{
    return fs::path(MENDA_TEST_DATA_DIR) / "conformance" /
           (std::string(matrix.matrixName) + "-" + kernelName(kernel) +
            ".report.json");
}

class GoldenReports
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

} // namespace

TEST_P(GoldenReports, ByteIdenticalAndZeroToleranceDiff)
{
    const GoldenCase &matrix = kMatrices[GetParam().first];
    const Kernel kernel = kKernels[GetParam().second];
    const CaseSpec spec = goldenSpec(matrix, kernel);
    const EngineVariant baseline = variantsFor(spec).front();
    const CaseOutcome outcome = runVariant(spec, baseline);

    const fs::path path = goldenPath(matrix, kernel);
    if (std::getenv("MENDA_REGEN_GOLDEN") != nullptr) {
        fs::create_directories(path.parent_path());
        outcome.report.write(path.string());
    }
    ASSERT_TRUE(fs::exists(path))
        << path << " missing; regenerate with MENDA_REGEN_GOLDEN=1";

    // Byte-identical: the canonical serialization and every metric value
    // must match exactly.
    EXPECT_EQ(readFile(path), outcome.reportJson)
        << "golden report drifted for " << spec.oneLine()
        << "; if intentional, regenerate with MENDA_REGEN_GOLDEN=1";

    // And through the diff tool's strictest setting: zero tolerance.
    const obs::RunReport golden = obs::RunReport::read(path.string());
    obs::DiffOptions zero;
    zero.tolerance = 0.0;
    const obs::DiffResult diff =
        obs::diffReports(golden, outcome.report, zero);
    EXPECT_TRUE(diff.passed);
    for (const obs::DiffResult::Entry &entry : diff.entries)
        EXPECT_TRUE(entry.withinTolerance || entry.ignored)
            << entry.name << ": golden " << entry.baseline << " vs "
            << entry.current;
}

INSTANTIATE_TEST_SUITE_P(
    MatrixKernel, GoldenReports,
    ::testing::Values(std::pair<unsigned, unsigned>{0, 0},
                      std::pair<unsigned, unsigned>{0, 1},
                      std::pair<unsigned, unsigned>{0, 2},
                      std::pair<unsigned, unsigned>{1, 0},
                      std::pair<unsigned, unsigned>{1, 1},
                      std::pair<unsigned, unsigned>{1, 2},
                      std::pair<unsigned, unsigned>{2, 0},
                      std::pair<unsigned, unsigned>{2, 1},
                      std::pair<unsigned, unsigned>{2, 2}));

TEST(ConformanceCorpus, EveryCommittedCaseReplaysClean)
{
    const fs::path dir(MENDA_TEST_CORPUS_DIR);
    ASSERT_TRUE(fs::exists(dir));
    unsigned replayed = 0;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".json")
            continue;
        SCOPED_TRACE("repro: ./tools/menda_check --replay " +
                     entry.path().string());
        const CaseSpec spec = CaseSpec::read(entry.path().string());
        const Mismatch mismatch = runCase(spec);
        EXPECT_FALSE(mismatch) << mismatch.what;
        ++replayed;
    }
    // The committed corpus covers all three kernels and the pathological
    // matrix kinds; an empty directory would vacuously pass.
    EXPECT_GE(replayed, 10u);
}

TEST(ConformanceCorpus, ReplayIsDeterministic)
{
    const fs::path dir(MENDA_TEST_CORPUS_DIR);
    fs::path first;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".json" &&
            (first.empty() || entry.path() < first))
            first = entry.path();
    }
    ASSERT_FALSE(first.empty());
    const CaseSpec spec = CaseSpec::read(first.string());
    const EngineVariant baseline = variantsFor(spec).front();
    const CaseOutcome once = runVariant(spec, baseline);
    const CaseOutcome again = runVariant(spec, baseline);
    EXPECT_EQ(once.reportJson, again.reportJson);
    EXPECT_EQ(once.csc.ptr, again.csc.ptr);
    EXPECT_EQ(once.csc.idx, again.csc.idx);
    EXPECT_EQ(once.csc.val, again.csc.val);
}

namespace
{

int
runBinary(const std::string &command)
{
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

TEST(InjectedFault, SchedulerTieBreakBugIsCaughtAndMinimized)
{
    const fs::path out =
        fs::path(::testing::TempDir()) / "menda_check_fault";
    fs::remove_all(out);
    fs::create_directories(out);
    const std::string bin = MENDA_CHECK_BIN;

    // The flipped FR-pass tie-break must surface as a cross-variant
    // mismatch within a modest number of generated cases.
    const int fuzz_status = runBinary(
        bin +
        " --budget 60s --seed 1 --max-cases 300 --inject-tiebreak-bug"
        " --out " +
        out.string() + " > " + (out / "fuzz.log").string() + " 2>&1");
    ASSERT_EQ(fuzz_status, 1) << readFile(out / "fuzz.log");

    const fs::path repro = out / "fail-0.case.json";
    ASSERT_TRUE(fs::exists(repro)) << readFile(out / "fuzz.log");

    // Minimization must shrink the repro to a tiny workload.
    const CaseSpec spec = CaseSpec::read(repro.string());
    std::uint64_t total_nnz = buildMatrix(spec.a).nnz();
    if (spec.kernel == Kernel::Spgemm)
        total_nnz += buildMatrix(spec.b).nnz();
    EXPECT_LE(total_nnz, 64u) << spec.oneLine();

    // The minimized case replays red with the fault and green without.
    EXPECT_EQ(runBinary(bin + " --inject-tiebreak-bug --replay " +
                        repro.string() + " > /dev/null 2>&1"),
              1);
    EXPECT_EQ(runBinary(bin + " --replay " + repro.string() +
                        " > /dev/null 2>&1"),
              0);
}
