/**
 * @file
 * Fault-injection tests: dropped read responses (link CRC errors) must
 * be recovered by the PU's retry path, with results still bit-exact; a
 * retry-disabled PU must hang, proving the injection actually bites.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dram/controller.hh"
#include "menda/pu.hh"
#include "sim/clock.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

namespace
{

struct FaultyHarness
{
    sparse::CsrMatrix csr;
    std::unique_ptr<dram::MemoryController> mem;
    std::unique_ptr<Pu> pu;
    TickScheduler sched;
    std::set<std::uint64_t> droppedIds;
    unsigned dropped = 0;

    FaultyHarness(sparse::CsrMatrix matrix, const PuConfig &config,
                  unsigned drop_every)
        : csr(std::move(matrix))
    {
        mem = std::make_unique<dram::MemoryController>(
            "mem", dram::DramConfig::ddr4_2400r(1),
            config.requestCoalescing);
        // Drop every Nth read response, but only on its first delivery
        // so the retried request can succeed.
        mem->setResponseFilter([this, drop_every](
                                   const mem::MemRequest &req) {
            if (req.id % drop_every == drop_every - 1 &&
                droppedIds.insert(req.id).second) {
                ++dropped;
                return false;
            }
            return true;
        });
        pu = std::make_unique<Pu>("pu", config, &csr, 0, mem.get());
        sched.addDomain("pu", config.freqMhz)->attach(pu.get());
        sched.addDomain("dram", 1200)->attach(mem.get());
    }

    bool
    run(Tick max_ticks)
    {
        pu->start();
        sched.runUntil([&] { return pu->done(); }, max_ticks);
        return pu->done();
    }
};

} // namespace

TEST(FaultInjection, DroppedResponsesAreRetriedAndResultsExact)
{
    sparse::CsrMatrix a = sparse::generateUniform(400, 400, 4000, 401);
    PuConfig config;
    config.leaves = 16;
    config.retryTimeoutCycles = 2048;
    FaultyHarness h(a, config, /*drop_every=*/17);
    ASSERT_TRUE(h.run(3'000'000'000ull)) << "PU hung despite retries";
    EXPECT_GT(h.dropped, 10u) << "injection did not trigger";
    EXPECT_GT(h.pu->retriesIssued(), 0u);
    // Results still bit-exact.
    sparse::CscMatrix want = sparse::transposeReference(a);
    EXPECT_EQ(h.pu->resultCsc().ptr, want.ptr);
    EXPECT_EQ(h.pu->resultCsc().idx, want.idx);
    EXPECT_EQ(h.pu->resultCsc().val, want.val);
}

TEST(FaultInjection, WithoutRetriesTheDropBites)
{
    // Sanity check on the injection itself: with the retry path
    // disabled, a dropped response leaves the PU stuck forever.
    sparse::CsrMatrix a = sparse::generateUniform(400, 400, 4000, 403);
    PuConfig config;
    config.leaves = 16;
    config.retryTimeoutCycles = 0; // disabled
    FaultyHarness h(a, config, /*drop_every=*/17);
    EXPECT_FALSE(h.run(20'000'000ull))
        << "PU finished despite dropped responses and no retry path";
    EXPECT_GT(h.dropped, 0u);
}

TEST(FaultInjection, CleanLinkNeverRetries)
{
    sparse::CsrMatrix a = sparse::generateUniform(400, 400, 4000, 407);
    PuConfig config;
    config.leaves = 16;
    config.retryTimeoutCycles = 2048;
    FaultyHarness h(a, config, /*drop_every=*/0x7fffffff);
    ASSERT_TRUE(h.run(3'000'000'000ull));
    EXPECT_EQ(h.pu->retriesIssued(), 0u);
    EXPECT_EQ(h.dropped, 0u);
}
