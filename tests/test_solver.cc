/**
 * @file
 * Tests for the solver substrate: BiCG/QMR convergence on reference and
 * MeNDA-backed operators, Gustavson SpMM, and the AᵀA normal-equations
 * helper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/bicg.hh"
#include "solver/spmm.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::solver;

namespace
{

/** Diagonally dominant banded test system (guaranteed convergent). */
sparse::CsrMatrix
dominantSystem(Index n, std::uint64_t seed)
{
    sparse::CsrMatrix a = sparse::generateBanded(n, 7, 0.6, seed);
    for (Index r = 0; r < a.rows; ++r)
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            if (a.idx[k] == r)
                a.val[k] = 10.0f;
    return a;
}

/** Residual ||b - A x|| / ||b|| computed from scratch. */
double
relativeResidual(const sparse::CsrMatrix &a, const std::vector<double> &x,
                 const std::vector<double> &b)
{
    double rr = 0.0, bb = 0.0;
    for (Index r = 0; r < a.rows; ++r) {
        double ax = 0.0;
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            ax += double(a.val[k]) * x[a.idx[k]];
        rr += (b[r] - ax) * (b[r] - ax);
        bb += b[r] * b[r];
    }
    return std::sqrt(rr / bb);
}

} // namespace

TEST(Bicg, ConvergesOnDominantSystem)
{
    sparse::CsrMatrix a = dominantSystem(500, 1);
    std::vector<double> b(a.rows, 1.0);
    LinearOperator op = referenceOperator(a);
    SolveResult result = bicg(op, b, 300, 1e-9);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(relativeResidual(a, result.x, b), 1e-8);
    EXPECT_LT(result.iterations, 100u);
}

TEST(Bicg, NonSymmetricSystem)
{
    // Banded + a non-symmetric perturbation; BiCG (unlike CG) handles
    // it as long as dominance holds.
    sparse::CsrMatrix a = dominantSystem(300, 2);
    for (std::uint32_t k = 0; k < a.nnz(); k += 3)
        a.val[k] += 0.3f;
    std::vector<double> b(a.rows);
    for (Index i = 0; i < a.rows; ++i)
        b[i] = (i % 5) - 2.0;
    SolveResult result = bicg(referenceOperator(a), b, 300, 1e-9);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(relativeResidual(a, result.x, b), 1e-8);
}

TEST(Bicg, ZeroRhsIsTrivial)
{
    sparse::CsrMatrix a = dominantSystem(64, 3);
    SolveResult result =
        bicg(referenceOperator(a), std::vector<double>(64, 0.0));
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations, 0u);
}

TEST(Qmr, ConvergesMonotonically)
{
    sparse::CsrMatrix a = dominantSystem(400, 4);
    std::vector<double> b(a.rows, 1.0);
    SolveResult result = qmr(referenceOperator(a), b, 300, 1e-9);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(relativeResidual(a, result.x, b), 1e-7);
}

TEST(Solver, MendaOperatorMatchesReference)
{
    sparse::CsrMatrix a = dominantSystem(256, 5);
    std::vector<double> b(a.rows, 1.0);

    SolveResult host = bicg(referenceOperator(a), b, 200, 1e-8);

    core::SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = 2;
    config.pu.leaves = 16;
    MendaOperator menda_op(a, config);
    LinearOperator near = menda_op.op();
    SolveResult sim = bicg(near, b, 200, 1e-8);

    ASSERT_TRUE(host.converged);
    ASSERT_TRUE(sim.converged);
    for (Index i = 0; i < a.rows; ++i)
        EXPECT_NEAR(sim.x[i], host.x[i], 1e-4)
            << "solution differs at " << i;
    EXPECT_GT(menda_op.transposeSeconds(), 0.0);
    EXPECT_GT(menda_op.spmvSeconds(), 0.0);
}

TEST(Spmm, MatchesDenseProduct)
{
    sparse::CsrMatrix a = sparse::generateUniform(40, 30, 200, 6);
    sparse::CsrMatrix b = sparse::generateUniform(30, 50, 250, 7);
    sparse::CsrMatrix c = spmm(a, b);
    c.validate();
    // Dense verification.
    for (Index i = 0; i < a.rows; ++i) {
        std::vector<double> want(b.cols, 0.0);
        for (std::uint32_t ka = a.ptr[i]; ka < a.ptr[i + 1]; ++ka)
            for (std::uint32_t kb = b.ptr[a.idx[ka]];
                 kb < b.ptr[a.idx[ka] + 1]; ++kb)
                want[b.idx[kb]] +=
                    double(a.val[ka]) * double(b.val[kb]);
        std::vector<double> got(b.cols, 0.0);
        for (std::uint32_t k = c.ptr[i]; k < c.ptr[i + 1]; ++k)
            got[c.idx[k]] = c.val[k];
        for (Index j = 0; j < b.cols; ++j)
            ASSERT_NEAR(got[j], want[j], 1e-3) << i << "," << j;
    }
}

TEST(Spmm, NormalEquationsAreSymmetric)
{
    sparse::CsrMatrix a = sparse::generateUniform(60, 40, 300, 8);
    sparse::CscMatrix at_csc = sparse::transposeReference(a);
    sparse::CsrMatrix at = sparse::asCsrOfTranspose(at_csc);
    sparse::CsrMatrix ata = normalEquations(at, a);
    ata.validate();
    EXPECT_EQ(ata.rows, a.cols);
    EXPECT_EQ(ata.cols, a.cols);
    // Symmetry: AᵀA(i,j) == AᵀA(j,i).
    for (Index i = 0; i < ata.rows; ++i) {
        for (std::uint32_t k = ata.ptr[i]; k < ata.ptr[i + 1]; ++k) {
            const Index j = ata.idx[k];
            bool found = false;
            for (std::uint32_t k2 = ata.ptr[j]; k2 < ata.ptr[j + 1];
                 ++k2) {
                if (ata.idx[k2] == i) {
                    EXPECT_NEAR(ata.val[k], ata.val[k2], 1e-4);
                    found = true;
                }
            }
            EXPECT_TRUE(found) << "asymmetric sparsity at " << i << ","
                               << j;
        }
    }
    // Diagonal is non-negative (column norms squared).
    for (Index i = 0; i < ata.rows; ++i) {
        for (std::uint32_t k = ata.ptr[i]; k < ata.ptr[i + 1]; ++k) {
            if (ata.idx[k] == i) {
                EXPECT_GE(ata.val[k], 0.0f);
            }
        }
    }
}

TEST(Spmm, WorkMetricCountsPartialProducts)
{
    sparse::CooMatrix coo;
    coo.rows = coo.cols = 2;
    coo.row = {0, 0, 1};
    coo.col = {0, 1, 1};
    coo.val = {1, 1, 1};
    sparse::CsrMatrix a = sparse::cooToCsr(coo);
    // Row 0 of A has entries in cols {0,1} -> rows 0,1 of B (B=A):
    // work = len(row0)+len(row1) = 2+1; row 1 -> len(row1) = 1. Total 4.
    EXPECT_EQ(spmmWork(a, a), 4u);
}

TEST(Bicg, SingularSystemReportsBreakdownOrStalls)
{
    // A nilpotent-ish system with a zero row: BiCG cannot converge and
    // must terminate cleanly (breakdown or iteration cap), not hang.
    sparse::CooMatrix coo;
    coo.rows = coo.cols = 8;
    coo.row = {0, 1, 2};
    coo.col = {1, 2, 3};
    coo.val = {1.0f, 1.0f, 1.0f};
    sparse::CsrMatrix a = sparse::cooToCsr(coo);
    std::vector<double> b(8, 1.0);
    SolveResult result = bicg(referenceOperator(a), b, 50, 1e-10);
    EXPECT_FALSE(result.converged);
    EXPECT_LE(result.iterations, 50u);
}

TEST(Qmr, ResidualIsMonotonicallyNonIncreasing)
{
    // The point of QMR smoothing: re-running with increasing iteration
    // caps must give non-increasing residuals.
    sparse::CsrMatrix a = dominantSystem(200, 9);
    std::vector<double> b(a.rows, 1.0);
    LinearOperator op = referenceOperator(a);
    double last = 1e300;
    for (unsigned cap : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SolveResult r = qmr(op, b, cap, 1e-30);
        EXPECT_LE(r.residualNorm, last * (1.0 + 1e-9))
            << "cap " << cap;
        last = r.residualNorm;
    }
}

TEST(Spmm, EmptyAndIdentityCases)
{
    sparse::CsrMatrix empty;
    empty.rows = empty.cols = 4;
    empty.ptr.assign(5, 0);
    sparse::CsrMatrix c = spmm(empty, empty);
    EXPECT_EQ(c.nnz(), 0u);

    // Identity x A == A.
    sparse::CooMatrix icoo;
    icoo.rows = icoo.cols = 5;
    for (Index i = 0; i < 5; ++i) {
        icoo.row.push_back(i);
        icoo.col.push_back(i);
        icoo.val.push_back(1.0f);
    }
    sparse::CsrMatrix eye = sparse::cooToCsr(icoo);
    sparse::CsrMatrix a = sparse::generateUniform(5, 5, 10, 15);
    sparse::CsrMatrix prod = spmm(eye, a);
    EXPECT_EQ(prod.ptr, a.ptr);
    EXPECT_EQ(prod.idx, a.idx);
}
