/**
 * @file
 * Tests for the DDR4 timing model: address decode, timing constraints,
 * FRFCFS_PriorHit behaviour, bandwidth bounds, write draining, refresh,
 * and coalescing in the controller's read queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/address.hh"
#include "dram/controller.hh"
#include "sim/clock.hh"

using namespace menda;
using namespace menda::dram;

namespace
{

struct Harness
{
    DramConfig config;
    MemoryController ctrl;
    std::vector<mem::MemRequest> responses;

    explicit Harness(DramConfig cfg, bool coalesce = false)
        : config(cfg), ctrl("mem", cfg, coalesce)
    {
        ctrl.setResponseCallback([this](const mem::MemRequest &req) {
            responses.push_back(req);
        });
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            ctrl.tick();
    }

    Cycle
    runUntilIdle(Cycle limit = 1000000)
    {
        Cycle used = 0;
        while (!ctrl.idle() && used < limit) {
            ctrl.tick();
            ++used;
        }
        return used;
    }
};

DramConfig
quietConfig()
{
    DramConfig config = DramConfig::ddr4_2400r(1);
    config.refreshEnabled = false; // deterministic latency tests
    return config;
}

mem::MemRequest
read(Addr addr)
{
    mem::MemRequest req;
    req.addr = addr;
    return req;
}

mem::MemRequest
write(Addr addr)
{
    mem::MemRequest req;
    req.addr = addr;
    req.isWrite = true;
    return req;
}

} // namespace

TEST(Address, DecodeEncodeRoundTrip)
{
    DramConfig config = DramConfig::ddr4_2400r(4);
    AddressDecoder dec(config);
    for (Addr addr = 0; addr < (1ull << 30); addr += 64 * 12345 + 64) {
        DramCoord coord = dec.decode(addr);
        EXPECT_EQ(dec.encode(coord), blockAlign(addr) %
                                         config.totalBytes());
        EXPECT_LT(coord.rank, 4u);
        EXPECT_LT(coord.bankGroup, config.bankGroups);
        EXPECT_LT(coord.bank, config.banksPerGroup);
        EXPECT_LT(coord.row, config.rowsPerBank);
    }
}

TEST(Address, SequentialBlocksInterleaveBankGroups)
{
    // Back-to-back blocks must rotate bank groups (tCCD_S spacing) while
    // staying in the same row of each group (row-hit streaming).
    DramConfig config = DramConfig::ddr4_2400r(1);
    AddressDecoder dec(config);
    const unsigned groups = config.bankGroups;
    const unsigned blocks_per_row = config.rowBufferBytes / 64;
    for (unsigned b = 0; b < groups * blocks_per_row; ++b) {
        DramCoord coord = dec.decode(b * 64ull);
        EXPECT_EQ(coord.bankGroup, b % groups);
        EXPECT_EQ(coord.columnBlock, b / groups);
        EXPECT_EQ(coord.row, 0u);
        EXPECT_EQ(coord.bank, 0u);
    }
    // After all four groups' rows are consumed, the bank advances.
    DramCoord next = dec.decode(groups * blocks_per_row * 64ull);
    EXPECT_EQ(next.bank, 1u);
    EXPECT_EQ(next.row, 0u);
}

TEST(Controller, ColdReadLatencyIsActPlusRcdPlusClPlusBl)
{
    Harness h(quietConfig());
    ASSERT_TRUE(h.ctrl.enqueue(read(0)));
    Cycle used = h.runUntilIdle();
    ASSERT_EQ(h.responses.size(), 1u);
    // ACT at cycle ~0, RD at tRCD, data at +tCL+tBL, response delivered
    // the tick after it is ready.
    const Cycle expected = h.config.tRCD + h.config.tCL + h.config.tBL;
    EXPECT_GE(used, expected);
    EXPECT_LE(used, expected + 4);
}

TEST(Controller, RowHitsAreFasterThanConflicts)
{
    // Two reads to the same row vs two reads to different rows of the
    // same bank.
    Harness hit(quietConfig());
    AddressDecoder hit_dec(hit.config);
    ASSERT_TRUE(hit.ctrl.enqueue(read(0)));
    ASSERT_TRUE(hit.ctrl.enqueue(
        read(hit_dec.encode(DramCoord{0, 0, 0, 0, 1}))));
    Cycle hit_cycles = hit.runUntilIdle();
    EXPECT_EQ(hit.ctrl.activates(), 1u) << "second read must be a row hit";

    Harness conflict(quietConfig());
    AddressDecoder dec(conflict.config);
    DramCoord other{0, 0, 0, 1, 0}; // same bank, row 1
    ASSERT_TRUE(conflict.ctrl.enqueue(read(0)));
    ASSERT_TRUE(conflict.ctrl.enqueue(read(dec.encode(other))));
    Cycle conflict_cycles = conflict.runUntilIdle();
    EXPECT_EQ(conflict.ctrl.activates(), 2u);
    EXPECT_GT(conflict_cycles, hit_cycles);
}

TEST(Controller, PriorHitPolicyPrefersReadyRowHits)
{
    // Queue: [miss to bank1-row5, hit to open bank0-row0]. After the
    // first access opens bank0-row0, a subsequent hit should be served
    // even if an older miss is still waiting on its activate.
    Harness h(quietConfig());
    AddressDecoder dec(h.config);
    ASSERT_TRUE(h.ctrl.enqueue(read(0))); // opens bank0 row0
    h.run(60);                            // served
    ASSERT_EQ(h.responses.size(), 1u);

    DramCoord far{0, 1, 0, 5, 0};
    const Addr hit_addr = dec.encode(DramCoord{0, 0, 0, 0, 1});
    ASSERT_TRUE(h.ctrl.enqueue(read(dec.encode(far)))); // older miss
    ASSERT_TRUE(h.ctrl.enqueue(read(hit_addr)));        // younger hit
    h.runUntilIdle();
    ASSERT_EQ(h.responses.size(), 3u);
    // The younger row hit must have been served first.
    EXPECT_EQ(h.responses[1].addr, hit_addr);
    EXPECT_EQ(h.responses[2].addr, dec.encode(far));
}

TEST(Controller, StreamingBandwidthApproachesPeak)
{
    // Sequential reads: the data bus moves 64 B per tBL cycles when
    // saturated; expect at least 85% of peak over a long stream.
    Harness h(quietConfig());
    const unsigned n = 4000;
    Addr next = 0;
    unsigned sent = 0;
    Cycle cycles = 0;
    while (h.responses.size() < n) {
        if (sent < n && h.ctrl.enqueue(read(next))) {
            next += 64;
            ++sent;
        }
        h.ctrl.tick();
        ++cycles;
        ASSERT_LT(cycles, 200000u);
    }
    const double bytes = 64.0 * n;
    const double peak_bytes =
        64.0 / h.config.tBL * static_cast<double>(cycles);
    EXPECT_GT(bytes / peak_bytes, 0.85);
}

TEST(Controller, BandwidthNeverExceedsPeak)
{
    Harness h(quietConfig());
    const unsigned n = 1000;
    Addr next = 0;
    unsigned sent = 0;
    Cycle cycles = 0;
    while (h.responses.size() < n) {
        if (sent < n && h.ctrl.enqueue(read(next))) {
            next += 64;
            ++sent;
        }
        h.ctrl.tick();
        ++cycles;
        ASSERT_LT(cycles, 100000u);
    }
    EXPECT_LE(h.ctrl.busBusyCycles(), cycles);
    EXPECT_LE(64.0 * n, 64.0 / h.config.tBL * cycles * 1.0001);
}

TEST(Controller, WritesDrainAndFreeTheQueue)
{
    Harness h(quietConfig());
    unsigned accepted = 0;
    for (unsigned i = 0; i < h.config.writeQueueEntries; ++i)
        accepted += h.ctrl.enqueue(write(i * 64ull));
    EXPECT_EQ(accepted, h.config.writeQueueEntries);
    EXPECT_FALSE(h.ctrl.enqueue(write(1 << 20)));
    h.runUntilIdle();
    EXPECT_EQ(h.ctrl.writesServed(), accepted);
    EXPECT_TRUE(h.ctrl.enqueue(write(1 << 20)));
}

TEST(Controller, MixedReadWriteBothComplete)
{
    Harness h(quietConfig());
    unsigned reads = 0, writes = 0;
    Addr next = 0;
    Cycle cycles = 0;
    while (reads < 500 || writes < 500) {
        if (reads < 500 && h.ctrl.enqueue(read(next)))
            ++reads, next += 64;
        if (writes < 500 && h.ctrl.enqueue(write((1 << 22) + next)))
            ++writes;
        h.ctrl.tick();
        ASSERT_LT(++cycles, 200000u);
    }
    h.runUntilIdle();
    EXPECT_EQ(h.responses.size(), 500u);
    EXPECT_EQ(h.ctrl.writesServed(), 500u);
}

TEST(Controller, RefreshHappensPeriodically)
{
    DramConfig config = DramConfig::ddr4_2400r(1);
    ASSERT_TRUE(config.refreshEnabled);
    Harness h(config);
    h.run(config.tREFI * 4 + 100);
    EXPECT_GE(h.ctrl.refreshes(), 3u);
    EXPECT_LE(h.ctrl.refreshes(), 5u);
}

TEST(Controller, RefreshDoesNotLoseRequests)
{
    DramConfig config = DramConfig::ddr4_2400r(1);
    Harness h(config);
    unsigned sent = 0;
    Addr next = 0;
    Cycle cycles = 0;
    // Keep a trickle of reads flowing across several refresh windows.
    while (cycles < config.tREFI * 3) {
        if (cycles % 100 == 0 && h.ctrl.enqueue(read(next))) {
            ++sent;
            next += 4096;
        }
        h.ctrl.tick();
        ++cycles;
    }
    h.runUntilIdle();
    EXPECT_EQ(h.responses.size(), sent);
}

TEST(Controller, CoalescingMergesDuplicateReads)
{
    Harness h(quietConfig(), /*coalesce=*/true);
    ASSERT_TRUE(h.ctrl.enqueue(read(128)));
    ASSERT_TRUE(h.ctrl.enqueue(read(128)));
    ASSERT_TRUE(h.ctrl.enqueue(read(128)));
    h.runUntilIdle();
    EXPECT_EQ(h.ctrl.readsServed(), 1u);
    EXPECT_EQ(h.ctrl.readQueue().coalescedHits().value(), 2u);
    ASSERT_EQ(h.responses.size(), 1u);
    EXPECT_EQ(h.responses[0].coalesced, 2u);
}

TEST(Controller, TfawLimitsActivateBursts)
{
    // Five activates to different banks: the fifth must wait for tFAW.
    Harness h(quietConfig());
    AddressDecoder dec(h.config);
    for (unsigned i = 0; i < 5; ++i) {
        DramCoord coord{0, i % h.config.bankGroups,
                        i / h.config.bankGroups, 7, 0};
        ASSERT_TRUE(h.ctrl.enqueue(read(dec.encode(coord))));
    }
    Cycle used = h.runUntilIdle();
    EXPECT_EQ(h.ctrl.activates(), 5u);
    // Without tFAW, 5 ACTs at tRRDS spacing finish well before tFAW.
    EXPECT_GE(used, h.config.tFAW + h.config.tRCD + h.config.tCL);
}

TEST(Address, RowBufferContiguousMappingKeepsRowsTogether)
{
    DramConfig config = DramConfig::ddr4_2400r(1);
    config.mapping = AddressMapping::RowBufferContiguous;
    AddressDecoder dec(config);
    const unsigned blocks_per_row = config.rowBufferBytes / 64;
    DramCoord first = dec.decode(0);
    for (unsigned b = 1; b < blocks_per_row; ++b) {
        DramCoord coord = dec.decode(b * 64ull);
        EXPECT_EQ(coord.bankGroup, first.bankGroup);
        EXPECT_EQ(coord.row, first.row);
        EXPECT_EQ(coord.columnBlock, b);
    }
    // Round trip under the alternate policy too.
    for (Addr addr = 0; addr < (1ull << 28); addr += 64 * 9973)
        EXPECT_EQ(dec.encode(dec.decode(addr)), blockAlign(addr));
}

TEST(Controller, BankGroupInterleavingLiftsStreamingBandwidth)
{
    // The reason the default mapping exists: sequential reads under the
    // row-contiguous layout are tCCD_L-bound (<= tBL/tCCD_L = 67% of
    // peak on DDR4-2400); interleaved bank groups reach tCCD_S pacing.
    auto stream_cycles = [](AddressMapping mapping) {
        DramConfig config = DramConfig::ddr4_2400r(1);
        config.refreshEnabled = false;
        config.mapping = mapping;
        MemoryController ctrl("mem", config, false);
        std::uint64_t served = 0;
        ctrl.setResponseCallback(
            [&](const mem::MemRequest &) { ++served; });
        Addr next = 0;
        std::uint64_t sent = 0;
        Cycle cycles = 0;
        while (served < 3000) {
            if (sent < 3000) {
                mem::MemRequest req;
                req.addr = next;
                if (ctrl.enqueue(req)) {
                    next += 64;
                    ++sent;
                }
            }
            ctrl.tick();
            ++cycles;
        }
        return cycles;
    };
    const Cycle interleaved =
        stream_cycles(AddressMapping::BankGroupInterleaved);
    const Cycle contiguous =
        stream_cycles(AddressMapping::RowBufferContiguous);
    EXPECT_GT(contiguous, interleaved * 1.3);
}
