/**
 * @file
 * Tests for host-side parallel simulation: the ParallelRunner fork/join
 * primitive and the bit-identity guarantee between sequential
 * (single-scheduler), single-threaded-sharded, and multi-threaded-sharded
 * simulation of a MeNDA system (see DESIGN.md "Host-side parallel
 * simulation").
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "menda/run_report.hh"
#include "menda/system.hh"
#include "obs/trace.hh"
#include "sim/parallel.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

namespace
{

SystemConfig
smallSystem(unsigned pus, unsigned leaves, unsigned host_threads)
{
    SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = pus;
    config.pu.leaves = leaves;
    config.hostThreads = host_threads;
    return config;
}

/** Every counter a RunResult carries, compared exactly. */
void
expectIdenticalRun(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.puCycles, b.puCycles);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.readBlocks, b.readBlocks);
    EXPECT_EQ(a.writeBlocks, b.writeBlocks);
    EXPECT_EQ(a.coalescedRequests, b.coalescedRequests);
    EXPECT_EQ(a.rowConflicts, b.rowConflicts);
    EXPECT_EQ(a.activates, b.activates);
    EXPECT_EQ(a.busUtilization, b.busUtilization);
}

} // namespace

TEST(ParallelRunner, RunsEveryJobExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 7u}) {
        ParallelRunner pool(threads);
        std::vector<std::atomic<unsigned>> hits(103);
        pool.run(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "job " << i;
        EXPECT_EQ(pool.jobsExecuted(), hits.size());
    }
}

TEST(ParallelRunner, ZeroThreadsResolvesToHardwareConcurrency)
{
    ParallelRunner pool(0);
    EXPECT_GE(pool.threads(), 1u);
}

TEST(ParallelRunner, MoreThreadsThanJobsIsFine)
{
    ParallelRunner pool(16);
    std::atomic<unsigned> total{0};
    pool.run(3, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelRunner, RethrowsWorkerException)
{
    ParallelRunner pool(4);
    std::atomic<unsigned> completed{0};
    EXPECT_THROW(pool.run(32,
                          [&](std::size_t i) {
                              if (i == 17)
                                  throw std::runtime_error("shard 17");
                              completed.fetch_add(1);
                          }),
                 std::runtime_error);
    EXPECT_EQ(completed.load(), 31u) << "other jobs still complete";
}

TEST(ParallelRunner, ShardRngIsThreadAssignmentIndependent)
{
    // The per-shard RNG stream depends only on (seed, shard), so draws
    // collected under any thread count are identical.
    auto draws = [](unsigned threads) {
        ParallelRunner pool(threads);
        std::vector<std::uint64_t> out(64);
        pool.run(out.size(), [&](std::size_t i) {
            Rng rng = shardRng(12345, i);
            out[i] = rng.next() ^ rng.below(1000);
        });
        return out;
    };
    EXPECT_EQ(draws(1), draws(8));
}

TEST(ParallelSim, TransposeBitIdenticalAcrossModes)
{
    // The core guarantee: sequential single-scheduler (threads=1),
    // sharded on one pool thread, and sharded on four threads produce
    // identical outputs, counters, and simulated timing.
    sparse::CsrMatrix a = sparse::generateRmat(1024, 12000, 0.1, 0.2,
                                               0.3, 71);
    MendaSystem sequential(smallSystem(4, 32, 1));
    MendaSystem parallel4(smallSystem(4, 32, 4));
    TransposeResult r_seq = sequential.transpose(a);
    TransposeResult r_par = parallel4.transpose(a);

    expectIdenticalRun(r_seq, r_par);
    EXPECT_EQ(r_seq.csc.ptr, r_par.csc.ptr);
    EXPECT_EQ(r_seq.csc.idx, r_par.csc.idx);
    EXPECT_EQ(r_seq.csc.val, r_par.csc.val);
    EXPECT_EQ(r_seq.csc, sparse::transposeReference(a));

    // Per-PU iteration stats must match shard for shard as well.
    ASSERT_EQ(sequential.lastIterationStats().size(),
              parallel4.lastIterationStats().size());
    for (std::size_t p = 0; p < sequential.lastIterationStats().size();
         ++p) {
        const auto &seq_st = sequential.lastIterationStats()[p];
        const auto &par_st = parallel4.lastIterationStats()[p];
        ASSERT_EQ(seq_st.size(), par_st.size()) << "pu " << p;
        for (std::size_t it = 0; it < seq_st.size(); ++it) {
            EXPECT_EQ(seq_st[it].cycles, par_st[it].cycles);
            EXPECT_EQ(seq_st[it].readBlocks, par_st[it].readBlocks);
            EXPECT_EQ(seq_st[it].writeBlocks, par_st[it].writeBlocks);
            EXPECT_EQ(seq_st[it].coalescedRequests,
                      par_st[it].coalescedRequests);
        }
    }
}

TEST(ParallelSim, SpmvBitIdenticalAcrossModes)
{
    sparse::CsrMatrix a = sparse::generateRmat(512, 7000, 0.1, 0.2, 0.3,
                                               73);
    std::vector<Value> x(a.cols);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>((i % 17) - 8) / 4.0f;

    MendaSystem sequential(smallSystem(4, 16, 1));
    MendaSystem parallel4(smallSystem(4, 16, 4));
    SpmvResult r_seq = sequential.spmv(a, x);
    SpmvResult r_par = parallel4.spmv(a, x);

    expectIdenticalRun(r_seq, r_par);
    ASSERT_EQ(r_seq.y.size(), r_par.y.size());
    for (std::size_t r = 0; r < r_seq.y.size(); ++r)
        EXPECT_EQ(r_seq.y[r], r_par.y[r]) << "row " << r;
}

TEST(ParallelSim, RepeatedParallelRunsAreDeterministic)
{
    // Thread scheduling must not leak into results: two parallel runs of
    // the same input are bit-identical to each other.
    sparse::CsrMatrix a = sparse::generateUniform(2048, 2048, 30000, 75);
    SystemConfig config = smallSystem(8, 32, 4);
    MendaSystem first(config), second(config);
    TransposeResult r1 = first.transpose(a);
    TransposeResult r2 = second.transpose(a);
    expectIdenticalRun(r1, r2);
    EXPECT_EQ(r1.csc, r2.csc);
}

TEST(ParallelSim, TraceBytesIdenticalAcrossThreadCounts)
{
    // Observed runs force the sharded path even at hostThreads == 1, so
    // the serialized trace must be byte-for-byte identical no matter how
    // many host threads simulate the shards.
    sparse::CsrMatrix a = sparse::generateRmat(512, 6000, 0.1, 0.2, 0.3,
                                               81);
    auto traceOf = [&](unsigned threads) {
        MendaSystem sys(smallSystem(4, 16, threads));
        obs::Tracer tracer(std::size_t{1} << 18);
        sys.setTracer(&tracer);
        sys.transpose(a);
        EXPECT_EQ(tracer.droppedEvents(), 0u);
        EXPECT_GT(tracer.eventCount(), 0u);
        std::ostringstream os;
        tracer.writeChromeTrace(os);
        return os.str();
    };
    const std::string one = traceOf(1);
    EXPECT_EQ(one, traceOf(2));
    EXPECT_EQ(one, traceOf(4));
}

TEST(ParallelSim, ReportBytesIdenticalAcrossThreadCounts)
{
    // Same guarantee for the run report, including the sampled series
    // and merged histograms (wall metrics excluded: built with
    // wall_seconds = 0 here).
    sparse::CsrMatrix a = sparse::generateUniform(1024, 1024, 15000, 83);
    auto reportOf = [&](unsigned threads) {
        SystemConfig config = smallSystem(4, 32, threads);
        config.samplePeriod = 256;
        MendaSystem sys(config);
        TransposeResult result = sys.transpose(a);
        EXPECT_FALSE(result.treeOccupancy.values().empty());
        EXPECT_FALSE(result.readQueueDepth.values().empty());
        return core::makeRunReport("identity", "transpose", config,
                                   result, a.nnz())
            .toJson();
    };
    const std::string one = reportOf(1);
    EXPECT_EQ(one, reportOf(3));
}

TEST(ParallelSim, ObservedSequentialMatchesUnobservedCounters)
{
    // Forcing the sharded path for observed runs must not change any
    // simulated outcome relative to a plain run.
    sparse::CsrMatrix a = sparse::generateRmat(512, 6000, 0.1, 0.2, 0.3,
                                               85);
    MendaSystem plain(smallSystem(4, 16, 1));
    TransposeResult r_plain = plain.transpose(a);

    MendaSystem observed(smallSystem(4, 16, 1));
    obs::Tracer tracer(std::size_t{1} << 18);
    observed.setTracer(&tracer);
    TransposeResult r_obs = observed.transpose(a);

    expectIdenticalRun(r_plain, r_obs);
    EXPECT_EQ(r_plain.csc, r_obs.csc);
}

TEST(ParallelSim, AutoThreadCountWorks)
{
    // hostThreads = 0 resolves to the hardware concurrency.
    sparse::CsrMatrix a = sparse::generateUniform(512, 512, 6000, 77);
    MendaSystem sequential(smallSystem(2, 16, 1));
    MendaSystem automatic(smallSystem(2, 16, 0));
    TransposeResult r_seq = sequential.transpose(a);
    TransposeResult r_auto = automatic.transpose(a);
    expectIdenticalRun(r_seq, r_auto);
    EXPECT_EQ(r_seq.csc, r_auto.csc);
}
