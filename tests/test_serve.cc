/**
 * @file
 * menda_serve robustness and behavior tests (DESIGN.md §13).
 *
 * Covers the wire framing (truncated and oversized frames, malformed
 * JSON), admission control (queue-full and per-tenant rejection with
 * typed error codes), the residency cache (hits are bitwise-identical,
 * evictions keep results correct), scheduler policy (fair preemption vs
 * FIFO head-of-line blocking on the virtual clock), mid-job client
 * disconnects, and determinism of the served latency metrics. Socket
 * tests drive a real SocketServer on a Unix socket from a second
 * thread; everything else exercises ServeCore in-process.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "baselines/spgemm_cpu.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "serve/protocol.hh"
#include "serve/serve_core.hh"
#include "serve/socket_server.hh"
#include "sparse/format.hh"
#include "sparse/generate.hh"

namespace
{

using namespace menda;
namespace json = obs::json;
using serve::FrameReader;
using serve::ServeConfig;
using serve::ServeCore;

/** A small machine: @p ranks ranks on one DIMM, detailed fidelity. */
ServeConfig
smallConfig(unsigned ranks)
{
    ServeConfig config;
    config.system.channels = 1;
    config.system.dimmsPerChannel = 1;
    config.system.ranksPerDimm = ranks;
    config.system.hostThreads = 1;
    config.system.progressEveryCycles = 0;
    config.ranksPerJob = 1;
    config.sliceCycles = 2'000;
    return config;
}

json::Value
submitRequest(const std::string &kernel, const sparse::CsrMatrix &a,
              const std::string &tenant = "t0", unsigned pus = 1)
{
    json::Object o;
    o["schema"] = json::Value(serve::kSchema);
    o["type"] = json::Value("submit");
    o["tenant"] = json::Value(tenant);
    o["kernel"] = json::Value(kernel);
    o["pus"] = json::Value(std::uint64_t(pus));
    o["a"] = serve::csrToJson(a);
    if (kernel == "spmv") {
        std::vector<Value> x(a.cols);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<Value>((i % 13) + 1) / 4.0f;
        o["x"] = serve::valueVectorToJson(x);
    }
    if (kernel == "spgemm")
        o["b"] = serve::csrToJson(
            sparse::generateUniform(a.cols, a.rows, a.nnz() / 2, 99));
    return json::Value(std::move(o));
}

/** Copy @p request with @p key set to @p value (Value is immutable). */
json::Value
withField(const json::Value &request, const std::string &key,
          json::Value value)
{
    json::Object o = request.asObject();
    o[key] = std::move(value);
    return json::Value(std::move(o));
}

json::Value
statusRequest(std::uint64_t id)
{
    json::Object o;
    o["type"] = json::Value("status");
    o["id"] = json::Value(id);
    return json::Value(std::move(o));
}

std::string
errorCode(const json::Value &response)
{
    std::string code;
    EXPECT_TRUE(serve::isError(response, &code));
    return code;
}

std::uint64_t
submittedId(const json::Value &response)
{
    EXPECT_EQ(response.at("type").asString(), "submitted")
        << response.serialize();
    return static_cast<std::uint64_t>(response.at("id").asNumber());
}

// --- framing -----------------------------------------------------------

TEST(FrameReader, TwoFramesInOneFeed)
{
    const std::string wire =
        serve::encodeFrame("alpha") + serve::encodeFrame("beta");
    FrameReader reader;
    reader.feed(wire.data(), wire.size());

    std::string payload, error;
    ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::Frame);
    EXPECT_EQ(payload, "alpha");
    ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::Frame);
    EXPECT_EQ(payload, "beta");
    EXPECT_EQ(reader.next(&payload, &error),
              FrameReader::Status::NeedMore);
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(FrameReader, TruncatedFrameNeedsMore)
{
    const std::string wire = serve::encodeFrame("payload-body");
    FrameReader reader;
    // Header claims 12 bytes; only half the frame has arrived.
    reader.feed(wire.data(), 6);

    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error),
              FrameReader::Status::NeedMore);
    EXPECT_GT(reader.pendingBytes(), 0u);

    reader.feed(wire.data() + 6, wire.size() - 6);
    ASSERT_EQ(reader.next(&payload, &error), FrameReader::Status::Frame);
    EXPECT_EQ(payload, "payload-body");
}

TEST(FrameReader, OversizedFramePoisonsStream)
{
    FrameReader reader(16);
    const std::string wire = serve::encodeFrame(std::string(64, 'x'));
    reader.feed(wire.data(), wire.size());

    std::string payload, error;
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::Error);
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(reader.badFrameLength(), 64u);
    EXPECT_EQ(reader.maxFrameBytes(), 16u);

    // Sticky: even a well-formed follow-up frame must not decode.
    const std::string ok = serve::encodeFrame("ok");
    reader.feed(ok.data(), ok.size());
    EXPECT_EQ(reader.next(&payload, &error), FrameReader::Status::Error);
}

TEST(Protocol, CsrRoundTripIsExact)
{
    const sparse::CsrMatrix a = sparse::generateUniform(17, 23, 91, 7);
    const sparse::CsrMatrix back = serve::csrFromJson(serve::csrToJson(a));
    EXPECT_TRUE(a == back);
}

// --- admission control -------------------------------------------------

TEST(Admission, MalformedRequestsGetTypedErrors)
{
    ServeCore core(smallConfig(2));

    EXPECT_EQ(errorCode(core.handle(json::parse("[1,2]"))), "badRequest");
    EXPECT_EQ(errorCode(core.handle(json::parse(
                  "{\"schema\":\"other/9\",\"type\":\"stats\"}"))),
              "badRequest");
    EXPECT_EQ(errorCode(core.handle(json::parse("{\"type\":\"nope\"}"))),
              "badRequest");
    EXPECT_EQ(errorCode(core.handle(json::parse(
                  "{\"type\":\"submit\",\"kernel\":\"lu\"}"))),
              "badRequest");
    EXPECT_EQ(errorCode(core.handle(statusRequest(404))), "unknownJob");

    // SpMV with a mis-sized x vector must bounce, not throw.
    std::vector<Value> shortX(3, 1.0f);
    const json::Value bad = withField(
        submitRequest("spmv", sparse::generateUniform(8, 8, 16, 1)),
        "x", serve::valueVectorToJson(shortX));
    EXPECT_EQ(errorCode(core.handle(bad)), "badRequest");

    EXPECT_TRUE(core.idle()); // nothing was admitted
}

TEST(Admission, QueueFullRejectsWithReason)
{
    ServeConfig config = smallConfig(1);
    config.queueDepth = 2;
    config.tenantInFlight = 100;
    ServeCore core(config);

    const sparse::CsrMatrix a = sparse::generateUniform(12, 12, 40, 3);
    submittedId(core.handle(submitRequest("transpose", a, "t0")));
    submittedId(core.handle(submitRequest("transpose", a, "t1")));
    const json::Value third =
        core.handle(submitRequest("transpose", a, "t2"));
    EXPECT_EQ(errorCode(third), "queueFull");

    const json::Value stats = core.handle(json::parse(
        "{\"type\":\"stats\"}"));
    EXPECT_EQ(stats.at("jobs").at("rejected").asNumber(), 1.0);
    core.runUntilIdle();
}

TEST(Admission, TenantCapIsPerTenant)
{
    ServeConfig config = smallConfig(1);
    config.tenantInFlight = 2;
    ServeCore core(config);

    const sparse::CsrMatrix a = sparse::generateUniform(12, 12, 40, 3);
    submittedId(core.handle(submitRequest("transpose", a, "hog")));
    submittedId(core.handle(submitRequest("transpose", a, "hog")));
    EXPECT_EQ(errorCode(core.handle(submitRequest("transpose", a, "hog"))),
              "tenantBusy");
    // Another tenant is unaffected by the hog's cap.
    submittedId(core.handle(submitRequest("transpose", a, "polite")));
    core.runUntilIdle();
}

// --- residency cache ---------------------------------------------------

TEST(Cache, RepeatHitIsBitwiseIdentical)
{
    ServeCore core(smallConfig(2));
    const sparse::CsrMatrix a = sparse::generateUniform(24, 20, 120, 11);

    const json::Value first = core.handle(submitRequest("transpose", a));
    const std::uint64_t id1 = submittedId(first);
    EXPECT_FALSE(first.at("cacheHit").asBool());
    core.runUntilIdle();

    const json::Value second = core.handle(submitRequest("transpose", a));
    const std::uint64_t id2 = submittedId(second);
    EXPECT_TRUE(second.at("cacheHit").asBool());
    core.runUntilIdle();

    const json::Value r1 = core.jobResponse(id1);
    const json::Value r2 = core.jobResponse(id2);
    EXPECT_EQ(r1.at("state").asString(), "done");
    EXPECT_EQ(r1.at("csc").serialize(), r2.at("csc").serialize());

    EXPECT_EQ(core.cacheStats().hits, 1u);
    EXPECT_EQ(core.cacheStats().misses, 1u);

    // And the output is the true transpose.
    const sparse::CscMatrix got = serve::cscFromJson(r1.at("csc"));
    EXPECT_TRUE(got == sparse::transposeReference(a));
}

TEST(Cache, TinyBudgetEvictsButStaysCorrect)
{
    ServeConfig config = smallConfig(2);
    config.cacheBudgetBytes = 1; // nothing fits; every plan evicts
    ServeCore core(config);

    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        const sparse::CsrMatrix a =
            sparse::generateUniform(16, 16, 64, 100 + seed);
        const std::uint64_t id =
            submittedId(core.handle(submitRequest("transpose", a)));
        core.runUntilIdle();
        const json::Value r = core.jobResponse(id);
        ASSERT_EQ(r.at("state").asString(), "done");
        EXPECT_TRUE(serve::cscFromJson(r.at("csc")) ==
                    sparse::transposeReference(a));
    }
    EXPECT_GE(core.cacheStats().evictions, 3u);
    EXPECT_EQ(core.cacheStats().hits, 0u);
}

// --- kernels end to end ------------------------------------------------

TEST(Jobs, AllKernelsMatchCpuReferences)
{
    ServeCore core(smallConfig(2));
    const sparse::CsrMatrix a = sparse::generateUniform(20, 16, 100, 21);

    const std::uint64_t tid =
        submittedId(core.handle(submitRequest("transpose", a)));
    const json::Value spmvReq = submitRequest("spmv", a);
    const std::uint64_t sid = submittedId(core.handle(spmvReq));
    const json::Value spgemmReq = submitRequest("spgemm", a);
    const std::uint64_t gid = submittedId(core.handle(spgemmReq));
    core.runUntilIdle();

    const json::Value tr = core.jobResponse(tid);
    ASSERT_EQ(tr.at("state").asString(), "done");
    EXPECT_TRUE(serve::cscFromJson(tr.at("csc")) ==
                sparse::transposeReference(a));

    const json::Value sr = core.jobResponse(sid);
    ASSERT_EQ(sr.at("state").asString(), "done");
    const std::vector<double> y =
        serve::doubleVectorFromJson(sr.at("y"));
    const std::vector<double> want = sparse::spmvReference(
        a, serve::valueVectorFromJson(spmvReq.at("x")));
    ASSERT_EQ(y.size(), want.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y[i], want[i], 1e-3 * (std::abs(want[i]) + 1.0));

    const json::Value gr = core.jobResponse(gid);
    ASSERT_EQ(gr.at("state").asString(), "done");
    EXPECT_TRUE(serve::csrFromJson(gr.at("c")) ==
                baselines::spgemmHeapMerge(
                    a, serve::csrFromJson(spgemmReq.at("b"))));
}

// --- scheduling --------------------------------------------------------

/** Submit one long then one short job; return (long, short) total
 *  latency in virtual cycles under @p policy. */
std::pair<Cycle, Cycle>
longShortLatencies(serve::SchedPolicy policy)
{
    ServeConfig config = smallConfig(1);
    config.policy = policy;
    ServeCore core(config);

    const sparse::CsrMatrix big = sparse::generateUniform(64, 64, 2048, 5);
    const sparse::CsrMatrix small = sparse::generateUniform(8, 8, 16, 6);
    const std::uint64_t longId =
        submittedId(core.handle(submitRequest("transpose", big, "a")));
    const std::uint64_t shortId =
        submittedId(core.handle(submitRequest("transpose", small, "b")));
    core.runUntilIdle();

    const auto total = [&](std::uint64_t id) {
        const json::Value r = core.jobResponse(id);
        EXPECT_EQ(r.at("state").asString(), "done");
        return static_cast<Cycle>(r.at("totalCycles").asNumber());
    };
    return {total(longId), total(shortId)};
}

TEST(Scheduler, FairPreemptsFifoBlocks)
{
    const auto [fairLong, fairShort] =
        longShortLatencies(serve::SchedPolicy::Fair);
    const auto [fifoLong, fifoShort] =
        longShortLatencies(serve::SchedPolicy::Fifo);

    // FIFO: the short job sits behind the long one, so its total
    // latency exceeds the long job's service time. Fair: the short job
    // interleaves and finishes well before the long job.
    EXPECT_GE(fifoShort, fifoLong);
    EXPECT_LT(fairShort, fairLong);
    EXPECT_LT(fairShort, fifoShort);
}

TEST(Scheduler, VirtualLatenciesAreDeterministic)
{
    const auto run = [] {
        ServeConfig config = smallConfig(2);
        ServeCore core(config);
        const sparse::CsrMatrix a =
            sparse::generateUniform(24, 24, 160, 77);
        for (int i = 0; i < 4; ++i)
            core.handle(submitRequest(
                i % 2 ? "spmv" : "transpose", a, i % 2 ? "t1" : "t0"));
        core.runUntilIdle();
        return core.statsJson().serialize();
    };
    EXPECT_EQ(run(), run());
}

// --- observability -----------------------------------------------------

/** One run's observability artifacts, for byte-level comparison. */
struct ObsArtifacts
{
    std::string journal;
    std::string trace;
    std::string prometheus;
    std::string stats;
};

/**
 * A deterministic mixed workload that touches every journal event
 * type: a tenant-cap rejection, cache evictions under a tiny budget, a
 * mid-flight cancellation, and several SLO-window rollovers.
 */
ObsArtifacts
observedWorkload(serve::SchedPolicy policy, unsigned host_threads,
                 bool observability = true)
{
    ServeConfig config = smallConfig(2);
    config.system.hostThreads = host_threads;
    config.policy = policy;
    config.tenantInFlight = 2;
    config.windowCycles = 4'000; // two slices: several rollovers
    config.cacheBudgetBytes = 1 << 12; // tiny: every plan evicts
    config.observability = observability;
    ServeCore core(config);

    const sparse::CsrMatrix small =
        sparse::generateUniform(24, 24, 160, 5);
    const sparse::CsrMatrix big =
        sparse::generateUniform(64, 64, 2048, 6);

    submittedId(core.handle(submitRequest("transpose", big, "t0")));
    submittedId(core.handle(submitRequest("spmv", small, "t0")));
    // Third in-flight job for t0 trips the tenant cap -> "reject".
    EXPECT_EQ(errorCode(core.handle(submitRequest("transpose", small,
                                                  "t0"))),
              "tenantBusy");
    submittedId(core.handle(submitRequest("transpose", small, "t1")));
    // Owner 5's job is cancelled mid-flight -> "cancel".
    submittedId(
        core.handle(submitRequest("spgemm", small, "t1"), /*owner=*/5));
    core.pump();
    core.cancelOwner(5);
    core.runUntilIdle();

    ObsArtifacts artifacts;
    artifacts.journal = core.journalJsonl();
    artifacts.trace = core.jobTraceJson();
    artifacts.prometheus = core.prometheusText();
    artifacts.stats = core.statsJson().serialize();
    return artifacts;
}

TEST(Observability, ArtifactsAreByteIdenticalAcrossThreadsAndReruns)
{
    for (const auto policy :
         {serve::SchedPolicy::Fair, serve::SchedPolicy::Fifo}) {
        const ObsArtifacts one = observedWorkload(policy, 1);
        const ObsArtifacts rerun = observedWorkload(policy, 1);
        const ObsArtifacts threaded = observedWorkload(policy, 4);

        // The workload must actually exercise the journal...
        EXPECT_NE(one.journal.find("\"type\":\"reject\""),
                  std::string::npos);
        EXPECT_NE(one.journal.find("\"type\":\"evict\""),
                  std::string::npos);
        EXPECT_NE(one.journal.find("\"type\":\"cancel\""),
                  std::string::npos);
        EXPECT_NE(one.journal.find("\"type\":\"window\""),
                  std::string::npos);
        EXPECT_FALSE(one.trace.empty());

        // ...and every artifact must be byte-stable across re-runs and
        // host thread counts (all timestamps are virtual cycles).
        EXPECT_EQ(one.journal, rerun.journal);
        EXPECT_EQ(one.trace, rerun.trace);
        EXPECT_EQ(one.prometheus, rerun.prometheus);
        EXPECT_EQ(one.stats, rerun.stats);
        EXPECT_EQ(one.journal, threaded.journal);
        EXPECT_EQ(one.trace, threaded.trace);
        EXPECT_EQ(one.prometheus, threaded.prometheus);
        EXPECT_EQ(one.stats, threaded.stats);
    }
}

TEST(Observability, DisablingItNeverChangesTheSchedule)
{
    for (const auto policy :
         {serve::SchedPolicy::Fair, serve::SchedPolicy::Fifo}) {
        const ObsArtifacts on = observedWorkload(policy, 1, true);
        const ObsArtifacts off = observedWorkload(policy, 1, false);
        EXPECT_EQ(on.stats, off.stats);
        EXPECT_TRUE(off.journal.empty());
        EXPECT_TRUE(off.trace.empty());
    }
}

TEST(Observability, MetricsVerbExposesRollingPercentiles)
{
    ServeConfig config = smallConfig(2);
    config.windowCycles = 10'000;
    ServeCore core(config);
    const sparse::CsrMatrix a = sparse::generateUniform(24, 24, 160, 7);
    for (int i = 0; i < 4; ++i)
        core.handle(submitRequest("transpose", a, "t0"));
    core.runUntilIdle();

    const json::Value r =
        core.handle(json::parse("{\"type\":\"metrics\"}"));
    ASSERT_EQ(r.at("type").asString(), "metrics");
    const std::vector<obs::MetricFamily> families =
        obs::metricsFromJson(r.at("families"));

    bool sawQuantile = false;
    for (const obs::MetricFamily &family : families) {
        if (family.name != "menda_serve_queue_wait_cycles")
            continue;
        for (const obs::MetricSample &s : family.samples) {
            EXPECT_EQ(s.labels.at("tenant"), "t0");
            if (s.labels.at("quantile") == "0.99")
                sawQuantile = true;
        }
    }
    EXPECT_TRUE(sawQuantile);

    // format=prometheus returns the rendered text instead.
    const json::Value p = core.handle(json::parse(
        "{\"type\":\"metrics\",\"format\":\"prometheus\"}"));
    EXPECT_NE(p.at("text").asString().find(
                  "menda_serve_queue_wait_cycles{"),
              std::string::npos);
    EXPECT_EQ(p.at("text").asString(), core.prometheusText());
}

TEST(Observability, StatsStreamDrainsIncrementally)
{
    ServeConfig config = smallConfig(1);
    config.tenantInFlight = 1;
    ServeCore core(config);
    const sparse::CsrMatrix a = sparse::generateUniform(16, 16, 64, 3);

    submittedId(core.handle(submitRequest("transpose", a, "t0")));
    EXPECT_EQ(errorCode(core.handle(submitRequest("transpose", a,
                                                  "t0"))),
              "tenantBusy");

    const json::Value first = core.handle(
        json::parse("{\"type\":\"stats.stream\",\"afterSeq\":0}"));
    ASSERT_EQ(first.at("type").asString(), "journal");
    EXPECT_EQ(first.at("dropped").asNumber(), 0.0);
    const std::uint64_t next = static_cast<std::uint64_t>(
        first.at("nextSeq").asNumber());
    EXPECT_GE(next, 1u);
    EXPECT_NE(first.at("jsonl").asString().find("\"type\":\"reject\""),
              std::string::npos);

    // A drain from the cursor returns nothing new...
    json::Object q;
    q["type"] = json::Value("stats.stream");
    q["afterSeq"] = json::Value(next);
    const json::Value empty = core.handle(json::Value(q));
    EXPECT_TRUE(empty.at("jsonl").asString().empty());

    // ...until another event lands; then only the new event comes back.
    EXPECT_EQ(errorCode(core.handle(submitRequest("transpose", a,
                                                  "t0"))),
              "tenantBusy");
    const json::Value delta = core.handle(json::Value(std::move(q)));
    const std::string &jsonl = delta.at("jsonl").asString();
    EXPECT_NE(jsonl.find("\"seq\":" + std::to_string(next)),
              std::string::npos);
    EXPECT_EQ(jsonl.find("\"seq\":0,"), std::string::npos);
}

// --- cancellation ------------------------------------------------------

TEST(Cancel, OwnerDisconnectCancelsOnlyTheirJobs)
{
    ServeConfig config = smallConfig(2);
    config.sliceCycles = 100; // keep the jobs mid-flight across pumps
    ServeCore core(config);
    const sparse::CsrMatrix a = sparse::generateUniform(32, 32, 512, 9);

    const std::uint64_t mine =
        submittedId(core.handle(submitRequest("transpose", a, "t0"), 7));
    const std::uint64_t theirs =
        submittedId(core.handle(submitRequest("transpose", a, "t1"), 8));
    core.pump(); // both mid-flight

    core.cancelOwner(7);
    const json::Value r = core.jobResponse(mine);
    EXPECT_EQ(r.at("state").asString(), "cancelled");
    EXPECT_NE(r.at("error").asString().find("disconnected"),
              std::string::npos);

    core.runUntilIdle();
    EXPECT_EQ(core.jobResponse(theirs).at("state").asString(), "done");
}

// --- socket transport --------------------------------------------------

/** A SocketServer on a Unix socket in the CWD, served from a thread. */
class ServerFixture
{
  public:
    explicit ServerFixture(ServeConfig config = smallConfig(2),
                           std::uint32_t max_frame =
                               serve::kDefaultMaxFrameBytes)
        : core_(config)
    {
        path_ = "menda_serve_test_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(counter_++) + ".sock";
        serve::ServerOptions options;
        options.unixPath = path_;
        options.maxFrameBytes = max_frame;
        server_ = std::make_unique<serve::SocketServer>(core_, options);
        thread_ = std::thread([this] { server_->run(); });
    }

    ~ServerFixture()
    {
        if (thread_.joinable()) {
            shutdown();
            thread_.join();
        }
        std::remove(path_.c_str());
    }

    serve::Client connect() { return serve::Client::connectUnix(path_); }

    void
    shutdown()
    {
        try {
            serve::Client client = connect();
            client.call(json::parse("{\"type\":\"shutdown\"}"));
        } catch (const std::exception &) {
            // Server already stopping; run() still exits on its own.
        }
    }

  private:
    static int counter_;
    ServeCore core_;
    std::string path_;
    std::unique_ptr<serve::SocketServer> server_;
    std::thread thread_;
};

int ServerFixture::counter_ = 0;

TEST(Socket, WaitSubmitReturnsFinishedJob)
{
    ServerFixture fixture;
    serve::Client client = fixture.connect();

    const sparse::CsrMatrix a = sparse::generateUniform(16, 12, 60, 31);
    const json::Value request = withField(
        submitRequest("transpose", a), "wait", json::Value(true));
    const json::Value response = client.call(request);
    ASSERT_EQ(response.at("type").asString(), "jobStatus")
        << response.serialize();
    EXPECT_EQ(response.at("state").asString(), "done");
    EXPECT_TRUE(serve::cscFromJson(response.at("csc")) ==
                sparse::transposeReference(a));

    const json::Value stats =
        client.call(json::parse("{\"type\":\"stats\"}"));
    EXPECT_EQ(stats.at("jobs").at("completed").asNumber(), 1.0);
}

TEST(Socket, TruncatedFrameThenDisconnectIsHarmless)
{
    ServerFixture fixture;
    {
        serve::Client rude = fixture.connect();
        // Header promises 1000 bytes; send 10 and vanish.
        std::string wire = serve::encodeFrame(std::string(1000, 'z'));
        rude.sendRaw(wire.substr(0, 14));
        rude.closeNow();
    }
    // The server must still serve a well-behaved client.
    serve::Client client = fixture.connect();
    const json::Value stats =
        client.call(json::parse("{\"type\":\"stats\"}"));
    EXPECT_EQ(stats.at("type").asString(), "stats");
}

TEST(Socket, OversizedFrameGetsTypedErrorThenClose)
{
    ServerFixture fixture(smallConfig(2), /*max_frame=*/256);
    serve::Client client = fixture.connect();

    client.sendRaw(serve::encodeFrame(std::string(4096, 'x')));
    const json::Value response = client.recv();
    std::string code;
    ASSERT_TRUE(serve::isError(response, &code));
    EXPECT_EQ(code, "badFrame");
    // The typed payload names the offending length so a client can log
    // which frame blew the limit without parsing the prose message.
    EXPECT_EQ(response.at("frameLength").asNumber(), 4096.0);
    EXPECT_EQ(response.at("maxFrameBytes").asNumber(), 256.0);
    // The poisoned connection is closed after the error drains.
    EXPECT_THROW(client.recv(), std::exception);

    serve::Client fresh = fixture.connect();
    EXPECT_EQ(fresh.call(json::parse("{\"type\":\"stats\"}"))
                  .at("type")
                  .asString(),
              "stats");
}

TEST(Socket, MalformedJsonKeepsConnectionUsable)
{
    ServerFixture fixture;
    serve::Client client = fixture.connect();

    client.sendRaw(serve::encodeFrame("{this is not json"));
    std::string code;
    ASSERT_TRUE(serve::isError(client.recv(), &code));
    EXPECT_EQ(code, "badJson");

    // Same connection, valid request: still served.
    EXPECT_EQ(client.call(json::parse("{\"type\":\"stats\"}"))
                  .at("type")
                  .asString(),
              "stats");
}

TEST(Socket, MidJobDisconnectCancelsJob)
{
    ServerFixture fixture;
    {
        serve::Client client = fixture.connect();
        const json::Value request = withField(
            submitRequest("spgemm",
                          sparse::generateUniform(48, 48, 1024, 41)),
            "wait", json::Value(true));
        client.send(request);
        client.closeNow(); // never reads the response
    }

    serve::Client observer = fixture.connect();
    double cancelled = 0;
    for (int attempt = 0; attempt < 200 && cancelled < 1; ++attempt) {
        const json::Value stats =
            observer.call(json::parse("{\"type\":\"stats\"}"));
        cancelled = stats.at("jobs").at("cancelled").asNumber();
    }
    EXPECT_EQ(cancelled, 1.0);
}

} // namespace
