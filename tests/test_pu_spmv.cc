/**
 * @file
 * End-to-end tests of a single MeNDA PU in SpMV mode (Sec. 3.6):
 * correctness against the reference across shapes and tree sizes, the
 * root reduction unit, the auxiliary-pointer traffic saving, and
 * multi-iteration merges.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dram/controller.hh"
#include "menda/pu.hh"
#include "sim/clock.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

namespace
{

struct SpmvHarness
{
    sparse::CsrMatrix csr;
    sparse::CscMatrix csc;
    std::vector<Value> x;
    std::unique_ptr<dram::MemoryController> mem;
    std::unique_ptr<Pu> pu;
    TickScheduler sched;

    SpmvHarness(sparse::CsrMatrix matrix, std::vector<Value> vec,
                const PuConfig &config)
        : csr(std::move(matrix)),
          csc(sparse::transposeReference(csr)),
          x(std::move(vec))
    {
        mem = std::make_unique<dram::MemoryController>(
            "mem", dram::DramConfig::ddr4_2400r(1),
            config.requestCoalescing);
        pu = std::make_unique<Pu>("pu", config, &csc, &x, 0, mem.get());
        sched.addDomain("pu", config.freqMhz)->attach(pu.get());
        sched.addDomain("dram", 1200)->attach(mem.get());
    }

    void
    run()
    {
        pu->start();
        sched.runUntil([&] { return pu->done(); }, 2'000'000'000ull);
        ASSERT_TRUE(pu->done()) << "SpMV PU did not finish";
    }

    void
    expectMatchesReference()
    {
        auto want = sparse::spmvReference(csr, x);
        const auto &got = pu->resultVector();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t r = 0; r < want.size(); ++r)
            EXPECT_NEAR(got[r], want[r],
                        1e-3 * (std::abs(want[r]) + 1.0))
                << "row " << r;
    }
};

std::vector<Value>
rampVector(Index n)
{
    std::vector<Value> x(n);
    for (Index i = 0; i < n; ++i)
        x[i] = static_cast<Value>((i % 17) - 8) / 4.0f;
    return x;
}

PuConfig
spmvConfig(unsigned leaves)
{
    PuConfig config;
    config.leaves = leaves;
    return config;
}

} // namespace

class PuSpmvMatrix
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PuSpmvMatrix, MatchesReference)
{
    const auto [leaves, variant] = GetParam();
    sparse::CsrMatrix a;
    switch (variant) {
      case 0: a = sparse::generateUniform(300, 200, 2400, 301); break;
      case 1: a = sparse::generateRmat(512, 4000, 0.1, 0.2, 0.3, 303);
              break;
      case 2: a = sparse::generateBanded(400, 7, 0.5, 307); break;
      default: a = sparse::generateUniform(100, 1500, 3000, 311); break;
    }
    SpmvHarness h(a, rampVector(a.cols), spmvConfig(leaves));
    h.run();
    h.expectMatchesReference();
}

INSTANTIATE_TEST_SUITE_P(
    LeavesByMatrix, PuSpmvMatrix,
    ::testing::Combine(::testing::Values(4u, 16u, 64u),
                       ::testing::Values(0u, 1u, 2u, 3u)));

TEST(PuSpmv, ReductionMergesEqualRows)
{
    // Dense column band: many columns contribute to the same rows, so
    // the reduction unit must sum across streams.
    sparse::CsrMatrix a = sparse::generateBanded(64, 63, 0.9, 313);
    SpmvHarness h(a, rampVector(a.cols), spmvConfig(16));
    h.run();
    h.expectMatchesReference();
    // Output elements after reduction cannot exceed rows.
    EXPECT_LE(h.pu->iterationStats().back().writeBlocks,
              (a.rows * 4 + 63) / 64 + 2);
}

TEST(PuSpmv, HandlesEmptyColumnsViaAuxPointer)
{
    // Only a handful of populated columns in a wide matrix: the aux
    // pointer array lets the controller skip the empty pointer blocks.
    sparse::CooMatrix coo;
    coo.rows = 64;
    coo.cols = 4096;
    coo.row = {1, 2, 3, 60};
    coo.col = {100, 2000, 2001, 4000};
    coo.val = {1.0f, 2.0f, 3.0f, 4.0f};
    sparse::CsrMatrix a = sparse::cooToCsr(coo);
    SpmvHarness h(a, std::vector<Value>(4096, 1.0f), spmvConfig(4));
    h.run();
    h.expectMatchesReference();
    // Pointer array spans 4097 entries = 257 blocks; only ~4 hold
    // non-empty columns. With the aux array the PU must load far fewer.
    EXPECT_LT(h.pu->loadsIssued(), 80u);
}

TEST(PuSpmv, MultiIterationReduction)
{
    // More non-empty columns than leaves: several merge iterations with
    // (index, value) pair intermediates.
    sparse::CsrMatrix a = sparse::generateUniform(128, 600, 3000, 317);
    SpmvHarness h(a, rampVector(a.cols), spmvConfig(4));
    h.run();
    EXPECT_GE(h.pu->iterationsExecuted(), 2u);
    h.expectMatchesReference();
}

TEST(PuSpmv, ZeroMatrixGivesZeroVector)
{
    sparse::CsrMatrix a;
    a.rows = 32;
    a.cols = 32;
    a.ptr.assign(33, 0);
    SpmvHarness h(a, std::vector<Value>(32, 2.0f), spmvConfig(4));
    h.run();
    for (double v : h.pu->resultVector())
        EXPECT_EQ(v, 0.0);
}
