/**
 * @file
 * Tests for the multi-PU MeNDA system: correctness of merged partitioned
 * output, scaling behaviour, workload balancing, page coloring, and the
 * SpMV dataflow (Sec. 3.5/3.6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "menda/page_coloring.hh"
#include "menda/system.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

namespace
{

SystemConfig
smallSystem(unsigned pus, unsigned leaves = 16)
{
    SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = pus;
    config.pu.leaves = leaves;
    return config;
}

} // namespace

TEST(System, MultiPuTransposeMatchesReference)
{
    sparse::CsrMatrix a = sparse::generateRmat(1024, 8000, 0.1, 0.2, 0.3,
                                               51);
    for (unsigned pus : {1u, 2u, 4u}) {
        MendaSystem sys(smallSystem(pus));
        TransposeResult result = sys.transpose(a);
        sparse::CscMatrix want = sparse::transposeReference(a);
        EXPECT_EQ(result.csc.ptr, want.ptr) << pus << " PUs";
        EXPECT_EQ(result.csc.idx, want.idx) << pus << " PUs";
        EXPECT_EQ(result.csc.val, want.val) << pus << " PUs";
        EXPECT_GT(result.seconds, 0.0);
    }
}

TEST(System, MorePusRunFaster)
{
    sparse::CsrMatrix a = sparse::generateUniform(2048, 2048, 40000, 53);
    MendaSystem one(smallSystem(1, 64));
    MendaSystem four(smallSystem(4, 64));
    const double t1 = one.transpose(a).seconds;
    const double t4 = four.transpose(a).seconds;
    EXPECT_LT(t4, t1 / 2.0)
        << "4 rank-level PUs must be well over 2x faster than 1";
}

TEST(System, ThroughputMetricIsConsistent)
{
    sparse::CsrMatrix a = sparse::generateUniform(1024, 1024, 20000, 55);
    MendaSystem sys(smallSystem(2, 64));
    TransposeResult result = sys.transpose(a);
    const double nnzps = result.throughputNnzPerSec(a.nnz());
    EXPECT_NEAR(nnzps * result.seconds, double(a.nnz()), 1.0);
    // Traffic sanity: at least nnz * (8 in + 8 out) bytes must move.
    EXPECT_GE(result.totalBlocks() * 64ull, a.nnz() * 16);
}

TEST(System, SpmvMatchesReference)
{
    sparse::CsrMatrix a = sparse::generateRmat(512, 6000, 0.1, 0.2, 0.3,
                                               57);
    std::vector<Value> x(a.cols);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>((i % 13) - 6) / 3.0f;

    MendaSystem sys(smallSystem(2, 16));
    SpmvResult result = sys.spmv(a, x);
    auto want = sparse::spmvReference(a, x);
    ASSERT_EQ(result.y.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
        EXPECT_NEAR(result.y[r], want[r],
                    1e-3 * (std::abs(want[r]) + 1.0))
            << "row " << r;
    }
}

TEST(System, SpmvHandlesEmptyColumnsAndRows)
{
    sparse::CooMatrix coo;
    coo.rows = 32;
    coo.cols = 32;
    coo.row = {0, 0, 31, 5};
    coo.col = {1, 30, 1, 5};
    coo.val = {1.0f, 2.0f, 3.0f, 4.0f};
    sparse::CsrMatrix a = sparse::cooToCsr(coo);
    std::vector<Value> x(32, 1.0f);
    MendaSystem sys(smallSystem(2, 4));
    SpmvResult result = sys.spmv(a, x);
    auto want = sparse::spmvReference(a, x);
    for (std::size_t r = 0; r < want.size(); ++r)
        EXPECT_NEAR(result.y[r], want[r], 1e-5);
}

TEST(PageColoring, AllSlicePagesGetTheSliceColor)
{
    sparse::CsrMatrix a = sparse::generateUniform(4096, 4096, 50000, 59);
    auto slices = sparse::partitionByNnz(a, 4);
    PageTable table = colorPages(slices, a.rows, a.nnz());
    for (unsigned color = 0; color < 4; ++color)
        EXPECT_GT(table.pagesOfColor(color), 0u);
    // Duplication bounded by page_size x ranks (Sec. 3.5).
    EXPECT_LE(table.duplicatedBytes, pageBytes * slices.size());
}

TEST(PageColoring, DuplicatesOnlyRowPointerPages)
{
    sparse::CsrMatrix a = sparse::generateUniform(64, 64, 1024, 61);
    auto slices = sparse::partitionByNnz(a, 4);
    PageTable table = colorPages(slices, a.rows, a.nnz());
    // With 64 rows the whole pointer array fits one page, so every rank
    // shares (duplicates) it except the first.
    std::uint64_t duplicates = 0;
    for (const auto &entry : table.entries)
        duplicates += entry.duplicate;
    EXPECT_EQ(duplicates, 3u);
}

TEST(System, NonSeamlessMergeIsCorrectButSlower)
{
    // Sec. 3.3: the seamless EOL mechanism removes inter-round stalls.
    sparse::CsrMatrix a = sparse::generateUniform(2048, 2048, 8192, 63);
    SystemConfig on = smallSystem(2, 8);
    SystemConfig off = on;
    off.pu.seamlessMerge = false;

    MendaSystem sys_on(on), sys_off(off);
    TransposeResult r_on = sys_on.transpose(a);
    TransposeResult r_off = sys_off.transpose(a);
    sparse::CscMatrix want = sparse::transposeReference(a);
    EXPECT_EQ(r_on.csc, want);
    EXPECT_EQ(r_off.csc, want);
    // Many short rounds (4096 tiny streams on an 8-leaf tree): stop-and-
    // go execution must cost measurably more.
    EXPECT_GT(r_off.seconds, r_on.seconds * 1.1);
}

TEST(System, RowPartitioningIsCorrectButImbalanced)
{
    // Sec. 3.5: equal-row splits of a skewed matrix overload one PU.
    sparse::CsrMatrix a = sparse::generateRmat(2048, 30000, 0.1, 0.2,
                                               0.3, 65);
    SystemConfig balanced = smallSystem(4, 32);
    SystemConfig naive = balanced;
    naive.rowPartitioning = true;

    MendaSystem sys_b(balanced), sys_n(naive);
    TransposeResult r_b = sys_b.transpose(a);
    TransposeResult r_n = sys_n.transpose(a);
    sparse::CscMatrix want = sparse::transposeReference(a);
    EXPECT_EQ(r_b.csc, want);
    EXPECT_EQ(r_n.csc, want);
    EXPECT_GT(r_n.seconds, r_b.seconds)
        << "naive split should trail the NNZ-balanced one on R-MAT";
}

TEST(System, SimulationIsFullyDeterministic)
{
    // Identical inputs and configuration must give bit-identical results
    // AND identical timing — the property every experiment in this repo
    // relies on for reproducibility.
    sparse::CsrMatrix a = sparse::generateRmat(1024, 10000, 0.1, 0.2,
                                               0.3, 67);
    SystemConfig config = smallSystem(4, 32);
    MendaSystem first(config), second(config);
    TransposeResult r1 = first.transpose(a);
    TransposeResult r2 = second.transpose(a);
    EXPECT_EQ(r1.seconds, r2.seconds);
    EXPECT_EQ(r1.puCycles, r2.puCycles);
    EXPECT_EQ(r1.readBlocks, r2.readBlocks);
    EXPECT_EQ(r1.writeBlocks, r2.writeBlocks);
    EXPECT_EQ(r1.activates, r2.activates);
    EXPECT_EQ(r1.csc, r2.csc);
}
