/**
 * @file
 * Tests for the sparse substrate: formats, golden transpose, generators,
 * Matrix Market I/O, partitioning, and the Tab. 3/4 workload factory.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/format.hh"
#include "sparse/generate.hh"
#include "sparse/mmio.hh"
#include "sparse/partition.hh"
#include "sparse/workloads.hh"

using namespace menda;
using namespace menda::sparse;

TEST(Format, Fig1ExampleTransposesAsInPaper)
{
    // Fig. 1 checks that CSR(A) transposed equals the printed CSC(A).
    CooMatrix coo;
    coo.rows = 8;
    coo.cols = 7;
    coo.row = {0, 0, 1, 1, 2, 2, 2, 3, 3, 4, 4, 4, 5, 5, 6, 6, 6};
    coo.col = {0, 2, 1, 4, 0, 4, 6, 3, 5, 0, 2, 5, 1, 3, 2, 5, 6};
    for (int i = 0; i < 17; ++i)
        coo.val.push_back(static_cast<float>('a' + i));
    CsrMatrix a = cooToCsr(coo);
    a.validate();
    EXPECT_EQ(a.ptr, (std::vector<std::uint32_t>{0, 2, 4, 7, 9, 12, 14,
                                                 17, 17}));

    CscMatrix t = transposeReference(a);
    t.validate();
    EXPECT_EQ(t.ptr,
              (std::vector<std::uint32_t>{0, 3, 5, 8, 10, 12, 15, 17}));
    EXPECT_EQ(t.idx, (std::vector<Index>{0, 2, 4, 1, 5, 0, 4, 6, 3, 5, 1,
                                         2, 3, 4, 6, 2, 6}));
}

TEST(Format, TransposeIsAnInvolution)
{
    CsrMatrix a = generateUniform(300, 200, 2500, 1);
    CscMatrix t = transposeReference(a);
    CsrMatrix back = transposeReference(t);
    EXPECT_EQ(a, back);
}

TEST(Format, CscOfAEqualsCsrOfATransposed)
{
    CsrMatrix a = generateUniform(128, 96, 700, 2);
    CscMatrix t = transposeReference(a);
    CsrMatrix at = asCsrOfTranspose(t);
    at.validate();
    EXPECT_EQ(at.rows, a.cols);
    EXPECT_EQ(at.cols, a.rows);
    // Transposing A-transpose must give A back.
    CscMatrix tt = transposeReference(at);
    EXPECT_EQ(tt.ptr, a.ptr);
    EXPECT_EQ(tt.idx, a.idx);
}

TEST(Format, CooRoundTrip)
{
    CsrMatrix a = generateRmat(128, 800, 0.1, 0.2, 0.3, 3);
    CooMatrix coo = csrToCoo(a);
    EXPECT_TRUE(coo.sortedByRowCol());
    CsrMatrix back = cooToCsr(coo);
    EXPECT_EQ(a, back);
}

TEST(Format, SpmvReferenceMatchesDense)
{
    CsrMatrix a = generateUniform(50, 40, 300, 4);
    std::vector<Value> x(40);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<Value>(i % 7) - 3.0f;
    auto y = spmvReference(a, x);
    // Dense recomputation.
    for (Index r = 0; r < a.rows; ++r) {
        double want = 0;
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            want += double(a.val[k]) * double(x[a.idx[k]]);
        EXPECT_DOUBLE_EQ(y[r], want);
    }
}

TEST(Format, ValidateCatchesCorruption)
{
    CsrMatrix a = generateUniform(10, 10, 30, 5);
    a.validate();
    CsrMatrix bad = a;
    bad.idx[0] = 99; // out of bounds
    EXPECT_THROW(bad.validate(), std::runtime_error);
    bad = a;
    bad.ptr.back() += 1;
    EXPECT_THROW(bad.validate(), std::runtime_error);
}

TEST(Generate, UniformHitsExactNnz)
{
    CsrMatrix a = generateUniform(1000, 1000, 5000, 6);
    a.validate();
    EXPECT_EQ(a.nnz(), 5000u);
    EXPECT_EQ(a.rows, 1000u);
}

TEST(Generate, UniformIsDeterministic)
{
    CsrMatrix a = generateUniform(500, 500, 2000, 7);
    CsrMatrix b = generateUniform(500, 500, 2000, 7);
    EXPECT_EQ(a, b);
    CsrMatrix c = generateUniform(500, 500, 2000, 8);
    EXPECT_NE(a.idx, c.idx);
}

TEST(Generate, RmatIsSkewed)
{
    // Power-law matrices concentrate NZs in few rows: the max row degree
    // must far exceed the mean (uniform would stay within a few x).
    CsrMatrix p = generateRmat(4096, 40000, 0.1, 0.2, 0.3, 9);
    p.validate();
    std::uint32_t max_degree = 0;
    for (Index r = 0; r < p.rows; ++r)
        max_degree = std::max(max_degree, p.ptr[r + 1] - p.ptr[r]);
    const double mean = double(p.nnz()) / p.rows;
    EXPECT_GT(max_degree, 10 * mean);

    CsrMatrix u = generateUniform(4096, 4096, 40000, 9);
    std::uint32_t max_u = 0;
    for (Index r = 0; r < u.rows; ++r)
        max_u = std::max(max_u, u.ptr[r + 1] - u.ptr[r]);
    EXPECT_LT(max_u, 4 * mean);
}

TEST(Generate, RmatRejectsNonPowerOfTwo)
{
    EXPECT_THROW(generateRmat(100, 10, 0.1, 0.2, 0.3, 1),
                 std::runtime_error);
}

TEST(Generate, BandedStaysInBand)
{
    CsrMatrix a = generateBanded(200, 10, 0.5, 10);
    a.validate();
    for (Index r = 0; r < a.rows; ++r) {
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k) {
            const auto d = a.idx[k] > r ? a.idx[k] - r : r - a.idx[k];
            EXPECT_LE(d, 5u);
        }
    }
    // Diagonal always present.
    for (Index r = 0; r < a.rows; ++r) {
        bool diag = false;
        for (std::uint32_t k = a.ptr[r]; k < a.ptr[r + 1]; ++k)
            diag |= a.idx[k] == r;
        EXPECT_TRUE(diag);
    }
}

TEST(Mmio, RoundTripsThroughText)
{
    CsrMatrix a = generateUniform(40, 30, 200, 11);
    std::stringstream ss;
    writeMatrixMarket(ss, a);
    CsrMatrix b = readMatrixMarket(ss);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.ptr, b.ptr);
    EXPECT_EQ(a.idx, b.idx);
}

TEST(Mmio, ReadsSymmetricAndPattern)
{
    std::stringstream ss("%%MatrixMarket matrix coordinate pattern "
                         "symmetric\n% comment\n3 3 2\n2 1\n3 3\n");
    CsrMatrix a = readMatrixMarket(ss);
    EXPECT_EQ(a.nnz(), 3u); // (1,0), (0,1) mirrored, (2,2) diagonal
    a.validate();
}

TEST(Mmio, RejectsGarbage)
{
    std::stringstream ss("not a matrix\n");
    EXPECT_THROW(readMatrixMarket(ss), std::runtime_error);
}

TEST(Partition, BalancesNnzWithinOneRow)
{
    CsrMatrix a = generateRmat(2048, 30000, 0.1, 0.2, 0.3, 12);
    for (unsigned parts : {2u, 4u, 8u, 16u}) {
        auto slices = partitionByNnz(a, parts);
        ASSERT_EQ(slices.size(), parts);
        // Coverage: contiguous, complete.
        EXPECT_EQ(slices.front().rowBegin, 0u);
        EXPECT_EQ(slices.back().rowEnd, a.rows);
        std::uint64_t total = 0;
        std::uint32_t max_row = 0;
        for (Index r = 0; r < a.rows; ++r)
            max_row = std::max(max_row, a.ptr[r + 1] - a.ptr[r]);
        for (unsigned p = 0; p < parts; ++p) {
            if (p > 0) {
                EXPECT_EQ(slices[p].rowBegin, slices[p - 1].rowEnd);
            }
            total += slices[p].nnz();
            // Every slice within ideal +/- the longest row.
            EXPECT_LE(slices[p].nnz(),
                      a.nnz() / parts + max_row + 1);
        }
        EXPECT_EQ(total, a.nnz());
    }
}

TEST(Partition, ExtractSliceIsConsistent)
{
    CsrMatrix a = generateUniform(100, 60, 900, 13);
    auto slices = partitionByNnz(a, 4);
    std::uint64_t nnz = 0;
    for (const auto &slice : slices) {
        CsrMatrix sub = extractSlice(a, slice);
        sub.validate();
        EXPECT_EQ(sub.rows, slice.rows());
        EXPECT_EQ(sub.nnz(), slice.nnz());
        nnz += sub.nnz();
    }
    EXPECT_EQ(nnz, a.nnz());
}

TEST(Partition, ImbalanceNearOneForUniform)
{
    CsrMatrix a = generateUniform(4096, 4096, 65536, 14);
    auto slices = partitionByNnz(a, 8);
    EXPECT_LT(imbalance(a, slices), 1.05);
}

TEST(Workloads, TablesHaveTheRightEntries)
{
    EXPECT_EQ(table3Uniform().size(), 8u);
    EXPECT_EQ(table3PowerLaw().size(), 8u);
    EXPECT_EQ(table4().size(), 15u);
    EXPECT_EQ(findWorkload("N5").nnz, 8388608u);
    EXPECT_EQ(findWorkload("wiki-Talk").rows, 2394385u);
    EXPECT_THROW(findWorkload("nope"), std::runtime_error);
}

TEST(Workloads, ScaledGenerationApproximatesSpec)
{
    const WorkloadSpec &spec = findWorkload("N3");
    CsrMatrix a = makeWorkload(spec, 64);
    a.validate();
    EXPECT_EQ(a.rows, spec.rows / 64);
    EXPECT_EQ(a.nnz(), spec.nnz / 64);
}

TEST(Workloads, StandinsMatchKindStructure)
{
    // Graph stand-ins must be skewed; structural ones banded.
    CsrMatrix graph = makeWorkload(findWorkload("wiki-Talk"), 64);
    std::uint32_t max_degree = 0;
    for (Index r = 0; r < graph.rows; ++r)
        max_degree = std::max(max_degree, graph.ptr[r + 1] -
                                              graph.ptr[r]);
    EXPECT_GT(max_degree, 8 * graph.nnz() / graph.rows);

    CsrMatrix fem = makeWorkload(findWorkload("bcsstk32"), 16);
    fem.validate();
    EXPECT_GT(fem.nnz(), 0u);
}

TEST(Workloads, EveryTable4KindGeneratesAValidStandin)
{
    for (const auto &spec : table4()) {
        CsrMatrix a = makeWorkload(spec, 128);
        a.validate();
        EXPECT_GT(a.nnz(), 0u) << spec.name;
        EXPECT_GT(a.rows, 0u) << spec.name;
        // NNZ within 2x of the scaled target (structured generators
        // approximate it).
        const double target =
            std::max<double>(256.0, spec.nnz / 128.0);
        EXPECT_GT(double(a.nnz()), target * 0.4) << spec.name;
        EXPECT_LT(double(a.nnz()), target * 2.5) << spec.name;
    }
}

TEST(Generate, LocalGraphHasHighDiameterStructure)
{
    CsrMatrix g = generateLocalGraph(4096, 20000, 4096 / 30, 11);
    g.validate();
    // Every edge stays within the reach window (mod wrap-around).
    const Index reach = 4096 / 30;
    for (Index u = 0; u < g.rows; ++u) {
        for (std::uint32_t k = g.ptr[u]; k < g.ptr[u + 1]; ++k) {
            const Index v = g.idx[k];
            const Index fwd = v >= u ? v - u : v + g.rows - u;
            const Index bwd = u >= v ? u - v : u + g.rows - v;
            EXPECT_LE(std::min(fwd, bwd), reach) << u << "->" << v;
        }
    }
}

TEST(Partition, RowPartitionIsImbalancedOnSkew)
{
    CsrMatrix p = generateRmat(4096, 60000, 0.1, 0.2, 0.3, 13);
    EXPECT_GT(imbalance(p, partitionByRows(p, 8)), 1.5);
    EXPECT_LT(imbalance(p, partitionByNnz(p, 8)), 1.1);
}
