/**
 * @file
 * Tests for the fast simulation tiers (DESIGN.md Sec. 12): the pure
 * estimator math of the Sampled tier, the --sim-mode spec parser, and
 * the bitwise output-identity contract of the Functional and Sampled
 * tiers against the detailed engine — on matrices dense enough to take
 * the specialized round paths (dense SpMV accumulator, transpose
 * counting sort) and sparse enough to keep the tournament tree.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "menda/sampled_stats.hh"
#include "menda/sim_mode.hh"
#include "menda/system.hh"
#include "sparse/generate.hh"

using namespace menda;
using namespace menda::core;

TEST(SampledStats, WindowRateUsesSteadySpan)
{
    // 100 pops over 1000 cycles total, 60 of them in the 500-cycle
    // warmup: the steady-state rate is (100-60)/(1000-500).
    EXPECT_DOUBLE_EQ(sampled::windowRate(100, 1000, 60, 500),
                     40.0 / 500.0);
}

TEST(SampledStats, WindowRateFallsBackToWholeWindow)
{
    // No pops after warmup: fall back to the whole-window mean.
    EXPECT_DOUBLE_EQ(sampled::windowRate(80, 1000, 80, 500),
                     80.0 / 1000.0);
    // No progress at all: 0 tells the caller to reuse a prior rate.
    EXPECT_DOUBLE_EQ(sampled::windowRate(0, 1000, 0, 500), 0.0);
}

TEST(SampledStats, ChargeForElementsRoundsUp)
{
    EXPECT_EQ(sampled::chargeForElements(0, 0.5), 0u);
    EXPECT_EQ(sampled::chargeForElements(100, 0.5), 200u);
    EXPECT_EQ(sampled::chargeForElements(101, 0.5), 202u);
    EXPECT_EQ(sampled::chargeForElements(3, 2.0), 2u);
    // Degenerate rate assumes the 1-pop/cycle hardware bound.
    EXPECT_EQ(sampled::chargeForElements(7, 0.0), 7u);
}

TEST(SampledStats, ErrorBoundTracksSpread)
{
    // Identical rates: zero spread, zero bound.
    EXPECT_DOUBLE_EQ(sampled::errorBoundPct({0.5, 0.5, 0.5}), 0.0);
    // Fewer than two windows: no variance estimate, report unknown.
    EXPECT_DOUBLE_EQ(sampled::errorBoundPct({0.5}), 100.0);
    EXPECT_DOUBLE_EQ(sampled::errorBoundPct({}), 100.0);
    // z * s / (mean * sqrt(k)) in percent, k = 2, s = stddev.
    const double mean = 0.5, sd = std::sqrt(2.0 * 0.1 * 0.1 / 1.0);
    EXPECT_NEAR(sampled::errorBoundPct({0.4, 0.6}),
                100.0 * 1.96 * sd / (mean * std::sqrt(2.0)), 1e-9);
}

TEST(SimMode, ParseSpecs)
{
    SimMode mode = SimMode::Detailed;
    SampledConfig sampled;
    EXPECT_TRUE(parseSimMode("functional", mode, sampled));
    EXPECT_EQ(mode, SimMode::Functional);
    EXPECT_TRUE(parseSimMode("detailed", mode, sampled));
    EXPECT_EQ(mode, SimMode::Detailed);
    EXPECT_TRUE(parseSimMode("sampled", mode, sampled));
    EXPECT_EQ(mode, SimMode::Sampled);

    EXPECT_TRUE(parseSimMode("sampled:1024,65536", mode, sampled));
    EXPECT_EQ(sampled.windowCycles, 1024u);
    EXPECT_EQ(sampled.periodCycles, 65536u);

    EXPECT_TRUE(parseSimMode("sampled:512,8192,256", mode, sampled));
    EXPECT_EQ(sampled.windowCycles, 512u);
    EXPECT_EQ(sampled.periodCycles, 8192u);
    EXPECT_EQ(sampled.warmupCycles, 256u);

    mode = SimMode::Detailed;
    EXPECT_FALSE(parseSimMode("sampled:1024", mode, sampled));
    EXPECT_FALSE(parseSimMode("sampled:0,100", mode, sampled));
    EXPECT_FALSE(parseSimMode("sampled:a,b", mode, sampled));
    EXPECT_FALSE(parseSimMode("turbo", mode, sampled));
    EXPECT_EQ(mode, SimMode::Detailed) << "untouched on bad spec";
}

namespace
{

SystemConfig
tierSystem(SimMode mode, unsigned pus = 1, unsigned leaves = 16)
{
    SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = pus;
    config.pu.leaves = leaves;
    config.simMode = mode;
    // Tiny windows so these small runs still alternate between
    // fast-forward and measurement several times.
    config.sampled.windowCycles = 512;
    config.sampled.periodCycles = 4096;
    config.sampled.warmupCycles = 128;
    return config;
}

} // namespace

class TierIdentity : public ::testing::TestWithParam<SimMode>
{
};

TEST_P(TierIdentity, TransposeBitwiseIdentical)
{
    // Dense enough that most rounds take the counting-sort path, with
    // an RMAT tail of sparse rounds for the tournament tree.
    for (const sparse::CsrMatrix &a :
         {sparse::generateUniform(192, 160, 6000, 11),
          sparse::generateRmat(512, 700, 0.1, 0.2, 0.3, 12)}) {
        MendaSystem det(tierSystem(SimMode::Detailed));
        MendaSystem fast(tierSystem(GetParam()));
        const TransposeResult want = det.transpose(a);
        const TransposeResult got = fast.transpose(a);
        EXPECT_EQ(want.csc.ptr, got.csc.ptr);
        EXPECT_EQ(want.csc.idx, got.csc.idx);
        EXPECT_EQ(want.csc.val, got.csc.val);
    }
}

TEST_P(TierIdentity, SpmvBitwiseIdentical)
{
    for (const sparse::CsrMatrix &a :
         {sparse::generateUniform(256, 192, 8000, 21),
          sparse::generateRmat(512, 900, 0.1, 0.2, 0.3, 22)}) {
        const std::vector<Value> x(a.cols, 1.25f);
        MendaSystem det(tierSystem(SimMode::Detailed));
        MendaSystem fast(tierSystem(GetParam()));
        const SpmvResult want = det.spmv(a, x);
        const SpmvResult got = fast.spmv(a, x);
        EXPECT_EQ(want.y, got.y) << "float sums must be bitwise equal";
    }
}

TEST_P(TierIdentity, SpgemmBitwiseIdentical)
{
    const sparse::CsrMatrix a =
        sparse::generateUniform(96, 96, 1500, 31);
    MendaSystem det(tierSystem(SimMode::Detailed, 2));
    MendaSystem fast(tierSystem(GetParam(), 2));
    const SpgemmResult want = det.spgemm(a, a);
    const SpgemmResult got = fast.spgemm(a, a);
    EXPECT_EQ(want.c.ptr, got.c.ptr);
    EXPECT_EQ(want.c.idx, got.c.idx);
    EXPECT_EQ(want.c.val, got.c.val);
}

INSTANTIATE_TEST_SUITE_P(FastTiers, TierIdentity,
                         ::testing::Values(SimMode::Functional,
                                           SimMode::Sampled),
                         [](const auto &info) {
                             return std::string(
                                 simModeName(info.param));
                         });

TEST(SampledRun, ReportsWindowsAndErrorBound)
{
    const sparse::CsrMatrix a =
        sparse::generateUniform(192, 192, 6000, 41);
    MendaSystem sys(tierSystem(SimMode::Sampled));
    const TransposeResult r = sys.transpose(a);
    EXPECT_GE(r.sampledWindows, 2u) << "run must alternate tiers";
    EXPECT_GT(r.fastForwardedCycles, 0u);
    EXPECT_LT(r.errorBoundPct, 100.0) << "variance estimate exists";
}

TEST(FunctionalRun, EstimatesCyclesAnalytically)
{
    const sparse::CsrMatrix a =
        sparse::generateUniform(192, 192, 6000, 41);
    MendaSystem det(tierSystem(SimMode::Detailed));
    MendaSystem fun(tierSystem(SimMode::Functional));
    const std::uint64_t want = det.transpose(a).puCycles;
    const std::uint64_t got = fun.transpose(a).puCycles;
    ASSERT_GT(want, 0u);
    ASSERT_GT(got, 0u);
    // The analytical model is coarse by design; it must still land in
    // the right order of magnitude.
    EXPECT_LT(std::abs(double(got) - double(want)) / double(want), 1.0);
}
