/**
 * @file
 * Unit tests for the output unit: block assembly, pointer-array
 * synthesis, round-bound recording, back-pressure, and the four output
 * modes.
 */

#include <gtest/gtest.h>

#include "menda/output_unit.hh"

using namespace menda;
using namespace menda::core;

namespace
{

struct Fixture
{
    PuConfig config;
    PuMemoryMap map;
    OutputUnit unit;

    Fixture() : map(0, 256, 256, 4096), unit(config, &map) {}

    /** Drain all pending stores, counting them. */
    std::uint64_t
    drain()
    {
        std::uint64_t count = 0;
        while (unit.hasPendingStore()) {
            unit.storeIssued();
            ++count;
        }
        return count;
    }
};

} // namespace

TEST(OutputUnit, CooIntermediateEmitsThreeArrays)
{
    Fixture f;
    // 32 elements = 2 full blocks per array; 3 arrays -> 6 stores.
    f.unit.beginIteration(OutputMode::CooIntermediate, 0, 1, 256);
    for (unsigned i = 0; i < 32; ++i) {
        ASSERT_TRUE(f.unit.canAccept());
        f.unit.accept(Packet::data(i, i, 1.0f, i == 31));
        f.drain();
    }
    EXPECT_TRUE(f.unit.iterationDone());
    EXPECT_EQ(f.unit.storesQueued(), 6u);
    EXPECT_EQ(f.unit.merged().size(), 32u);
    ASSERT_EQ(f.unit.roundBounds().size(), 1u);
    EXPECT_EQ(f.unit.roundBounds()[0].first, 0u);
    EXPECT_EQ(f.unit.roundBounds()[0].second, 32u);
}

TEST(OutputUnit, CooPartialBlocksFlushAtIterationEnd)
{
    Fixture f;
    f.unit.beginIteration(OutputMode::CooIntermediate, 1, 1, 256);
    for (unsigned i = 0; i < 5; ++i) {
        f.unit.accept(Packet::data(i, i, 1.0f, i == 4));
        f.drain();
    }
    // 5 elements < 1 block: the trailing partial block of each of the
    // three arrays must still be written.
    EXPECT_TRUE(f.unit.iterationDone());
    EXPECT_EQ(f.unit.storesQueued(), 3u);
}

TEST(OutputUnit, CscFinalWritesThePointerArray)
{
    Fixture f;
    // One element in column 10, then end-of-line: pointer entries 0..256
    // (257 entries = 17 blocks) + 1 idx + 1 val partial block.
    f.unit.beginIteration(OutputMode::CscFinal, 0, 1, 256);
    f.unit.accept(Packet::data(3, 10, 2.0f, true));
    std::uint64_t stores = f.drain();
    while (f.unit.hasPendingStore())
        stores += f.drain();
    EXPECT_TRUE(f.unit.iterationDone());
    EXPECT_EQ(stores, 17u + 2u);
}

TEST(OutputUnit, RoundBoundsTrackEveryEol)
{
    Fixture f;
    f.unit.beginIteration(OutputMode::CooIntermediate, 0, 3, 256);
    // Round 0: 2 elements; round 1: empty; round 2: 1 element.
    f.unit.accept(Packet::data(0, 1, 1.0f, false));
    f.drain();
    f.unit.accept(Packet::data(0, 2, 1.0f, true));
    f.drain();
    f.unit.accept(Packet::endOfLine());
    f.drain();
    f.unit.accept(Packet::data(1, 5, 1.0f, true));
    f.drain();
    ASSERT_TRUE(f.unit.iterationDone());
    const auto &bounds = f.unit.roundBounds();
    ASSERT_EQ(bounds.size(), 3u);
    EXPECT_EQ(bounds[0], (std::pair<std::uint64_t, std::uint64_t>{0, 2}));
    EXPECT_EQ(bounds[1], (std::pair<std::uint64_t, std::uint64_t>{2, 2}));
    EXPECT_EQ(bounds[2], (std::pair<std::uint64_t, std::uint64_t>{2, 3}));
}

TEST(OutputUnit, BackPressureWhenStoresPileUp)
{
    Fixture f;
    f.unit.beginIteration(OutputMode::CooIntermediate, 0, 1, 256);
    // Never drain: 16-element block boundaries accumulate stores until
    // canAccept goes false.
    unsigned accepted = 0;
    while (f.unit.canAccept() && accepted < 10000) {
        f.unit.accept(Packet::data(accepted, accepted, 1.0f, false));
        ++accepted;
    }
    EXPECT_LT(accepted, 10000u);
    EXPECT_FALSE(f.unit.canAccept());
    f.drain();
    EXPECT_TRUE(f.unit.canAccept());
}

TEST(OutputUnit, ZeroRoundIterationStillWritesPointers)
{
    Fixture f;
    // A slice with no streams at all: CscFinal must still produce the
    // all-zero pointer array (257 entries -> 17 blocks).
    f.unit.beginIteration(OutputMode::CscFinal, 0, 0, 256);
    EXPECT_TRUE(f.unit.hasPendingStore());
    EXPECT_EQ(f.drain(), 17u);
    EXPECT_TRUE(f.unit.iterationDone());
}

TEST(OutputUnit, DenseFinalWritesOnlyTouchedBlocks)
{
    Fixture f;
    f.unit.beginIteration(OutputMode::DenseFinal, 0, 1, 256);
    // Rows 0 and 1 share a block; row 100 is in another block.
    f.unit.accept(Packet::data(0, 0, 1.0f, false));
    f.unit.accept(Packet::data(1, 0, 1.0f, false));
    f.unit.accept(Packet::data(100, 0, 1.0f, true));
    f.drain();
    EXPECT_TRUE(f.unit.iterationDone());
    EXPECT_EQ(f.unit.storesQueued(), 2u);
}

TEST(OutputUnit, PairIntermediateEmitsTwoArrays)
{
    Fixture f;
    f.unit.beginIteration(OutputMode::PairIntermediate, 0, 1, 256);
    for (unsigned i = 0; i < 16; ++i)
        f.unit.accept(Packet::data(i, 0, 1.0f, i == 15));
    f.drain();
    EXPECT_TRUE(f.unit.iterationDone());
    EXPECT_EQ(f.unit.storesQueued(), 2u); // one full block x 2 arrays
}
