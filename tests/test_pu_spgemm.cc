/**
 * @file
 * End-to-end tests of the merge-based SpGEMM dataflow (DESIGN.md
 * Sec. 9): the simulated PU must reproduce the CPU heap-merge baseline
 * VALUE-EXACTLY (same stable merge order, same float accumulation
 * order), across single-round and multi-round (fan-in > tree width)
 * merges, duplicate-key accumulation, multi-PU partitioning, the host
 * API, the solver route, and threaded host simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "baselines/spgemm_cpu.hh"
#include "common/random.hh"
#include "menda/host_api.hh"
#include "menda/system.hh"
#include "solver/spmm.hh"
#include "sparse/generate.hh"
#include "spgemm/partial_products.hh"
#include "spgemm/plan.hh"

using namespace menda;
using namespace menda::core;

namespace
{

SystemConfig
smallSystem(unsigned pus, unsigned leaves)
{
    SystemConfig config;
    config.channels = 1;
    config.dimmsPerChannel = 1;
    config.ranksPerDimm = pus;
    config.pu.leaves = leaves;
    return config;
}

void
expectExact(const sparse::CsrMatrix &got, const sparse::CsrMatrix &want)
{
    ASSERT_EQ(got.rows, want.rows);
    ASSERT_EQ(got.cols, want.cols);
    ASSERT_EQ(got.ptr, want.ptr);
    ASSERT_EQ(got.idx, want.idx);
    ASSERT_EQ(got.val, want.val);
}

} // namespace

TEST(PuSpgemm, SingleRoundExactOnUniform)
{
    // 80 A non-zeros on a 128-leaf tree: the whole merge fits one round.
    sparse::CsrMatrix a = sparse::generateUniform(24, 20, 80, 901);
    sparse::CsrMatrix b = sparse::generateUniform(20, 30, 120, 903);
    MendaSystem sys(smallSystem(1, 128));
    SpgemmResult result = sys.spgemm(a, b);
    EXPECT_EQ(result.iterations, 1u);
    expectExact(result.c, baselines::spgemmHeapMerge(a, b));
    result.c.validate();
}

TEST(PuSpgemm, MultiRoundExactWithFanInOverTreeWidth)
{
    // ~600 partial-product streams on a 64-leaf tree: the ISSUE's
    // fan-in > 64 multi-round case, spilling through the COO ping-pong
    // buffers at least once.
    sparse::CsrMatrix a = sparse::generateUniform(48, 40, 600, 907);
    sparse::CsrMatrix b = sparse::generateUniform(40, 64, 500, 911);
    MendaSystem sys(smallSystem(1, 64));
    SpgemmResult result = sys.spgemm(a, b);
    EXPECT_GE(result.iterations, 2u);
    EXPECT_GT(a.nnz(), 64u);
    expectExact(result.c, baselines::spgemmHeapMerge(a, b));
}

TEST(PuSpgemm, DuplicateKeysAccumulateInStreamOrder)
{
    // Every row of A selects every row of B and all B rows share the
    // same columns, so each output (row, col) receives one partial
    // product per A non-zero: pure duplicate-key accumulation.
    sparse::CooMatrix ca;
    ca.rows = 4;
    ca.cols = 6;
    for (Index i = 0; i < 4; ++i)
        for (Index k = 0; k < 6; ++k) {
            ca.row.push_back(i);
            ca.col.push_back(k);
            ca.val.push_back(0.25f + 0.125f * static_cast<Value>(i + k));
        }
    sparse::CooMatrix cb;
    cb.rows = 6;
    cb.cols = 8;
    for (Index k = 0; k < 6; ++k)
        for (Index j = 0; j < 8; j += 2) {
            cb.row.push_back(k);
            cb.col.push_back(j);
            cb.val.push_back(1.0f / static_cast<Value>(k + j + 1));
        }
    sparse::CsrMatrix a = sparse::cooToCsr(ca);
    sparse::CsrMatrix b = sparse::cooToCsr(cb);

    MendaSystem sys(smallSystem(1, 8));
    SpgemmResult result = sys.spgemm(a, b);
    sparse::CsrMatrix want = baselines::spgemmHeapMerge(a, b);
    expectExact(result.c, want);
    // Each of the 4 rows collapses 24 partial products onto 4 columns.
    EXPECT_EQ(result.partialProducts, 4u * 6u * 4u);
    EXPECT_EQ(result.c.nnz(), 16u);

    // Independent numerical cross-check: the double-precision hash
    // baseline accumulates in a different order, so compare with a
    // tolerance instead of bitwise.
    sparse::CsrMatrix hash = baselines::spgemmHashAccumulate(a, b);
    ASSERT_EQ(hash.ptr, want.ptr);
    ASSERT_EQ(hash.idx, want.idx);
    for (std::size_t e = 0; e < want.val.size(); ++e)
        EXPECT_NEAR(hash.val[e], want.val[e],
                    1e-4 * (std::abs(want.val[e]) + 1.0));
}

TEST(PuSpgemm, RmatSquareProductAcrossFourPus)
{
    sparse::CsrMatrix a = sparse::generateRmat(128, 900, 0.1, 0.2, 0.3,
                                               919);
    MendaSystem sys(smallSystem(4, 16));
    SpgemmResult result = sys.spgemm(a, a);
    EXPECT_EQ(result.slices.size(), 4u);
    EXPECT_GE(result.iterations, 2u);
    expectExact(result.c, baselines::spgemmHeapMerge(a, a));
}

TEST(PuSpgemm, ScheduleMatchesExecutedIterations)
{
    sparse::CsrMatrix a = sparse::generateUniform(40, 32, 500, 929);
    sparse::CsrMatrix b = sparse::generateUniform(32, 32, 400, 937);
    for (unsigned leaves : {8u, 32u, 1024u}) {
        MendaSystem sys(smallSystem(1, leaves));
        SpgemmResult result = sys.spgemm(a, b);
        spgemm::MergeSchedule plan = spgemm::planMergeRounds(
            a.nnz(), leaves, spgemm::partialProductCount(a, b));
        EXPECT_EQ(result.iterations, plan.iterations)
            << "leaves=" << leaves;
        EXPECT_EQ(plan.multiRound(), result.iterations > 1);
        if (!plan.multiRound()) {
            EXPECT_EQ(plan.spilledElements, 0u);
        }
    }
}

TEST(PuSpgemm, EmptyRowsAndEmptyBRows)
{
    // A has empty rows; some referenced B rows are empty too, so whole
    // streams vanish and output rows can end up with zero entries.
    sparse::CooMatrix ca;
    ca.rows = 8;
    ca.cols = 6;
    ca.row = {1, 1, 4, 6};
    ca.col = {0, 3, 5, 2};
    ca.val = {2.0f, -1.0f, 0.5f, 3.0f};
    sparse::CooMatrix cb;
    cb.rows = 6;
    cb.cols = 10;
    cb.row = {0, 0, 3, 3, 3};         // rows 2 and 5 of B stay empty
    cb.col = {1, 7, 2, 3, 9};
    cb.val = {1.5f, 2.5f, -0.5f, 4.0f, 1.0f};
    sparse::CsrMatrix a = sparse::cooToCsr(ca);
    sparse::CsrMatrix b = sparse::cooToCsr(cb);

    MendaSystem sys(smallSystem(2, 4));
    SpgemmResult result = sys.spgemm(a, b);
    expectExact(result.c, baselines::spgemmHeapMerge(a, b));
    EXPECT_EQ(result.c.rows, 8u);
    EXPECT_EQ(result.c.ptr[5] - result.c.ptr[4], 0u); // B row 5 empty
}

TEST(PuSpgemm, ZeroMatrixGivesEmptyProduct)
{
    sparse::CsrMatrix a;
    a.rows = 16;
    a.cols = 12;
    a.ptr.assign(17, 0);
    sparse::CsrMatrix b = sparse::generateUniform(12, 9, 40, 941);
    MendaSystem sys(smallSystem(2, 8));
    SpgemmResult result = sys.spgemm(a, b);
    EXPECT_EQ(result.c.nnz(), 0u);
    EXPECT_EQ(result.c.rows, 16u);
    EXPECT_EQ(result.c.cols, 9u);
    EXPECT_EQ(result.c.ptr, std::vector<std::uint32_t>(17, 0));
}

TEST(PuSpgemm, MergeWorkPartitioningBalancesPartialProducts)
{
    // Skewed A: NNZ-per-row varies wildly, so balancing on partial
    // products must differ from the naive equal-row split.
    sparse::CsrMatrix a =
        sparse::generateSkewedRows(256, 64, 3000, 1.6, 947);
    sparse::CsrMatrix b = sparse::generateUniform(64, 64, 800, 953);
    auto slices = spgemm::partitionByMergeWork(a, b, 4);
    ASSERT_EQ(slices.size(), 4u);
    spgemm::WorkProfile profile = spgemm::profileWork(a, b);
    std::uint64_t heaviest = 0;
    for (const auto &s : slices) {
        EXPECT_LE(s.rowBegin, s.rowEnd);
        heaviest = std::max(heaviest, profile.prefix[s.rowEnd] -
                                          profile.prefix[s.rowBegin]);
    }
    // Near-equal shares: the heaviest rank holds well under half the
    // work (a perfect split would hold a quarter).
    EXPECT_LT(heaviest, profile.total() / 2);

    MendaSystem sys(smallSystem(4, 32));
    SpgemmResult result = sys.spgemm(a, b);
    expectExact(result.c, baselines::spgemmHeapMerge(a, b));
}

TEST(PuSpgemm, HostApiSpgemmProtocol)
{
    sparse::CsrMatrix a = sparse::generateUniform(96, 64, 700, 967);
    sparse::CsrMatrix b = sparse::generateUniform(64, 80, 600, 971);
    nmp::Context ctx(smallSystem(2, 16));
    nmp::MatrixHandle g = ctx.allocSparseMatrix(a);

    ctx.spgemm(g, b); // non-blocking launch
    EXPECT_TRUE(ctx.mmio(0).start);
    EXPECT_FALSE(ctx.finished());
    ctx.wait();
    EXPECT_TRUE(ctx.finished());
    expectExact(ctx.productResult(), baselines::spgemmHeapMerge(a, b));
}

TEST(PuSpgemm, SolverRoutesThroughMergeEngine)
{
    sparse::CsrMatrix a = sparse::generateRmat(64, 500, 0.1, 0.2, 0.3,
                                               977);
    sparse::CsrMatrix b = sparse::generateUniform(64, 48, 400, 983);
    RunResult stats;
    sparse::CsrMatrix c = solver::spmm(a, b, smallSystem(2, 16), &stats);
    EXPECT_GT(stats.puCycles, 0u);
    EXPECT_GT(stats.seconds, 0.0);
    expectExact(c, baselines::spgemmHeapMerge(a, b));

    // Same structure and (within tolerance) the same values as the host
    // Gustavson kernel.
    sparse::CsrMatrix host = solver::spmm(a, b);
    ASSERT_EQ(c.ptr, host.ptr);
    ASSERT_EQ(c.idx, host.idx);
    for (std::size_t e = 0; e < c.val.size(); ++e)
        EXPECT_NEAR(c.val[e], host.val[e],
                    1e-3 * (std::abs(host.val[e]) + 1.0));
}

TEST(PuSpgemm, ThreadedShardsAreBitIdentical)
{
    sparse::CsrMatrix a = sparse::generateUniform(80, 64, 800, 991);
    sparse::CsrMatrix b = sparse::generateRmat(64, 700, 0.1, 0.2, 0.3,
                                               997);
    SystemConfig sequential = smallSystem(4, 16);
    SystemConfig threaded = sequential;
    threaded.hostThreads = 4;

    SpgemmResult want = MendaSystem(sequential).spgemm(a, b);
    SpgemmResult got = MendaSystem(threaded).spgemm(a, b);
    expectExact(got.c, want.c);
    EXPECT_EQ(got.puCycles, want.puCycles);
    EXPECT_EQ(got.readBlocks, want.readBlocks);
    EXPECT_EQ(got.writeBlocks, want.writeBlocks);
    EXPECT_EQ(got.treeOccupancyPacketCycles,
              want.treeOccupancyPacketCycles);
}

namespace
{

/**
 * Check @p plan is a valid merge forest over @p sizes.size() leaves:
 * every leaf consumed exactly once, every run consumed exactly once in
 * the very next iteration (the ping-pong lifetime), round fan-in
 * within [1, leaves], the final iteration a single round, and the
 * plan's spill ledger equal to an independent recount of the mass its
 * non-final rounds actually merge.
 */
void
expectValidMergeForest(const spgemm::MergeTreePlan &plan,
                       const std::vector<std::uint64_t> &sizes,
                       unsigned leaves)
{
    ASSERT_FALSE(plan.iterations.empty());
    std::vector<unsigned> leaf_uses(sizes.size(), 0);
    std::vector<std::uint64_t> prev_mass; // run masses of iteration t-1
    std::uint64_t recounted_spill = 0;
    for (std::size_t t = 0; t < plan.iterations.size(); ++t) {
        const spgemm::MergeIteration &iter = plan.iterations[t];
        const bool final = t + 1 == plan.iterations.size();
        if (final) {
            EXPECT_LE(iter.rounds.size(), 1u);
        }
        std::vector<unsigned> run_uses(prev_mass.size(), 0);
        std::vector<std::uint64_t> mass;
        for (const spgemm::MergeRound &round : iter.rounds) {
            EXPECT_GE(round.inputs.size(), 1u);
            EXPECT_LE(round.inputs.size(), leaves);
            std::uint64_t round_mass = 0;
            for (const spgemm::StreamRef &ref : round.inputs) {
                if (ref.kind == spgemm::StreamRef::Kind::Leaf) {
                    ASSERT_LT(ref.index, sizes.size());
                    ++leaf_uses[ref.index];
                    round_mass += sizes[ref.index];
                } else {
                    ASSERT_LT(ref.index, prev_mass.size());
                    ++run_uses[ref.index];
                    round_mass += prev_mass[ref.index];
                }
            }
            if (!final)
                recounted_spill += round_mass;
            mass.push_back(round_mass);
        }
        for (std::size_t r = 0; r < run_uses.size(); ++r)
            EXPECT_EQ(run_uses[r], 1u)
                << "run " << r << " of iteration " << t - 1
                << " not consumed exactly once by iteration " << t;
        prev_mass = std::move(mass);
    }
    EXPECT_LE(prev_mass.size(), 1u);
    for (std::size_t i = 0; i < leaf_uses.size(); ++i)
        EXPECT_EQ(leaf_uses[i], 1u)
            << "leaf " << i << " consumed " << leaf_uses[i] << " times";
    EXPECT_EQ(plan.spilledElements, recounted_spill);
}

} // namespace

TEST(PlanMergeTree, FuzzedPlansAreValidForests)
{
    // Random skewed leaf profiles across tree widths: the plan must be
    // a valid forest, keep the uniform planner's iteration count, and
    // never spill more than it (the weighted-cost property).
    Rng rng(0x5ca1ab1e);
    for (unsigned trial = 0; trial < 300; ++trial) {
        const unsigned leaves = 2u << rng.below(6); // 2..64
        const std::uint64_t n = rng.below(400);
        std::vector<std::uint64_t> sizes(n);
        std::uint64_t total = 0;
        for (std::uint64_t &s : sizes) {
            // Mostly tiny streams with occasional giants — the shape
            // condensing and deferral are built for.
            s = rng.below(4) == 0 ? rng.below(2000) : rng.below(8);
            total += s;
        }
        SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" +
                     std::to_string(n) + " leaves=" +
                     std::to_string(leaves));
        const spgemm::MergeTreePlan plan =
            spgemm::planMergeTree(sizes, leaves);
        expectValidMergeForest(plan, sizes, leaves);

        const spgemm::MergeSchedule uniform =
            spgemm::planMergeRounds(n, leaves, total);
        EXPECT_EQ(plan.iterations.size(), uniform.iterations);
        EXPECT_LE(plan.spilledElements, uniform.spilledElements);
    }
}

TEST(PlanMergeTree, EdgeProfiles)
{
    for (const unsigned leaves : {2u, 4u, 64u}) {
        for (const std::uint64_t n :
             {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{leaves},
              std::uint64_t{leaves} + 1,
              std::uint64_t{leaves} * leaves + 1}) {
            std::vector<std::uint64_t> sizes(n, 3);
            SCOPED_TRACE("n=" + std::to_string(n) + " leaves=" +
                         std::to_string(leaves));
            const spgemm::MergeTreePlan plan =
                spgemm::planMergeTree(sizes, leaves);
            expectValidMergeForest(plan, sizes, leaves);
            EXPECT_EQ(plan.iterations.size(),
                      spgemm::planMergeRounds(n, leaves, 3 * n)
                          .iterations);
        }
    }
}

TEST(PlanMergeTree, CondenseStreamsCoversEveryStreamInOrder)
{
    sparse::CsrMatrix a =
        sparse::generateSkewedRows(128, 96, 1200, 2.0, 515);
    sparse::CsrMatrix b = sparse::generateUniform(96, 80, 300, 516);
    const std::vector<spgemm::PartialProductStream> streams =
        spgemm::buildStreams(a, b);
    ASSERT_EQ(streams.size(), a.nnz());
    for (const unsigned cap : {0u, 1u, 2u, 7u, 64u}) {
        const unsigned effective_cap = std::max(cap, 1u);
        const std::vector<spgemm::CondensedLeaf> packs =
            spgemm::condenseStreams(streams, cap);
        std::uint64_t s = 0;
        for (const spgemm::CondensedLeaf &pack : packs) {
            ASSERT_EQ(pack.firstStream, s) << "cap=" << cap;
            ASSERT_GE(pack.streamCount, 1u);
            ASSERT_LE(pack.streamCount, effective_cap);
            std::uint64_t elements = 0;
            for (std::uint64_t t = pack.firstStream;
                 t < pack.firstStream + pack.streamCount; ++t) {
                if (t > pack.firstStream) {
                    ASSERT_GT(streams[t].outRow, streams[t - 1].outRow)
                        << "pack at " << pack.firstStream
                        << " concatenates out-of-order streams";
                }
                elements += streams[t].elements();
            }
            ASSERT_EQ(pack.elements, elements);
            s += pack.streamCount;
            // Greedy maximality: a pack only ends below its cap when
            // the next stream would break the sorted concatenation.
            if (pack.streamCount < effective_cap && s < streams.size()) {
                ASSERT_LE(streams[s].outRow, streams[s - 1].outRow);
            }
        }
        ASSERT_EQ(s, streams.size()) << "cap=" << cap;
    }
}

TEST(PuSpgemm, CondensedSchedulerSpillsLessAndStaysBitIdentical)
{
    // Deterministic R-MAT regression for the condensed scheduler: same
    // CSR bytes as uniform (and the heap oracle) at every host thread
    // count, strictly less COO ping-pong traffic.
    sparse::CsrMatrix a =
        sparse::generateRmat(256, 2048, 0.1, 0.2, 0.3, 4242);
    SystemConfig uniform = smallSystem(2, 16);
    SystemConfig huffman = uniform;
    huffman.pu.spgemm.scheduler = spgemm::SpgemmScheduler::Huffman;

    const auto spilled = [](const RunResult &r) {
        std::uint64_t total = 0;
        for (std::uint64_t blocks : r.spilledReadBlocks)
            total += blocks;
        for (std::uint64_t blocks : r.spilledWriteBlocks)
            total += blocks;
        return total;
    };

    SpgemmResult uni = MendaSystem(uniform).spgemm(a, a);
    SpgemmResult huf = MendaSystem(huffman).spgemm(a, a);
    const sparse::CsrMatrix want = baselines::spgemmHeapMerge(a, a);
    expectExact(uni.c, want);
    expectExact(huf.c, want);

    // Both schedulers go multi-round on a 16-leaf tree and the
    // condensed plan strictly reduces the spilled blocks.
    EXPECT_GE(uni.iterations, 3u);
    EXPECT_GE(huf.iterations, 2u);
    ASSERT_GT(spilled(uni), 0u);
    ASSERT_GT(spilled(huf), 0u);
    EXPECT_LT(spilled(huf), spilled(uni));

    // Sharded simulation must not move a single byte or block: CSR,
    // cycles, and the per-iteration spill ledgers all bit-identical
    // between --threads 1 and 4.
    SystemConfig threaded = huffman;
    threaded.hostThreads = 4;
    SpgemmResult huf4 = MendaSystem(threaded).spgemm(a, a);
    expectExact(huf4.c, huf.c);
    EXPECT_EQ(huf4.puCycles, huf.puCycles);
    EXPECT_EQ(huf4.readBlocks, huf.readBlocks);
    EXPECT_EQ(huf4.writeBlocks, huf.writeBlocks);
    EXPECT_EQ(huf4.spilledReadBlocks, huf.spilledReadBlocks);
    EXPECT_EQ(huf4.spilledWriteBlocks, huf.spilledWriteBlocks);
}

TEST(PuSpgemm, StatsExposeOccupancyAndStalls)
{
    sparse::CsrMatrix a = sparse::generateUniform(60, 50, 500, 1009);
    sparse::CsrMatrix b = sparse::generateUniform(50, 40, 400, 1013);
    MendaSystem sys(smallSystem(1, 8));
    SpgemmResult result = sys.spgemm(a, b);
    // A busy multi-round merge keeps packets resident in the tree for
    // many cycles and hits leaf back-pressure at least occasionally.
    EXPECT_GT(result.treeOccupancyPacketCycles, result.puCycles);
    EXPECT_GT(result.leafPushStallCycles, 0u);
    const double mean_occupancy =
        static_cast<double>(result.treeOccupancyPacketCycles) /
        static_cast<double>(result.puCycles);
    // Bounded by total FIFO capacity: (2 * leaves - 1) nodes x 2 slots.
    EXPECT_LE(mean_occupancy, (2.0 * 8 - 1) * 2);
}
