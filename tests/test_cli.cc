/**
 * @file
 * Integration tests of the `menda_sim` command-line tool: every
 * subcommand, JSON output, verification mode, .mtx input, and error
 * handling — exercised through the real binary.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "sparse/generate.hh"
#include "sparse/mmio.hh"

namespace
{

struct CommandResult
{
    int exitCode = -1;
    std::string output;
};

CommandResult
runTool(const std::string &args)
{
    const std::string cmd =
        std::string(MENDA_SIM_BIN) + " " + args + " 2>&1";
    CommandResult result;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return result;
    std::array<char, 512> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe))
        result.output += buffer.data();
    const int status = pclose(pipe);
    result.exitCode = WEXITSTATUS(status);
    return result;
}

} // namespace

TEST(Cli, InspectWorkload)
{
    CommandResult r = runTool("inspect --workload=N3 --scale=64");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("matrix: 4096 x 4096"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("MeNDA iterations"), std::string::npos);
}

TEST(Cli, InspectJson)
{
    CommandResult r = runTool("inspect --workload=N3 --scale=64 --json");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output.front(), '{');
    EXPECT_NE(r.output.find("\"nnz\":"), std::string::npos);
}

TEST(Cli, TransposeWithVerification)
{
    CommandResult r = runTool(
        "transpose --workload=N4 --scale=64 --leaves=16 --verify");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified against the golden reference"),
              std::string::npos);
    EXPECT_NE(r.output.find("throughput"), std::string::npos);
}

TEST(Cli, SpmvRuns)
{
    CommandResult r =
        runTool("spmv --workload=N4 --scale=64 --leaves=16 --json");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"kernel\":\"spmv\""), std::string::npos);
}

TEST(Cli, SpgemmRmatDemoVerifies)
{
    CommandResult r = runTool(
        "spgemm --rmat=64 --nnz=500 --dimms=1 --ranks=2 --leaves=16 "
        "--verify");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified against the heap-merge baseline"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("partial products"), std::string::npos);
}

TEST(Cli, SpgemmWorkloadJson)
{
    CommandResult r = runTool(
        "spgemm --workload=N3 --scale=32 --dimms=1 --leaves=32 --json");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"kernel\":\"spgemm\""), std::string::npos)
        << r.output;
}

TEST(Cli, SweepChannels)
{
    CommandResult r = runTool(
        "sweep --workload=N4 --scale=64 --leaves=16 --param=channels");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    // Three sweep rows (1/2/4 channels).
    EXPECT_NE(r.output.find("channels"), std::string::npos);
    EXPECT_NE(r.output.find("\n1 "), std::string::npos);
    EXPECT_NE(r.output.find("\n4 "), std::string::npos);
}

TEST(Cli, ReadsMatrixMarketFiles)
{
    const std::string path = "cli_test_matrix.mtx";
    menda::sparse::writeMatrixMarketFile(
        path, menda::sparse::generateUniform(100, 100, 500, 77));
    CommandResult r =
        runTool("transpose " + path + " --leaves=16 --verify");
    std::remove(path.c_str());
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails)
{
    CommandResult r = runTool("frobnicate");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, MissingFileFailsCleanly)
{
    CommandResult r = runTool("inspect /nonexistent/matrix.mtx");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, BadSweepParameterFailsCleanly)
{
    CommandResult r =
        runTool("sweep --workload=N4 --scale=64 --param=bogus");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown sweep parameter"),
              std::string::npos);
}
