/**
 * @file
 * Integration tests of the `menda_sim` command-line tool: every
 * subcommand, JSON output, verification mode, .mtx input, and error
 * handling — exercised through the real binary.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/report.hh"
#include "sparse/generate.hh"
#include "sparse/mmio.hh"

namespace
{

struct CommandResult
{
    int exitCode = -1;
    std::string output;
};

CommandResult
runCommand(const std::string &cmd)
{
    CommandResult result;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return result;
    std::array<char, 512> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe))
        result.output += buffer.data();
    const int status = pclose(pipe);
    result.exitCode = WEXITSTATUS(status);
    return result;
}

CommandResult
runTool(const std::string &args)
{
    return runCommand(std::string(MENDA_SIM_BIN) + " " + args);
}

CommandResult
runDiff(const std::string &args)
{
    return runCommand(std::string(MENDA_REPORT_DIFF_BIN) + " " + args);
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

} // namespace

TEST(Cli, InspectWorkload)
{
    CommandResult r = runTool("inspect --workload=N3 --scale=64");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("matrix: 4096 x 4096"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("MeNDA iterations"), std::string::npos);
}

TEST(Cli, InspectJson)
{
    CommandResult r = runTool("inspect --workload=N3 --scale=64 --json");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.output.front(), '{');
    EXPECT_NE(r.output.find("\"nnz\":"), std::string::npos);
}

TEST(Cli, TransposeWithVerification)
{
    CommandResult r = runTool(
        "transpose --workload=N4 --scale=64 --leaves=16 --verify");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified against the golden reference"),
              std::string::npos);
    EXPECT_NE(r.output.find("throughput"), std::string::npos);
}

TEST(Cli, SpmvRuns)
{
    CommandResult r =
        runTool("spmv --workload=N4 --scale=64 --leaves=16 --json");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"kernel\":\"spmv\""), std::string::npos);
}

TEST(Cli, SpgemmRmatDemoVerifies)
{
    CommandResult r = runTool(
        "spgemm --rmat=64 --nnz=500 --dimms=1 --ranks=2 --leaves=16 "
        "--verify");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified against the heap-merge baseline"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("partial products"), std::string::npos);
}

TEST(Cli, SpgemmWorkloadJson)
{
    CommandResult r = runTool(
        "spgemm --workload=N3 --scale=32 --dimms=1 --leaves=32 --json");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("\"kernel\":\"spgemm\""), std::string::npos)
        << r.output;
}

TEST(Cli, SweepChannels)
{
    CommandResult r = runTool(
        "sweep --workload=N4 --scale=64 --leaves=16 --param=channels");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    // Three sweep rows (1/2/4 channels).
    EXPECT_NE(r.output.find("channels"), std::string::npos);
    EXPECT_NE(r.output.find("\n1 "), std::string::npos);
    EXPECT_NE(r.output.find("\n4 "), std::string::npos);
}

TEST(Cli, ReadsMatrixMarketFiles)
{
    const std::string path = "cli_test_matrix.mtx";
    menda::sparse::writeMatrixMarketFile(
        path, menda::sparse::generateUniform(100, 100, 500, 77));
    CommandResult r =
        runTool("transpose " + path + " --leaves=16 --verify");
    std::remove(path.c_str());
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("verified"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails)
{
    CommandResult r = runTool("frobnicate");
    EXPECT_EQ(r.exitCode, 2);
    EXPECT_NE(r.output.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, MissingFileFailsCleanly)
{
    CommandResult r = runTool("inspect /nonexistent/matrix.mtx");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, BadSweepParameterFailsCleanly)
{
    CommandResult r =
        runTool("sweep --workload=N4 --scale=64 --param=bogus");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.output.find("unknown sweep parameter"),
              std::string::npos);
}

TEST(Cli, TraceFlagEmitsStructurallyValidChromeTrace)
{
    const std::string path = "cli_test.trace.json";
    CommandResult r = runTool("spgemm --rmat=64 --nnz=500 --dimms=1 "
                              "--leaves=16 --sample-period=100 --trace=" +
                              path);
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("[menda] trace:"), std::string::npos);

    menda::obs::json::Value doc;
    ASSERT_NO_THROW(doc = menda::obs::json::parse(slurp(path)))
        << "trace file is not valid JSON";
    std::remove(path.c_str());
    ASSERT_TRUE(doc.at("traceEvents").isArray());

    // The trace must carry all the advertised track families: per-bank
    // DRAM command instants, PU phase spans, fetch-round instants,
    // idle-skip spans, and counter tracks.
    std::set<std::string> tracks;
    std::set<std::string> phases;
    for (const auto &e : doc.at("traceEvents").asArray()) {
        if (e.at("name").asString() == "thread_name")
            tracks.insert(e.at("args").at("name").asString());
        if (e.at("ph").isString())
            phases.insert(e.at("ph").asString());
    }
    auto has_track = [&](const std::string &needle) {
        for (const std::string &t : tracks)
            if (t.find(needle) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(has_track(".bank")) << "per-bank DRAM command track";
    EXPECT_TRUE(has_track(".phases")) << "PU phase span track";
    EXPECT_TRUE(has_track(".rounds")) << "fetch-round instant track";
    EXPECT_TRUE(has_track("idleSkip.")) << "idle-skip span track";
    EXPECT_TRUE(has_track(".treeOccupancy")) << "occupancy counter";
    EXPECT_TRUE(has_track(".readQueueDepth")) << "queue-depth counter";
    // Span, instant, counter, and metadata events all present.
    EXPECT_TRUE(phases.count("X"));
    EXPECT_TRUE(phases.count("i"));
    EXPECT_TRUE(phases.count("C"));
    EXPECT_TRUE(phases.count("M"));
}

TEST(Cli, ReportFlagEmitsRunReportSchema)
{
    const std::string path = "cli_test.report.json";
    CommandResult r = runTool(
        "transpose --workload=N4 --scale=64 --leaves=16 "
        "--sample-period=200 --report=" + path);
    ASSERT_EQ(r.exitCode, 0) << r.output;
    menda::obs::RunReport report;
    ASSERT_NO_THROW(report = menda::obs::RunReport::read(path));
    std::remove(path.c_str());
    EXPECT_EQ(report.name(), "menda_sim.transpose");
    EXPECT_EQ(report.meta().at("kernel"), "transpose");
    EXPECT_GT(report.metric("puCycles"), 0.0);
    EXPECT_GT(report.metric("totalBlocks"), 0.0);
    EXPECT_TRUE(report.hasMetric("wallSeconds"));
    EXPECT_EQ(report.histograms().count("readLatency"), 1u);
    EXPECT_EQ(report.series().count("treeOccupancy"), 1u);
}

TEST(Cli, ProgressHeartbeatPrints)
{
    // One heartbeat per million cycles: the single-PU N4 run simulates
    // >2M PU cycles, so at least one line must appear.
    CommandResult r = runTool(
        "transpose --workload=N4 --scale=2 --dimms=1 --ranks=1 "
        "--leaves=16 --progress=1");
    ASSERT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("Mcycles"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("outstanding"), std::string::npos);
}

TEST(ReportDiffTool, PassesOnIdenticalFailsOnRegression)
{
    const std::string base = "cli_diff_base.json";
    const std::string regressed = "cli_diff_regressed.json";
    menda::obs::RunReport report("gate");
    report.setMetric("puCycles", 1000.0);
    report.setMetric("readBlocks", 500.0);
    report.write(base);

    CommandResult same = runDiff(base + " " + base);
    EXPECT_EQ(same.exitCode, 0) << same.output;
    EXPECT_NE(same.output.find("PASS"), std::string::npos);

    // A 20% cycle regression must trip the default 10% gate...
    report.setMetric("puCycles", 1200.0);
    report.write(regressed);
    CommandResult bad = runDiff(base + " " + regressed);
    EXPECT_EQ(bad.exitCode, 1) << bad.output;
    EXPECT_NE(bad.output.find("REGRESSION"), std::string::npos);
    EXPECT_NE(bad.output.find("FAIL"), std::string::npos);

    // ...and pass a loosened one.
    CommandResult loose =
        runDiff(base + " " + regressed + " --tolerance=0.25");
    EXPECT_EQ(loose.exitCode, 0) << loose.output;

    std::remove(base.c_str());
    std::remove(regressed.c_str());
}

TEST(ReportDiffTool, BadUsageExitsTwo)
{
    EXPECT_EQ(runDiff("").exitCode, 2);
    EXPECT_EQ(runDiff("one_file_only.json").exitCode, 2);
    EXPECT_EQ(runDiff("/nonexistent/a.json /nonexistent/b.json").exitCode,
              2);
}
