/**
 * @file
 * Unit tests for the hardware merge tree: sortedness, stability,
 * end-of-line propagation, seamless back-to-back rounds, and FIFO
 * back-pressure, across tree sizes (parameterized).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.hh"
#include "menda/merge_tree.hh"

using namespace menda;
using namespace menda::core;

namespace
{

PuConfig
smallConfig(unsigned leaves)
{
    PuConfig config;
    config.leaves = leaves;
    return config;
}

/** One sorted input stream: (col ascending, fixed row). */
struct TestStream
{
    Index row;
    std::vector<Index> cols;
};

class MergeTreeSizes : public ::testing::TestWithParam<unsigned>
{
};

} // namespace

TEST_P(MergeTreeSizes, MergesSortedStreamsByColumn)
{
    std::vector<TestStream> streams;
    Rng rng(42);
    MergeTree probe(smallConfig(GetParam()), MergeKey::Column);
    MergeTree &tree = probe; // sized like the parameterized tree
    std::vector<std::pair<Index, Index>> expect; // (col, row)
    for (unsigned s = 0; s < tree.streamSlots(); ++s) {
        TestStream stream;
        stream.row = s;
        Index col = 0;
        const unsigned len = static_cast<unsigned>(rng.below(6));
        for (unsigned i = 0; i < len; ++i) {
            col += 1 + static_cast<Index>(rng.below(10));
            stream.cols.push_back(col);
            expect.emplace_back(col, s);
        }
        streams.push_back(stream);
    }
    std::stable_sort(expect.begin(), expect.end(),
                     [](auto a, auto b) { return a.first < b.first; });

    MergeTree tree2(smallConfig(GetParam()), MergeKey::Column);
    std::vector<Packet> out = [&] {
        std::vector<std::size_t> cursor(tree2.streamSlots(), 0);
        std::vector<Packet> collected;
        std::uint64_t guard = 0;
        while (tree2.roundsCompleted() == 0 && ++guard < 1000000u) {
            for (unsigned s = 0; s < tree2.streamSlots(); ++s) {
                if (!tree2.canPush(s))
                    continue;
                const TestStream &stream = streams[s];
                if (stream.cols.empty()) {
                    if (cursor[s] == 0) {
                        tree2.push(s, Packet::endOfLine());
                        cursor[s] = 1;
                    }
                } else if (cursor[s] < stream.cols.size()) {
                    const bool last = cursor[s] + 1 == stream.cols.size();
                    tree2.push(s, Packet::data(stream.row,
                                               stream.cols[cursor[s]],
                                               1.0f, last));
                    ++cursor[s];
                }
            }
            if (tree2.canPop())
                collected.push_back(tree2.pop());
            tree2.tick();
        }
        return collected;
    }();

    std::vector<std::pair<Index, Index>> got;
    for (const Packet &p : out)
        if (p.valid)
            got.emplace_back(p.col, p.row);
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect) << "merged output must be (col, row) sorted "
                              "with stable row order";
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(out.back().eol) << "last packet must carry end-of-line";
    for (std::size_t i = 0; i + 1 < out.size(); ++i)
        EXPECT_FALSE(out[i].eol);
}

TEST_P(MergeTreeSizes, EmptyRoundEmitsPureEol)
{
    MergeTree tree(smallConfig(GetParam()), MergeKey::Column);
    std::vector<TestStream> streams(tree.streamSlots());
    for (unsigned s = 0; s < tree.streamSlots(); ++s)
        streams[s].row = s;

    std::vector<std::size_t> cursor(tree.streamSlots(), 0);
    std::uint64_t guard = 0;
    std::vector<Packet> out;
    while (tree.roundsCompleted() == 0) {
        ASSERT_LT(++guard, 100000u);
        for (unsigned s = 0; s < tree.streamSlots(); ++s) {
            if (tree.canPush(s) && cursor[s] == 0) {
                tree.push(s, Packet::endOfLine());
                cursor[s] = 1;
            }
        }
        if (tree.canPop())
            out.push_back(tree.pop());
        tree.tick();
    }
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].valid);
    EXPECT_TRUE(out[0].eol);
    EXPECT_TRUE(tree.drained());
}

TEST_P(MergeTreeSizes, BackToBackRoundsStaySeparated)
{
    // Two rounds pushed back-to-back: round 1 data enters the leaves
    // right behind round 0's EOL; outputs must not interleave.
    MergeTree tree(smallConfig(GetParam()), MergeKey::Column);
    const unsigned slots = tree.streamSlots();
    std::vector<std::vector<Packet>> feed(slots);
    for (unsigned s = 0; s < slots; ++s) {
        // Round 0: single element with large col; round 1: small col.
        feed[s].push_back(Packet::data(s, 1000 + s, 1.0f, true));
        feed[s].push_back(Packet::data(s, s, 2.0f, true));
    }
    std::vector<std::size_t> cursor(slots, 0);
    std::vector<Packet> out;
    std::uint64_t guard = 0;
    while (tree.roundsCompleted() < 2) {
        ASSERT_LT(++guard, 1000000u);
        for (unsigned s = 0; s < slots; ++s)
            if (cursor[s] < feed[s].size() && tree.canPush(s))
                tree.push(s, feed[s][cursor[s]++]);
        if (tree.canPop())
            out.push_back(tree.pop());
        tree.tick();
    }
    // First `slots` packets belong to round 0 (cols >= 1000); the next
    // `slots` to round 1 (cols < 1000).
    ASSERT_EQ(out.size(), 2 * slots);
    for (unsigned i = 0; i < slots; ++i) {
        EXPECT_GE(out[i].col, 1000u) << "round 0 leaked round 1 data";
        EXPECT_LT(out[slots + i].col, 1000u);
    }
    EXPECT_TRUE(out[slots - 1].eol);
    EXPECT_TRUE(out[2 * slots - 1].eol);
    EXPECT_TRUE(tree.drained());
}

TEST_P(MergeTreeSizes, ThroughputIsOnePopPerCycleWhenSaturated)
{
    // With all leaves fed eagerly, the root must emit one packet per
    // cycle after the pipeline fills (the design goal of Sec. 3.2).
    MergeTree tree(smallConfig(GetParam()), MergeKey::Column);
    const unsigned slots = tree.streamSlots();
    const unsigned per_stream = 64;
    std::vector<std::size_t> sent(slots, 0);
    std::uint64_t cycles = 0, popped = 0;
    while (tree.roundsCompleted() == 0) {
        for (unsigned s = 0; s < slots; ++s) {
            if (sent[s] < per_stream && tree.canPush(s)) {
                const bool last = sent[s] + 1 == per_stream;
                tree.push(s, Packet::data(
                                  s, static_cast<Index>(sent[s] * slots + s),
                                  1.0f, last));
                ++sent[s];
            }
        }
        if (tree.canPop()) {
            if (tree.pop().valid)
                ++popped;
        }
        tree.tick();
        ++cycles;
        ASSERT_LT(cycles, 1000000u);
    }
    const std::uint64_t total = static_cast<std::uint64_t>(slots) *
                                per_stream;
    EXPECT_EQ(popped, total);
    // Pipeline fill costs about levels() cycles; allow small slack.
    EXPECT_LE(cycles, total + tree.levels() + 8);
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MergeTreeSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u, 256u));

TEST(MergeTree, RowKeyMergesByRow)
{
    PuConfig config = smallConfig(4);
    MergeTree tree(config, MergeKey::Row);
    // Streams sorted by row (SpMV order).
    std::vector<std::vector<Packet>> feed = {
        {Packet::data(2, 0, 1.0f, false), Packet::data(9, 0, 1.0f, true)},
        {Packet::data(1, 1, 1.0f, true)},
        {Packet::data(5, 2, 1.0f, true)},
        {Packet::data(3, 3, 1.0f, true)},
    };
    std::vector<std::size_t> cursor(4, 0);
    std::vector<Index> rows;
    std::uint64_t guard = 0;
    while (tree.roundsCompleted() == 0) {
        ASSERT_LT(++guard, 100000u);
        for (unsigned s = 0; s < 4; ++s)
            if (cursor[s] < feed[s].size() && tree.canPush(s))
                tree.push(s, feed[s][cursor[s]++]);
        if (tree.canPop()) {
            Packet p = tree.pop();
            if (p.valid)
                rows.push_back(p.row);
        }
        tree.tick();
    }
    EXPECT_EQ(rows, (std::vector<Index>{1, 2, 3, 5, 9}));
}

TEST(MergeTree, RejectsBadLeafCounts)
{
    PuConfig config;
    config.leaves = 3;
    EXPECT_THROW(MergeTree(config, MergeKey::Column), std::runtime_error);
    config.leaves = 0;
    EXPECT_THROW(MergeTree(config, MergeKey::Column), std::runtime_error);
    config.leaves = 1;
    EXPECT_THROW(MergeTree(config, MergeKey::Column), std::runtime_error);
}

class MergeTreeFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MergeTreeFuzz, RandomStallsNeverCorruptTheMerge)
{
    // Property: regardless of when producers push and the consumer pops
    // (random stalls on both sides), every round's output is the sorted
    // multiset union of its inputs with exactly one trailing EOL.
    Rng rng(0xabc000 + GetParam());
    PuConfig config;
    config.leaves = 8u << rng.below(3); // 8/16/32
    config.fifoEntries = 2 + rng.below(2);
    MergeTree tree(config, MergeKey::Column);
    const unsigned slots = tree.streamSlots();
    const unsigned rounds = 3;

    // Pre-generate random sorted streams per slot per round.
    std::vector<std::vector<std::vector<Index>>> streams(
        rounds, std::vector<std::vector<Index>>(slots));
    std::vector<std::vector<std::pair<Index, Index>>> expect(rounds);
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned s = 0; s < slots; ++s) {
            Index col = 0;
            const unsigned len = static_cast<unsigned>(rng.below(7));
            for (unsigned i = 0; i < len; ++i) {
                col += 1 + static_cast<Index>(rng.below(5));
                streams[r][s].push_back(col);
                expect[r].emplace_back(col, s);
            }
        }
        std::stable_sort(expect[r].begin(), expect[r].end(),
                         [](auto a, auto b) { return a.first < b.first; });
    }

    std::vector<unsigned> round_of(slots, 0);
    std::vector<std::size_t> cursor(slots, 0);
    std::vector<std::vector<std::pair<Index, Index>>> got(rounds);
    unsigned rounds_done = 0;
    std::uint64_t guard = 0;
    while (rounds_done < rounds) {
        ASSERT_LT(++guard, 2000000u) << "merge did not converge";
        for (unsigned s = 0; s < slots; ++s) {
            if (round_of[s] >= rounds || !tree.canPush(s))
                continue;
            if (rng.below(3) == 0)
                continue; // random producer stall
            const auto &stream = streams[round_of[s]][s];
            if (stream.empty()) {
                tree.push(s, Packet::endOfLine());
                ++round_of[s];
                cursor[s] = 0;
            } else {
                const bool last = cursor[s] + 1 == stream.size();
                tree.push(s, Packet::data(s, stream[cursor[s]], 1.0f,
                                          last));
                if (++cursor[s] == stream.size()) {
                    ++round_of[s];
                    cursor[s] = 0;
                }
            }
        }
        if (tree.canPop() && rng.below(4) != 0) { // random consumer stall
            Packet p = tree.pop();
            if (p.valid)
                got[rounds_done].emplace_back(p.col, p.row);
            if (p.eol)
                ++rounds_done;
        }
        tree.tick();
    }
    for (unsigned r = 0; r < rounds; ++r)
        EXPECT_EQ(got[r], expect[r]) << "round " << r;
    EXPECT_TRUE(tree.drained());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeTreeFuzz, ::testing::Range(0u, 8u));
