/**
 * @file
 * Smoke tests that run every example binary end-to-end (small inputs)
 * and check both the exit status and the key output lines — the
 * examples are part of the public API surface and must keep working.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace
{

struct CommandResult
{
    int exitCode = -1;
    std::string output;
};

CommandResult
runExample(const std::string &binary, const std::string &args)
{
    CommandResult result;
    FILE *pipe = popen((binary + " " + args + " 2>&1").c_str(), "r");
    if (!pipe)
        return result;
    std::array<char, 512> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe))
        result.output += buffer.data();
    result.exitCode = WEXITSTATUS(pclose(pipe));
    return result;
}

} // namespace

TEST(Examples, Quickstart)
{
    CommandResult r =
        runExample(EXAMPLE_DIR "/quickstart", "--rows=1024 --nnz=8000");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("MATCHES the golden reference"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("rank 3:"), std::string::npos);
}

TEST(Examples, GraphAnalytics)
{
    CommandResult r = runExample(EXAMPLE_DIR "/graph_analytics",
                                 "--vertices=1024 --edges=8192");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("SSSP from vertex"), std::string::npos);
    EXPECT_NE(r.output.find("PageRank"), std::string::npos);
    EXPECT_NE(r.output.find("cheaper"), std::string::npos);
}

TEST(Examples, SpmvDataflow)
{
    CommandResult r = runExample(EXAMPLE_DIR "/spmv_dataflow",
                                 "--rows=1024 --nnz=8192 --iters=2");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("GTEPS"), std::string::npos);
    EXPECT_NE(r.output.find("worst rel err"), std::string::npos);
}

TEST(Examples, LinearSolver)
{
    CommandResult r = runExample(EXAMPLE_DIR "/linear_solver",
                                 "--n=512 --solver=bicg");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("converged"), std::string::npos);
    EXPECT_NE(r.output.find("amortized"), std::string::npos);
}

TEST(Examples, LinearSolverQmr)
{
    CommandResult r = runExample(EXAMPLE_DIR "/linear_solver",
                                 "--n=512 --solver=qmr");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("converged"), std::string::npos);
}

TEST(Examples, SlamInformationMatrix)
{
    CommandResult r = runExample(EXAMPLE_DIR "/slam_information_matrix",
                                 "--poses=400 --steps=2");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("information nnz"), std::string::npos);
    EXPECT_NE(r.output.find("critical path"), std::string::npos);
}

TEST(Examples, TransposeExplorer)
{
    CommandResult r = runExample(EXAMPLE_DIR "/transpose_explorer",
                                 "--workload=N4 --scale=64");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("every configuration validated"),
              std::string::npos)
        << r.output;
}
