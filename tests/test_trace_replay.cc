/**
 * @file
 * Tests for trace recording and multi-threaded replay: event packing,
 * barrier semantics, bandwidth saturation behaviour (the Fig. 3(b)
 * mechanism), and MSHR-limited overlap.
 */

#include <gtest/gtest.h>

#include "trace/recorder.hh"
#include "trace/replay.hh"

using namespace menda;
using namespace menda::trace;

TEST(Recorder, EventPackingRoundTrips)
{
    EXPECT_EQ(eventAddr(makeEvent(0x12345678, false)), 0x12345678u);
    EXPECT_FALSE(eventIsWrite(makeEvent(0x12345678, false)));
    EXPECT_TRUE(eventIsWrite(makeEvent(0x12345678, true)));
    EXPECT_TRUE(eventIsBarrier(barrierEvent));
    EXPECT_FALSE(eventIsBarrier(makeEvent(0xffffffff, true)));
}

TEST(Recorder, PerThreadStreamsAreIndependent)
{
    TraceRecorder rec(2);
    int x = 0;
    rec.access(0, &x, false);
    rec.access(1, &x, true);
    rec.barrier(0);
    EXPECT_EQ(rec.stream(0).size(), 2u);
    EXPECT_EQ(rec.stream(1).size(), 1u);
    EXPECT_EQ(rec.totalAccesses(), 2u);
}

namespace
{

/** Build a single-thread streaming trace of @p blocks sequential reads. */
TraceRecorder
streamingTrace(unsigned threads, std::uint64_t blocks_per_thread)
{
    TraceRecorder rec(threads);
    for (unsigned t = 0; t < threads; ++t) {
        const Addr base = 0x10000000ull * (t + 1);
        for (std::uint64_t b = 0; b < blocks_per_thread; ++b)
            rec.access(t, reinterpret_cast<const void *>(base + b * 64),
                       false);
    }
    return rec;
}

} // namespace

TEST(Replay, CompletesAndCountsTraffic)
{
    TraceRecorder rec = streamingTrace(1, 2000);
    ReplayConfig config;
    ReplayResult result = replayTrace(rec, config);
    EXPECT_GT(result.seconds, 0.0);
    // Every block was cold: all 2000 must reach DRAM.
    EXPECT_EQ(result.dramReadBlocks, 2000u);
    EXPECT_EQ(result.dramWriteBlocks, 0u);
}

TEST(Replay, CacheHitsStayOnChip)
{
    TraceRecorder rec(1);
    int x = 0;
    for (int i = 0; i < 100; ++i)
        rec.access(0, &x, false);
    ReplayConfig config;
    ReplayResult result = replayTrace(rec, config);
    EXPECT_EQ(result.dramReadBlocks, 1u);
    EXPECT_EQ(result.l1Hits, 99u);
}

TEST(Replay, BandwidthSaturatesWithThreads)
{
    // The Fig. 3(b) mechanism: utilized bandwidth grows with threads and
    // saturates below the theoretical peak.
    ReplayConfig config;
    double bw1, bw8, bw32;
    {
        ReplayResult r = replayTrace(streamingTrace(1, 8000), config);
        bw1 = r.achievedBandwidth();
    }
    {
        ReplayResult r = replayTrace(streamingTrace(8, 8000), config);
        bw8 = r.achievedBandwidth();
    }
    {
        ReplayResult r = replayTrace(streamingTrace(32, 8000), config);
        bw32 = r.achievedBandwidth();
    }
    // A single thread with 16 MSHRs over four streaming channels already
    // achieves a sizable fraction of peak; more threads push towards the
    // saturation plateau rather than scaling linearly (Fig. 3(b)).
    EXPECT_GT(bw8, bw1 * 1.2);
    EXPECT_GT(bw32, bw8 * 0.9) << "no collapse at high thread count";
    EXPECT_LT(bw32, config.peakBandwidth() * 1.0001)
        << "utilized bandwidth can never exceed the theoretical peak";
    EXPECT_GT(bw32, config.peakBandwidth() * 0.5)
        << "32 streaming threads should get reasonably close to peak";
}

TEST(Replay, BarrierSerializesPhases)
{
    // Two threads, one does all its work before the barrier, the other
    // after: the barrier forces the phases back-to-back, so the run must
    // take at least (almost) twice one phase executed alone.
    ReplayConfig config;
    const double single =
        replayTrace(streamingTrace(1, 4000), config).seconds;

    TraceRecorder with(2);
    for (std::uint64_t b = 0; b < 4000; ++b)
        with.access(0, reinterpret_cast<const void *>(0x10000000ull +
                                                      b * 64),
                    false);
    with.barrier(0);
    with.barrier(1);
    for (std::uint64_t b = 0; b < 4000; ++b)
        with.access(1, reinterpret_cast<const void *>(0x90000000ull +
                                                      b * 64),
                    false);
    const double serialized = replayTrace(with, config).seconds;
    EXPECT_GT(serialized, single * 1.8);
}

TEST(Replay, WritebacksReachDram)
{
    // Write a footprint larger than the whole hierarchy, then stream far
    // past it: dirty lines must be written back to DRAM.
    TraceRecorder rec(1);
    const std::uint64_t blocks = 2 * (32 + 256 + 3 * 1024) * 1024 / 64;
    for (std::uint64_t b = 0; b < blocks; ++b)
        rec.access(0, reinterpret_cast<const void *>(0x4000000 + b * 64),
                   true);
    for (std::uint64_t b = 0; b < blocks; ++b)
        rec.access(0,
                   reinterpret_cast<const void *>(0x40000000 + b * 64),
                   false);
    ReplayConfig config;
    ReplayResult result = replayTrace(rec, config);
    EXPECT_GT(result.dramWriteBlocks, blocks / 2);
}
