/**
 * @file
 * Tests for the simulation kernel: exact multi-domain clocking and FIFO
 * semantics.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/fifo.hh"

using namespace menda;

namespace
{

struct CycleCounter : Ticked
{
    Cycle count = 0;
    void tick() override { ++count; }
};

} // namespace

TEST(Clock, TwoDomainsTickAtExactRatio)
{
    TickScheduler sched;
    auto *pu = sched.addDomain("pu", 800);
    auto *dram = sched.addDomain("dram", 1200);
    CycleCounter pu_c, dram_c;
    pu->attach(&pu_c);
    dram->attach(&dram_c);

    // Over any window, cycle counts must track the exact 800:1200 ratio.
    sched.runUntil([&] { return pu_c.count >= 800 && dram_c.count >= 1200; });
    EXPECT_EQ(pu_c.count, 800u);
    EXPECT_EQ(dram_c.count, 1200u);
    // 1200 DRAM cycles span [0, 1199 * (1/1200MHz)] of simulated time.
    EXPECT_NEAR(sched.seconds(), 1e-6, 2e-9);
}

TEST(Clock, LcmBaseFrequency)
{
    TickScheduler sched;
    sched.addDomain("a", 800);
    sched.addDomain("b", 1200);
    sched.step();
    EXPECT_EQ(sched.baseFreqMhz(), 2400u);
}

TEST(Clock, CoincidentTicksFireBothDomains)
{
    TickScheduler sched;
    auto *a = sched.addDomain("a", 600);
    auto *b = sched.addDomain("b", 1200);
    CycleCounter ca, cb;
    a->attach(&ca);
    b->attach(&cb);
    sched.step(); // tick 0: both fire
    EXPECT_EQ(ca.count, 1u);
    EXPECT_EQ(cb.count, 1u);
    sched.step(); // b only
    EXPECT_EQ(ca.count, 1u);
    EXPECT_EQ(cb.count, 2u);
}

TEST(Clock, SweepFrequenciesStayExact)
{
    // The Fig. 15 frequency sweep must be drift-free at every point.
    for (std::uint64_t mhz : {400u, 600u, 800u, 1000u, 1200u}) {
        TickScheduler sched;
        auto *pu = sched.addDomain("pu", mhz);
        auto *dram = sched.addDomain("dram", 1200);
        CycleCounter pu_c, dram_c;
        pu->attach(&pu_c);
        dram->attach(&dram_c);
        sched.runUntil([&] { return dram_c.count >= 12000; });
        EXPECT_EQ(pu_c.count, mhz * 10) << mhz << " MHz";
    }
}

TEST(Fifo, PushPopOrder)
{
    Fifo<int> f(3);
    EXPECT_TRUE(f.empty());
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.pop(), 1);
    f.push(4);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, OverflowAndUnderflowAreBugs)
{
    Fifo<int> f(1);
    f.push(1);
    EXPECT_THROW(f.push(2), std::runtime_error);
    f.pop();
    EXPECT_THROW(f.pop(), std::runtime_error);
}

TEST(Fifo, WrapsAroundManyTimes)
{
    Fifo<int> f(2);
    for (int i = 0; i < 1000; ++i) {
        f.push(i);
        ASSERT_EQ(f.front(), i);
        ASSERT_EQ(f.pop(), i);
    }
}
