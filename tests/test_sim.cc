/**
 * @file
 * Tests for the simulation kernel: exact multi-domain clocking and FIFO
 * semantics.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/fifo.hh"

using namespace menda;

namespace
{

struct CycleCounter : Ticked
{
    Cycle count = 0;
    void tick() override { ++count; }
};

/**
 * A component that does work every @p stride-th cycle of its domain and
 * declares the cycles in between quiescent. With `dense` set it never
 * reports quiescence, giving the exact reference schedule to compare
 * the fast-forwarded one against.
 */
struct StridedWorker : Ticked
{
    explicit StridedWorker(Cycle stride, bool dense = false)
        : stride_(stride), dense_(dense)
    {}

    Cycle cycle = 0;   ///< own-domain cycles elapsed (ticked + skipped)
    Cycle ticks = 0;   ///< tick() invocations
    Cycle skipped = 0; ///< cycles delivered via skipCycles()
    Cycle work = 0;    ///< work items executed (one per stride)

    void
    tick() override
    {
        if (cycle % stride_ == 0)
            ++work;
        ++cycle;
        ++ticks;
    }

    Cycle
    quiescentFor() const override
    {
        if (dense_)
            return 0;
        return cycle % stride_ == 0 ? 0 : stride_ - cycle % stride_;
    }

    void
    skipCycles(Cycle cycles) override
    {
        cycle += cycles;
        skipped += cycles;
    }

    Cycle stride_;
    bool dense_;
};

} // namespace

TEST(Clock, TwoDomainsTickAtExactRatio)
{
    TickScheduler sched;
    auto *pu = sched.addDomain("pu", 800);
    auto *dram = sched.addDomain("dram", 1200);
    CycleCounter pu_c, dram_c;
    pu->attach(&pu_c);
    dram->attach(&dram_c);

    // Over any window, cycle counts must track the exact 800:1200 ratio.
    sched.runUntil([&] { return pu_c.count >= 800 && dram_c.count >= 1200; });
    EXPECT_EQ(pu_c.count, 800u);
    EXPECT_EQ(dram_c.count, 1200u);
    // 1200 DRAM cycles span [0, 1199 * (1/1200MHz)] of simulated time.
    EXPECT_NEAR(sched.seconds(), 1e-6, 2e-9);
}

TEST(Clock, LcmBaseFrequency)
{
    TickScheduler sched;
    sched.addDomain("a", 800);
    sched.addDomain("b", 1200);
    sched.step();
    EXPECT_EQ(sched.baseFreqMhz(), 2400u);
}

TEST(Clock, CoincidentTicksFireBothDomains)
{
    TickScheduler sched;
    auto *a = sched.addDomain("a", 600);
    auto *b = sched.addDomain("b", 1200);
    CycleCounter ca, cb;
    a->attach(&ca);
    b->attach(&cb);
    sched.step(); // tick 0: both fire
    EXPECT_EQ(ca.count, 1u);
    EXPECT_EQ(cb.count, 1u);
    sched.step(); // b only
    EXPECT_EQ(ca.count, 1u);
    EXPECT_EQ(cb.count, 2u);
}

TEST(Clock, SweepFrequenciesStayExact)
{
    // The Fig. 15 frequency sweep must be drift-free at every point.
    for (std::uint64_t mhz : {400u, 600u, 800u, 1000u, 1200u}) {
        TickScheduler sched;
        auto *pu = sched.addDomain("pu", mhz);
        auto *dram = sched.addDomain("dram", 1200);
        CycleCounter pu_c, dram_c;
        pu->attach(&pu_c);
        dram->attach(&dram_c);
        sched.runUntil([&] { return dram_c.count >= 12000; });
        EXPECT_EQ(pu_c.count, mhz * 10) << mhz << " MHz";
    }
}

TEST(IdleSkip, CoprimeDomainsMatchDenseSchedule)
{
    // Two co-prime domains (7 and 11 MHz -> base 77 MHz) where every
    // component sleeps most cycles. The fast-forwarded schedule must
    // execute exactly the same work at exactly the same cycle counts as
    // the dense reference, while actually skipping most ticks.
    // The stop predicate is phrased in work items (which land on real,
    // non-skippable ticks), not raw cycle counts: runUntil() evaluates
    // the predicate between steps, and a skip-mode step fast-forwards
    // through a whole quiescent window in one jump.
    auto run = [](bool dense, Cycle &a_work, Cycle &b_work,
                  Cycle &a_cycles, Cycle &b_cycles, Cycle &a_ticks,
                  Tick &stop_tick) {
        TickScheduler sched;
        auto *da = sched.addDomain("a", 7);
        auto *db = sched.addDomain("b", 11);
        StridedWorker a(13, dense), b(29, dense);
        da->attach(&a);
        db->attach(&b);
        sched.runUntil([&] { return a.work >= 54 && b.work >= 38; });
        EXPECT_EQ(a.cycle, a.ticks + a.skipped);
        EXPECT_EQ(a.cycle, da->curCycle());
        EXPECT_EQ(b.cycle, db->curCycle());
        a_work = a.work;
        b_work = b.work;
        a_cycles = a.cycle;
        b_cycles = b.cycle;
        a_ticks = a.ticks;
        stop_tick = sched.curTick();
    };

    Cycle aw_d, bw_d, ac_d, bc_d, at_d;
    Tick t_d;
    run(true, aw_d, bw_d, ac_d, bc_d, at_d, t_d);
    Cycle aw_s, bw_s, ac_s, bc_s, at_s;
    Tick t_s;
    run(false, aw_s, bw_s, ac_s, bc_s, at_s, t_s);

    EXPECT_EQ(aw_s, aw_d);
    EXPECT_EQ(bw_s, bw_d);
    EXPECT_EQ(ac_s, ac_d);
    EXPECT_EQ(bc_s, bc_d);
    EXPECT_EQ(t_s, t_d) << "both modes must stop on the same tick";
    EXPECT_EQ(at_d, ac_d) << "dense mode must tick every cycle";
    EXPECT_LT(at_s, ac_s / 2) << "skip mode must fast-forward";
}

TEST(IdleSkip, SkippedDomainsKeepExactFrequencyRatio)
{
    // The 800:1200 MHz production ratio with both components mostly
    // quiescent: fast-forwarding must preserve the drift-free ratio.
    TickScheduler sched;
    auto *pu = sched.addDomain("pu", 800);
    auto *dram = sched.addDomain("dram", 1200);
    StridedWorker a(17), b(23);
    pu->attach(&a);
    dram->attach(&b);
    // Stop on a work item (a real tick): the 522nd lands on DRAM cycle
    // 23 * 521 = 11983, i.e. base tick 23966 (base = lcm = 2400 MHz,
    // DRAM period 2, PU period 3).
    sched.runUntil([&] { return b.work >= 522; });
    const Tick t = sched.curTick();
    EXPECT_EQ(t, 23966u);
    // Cycle counts are exact boundary counts at the stop tick, so the
    // 800:1200 ratio is drift-free no matter how much was skipped.
    EXPECT_EQ(b.cycle, t / 2 + 1);
    EXPECT_EQ(a.cycle, t / 3 + 1);
    EXPECT_NEAR(sched.seconds(),
                static_cast<double>(b.cycle) / 1200e6, 2e-9);
    EXPECT_GT(sched.cyclesSkipped(), 0u);
}

TEST(IdleSkip, IndefinitelyQuiescentComponentIsNeverTicked)
{
    // A done component (quiescentFor ~0ull) must not gate progress; the
    // active domain drives time and the idle one is only caught up.
    struct Done : Ticked
    {
        Cycle ticks = 0;
        void tick() override { ++ticks; }
        Cycle quiescentFor() const override { return ~Cycle(0); }
    };
    TickScheduler sched;
    auto *da = sched.addDomain("a", 3);
    auto *db = sched.addDomain("b", 5);
    CycleCounter active;
    Done done;
    da->attach(&active);
    db->attach(&done);
    sched.runUntil([&] { return active.count >= 300; });
    EXPECT_EQ(active.count, 300u);
    // The idle domain only fires where its boundary coincides with a
    // step the active domain forced (every 15 base ticks here); all
    // other cycles are fast-forwarded.
    EXPECT_GE(db->curCycle(), 498u);
    EXPECT_LE(done.ticks, 100u);
    EXPECT_LT(done.ticks, db->curCycle() / 2);
}

TEST(Fifo, PushPopOrder)
{
    Fifo<int> f(3);
    EXPECT_TRUE(f.empty());
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.pop(), 1);
    f.push(4);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, OverflowAndUnderflowAreBugs)
{
    Fifo<int> f(1);
    f.push(1);
    EXPECT_THROW(f.push(2), std::runtime_error);
    f.pop();
    EXPECT_THROW(f.pop(), std::runtime_error);
}

TEST(Fifo, WrapsAroundManyTimes)
{
    Fifo<int> f(2);
    for (int i = 0; i < 1000; ++i) {
        f.push(i);
        ASSERT_EQ(f.front(), i);
        ASSERT_EQ(f.pop(), i);
    }
}
