/**
 * @file
 * Tests for the request queues and CAM-style coalescing (Sec. 3.4).
 */

#include <gtest/gtest.h>

#include "mem/request_queue.hh"

using namespace menda;
using namespace menda::mem;

namespace
{

MemRequest
load(Addr addr, std::uint32_t requester = 0)
{
    MemRequest req;
    req.addr = addr;
    req.requester = requester;
    return req;
}

MemRequest
store(Addr addr)
{
    MemRequest req;
    req.addr = addr;
    req.isWrite = true;
    return req;
}

} // namespace

TEST(RequestQueue, FifoOrderAndCapacity)
{
    RequestQueue q(4, false);
    EXPECT_TRUE(q.empty());
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(q.enqueue(load(a * 64)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.enqueue(load(999 * 64)));
    EXPECT_EQ(q.front().addr, 0u);
    q.remove(0);
    EXPECT_EQ(q.front().addr, 64u);
    EXPECT_TRUE(q.enqueue(load(999 * 64)));
}

TEST(RequestQueue, CoalescingMergesSameBlockLoads)
{
    RequestQueue q(4, true);
    EXPECT_TRUE(q.enqueue(load(256, 1)));
    EXPECT_TRUE(q.enqueue(load(256, 2)));
    EXPECT_TRUE(q.enqueue(load(256, 3)));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.at(0).coalesced, 2u);
    EXPECT_EQ(q.coalescedHits().value(), 2u);
}

TEST(RequestQueue, CoalescingAcceptsEvenWhenFull)
{
    // A full queue still merges a matching load — that is the CAM's
    // whole point during iteration-0 bursts.
    RequestQueue q(2, true);
    EXPECT_TRUE(q.enqueue(load(0)));
    EXPECT_TRUE(q.enqueue(load(64)));
    EXPECT_TRUE(q.full());
    EXPECT_TRUE(q.enqueue(load(64)));
    EXPECT_FALSE(q.enqueue(load(128)));
}

TEST(RequestQueue, WritesNeverCoalesce)
{
    RequestQueue q(4, true);
    EXPECT_TRUE(q.enqueue(store(512)));
    EXPECT_TRUE(q.enqueue(store(512)));
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, LoadsDoNotMergeIntoStores)
{
    RequestQueue q(4, true);
    EXPECT_TRUE(q.enqueue(store(512)));
    EXPECT_TRUE(q.enqueue(load(512)));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(1).coalesced, 0u);
}

TEST(RequestQueue, DisabledCoalescingKeepsDuplicates)
{
    RequestQueue q(4, false);
    EXPECT_TRUE(q.enqueue(load(256)));
    EXPECT_TRUE(q.enqueue(load(256)));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.coalescedHits().value(), 0u);
}

TEST(RequestQueue, IdsAreUniqueAndMonotonic)
{
    RequestQueue q(8, false);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_TRUE(q.enqueue(load(a * 64)));
    for (std::size_t i = 1; i < q.size(); ++i)
        EXPECT_GT(q.at(i).id, q.at(i - 1).id);
}

TEST(RequestQueue, RejectsMisalignedAddresses)
{
    RequestQueue q(4, false);
    EXPECT_THROW(q.enqueue(load(3)), std::runtime_error);
}

TEST(RequestQueue, RemoveMiddleKeepsOrder)
{
    RequestQueue q(4, false);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(q.enqueue(load(a * 64)));
    q.remove(1);
    EXPECT_EQ(q.at(0).addr, 0u);
    EXPECT_EQ(q.at(1).addr, 128u);
    EXPECT_EQ(q.at(2).addr, 192u);
}
